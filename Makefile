# Offline-only build: everything is Go standard library.

GO ?= go

.PHONY: all build vet test race bench bench-smoke fuzz-smoke fault-smoke bench-record bench-check ci-check fmt-check tidy-check ci check-docs

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The race target is strict — no skips, no quarantines: the seed
# reclamation/publish race is fixed (see ROADMAP "RESOLVED (PR 3)") and
# TestPWBReclaimPublishStress in internal/core is its permanent
# regression gate; TestShardBatchFanoutStress in internal/shard is the
# equivalent gate for the cross-shard batch fan-out (re-run explicitly
# with -count=1 so a cached pass can never mask it). internal/bench's
# full Fig 7 matrix exceeds CI timeouts under the detector's ~20x
# slowdown, so that one package contributes a bounded concurrent-load
# smoke instead of its whole suite; every other package runs in full.
race:
	$(GO) test -race $$($(GO) list ./... | grep -v internal/bench)
	$(GO) test -race -count=1 -run 'TestShardBatchFanoutStress$$' ./internal/shard
	$(GO) test -race -count=1 -run 'TestReplicaFanoutStress$$' ./internal/shard
	$(GO) test -race -count=1 -run 'TestMigrationMidFlightStress$$' ./internal/shard
	$(GO) test -race -count=1 -run 'TestAsyncCompletionStress$$' ./internal/core
	$(GO) test -race -count=1 -run 'TestAdaptiveWatermarkBurstStress$$' ./internal/core
	$(GO) test -race -count=1 -run 'TestDiagPrismLoad$$' ./internal/bench
	$(GO) test -race -count=1 -run 'TestDispatchContentionStress$$' ./internal/server

# fmt-check fails (listing the files) if any file needs gofmt.
fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# tidy-check fails if go.mod/go.sum are not tidy (offline-safe: the
# module is stdlib-only).
tidy-check:
	$(GO) mod tidy -diff

# check-docs fails if METRICS.md names a metric the registry does not
# export (or vice versa) — see docs_test.go.
check-docs:
	$(GO) test -run 'TestMetricsDocsComplete|TestReadmeMentionsMetrics' -count=1 .

bench:
	$(GO) test -bench=. -benchmem -run '^$$' .

# bench-smoke runs the Put benchmarks once: benchmark code can never
# silently rot, and the job log shows the batch-vs-single comparison
# (BenchmarkPut's epoch-enters/op = 1.0 vs BenchmarkPutBatch/size=32's
# amortized fraction), the sharding scale-out comparison
# (BenchmarkPutSharded's virt-Kops/s at shards=1 vs shards=4), and the
# pipelining comparison (BenchmarkPutPipelined's virt-Kops/s at depth=1
# vs depth=32) at a longer benchtime so the counters are stable.
bench-smoke:
	$(GO) test -bench='BenchmarkPut($$|Batch|Sharded|Pipelined)' -benchtime=1000x -run '^$$' .

# bench-record regenerates the committed benchmark trajectory: each
# BENCH_<experiment>.json is the experiment's per-engine metric deltas
# (obs Snapshot.Delta around the measured phase) plus the phase's
# virtual-time Kops, so diffs across PRs show how the counters — not
# just the headline throughput — moved. BENCH_OUT redirects the output
# directory (bench-check writes to a scratch dir to compare).
BENCH_OUT ?= .
bench-record:
	$(GO) run ./cmd/prism-bench -run pipelinedepth -records 4000 -metrics-out $(BENCH_OUT)/BENCH_pipelinedepth.json
	$(GO) run ./cmd/prism-bench -run replication -records 4000 -metrics-out $(BENCH_OUT)/BENCH_replication.json
	$(GO) run ./cmd/prism-bench -run tiering -records 4000 -metrics-out $(BENCH_OUT)/BENCH_tiering.json
	$(GO) run ./cmd/prism-bench -run rangescan -threads 4 -records 4000 -ops 4000 -value 256 -metrics-out $(BENCH_OUT)/BENCH_rangescan.json
	$(GO) run ./cmd/prism-bench -run wire -threads 8 -records 3000 -ops 6000 -value 256 -metrics-out $(BENCH_OUT)/BENCH_wire.json

# bench-check regenerates the trajectories into a scratch directory and
# fails if any capture's virtual-time throughput regressed more than 25%
# against the committed BENCH_*.json (or went missing). Virtual time
# makes the comparison machine-independent, so the threshold guards
# against algorithmic regressions, not runner noise.
bench-check:
	rm -rf .bench-new && mkdir -p .bench-new
	$(MAKE) bench-record BENCH_OUT=.bench-new
	$(GO) run ./cmd/prism-bench -compare BENCH_pipelinedepth.json,.bench-new/BENCH_pipelinedepth.json
	$(GO) run ./cmd/prism-bench -compare BENCH_replication.json,.bench-new/BENCH_replication.json
	$(GO) run ./cmd/prism-bench -compare BENCH_tiering.json,.bench-new/BENCH_tiering.json
	$(GO) run ./cmd/prism-bench -compare BENCH_rangescan.json,.bench-new/BENCH_rangescan.json
	$(GO) run ./cmd/prism-bench -compare BENCH_wire.json,.bench-new/BENCH_wire.json

# fuzz-smoke runs short fuzz passes over the RESP parser and the range
# placement boundary table (decode/encode roundtrip + split-key
# selection invariants).
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz FuzzParse -fuzztime 10s ./internal/server
	$(GO) test -run '^$$' -fuzz FuzzBoundaryTable -fuzztime 10s ./internal/shard

# fault-smoke is the crash-fault gate: the replica-kill matrix (crash a
# replica mid write-burst, assert reads keep being served and no acked
# write is lost, then assert anti-entropy repair converges — see
# internal/shard/fault_test.go) plus the migration crash matrix (kill
# the source shard at every protocol stage and assert abort-or-complete
# with no acked write lost — see internal/shard/migrate_fault_test.go).
fault-smoke:
	$(GO) test -count=1 -run 'TestFaultMatrix$$|TestMigrationFaultMatrix$$|TestMigrationDestMemberCrash$$' ./internal/shard

# ci-check asserts the Makefile ci target and .github/workflows/ci.yml
# stay in lockstep: every make target the workflow runs must be a
# prerequisite of `ci`, and vice versa (see ci_parity_test.go).
ci-check:
	$(GO) test -run 'TestMakefileCIMatchesWorkflow$$' -count=1 .

# ci is the full gate, mirrored target-for-target by
# .github/workflows/ci.yml (ci-check enforces the mirror): build, vet,
# formatting/tidy hygiene, plain and race-enabled tests, the METRICS.md
# doc-link checker, the benchmark/fuzz/fault smokes, and the
# bench-trajectory regression check.
ci: build vet fmt-check tidy-check test race check-docs bench-smoke fuzz-smoke fault-smoke bench-check ci-check
