# Offline-only build: everything is Go standard library.

GO ?= go

.PHONY: all build vet test race bench bench-smoke fuzz-smoke fmt-check tidy-check ci check-docs

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The race target is strict — no skips, no quarantines: the seed
# reclamation/publish race is fixed (see ROADMAP "RESOLVED (PR 3)") and
# TestPWBReclaimPublishStress in internal/core is its permanent
# regression gate; TestShardBatchFanoutStress in internal/shard is the
# equivalent gate for the cross-shard batch fan-out (re-run explicitly
# with -count=1 so a cached pass can never mask it). internal/bench's
# full Fig 7 matrix exceeds CI timeouts under the detector's ~20x
# slowdown, so that one package contributes a bounded concurrent-load
# smoke instead of its whole suite; every other package runs in full.
race:
	$(GO) test -race $$($(GO) list ./... | grep -v internal/bench)
	$(GO) test -race -count=1 -run 'TestShardBatchFanoutStress$$' ./internal/shard
	$(GO) test -race -count=1 -run 'TestAsyncCompletionStress$$' ./internal/core
	$(GO) test -race -count=1 -run 'TestDiagPrismLoad$$' ./internal/bench

# fmt-check fails (listing the files) if any file needs gofmt.
fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# tidy-check fails if go.mod/go.sum are not tidy (offline-safe: the
# module is stdlib-only).
tidy-check:
	$(GO) mod tidy -diff

# check-docs fails if METRICS.md names a metric the registry does not
# export (or vice versa) — see docs_test.go.
check-docs:
	$(GO) test -run 'TestMetricsDocsComplete|TestReadmeMentionsMetrics' -count=1 .

bench:
	$(GO) test -bench=. -benchmem -run '^$$' .

# bench-smoke runs the Put benchmarks once: benchmark code can never
# silently rot, and the job log shows the batch-vs-single comparison
# (BenchmarkPut's epoch-enters/op = 1.0 vs BenchmarkPutBatch/size=32's
# amortized fraction), the sharding scale-out comparison
# (BenchmarkPutSharded's virt-Kops/s at shards=1 vs shards=4), and the
# pipelining comparison (BenchmarkPutPipelined's virt-Kops/s at depth=1
# vs depth=32) at a longer benchtime so the counters are stable.
bench-smoke:
	$(GO) test -bench='BenchmarkPut($$|Batch|Sharded|Pipelined)' -benchtime=1000x -run '^$$' .

# bench-record regenerates the committed benchmark trajectory: each
# BENCH_<experiment>.json is the experiment's per-engine metric deltas
# (obs Snapshot.Delta around the measured phase), so diffs across PRs
# show how the counters — not just the headline Kops — moved.
bench-record:
	$(GO) run ./cmd/prism-bench -run pipelinedepth -records 4000 -metrics-out BENCH_pipelinedepth.json

# fuzz-smoke runs a short fuzz pass over the RESP parser.
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz FuzzParse -fuzztime 10s ./internal/server

# ci is the full gate, mirrored by .github/workflows/ci.yml: build, vet,
# formatting/tidy hygiene, plain and race-enabled tests, the METRICS.md
# doc-link checker, and the benchmark smoke run.
ci: build vet fmt-check tidy-check test race check-docs bench-smoke
