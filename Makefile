# Offline-only build: everything is Go standard library.

GO ?= go

.PHONY: all build vet test race bench bench-smoke fuzz-smoke fmt-check tidy-check ci check-docs

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The race job is a data-race detector, not a performance gate: the
# three documented seed flakes in internal/core skip themselves under
# -race, and internal/bench quarantines itself as a package (its
# concurrent simulation load trips the same documented seed reclamation
# race, and its Fig 7 smokes exceed the timeout under the detector's
# ~20x slowdown) — see ROADMAP "Pre-existing -race flakiness".
# PRISM_RACE_STRICT=1 enforces all of them anyway.
race:
	$(GO) test -race ./...

# fmt-check fails (listing the files) if any file needs gofmt.
fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# tidy-check fails if go.mod/go.sum are not tidy (offline-safe: the
# module is stdlib-only).
tidy-check:
	$(GO) mod tidy -diff

# check-docs fails if METRICS.md names a metric the registry does not
# export (or vice versa) — see docs_test.go.
check-docs:
	$(GO) test -run 'TestMetricsDocsComplete|TestReadmeMentionsMetrics' -count=1 .

bench:
	$(GO) test -bench=. -benchmem -run '^$$' .

# bench-smoke runs one benchmark one time: benchmark code can never
# silently rot.
bench-smoke:
	$(GO) test -bench=BenchmarkPut -benchtime=1x -run '^$$' .

# fuzz-smoke runs a short fuzz pass over the RESP parser.
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz FuzzParse -fuzztime 10s ./internal/server

# ci is the full gate, mirrored by .github/workflows/ci.yml: build, vet,
# formatting/tidy hygiene, plain and race-enabled tests, the METRICS.md
# doc-link checker, and the benchmark smoke run.
ci: build vet fmt-check tidy-check test race check-docs bench-smoke
