# Offline-only build: everything is Go standard library.

GO ?= go

.PHONY: all build vet test race bench ci check-docs

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# check-docs fails if METRICS.md names a metric the registry does not
# export (or vice versa) — see docs_test.go.
check-docs:
	$(GO) test -run 'TestMetricsDocsComplete|TestReadmeMentionsMetrics' -count=1 .

bench:
	$(GO) test -bench=. -benchmem -run '^$$' .

# ci is the full gate: build, vet, race-enabled tests (tier-1 plus the
# doc-link checker, which is an ordinary test).
ci: build vet race
