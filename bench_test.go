package prism_test

// One testing.B benchmark per table and figure of the paper's evaluation
// (§7). Each runs the corresponding experiment from internal/bench at a
// reduced scale and reports the headline virtual-time metric alongside
// the wall-clock cost of simulating it. Run the full set with:
//
//	go test -bench=. -benchmem .
//
// For paper-scale runs use cmd/prism-bench with -threads 40 and larger
// -records/-ops; EXPERIMENTS.md records those results.

import (
	"fmt"
	"sync"
	"testing"

	prism "repro"
	"repro/internal/bench"
	"repro/internal/ycsb"
)

// benchRC is the reduced scale used for testing.B runs.
func benchRC() bench.RunConfig {
	return bench.RunConfig{Threads: 4, Records: 4000, Ops: 8000}
}

// epochEnters reads the epoch.enters counter from the store's metrics
// snapshot (0 before any epoch activity).
func epochEnters(store *prism.Store) float64 {
	v, _ := store.Metrics().Value("epoch.enters")
	return v
}

// BenchmarkPut is a direct public-API write benchmark, and doubles as
// the CI smoke run (`make bench-smoke` = -benchtime=1x): it keeps every
// benchmark compiling and runnable at negligible cost. It reports
// epoch-enters/op as the amortization baseline for BenchmarkPutBatch:
// one Put is one epoch critical section.
func BenchmarkPut(b *testing.B) {
	store, err := prism.Open(prism.Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer store.Close()
	th := store.Thread(0)
	val := make([]byte, 128)
	e0 := epochEnters(store)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		key := []byte(fmt.Sprintf("bench-put-%08d", i%10000))
		if err := th.Put(key, val); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric((epochEnters(store)-e0)/float64(b.N), "epoch-enters/op")
}

// BenchmarkPutBatch writes the same keys through PutBatch at several
// batch sizes. The epoch-enters/op metric is the amortization headline:
// size=32 must show ~1/32 of BenchmarkPut's one-enter-per-op (the CI
// smoke log prints both for eyeball comparison).
func BenchmarkPutBatch(b *testing.B) {
	for _, size := range []int{1, 8, 32} {
		b.Run(fmt.Sprintf("size=%d", size), func(b *testing.B) {
			store, err := prism.Open(prism.Options{})
			if err != nil {
				b.Fatal(err)
			}
			defer store.Close()
			th := store.Thread(0)
			val := make([]byte, 128)
			kvs := make([]prism.KV, size)
			e0 := epochEnters(store)
			b.ResetTimer()
			for i := 0; i < b.N; i += size {
				for j := range kvs {
					kvs[j] = prism.KV{
						Key:   []byte(fmt.Sprintf("bench-put-%08d", (i+j)%10000)),
						Value: val,
					}
				}
				if err := th.PutBatch(kvs); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric((epochEnters(store)-e0)/float64(b.N), "epoch-enters/op")
		})
	}
}

// BenchmarkPutSharded drives the same multi-writer Put load through one
// store and through a 4-shard router. Each writer owns a Thread handle,
// so the only coupling is the simulated hardware: on one store all
// writers queue on a single NVM append channel; four shards mean four
// device sets. The virt-Kops/s metric is aggregate ops over the
// makespan across thread clocks — the shards=4 row must come out well
// above 2.5x the shards=1 row (the sharding acceptance gate, asserted
// in internal/shard's TestShardScaleSpeedup).
func BenchmarkPutSharded(b *testing.B) {
	const writers = 4
	for _, shards := range []int{1, 4} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			store, err := prism.Open(prism.Options{
				NumThreads:        writers,
				Shards:            shards,
				PWBBytesPerThread: 8 << 20,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer store.Close()
			val := make([]byte, 1024)
			per := (b.N + writers - 1) / writers
			var wg sync.WaitGroup
			b.ResetTimer()
			for w := 0; w < writers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					th := store.Thread(w)
					for i := 0; i < per; i++ {
						key := []byte(fmt.Sprintf("w%d-%08d", w, i%10000))
						if err := th.Put(key, val); err != nil {
							b.Error(err)
							return
						}
					}
				}(w)
			}
			wg.Wait()
			b.StopTimer()
			var makespan int64
			for w := 0; w < writers; w++ {
				if now := store.Thread(w).Clk.Now(); now > makespan {
					makespan = now
				}
			}
			if makespan > 0 {
				b.ReportMetric(float64(writers*per)/(float64(makespan)/1e6), "virt-Kops/s")
			}
		})
	}
}

// BenchmarkPutPipelined drives one writer through the async submission
// pipeline at increasing depth: bursts of <depth> PutAsync then a
// drain, the single-connection pipelining model. virt-Kops/s is ops
// over the async-timeline makespan; depth=32 must come out well above
// 3x the depth=1 row (the pipelining acceptance gate, asserted in
// internal/bench's TestPipelineDepthSpeedup). Compare with
// BenchmarkPutSharded: depth scales one connection, shards scale the
// device sets, and the two compound.
func BenchmarkPutPipelined(b *testing.B) {
	for _, depth := range []int{1, 8, 32} {
		b.Run(fmt.Sprintf("depth=%d", depth), func(b *testing.B) {
			store, err := prism.Open(prism.Options{
				NumThreads:        1,
				PWBBytesPerThread: 8 << 20,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer store.Close()
			th := store.Thread(0)
			val := make([]byte, 128)
			hs := make([]*prism.Handle, 0, depth)
			b.ResetTimer()
			for i := 0; i < b.N; i += depth {
				for j := 0; j < depth && i+j < b.N; j++ {
					key := []byte(fmt.Sprintf("bench-pipe-%08d", (i+j)%10000))
					hs = append(hs, th.PutAsync(key, val))
				}
				for _, h := range hs {
					if err := h.Wait(); err != nil {
						b.Fatal(err)
					}
				}
				hs = hs[:0]
			}
			b.StopTimer()
			th.Flush()
			if makespan := th.Clk.Now(); makespan > 0 {
				b.ReportMetric(float64(b.N)/(float64(makespan)/1e6), "virt-Kops/s")
			}
		})
	}
}

func reportKops(b *testing.B, name string, kops float64) {
	b.ReportMetric(kops, name+"-Kops/s")
}

func BenchmarkFig7YCSBThroughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, res := bench.Fig7(benchRC())
		reportKops(b, "prism-C", res[bench.EnginePrism][ycsb.WorkloadC].KOpsPerSec())
		reportKops(b, "kvell-C", res[bench.EngineKVell][ycsb.WorkloadC].KOpsPerSec())
	}
}

func BenchmarkTable3Latency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.Table3(benchRC())
	}
}

func BenchmarkFig8PrismVsSLMDB(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, res := bench.Fig8(benchRC())
		reportKops(b, "prism-A", res[bench.EnginePrism][ycsb.WorkloadA].KOpsPerSec())
		reportKops(b, "slmdb-A", res[bench.EngineSLMDB][ycsb.WorkloadA].KOpsPerSec())
	}
}

func BenchmarkTable4SLMDBLatency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.Table4(benchRC())
	}
}

func BenchmarkFig9SkewSweep(b *testing.B) {
	rc := benchRC()
	rc.Records = 2000
	rc.Ops = 3000
	for i := 0; i < b.N; i++ {
		bench.Fig9(rc)
	}
}

func BenchmarkFig10aLargeDataset(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.Fig10a(benchRC())
	}
}

func BenchmarkFig10bNutanix(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.Fig10b(benchRC())
	}
}

func BenchmarkFig11ThreadCombining(b *testing.B) {
	rc := benchRC()
	rc.Threads = 8
	for i := 0; i < b.N; i++ {
		bench.Fig11(rc)
	}
}

func BenchmarkFig12WriteAmplification(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.Fig12(benchRC())
	}
}

func BenchmarkFig13SSDScaling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.Fig13(benchRC())
	}
}

func BenchmarkFig14SSDLatency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.Fig14(benchRC())
	}
}

func BenchmarkFig15aPWBSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.Fig15a(benchRC())
	}
}

func BenchmarkFig15bSVCSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.Fig15b(benchRC())
	}
}

func BenchmarkFig16MulticoreScalability(b *testing.B) {
	rc := benchRC()
	rc.Records = 2000
	rc.Ops = 6000
	for i := 0; i < b.N; i++ {
		bench.Fig16(rc)
	}
}

func BenchmarkFig17GCTimeline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, _, stats := bench.Fig17(benchRC())
		b.ReportMetric(float64(stats.VS.GCRuns), "gc-runs")
	}
}

func BenchmarkAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.Ablation(benchRC())
	}
}

func BenchmarkNVMSpace(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.NVMSpace(benchRC())
	}
}

func BenchmarkRecovery(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.Recovery(benchRC())
	}
}
