package prism

import (
	"os"
	"regexp"
	"sort"
	"strings"
	"testing"
)

// TestMakefileCIMatchesWorkflow keeps the Makefile `ci` target and
// .github/workflows/ci.yml in lockstep: the set of make targets the
// workflow invokes (`- run: make <target>`) must equal the prerequisite
// list of `ci`, in both directions. This is the `make ci-check` gate —
// it exists because the two drifted once (the workflow gained
// fuzz-smoke while `ci` did not), which let "make ci passes" and "CI
// passes" silently mean different things.
func TestMakefileCIMatchesWorkflow(t *testing.T) {
	mk, err := os.ReadFile("Makefile")
	if err != nil {
		t.Fatal(err)
	}
	wf, err := os.ReadFile(".github/workflows/ci.yml")
	if err != nil {
		t.Fatal(err)
	}

	ciLine := regexp.MustCompile(`(?m)^ci:\s*(.+)$`).FindSubmatch(mk)
	if ciLine == nil {
		t.Fatal("Makefile has no `ci:` target line")
	}
	ciSet := map[string]bool{}
	for _, tgt := range strings.Fields(string(ciLine[1])) {
		ciSet[tgt] = true
	}

	runLine := regexp.MustCompile(`(?m)^\s*-\s*run:\s*make\s+(\S+)\s*$`)
	wfSet := map[string]bool{}
	for _, m := range runLine.FindAllSubmatch(wf, -1) {
		wfSet[string(m[1])] = true
	}
	if len(wfSet) == 0 {
		t.Fatal("ci.yml invokes no `make <target>` steps — the parity check is matching nothing")
	}

	var missing, extra []string
	for tgt := range wfSet {
		if !ciSet[tgt] {
			missing = append(missing, tgt)
		}
	}
	for tgt := range ciSet {
		if !wfSet[tgt] {
			extra = append(extra, tgt)
		}
	}
	sort.Strings(missing)
	sort.Strings(extra)
	if len(missing) > 0 {
		t.Errorf("ci.yml runs make target(s) %v that are not prerequisites of the Makefile `ci` target", missing)
	}
	if len(extra) > 0 {
		t.Errorf("Makefile `ci` target lists %v which no ci.yml job runs", extra)
	}
}
