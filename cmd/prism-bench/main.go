// Command prism-bench regenerates the paper's evaluation (§7): every
// table and figure has a named experiment that prints the corresponding
// rows or series, measured in virtual time on the simulated devices.
//
// Usage:
//
//	prism-bench -run fig7                # one experiment
//	prism-bench -run fig7,table3,fig11   # several
//	prism-bench -run all                 # everything (slow)
//	prism-bench -list                    # names
//
// Scale knobs (defaults are laptop-friendly; the paper's scale is 100M
// records x 100M ops on a 40-core testbed):
//
//	-threads N   simulated application threads (default 8)
//	-records N   loaded keyspace (default 10000)
//	-ops N       measured operations (default 20000)
//	-value N     value size in bytes (default 1024)
//	-zipf F      zipfian coefficient (default 0.99)
//
// Observability (METRICS.md):
//
//	-metrics            after the tables, print one JSON document with the
//	                    final obs snapshot of every Prism store the
//	                    experiments opened (the last line of output)
//	-metrics-every MS   additionally sample every metric each MS of
//	                    virtual time (a Fig-17-style timeline per capture)
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/bench"
)

func main() {
	var (
		run     = flag.String("run", "", "comma-separated experiment names, or 'all'")
		list    = flag.Bool("list", false, "list experiment names and exit")
		threads = flag.Int("threads", 8, "simulated application threads")
		records = flag.Int("records", 10000, "records loaded before measuring")
		ops     = flag.Int("ops", 20000, "operations in the measured phase")
		value   = flag.Int("value", 1024, "value size in bytes")
		zipf    = flag.Float64("zipf", 0.99, "zipfian coefficient")
		seed    = flag.Uint64("seed", 42, "workload seed")
		batch   = flag.Int("batch", 1, "group consecutive same-kind ops into PutBatch/MultiGet windows of this size")
		csvDir  = flag.String("csv", "", "also write each table as CSV into this directory")
		metrics = flag.Bool("metrics", false, "print a final metrics-snapshot JSON document (see METRICS.md)")
		every   = flag.Int64("metrics-every", 0, "also sample metrics every N virtual ms (implies -metrics)")
	)
	flag.Parse()

	if *list || *run == "" {
		fmt.Println("experiments:")
		for _, n := range bench.ExperimentNames() {
			fmt.Printf("  %s\n", n)
		}
		if *run == "" {
			fmt.Println("\nrun with: prism-bench -run <name>[,<name>...] | all")
		}
		return
	}

	rc := bench.RunConfig{
		Threads:   *threads,
		Records:   *records,
		Ops:       *ops,
		ValueSize: *value,
		Zipfian:   *zipf,
		Seed:      *seed,
		Batch:     *batch,
	}
	var mc *bench.MetricsCollector
	if *metrics || *every > 0 {
		mc = &bench.MetricsCollector{}
		rc.Metrics = mc
		rc.SampleNS = *every * 1_000_000
	}

	names := strings.Split(*run, ",")
	if *run == "all" {
		names = bench.ExperimentNames()
	}
	for _, name := range names {
		name = strings.TrimSpace(name)
		exp, ok := bench.Experiments[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q (use -list)\n", name)
			os.Exit(1)
		}
		t0 := time.Now()
		for i, tab := range exp(rc) {
			fmt.Println(tab)
			if *csvDir != "" {
				path := fmt.Sprintf("%s/%s_%d.csv", *csvDir, name, i)
				if err := os.WriteFile(path, []byte(tab.CSV()), 0o644); err != nil {
					fmt.Fprintf(os.Stderr, "csv: %v\n", err)
					os.Exit(1)
				}
			}
		}
		fmt.Printf("(%s took %v)\n\n", name, time.Since(t0).Round(time.Millisecond))
	}
	if mc != nil {
		// The JSON document is the last thing printed, so scripts can
		// extract it with e.g. `awk '/^{/,0'`.
		fmt.Println(mc.JSON())
	}
}
