// Command prism-bench regenerates the paper's evaluation (§7): every
// table and figure has a named experiment that prints the corresponding
// rows or series, measured in virtual time on the simulated devices.
//
// Usage:
//
//	prism-bench -run fig7                # one experiment
//	prism-bench -run fig7,table3,fig11   # several
//	prism-bench -run all                 # everything (slow)
//	prism-bench -list                    # names
//
// Scale knobs (defaults are laptop-friendly; the paper's scale is 100M
// records x 100M ops on a 40-core testbed):
//
//	-threads N   simulated application threads (default 8)
//	-records N   loaded keyspace (default 10000)
//	-ops N       measured operations (default 20000)
//	-value N     value size in bytes (default 1024)
//	-zipf F      zipfian coefficient (default 0.99)
//	-shards N    run Prism as N independent stores behind the hash router
//	             (default 1; see the shardscale experiment for a sweep)
//	-replicas N  place each key on N shards of the router ring (default 1
//	             = unreplicated; see the replication experiment)
//	-pipeline N  submit ops through the async pipeline, draining every N
//	             submissions (default 1 = synchronous; see the
//	             pipelinedepth experiment for a sweep)
//	-placement M key placement across shards: hash (default) or range
//	             (contiguous key ranges per shard; see the rangescan
//	             experiment for the locality comparison)
//	-split KEYS  comma-separated range boundary keys for -placement range
//	             (empty = one all-covering range, split online)
//	-tiers SPEC  heterogeneous SSD array with hot/cold tiering: a comma-
//	             separated device list, each size[:writeMBps[:readMBps]]
//	             with K/M/G suffixes, e.g. 64M:5000,512M:1000 (Prism
//	             only; see the tiering experiment for the built-in pair)
//
// Observability (METRICS.md):
//
//	-metrics            after the tables, print one document with the
//	                    final obs snapshot of every Prism store the
//	                    experiments opened (the last lines of output)
//	-metrics-format F   snapshot format: json (default) or prom
//	                    (Prometheus/OpenMetrics text)
//	-metrics-every MS   additionally sample every metric each MS of
//	                    virtual time (a Fig-17-style timeline per capture,
//	                    JSON only)
//	-metrics-out FILE   write the metrics document to FILE instead of
//	                    stdout (`make bench-record` uses this to commit
//	                    BENCH_<experiment>.json trajectory snapshots)
//
// Trajectory gating (`make bench-check` / the CI bench-record job):
//
//	-compare OLD,NEW        compare two trajectory JSON documents and exit
//	                        1 if any capture's throughput regressed beyond
//	                        the threshold (or went missing)
//	-compare-threshold F    allowed fractional drop (default 0.25 = 25%)
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro"
	"repro/internal/bench"
)

func main() {
	var (
		run     = flag.String("run", "", "comma-separated experiment names, or 'all'")
		list    = flag.Bool("list", false, "list experiment names and exit")
		threads = flag.Int("threads", 8, "simulated application threads")
		records = flag.Int("records", 10000, "records loaded before measuring")
		ops     = flag.Int("ops", 20000, "operations in the measured phase")
		value   = flag.Int("value", 1024, "value size in bytes")
		zipf    = flag.Float64("zipf", 0.99, "zipfian coefficient")
		seed    = flag.Uint64("seed", 42, "workload seed")
		batch   = flag.Int("batch", 1, "group consecutive same-kind ops into PutBatch/MultiGet windows of this size")
		shards  = flag.Int("shards", 1, "run Prism as this many independent stores behind the hash router")
		reps    = flag.Int("replicas", 1, "place each key on this many shards of the router ring")
		csvDir  = flag.String("csv", "", "also write each table as CSV into this directory")
		metrics = flag.Bool("metrics", false, "print a final metrics-snapshot document (see METRICS.md)")
		mformat = flag.String("metrics-format", "json", "metrics output format: json or prom")
		every   = flag.Int64("metrics-every", 0, "also sample metrics every N virtual ms (implies -metrics)")
		mout    = flag.String("metrics-out", "", "write the metrics document to this file instead of stdout (implies -metrics)")
		pipe    = flag.Int("pipeline", 1, "submit ops through the async pipeline, draining every N submissions")
		place   = flag.String("placement", "hash", "key placement across shards: hash or range")
		split   = flag.String("split", "", "comma-separated range boundary keys for -placement range")
		tiers   = flag.String("tiers", "", "heterogeneous SSD array with hot/cold tiering: size[:writeMBps[:readMBps]],... (Prism only)")
		compare = flag.String("compare", "", "OLD,NEW: compare two trajectory JSON files, exit 1 on regression")
		cthresh = flag.Float64("compare-threshold", 0.25, "allowed fractional throughput drop for -compare")
	)
	flag.Parse()
	if _, err := prism.ParseTierSpec(*tiers); err != nil {
		fmt.Fprintf(os.Stderr, "-tiers: %v\n", err)
		os.Exit(1)
	}
	if *place != "hash" && *place != "range" {
		fmt.Fprintf(os.Stderr, "unknown -placement %q (hash or range)\n", *place)
		os.Exit(1)
	}
	if *split != "" && *place != "range" {
		fmt.Fprintln(os.Stderr, "-split requires -placement range")
		os.Exit(1)
	}
	if *mformat != "json" && *mformat != "prom" {
		fmt.Fprintf(os.Stderr, "unknown -metrics-format %q (json or prom)\n", *mformat)
		os.Exit(1)
	}
	if *compare != "" {
		parts := strings.Split(*compare, ",")
		if len(parts) != 2 {
			fmt.Fprintln(os.Stderr, "-compare wants OLD,NEW (two trajectory JSON files)")
			os.Exit(1)
		}
		oldDoc, err := os.ReadFile(strings.TrimSpace(parts[0]))
		if err != nil {
			fmt.Fprintf(os.Stderr, "compare: %v\n", err)
			os.Exit(1)
		}
		newDoc, err := os.ReadFile(strings.TrimSpace(parts[1]))
		if err != nil {
			fmt.Fprintf(os.Stderr, "compare: %v\n", err)
			os.Exit(1)
		}
		failures, err := bench.CompareTrajectories(oldDoc, newDoc, *cthresh)
		if err != nil {
			fmt.Fprintf(os.Stderr, "compare: %v\n", err)
			os.Exit(1)
		}
		if len(failures) > 0 {
			fmt.Fprintf(os.Stderr, "trajectory regression (threshold %.0f%%):\n", *cthresh*100)
			for _, f := range failures {
				fmt.Fprintf(os.Stderr, "  %s\n", f)
			}
			os.Exit(1)
		}
		fmt.Printf("trajectories within %.0f%%: %s vs %s\n", *cthresh*100, parts[0], parts[1])
		return
	}

	if *list || *run == "" {
		fmt.Println("experiments:")
		for _, n := range bench.ExperimentNames() {
			fmt.Printf("  %s\n", n)
		}
		if *run == "" {
			fmt.Println("\nrun with: prism-bench -run <name>[,<name>...] | all")
		}
		return
	}

	rc := bench.RunConfig{
		Threads:   *threads,
		Records:   *records,
		Ops:       *ops,
		ValueSize: *value,
		Zipfian:   *zipf,
		Seed:      *seed,
		Batch:     *batch,
		Pipeline:  *pipe,
		Shards:    *shards,
		Replicas:  *reps,
		TierSpec:  *tiers,
		Placement: *place,
		SplitKeys: prism.ParseSplitKeys(*split),
	}
	var mc *bench.MetricsCollector
	if *metrics || *every > 0 || *mout != "" {
		mc = &bench.MetricsCollector{}
		rc.Metrics = mc
		rc.SampleNS = *every * 1_000_000
	}

	names := strings.Split(*run, ",")
	if *run == "all" {
		names = bench.ExperimentNames()
	}
	for _, name := range names {
		name = strings.TrimSpace(name)
		exp, ok := bench.Experiments[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q (use -list)\n", name)
			os.Exit(1)
		}
		t0 := time.Now()
		for i, tab := range exp(rc) {
			fmt.Println(tab)
			if *csvDir != "" {
				path := fmt.Sprintf("%s/%s_%d.csv", *csvDir, name, i)
				if err := os.WriteFile(path, []byte(tab.CSV()), 0o644); err != nil {
					fmt.Fprintf(os.Stderr, "csv: %v\n", err)
					os.Exit(1)
				}
			}
		}
		fmt.Printf("(%s took %v)\n\n", name, time.Since(t0).Round(time.Millisecond))
	}
	if mc != nil {
		doc := mc.JSON() + "\n"
		if *mformat == "prom" {
			doc = mc.OpenMetrics()
		}
		if *mout != "" {
			if err := os.WriteFile(*mout, []byte(doc), 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "metrics-out: %v\n", err)
				os.Exit(1)
			}
		} else {
			// The metrics document is the last thing printed, so scripts
			// can extract it with e.g. `awk '/^{/,0'` (json) or
			// `awk '/^# /,0'` (prom).
			fmt.Print(doc)
		}
	}
}
