// Command prism-cli is an interactive shell over the Prism public API —
// a quick way to poke at the store, watch its internal statistics, and
// exercise crash/recovery by hand.
//
// With -connect addr it speaks to a running prism-server over RESP2
// instead of opening an in-process store; the same put/get/del/scan
// commands work, any other input is sent as a raw RESP command (so
// "mget a b", "info", "dbsize" all work too). "pipe cmd ; cmd ; ..."
// sends a burst in one flush — the pipelined path the server coalesces
// through its async submission pipeline.
//
// Commands (local mode):
//
//	put <key> <value>      store a value
//	get <key>              read a value
//	del <key>              delete a key
//	scan <start> <n>       range scan
//	stats                  engine counters (SVC hits, reclaims, GC, ...)
//	metrics [name...]      obs snapshot (all metrics, or just the named
//	                       ones); 'metrics -json' dumps METRICS.md JSON
//	crash                  simulate power failure + recovery
//	help | quit
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro"
	"repro/internal/server/respclient"
)

func main() {
	connect := flag.String("connect", "", "RESP server address (host:port); empty = in-process store")
	flag.Parse()

	if *connect != "" {
		if err := connectedREPL(*connect); err != nil {
			fmt.Fprintln(os.Stderr, "connect:", err)
			os.Exit(1)
		}
		return
	}
	localREPL()
}

// connectedREPL drives a remote prism-server through the RESP client.
func connectedREPL(addr string) error {
	c, err := respclient.Dial(addr)
	if err != nil {
		return err
	}
	defer c.Close()
	if _, err := c.Do("PING"); err != nil {
		return fmt.Errorf("ping: %w", err)
	}
	fmt.Printf("prism-cli — connected to %s; type 'help' for commands\n", addr)
	sc := bufio.NewScanner(os.Stdin)
	for {
		fmt.Print("prism> ")
		if !sc.Scan() {
			return nil
		}
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 {
			continue
		}
		switch fields[0] {
		case "help":
			fmt.Println("put <k> <v> | get <k> | del <k> | scan <start> <n> | ping | info | dbsize | quit")
			fmt.Println("pipe <cmd> ; <cmd> ; ...   send a pipelined burst in one flush")
			fmt.Println("anything else is sent as a raw RESP command (e.g. 'mget a b')")
			continue
		case "quit", "exit":
			c.Do("QUIT")
			return nil
		case "pipe":
			if err := pipeBurst(c, fields[1:]); err != nil {
				fmt.Println("error:", err)
			}
			continue
		case "put":
			fields[0] = "SET"
		case "del":
			fields[0] = "DEL"
		}
		reply, err := c.Do(fields...)
		if err != nil {
			fmt.Println("error:", err)
			continue
		}
		printReply(reply, "")
	}
}

// pipeBurst sends semicolon-separated commands as one pipelined burst —
// all queued, one flush, replies read back in order — so the server's
// async coalescing path is exercisable by hand:
//
//	prism> pipe put a 1 ; put b 2 ; get a ; get b
func pipeBurst(c *respclient.Client, fields []string) error {
	var cmds [][]string
	cur := []string{}
	for _, f := range fields {
		if f == ";" {
			if len(cur) > 0 {
				cmds = append(cmds, cur)
				cur = []string{}
			}
			continue
		}
		cur = append(cur, f)
	}
	if len(cur) > 0 {
		cmds = append(cmds, cur)
	}
	if len(cmds) == 0 {
		return fmt.Errorf("usage: pipe <cmd> ; <cmd> ; ...")
	}
	for _, cmd := range cmds {
		switch cmd[0] {
		case "put":
			cmd[0] = "SET"
		case "del":
			cmd[0] = "DEL"
		}
		if err := c.Send(cmd...); err != nil {
			return err
		}
	}
	if err := c.Flush(); err != nil {
		return err
	}
	for i := range cmds {
		r, err := c.Receive()
		if err != nil {
			return err
		}
		fmt.Printf("%d) ", i+1)
		printReply(r, "")
	}
	return nil
}

// printReply renders a RESP reply the way redis-cli does, nested arrays
// indented.
func printReply(r respclient.Reply, indent string) {
	switch {
	case r.Nil:
		fmt.Println(indent + "(nil)")
	case r.Kind == '+':
		fmt.Println(indent + r.Str)
	case r.Kind == ':':
		fmt.Printf("%s(integer) %d\n", indent, r.Int)
	case r.Kind == '$':
		fmt.Printf("%s%q\n", indent, r.Str)
	case r.Kind == '*':
		if len(r.Elems) == 0 {
			fmt.Println(indent + "(empty array)")
			return
		}
		for i, e := range r.Elems {
			fmt.Printf("%s%d) ", indent, i+1)
			printReply(e, "")
		}
	}
}

// localREPL is the original in-process mode.
func localREPL() {
	store, err := prism.Open(prism.Options{
		NumThreads:        1,
		PWBBytesPerThread: 1 << 20,
		HSITCapacity:      1 << 18,
		NumSSDs:           2,
		SSDBytes:          64 << 20,
		SVCBytes:          8 << 20,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "open:", err)
		os.Exit(1)
	}
	defer store.Close()
	t := store.Thread(0)

	fmt.Println("prism-cli — type 'help' for commands")
	sc := bufio.NewScanner(os.Stdin)
	for {
		fmt.Print("prism> ")
		if !sc.Scan() {
			return
		}
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 {
			continue
		}
		switch fields[0] {
		case "put":
			if len(fields) != 3 {
				fmt.Println("usage: put <key> <value>")
				continue
			}
			if err := t.Put([]byte(fields[1]), []byte(fields[2])); err != nil {
				fmt.Println("error:", err)
			} else {
				fmt.Println("ok")
			}
		case "get":
			if len(fields) != 2 {
				fmt.Println("usage: get <key>")
				continue
			}
			v, err := t.Get([]byte(fields[1]))
			if err != nil {
				fmt.Println("error:", err)
			} else {
				fmt.Printf("%q\n", v)
			}
		case "del":
			if len(fields) != 2 {
				fmt.Println("usage: del <key>")
				continue
			}
			if err := t.Delete([]byte(fields[1])); err != nil {
				fmt.Println("error:", err)
			} else {
				fmt.Println("ok")
			}
		case "scan":
			if len(fields) != 3 {
				fmt.Println("usage: scan <start> <count>")
				continue
			}
			n, err := strconv.Atoi(fields[2])
			if err != nil {
				fmt.Println("count must be a number")
				continue
			}
			err = t.Scan([]byte(fields[1]), n, func(kv prism.KV) bool {
				fmt.Printf("  %s = %q\n", kv.Key, kv.Value)
				return true
			})
			if err != nil {
				fmt.Println("error:", err)
			}
		case "stats":
			s := store.Stats()
			fmt.Printf("ops: puts=%d gets=%d deletes=%d scans=%d\n", s.Puts, s.Gets, s.Deletes, s.Scans)
			fmt.Printf("reads: svcHits=%d pwbHits=%d vsReads=%d\n", s.SVCHits, s.PWBHits, s.VSReads)
			fmt.Printf("writes: reclaims=%d migrated=%d stalls=%d\n", s.Reclaims, s.PWBLiveMigrated, s.PutStalls)
			fmt.Printf("value storage: chunksWritten=%d gcRuns=%d free=%d\n", s.VS.ChunksWritten, s.VS.GCRuns, s.VS.FreeChunks)
			fmt.Printf("nvm space: index=%dB hsit=%dB\n", s.IndexSpaceBytes, s.HSITSpaceBytes)
		case "metrics", ".metrics":
			snap := store.Metrics()
			if len(fields) > 1 && fields[1] == "-json" {
				fmt.Println(snap.JSON())
				continue
			}
			if len(fields) > 1 {
				// Filter to the named metrics (exact names, see METRICS.md).
				want := map[string]bool{}
				for _, n := range fields[1:] {
					want[n] = true
				}
				var keep prism.Metrics
				for _, m := range snap.Metrics {
					if want[m.Name] {
						keep.Metrics = append(keep.Metrics, m)
					}
				}
				if len(keep.Metrics) == 0 {
					fmt.Println("no such metric; 'metrics' lists all (see METRICS.md)")
					continue
				}
				snap = keep
			}
			fmt.Print(snap.Text())
		case "crash":
			fmt.Println("simulating power failure...")
			store.Crash()
			rep, err := store.Recover()
			if err != nil {
				fmt.Println("recovery failed:", err)
				return
			}
			fmt.Printf("recovered %d keys (%d lost, %d drained from PWB) in %.2f virtual ms\n",
				rep.LiveKeys, rep.LostKeys, rep.PWBValuesDrained, float64(rep.VirtualNS)/1e6)
		case "help":
			fmt.Println("put <k> <v> | get <k> | del <k> | scan <start> <n> | stats | metrics [name...|-json] | crash | quit")
		case "quit", "exit":
			return
		default:
			fmt.Println("unknown command; try 'help'")
		}
	}
}
