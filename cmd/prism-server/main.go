// Command prism-server serves a Prism store over TCP speaking the RESP2
// protocol, so stock Redis/Valkey clients (and prism-cli -connect) can
// drive the engine.
//
// Usage:
//
//	prism-server                         # listen on :6380, 4 store threads
//	prism-server -addr 127.0.0.1:7000 -threads 8 -ssds 4
//	redis-cli -p 6380 SET k v            # any RESP2 client works
//	prism-cli -connect 127.0.0.1:6380    # the in-repo client
//
// Store sizing:
//
//	-threads N    store threads = max concurrent command streams (default 4)
//	-ssds N       simulated flash devices (default 2)
//	-ssd-bytes N  capacity per device (default 256 MiB)
//	-pwb-bytes N  persistent write buffer per thread (default 1 MiB)
//	-svc-bytes N  DRAM value-cache budget (default 16 MiB)
//	-keys N       HSIT capacity = max live keys (default 1<<20)
//	-shards N     independent store shards behind the hash router
//	              (default 1; every shard gets the full sizing above)
//	-replicas N   place each key on N shards of the ring for failover
//	              (default 1 = unreplicated; requires -shards >= N)
//	-placement M  key placement across shards: hash (default) or range
//	              (contiguous key ranges per shard, resharded online)
//	-split KEYS   comma-separated range boundary keys for -placement range
//	              (empty = one all-covering range, split online)
//	-tiers SPEC   heterogeneous SSD array with hot/cold tiering: comma-
//	              separated size[:writeMBps[:readMBps]] devices with
//	              K/M/G suffixes (replaces -ssds/-ssd-bytes)
//	-ssd-write-mbps N / -ssd-read-mbps N
//	              override every device's bandwidth, keeping the
//	              homogeneous array (mutually exclusive with -tiers)
//
// Server behavior:
//
//	-max-conns N      connection limit (default 256)
//	-idle-timeout D   per-connection idle timeout (default 5m)
//	-drain-timeout D  graceful-shutdown budget on SIGINT/SIGTERM (default 5s)
//	-metrics          dump the final obs snapshot as JSON on shutdown
//	-metrics-addr A   also serve the live snapshot in Prometheus text
//	                  format over HTTP at A (e.g. :9190) under /metrics
//
// On SIGINT/SIGTERM the server drains: in-flight pipelines finish, then
// connections close and the store shuts down cleanly.
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro"
	"repro/internal/server"
	"repro/internal/ssd"
)

func main() {
	var (
		addr         = flag.String("addr", ":6380", "TCP listen address")
		threads      = flag.Int("threads", 4, "store threads (concurrent command streams)")
		ssds         = flag.Int("ssds", 2, "simulated flash devices")
		ssdBytes     = flag.Int64("ssd-bytes", 256<<20, "capacity per simulated SSD")
		pwbBytes     = flag.Int("pwb-bytes", 1<<20, "persistent write buffer per thread")
		svcBytes     = flag.Int64("svc-bytes", 16<<20, "DRAM value-cache budget")
		keys         = flag.Int("keys", 1<<20, "HSIT capacity (max live keys)")
		shards       = flag.Int("shards", 1, "independent store shards behind the hash router")
		replicas     = flag.Int("replicas", 1, "place each key on this many shards of the router ring")
		placement    = flag.String("placement", "hash", "key placement across shards: hash or range")
		split        = flag.String("split", "", "comma-separated range boundary keys for -placement range")
		maxConns     = flag.Int("max-conns", 256, "max concurrent client connections")
		idleTimeout  = flag.Duration("idle-timeout", 5*time.Minute, "close connections idle this long")
		drainTimeout = flag.Duration("drain-timeout", 5*time.Second, "graceful-shutdown budget")
		metrics      = flag.Bool("metrics", false, "dump the final metrics snapshot as JSON on shutdown")
		metricsAddr  = flag.String("metrics-addr", "", "serve Prometheus-format metrics over HTTP at this address (empty = off)")
		tiers        = flag.String("tiers", "", "heterogeneous SSD array with hot/cold tiering: size[:writeMBps[:readMBps]],...")
		wmbps        = flag.Int64("ssd-write-mbps", 0, "override every SSD's write bandwidth, MB/s (0 = paper default)")
		rmbps        = flag.Int64("ssd-read-mbps", 0, "override every SSD's read bandwidth, MB/s (0 = paper default)")
	)
	flag.Parse()

	tierCfgs, err := prism.ParseTierSpec(*tiers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "-tiers:", err)
		os.Exit(1)
	}
	if len(tierCfgs) > 0 && (*wmbps > 0 || *rmbps > 0) {
		fmt.Fprintln(os.Stderr, "-tiers already sets per-device speeds; drop -ssd-write-mbps/-ssd-read-mbps")
		os.Exit(1)
	}
	if *placement != "hash" && *placement != "range" {
		fmt.Fprintln(os.Stderr, "unknown -placement (hash or range)")
		os.Exit(1)
	}
	if *split != "" && *placement != "range" {
		fmt.Fprintln(os.Stderr, "-split requires -placement range")
		os.Exit(1)
	}
	if len(tierCfgs) == 0 && (*wmbps > 0 || *rmbps > 0) {
		tierCfgs = make([]ssd.Config, *ssds)
		for i := range tierCfgs {
			tierCfgs[i].Size = *ssdBytes
			tierCfgs[i].WriteBandwidth = *wmbps * 1_000_000
			tierCfgs[i].ReadBandwidth = *rmbps * 1_000_000
		}
	}

	store, err := prism.Open(prism.Options{
		NumThreads:        *threads,
		PWBBytesPerThread: *pwbBytes,
		HSITCapacity:      *keys,
		NumSSDs:           *ssds,
		SSDBytes:          *ssdBytes,
		SSDConfigs:        tierCfgs,
		EnableTiering:     *tiers != "",
		SVCBytes:          *svcBytes,
		Shards:            *shards,
		Replicas:          *replicas,
		Placement:         *placement,
		SplitKeys:         prism.ParseSplitKeys(*split),
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "open:", err)
		os.Exit(1)
	}

	if *metricsAddr != "" {
		mux := http.NewServeMux()
		mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			store.Metrics().WriteOpenMetrics(w)
		})
		go func() {
			if err := http.ListenAndServe(*metricsAddr, mux); err != nil {
				fmt.Fprintln(os.Stderr, "metrics-addr:", err)
			}
		}()
		fmt.Printf("metrics on http://%s/metrics\n", *metricsAddr)
	}

	srv := server.New(store, server.Config{
		MaxConns:    *maxConns,
		IdleTimeout: *idleTimeout,
	})

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGINT, syscall.SIGTERM)

	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe(*addr) }()

	// Give Serve a beat to bind so we can print the bound address (it
	// matters with ":0"); failure surfaces through errCh either way.
	for i := 0; i < 100 && srv.Addr() == nil; i++ {
		select {
		case err := <-errCh:
			fmt.Fprintln(os.Stderr, "serve:", err)
			os.Exit(1)
		case <-time.After(10 * time.Millisecond):
		}
	}
	if a := srv.Addr(); a != nil {
		fmt.Printf("prism-server listening on %s (%d shards, %d store threads, %d SSDs per shard)\n", a, *shards, *threads, *ssds)
	}

	select {
	case sig := <-sigCh:
		fmt.Printf("\n%s: draining (up to %s)...\n", sig, *drainTimeout)
		if err := srv.Shutdown(*drainTimeout); err != nil {
			fmt.Fprintln(os.Stderr, "shutdown:", err)
		}
	case err := <-errCh:
		if err != nil {
			fmt.Fprintln(os.Stderr, "serve:", err)
			store.Close()
			os.Exit(1)
		}
	}

	if *metrics {
		fmt.Println(store.Metrics().JSON())
	}
	if err := store.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "close:", err)
		os.Exit(1)
	}
}
