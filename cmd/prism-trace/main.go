// Command prism-trace records and replays workload traces.
//
// Record a workload to a file (deterministic given -seed):
//
//	prism-trace -record trace.txt -workload E -records 10000 -ops 50000
//
// Replay a trace against an engine and report throughput/latency:
//
//	prism-trace -replay trace.txt -engine prism
//	prism-trace -replay trace.txt -engine kvell
//
// Replaying the same trace against two engines compares them on an
// *identical* request sequence — no generator variance — which is also
// how a captured production trace (e.g., the Nutanix workload of §7.5,
// known publicly only by its op mix) would be used.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bench"
	"repro/internal/engine"
	"repro/internal/histogram"
	"repro/internal/ycsb"
)

func main() {
	var (
		record     = flag.String("record", "", "write a generated trace to this file")
		replay     = flag.String("replay", "", "replay a trace file against -engine")
		engineName = flag.String("engine", "prism", "engine for -replay")
		workload   = flag.String("workload", "A", "workload for -record (A-E, N)")
		records    = flag.Int("records", 10000, "keyspace size (load phase and generator)")
		ops        = flag.Int("ops", 20000, "ops to record")
		value      = flag.Int("value", 1024, "value size in bytes")
		zipf       = flag.Float64("zipf", 0.99, "zipfian coefficient for -record")
		seed       = flag.Uint64("seed", 42, "generator seed for -record")
		metrics    = flag.Bool("metrics", false, "after -replay, print the final metrics snapshot as JSON (see METRICS.md)")
	)
	flag.Parse()

	switch {
	case *record != "":
		doRecord(*record, ycsb.Workload((*workload)[0]), *records, *ops, *value, *zipf, *seed)
	case *replay != "":
		doReplay(*replay, *engineName, *records, *value, *metrics)
	default:
		fmt.Fprintln(os.Stderr, "need -record <file> or -replay <file>")
		os.Exit(1)
	}
}

func doRecord(path string, w ycsb.Workload, records, ops, value int, zipf float64, seed uint64) {
	f, err := os.Create(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	cfg := ycsb.Config{Workload: w, Records: uint64(records), Zipfian: zipf, ValueSize: value}
	gen := ycsb.NewGenerator(cfg, ycsb.NewShared(cfg), seed)
	fmt.Fprintf(f, "# workload=%c records=%d zipf=%v seed=%d\n", w, records, zipf, seed)
	if _, err := ycsb.Capture(f, gen, ops); err != nil {
		fatal(err)
	}
	fmt.Printf("recorded %d ops of workload %c to %s\n", ops, w, path)
}

func doReplay(path, engineName string, records, value int, metrics bool) {
	f, err := os.Open(path)
	if err != nil {
		fatal(err)
	}
	traceOps, err := ycsb.ReadTrace(f)
	f.Close()
	if err != nil {
		fatal(err)
	}

	th := 1 // replay is single-threaded: the trace is one sequence
	st, err := bench.NewEngine(engineName, bench.Params{Threads: th, Records: records, ValueSize: value})
	if err != nil {
		fatal(err)
	}
	defer st.Close()

	// Load the keyspace first so reads/updates hit existing keys.
	rc := bench.RunConfig{Threads: th, Records: records, ValueSize: value}
	bench.Load(st, engineName, rc)

	kv := st.Thread(0)
	clk := kv.Clock()
	h := histogram.New()
	val := make([]byte, value)
	start := clk.Now()
	errors := 0
	rep := ycsb.NewReplayer(traceOps)
	for {
		op, ok := rep.Next()
		if !ok {
			break
		}
		t0 := clk.Now()
		var err error
		switch op.Kind {
		case ycsb.OpInsert, ycsb.OpUpdate:
			err = kv.Put(op.Key, val)
		case ycsb.OpRead:
			_, err = kv.Get(op.Key)
		case ycsb.OpScan:
			err = kv.Scan(op.Key, op.ScanLen, func(k, v []byte) bool { return true })
		}
		if err != nil && err != engine.ErrNotFound {
			errors++
		}
		h.Record(clk.Now() - t0)
	}
	dur := clk.Now() - start
	fmt.Printf("%s: replayed %d ops in %.2f virtual ms — %.1f Kops/sec, %d errors\n",
		engineName, rep.Len(), float64(dur)/1e6,
		float64(rep.Len())/(float64(dur)/1e9)/1e3, errors)
	fmt.Printf("latency: %s\n", h.Summarize())
	if metrics {
		if src, ok := st.(bench.MetricsSource); ok {
			fmt.Println(src.Metrics().JSON())
		} else {
			fmt.Println("{}")
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
