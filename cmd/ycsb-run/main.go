// Command ycsb-run drives one YCSB workload (Table 2) against any of the
// implemented engines and prints throughput and the latency distribution
// — the smallest unit of the paper's evaluation.
//
//	ycsb-run -engine prism -workload C -threads 8 -records 20000 -ops 50000
//	ycsb-run -engine kvell -workload E -zipf 1.2
//	ycsb-run -engine prism -workload A -metrics   # + JSON metrics snapshot
//	ycsb-run -engine prism -workload A -shards 4  # sharded scale-out
//	ycsb-run -engine prism -workload A -pipeline 32  # async pipelining
//	ycsb-run -connect 127.0.0.1:6379 -workload A -conns 8  # wire mode
//
// Engines: prism, kvell, matrixkv, rocksdb-nvm, slm-db.
// Workloads: L (load only), A, B, C, D, E, N (Nutanix mix).
// -shards N runs Prism as N independent stores behind the hash router
// (baselines ignore it).
// -replicas N places each key on N shards of the router ring with
// last-writer-wins replication (Prism only; requires -shards >= N).
// -placement range routes keys by contiguous key ranges instead of the
// hash ring (Prism only); -split gives the comma-separated boundary
// keys (empty = one all-covering range, split online).
// -pipeline N submits ops through the engine's async pipeline, draining
// every N submissions (engines without one fall back to sync calls).
// -tiers SPEC runs Prism on a heterogeneous SSD array with hot/cold
// tiering: comma-separated size[:writeMBps[:readMBps]] devices with
// K/M/G suffixes, e.g. -tiers 64M:5000,512M:1000.
// -ssd-write-mbps / -ssd-read-mbps override every simulated device's
// bandwidth while keeping the homogeneous array (Prism only; mutually
// exclusive with -tiers).
// -metrics prints the store's final obs snapshot (METRICS.md) as the last
// output; -metrics-format selects json (default) or prom (Prometheus
// text). Baselines without a registry print {} / nothing.
// -connect ADDR skips the in-process engine entirely and drives the
// workload over RESP against an already-running prism-server (start one
// with cmd/prism-server): -conns connections, each pipelining -pipeline
// commands in flight. Engine-shaping flags are ignored; throughput is
// wall-clock, since the server's virtual clocks are not reachable over
// the wire (use the in-process `wire` experiment for virtual-time
// numbers).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro"
	"repro/internal/bench"
	"repro/internal/ssd"
	"repro/internal/ycsb"
)

func main() {
	var (
		engineName = flag.String("engine", "prism", "engine: "+strings.Join(bench.AllEngines, ", "))
		workload   = flag.String("workload", "C", "workload: L, A, B, C, D, E, N")
		threads    = flag.Int("threads", 8, "client threads")
		records    = flag.Int("records", 10000, "records to load")
		ops        = flag.Int("ops", 20000, "measured operations")
		value      = flag.Int("value", 1024, "value size in bytes")
		zipf       = flag.Float64("zipf", 0.99, "zipfian coefficient")
		seed       = flag.Uint64("seed", 42, "workload seed")
		batch      = flag.Int("batch", 1, "group consecutive same-kind ops into PutBatch/MultiGet windows of this size")
		pipeline   = flag.Int("pipeline", 1, "submit ops through the async pipeline, draining every N submissions (Prism only)")
		shards     = flag.Int("shards", 1, "run Prism as this many independent stores behind the hash router")
		replicas   = flag.Int("replicas", 1, "place each key on this many shards of the router ring (Prism only)")
		placement  = flag.String("placement", "hash", "key placement across shards: hash or range (Prism only)")
		split      = flag.String("split", "", "comma-separated range boundary keys for -placement range")
		metrics    = flag.Bool("metrics", false, "print the final metrics snapshot (see METRICS.md)")
		mformat    = flag.String("metrics-format", "json", "metrics output format: json or prom")
		tiers      = flag.String("tiers", "", "heterogeneous SSD array with hot/cold tiering: size[:writeMBps[:readMBps]],... (Prism only)")
		wmbps      = flag.Int64("ssd-write-mbps", 0, "override every SSD's write bandwidth, MB/s (Prism only; 0 = paper default)")
		rmbps      = flag.Int64("ssd-read-mbps", 0, "override every SSD's read bandwidth, MB/s (Prism only; 0 = paper default)")
		connect    = flag.String("connect", "", "drive the workload over RESP against a running server at this address instead of an in-process engine")
		conns      = flag.Int("conns", 8, "client connections in -connect mode")
	)
	flag.Parse()
	if *mformat != "json" && *mformat != "prom" {
		fmt.Fprintf(os.Stderr, "unknown -metrics-format %q (json or prom)\n", *mformat)
		os.Exit(1)
	}
	if _, err := prism.ParseTierSpec(*tiers); err != nil {
		fmt.Fprintf(os.Stderr, "-tiers: %v\n", err)
		os.Exit(1)
	}
	if *tiers != "" && (*wmbps > 0 || *rmbps > 0) {
		fmt.Fprintln(os.Stderr, "-tiers already sets per-device speeds; drop -ssd-write-mbps/-ssd-read-mbps")
		os.Exit(1)
	}
	if *placement != "hash" && *placement != "range" {
		fmt.Fprintln(os.Stderr, "unknown -placement (hash or range)")
		os.Exit(1)
	}
	if *split != "" && *placement != "range" {
		fmt.Fprintln(os.Stderr, "-split requires -placement range")
		os.Exit(1)
	}

	w := ycsb.Workload(strings.ToUpper(*workload)[0])
	switch w {
	case ycsb.Load, ycsb.WorkloadA, ycsb.WorkloadB, ycsb.WorkloadC, ycsb.WorkloadD, ycsb.WorkloadE, ycsb.Nutanix:
	default:
		fmt.Fprintf(os.Stderr, "unknown workload %q\n", *workload)
		os.Exit(1)
	}

	if *connect != "" {
		runWire(*connect, w, bench.RunConfig{
			Records:   *records,
			Ops:       *ops,
			ValueSize: *value,
			Zipfian:   *zipf,
			Seed:      *seed,
		}, *conns, *pipeline)
		return
	}

	th := *threads
	if *engineName == bench.EngineSLMDB {
		th = 1 // the open-source SLM-DB is single-threaded (§7.4)
	}
	var mut func(*prism.Options)
	if *wmbps > 0 || *rmbps > 0 {
		mut = func(o *prism.Options) {
			cfgs := make([]ssd.Config, o.NumSSDs)
			for i := range cfgs {
				cfgs[i].Size = o.SSDBytes
				cfgs[i].WriteBandwidth = *wmbps * 1_000_000
				cfgs[i].ReadBandwidth = *rmbps * 1_000_000
			}
			o.SSDConfigs = cfgs
		}
	}
	st, err := bench.NewEngine(*engineName, bench.Params{
		Threads:   th,
		Records:   *records,
		ValueSize: *value,
		Shards:    *shards,
		Replicas:  *replicas,
		TierSpec:  *tiers,
		Placement: *placement,
		SplitKeys: prism.ParseSplitKeys(*split),
		PrismMut:  mut,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer st.Close()

	rc := bench.RunConfig{
		Threads:   th,
		Records:   *records,
		Ops:       *ops,
		ValueSize: *value,
		Zipfian:   *zipf,
		Seed:      *seed,
		Batch:     *batch,
		Pipeline:  *pipeline,
	}

	load := bench.Load(st, *engineName, rc)
	report("LOAD", load)
	if w != ycsb.Load {
		r := bench.Run(st, *engineName, w, rc)
		report("YCSB-"+string(w), r)
	}
	dev, user := st.WriteAmp()
	if user > 0 {
		fmt.Printf("SSD write amplification: %.2f (%d device bytes / %d user bytes)\n",
			float64(dev)/float64(user), dev, user)
	}
	if *metrics {
		src, ok := st.(bench.MetricsSource)
		switch {
		case ok && *mformat == "prom":
			src.Metrics().WriteOpenMetrics(os.Stdout)
		case ok:
			fmt.Println(src.Metrics().JSON())
		case *mformat == "json":
			fmt.Println("{}")
		}
	}
}

func report(phase string, r bench.Result) {
	fmt.Printf("%-8s %8.1f Kops/sec  (%d ops in %.2f virtual ms, %d errors)\n",
		phase, r.KOpsPerSec(), r.Ops, float64(r.VirtualNS)/1e6, r.Errors)
	fmt.Printf("         latency %s\n", r.Lat)
}

// runWire drives load + workload phases over RESP connections against a
// running server. Throughput is wall-clock: the server's virtual device
// clocks are on the far side of the socket.
func runWire(addr string, w ycsb.Workload, rc bench.RunConfig, conns, depth int) {
	load, err := bench.RunWire(addr, ycsb.Load, rc, conns, depth)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	reportWire("LOAD", load, conns, depth)
	if w != ycsb.Load {
		r, err := bench.RunWire(addr, w, rc, conns, depth)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		reportWire("YCSB-"+string(w), r, conns, depth)
	}
}

func reportWire(phase string, r bench.WireResult, conns, depth int) {
	kops := 0.0
	if r.WallNS > 0 {
		kops = float64(r.Ops) / (float64(r.WallNS) / 1e9) / 1e3
	}
	fmt.Printf("%-8s %8.1f Kops/sec wall  (%d ops in %.2f ms over %d conns x depth %d, %d error replies)\n",
		phase, kops, r.Ops, float64(r.WallNS)/1e6, conns, depth, r.Errors)
}
