package prism

import (
	"os"
	"regexp"
	"testing"

	"repro/internal/server"
)

// metricsDocRow matches the first cell of a METRICS.md table row:
// "| `name` | type | ...". Prose mentions of metrics are not rows and
// are ignored.
var metricsDocRow = regexp.MustCompile("(?m)^\\| `([a-z0-9_.]+)`")

// TestMetricsDocsComplete keeps METRICS.md and the registry in lockstep:
// every documented metric must be exported by some store configuration,
// and every exported metric must be documented. The export set is the
// union of the default configuration, the DisableCombining ablation
// (which swaps the tcq.* family for ta.*), a sharded store (the shard.*
// router family), a replicated store (the shard.replica_* and repair.*
// families), a range-placed store (the shard.placement_*/range_scans
// and migrate.* families), and a store with a RESP server attached
// (which contributes the server.* family).
func TestMetricsDocsComplete(t *testing.T) {
	doc, err := os.ReadFile("METRICS.md")
	if err != nil {
		t.Fatalf("METRICS.md: %v", err)
	}
	documented := map[string]bool{}
	for _, m := range metricsDocRow.FindAllStringSubmatch(string(doc), -1) {
		documented[m[1]] = true
	}
	if len(documented) < 40 {
		t.Fatalf("only %d metrics documented in METRICS.md; table format changed?", len(documented))
	}

	exported := map[string]bool{}
	for _, opt := range []Options{{}, {DisableCombining: true}, {Shards: 2}, {Shards: 3, Replicas: 2},
		{Shards: 3, Placement: "range", SplitKeys: [][]byte{[]byte("g"), []byte("q")}}} {
		st, err := Open(opt)
		if err != nil {
			t.Fatal(err)
		}
		for _, n := range st.Metrics().Names() {
			exported[n] = true
		}
		st.Close()
	}
	st, err := Open(Options{})
	if err != nil {
		t.Fatal(err)
	}
	server.New(st, server.Config{}) // registers server.* without serving
	for _, n := range st.Metrics().Names() {
		exported[n] = true
	}
	st.Close()

	for n := range documented {
		if !exported[n] {
			t.Errorf("METRICS.md documents %q but no store configuration exports it", n)
		}
	}
	for n := range exported {
		if !documented[n] {
			t.Errorf("registry exports %q but METRICS.md does not document it", n)
		}
	}
}

// TestReadmeMentionsMetrics keeps the README's observability section
// pointing at the reference doc.
func TestReadmeMentionsMetrics(t *testing.T) {
	readme, err := os.ReadFile("README.md")
	if err != nil {
		t.Fatalf("README.md: %v", err)
	}
	for _, want := range []string{"METRICS.md", "-metrics", "Metrics()"} {
		if !regexp.MustCompile(regexp.QuoteMeta(want)).Match(readme) {
			t.Errorf("README.md does not mention %q", want)
		}
	}
}
