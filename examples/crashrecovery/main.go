// Crash-recovery example: exercise Prism's cross-media crash consistency
// (§5.5) end to end. Values land in the Persistent Write Buffer and
// Value Storage; a simulated power failure wipes everything volatile
// (DRAM cache, validity bitmaps, unflushed NVM cache lines, in-flight SSD
// writes); recovery rebuilds from the HSIT's forward/backward pointer
// couplings without any write-ahead log.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	store, err := prism.Open(prism.Options{
		NumThreads:        2,
		PWBBytesPerThread: 128 << 10,
		HSITCapacity:      1 << 16,
		NumSSDs:           2,
		SSDBytes:          16 << 20,
		SVCBytes:          512 << 10,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer store.Close()
	t := store.Thread(0)

	// Write enough that some values migrate to Value Storage while the
	// freshest stay in the PWB, then overwrite a few so superseded
	// versions exist everywhere.
	const n = 3000
	for i := 0; i < n; i++ {
		if err := t.Put(key(i), val(i, 0)); err != nil {
			log.Fatal(err)
		}
	}
	for i := 0; i < 100; i++ {
		if err := t.Put(key(i), val(i, 1)); err != nil {
			log.Fatal(err)
		}
	}
	if err := t.Delete(key(7)); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %d keys (100 overwritten, 1 deleted)\n", n)

	fmt.Println("simulating power failure...")
	store.Crash()

	rep, err := store.Recover()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recovery: %d live keys, %d lost, %d drained from PWB, %d rebuilt in Value Storage\n",
		rep.LiveKeys, rep.LostKeys, rep.PWBValuesDrained, rep.VSValuesRecovered)
	fmt.Printf("modeled recovery time: %.2f virtual ms\n", float64(rep.VirtualNS)/1e6)

	// Verify: every committed write is intact, overwrites kept the latest
	// version, the delete stayed deleted.
	for i := 0; i < n; i++ {
		if i == 7 {
			if _, err := t.Get(key(i)); err != prism.ErrNotFound {
				log.Fatalf("deleted key %d resurrected: %v", i, err)
			}
			continue
		}
		want := val(i, 0)
		if i < 100 {
			want = val(i, 1)
		}
		got, err := t.Get(key(i))
		if err != nil || string(got) != string(want) {
			log.Fatalf("key %d corrupted after recovery: %q, %v", i, got, err)
		}
	}
	fmt.Println("verified: all committed data intact, latest versions won, tombstone held")
}

func key(i int) []byte { return []byte(fmt.Sprintf("user%06d", i)) }

func val(i, version int) []byte {
	return []byte(fmt.Sprintf("value-%06d-v%d-%032d", i, version, i))
}
