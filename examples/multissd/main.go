// Multi-SSD example: Prism manages one Value Storage per SSD and spreads
// chunk writes across idle devices (§5.1-5.2), so aggregate bandwidth —
// and therefore write throughput — scales with the array, the Figure 13
// effect.
package main

import (
	"fmt"
	"log"
	"sync"

	"repro"
	"repro/internal/ssd"
)

func main() {
	fmt.Println("LOAD throughput vs number of simulated SSDs (cf. Figure 13):")
	for _, numSSDs := range []int{1, 2, 4, 8} {
		kops := loadThroughput(numSSDs)
		bar := ""
		for i := 0; i < int(kops/10); i++ {
			bar += "#"
		}
		fmt.Printf("  %d SSD(s): %7.1f Kops/sec  %s\n", numSSDs, kops, bar)
	}
}

func loadThroughput(numSSDs int) float64 {
	const threads = 8
	const opsPerThread = 2000
	// Use deliberately modest SSDs (250 MB/s writes) so the array's
	// aggregate bandwidth — not NVM or CPU — is the write-path ceiling,
	// as in the paper's 8-SSD testbed relative to its workload.
	store, err := prism.Open(prism.Options{
		NumThreads:        threads,
		PWBBytesPerThread: 128 << 10, // small PWB: reclamation bandwidth matters
		HSITCapacity:      1 << 17,
		NumSSDs:           numSSDs,
		SSDBytes:          64 << 20,
		SVCBytes:          1 << 20,
		SSD:               ssd.Config{WriteBandwidth: 250_000_000, ReadBandwidth: 500_000_000},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer store.Close()

	var wg sync.WaitGroup
	for ti := 0; ti < threads; ti++ {
		wg.Add(1)
		go func(ti int) {
			defer wg.Done()
			t := store.Thread(ti)
			value := make([]byte, 1024)
			for i := 0; i < opsPerThread; i++ {
				key := []byte(fmt.Sprintf("t%d-%08d", ti, i))
				if err := t.Put(key, value); err != nil {
					log.Fatal(err)
				}
			}
		}(ti)
	}
	wg.Wait()

	var maxNS int64
	for ti := 0; ti < threads; ti++ {
		if now := store.Thread(ti).Clk.Now(); now > maxNS {
			maxNS = now
		}
	}
	return float64(threads*opsPerThread) / (float64(maxNS) / 1e9) / 1e3
}
