// Quickstart: open a Prism store, write, read, scan, delete, and look at
// the engine's view of where values live (PWB on NVM, Value Storage on
// SSD, SVC in DRAM).
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	// Zero-value options open a small store over fresh simulated devices:
	// NVM for the key index + HSIT + write buffers, two flash SSDs for
	// value storage, DRAM for the scan-aware value cache.
	store, err := prism.Open(prism.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer store.Close()

	// Each application thread takes its own handle; handles own a private
	// Persistent Write Buffer and a virtual clock.
	t := store.Thread(0)

	// Writes are durable when Put returns: the value is persisted in the
	// PWB before its HSIT forward pointer is published (§5.4).
	for i := 0; i < 100; i++ {
		key := fmt.Sprintf("user%03d", i)
		if err := t.Put([]byte(key), []byte(fmt.Sprintf("profile-%d", i))); err != nil {
			log.Fatal(err)
		}
	}

	v, err := t.Get([]byte("user042"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("get user042 -> %s\n", v)

	// Range scans come back in key order, resolved across all media.
	fmt.Println("scan from user040:")
	err = t.Scan([]byte("user040"), 5, func(kv prism.KV) bool {
		fmt.Printf("  %s = %s\n", kv.Key, kv.Value)
		return true
	})
	if err != nil {
		log.Fatal(err)
	}

	if err := t.Delete([]byte("user042")); err != nil {
		log.Fatal(err)
	}
	if _, err := t.Get([]byte("user042")); err == prism.ErrNotFound {
		fmt.Println("user042 deleted")
	}

	s := store.Stats()
	fmt.Printf("\nengine stats: puts=%d gets=%d pwbHits=%d svcHits=%d vsReads=%d\n",
		s.Puts, s.Gets, s.PWBHits, s.SVCHits, s.VSReads)
	fmt.Printf("virtual time consumed by this thread: %.2f ms\n", float64(t.Clk.Now())/1e6)
}
