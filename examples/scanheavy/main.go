// Scan-heavy example: demonstrate the Scan-aware Value Cache's range
// reorganization (§4.4). A log-structured value store scatters a key
// range across chunks, so a scan costs many SSD reads; after the SVC's
// eviction-time sort-and-rewrite, the range sits contiguously in one
// chunk and later scans coalesce into fewer, larger reads.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	store, err := prism.Open(prism.Options{
		NumThreads:        1,
		PWBBytesPerThread: 256 << 10,
		HSITCapacity:      1 << 16,
		NumSSDs:           1,
		SSDBytes:          64 << 20,
		SVCBytes:          96 << 10, // small cache so scanned ranges evict quickly
		ChunkSize:         64 << 10,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer store.Close()
	t := store.Thread(0)

	// Interleave each key of prefix A with a burst of filler keys so
	// consecutive A-keys land several KB apart in the log — too far for
	// the scan path's read-merging to coalesce them.
	const n = 400
	filler := 0
	for i := 0; i < n; i++ {
		if err := t.Put([]byte(fmt.Sprintf("a%06d", i)), make([]byte, 512)); err != nil {
			log.Fatal(err)
		}
		for j := 0; j < 12; j++ {
			filler++
			if err := t.Put([]byte(fmt.Sprintf("b%06d", filler)), make([]byte, 512)); err != nil {
				log.Fatal(err)
			}
		}
	}

	scan := func(label string) {
		before := store.Stats().VSReads
		t0 := t.Clk.Now()
		count := 0
		err := t.Scan([]byte("a000100"), 50, func(kv prism.KV) bool {
			count++
			return true
		})
		if err != nil {
			log.Fatal(err)
		}
		s := store.Stats()
		fmt.Printf("%-28s %2d items, %3d SSD reads, %.1f virtual us\n",
			label, count, s.VSReads-before, float64(t.Clk.Now()-t0)/1e3)
	}

	scan("first scan (scattered):")

	// The scanned values are now chained in the SVC. Flood the cache so
	// the chain evicts, triggering the background sort-and-rewrite of the
	// whole range into one chunk.
	for i := 1; i <= 3000; i++ {
		if _, err := t.Get([]byte(fmt.Sprintf("b%06d", i%filler+1))); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("cache flooded; scan-range rewrites so far: %d\n", store.Stats().ScanRewrites)

	scan("second scan (reorganized):")
	fmt.Println("\nfewer SSD reads on the second scan = the range was rewritten contiguously")
}
