// YCSB example: drive the Prism public API with a read-mostly workload
// (YCSB-B of Table 2) from several concurrent threads and report
// throughput and tail latency in virtual time — a miniature of the
// paper's Figure 7 methodology.
package main

import (
	"fmt"
	"log"
	"sync"

	"repro"
	"repro/internal/histogram"
	"repro/internal/ycsb"
)

const (
	threads = 4
	records = 5000
	ops     = 20000
)

func main() {
	store, err := prism.Open(prism.Options{
		NumThreads:        threads,
		PWBBytesPerThread: 512 << 10,
		HSITCapacity:      records * 4,
		NumSSDs:           2,
		SSDBytes:          32 << 20,
		SVCBytes:          1 << 20, // ~20% of the 5 MB dataset
	})
	if err != nil {
		log.Fatal(err)
	}
	defer store.Close()

	// Load phase: insert `records` keys.
	loadCfg := ycsb.Config{Workload: ycsb.Load, InsertStart: 1, ValueSize: 1024}
	loadShared := ycsb.NewShared(loadCfg)
	parallel(func(ti int) {
		t := store.Thread(ti)
		gen := ycsb.NewGenerator(loadCfg, loadShared, uint64(ti)+1)
		for i := 0; i < records/threads; i++ {
			op := gen.Next()
			if err := t.Put(op.Key, gen.Value(uint64(i))); err != nil {
				log.Fatal(err)
			}
		}
	})

	// Measured phase: YCSB-B (95% reads, 5% updates, zipfian 0.99).
	runCfg := ycsb.Config{Workload: ycsb.WorkloadB, Records: records, Zipfian: 0.99, ValueSize: 1024}
	runShared := ycsb.NewShared(runCfg)
	hists := make([]*histogram.H, threads)
	durations := make([]int64, threads)
	parallel(func(ti int) {
		t := store.Thread(ti)
		gen := ycsb.NewGenerator(runCfg, runShared, uint64(ti)+100)
		h := histogram.New()
		start := t.Clk.Now()
		for i := 0; i < ops/threads; i++ {
			op := gen.Next()
			t0 := t.Clk.Now()
			var opErr error
			switch op.Kind {
			case ycsb.OpUpdate:
				opErr = t.Put(op.Key, gen.Value(uint64(i)))
			default:
				_, opErr = t.Get(op.Key)
			}
			if opErr != nil && opErr != prism.ErrNotFound {
				log.Fatal(opErr)
			}
			h.Record(t.Clk.Now() - t0)
		}
		hists[ti] = h
		durations[ti] = t.Clk.Now() - start
	})

	all := histogram.New()
	var maxDur int64
	for ti := 0; ti < threads; ti++ {
		all.Merge(hists[ti])
		if durations[ti] > maxDur {
			maxDur = durations[ti]
		}
	}
	fmt.Printf("YCSB-B: %.1f Kops/sec over %d threads\n",
		float64(ops)/(float64(maxDur)/1e9)/1e3, threads)
	fmt.Printf("latency: %s\n", all.Summarize())

	s := store.Stats()
	total := float64(s.SVCHits + s.PWBHits + s.VSReads)
	fmt.Printf("read breakdown: SVC %.0f%%, PWB %.0f%%, SSD %.0f%%\n",
		100*float64(s.SVCHits)/total, 100*float64(s.PWBHits)/total, 100*float64(s.VSReads)/total)
}

func parallel(fn func(ti int)) {
	var wg sync.WaitGroup
	for ti := 0; ti < threads; ti++ {
		wg.Add(1)
		go func(ti int) {
			defer wg.Done()
			fn(ti)
		}(ti)
	}
	wg.Wait()
}
