package bench

import (
	"strconv"
	"testing"

	"repro/internal/core"
	"repro/internal/ycsb"
)

// tiny returns a fast configuration for shape assertions.
func tiny() RunConfig {
	return RunConfig{Threads: 4, Records: 3000, Ops: 6000}
}

func TestLoadAndRunProduceSaneResults(t *testing.T) {
	st, err := NewEngine(EnginePrism, Params{Threads: 4, Records: 3000})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	rc := tiny()
	load := Load(st, EnginePrism, rc)
	if load.Ops == 0 || load.VirtualNS <= 0 || load.Errors != 0 {
		t.Fatalf("load result %+v", load)
	}
	r := Run(st, EnginePrism, ycsb.WorkloadC, rc)
	if r.Ops == 0 || r.KOpsPerSec() <= 0 {
		t.Fatalf("run result %+v", r)
	}
	if r.Errors != 0 {
		t.Fatalf("read-only workload produced %d errors", r.Errors)
	}
	if r.Lat.AvgUS <= 0 || r.Lat.P99US < r.Lat.P50US {
		t.Fatalf("latency summary implausible: %+v", r.Lat)
	}
}

func TestEveryEngineRunsEveryWorkload(t *testing.T) {
	rc := RunConfig{Threads: 2, Records: 1500, Ops: 2000}
	for _, kind := range AllEngines {
		kind := kind
		t.Run(kind, func(t *testing.T) {
			th := rc.Threads
			if kind == EngineSLMDB {
				th = 1
			}
			st, err := NewEngine(kind, Params{Threads: th, Records: rc.Records})
			if err != nil {
				t.Fatal(err)
			}
			defer st.Close()
			rck := rc
			rck.Threads = th
			Load(st, kind, rck)
			for _, w := range []ycsb.Workload{ycsb.WorkloadA, ycsb.WorkloadB, ycsb.WorkloadC, ycsb.WorkloadD, ycsb.WorkloadE, ycsb.Nutanix} {
				r := Run(st, kind, w, rck)
				if r.Ops == 0 {
					t.Fatalf("workload %c ran no ops", w)
				}
				if r.Errors > r.Ops/10 {
					t.Fatalf("workload %c: %d errors out of %d ops", w, r.Errors, r.Ops)
				}
			}
			dev, user := st.WriteAmp()
			if user <= 0 || dev <= 0 {
				t.Fatalf("write accounting: dev=%d user=%d", dev, user)
			}
		})
	}
}

// Figure 12's headline shape: Prism's PWB coalescing keeps its SSD WAF
// far below KVell's page-granularity RMW.
func TestWAFShapePrismBelowKVell(t *testing.T) {
	rc := tiny()
	measure := func(kind string) float64 {
		st, err := NewEngine(kind, Params{Threads: rc.Threads, Records: rc.Records})
		if err != nil {
			t.Fatal(err)
		}
		defer st.Close()
		Load(st, kind, rc)
		d0, u0 := st.WriteAmp()
		Run(st, kind, ycsb.WorkloadA, rc)
		d1, u1 := st.WriteAmp()
		return float64(d1-d0) / float64(u1-u0)
	}
	prism := measure(EnginePrism)
	kvell := measure(EngineKVell)
	if prism >= kvell {
		t.Fatalf("WAF shape violated: prism %.2f >= kvell %.2f", prism, kvell)
	}
	if prism > 2.0 {
		t.Fatalf("prism WAF %.2f implausibly high (PWB coalescing broken?)", prism)
	}
}

// Figure 11's headline shape: thread combining beats timeout-based async
// IO at high queue depth on read-only workloads.
func TestThreadCombiningBeatsTimeoutAtDepth(t *testing.T) {
	rc := tiny()
	measure := func(disable bool) float64 {
		p := Params{Threads: rc.Threads, Records: rc.Records, QueueDepth: 64,
			PrismMut: func(o *core.Options) { o.DisableCombining = disable; o.SVCBytes = 64 << 10 }}
		st, err := NewEngine(EnginePrism, p)
		if err != nil {
			t.Fatal(err)
		}
		defer st.Close()
		Load(st, EnginePrism, rc)
		return Run(st, EnginePrism, ycsb.WorkloadC, rc).KOpsPerSec()
	}
	tc := measure(false)
	ta := measure(true)
	if tc <= ta {
		t.Fatalf("TC (%.1f) not faster than TA (%.1f) at QD 64", tc, ta)
	}
}

// Figure 16's headline shape: Prism throughput grows with thread count.
func TestPrismScalesWithThreads(t *testing.T) {
	measure := func(threads int) float64 {
		rc := RunConfig{Threads: threads, Records: 3000, Ops: 8000}
		st, err := NewEngine(EnginePrism, Params{Threads: threads, Records: rc.Records})
		if err != nil {
			t.Fatal(err)
		}
		defer st.Close()
		Load(st, EnginePrism, rc)
		return Run(st, EnginePrism, ycsb.WorkloadB, rc).KOpsPerSec()
	}
	t2 := measure(2)
	t16 := measure(16)
	if t16 < t2*2 {
		t.Fatalf("no multicore scaling: 2 threads %.1fK, 16 threads %.1fK", t2, t16)
	}
}

func TestRecoveryExperimentRuns(t *testing.T) {
	tab := Recovery(RunConfig{Threads: 2, Records: 1500, Ops: 1000})
	if len(tab.Rows) != 2 {
		t.Fatalf("recovery rows: %v", tab.Rows)
	}
	for _, row := range tab.Rows {
		ms, err := strconv.ParseFloat(row[1], 64)
		if err != nil || ms <= 0 {
			t.Fatalf("recovery time cell %q", row[1])
		}
	}
}

func TestNVMSpaceExperiment(t *testing.T) {
	tab := NVMSpace(RunConfig{Threads: 2, Records: 2000, Ops: 100})
	if len(tab.Rows) != 3 {
		t.Fatalf("rows: %v", tab.Rows)
	}
	perRec, err := strconv.ParseFloat(tab.Rows[2][2], 64)
	if err != nil {
		t.Fatal(err)
	}
	// HSIT is 16 B/record; the index adds key bytes + node overhead. The
	// paper reports ~54 B/record for 100M pairs.
	if perRec < 16 || perRec > 400 {
		t.Fatalf("NVM bytes/record = %.1f implausible", perRec)
	}
}

func TestTimelineCollection(t *testing.T) {
	st, err := NewEngine(EnginePrism, Params{Threads: 2, Records: 1500})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	rc := RunConfig{Threads: 2, Records: 1500, Ops: 3000, TimelineBucketNS: 1_000_000}
	Load(st, EnginePrism, rc)
	r := Run(st, EnginePrism, ycsb.WorkloadA, rc)
	if len(r.Timeline) == 0 {
		t.Fatal("no timeline points collected")
	}
	var total int64
	for _, pt := range r.Timeline {
		total += pt.Ops
	}
	if total != r.Ops {
		t.Fatalf("timeline accounts %d of %d ops", total, r.Ops)
	}
}

func TestTableRendering(t *testing.T) {
	tab := Table{
		Title:  "t",
		Header: []string{"a", "bb"},
		Rows:   [][]string{{"1", "2"}, {"333", "4"}},
		Notes:  []string{"n"},
	}
	out := tab.String()
	if out == "" || len(out) < 20 {
		t.Fatalf("render: %q", out)
	}
}

// TestBatchedRunner drives the Batch>1 path: ops are grouped into
// PutBatch/MultiGet windows, per-op counts stay exact, and the store's
// batch metrics confirm the windows actually reached the batch API.
func TestBatchedRunner(t *testing.T) {
	st, err := NewEngine(EnginePrism, Params{Threads: 4, Records: 3000})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	rc := tiny()
	rc.Batch = 8
	load := Load(st, EnginePrism, rc)
	if load.Ops == 0 || load.Errors != 0 {
		t.Fatalf("batched load result %+v", load)
	}
	r := Run(st, EnginePrism, ycsb.WorkloadA, rc)
	if r.Errors != 0 {
		t.Fatalf("batched run produced %d errors", r.Errors)
	}
	// Per-op accounting must not change under batching: every generated
	// op records exactly one latency sample.
	wantOps := int64(rc.Ops/rc.Threads) * int64(rc.Threads)
	if r.Ops != wantOps {
		t.Fatalf("batched run counted %d ops, want %d", r.Ops, wantOps)
	}
	src, ok := st.(MetricsSource)
	if !ok {
		t.Fatal("prism engine lost MetricsSource")
	}
	snap := src.Metrics()
	if m, ok := snap.Get("core.batch_ops", map[string]string{"op": "put"}); !ok || m.Value <= 0 {
		t.Fatalf("core.batch_ops{op=put} = %+v ok=%v", m, ok)
	}
	if m, ok := snap.Get("core.batch_ops", map[string]string{"op": "get"}); !ok || m.Value <= 0 {
		t.Fatalf("core.batch_ops{op=get} = %+v ok=%v", m, ok)
	}
	// The fallback loop path must agree on counts for a non-batch engine.
	st2, err := NewEngine(EngineKVell, Params{Threads: 4, Records: 3000})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	load2 := Load(st2, EngineKVell, rc)
	if load2.Ops != load.Ops || load2.Errors != 0 {
		t.Fatalf("fallback batched load %+v vs %+v", load2, load)
	}
}
