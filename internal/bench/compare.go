package bench

import (
	"encoding/json"
	"fmt"
)

// CompareTrajectories diffs two committed bench-trajectory documents
// (the JSON `make bench-record` writes): captures are matched by
// (engine, workload), and every matched capture whose new virtual-time
// throughput fell below old*(1-threshold) produces one failure line, as
// does a workload present in the old document but missing from the new
// one (a silently dropped measurement must not read as a pass).
// Captures without a recorded KOps (older documents, or phases that do
// not measure throughput) are skipped. The returned slice is empty when
// the new trajectory is acceptable.
func CompareTrajectories(oldDoc, newDoc []byte, threshold float64) ([]string, error) {
	type doc struct {
		Captures []EngineMetrics `json:"captures"`
	}
	var od, nd doc
	if err := json.Unmarshal(oldDoc, &od); err != nil {
		return nil, fmt.Errorf("bench: old trajectory: %w", err)
	}
	if err := json.Unmarshal(newDoc, &nd); err != nil {
		return nil, fmt.Errorf("bench: new trajectory: %w", err)
	}
	key := func(m EngineMetrics) string { return m.Engine + "/" + m.Workload }
	newKOps := map[string]float64{}
	for _, m := range nd.Captures {
		newKOps[key(m)] = m.KOps
	}
	var failures []string
	for _, m := range od.Captures {
		if m.KOps == 0 {
			continue
		}
		got, ok := newKOps[key(m)]
		if !ok {
			failures = append(failures, fmt.Sprintf("%s: missing from new trajectory (old %.1f Kops/sec)", key(m), m.KOps))
			continue
		}
		if got < m.KOps*(1-threshold) {
			failures = append(failures, fmt.Sprintf("%s: %.1f -> %.1f Kops/sec (-%.1f%%, threshold %.0f%%)",
				key(m), m.KOps, got, (1-got/m.KOps)*100, threshold*100))
		}
	}
	return failures, nil
}
