package bench

import (
	"strings"
	"testing"
)

// TestCompareTrajectories exercises the regression gate's decision
// table: pass within threshold, fail past it, fail on a dropped
// workload, and skip captures with no recorded throughput.
func TestCompareTrajectories(t *testing.T) {
	old := []byte(`{"captures":[
		{"engine":"prism","workload":"depth-1","kops":100},
		{"engine":"prism","workload":"depth-2","kops":200},
		{"engine":"prism","workload":"legacy","kops":0}
	]}`)

	t.Run("within threshold", func(t *testing.T) {
		newer := []byte(`{"captures":[
			{"engine":"prism","workload":"depth-1","kops":80},
			{"engine":"prism","workload":"depth-2","kops":210}
		]}`)
		failures, err := CompareTrajectories(old, newer, 0.25)
		if err != nil {
			t.Fatal(err)
		}
		if len(failures) != 0 {
			t.Fatalf("expected pass, got failures: %v", failures)
		}
	})

	t.Run("regression past threshold", func(t *testing.T) {
		newer := []byte(`{"captures":[
			{"engine":"prism","workload":"depth-1","kops":50},
			{"engine":"prism","workload":"depth-2","kops":210}
		]}`)
		failures, err := CompareTrajectories(old, newer, 0.25)
		if err != nil {
			t.Fatal(err)
		}
		if len(failures) != 1 || !strings.Contains(failures[0], "depth-1") {
			t.Fatalf("expected one depth-1 regression, got %v", failures)
		}
	})

	t.Run("missing workload fails", func(t *testing.T) {
		newer := []byte(`{"captures":[
			{"engine":"prism","workload":"depth-1","kops":100}
		]}`)
		failures, err := CompareTrajectories(old, newer, 0.25)
		if err != nil {
			t.Fatal(err)
		}
		if len(failures) != 1 || !strings.Contains(failures[0], "missing") {
			t.Fatalf("expected one missing-workload failure, got %v", failures)
		}
	})

	t.Run("zero-kops old captures are skipped", func(t *testing.T) {
		// "legacy" has kops 0 in old and is absent from new; it must
		// not count as missing.
		newer := []byte(`{"captures":[
			{"engine":"prism","workload":"depth-1","kops":100},
			{"engine":"prism","workload":"depth-2","kops":200}
		]}`)
		failures, err := CompareTrajectories(old, newer, 0.25)
		if err != nil {
			t.Fatal(err)
		}
		if len(failures) != 0 {
			t.Fatalf("expected legacy capture skipped, got %v", failures)
		}
	})

	t.Run("malformed document errors", func(t *testing.T) {
		if _, err := CompareTrajectories([]byte("{"), old, 0.25); err == nil {
			t.Fatal("expected error on malformed old document")
		}
		if _, err := CompareTrajectories(old, []byte("{"), 0.25); err == nil {
			t.Fatal("expected error on malformed new document")
		}
	})
}
