package bench

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/engine"
)

func TestDiagPrismLoad(t *testing.T) {
	for _, tc := range []struct {
		name string
		mut  func(*core.Options)
	}{
		{"default", nil},
		{"bigPWB", func(o *core.Options) { o.PWBBytesPerThread = 32 << 20 }},
		{"noSVC", func(o *core.Options) { o.DisableSVC = true }},
	} {
		p := Params{Threads: 4, Records: 4000, ValueSize: 1024, PrismMut: tc.mut}
		st, _ := NewEngine(EnginePrism, p)
		rc := RunConfig{Threads: 4, Records: 4000, Ops: 8000}
		r := Load(st, EnginePrism, rc)
		ps := st.(*engine.PrismStore)
		stats := ps.S.Stats()
		fmt.Printf("%-8s LOAD=%6.1fK avg=%5.1fus p99=%6.1fus stalls=%d reclaims=%d migrated=%d\n",
			tc.name, r.KOpsPerSec(), r.Lat.AvgUS, r.Lat.P99US, stats.PutStalls, stats.Reclaims, stats.PWBLiveMigrated)
		st.Close()
	}
}
