package bench

import (
	"repro/internal/core"
	"repro/internal/devices"
	"repro/internal/ycsb"
)

// DiscussionMedia explores §8's claim that Prism's lessons carry to
// other storage media: the same engine, unchanged, over different Value
// Storage device profiles — PCIe 3/4 flash, the PCIe 5 projection, and
// an ultra-low-latency NVM SSD. Bandwidth-bound phases (LOAD) should
// track device bandwidth; latency-sensitive reads (YCSB-C misses) should
// track device latency.
func DiscussionMedia(rc RunConfig) Table {
	rc.applyDefaults()
	t := Table{
		Title:  "Discussion (§8): Prism across storage media (Kops/sec)",
		Header: []string{"value-storage device", "LOAD", "YCSB-A", "YCSB-C"},
	}
	for _, p := range []devices.Profile{
		devices.Samsung980,
		devices.Samsung980Pro,
		devices.PCIe5Flash,
		devices.Optane905P,
	} {
		prof := p
		params := Params{Threads: rc.Threads, Records: rc.Records, ValueSize: rc.ValueSize,
			PrismMut: func(o *core.Options) {
				cfg := prof.SSDConfig()
				cfg.Size = o.SSDBytes
				o.SSD = cfg
			}}
		st, err := NewEngine(EnginePrism, params)
		if err != nil {
			panic(err)
		}
		load := Load(st, EnginePrism, rc)
		a := Run(st, EnginePrism, ycsb.WorkloadA, rc)
		c := Run(st, EnginePrism, ycsb.WorkloadC, rc)
		st.Close()
		t.Rows = append(t.Rows, []string{prof.Model, f1(load.KOpsPerSec()), f1(a.KOpsPerSec()), f1(c.KOpsPerSec())})
	}
	t.Notes = append(t.Notes, "same engine and configuration; only the SSD profile changes")
	return t
}

func init() {
	Experiments["discussion-media"] = func(rc RunConfig) []Table { return []Table{DiscussionMedia(rc)} }
}
