package bench

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/kvell"
	"repro/internal/lsm"
	"repro/internal/slmdb"
)

// Engine kinds, matching the paper's configurations of Table 1.
const (
	EnginePrism      = "prism"
	EngineKVell      = "kvell"
	EngineMatrixKV   = "matrixkv"
	EngineRocksDBNVM = "rocksdb-nvm"
	EngineSLMDB      = "slm-db"
)

// AllEngines lists every implemented engine.
var AllEngines = []string{EnginePrism, EngineKVell, EngineMatrixKV, EngineRocksDBNVM, EngineSLMDB}

// Params sizes an engine for a dataset, applying Table 1's cost-equal
// memory split scaled to the (much smaller) simulated dataset:
// Prism 20% DRAM cache + 16% NVM buffer, KVell 32% DRAM cache,
// MatrixKV 26% DRAM + 8% NVM — the same ratios as 20/16/32/26/8 GB
// against the paper's 100 GB dataset.
type Params struct {
	Threads    int
	NumSSDs    int
	Records    int
	ValueSize  int
	QueueDepth int

	// Shards > 1 opens Prism as that many independent stores behind the
	// hash router; each shard gets the full scaled sizing below. Only
	// Prism shards (the baselines ignore it).
	Shards int

	// Replicas > 1 places each key on that many ring-successor shards
	// with last-writer-wins reconciliation (requires Shards >= Replicas).
	// Only Prism replicates (the baselines ignore it).
	Replicas int

	// Placement selects the router's placement mode ("hash" default, or
	// "range" for boundary-table routing with SplitKeys as the initial
	// boundaries). Only Prism shards (the baselines ignore it).
	Placement string
	SplitKeys [][]byte

	// TierSpec, when non-empty, replaces the homogeneous SSD array with
	// the parsed per-device configs (core.ParseTierSpec format) and
	// enables hot/cold tiering. Only Prism tiers (the baselines ignore
	// it).
	TierSpec string

	// PrismMut lets experiments override Prism options (ablations,
	// sweeps). Applied after scaling.
	PrismMut func(*core.Options)
}

func (p *Params) applyDefaults() {
	if p.Threads == 0 {
		p.Threads = 4
	}
	if p.NumSSDs == 0 {
		p.NumSSDs = 2
	}
	if p.Records == 0 {
		p.Records = 10000
	}
	if p.ValueSize == 0 {
		p.ValueSize = 1024
	}
	if p.QueueDepth == 0 {
		p.QueueDepth = 64
	}
}

func (p *Params) dataset() int64 { return int64(p.Records) * int64(p.ValueSize) }

func clamp64(v, lo, hi int64) int64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// PrismOptions returns the scaled Prism configuration for p.
func PrismOptions(p Params) core.Options {
	p.applyDefaults()
	ds := p.dataset()
	chunk := clamp64(ds/256, 16<<10, 512<<10) / 16 * 16
	pwbPer := clamp64(ds*16/100/int64(p.Threads), 64<<10, 1<<30) / 16 * 16
	opt := core.Options{
		NumThreads:        p.Threads,
		PWBBytesPerThread: int(pwbPer),
		HSITCapacity:      p.Records*4 + 1024,
		NumSSDs:           p.NumSSDs,
		SSDBytes:          clamp64(ds*4/int64(p.NumSSDs), 4<<20, 1<<40),
		ChunkSize:         int(chunk),
		SVCBytes:          clamp64(ds*20/100, 256<<10, 1<<40),
		QueueDepth:        p.QueueDepth,
		Shards:            p.Shards,
		Replicas:          p.Replicas,
		Placement:         p.Placement,
		SplitKeys:         p.SplitKeys,
	}
	if p.TierSpec != "" {
		cfgs, err := core.ParseTierSpec(p.TierSpec)
		if err == nil && len(cfgs) > 0 {
			opt.SSDConfigs = cfgs
			opt.NumSSDs = len(cfgs)
			opt.EnableTiering = true
		}
	}
	if p.PrismMut != nil {
		p.PrismMut(&opt)
	}
	return opt
}

// NewEngine opens a cost-equalized engine instance.
func NewEngine(kind string, p Params) (engine.Store, error) {
	p.applyDefaults()
	ds := p.dataset()
	switch kind {
	case EnginePrism:
		return engine.NewPrism(PrismOptions(p))
	case EngineKVell:
		item := (p.ValueSize + 32 + 15) / 16 * 16
		return kvell.Open(kvell.Config{
			NumSSDs:    p.NumSSDs,
			SSDBytes:   clamp64(ds*3/int64(p.NumSSDs), 4<<20, 1<<40),
			ItemSize:   item,
			CacheBytes: clamp64(ds*32/100, 256<<10, 1<<40),
			QueueDepth: p.QueueDepth,
			Clients:    p.Threads,
		}), nil
	case EngineMatrixKV:
		cfg := lsm.MatrixKVConfig(p.Threads, p.NumSSDs, 1)
		cfg.DataBytes = clamp64(ds*4/int64(p.NumSSDs), 8<<20, 1<<40)
		cfg.MemtableBytes = clamp64(ds/64, 64<<10, 1<<30)
		cfg.MatrixCap = clamp64(ds*8/100, 128<<10, 1<<40)
		cfg.MatrixColumns = 4 // coarser columns at simulation scale so runs drain
		cfg.BlockCacheBytes = clamp64(ds*26/100, 256<<10, 1<<40)
		cfg.LevelBaseBytes = 8 * cfg.MemtableBytes
		cfg.TableTargetBytes = 2 * cfg.MemtableBytes
		cfg.WALBytes = clamp64(ds/4, 4<<20, 1<<40)
		return lsm.Open(cfg), nil
	case EngineRocksDBNVM:
		cfg := lsm.RocksDBNVMConfig(p.Threads, 1)
		cfg.DataBytes = clamp64(ds*6, 16<<20, 1<<40)
		cfg.MemtableBytes = clamp64(ds/64, 64<<10, 1<<30)
		cfg.BlockCacheBytes = clamp64(ds*26/100, 256<<10, 1<<40)
		cfg.LevelBaseBytes = 8 * cfg.MemtableBytes
		cfg.TableTargetBytes = 2 * cfg.MemtableBytes
		cfg.WALBytes = clamp64(ds/4, 4<<20, 1<<40)
		return lsm.Open(cfg), nil
	case EngineSLMDB:
		return slmdb.Open(slmdb.Config{
			MemtableBytes:  clamp64(ds/128, 32<<10, 1<<30),
			SSDBytes:       clamp64(ds*4, 16<<20, 1<<40),
			PageCacheBytes: clamp64(ds*32/100, 256<<10, 1<<40),
		}), nil
	}
	return nil, fmt.Errorf("bench: unknown engine %q", kind)
}
