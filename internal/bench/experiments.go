package bench

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/kvell"
	"repro/internal/obs"
	"repro/internal/ycsb"
)

// stdWorkloads is the Figure 7 x-axis.
var stdWorkloads = []ycsb.Workload{ycsb.Load, ycsb.WorkloadA, ycsb.WorkloadB, ycsb.WorkloadC, ycsb.WorkloadD, ycsb.WorkloadE}

func wname(w ycsb.Workload) string {
	if w == ycsb.Load {
		return "LOAD"
	}
	if w == ycsb.Nutanix {
		return "Nutanix"
	}
	return "YCSB-" + string(w)
}

// runSuite loads each engine once and runs the listed workloads on it.
func runSuite(kinds []string, workloads []ycsb.Workload, p Params, rc RunConfig) map[string]map[ycsb.Workload]Result {
	out := map[string]map[ycsb.Workload]Result{}
	for _, kind := range kinds {
		pk := p
		if pk.Shards == 0 {
			pk.Shards = rc.Shards
		}
		if pk.Replicas == 0 {
			pk.Replicas = rc.Replicas
		}
		if pk.TierSpec == "" {
			pk.TierSpec = rc.TierSpec
		}
		if pk.Placement == "" {
			pk.Placement = rc.Placement
			pk.SplitKeys = rc.SplitKeys
		}
		if kind == EngineSLMDB {
			pk.Threads = 1 // open-source SLM-DB is single-threaded (§7.4)
		}
		st, err := NewEngine(kind, pk)
		if err != nil {
			panic(err)
		}
		res := map[ycsb.Workload]Result{}
		rck := rc
		if kind == EngineSLMDB {
			rck.Threads = 1
		}
		res[ycsb.Load] = Load(st, kind, rck)
		var samples []MetricSample
		for _, w := range workloads {
			if w == ycsb.Load {
				continue
			}
			r := Run(st, kind, w, rck)
			res[w] = r
			samples = append(samples, r.MetricSamples...)
		}
		rc.Metrics.Capture(st, kind, "suite", samples)
		st.Close()
		out[kind] = res
	}
	return out
}

// Fig7 reproduces Figure 7: YCSB throughput for Prism, KVell, MatrixKV,
// and RocksDB-NVM with the Table 1 cost-equalized configurations.
func Fig7(rc RunConfig) (Table, map[string]map[ycsb.Workload]Result) {
	rc.applyDefaults()
	p := Params{Threads: rc.Threads, Records: rc.Records, ValueSize: rc.ValueSize}
	kinds := []string{EnginePrism, EngineKVell, EngineMatrixKV, EngineRocksDBNVM}
	res := runSuite(kinds, stdWorkloads, p, rc)

	t := Table{
		Title:  "Figure 7: YCSB throughput (Kops/sec; E in Kops/sec of scans)",
		Header: append([]string{"engine"}, wnames(stdWorkloads)...),
	}
	for _, kind := range kinds {
		row := []string{kind}
		for _, w := range stdWorkloads {
			row = append(row, f1(res[kind][w].KOpsPerSec()))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, res
}

func wnames(ws []ycsb.Workload) []string {
	var out []string
	for _, w := range ws {
		out = append(out, wname(w))
	}
	return out
}

// Table3 reproduces Table 3: average/median/p99 latency for A, C, E.
func Table3(rc RunConfig) Table {
	rc.applyDefaults()
	p := Params{Threads: rc.Threads, Records: rc.Records, ValueSize: rc.ValueSize}
	kinds := []string{EnginePrism, EngineKVell, EngineMatrixKV, EngineRocksDBNVM}
	ws := []ycsb.Workload{ycsb.WorkloadA, ycsb.WorkloadC, ycsb.WorkloadE}
	res := runSuite(kinds, ws, p, rc)

	t := Table{
		Title:  "Table 3: latency (us)",
		Header: append([]string{"workload", "metric"}, kinds...),
	}
	for _, w := range ws {
		for _, m := range []string{"avg", "p50", "p99"} {
			row := []string{wname(w), m}
			for _, kind := range kinds {
				s := res[kind][w].Lat
				switch m {
				case "avg":
					row = append(row, f1(s.AvgUS))
				case "p50":
					row = append(row, f1(s.P50US))
				case "p99":
					row = append(row, f1(s.P99US))
				}
			}
			t.Rows = append(t.Rows, row)
		}
	}
	return t
}

// fig8Params sizes Prism as §7.4 does for the SLM-DB comparison: 64 MB
// SVC and 64 MB PWB analogues, single thread.
func fig8Params(rc RunConfig) (Params, Params) {
	prism := Params{Threads: 1, Records: rc.Records, ValueSize: rc.ValueSize,
		PrismMut: func(o *core.Options) {
			ds := int64(rc.Records) * int64(rc.ValueSize)
			o.SVCBytes = clamp64(ds/128, 32<<10, 1<<30)
			o.PWBBytesPerThread = int(clamp64(ds/128, 64<<10, 1<<30) / 16 * 16)
		}}
	slm := Params{Threads: 1, Records: rc.Records, ValueSize: rc.ValueSize}
	return prism, slm
}

// Fig8 reproduces Figure 8: Prism vs SLM-DB throughput, single-threaded.
func Fig8(rc RunConfig) (Table, map[string]map[ycsb.Workload]Result) {
	rc.applyDefaults()
	rc.Threads = 1
	prismP, slmP := fig8Params(rc)

	out := map[string]map[ycsb.Workload]Result{}
	for _, e := range []struct {
		kind string
		p    Params
	}{{EnginePrism, prismP}, {EngineSLMDB, slmP}} {
		st, err := NewEngine(e.kind, e.p)
		if err != nil {
			panic(err)
		}
		res := map[ycsb.Workload]Result{}
		res[ycsb.Load] = Load(st, e.kind, rc)
		for _, w := range stdWorkloads[1:] {
			res[w] = Run(st, e.kind, w, rc)
		}
		rc.Metrics.Capture(st, e.kind, "suite", nil)
		st.Close()
		out[e.kind] = res
	}
	t := Table{
		Title:  "Figure 8: Prism vs SLM-DB throughput (Kops/sec), 1 thread",
		Header: append([]string{"engine"}, wnames(stdWorkloads)...),
	}
	for _, kind := range []string{EnginePrism, EngineSLMDB} {
		row := []string{kind}
		for _, w := range stdWorkloads {
			row = append(row, f1(out[kind][w].KOpsPerSec()))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, out
}

// Table4 reproduces Table 4: Prism vs SLM-DB latency on A, C, E.
func Table4(rc RunConfig) Table {
	rc.applyDefaults()
	_, res := Fig8(rc)
	t := Table{
		Title:  "Table 4: Prism vs SLM-DB latency (us), 1 thread",
		Header: []string{"workload", "metric", EnginePrism, EngineSLMDB},
	}
	for _, w := range []ycsb.Workload{ycsb.WorkloadA, ycsb.WorkloadC, ycsb.WorkloadE} {
		for _, m := range []string{"avg", "p50", "p99"} {
			row := []string{wname(w), m}
			for _, kind := range []string{EnginePrism, EngineSLMDB} {
				s := res[kind][w].Lat
				switch m {
				case "avg":
					row = append(row, f1(s.AvgUS))
				case "p50":
					row = append(row, f1(s.P50US))
				case "p99":
					row = append(row, f1(s.P99US))
				}
			}
			t.Rows = append(t.Rows, row)
		}
	}
	return t
}

// Fig9 reproduces Figure 9: relative throughput across zipfian
// coefficients 0.5-1.5, normalized to 0.99, for all five stores.
func Fig9(rc RunConfig) Table {
	rc.applyDefaults()
	if rc.Records > 5000 {
		rc.Records = 5000 // 125-cell sweep; keep each cell modest
	}
	if rc.Ops > 8000 {
		rc.Ops = 8000
	}
	zipfs := []float64{0.5, 0.9, 0.99, 1.2, 1.5}
	ws := []ycsb.Workload{ycsb.WorkloadA, ycsb.WorkloadB, ycsb.WorkloadC, ycsb.WorkloadD, ycsb.WorkloadE}
	t := Table{
		Title:  "Figure 9: relative throughput vs zipfian coefficient (normalized to 0.99)",
		Header: []string{"engine", "workload", "z0.5", "z0.9", "z0.99", "z1.2", "z1.5"},
	}
	for _, kind := range AllEngines {
		for _, w := range ws {
			abs := map[float64]float64{}
			for _, z := range zipfs {
				rcz := rc
				rcz.Zipfian = z
				p := Params{Threads: rc.Threads, Records: rc.Records, ValueSize: rc.ValueSize}
				if kind == EngineSLMDB {
					p.Threads = 1
					rcz.Threads = 1
				}
				st, err := NewEngine(kind, p)
				if err != nil {
					panic(err)
				}
				Load(st, kind, rcz)
				abs[z] = Run(st, kind, w, rcz).KOpsPerSec()
				st.Close()
			}
			base := abs[0.99]
			row := []string{kind, wname(w)}
			for _, z := range zipfs {
				if base > 0 {
					row = append(row, f2(abs[z]/base))
				} else {
					row = append(row, "-")
				}
			}
			t.Rows = append(t.Rows, row)
		}
	}
	return t
}

// Fig10a reproduces Figure 10a: the large-dataset (1-billion-pair
// analogue) YCSB comparison of Prism vs KVell, at 4x the standard scale.
func Fig10a(rc RunConfig) Table {
	rc.applyDefaults()
	rc.Records *= 4
	p := Params{Threads: rc.Threads, Records: rc.Records, ValueSize: rc.ValueSize}
	kinds := []string{EnginePrism, EngineKVell}
	ws := []ycsb.Workload{ycsb.WorkloadA, ycsb.WorkloadB, ycsb.WorkloadC, ycsb.WorkloadD, ycsb.WorkloadE}
	res := runSuite(kinds, ws, p, rc)
	t := Table{
		Title:  "Figure 10a: large-dataset YCSB (Kops/sec), Prism vs KVell",
		Header: append([]string{"engine"}, wnames(ws)...),
		Notes:  []string{fmt.Sprintf("dataset scaled to %d records (paper: 1B)", rc.Records)},
	}
	for _, kind := range kinds {
		row := []string{kind}
		for _, w := range ws {
			row = append(row, f1(res[kind][w].KOpsPerSec()))
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// Fig10b reproduces Figure 10b: the Nutanix production mix (57% updates,
// 41% reads, 2% scans).
func Fig10b(rc RunConfig) Table {
	rc.applyDefaults()
	p := Params{Threads: rc.Threads, Records: rc.Records, ValueSize: rc.ValueSize}
	kinds := []string{EnginePrism, EngineKVell}
	res := runSuite(kinds, []ycsb.Workload{ycsb.Nutanix}, p, rc)
	t := Table{
		Title:  "Figure 10b: Nutanix production workload (Kops/sec)",
		Header: []string{"engine", "Nutanix"},
	}
	for _, kind := range kinds {
		t.Rows = append(t.Rows, []string{kind, f1(res[kind][ycsb.Nutanix].KOpsPerSec())})
	}
	return t
}

// Fig11 reproduces Figure 11: thread combining (TC) vs timeout-based
// asynchronous IO (TA) on read-only YCSB-C while varying the queue depth.
func Fig11(rc RunConfig) Table {
	rc.applyDefaults()
	t := Table{
		Title:  "Figure 11: TC vs TA on YCSB-C with varying queue depth",
		Header: []string{"QD", "TC Kops", "TA Kops", "TC avg us", "TA avg us", "TC p50", "TA p50", "TC p99", "TA p99"},
	}
	for _, qd := range []int{1, 2, 4, 8, 16, 32, 64} {
		var r [2]Result
		for mode := 0; mode < 2; mode++ {
			disable := mode == 1
			p := Params{Threads: rc.Threads, Records: rc.Records, ValueSize: rc.ValueSize, QueueDepth: qd,
				PrismMut: func(o *core.Options) {
					o.DisableCombining = disable
					// Read from flash, not the cache: tiny SVC.
					o.SVCBytes = 64 << 10
				}}
			st, err := NewEngine(EnginePrism, p)
			if err != nil {
				panic(err)
			}
			Load(st, EnginePrism, rc)
			r[mode] = Run(st, EnginePrism, ycsb.WorkloadC, rc)
			scheme := "TC"
			if disable {
				scheme = "TA"
			}
			rc.Metrics.Capture(st, EnginePrism, fmt.Sprintf("fig11-%s-qd%d", scheme, qd), nil)
			st.Close()
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", qd),
			f1(r[0].KOpsPerSec()), f1(r[1].KOpsPerSec()),
			f1(r[0].Lat.AvgUS), f1(r[1].Lat.AvgUS),
			f1(r[0].Lat.P50US), f1(r[1].Lat.P50US),
			f1(r[0].Lat.P99US), f1(r[1].Lat.P99US),
		})
	}
	return t
}

// Fig12 reproduces Figure 12: SSD-level write amplification while
// updating the dataset, across data skews and two value sizes.
func Fig12(rc RunConfig) Table {
	rc.applyDefaults()
	t := Table{
		Title:  "Figure 12: SSD-level WAF vs skew (update-only)",
		Header: []string{"value", "engine", "z0.5", "z0.99", "z1.2"},
	}
	kinds := []string{EnginePrism, EngineKVell, EngineMatrixKV}
	for _, vs := range []int{512, 1024} {
		for _, kind := range kinds {
			row := []string{fmt.Sprintf("%dB", vs), kind}
			for _, z := range []float64{0.5, 0.99, 1.2} {
				rcz := rc
				rcz.ValueSize = vs
				rcz.Zipfian = z
				rcz.Ops = rc.Ops * 2 // update volume drives the metric
				p := Params{Threads: rc.Threads, Records: rc.Records, ValueSize: vs}
				st, err := NewEngine(kind, p)
				if err != nil {
					panic(err)
				}
				Load(st, kind, rcz)
				d0, u0 := st.WriteAmp()
				Run(st, kind, ycsb.WorkloadA, rcz) // 50% updates
				d1, u1 := st.WriteAmp()
				rc.Metrics.Capture(st, kind, fmt.Sprintf("fig12-%dB-z%.2f", vs, z), nil)
				st.Close()
				if u1 > u0 {
					row = append(row, f2(float64(d1-d0)/float64(u1-u0)))
				} else {
					row = append(row, "-")
				}
			}
			t.Rows = append(t.Rows, row)
		}
	}
	return t
}

// Fig13 reproduces Figure 13: throughput with 1-8 SSDs on A and C.
func Fig13(rc RunConfig) Table {
	rc.applyDefaults()
	t := Table{
		Title:  "Figure 13: throughput vs number of SSDs (Kops/sec)",
		Header: []string{"workload", "engine", "1", "2", "4", "8"},
	}
	for _, w := range []ycsb.Workload{ycsb.WorkloadA, ycsb.WorkloadC} {
		for _, kind := range []string{EnginePrism, EngineKVell} {
			row := []string{wname(w), kind}
			for _, n := range []int{1, 2, 4, 8} {
				p := Params{Threads: rc.Threads, Records: rc.Records, ValueSize: rc.ValueSize, NumSSDs: n}
				st, err := NewEngine(kind, p)
				if err != nil {
					panic(err)
				}
				Load(st, kind, rc)
				row = append(row, f1(Run(st, kind, w, rc).KOpsPerSec()))
				st.Close()
			}
			t.Rows = append(t.Rows, row)
		}
	}
	return t
}

// Fig14 reproduces Figure 14: YCSB-C latency vs number of SSDs.
func Fig14(rc RunConfig) Table {
	rc.applyDefaults()
	t := Table{
		Title:  "Figure 14: YCSB-C latency (us) vs number of SSDs",
		Header: []string{"metric", "engine", "1", "2", "4", "8"},
	}
	type cell struct{ avg, p50, p99 float64 }
	res := map[string]map[int]cell{}
	for _, kind := range []string{EnginePrism, EngineKVell} {
		res[kind] = map[int]cell{}
		for _, n := range []int{1, 2, 4, 8} {
			p := Params{Threads: rc.Threads, Records: rc.Records, ValueSize: rc.ValueSize, NumSSDs: n}
			st, err := NewEngine(kind, p)
			if err != nil {
				panic(err)
			}
			Load(st, kind, rc)
			r := Run(st, kind, ycsb.WorkloadC, rc)
			st.Close()
			res[kind][n] = cell{r.Lat.AvgUS, r.Lat.P50US, r.Lat.P99US}
		}
	}
	for _, m := range []string{"avg", "p50", "p99"} {
		for _, kind := range []string{EnginePrism, EngineKVell} {
			row := []string{m, kind}
			for _, n := range []int{1, 2, 4, 8} {
				c := res[kind][n]
				switch m {
				case "avg":
					row = append(row, f1(c.avg))
				case "p50":
					row = append(row, f1(c.p50))
				case "p99":
					row = append(row, f1(c.p99))
				}
			}
			t.Rows = append(t.Rows, row)
		}
	}
	return t
}

// Fig15a reproduces Figure 15a: throughput vs PWB size (LOAD, YCSB-A).
func Fig15a(rc RunConfig) Table {
	rc.applyDefaults()
	ds := int64(rc.Records) * int64(rc.ValueSize)
	t := Table{
		Title:  "Figure 15a: Prism throughput vs PWB size (Kops/sec)",
		Header: []string{"PWB/dataset", "LOAD", "YCSB-A"},
	}
	for _, frac := range []int{2, 4, 8, 16, 32} { // PWB = dataset * frac %
		per := clamp64(ds*int64(frac)/100/int64(rc.Threads), 32<<10, 1<<30) / 16 * 16
		p := Params{Threads: rc.Threads, Records: rc.Records, ValueSize: rc.ValueSize,
			PrismMut: func(o *core.Options) { o.PWBBytesPerThread = int(per) }}
		st, _ := NewEngine(EnginePrism, p)
		load := Load(st, EnginePrism, rc)
		a := Run(st, EnginePrism, ycsb.WorkloadA, rc)
		st.Close()
		t.Rows = append(t.Rows, []string{fmt.Sprintf("%d%%", frac), f1(load.KOpsPerSec()), f1(a.KOpsPerSec())})
	}
	return t
}

// Fig15b reproduces Figure 15b: throughput vs SVC size (YCSB-C, E).
func Fig15b(rc RunConfig) Table {
	rc.applyDefaults()
	ds := int64(rc.Records) * int64(rc.ValueSize)
	t := Table{
		Title:  "Figure 15b: Prism throughput vs SVC size (Kops/sec)",
		Header: []string{"SVC/dataset", "YCSB-C", "YCSB-E"},
	}
	for _, frac := range []int{4, 8, 12, 16, 20} {
		svc := clamp64(ds*int64(frac)/100, 64<<10, 1<<40)
		p := Params{Threads: rc.Threads, Records: rc.Records, ValueSize: rc.ValueSize,
			PrismMut: func(o *core.Options) { o.SVCBytes = svc }}
		st, _ := NewEngine(EnginePrism, p)
		Load(st, EnginePrism, rc)
		c := Run(st, EnginePrism, ycsb.WorkloadC, rc)
		e := Run(st, EnginePrism, ycsb.WorkloadE, rc)
		st.Close()
		t.Rows = append(t.Rows, []string{fmt.Sprintf("%d%%", frac), f1(c.KOpsPerSec()), f1(e.KOpsPerSec())})
	}
	return t
}

// Fig16 reproduces Figure 16: multicore scalability on A, C, E.
func Fig16(rc RunConfig) Table {
	rc.applyDefaults()
	threadsAxis := []int{10, 20, 30, 40}
	t := Table{
		Title:  "Figure 16: throughput (Kops/sec) vs simulated cores",
		Header: []string{"workload", "engine", "10", "20", "30", "40"},
	}
	for _, w := range []ycsb.Workload{ycsb.WorkloadA, ycsb.WorkloadC, ycsb.WorkloadE} {
		for _, e := range []struct {
			label string
			kind  string
			qd    int
		}{
			{"prism", EnginePrism, 64},
			{"kvell(QD64)", EngineKVell, 64},
			{"kvell(QD1)", EngineKVell, 1},
			{"matrixkv", EngineMatrixKV, 64},
		} {
			row := []string{wname(w), e.label}
			for _, th := range threadsAxis {
				p := Params{Threads: th, Records: rc.Records, ValueSize: rc.ValueSize, QueueDepth: e.qd}
				rct := rc
				rct.Threads = th
				st, err := NewEngine(e.kind, p)
				if err != nil {
					panic(err)
				}
				Load(st, e.kind, rct)
				row = append(row, f1(Run(st, e.kind, w, rct).KOpsPerSec()))
				st.Close()
			}
			t.Rows = append(t.Rows, row)
		}
	}
	return t
}

// Fig17 reproduces Figure 17: Prism throughput over time across Value
// Storage garbage collection, on a store sized to force GC.
func Fig17(rc RunConfig) (Table, []TimelinePoint, core.Stats) {
	rc.applyDefaults()
	rc.Ops *= 4
	ds := int64(rc.Records) * int64(rc.ValueSize)
	p := Params{Threads: rc.Threads, Records: rc.Records, ValueSize: rc.ValueSize,
		PrismMut: func(o *core.Options) {
			// Tight Value Storage so update churn forces GC.
			o.SSDBytes = clamp64(ds*3/int64(o.NumSSDs), 4<<20, 1<<40)
		}}
	st, err := NewEngine(EnginePrism, p)
	if err != nil {
		panic(err)
	}
	Load(st, EnginePrism, rc)
	rc.TimelineBucketNS = 20 * 1_000_000 // 20 virtual ms per sample
	if rc.Metrics != nil && rc.SampleNS == 0 {
		rc.SampleNS = rc.TimelineBucketNS // metrics timeline on the same grid
	}
	r := Run(st, EnginePrism, ycsb.WorkloadA, rc)
	ps := st.(*engine.PrismStore)
	stats := ps.S.Stats()
	rc.Metrics.Capture(st, EnginePrism, "fig17", r.MetricSamples)
	st.Close()

	t := Table{
		Title:  "Figure 17: YCSB-A throughput timeline across GC (Kops/sec per 20ms window)",
		Header: []string{"t(ms)", "Kops/sec"},
		Notes:  []string{fmt.Sprintf("GC runs: %d, chunks moved: %d", stats.VS.GCRuns, stats.VS.GCLiveMoved)},
	}
	for _, pt := range r.Timeline {
		kops := float64(pt.Ops) / (float64(rc.TimelineBucketNS) / 1e9) / 1e3
		t.Rows = append(t.Rows, []string{fmt.Sprintf("%d", pt.NS/1_000_000), f1(kops)})
	}
	return t, r.Timeline, stats
}

// Ablation reproduces §7.6 "impact of individual techniques": each Prism
// mechanism toggled off, measured on the workload it targets.
func Ablation(rc RunConfig) Table {
	rc.applyDefaults()
	t := Table{
		Title:  "Ablation (§7.6): Prism variants (Kops/sec)",
		Header: []string{"variant", "workload", "Kops/sec", "vs full"},
	}
	cases := []struct {
		name string
		w    ycsb.Workload
		mut  func(*core.Options)
	}{
		{"full", ycsb.WorkloadA, nil},
		{"sync-VS-writes (no §5.2)", ycsb.WorkloadA, func(o *core.Options) { o.SyncVSWrites = true }},
		{"full", ycsb.WorkloadC, nil},
		{"timeout-IO (no §5.3 TC)", ycsb.WorkloadC, func(o *core.Options) { o.DisableCombining = true }},
		{"no SVC (no §4.4)", ycsb.WorkloadC, func(o *core.Options) { o.DisableSVC = true }},
		{"full", ycsb.WorkloadE, nil},
		{"no SVC (no §4.4)", ycsb.WorkloadE, func(o *core.Options) { o.DisableSVC = true }},
		{"no scan-sort (§4.4 step 5-6 off)", ycsb.WorkloadE, func(o *core.Options) { o.DisableScanSort = true }},
	}
	full := map[ycsb.Workload]float64{}
	for _, c := range cases {
		p := Params{Threads: rc.Threads, Records: rc.Records, ValueSize: rc.ValueSize, PrismMut: c.mut}
		st, err := NewEngine(EnginePrism, p)
		if err != nil {
			panic(err)
		}
		Load(st, EnginePrism, rc)
		r := Run(st, EnginePrism, c.w, rc)
		st.Close()
		k := r.KOpsPerSec()
		rel := "-"
		if c.mut == nil {
			full[c.w] = k
		} else if full[c.w] > 0 {
			rel = f2(k / full[c.w])
		} else {
			rel = "1.00"
		}
		t.Rows = append(t.Rows, []string{c.name, wname(c.w), f1(k), rel})
	}
	return t
}

// NVMSpace reproduces the §7.6 NVM-space measurement: bytes of NVM per
// record for the key index and HSIT.
func NVMSpace(rc RunConfig) Table {
	rc.applyDefaults()
	p := Params{Threads: rc.Threads, Records: rc.Records, ValueSize: rc.ValueSize}
	st, err := NewEngine(EnginePrism, p)
	if err != nil {
		panic(err)
	}
	Load(st, EnginePrism, rc)
	ps := st.(*engine.PrismStore)
	stats := ps.S.Stats()
	st.Close()
	total := stats.IndexSpaceBytes + stats.HSITSpaceBytes
	t := Table{
		Title:  "NVM space (§7.6): Persistent Key Index + HSIT",
		Header: []string{"component", "bytes", "bytes/record"},
	}
	n := int64(rc.Records)
	t.Rows = append(t.Rows,
		[]string{"key index", fmt.Sprintf("%d", stats.IndexSpaceBytes), f1(float64(stats.IndexSpaceBytes) / float64(n))},
		[]string{"HSIT", fmt.Sprintf("%d", stats.HSITSpaceBytes), f1(float64(stats.HSITSpaceBytes) / float64(n))},
		[]string{"total", fmt.Sprintf("%d", total), f1(float64(total) / float64(n))},
	)
	t.Notes = append(t.Notes, fmt.Sprintf("paper: ~5.4 GB for 100M pairs = ~54 B/record"))
	return t
}

// Recovery reproduces the §7.6 recovery-time measurement: crash after
// loading, then rebuild. Prism recovers from HSIT couplings; KVell must
// scan its entire slabs.
func Recovery(rc RunConfig) Table {
	rc.applyDefaults()
	t := Table{
		Title:  "Recovery time (§7.6), virtual ms",
		Header: []string{"engine", "recovery ms", "live keys"},
	}

	pp := Params{Threads: rc.Threads, Records: rc.Records, ValueSize: rc.ValueSize}
	pst, err := NewEngine(EnginePrism, pp)
	if err != nil {
		panic(err)
	}
	Load(pst, EnginePrism, rc)
	ps := pst.(*engine.PrismStore)
	ps.S.Crash()
	rep, err := ps.S.Recover()
	if err != nil {
		panic(err)
	}
	pst.Close()
	t.Rows = append(t.Rows, []string{EnginePrism, f1(float64(rep.VirtualNS) / 1e6), fmt.Sprintf("%d", rep.LiveKeys)})

	kst, err := NewEngine(EngineKVell, pp)
	if err != nil {
		panic(err)
	}
	Load(kst, EngineKVell, rc)
	ks := kst.(*kvell.Store)
	ns := ks.Recover()
	kst.Close()
	t.Rows = append(t.Rows, []string{EngineKVell, f1(float64(ns) / 1e6), fmt.Sprintf("%d", rc.Records)})
	return t
}

// ShardScale measures horizontal scale-out: the same workload against
// Prism behind the hash router at increasing shard counts. Each point
// keeps the full per-shard sizing, so N shards mean N independent
// device sets — the Valkey-style cluster scaling move, measured in
// aggregate virtual-time throughput.
func ShardScale(rc RunConfig) Table {
	rc.applyDefaults()
	t := Table{
		Title:  "Shard scale-out: Prism throughput vs shard count (Kops/sec)",
		Header: []string{"shards", "LOAD Kops", "YCSB-A Kops", "YCSB-C Kops", "A speedup"},
		Notes:  []string{"every point keeps the full per-shard sizing: N shards = N independent NVM/SSD sets"},
	}
	var base float64
	for _, n := range []int{1, 2, 4} {
		p := Params{Threads: rc.Threads, Records: rc.Records, ValueSize: rc.ValueSize, Shards: n}
		st, err := NewEngine(EnginePrism, p)
		if err != nil {
			panic(err)
		}
		load := Load(st, EnginePrism, rc)
		ra := Run(st, EnginePrism, ycsb.WorkloadA, rc)
		rcc := Run(st, EnginePrism, ycsb.WorkloadC, rc)
		rc.Metrics.Capture(st, EnginePrism, fmt.Sprintf("shardscale-%d", n), nil)
		st.Close()
		a := ra.KOpsPerSec()
		if n == 1 {
			base = a
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", n),
			f1(load.KOpsPerSec()), f1(a), f1(rcc.KOpsPerSec()),
			fmt.Sprintf("%.2fx", a/base),
		})
	}
	return t
}

// PipelineDepth measures the async submission pipeline: one thread
// (one "connection") issues put bursts of increasing depth through
// PutAsync and drains between bursts, so depth-N keeps N submissions in
// flight. Deeper pipelines let the admission loop coalesce a burst into
// a few windows — one epoch enter and one PWB publish per window — and
// overlap the fixed per-op NVM latencies on stage clocks, leaving only
// the shared-channel transfer residue serialized (the §5.4 TCQ shape).
// A 4-shard column shows pipelining compounding with scale-out.
func PipelineDepth(rc RunConfig) Table {
	rc.applyDefaults()
	t := Table{
		Title:  "Pipeline depth: single-connection async Put throughput (Kops/sec)",
		Header: []string{"depth", "Kops/sec", "speedup", "4-shard Kops/sec", "4-shard speedup"},
		Notes: []string{
			"1 thread, 128 B values, put-only: burst of <depth> PutAsync then drain",
			"speedup is vs depth 1 at the same shard count",
			"PWB sized to hold the sweep so reclamation does not serialize the depth axis",
		},
	}
	// The sweep isolates submission overlap: the PWB must hold the whole
	// run, or reclamation wraps serialize every depth equally and the
	// curve flattens (that pressure regime is Fig14's subject, not this).
	mut := func(o *core.Options) { o.PWBBytesPerThread = 8 << 20 }
	base := map[int]float64{}
	for _, d := range []int{1, 2, 4, 8, 16, 32} {
		var kops [2]float64
		for si, shards := range []int{1, 4} {
			p := Params{Threads: 1, Records: rc.Records, ValueSize: 128, Shards: shards, PrismMut: mut}
			st, err := NewEngine(EnginePrism, p)
			if err != nil {
				panic(err)
			}
			prc := rc
			prc.Threads = 1
			prc.ValueSize = 128
			prc.Pipeline = d
			// Captured as the measured phase's Snapshot.Delta: this is what
			// `make bench-record` commits as BENCH_pipelinedepth.json, so
			// per-PR diffs show counter movement, not cumulative totals.
			var pre obs.Snapshot
			src, hasMetrics := st.(MetricsSource)
			if hasMetrics {
				pre = src.Metrics()
			}
			r := Load(st, EnginePrism, prc)
			if hasMetrics {
				rc.Metrics.CaptureSnapshot(EnginePrism,
					fmt.Sprintf("pipelinedepth-%d-shards%d", d, shards),
					r.KOpsPerSec(), src.Metrics().Delta(pre))
			}
			st.Close()
			kops[si] = r.KOpsPerSec()
			if d == 1 {
				base[shards] = kops[si]
			}
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", d),
			f1(kops[0]), fmt.Sprintf("%.2fx", kops[0]/base[1]),
			f1(kops[1]), fmt.Sprintf("%.2fx", kops[1]/base[4]),
		})
	}
	return t
}

// Experiments maps CLI names to runners printing their tables.
var Experiments = map[string]func(rc RunConfig) []Table{
	"fig7": func(rc RunConfig) []Table {
		t, _ := Fig7(rc)
		return []Table{t}
	},
	"table3":     func(rc RunConfig) []Table { return []Table{Table3(rc)} },
	"fig8":       func(rc RunConfig) []Table { t, _ := Fig8(rc); return []Table{t} },
	"table4":     func(rc RunConfig) []Table { return []Table{Table4(rc)} },
	"fig9":       func(rc RunConfig) []Table { return []Table{Fig9(rc)} },
	"fig10a":     func(rc RunConfig) []Table { return []Table{Fig10a(rc)} },
	"fig10b":     func(rc RunConfig) []Table { return []Table{Fig10b(rc)} },
	"fig11":      func(rc RunConfig) []Table { return []Table{Fig11(rc)} },
	"fig12":      func(rc RunConfig) []Table { return []Table{Fig12(rc)} },
	"fig13":      func(rc RunConfig) []Table { return []Table{Fig13(rc)} },
	"fig14":      func(rc RunConfig) []Table { return []Table{Fig14(rc)} },
	"fig15a":     func(rc RunConfig) []Table { return []Table{Fig15a(rc)} },
	"fig15b":     func(rc RunConfig) []Table { return []Table{Fig15b(rc)} },
	"fig16":      func(rc RunConfig) []Table { return []Table{Fig16(rc)} },
	"fig17":      func(rc RunConfig) []Table { t, _, _ := Fig17(rc); return []Table{t} },
	"ablation":   func(rc RunConfig) []Table { return []Table{Ablation(rc)} },
	"nvmspace":   func(rc RunConfig) []Table { return []Table{NVMSpace(rc)} },
	"recovery":   func(rc RunConfig) []Table { return []Table{Recovery(rc)} },
	"shardscale": func(rc RunConfig) []Table { return []Table{ShardScale(rc)} },
	"pipelinedepth": func(rc RunConfig) []Table {
		return []Table{PipelineDepth(rc)}
	},
	"replication": func(rc RunConfig) []Table { return []Table{Replication(rc)} },
	"tiering":     func(rc RunConfig) []Table { return []Table{Tiering(rc)} },
	"rangescan":   func(rc RunConfig) []Table { return []Table{RangeScan(rc)} },
	"wire":        func(rc RunConfig) []Table { return []Table{Wire(rc)} },
}

// ExperimentNames returns the sorted experiment list.
func ExperimentNames() []string {
	var names []string
	for n := range Experiments {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
