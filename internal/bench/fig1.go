package bench

import (
	"fmt"

	"repro/internal/devices"
	"repro/internal/ssd"
)

// Fig1 validates the device models against the paper's Figure 1: for
// each storage profile it microbenchmarks the simulated device — small
// random-read latency and large sequential read/write bandwidth — and
// prints the measured values next to the specification. Every row should
// match its spec; this is the calibration anchor for every other
// experiment.
func Fig1(rc RunConfig) Table {
	t := Table{
		Title: "Figure 1: heterogeneous storage media (simulated vs spec)",
		Header: []string{"type", "model",
			"readBW GB/s", "writeBW GB/s", "readLat us", "writeLat us", "$/TB"},
	}
	for _, p := range devices.All {
		cfg := p.SSDConfig()
		cfg.Size = 256 << 20
		dev := ssd.New(cfg)

		// Small random read latency.
		c := dev.Submit(0, []ssd.Request{{Op: ssd.OpRead, Offset: 0, Data: make([]byte, 512)}})
		readLat := c[0].DoneTime

		// Small random write latency.
		cw := dev.Submit(0, []ssd.Request{{Op: ssd.OpWrite, Offset: 1 << 20, Data: make([]byte, 512)}})
		dev.Ack(cw[0])
		writeLat := cw[0].DoneTime

		// Sequential bandwidth, 64 MB in 1 MB requests.
		const total = 64 << 20
		var rreqs, wreqs []ssd.Request
		for off := int64(0); off < total; off += 1 << 20 {
			rreqs = append(rreqs, ssd.Request{Op: ssd.OpRead, Offset: off, Data: make([]byte, 1<<20)})
			wreqs = append(wreqs, ssd.Request{Op: ssd.OpWrite, Offset: total + off, Data: make([]byte, 1<<20)})
		}
		rc := dev.Submit(0, rreqs)
		readBW := float64(total) / (float64(rc[len(rc)-1].DoneTime) / 1e9)
		wc := dev.Submit(0, wreqs)
		for _, comp := range wc {
			dev.Ack(comp)
		}
		writeBW := float64(total) / (float64(wc[len(wc)-1].DoneTime) / 1e9)

		t.Rows = append(t.Rows, []string{
			p.Type, p.Model,
			fmt.Sprintf("%.1f (%.1f)", readBW/1e9, float64(p.ReadBW)/1e9),
			fmt.Sprintf("%.1f (%.1f)", writeBW/1e9, float64(p.WriteBW)/1e9),
			fmt.Sprintf("%.1f (%.1f)", float64(readLat)/1e3, float64(p.ReadLatency)/1e3),
			fmt.Sprintf("%.1f (%.1f)", float64(writeLat)/1e3, float64(p.WriteLatency)/1e3),
			fmt.Sprintf("%d", p.DollarsPerTB),
		})
	}
	t.Notes = append(t.Notes, "cells are measured (spec); latency includes one transfer")
	return t
}

func init() {
	Experiments["fig1"] = func(rc RunConfig) []Table { return []Table{Fig1(rc)} }
}
