package bench

// Observability plumbing for the harness: experiments capture each
// engine's obs snapshot right before the store is closed, and the run
// loop can sample any metric over virtual time for Figure-17-style
// timelines of arbitrary counters.

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/obs"
)

// MetricsSource is implemented by engines that expose an observability
// registry (today only the Prism adapter; baselines report no metrics).
type MetricsSource interface {
	Metrics() obs.Snapshot
}

// EngineMetrics is one captured snapshot, tagged with the engine and
// workload it came from.
type EngineMetrics struct {
	Engine   string         `json:"engine"`
	Workload string         `json:"workload,omitempty"`
	KOps     float64        `json:"kops,omitempty"` // virtual-time throughput of the captured phase
	Snapshot obs.Snapshot   `json:"snapshot"`
	Timeline []MetricSample `json:"timeline,omitempty"`
}

// MetricSample is one sampler observation flattened to name->value sums
// (small enough to emit per-interval for every metric).
type MetricSample struct {
	NS     int64              `json:"ns"`
	Values map[string]float64 `json:"values"`
}

// MetricsCollector accumulates EngineMetrics across an experiment run.
// A nil collector ignores everything, so experiment code can call it
// unconditionally.
type MetricsCollector struct {
	mu       sync.Mutex
	captures []EngineMetrics
}

// Capture records store's snapshot (and timeline, if any) when the store
// implements MetricsSource; otherwise it is a no-op. Call before Close.
func (mc *MetricsCollector) Capture(store any, engineName, workload string, timeline []MetricSample) {
	if mc == nil {
		return
	}
	src, ok := store.(MetricsSource)
	if !ok {
		return
	}
	snap := src.Metrics()
	if len(snap.Metrics) == 0 && len(timeline) == 0 {
		return
	}
	mc.mu.Lock()
	mc.captures = append(mc.captures, EngineMetrics{
		Engine:   engineName,
		Workload: workload,
		Snapshot: snap,
		Timeline: timeline,
	})
	mc.mu.Unlock()
}

// CaptureSnapshot records an already-built snapshot — typically a
// Snapshot.Delta around one measured phase, the per-PR bench-trajectory
// form (`make bench-record`) — together with the phase's virtual-time
// throughput (kops, 0 to omit), which CompareTrajectories gates on.
// Series with no activity in the interval (zero counters, empty
// histograms, zero gauges) are dropped, so the committed trajectory
// diffs stay small and all-signal.
func (mc *MetricsCollector) CaptureSnapshot(engineName, workload string, kops float64, snap obs.Snapshot) {
	if mc == nil {
		return
	}
	active := obs.Snapshot{Metrics: make([]obs.Metric, 0, len(snap.Metrics))}
	for _, m := range snap.Metrics {
		if m.Hist != nil {
			if m.Hist.Count != 0 {
				active.Metrics = append(active.Metrics, m)
			}
			continue
		}
		if m.Value != 0 {
			active.Metrics = append(active.Metrics, m)
		}
	}
	if len(active.Metrics) == 0 {
		return
	}
	mc.mu.Lock()
	mc.captures = append(mc.captures, EngineMetrics{
		Engine:   engineName,
		Workload: workload,
		KOps:     kops,
		Snapshot: active,
	})
	mc.mu.Unlock()
}

// Captures returns everything recorded so far, sorted by (engine,
// workload) for stable output.
func (mc *MetricsCollector) Captures() []EngineMetrics {
	if mc == nil {
		return nil
	}
	mc.mu.Lock()
	out := append([]EngineMetrics(nil), mc.captures...)
	mc.mu.Unlock()
	sort.SliceStable(out, func(a, b int) bool {
		if out[a].Engine != out[b].Engine {
			return out[a].Engine < out[b].Engine
		}
		return out[a].Workload < out[b].Workload
	})
	return out
}

// JSON renders all captures as one indented JSON document.
func (mc *MetricsCollector) JSON() string {
	doc := struct {
		Captures []EngineMetrics `json:"captures"`
	}{Captures: mc.Captures()}
	b, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return `{"error":"metrics marshal failed"}`
	}
	return string(b)
}

// OpenMetrics renders every capture's final snapshot in the Prometheus
// text exposition format, one block per capture tagged by a comment
// header (timelines are JSON-only).
func (mc *MetricsCollector) OpenMetrics() string {
	var b strings.Builder
	for _, c := range mc.Captures() {
		fmt.Fprintf(&b, "# capture engine=%q workload=%q\n", c.Engine, c.Workload)
		c.Snapshot.WriteOpenMetrics(&b)
	}
	return b.String()
}

// flattenSamples converts raw sampler output into MetricSamples, summing
// counter/gauge values across label sets (histograms contribute their
// observation count under "<name>.count").
func flattenSamples(samples []obs.Sample) []MetricSample {
	out := make([]MetricSample, 0, len(samples))
	for _, s := range samples {
		vals := make(map[string]float64, len(s.Snap.Metrics))
		for _, m := range s.Snap.Metrics {
			if m.Hist != nil {
				vals[m.Name+".count"] += float64(m.Hist.Count)
				continue
			}
			vals[m.Name] += m.Value
		}
		out = append(out, MetricSample{NS: s.NS, Values: vals})
	}
	return out
}
