package bench

import (
	"bytes"
	"errors"
	"fmt"
	"sort"
	"testing"

	"repro/internal/engine"
	"repro/internal/sim"
)

// Every engine must agree with an in-memory reference model under a
// random operation sequence — the same property test, one per engine, so
// a baseline bug can't silently skew a comparison.
func TestEnginesMatchReferenceModel(t *testing.T) {
	for _, kind := range AllEngines {
		kind := kind
		t.Run(kind, func(t *testing.T) {
			st, err := NewEngine(kind, Params{Threads: 1, Records: 500, ValueSize: 256})
			if err != nil {
				t.Fatal(err)
			}
			defer st.Close()
			kv := st.Thread(0)
			rng := sim.NewRNG(0xbeef)
			ref := map[string]string{}
			key := func(i int) []byte { return []byte(fmt.Sprintf("user%012d", i)) }
			for i := 0; i < 3000; i++ {
				k := rng.Intn(400)
				switch rng.Intn(10) {
				case 0:
					err := kv.Delete(key(k))
					_, exists := ref[string(key(k))]
					if exists != (err == nil) && !errors.Is(err, engine.ErrNotFound) {
						t.Fatalf("op %d: delete %d err=%v exists=%v", i, k, err, exists)
					}
					delete(ref, string(key(k)))
				case 1, 2, 3:
					got, err := kv.Get(key(k))
					want, exists := ref[string(key(k))]
					if exists != (err == nil) {
						t.Fatalf("op %d: get %d err=%v, model exists=%v", i, k, err, exists)
					}
					if exists && string(got) != want {
						t.Fatalf("op %d: get %d = %q, model %q", i, k, got, want)
					}
				case 4:
					// Range scan agrees with the sorted model.
					start := key(k)
					var want []string
					for rk := range ref {
						if rk >= string(start) {
							want = append(want, rk)
						}
					}
					sort.Strings(want)
					if len(want) > 10 {
						want = want[:10]
					}
					var got []string
					if err := kv.Scan(start, 10, func(k, v []byte) bool {
						got = append(got, string(k))
						return true
					}); err != nil {
						t.Fatalf("op %d: scan: %v", i, err)
					}
					if len(got) != len(want) {
						t.Fatalf("op %d: scan got %d keys, model %d\n got: %v\nwant: %v", i, len(got), len(want), got, want)
					}
					for j := range want {
						if got[j] != want[j] {
							t.Fatalf("op %d: scan[%d] = %q, model %q", i, j, got[j], want[j])
						}
					}
				default:
					v := fmt.Sprintf("v-%d-%04d", i, rng.Intn(10000))
					// Values must be fixed-size for KVell's slab slots;
					// pad deterministically.
					padded := make([]byte, 64)
					copy(padded, v)
					if err := kv.Put(key(k), padded); err != nil {
						t.Fatalf("op %d: put: %v", i, err)
					}
					ref[string(key(k))] = string(padded)
				}
			}
			// Full final agreement.
			n := 0
			if err := kv.Scan(nil, 0, func(k, v []byte) bool {
				want, exists := ref[string(k)]
				if !exists {
					t.Fatalf("final scan surfaced unknown key %q", k)
				}
				if !bytes.Equal(v, []byte(want)) {
					t.Fatalf("final scan %q = %q, model %q", k, v, want)
				}
				n++
				return true
			}); err != nil {
				t.Fatal(err)
			}
			if n != len(ref) {
				t.Fatalf("final scan visited %d keys, model has %d", n, len(ref))
			}
		})
	}
}
