package bench

import (
	"testing"

	"repro/internal/core"
)

// runPipelinedPut measures single-connection put throughput (ops per
// virtual second) at one pipeline depth: one thread bursts `depth`
// PutAsync submissions then drains, over and over — the bench harness's
// pipelined mode against the full Prism engine.
func runPipelinedPut(t *testing.T, depth int) float64 {
	t.Helper()
	// PWB sized to hold the run: the gate measures submission overlap,
	// not reclamation pressure (see PipelineDepth).
	p := Params{Threads: 1, Records: 4000, ValueSize: 128,
		PrismMut: func(o *core.Options) { o.PWBBytesPerThread = 8 << 20 }}
	st, err := NewEngine(EnginePrism, p)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	rc := RunConfig{Threads: 1, Records: 4000, ValueSize: 128, Pipeline: depth}
	r := Load(st, EnginePrism, rc)
	if r.Errors > 0 {
		t.Fatalf("depth %d: %d errors", depth, r.Errors)
	}
	if r.Ops != 4000 {
		t.Fatalf("depth %d: ran %d ops, want 4000", depth, r.Ops)
	}
	return r.KOpsPerSec() * 1e3
}

// TestPipelineDepthSpeedup is the async-pipeline acceptance gate: a
// depth-32 pipeline must lift single-connection virtual-time Put
// throughput at least 3x over depth 1. Depth-1 pays the full
// synchronous put latency per op; at depth 32 the admission loop
// coalesces each burst into a few windows (one epoch enter, one PWB
// publish per window) and overlaps the fixed NVM latencies on stage
// clocks, so only the shared-channel transfer residue stays serial —
// the measured curve saturates near 7x.
func TestPipelineDepthSpeedup(t *testing.T) {
	d1 := runPipelinedPut(t, 1)
	d32 := runPipelinedPut(t, 32)
	speedup := d32 / d1
	t.Logf("depth 1: %.0f ops/s, depth 32: %.0f ops/s, speedup %.2fx", d1, d32, speedup)
	if speedup < 3 {
		t.Fatalf("depth-32 pipeline speedup %.2fx, want >= 3x", speedup)
	}
}
