//go:build !race

package bench

// raceEnabled reports whether the test binary was built with -race; see
// raceguard_test.go.
const raceEnabled = false
