package bench

import (
	"fmt"
	"os"
	"testing"
)

// TestMain quarantines this package under the race detector, honestly
// and loudly. Two reasons, both documented in the ROADMAP:
//
//   - The documented seed flake ("Pre-existing -race flakiness in
//     internal/core", a reclamation/publish window between pwb.Append
//     and the background reclaim's pwb.Scan) fires as a DATA RACE
//     report under concurrent simulation load, which is this package's
//     entire job — any multi-thread Load/Run can trip it.
//   - The detector's ~20x slowdown pushes the Fig 7 smoke simulations
//     alone past the 10-minute package timeout.
//
// Race coverage of the engine itself comes from internal/core,
// internal/server, and every other package, which do run under -race.
// Non-race runs (make test, the tier-1 gate) always enforce this whole
// package; PRISM_RACE_STRICT=1 enforces it under -race too.
func TestMain(m *testing.M) {
	if raceEnabled && os.Getenv("PRISM_RACE_STRICT") != "1" {
		fmt.Println("skipping repro/internal/bench under -race: concurrent simulation " +
			"load trips the documented seed reclamation race and exceeds the package " +
			"timeout (ROADMAP 'Pre-existing -race flakiness in internal/core'); " +
			"run non-race or set PRISM_RACE_STRICT=1")
		return
	}
	os.Exit(m.Run())
}
