package bench

// The rangescan experiment: scan locality under range placement (ISSUE
// 9). Hash placement spreads every key range across all shards, so a
// narrow scan must k-way merge all of them — each shard runs a bounded
// sub-scan and the router over-fetches up to shards x count keys of
// device work per scan. Range placement routes the same scan to the one
// shard owning the interval, so concurrent scans from different threads
// partition cleanly across the shards' independent device sets instead
// of contending on all of them.

import (
	"fmt"
	"sync"

	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/ycsb"
)

// rangeScanShards fixes the experiment's shard count: 4 quartiles, one
// scanning thread pinned per quartile.
const rangeScanShards = 4

// QuartileSplitKeys returns the rangeScanShards-1 boundary keys that cut
// the loaded YCSB keyspace (ids 1..records) into equal quartiles.
func QuartileSplitKeys(records int) [][]byte {
	var splits [][]byte
	for q := 1; q < rangeScanShards; q++ {
		splits = append(splits, ycsb.Key(uint64(1+q*records/rangeScanShards)))
	}
	return splits
}

// RangeScanResult is one placement mode's measurement, shared with the
// locality gate test.
type RangeScanResult struct {
	KOps          float64      // quartile-local scans per virtual second (thousands)
	ShardScansPer float64      // core scan ops issued per router scan (fan-out)
	Delta         obs.Snapshot // metric movement across the scan phase
}

// runRangeScan loads a 4-shard Prism under the given placement mode and
// drives the concurrent quartile-local scan phase: each thread scans
// random intervals inside its own quartile only, so under range
// placement every scan has exactly one owning shard.
func runRangeScan(rc RunConfig, placement string) RangeScanResult {
	rc.applyDefaults()
	p := Params{
		Threads:   rc.Threads,
		Records:   rc.Records,
		ValueSize: rc.ValueSize,
		Shards:    rangeScanShards,
		Placement: placement,
	}
	if placement == "range" {
		p.SplitKeys = QuartileSplitKeys(rc.Records)
	}
	st, err := NewEngine(EnginePrism, p)
	if err != nil {
		panic(err)
	}
	ps := st.(*engine.PrismStore)
	Load(st, EnginePrism, rc)

	pre := ps.Metrics()
	scansBefore := int64(0)
	for j := 0; j < rangeScanShards; j++ {
		scansBefore += ps.S.Shard(j).Stats().Scans
	}

	const scanLen = 64
	nt := rc.Threads
	if nt > st.NumThreads() {
		nt = st.NumThreads()
	}
	scansPerThread := rc.Ops / 8 / nt
	if scansPerThread == 0 {
		scansPerThread = 1
	}
	var wg sync.WaitGroup
	virt := make([]int64, nt)
	for ti := 0; ti < nt; ti++ {
		wg.Add(1)
		go func(ti int) {
			defer wg.Done()
			kv := st.Thread(ti)
			clk := kv.Clock()
			start := clk.Now()
			// Quartile-local starts, with room for the scan to finish
			// inside the quartile: [qlo, qhi-scanLen).
			q := ti % rangeScanShards
			qlo := 1 + q*rc.Records/rangeScanShards
			span := rc.Records/rangeScanShards - scanLen
			if span < 1 {
				span = 1
			}
			seed := rc.Seed + uint64(ti)*7919
			for i := 0; i < scansPerThread; i++ {
				// xorshift stream per thread: deterministic, quartile-local.
				seed ^= seed << 13
				seed ^= seed >> 7
				seed ^= seed << 17
				id := qlo + int(seed%uint64(span))
				if err := kv.Scan(ycsb.Key(uint64(id)), scanLen, func(k, v []byte) bool { return true }); err != nil {
					panic(fmt.Sprintf("bench: rangescan %s: %v", placement, err))
				}
			}
			virt[ti] = clk.Now() - start
		}(ti)
	}
	wg.Wait()

	var out RangeScanResult
	var makespan int64
	for _, v := range virt {
		if v > makespan {
			makespan = v
		}
	}
	totalScans := int64(nt) * int64(scansPerThread)
	if makespan > 0 {
		out.KOps = float64(totalScans) / (float64(makespan) / 1e9) / 1e3
	}
	scansAfter := int64(0)
	for j := 0; j < rangeScanShards; j++ {
		scansAfter += ps.S.Shard(j).Stats().Scans
	}
	out.ShardScansPer = float64(scansAfter-scansBefore) / float64(totalScans)
	out.Delta = ps.Metrics().Delta(pre)
	rc.Metrics.CaptureSnapshot(EnginePrism, "rangescan-"+placement, out.KOps, out.Delta)
	st.Close()
	return out
}

// RangeScan compares hash and range placement on the concurrent
// quartile-local scan phase — the locality claim behind the placement
// mode, measured in virtual time on identical 4-shard stores.
func RangeScan(rc RunConfig) Table {
	rc.applyDefaults()
	t := Table{
		Title:  "Range placement: quartile-local scan throughput, 4 shards (Kops/sec)",
		Header: []string{"placement", "scan Kops/sec", "shard scans per scan", "speedup"},
		Notes: []string{
			"each thread scans 64-key intervals confined to its own keyspace quartile",
			"hash: every scan k-way merges all 4 shards (over-fetching 4x64 keys of device work)",
			"range: the boundary table routes each scan to the one shard owning its quartile",
			"shard scans per scan = core scan ops issued / router scans (fan-out; 1.0 = perfect locality)",
		},
	}
	hash := runRangeScan(rc, "hash")
	rng := runRangeScan(rc, "range")
	speedup := "-"
	if hash.KOps > 0 {
		speedup = fmt.Sprintf("%.2fx", rng.KOps/hash.KOps)
	}
	t.Rows = append(t.Rows,
		[]string{"hash", f1(hash.KOps), f2(hash.ShardScansPer), "1.00x"},
		[]string{"range", f1(rng.KOps), f2(rng.ShardScansPer), speedup},
	)
	return t
}
