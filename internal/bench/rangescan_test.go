package bench

import (
	"strconv"
	"testing"

	"repro/internal/engine"
	"repro/internal/ycsb"
)

// TestRangeScanLocality is the range-placement acceptance gate (ISSUE
// 9): on a 4-shard store with quartile split keys, (1) a narrow scan
// reads exactly its owning shard — pinned both by the aggregate fan-out
// counter and by the per-shard {shard=N} core.ops{op=scan} metric — and
// (2) the concurrent quartile-local scan phase beats hash placement's
// k-way merge by a clear virtual-time margin.
func TestRangeScanLocality(t *testing.T) {
	rc := RunConfig{Threads: 4, Records: 4000, Ops: 4000, ValueSize: 256}
	hash := runRangeScan(rc, "hash")
	rng := runRangeScan(rc, "range")

	t.Logf("hash:  %.1f Kops/sec, %.2f shard scans per scan", hash.KOps, hash.ShardScansPer)
	t.Logf("range: %.1f Kops/sec, %.2f shard scans per scan, speedup %.2fx",
		rng.KOps, rng.ShardScansPer, rng.KOps/hash.KOps)

	if rng.ShardScansPer != 1.0 {
		t.Errorf("range placement fan-out = %.3f shard scans per scan, want exactly 1.0", rng.ShardScansPer)
	}
	if hash.ShardScansPer != float64(rangeScanShards) {
		t.Errorf("hash placement fan-out = %.3f shard scans per scan, want %d (k-way merge)",
			hash.ShardScansPer, rangeScanShards)
	}
	if hash.KOps <= 0 || rng.KOps < hash.KOps*1.3 {
		t.Errorf("range scan throughput %.1f Kops vs hash %.1f Kops, want >= 1.3x", rng.KOps, hash.KOps)
	}

	// Single-scan metric-level check: one narrow scan on a fresh range
	// store moves core.ops{op=scan} on exactly the owning shard.
	p := Params{Threads: 1, Records: 1000, ValueSize: 256, Shards: rangeScanShards,
		Placement: "range", SplitKeys: QuartileSplitKeys(1000)}
	st, err := NewEngine(EnginePrism, p)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	Load(st, EnginePrism, RunConfig{Threads: 1, Records: 1000, ValueSize: 256})
	ps := st.(*engine.PrismStore)
	pre := ps.Metrics()
	// Keys 300..310 live in quartile 1 ([251, 501)), owned by shard 1.
	if err := st.Thread(0).Scan(ycsb.Key(300), 10, func(k, v []byte) bool { return true }); err != nil {
		t.Fatal(err)
	}
	delta := ps.Metrics().Delta(pre)
	for j := 0; j < rangeScanShards; j++ {
		got := 0.0
		if m, ok := delta.Get("core.ops", map[string]string{"op": "scan", "shard": strconv.Itoa(j)}); ok {
			got = m.Value
		}
		want := 0.0
		if j == 1 {
			want = 1.0
		}
		if got != want {
			t.Errorf("core.ops{op=scan,shard=%d} moved by %.0f, want %.0f", j, got, want)
		}
	}
	if m, ok := delta.Get("shard.range_scans", nil); !ok || m.Value != 1 {
		t.Errorf("shard.range_scans delta = %v, want 1", m.Value)
	}
}
