package bench

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/ycsb"
)

// Replication measures the replica fan-out: a 3-shard Prism at replica
// factors 1..3 runs LOAD and YCSB-A, reporting throughput and the
// overhead versus the unreplicated baseline (R=1 must be bit-for-bit the
// plain router, so its overhead row is exactly 0%). For R > 1 the run
// then crashes one replica mid write-burst, keeps serving, recovers it,
// and reports how many anti-entropy passes convergence took — the same
// sequence the CI fault-injection gate asserts on.
func Replication(rc RunConfig) Table {
	rc.applyDefaults()
	const shards = 3
	t := Table{
		Title:  "Replication: 3-shard throughput and repair convergence vs replica factor",
		Header: []string{"replicas", "LOAD Kops/sec", "YCSB-A Kops/sec", "A overhead vs R=1", "repair passes"},
		Notes: []string{
			"R-way placement on the jump ring: primary + R-1 successors, LWW stamps",
			"overhead = 1 - KOps(R)/KOps(1) on YCSB-A (reads primary-only, writes fan out)",
			"repair passes: crash 1 replica mid-burst, recover, pull passes until converged",
		},
	}
	var baseA float64
	for _, r := range []int{1, 2, 3} {
		p := Params{
			Threads:   rc.Threads,
			Records:   rc.Records,
			ValueSize: rc.ValueSize,
			Shards:    shards,
			Replicas:  r,
			// The experiment drives repair passes by hand so the pass
			// count is deterministic and reportable.
			PrismMut: func(o *core.Options) { o.DisableAutoRepair = true },
		}
		st, err := NewEngine(EnginePrism, p)
		if err != nil {
			panic(err)
		}
		var pre obs.Snapshot
		src, hasMetrics := st.(MetricsSource)
		if hasMetrics {
			pre = src.Metrics()
		}
		load := Load(st, EnginePrism, rc)
		a := Run(st, EnginePrism, ycsb.WorkloadA, rc)
		if hasMetrics {
			rc.Metrics.CaptureSnapshot(EnginePrism,
				fmt.Sprintf("replication-r%d", r),
				a.KOpsPerSec(), src.Metrics().Delta(pre))
		}
		passes := "-"
		if r > 1 {
			passes = fmt.Sprintf("%d", replicationFaultDrill(st.(*engine.PrismStore), rc))
		}
		overhead := "0.0%"
		ka := a.KOpsPerSec()
		if r == 1 {
			baseA = ka
		} else if baseA > 0 {
			overhead = fmt.Sprintf("%.1f%%", (1-ka/baseA)*100)
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", r),
			f1(load.KOpsPerSec()), f1(ka), overhead, passes,
		})
		st.Close()
	}
	return t
}

// replicationFaultDrill is the crash/recover/repair sequence of the
// fault-injection gate, run against an already-loaded store: crash shard
// 1, write a burst around it, recover, then count pull passes until a
// pass applies nothing. Returns the pass count (bounded by the router's
// own repair-pass cap).
func replicationFaultDrill(ps *engine.PrismStore, rc RunConfig) int {
	s := ps.S
	th := s.Thread(0)
	const victim = 1
	s.CrashShard(victim)
	val := make([]byte, rc.ValueSize)
	for i := 0; i < 500; i++ {
		key := fmt.Sprintf("drill%012d", i)
		if err := th.Put([]byte(key), val); err != nil {
			panic(fmt.Sprintf("bench: drill write with replica down: %v", err))
		}
	}
	if _, err := s.RecoverShard(victim); err != nil {
		panic(fmt.Sprintf("bench: drill recover: %v", err))
	}
	passes := 0
	for st := s.RepairShard(victim); st.Applied() != 0; st = s.RepairShard(victim) {
		passes++
		if passes > 32 {
			break
		}
	}
	return passes + 1 // count the final empty (converging) pass
}
