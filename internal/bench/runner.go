// Package bench is the evaluation harness: it reproduces every table and
// figure of the paper's §7 against the engines implemented in this
// repository. Each experiment has one entry point returning a printable
// Table plus structured results, so the cmd/prism-bench CLI, the root
// bench_test.go benchmarks, and the tests all drive the same code.
//
// Numbers are produced in virtual time by the device simulators;
// EXPERIMENTS.md records how the shapes compare with the paper.
package bench

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/engine"
	"repro/internal/histogram"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/ycsb"
)

// RunConfig sizes one workload phase.
type RunConfig struct {
	Threads    int
	Records    int // loaded keyspace
	Ops        int // operations in the measured phase
	ValueSize  int
	Zipfian    float64
	MaxScanLen int
	Seed       uint64

	// Shards routes Prism through that many independent stores behind
	// the hash router (default 1; baselines ignore it).
	Shards int

	// Replicas places each key on that many shards of the router ring
	// (default 1 = unreplicated; requires Shards >= Replicas). Only
	// Prism replicates (the baselines ignore it).
	Replicas int

	// Placement selects the Prism router's placement mode ("hash"
	// default, or "range" for boundary-table routing), with SplitKeys as
	// the initial range boundaries (see prism.ParseSplitKeys for the CLI
	// form). Only Prism shards (the baselines ignore it).
	Placement string
	SplitKeys [][]byte

	// TierSpec configures a heterogeneous SSD array with hot/cold
	// tiering (core.ParseTierSpec format). Only Prism tiers (the
	// baselines ignore it).
	TierSpec string

	// Batch, when > 1, groups consecutive same-kind operations into
	// windows of up to Batch and issues them through engine.PutBatch /
	// engine.MultiGet — native single-epoch batches on Prism, plain
	// per-key loops on the baselines. Scans always run individually.
	// Latency is recorded per operation as its window's share.
	Batch int

	// Pipeline, when > 1, models a pipelined client: each thread submits
	// operations through the engine's asynchronous pipeline
	// (engine.AsyncKV) and drains every Pipeline submissions, so up to
	// Pipeline ops are in flight per drain window. Engines without an
	// async pipeline fall back to synchronous calls. Scans drain the
	// window first and run synchronously. Takes precedence over Batch.
	// Latency is recorded per operation as its window's share.
	Pipeline int

	// TimelineBucketNS, when > 0, collects completed-op counts per
	// virtual-time bucket (Figure 17).
	TimelineBucketNS int64

	// SampleNS, when > 0 and the store implements MetricsSource, snapshots
	// every registered metric each SampleNS of virtual time, producing a
	// Figure-17-style timeline for any metric (Result.MetricSamples).
	SampleNS int64

	// Metrics, when non-nil, receives each engine's final obs snapshot
	// just before the experiment closes its store (engines without a
	// registry are skipped). Shared by all experiments in a run.
	Metrics *MetricsCollector
}

func (rc *RunConfig) applyDefaults() {
	if rc.Threads == 0 {
		rc.Threads = 4
	}
	if rc.Records == 0 {
		rc.Records = 10000
	}
	if rc.Ops == 0 {
		rc.Ops = 20000
	}
	if rc.ValueSize == 0 {
		rc.ValueSize = 1024
	}
	if rc.Zipfian == 0 {
		rc.Zipfian = 0.99
	}
	if rc.MaxScanLen == 0 {
		rc.MaxScanLen = 100
	}
	if rc.Seed == 0 {
		rc.Seed = 42
	}
}

// Result is one (engine, workload) measurement.
type Result struct {
	Engine    string
	Workload  ycsb.Workload
	Ops       int64
	VirtualNS int64
	Lat       histogram.Summary
	Timeline  []TimelinePoint
	Errors    int64

	// MetricSamples is the per-interval metrics timeline (RunConfig.SampleNS).
	MetricSamples []MetricSample
}

// TimelinePoint is one Figure 17 sample.
type TimelinePoint struct {
	NS  int64
	Ops int64
}

// KOpsPerSec returns throughput in thousands of operations per virtual
// second.
func (r Result) KOpsPerSec() float64 {
	if r.VirtualNS == 0 {
		return 0
	}
	return float64(r.Ops) / (float64(r.VirtualNS) / 1e9) / 1e3
}

// MopsPerSec returns throughput in millions of ops per virtual second.
func (r Result) MopsPerSec() float64 { return r.KOpsPerSec() / 1e3 }

// Load populates store with rc.Records keys (the YCSB LOAD phase) in
// random order, as §7.1 does, and returns the load-phase result.
func Load(store engine.Store, name string, rc RunConfig) Result {
	rc.applyDefaults()
	cfg := ycsb.Config{
		Workload:    ycsb.Load,
		Records:     0,
		InsertStart: 1, // shared counter hands out 1..Records
		ValueSize:   rc.ValueSize,
	}
	shared := ycsb.NewShared(cfg)
	return runThreads(store, name, ycsb.Load, rc, cfg, shared, rc.Records)
}

// Run executes one measured workload phase over an already-loaded store.
func Run(store engine.Store, name string, w ycsb.Workload, rc RunConfig) Result {
	rc.applyDefaults()
	cfg := ycsb.Config{
		Workload:   w,
		Records:    uint64(rc.Records),
		Zipfian:    rc.Zipfian,
		MaxScanLen: rc.MaxScanLen,
		ValueSize:  rc.ValueSize,
	}
	shared := ycsb.NewShared(cfg)
	return runThreads(store, name, w, rc, cfg, shared, rc.Ops)
}

// LoadAndRun is the common load-then-measure sequence.
func LoadAndRun(store engine.Store, name string, w ycsb.Workload, rc RunConfig) Result {
	Load(store, name, rc)
	return Run(store, name, w, rc)
}

func runThreads(store engine.Store, name string, w ycsb.Workload, rc RunConfig, cfg ycsb.Config, shared *ycsb.Shared, totalOps int) Result {
	threads := rc.Threads
	if threads > store.NumThreads() {
		threads = store.NumThreads()
	}
	perThread := totalOps / threads
	if perThread == 0 {
		perThread = 1
	}

	type threadOut struct {
		hist    *histogram.H
		startNS int64
		endNS   int64
		errs    int64
		times   []int64 // completion timestamps (timeline)
	}
	outs := make([]threadOut, threads)
	// Metrics are sampled by thread 0 at the round barrier: virtual time
	// only advances while workload threads run, so a wall-clock ticker
	// would observe nothing — the sampler rides the clock frontier instead.
	var sampler *obs.Sampler
	if rc.SampleNS > 0 {
		if src, ok := store.(MetricsSource); ok {
			sampler = obs.NewSampler(src.Metrics, rc.SampleNS)
		}
	}
	// Closed-loop benchmark threads share wall-clock time; keep their
	// virtual clocks loosely synchronized with a round barrier so that
	// one thread's backlog is never misread as queueing delay by the
	// others' shared-resource models.
	bar := newRoundBarrier(threads)
	const roundOps = 32
	var wg sync.WaitGroup
	for ti := 0; ti < threads; ti++ {
		wg.Add(1)
		go func(ti int) {
			defer wg.Done()
			kv := store.Thread(ti)
			gen := ycsb.NewGenerator(cfg, shared, rc.Seed+uint64(ti)*7919)
			h := histogram.New()
			clk := kv.Clock()
			start := clk.Now()
			var errs int64
			var times []int64
			batch := rc.Batch
			if batch < 1 {
				batch = 1
			}
			// Pipelined mode: submit through the async pipeline and drain
			// every `pipe` submissions. The store clones keys and values at
			// submission, so the generator's reused buffers are safe.
			pipe := 0
			var async engine.AsyncKV
			if rc.Pipeline > 1 {
				if a, ok := kv.(engine.AsyncKV); ok {
					pipe = rc.Pipeline
					async = a
					batch = 1
				}
			}
			var inflight []engine.Completion
			// flushPipe drains the in-flight window: Flush folds the async
			// makespan into the thread clock, and the window's virtual time
			// is spread evenly over its ops.
			flushPipe := func() {
				n := len(inflight)
				if n == 0 {
					return
				}
				t0 := clk.Now()
				async.Flush()
				for _, c := range inflight {
					if err := c.Wait(); err != nil && !errors.Is(err, engine.ErrNotFound) {
						errs++
					}
				}
				share := (clk.Now() - t0) / int64(n)
				for i := 0; i < n; i++ {
					h.Record(share)
					if rc.TimelineBucketNS > 0 {
						times = append(times, clk.Now())
					}
				}
				inflight = inflight[:0]
			}
			// Per-slot value copies: the generator reuses one value
			// buffer, so a batch window must snapshot each value before
			// the next op overwrites it.
			var pairs []engine.Pair
			var keys [][]byte
			var valBufs [][]byte
			if batch > 1 {
				pairs = make([]engine.Pair, 0, batch)
				keys = make([][]byte, 0, batch)
				valBufs = make([][]byte, batch)
				for i := range valBufs {
					valBufs[i] = make([]byte, rc.ValueSize)
				}
			}
			// flushRun issues the accumulated same-kind run as one batch
			// call and spreads the window's virtual time evenly over its
			// ops, so Result.Ops and latency counts stay per-op.
			flushRun := func() {
				n := len(pairs) + len(keys)
				if n == 0 {
					return
				}
				t0 := clk.Now()
				var err error
				if len(pairs) > 0 {
					err = engine.PutBatch(kv, pairs)
				} else {
					_, err = engine.MultiGet(kv, keys)
				}
				if err != nil && !errors.Is(err, engine.ErrNotFound) {
					errs++
				}
				share := (clk.Now() - t0) / int64(n)
				for i := 0; i < n; i++ {
					h.Record(share)
					if rc.TimelineBucketNS > 0 {
						times = append(times, clk.Now())
					}
				}
				pairs = pairs[:0]
				keys = keys[:0]
			}
			for i := 0; i < perThread; i++ {
				if i%roundOps == 0 {
					flushRun()
					flushPipe()
					bar.await(clk)
					if ti == 0 {
						sampler.Observe(clk.Now())
					}
				}
				op := gen.Next()
				if pipe > 0 {
					switch op.Kind {
					case ycsb.OpInsert, ycsb.OpUpdate:
						inflight = append(inflight, async.PutAsync(op.Key, gen.Value(keyID(op.Key))))
					case ycsb.OpRead:
						inflight = append(inflight, async.GetAsync(op.Key))
					default:
						// Scans have no async form: drain the window (the
						// scan must observe prior writes) and run sync.
						flushPipe()
					}
					if op.Kind != ycsb.OpScan {
						if len(inflight) >= pipe {
							flushPipe()
						}
						continue
					}
				}
				if batch > 1 {
					switch op.Kind {
					case ycsb.OpInsert, ycsb.OpUpdate:
						if len(keys) > 0 || len(pairs) == batch {
							flushRun()
						}
						v := valBufs[len(pairs)]
						copy(v, gen.Value(keyID(op.Key)))
						pairs = append(pairs, engine.Pair{Key: op.Key, Value: v})
						continue
					case ycsb.OpRead:
						if len(pairs) > 0 || len(keys) == batch {
							flushRun()
						}
						keys = append(keys, op.Key)
						continue
					default:
						flushRun()
					}
				}
				t0 := clk.Now()
				var err error
				switch op.Kind {
				case ycsb.OpInsert, ycsb.OpUpdate:
					err = kv.Put(op.Key, gen.Value(keyID(op.Key)))
				case ycsb.OpRead:
					_, err = kv.Get(op.Key)
				case ycsb.OpScan:
					err = kv.Scan(op.Key, op.ScanLen, func(k, v []byte) bool { return true })
				}
				if err != nil && !errors.Is(err, engine.ErrNotFound) {
					errs++
				}
				h.Record(clk.Now() - t0)
				if rc.TimelineBucketNS > 0 {
					times = append(times, clk.Now())
				}
			}
			flushRun()
			flushPipe()
			outs[ti] = threadOut{hist: h, startNS: start, endNS: clk.Now(), errs: errs, times: times}
		}(ti)
	}
	wg.Wait()

	res := Result{Engine: name, Workload: w}
	all := histogram.New()
	for _, o := range outs {
		all.Merge(o.hist)
		if d := o.endNS - o.startNS; d > res.VirtualNS {
			res.VirtualNS = d
		}
		res.Errors += o.errs
		res.Ops += o.hist.Count()
	}
	res.Lat = all.Summarize()
	if sampler != nil {
		// One final sample at the phase's end so the last interval is
		// never silently truncated.
		var end int64
		for _, o := range outs {
			if o.endNS > end {
				end = o.endNS
			}
		}
		sampler.Observe(end)
		res.MetricSamples = flattenSamples(sampler.Samples())
	}
	if rc.TimelineBucketNS > 0 {
		var ts []int64
		for _, o := range outs {
			ts = append(ts, o.times...)
		}
		sort.Slice(ts, func(a, b int) bool { return ts[a] < ts[b] })
		if len(ts) > 0 {
			end := ts[len(ts)-1]
			nb := end/rc.TimelineBucketNS + 1
			counts := make([]int64, nb)
			for _, t := range ts {
				counts[t/rc.TimelineBucketNS]++
			}
			for b, c := range counts {
				res.Timeline = append(res.Timeline, TimelinePoint{NS: int64(b) * rc.TimelineBucketNS, Ops: c})
			}
		}
	}
	return res
}

// Table is a printable experiment output (a paper table or the series
// behind a figure).
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// String renders the table with aligned columns.
func (t Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i < len(widths) {
				fmt.Fprintf(&b, "%-*s  ", widths[i], c)
			}
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	for _, r := range t.Rows {
		line(r)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// roundBarrier synchronizes benchmark threads every round: all arrive,
// all leave with their clocks advanced to the round's maximum.
//
// The release value is bound to the generation at its release instant:
// a woken sleeper must not observe a maximum already polluted by
// next-generation arrivals, or each generation would compound every
// thread's op time into the clock frontier.
type roundBarrier struct {
	mu      sync.Mutex
	cond    *sync.Cond
	n       int
	waiting int
	gen     uint64
	curMax  int64 // max arrival clock of the in-progress generation
	relMax  int64 // release value of the last completed generation
}

func newRoundBarrier(n int) *roundBarrier {
	b := &roundBarrier{n: n}
	b.cond = sync.NewCond(&b.mu)
	return b
}

func (b *roundBarrier) await(clk *sim.Clock) {
	if b.n <= 1 {
		return
	}
	b.mu.Lock()
	if clk.Now() > b.curMax {
		b.curMax = clk.Now()
	}
	b.waiting++
	if b.waiting == b.n {
		b.relMax = b.curMax
		b.curMax = 0
		b.waiting = 0
		b.gen++
		b.cond.Broadcast()
	} else {
		gen := b.gen
		for gen == b.gen {
			b.cond.Wait()
		}
		// Generation g+1 cannot complete before every generation-g
		// sleeper has woken and re-arrived, so relMax is still ours.
	}
	clk.AdvanceTo(b.relMax)
	b.mu.Unlock()
}

// CSV renders the table as RFC-4180-ish CSV (for plotting scripts).
func (t Table) CSV() string {
	var b strings.Builder
	esc := func(c string) string {
		if strings.ContainsAny(c, ",\"\n") {
			return "\"" + strings.ReplaceAll(c, "\"", "\"\"") + "\""
		}
		return c
	}
	write := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(esc(c))
		}
		b.WriteByte('\n')
	}
	write(t.Header)
	for _, r := range t.Rows {
		write(r)
	}
	return b.String()
}

func f1(v float64) string { return fmt.Sprintf("%.1f", v) }
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }

// keyID parses the numeric suffix of a YCSB key ("user%012d").
func keyID(key []byte) uint64 {
	var n uint64
	for _, c := range key {
		if c >= '0' && c <= '9' {
			n = n*10 + uint64(c-'0')
		}
	}
	return n
}
