package bench

import (
	"fmt"
	"testing"
	"time"
)

func TestSmokeFig7T40(t *testing.T) {
	if testing.Short() {
		t.Skip("long")
	}
	rc := RunConfig{Threads: 40, Records: 10000, Ops: 40000}
	t0 := time.Now()
	tab, _ := Fig7(rc)
	fmt.Println(tab)
	fmt.Println("elapsed:", time.Since(t0))
}
