package bench

import (
	"fmt"
	"testing"
	"time"
)

func TestSmokeFig7(t *testing.T) {
	rc := RunConfig{Threads: 4, Records: 4000, Ops: 8000}
	t0 := time.Now()
	tab, _ := Fig7(rc)
	fmt.Println(tab)
	fmt.Println("elapsed:", time.Since(t0))
}
