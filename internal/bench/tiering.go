package bench

// The tiering experiment: hot/cold steering on a heterogeneous SSD
// array (ISSUE 8 / §2.1's device table). Both modes run on the *same*
// two-device array — a small fast drive and a large slow one — so the
// only variable is whether reclamation steers by heat or stripes
// round-robin. The claim under test: on cold-heavy traffic (a small,
// repeatedly-updated hot set amid a stream of write-once inserts),
// steering keeps the cold bytes off the fast device — preserving its
// endurance and bandwidth for the hot set — without costing hot read
// latency.

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/ssd"
	"repro/internal/ycsb"
)

// tieringDevices builds the heterogeneous array both modes run on:
// ssd0 small with the paper-default (980 PRO-class) speed, ssd1 4x the
// capacity with QLC-class latency and bandwidth.
func tieringDevices(ds int64) []ssd.Config {
	return []ssd.Config{
		{Size: clamp64(ds*2, 4<<20, 1<<40)},
		{
			Size:           clamp64(ds*8, 16<<20, 1<<40),
			ReadLatency:    90_000,        // 90us
			WriteLatency:   80_000,        // 80us
			ReadBandwidth:  3_000_000_000, // 3 GB/s
			WriteBandwidth: 1_000_000_000, // 1 GB/s
		},
	}
}

// TieringResult is one mode's measurements, shared with the gate test.
type TieringResult struct {
	ChurnKOps   float64 // cold-heavy churn throughput (Kops per virtual sec)
	Read        Result  // hot-set YCSB-C (hot Get latency probe)
	FastBytes   float64 // device bytes written to the fast drive (all phases)
	FastWAF     float64 // fast-drive bytes written / user bytes first landed there
	ColdSteered float64 // cold reclaim bytes landed on the capacity tier
	ColdTotal   float64 // all cold reclaim bytes (steered + fallback)
}

// ColdOnCapacityPct is the share of cold-classified reclaim bytes that
// reached the capacity tier (0 when the mode never classified).
func (t TieringResult) ColdOnCapacityPct() float64 {
	if t.ColdTotal == 0 {
		return 0
	}
	return 100 * t.ColdSteered / t.ColdTotal
}

// tieringChurnRounds shapes the churn phase: per round, every hot key
// (records/8 of the loaded keyspace) is updated once and twice as many
// fresh cold keys are inserted. Over 8 rounds that is 1x the dataset in
// hot updates against 2x in one-shot inserts — with the load phase, 3 of
// every 4 user bytes are write-once cold.
const tieringChurnRounds = 8

// runTiering runs one mode — load, cold-heavy churn, hot-set reads — on
// the heterogeneous array and extracts the per-device counters.
func runTiering(rc RunConfig, tiered bool) TieringResult {
	mode := "untiered"
	if tiered {
		mode = "tiered"
	}
	totalKeys := rc.Records * 3 // load + 2x cold inserts
	p := Params{
		Threads:   rc.Threads,
		Records:   rc.Records,
		ValueSize: rc.ValueSize,
		PrismMut: func(o *core.Options) {
			o.SSDConfigs = tieringDevices(int64(rc.Records) * int64(rc.ValueSize))
			o.NumSSDs = 2
			o.EnableTiering = tiered
			// Room for the churn's inserts, and a heat window
			// (capacity/4 touches) comfortably longer than one churn
			// round, so the hot set stays in-window between updates.
			o.HSITCapacity = totalKeys * 4
		},
	}
	st, err := NewEngine(EnginePrism, p)
	if err != nil {
		panic(err)
	}
	prc := rc

	var pre obs.Snapshot
	src, hasMetrics := st.(MetricsSource)
	if hasMetrics {
		pre = src.Metrics()
	}
	var out TieringResult
	Load(st, EnginePrism, prc)
	out.ChurnKOps = tieringChurn(st, rc)
	// Hot Get latency: skewed reads over the hot subset only. Identical
	// in both modes; only where the values ended up differs.
	prc.Records = rc.Records / 8
	prc.Zipfian = 1.1
	out.Read = Run(st, EnginePrism, ycsb.WorkloadC, prc)
	if hasMetrics {
		cur := src.Metrics()
		rc.Metrics.CaptureSnapshot(EnginePrism, "tiering-"+mode,
			out.ChurnKOps, cur.Delta(pre))
		fast := map[string]string{"device": "ssd0"}
		if m, ok := cur.Get("ssd.bytes_written", fast); ok {
			out.FastBytes = m.Value
		}
		if m, ok := cur.Get("ssd.waf", fast); ok {
			out.FastWAF = m.Value
		}
		if m, ok := cur.Get("tier.steered_bytes", map[string]string{"class": "cold"}); ok {
			out.ColdSteered = m.Value
			out.ColdTotal = m.Value
		}
		if m, ok := cur.Get("tier.fallback_bytes", map[string]string{"class": "cold"}); ok {
			out.ColdTotal += m.Value
		}
	}
	st.Close()
	return out
}

// tieringChurn drives the cold-heavy mixed phase on thread 0: each round
// interleaves one update of every hot key (the first records/8 loaded
// keys) with twice as many fresh cold inserts, so every reclamation pass
// sees both classes. Returns throughput in Kops per virtual second.
func tieringChurn(st engine.Store, rc RunConfig) float64 {
	kv := st.Thread(0)
	clk := kv.Clock()
	start := clk.Now()
	val := make([]byte, rc.ValueSize)
	for i := range val {
		val[i] = byte(i)
	}
	nHot := rc.Records / 8
	coldPerRound := nHot * 2
	coldNext := uint64(rc.Records) // fresh ids above the loaded keyspace
	ops := 0
	for r := 0; r < tieringChurnRounds; r++ {
		for k := 0; k < coldPerRound; k++ {
			if err := kv.Put(ycsb.Key(coldNext), val); err != nil {
				panic(err)
			}
			coldNext++
			ops++
			if k%2 == 0 {
				hot := uint64(k/2) % uint64(nHot)
				if err := kv.Put(ycsb.Key(hot), val); err != nil {
					panic(err)
				}
				ops++
			}
		}
	}
	elapsed := clk.Now() - start
	if elapsed <= 0 {
		return 0
	}
	return float64(ops) / (float64(elapsed) / 1e9) / 1e3
}

// Tiering compares round-robin placement against hot/cold steering on
// the same fast+capacity device pair under cold-heavy skewed traffic.
func Tiering(rc RunConfig) Table {
	rc.applyDefaults()
	t := Table{
		Title: "Tiering: hot/cold steering on a fast+capacity SSD pair (cold-heavy churn)",
		Header: []string{"mode", "churn Kops", "C Kops", "C avg us", "C p99 us",
			"fast MB written", "fast WAF", "cold->capacity %"},
		Notes: []string{
			"ssd0: small, 980 PRO-class; ssd1: 4x size, QLC-class (90/80us, 3/1 GB/s)",
			"both modes run the identical array; only reclaim placement differs",
			"churn: 1x dataset of hot updates interleaved with 2x of one-shot inserts",
			"C: zipfian-1.1 reads over the hot subset after the churn",
			"cold->capacity % is the share of cold reclaim bytes steered to ssd1",
		},
	}
	for _, tiered := range []bool{false, true} {
		mode := "untiered"
		if tiered {
			mode = "tiered"
		}
		r := runTiering(rc, tiered)
		cold := "-"
		if r.ColdTotal > 0 {
			cold = f1(r.ColdOnCapacityPct())
		}
		t.Rows = append(t.Rows, []string{
			mode,
			f1(r.ChurnKOps), f1(r.Read.KOpsPerSec()),
			f1(r.Read.Lat.AvgUS), f1(r.Read.Lat.P99US),
			f1(r.FastBytes / (1 << 20)),
			fmt.Sprintf("%.2f", r.FastWAF),
			cold,
		})
	}
	return t
}
