package bench

import "testing"

// TestTieringGate is the hot/cold-steering acceptance gate (ISSUE 8):
// on the same fast+capacity device pair under cold-heavy skewed
// traffic, steering must (1) land at least 80% of cold-classified
// reclaim bytes on the capacity tier, (2) measurably cut the fast
// device's total bytes written and its per-device WAF versus untiered
// round-robin placement, and (3) hold hot Get latency within 10% of the
// untiered run. Virtual-time measurement keeps the comparison
// deterministic for a given seed.
func TestTieringGate(t *testing.T) {
	rc := RunConfig{Threads: 2, Records: 4000, Ops: 4000, ValueSize: 1024}
	untiered := runTiering(rc, false)
	tiered := runTiering(rc, true)

	t.Logf("untiered: fast %.1f MB written, WAF %.2f, hot C avg %.2fus p99 %.2fus",
		untiered.FastBytes/(1<<20), untiered.FastWAF, untiered.Read.Lat.AvgUS, untiered.Read.Lat.P99US)
	t.Logf("tiered:   fast %.1f MB written, WAF %.2f, hot C avg %.2fus p99 %.2fus, cold->capacity %.1f%%",
		tiered.FastBytes/(1<<20), tiered.FastWAF, tiered.Read.Lat.AvgUS, tiered.Read.Lat.P99US,
		tiered.ColdOnCapacityPct())

	if tiered.ColdTotal == 0 {
		t.Fatal("tiered mode classified no cold bytes; steering never engaged")
	}
	if pct := tiered.ColdOnCapacityPct(); pct < 80 {
		t.Errorf("cold bytes on capacity tier = %.1f%%, want >= 80%%", pct)
	}
	if untiered.FastBytes == 0 || tiered.FastBytes >= untiered.FastBytes*0.8 {
		t.Errorf("fast-tier bytes written: tiered %.0f vs untiered %.0f, want a >20%% cut",
			tiered.FastBytes, untiered.FastBytes)
	}
	if tiered.FastWAF >= untiered.FastWAF {
		t.Errorf("fast-tier WAF: tiered %.3f vs untiered %.3f, want a drop",
			tiered.FastWAF, untiered.FastWAF)
	}
	if tiered.Read.Lat.AvgUS > untiered.Read.Lat.AvgUS*1.10 {
		t.Errorf("hot Get avg latency: tiered %.2fus vs untiered %.2fus, want within 10%%",
			tiered.Read.Lat.AvgUS, untiered.Read.Lat.AvgUS)
	}
}
