package bench

import (
	"fmt"
	"net"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/engine"
	"repro/internal/server"
	"repro/internal/server/respclient"
	"repro/internal/shard"
	"repro/internal/ycsb"
)

// WireResult is one wire-phase measurement as seen from the client side.
// Virtual time lives in the server's store clocks, so callers that own
// the store bracket RunWire with wireClockMarks to get makespan.
type WireResult struct {
	Ops     int64 // commands issued and acknowledged
	Errors  int64 // RESP error replies (transport errors abort instead)
	WallNS  int64 // client-observed wall time for the whole phase
	MinConn int64 // ops on the least-loaded connection (sanity)
}

// RunWire drives one YCSB workload phase against a RESP server at addr:
// conns connections, each a goroutine running the managed Go/Drain
// pipeline with depth commands in flight. Ops are split evenly across
// connections and every reply is consumed; RESP error replies are
// counted, transport errors abort the phase. The ycsb.Shared counter is
// shared across connections, so a Load phase inserts each key exactly
// once no matter how the split rounds.
func RunWire(addr string, w ycsb.Workload, rc RunConfig, conns, depth int) (WireResult, error) {
	rc.applyDefaults()
	if conns < 1 {
		conns = 1
	}
	if depth < 1 {
		depth = 1
	}
	cfg := ycsb.Config{
		Workload:   w,
		Records:    uint64(rc.Records),
		Zipfian:    rc.Zipfian,
		MaxScanLen: rc.MaxScanLen,
		ValueSize:  rc.ValueSize,
	}
	totalOps := rc.Ops
	if w == ycsb.Load {
		cfg.Records = 0
		cfg.InsertStart = 1
		totalOps = rc.Records
	}
	shared := ycsb.NewShared(cfg)

	perConn := totalOps / conns
	if perConn == 0 {
		perConn = 1
	}

	var (
		wg      sync.WaitGroup
		ops     atomic.Int64
		respErr atomic.Int64
		minConn atomic.Int64
	)
	minConn.Store(int64(perConn))
	errs := make(chan error, conns)
	start := time.Now()
	for ci := 0; ci < conns; ci++ {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			c, err := respclient.Dial(addr)
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			c.Timeout = 30 * time.Second
			c.MaxInFlight = depth
			c.OnReply = func(r respclient.Reply) error {
				if r.Kind == '-' {
					respErr.Add(1)
				}
				return nil
			}
			gen := ycsb.NewGenerator(cfg, shared, rc.Seed+uint64(ci)*7919)
			var sent int64
			for i := 0; i < perConn; i++ {
				op := gen.Next()
				var err error
				switch op.Kind {
				case ycsb.OpInsert, ycsb.OpUpdate:
					err = c.Go("SET", string(op.Key), string(gen.Value(keyID(op.Key))))
				case ycsb.OpRead:
					err = c.Go("GET", string(op.Key))
				case ycsb.OpScan:
					err = c.Go("SCAN", string(op.Key), strconv.Itoa(op.ScanLen))
				}
				if err != nil {
					errs <- fmt.Errorf("wire conn %d op %d: %w", ci, i, err)
					return
				}
				sent++
			}
			if err := c.Drain(); err != nil {
				errs <- fmt.Errorf("wire conn %d drain: %w", ci, err)
				return
			}
			ops.Add(sent)
			for {
				cur := minConn.Load()
				if sent >= cur || minConn.CompareAndSwap(cur, sent) {
					break
				}
			}
		}(ci)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		return WireResult{}, err
	}
	return WireResult{
		Ops:     ops.Load(),
		Errors:  respErr.Load(),
		WallNS:  time.Since(start).Nanoseconds(),
		MinConn: minConn.Load(),
	}, nil
}

// wireClockMarks snapshots every router thread's virtual clock frontier,
// folding any drained-but-unsynced async makespan in first. Only safe
// while no command is in flight — i.e. before clients connect or after
// every pipeline has drained and the server goroutines are parked in
// ReadCommand.
func wireClockMarks(s *shard.Store) []int64 {
	marks := make([]int64, s.NumThreads())
	for i := range marks {
		th := s.Thread(i)
		th.Flush()
		marks[i] = th.Clk.Now()
	}
	return marks
}

// wireMakespan is the max per-thread clock advance between two marks —
// the virtual wall time of the bracketed phase, directly comparable to
// Result.VirtualNS from the in-process runner.
func wireMakespan(before, after []int64) int64 {
	var max int64
	for i := range after {
		if d := after[i] - before[i]; d > max {
			max = d
		}
	}
	return max
}

// wireServer attaches a RESP server to a store on an ephemeral loopback
// listener and returns its address plus a stop function.
func wireServer(s *shard.Store) (addr string, stop func()) {
	srv := server.New(s, server.Config{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		panic(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	return ln.Addr().String(), func() {
		if err := srv.Shutdown(10 * time.Second); err != nil {
			panic(err)
		}
		if err := <-serveErr; err != nil {
			panic(err)
		}
	}
}

// Wire measures the full wire path — RESP parse, dispatch, reply encode
// — against the in-process harness on the same engine: YCSB-A through a
// loopback RESP server at increasing connection counts, in virtual time
// (the served store's thread clocks, bracketed while the pipelines are
// quiescent), next to an in-process pipelined run at matching
// concurrency. The wire column scaling with connections is the
// contention-free-dispatch signal: with the per-slot mutex fan-in,
// connections sharing a thread slot serialized and the curve was flat.
func Wire(rc RunConfig) Table {
	rc.applyDefaults()
	depth := rc.Pipeline
	if depth <= 1 {
		depth = 16
	}
	t := Table{
		Title:  "Wire path: RESP server YCSB-A throughput vs connections (Kops/sec, virtual time)",
		Header: []string{"conns", "wire Kops", "speedup", "in-proc Kops", "wire/in-proc"},
		Notes: []string{
			fmt.Sprintf("pipelined respclient, %d commands in flight per connection", depth),
			"wire Kops uses the served store's virtual clocks (makespan across threads); client wall time is not comparable",
			"in-proc is the same store driven directly at matching concurrency (threads = min(conns, store threads))",
		},
	}
	var base float64
	for _, conns := range []int{1, 2, 4, 8} {
		p := Params{Threads: rc.Threads, Records: rc.Records, ValueSize: rc.ValueSize}
		st, err := NewEngine(EnginePrism, p)
		if err != nil {
			panic(err)
		}
		ps := st.(*engine.PrismStore)
		addr, stop := wireServer(ps.S)
		Load(st, EnginePrism, rc)

		pre := ps.Metrics()
		marks := wireClockMarks(ps.S)
		res, err := RunWire(addr, ycsb.WorkloadA, rc, conns, depth)
		if err != nil {
			panic(err)
		}
		span := wireMakespan(marks, wireClockMarks(ps.S))
		delta := ps.Metrics().Delta(pre)

		var wireKops float64
		if span > 0 {
			wireKops = float64(res.Ops) / (float64(span) / 1e9) / 1e3
		}
		rc.Metrics.CaptureSnapshot(EnginePrism, fmt.Sprintf("wire-%dconns", conns), wireKops, delta)

		rcp := rc
		rcp.Pipeline = depth
		rcp.Threads = conns
		inproc := Run(st, EnginePrism, ycsb.WorkloadA, rcp).KOpsPerSec()

		stop()
		st.Close()

		if conns == 1 {
			base = wireKops
		}
		ratio := "-"
		if inproc > 0 {
			ratio = f2(wireKops / inproc)
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", conns),
			f1(wireKops), fmt.Sprintf("%.2fx", wireKops/base),
			f1(inproc), ratio,
		})
	}
	return t
}
