package bench

import (
	"testing"

	"repro/internal/engine"
	"repro/internal/ycsb"
)

// wirePoint runs one wire YCSB-A phase at the given connection count on
// a fresh loaded store and returns virtual-time Kops/sec plus the raw
// client-side result.
func wirePoint(t *testing.T, rc RunConfig, conns, depth int) (float64, WireResult) {
	t.Helper()
	st, err := NewEngine(EnginePrism, Params{Threads: rc.Threads, Records: rc.Records, ValueSize: rc.ValueSize})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	ps := st.(*engine.PrismStore)
	addr, stop := wireServer(ps.S)
	defer stop()
	Load(st, EnginePrism, rc)

	marks := wireClockMarks(ps.S)
	res, err := RunWire(addr, ycsb.WorkloadA, rc, conns, depth)
	if err != nil {
		t.Fatalf("RunWire conns=%d: %v", conns, err)
	}
	span := wireMakespan(marks, wireClockMarks(ps.S))
	if span <= 0 {
		t.Fatalf("conns=%d: no virtual time elapsed in wire phase", conns)
	}
	return float64(res.Ops) / (float64(span) / 1e9) / 1e3, res
}

// TestWireThroughputScales is the wire-path acceptance gate (ISSUE 10):
// virtual-time throughput over the RESP server must scale with
// connection count, which only holds when connections dispatch without
// convoying on a shared slot lock. The 1.5x floor at 8 connections is
// deliberately loose (measured ~4-7x); a regression to serialized
// dispatch flattens the curve to ~1x and fails clearly.
func TestWireThroughputScales(t *testing.T) {
	rc := RunConfig{Threads: 4, Records: 2000, Ops: 6000, ValueSize: 256}
	const depth = 16

	k1, r1 := wirePoint(t, rc, 1, depth)
	k8, r8 := wirePoint(t, rc, 8, depth)
	t.Logf("1 conn: %.1f Kops (%d ops), 8 conns: %.1f Kops (%d ops), speedup %.2fx",
		k1, r1.Ops, k8, r8.Ops, k8/k1)

	for _, r := range []struct {
		conns int
		res   WireResult
	}{{1, r1}, {8, r8}} {
		wantOps := int64(rc.Ops / r.conns * r.conns)
		if r.res.Ops != wantOps {
			t.Errorf("conns=%d: %d ops acknowledged, want %d", r.conns, r.res.Ops, wantOps)
		}
		if r.res.Errors != 0 {
			t.Errorf("conns=%d: %d RESP error replies, want 0", r.conns, r.res.Errors)
		}
	}
	if k1 <= 0 || k8 < 1.5*k1 {
		t.Errorf("wire throughput at 8 conns = %.1f Kops vs %.1f at 1 conn; want >= 1.5x", k8, k1)
	}
}

// TestWireLoadPhase checks wire-mode correctness for the LOAD workload:
// the shared insert counter spans connections, so every key 1..Records
// is inserted exactly once and the store ends at exactly Records keys.
func TestWireLoadPhase(t *testing.T) {
	rc := RunConfig{Threads: 4, Records: 1500, Ops: 1500, ValueSize: 128}
	st, err := NewEngine(EnginePrism, Params{Threads: rc.Threads, Records: rc.Records, ValueSize: rc.ValueSize})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	ps := st.(*engine.PrismStore)
	addr, stop := wireServer(ps.S)
	defer stop()

	res, err := RunWire(addr, ycsb.Load, rc, 4, 8)
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 0 {
		t.Errorf("%d RESP error replies during load, want 0", res.Errors)
	}
	if got := ps.S.Len(); got != rc.Records {
		t.Errorf("store has %d keys after wire load, want %d", got, rc.Records)
	}
}
