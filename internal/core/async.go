package core

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/hsit"
	"repro/internal/sim"
)

// Asynchronous submission (§5.4 one layer up): PutAsync/GetAsync/
// DeleteAsync enqueue work on a per-thread admission loop and return a
// completion Handle immediately. The loop drains whatever has queued
// into one admission window — one epoch enter, one PWB publish window —
// exactly the coalescing the TCQ already performs for SSD IO, applied to
// whole operations. Within a window each operation runs on its own stage
// clock forked from the window's base clock, so fixed device latencies
// (NVM load/store latency, flush waits) overlap across in-flight
// operations while shared-bandwidth costs (the NVM DIMM channel, SSD
// transfer time) still serialize in virtual time: the same
// latency-hiding / bandwidth-bound split as a real submission queue.

// asyncIssueNS is the per-submission issue cost charged to the window's
// base clock: ringing the doorbell and staging one SQE. It is the only
// strictly serial per-op software cost of the pipeline.
const asyncIssueNS = 120

// asyncOp is the operation kind carried by a Handle.
type asyncOp uint8

const (
	opPut asyncOp = iota
	opGet
	opDelete
)

// Handle is the completion future of one asynchronous submission.
//
// Wait, Value, Done, and CompletedAt are safe to call from any
// goroutine, any number of times, concurrently. A Handle completes
// exactly once; after the first Wait returns, every accessor observes
// the same result. Dropping a Handle without waiting is allowed — the
// operation still executes (a completed Put is durable whether or not
// anyone observes it).
type Handle struct {
	op     asyncOp
	key    []byte
	val    []byte // put: input value until applied; get: result value
	ts     uint64 // nonzero: timestamped variant (PutTSAsync/DeleteTSAsync)
	err    error
	doneNS int64
	done   chan struct{}

	// cbMu guards cb against a concurrent completion; see OnDone.
	cbMu sync.Mutex
	cb   func(*Handle)
}

// Wait blocks until the operation completes and returns its error:
// nil on success, ErrNotFound for a missing key (Get/Delete), ErrClosed
// if the store closed before the operation was admitted.
func (h *Handle) Wait() error {
	<-h.done
	return h.err
}

// Value blocks until the operation completes and returns its result.
// Only GetAsync produces a value; for Put/Delete it is always nil.
func (h *Handle) Value() ([]byte, error) {
	<-h.done
	return h.val, h.err
}

// Done reports whether the operation has completed, without blocking.
func (h *Handle) Done() bool {
	select {
	case <-h.done:
		return true
	default:
		return false
	}
}

// CompletedAt blocks until the operation completes and returns the
// virtual time (ns, on the thread's async timeline) at which it did.
// Completion times are monotone in completion order.
func (h *Handle) CompletedAt() int64 {
	<-h.done
	return h.doneNS
}

// OnDone registers fn to run exactly once when the handle completes,
// called from the completing goroutine — or inline, before OnDone
// returns, if the handle already completed. At most one callback per
// handle. The shard router uses it to compose replica fan-out handles
// without burning a goroutine per submission; fn must not block.
func (h *Handle) OnDone(fn func(*Handle)) {
	h.cbMu.Lock()
	select {
	case <-h.done:
		h.cbMu.Unlock()
		fn(h)
		return
	default:
	}
	h.cb = fn
	h.cbMu.Unlock()
}

// finish closes the done channel and fires any registered callback.
// Result fields must be set before calling.
func (h *Handle) finish() {
	h.cbMu.Lock()
	close(h.done)
	cb := h.cb
	h.cb = nil
	h.cbMu.Unlock()
	if cb != nil {
		cb(h)
	}
}

// NewProxyHandle returns an unresolved Handle plus the function that
// resolves it. The shard router aggregates per-replica completions into
// one caller-visible handle this way. resolve must be called exactly
// once; doneNS is the completion time reported by CompletedAt.
func NewProxyHandle() (h *Handle, resolve func(val []byte, err error, doneNS int64)) {
	h = &Handle{done: make(chan struct{})}
	return h, func(val []byte, err error, doneNS int64) {
		h.val, h.err, h.doneNS = val, err, doneNS
		h.finish()
	}
}

// completedHandle returns an already-completed Handle carrying err
// (immediate rejections: store closed, value too large).
func completedHandle(err error) *Handle {
	h := &Handle{err: err, done: make(chan struct{})}
	close(h.done)
	return h
}

// asyncThread is one Thread's admission loop: the shadow executor that
// drains queued submissions into coalesced admission windows.
//
// The loop never touches the public Thread's state. It executes on lt, a
// private shadow Thread sharing only the Store and the thread's PWB ring
// with its public twin: lt has its own virtual clock (the async
// timeline — think of it as the SQPOLL core servicing this thread's
// submission ring), its own epoch participant (epoch sections do not
// nest), and its own RNG and batch-read scratch. execMu serializes the
// shared PWB ring — and its publish-pending window — between the loop's
// admission windows and the owner's synchronous Put/PutBatch.
type asyncThread struct {
	t  *Thread // public handle (owner of the ring)
	lt *Thread // shadow executor the admission loop runs on

	// execMu serializes ring access: held for every admission window and
	// for every synchronous Put/PutBatch attempt on the public twin.
	execMu sync.Mutex

	mu       sync.Mutex
	cond     *sync.Cond
	queue    []*Handle
	inflight atomic.Int64 // also read lock-free by the in-flight gauge
	started  bool
	stopping bool
	loopDone chan struct{}

	// lastDone makes completion times monotone in completion order
	// (stage clocks may finish out of order within a window). Only the
	// loop goroutine touches it.
	lastDone int64

	pendIdx []int // getPass scratch: window indexes awaiting the VS batch
}

// PutAsync submits a durable write and returns its completion Handle.
// The write obeys the same durability contract as Put — when the Handle
// completes successfully the value is persisted — but executes on the
// thread's async timeline, coalesced with other pending submissions.
//
// Unlike the synchronous methods, PutAsync (and GetAsync/DeleteAsync)
// may be called from any goroutine, concurrently; key and value are
// copied before return. Submissions on one Thread apply in submission
// order. If more than Options.AsyncMaxPending submissions are in flight
// the call blocks until the loop catches up (backpressure, not error).
func (t *Thread) PutAsync(key, value []byte) *Handle {
	s := t.s
	if s.closed.Load() {
		return completedHandle(ErrClosed)
	}
	if len(value) > hsit.MaxValueLen {
		return completedHandle(fmt.Errorf("prism: value of %d bytes exceeds max %d", len(value), hsit.MaxValueLen))
	}
	s.stats.puts.Add(1)
	s.stats.asyncPuts.Add(1)
	s.stats.userBytesWritten.Add(int64(len(value)))
	return t.async.submit(&Handle{op: opPut, key: cloneBytes(key), val: cloneBytes(value), done: make(chan struct{})})
}

// GetAsync submits a read and returns its completion Handle; the value
// arrives via Handle.Value (nil + ErrNotFound for a missing key). A read
// submitted after a write on the same Thread observes that write. See
// PutAsync for the concurrency contract.
func (t *Thread) GetAsync(key []byte) *Handle {
	s := t.s
	if s.closed.Load() {
		return completedHandle(ErrClosed)
	}
	s.stats.gets.Add(1)
	s.stats.asyncGets.Add(1)
	return t.async.submit(&Handle{op: opGet, key: cloneBytes(key), done: make(chan struct{})})
}

// DeleteAsync submits a delete and returns its completion Handle
// (ErrNotFound if the key was missing). See PutAsync for the
// concurrency contract.
func (t *Thread) DeleteAsync(key []byte) *Handle {
	s := t.s
	if s.closed.Load() {
		return completedHandle(ErrClosed)
	}
	s.stats.deletes.Add(1)
	s.stats.asyncDeletes.Add(1)
	return t.async.submit(&Handle{op: opDelete, key: cloneBytes(key), done: make(chan struct{})})
}

// Flush blocks until every async submission on this Thread has
// completed. It does not prevent new submissions from other goroutines;
// callers wanting a quiescent point stop submitting first.
func (t *Thread) Flush() {
	a := t.async
	a.mu.Lock()
	for a.inflight.Load() > 0 {
		a.cond.Wait()
	}
	a.mu.Unlock()
}

// AsyncNow returns the current virtual time of the thread's async
// timeline (the admission loop's clock). After Flush it is the makespan
// of everything submitted so far.
func (t *Thread) AsyncNow() int64 {
	a := t.async
	a.execMu.Lock()
	now := a.lt.Clk.Now()
	a.execMu.Unlock()
	return now
}

// submit enqueues h on the admission loop, applying backpressure at
// Options.AsyncMaxPending in-flight submissions, and lazily starts the
// loop goroutine on first use.
func (a *asyncThread) submit(h *Handle) *Handle {
	s := a.t.s
	a.mu.Lock()
	for !a.stopping && !s.closed.Load() && a.inflight.Load() >= int64(s.opt.AsyncMaxPending) {
		a.cond.Wait()
	}
	if a.stopping || s.closed.Load() {
		a.mu.Unlock()
		h.err = ErrClosed
		h.finish()
		return h
	}
	a.queue = append(a.queue, h)
	a.inflight.Add(1)
	if !a.started {
		a.started = true
		a.loopDone = make(chan struct{})
		go a.loop()
	}
	a.cond.Broadcast()
	a.mu.Unlock()
	return h
}

// stop drains the queue and joins the loop. Called from Store.Close
// after the closed flag is set: everything still queued completes with
// ErrClosed (callers wanting clean completion Flush before Close).
func (a *asyncThread) stop() {
	a.mu.Lock()
	a.stopping = true
	started := a.started
	a.cond.Broadcast()
	a.mu.Unlock()
	if started {
		<-a.loopDone
	}
}

// reset rearms a stopped admission loop (Recover restarting the store
// after a Crash). The queue is empty by then — stop drained it — so the
// next submission lazily starts a fresh loop goroutine.
func (a *asyncThread) reset() {
	a.mu.Lock()
	a.stopping = false
	a.started = false
	a.mu.Unlock()
}

// loop is the admission loop: grab everything queued (capped at
// Options.QueueDepth per window), run it as one coalesced window, wake
// waiters, repeat. Runs until stop() and the queue is empty — a window
// in progress always completes its handles.
func (a *asyncThread) loop() {
	defer close(a.loopDone)
	max := a.t.s.opt.QueueDepth
	for {
		a.mu.Lock()
		for len(a.queue) == 0 && !a.stopping {
			a.cond.Wait()
		}
		if len(a.queue) == 0 {
			a.mu.Unlock()
			return
		}
		n := len(a.queue)
		if n > max {
			n = max
		}
		window := make([]*Handle, n)
		copy(window, a.queue)
		rest := copy(a.queue, a.queue[n:])
		for i := rest; i < len(a.queue); i++ {
			a.queue[i] = nil
		}
		a.queue = a.queue[:rest]
		a.mu.Unlock()

		a.execMu.Lock()
		a.runWindow(window)
		// Idle-reclaim probe: an async burst can leave the ring above the
		// watermark with no further put to kick reclamation; probe after
		// every window so the backlog drains even if traffic stops here.
		a.lt.maybeKickReclaim()
		a.execMu.Unlock()

		a.mu.Lock()
		a.inflight.Add(int64(-len(window)))
		a.cond.Broadcast()
		a.mu.Unlock()
	}
}

// runWindow executes one admission window: maximal same-op runs in
// submission order, so mixed submissions keep their ordering semantics
// (a Get submitted after a Put in the same window sees it applied).
func (a *asyncThread) runWindow(hs []*Handle) {
	a.t.s.asyncWindow.Record(int64(len(hs)))
	for i := 0; i < len(hs); {
		j := i + 1
		for j < len(hs) && hs[j].op == hs[i].op {
			j++
		}
		switch hs[i].op {
		case opPut:
			a.runPuts(hs[i:j])
		case opGet:
			a.getPass(hs[i:j])
		case opDelete:
			a.deletePass(hs[i:j])
		}
		i = j
	}
}

// complete finishes h exactly once: result fields are set before the
// done channel closes, so every accessor sees them. t0 is the window's
// opening time on the async timeline (completion latency baseline).
func (a *asyncThread) complete(h *Handle, val []byte, err error, at, t0 int64) {
	if at < a.lastDone {
		at = a.lastDone
	} else {
		a.lastDone = at
	}
	h.val, h.err, h.doneNS = val, err, at
	a.t.s.asyncLat.Record(at - t0)
	h.finish()
}

// runPuts applies one run of puts, retrying stalled passes under the
// same reclamation protocol as the synchronous path.
func (a *asyncThread) runPuts(hs []*Handle) {
	s := a.t.s
	lt := a.lt
	for attempt := 0; attempt < 1_000_000; attempt++ {
		done := a.putPass(hs)
		hs = hs[done:]
		if len(hs) == 0 {
			lt.maybeKickReclaim()
			return
		}
		// Stalled on a full PWB: the pass closed its publish window on the
		// way out, so reclamation can progress. Help epochs along and wait,
		// in virtual time, for the latest reclamation pass to finish.
		s.em.Collect()
		runtime.Gosched()
		lt.Clk.AdvanceTo(s.reclaimStall[lt.id].Load())
	}
	for _, h := range hs {
		a.complete(h, nil, errors.New("prism: PWB reclamation stalled"), lt.Clk.Now(), lt.Clk.Now())
	}
}

// putPass is one epoch-scoped pass over a run of puts: one epoch enter,
// one PWB publish window. Each put is issued at base+asyncIssueNS and
// executes on a stage clock forked from the base clock, so device fixed
// latencies overlap across the run while NVM-channel bandwidth costs
// serialize (the shared sim.Resource orders them in call order). The
// base clock then advances to the latest stage end: the window's
// makespan. Returns how many handles were consumed (completed or, on a
// close, failed); a short count means the pass stalled on a full ring
// at that index.
func (a *asyncThread) putPass(hs []*Handle) int {
	lt := a.lt
	s := lt.s
	base := lt.Clk
	t0 := base.Now()
	endMax := t0
	lt.part.Enter()
	defer func() {
		// One Published per pass — including stall exits, where records
		// already published must become visible to the reclaimer.
		lt.buf.Published()
		lt.part.Exit()
		lt.Clk = base
		base.AdvanceTo(endMax)
	}()
	for i, h := range hs {
		if s.closed.Load() {
			for _, r := range hs[i:] {
				a.complete(r, nil, ErrClosed, base.Now(), t0)
			}
			return len(hs)
		}
		base.Advance(asyncIssueNS)
		stage := sim.NewClock(base.Now())
		lt.Clk = stage
		// putStepTS falls straight through to putStep when the handle
		// carries no stamp (the non-replicated path).
		err := lt.putStepTS(h.key, h.val, h.ts, false)
		lt.Clk = base
		if err == errRetryPut {
			return i
		}
		if end := stage.Now(); end > endMax {
			endMax = end
		}
		a.complete(h, nil, err, stage.Now(), t0)
	}
	return len(hs)
}

// getPass resolves one run of gets: per-key fast paths (SVC, PWB) on
// stage clocks, then one merged batch read for Value Storage residents
// on the base clock — the MultiGet resolution order. Fast-path gets
// complete at their stage end; VS-resident gets complete when the
// merged read lands, which may be after later fast-path completions
// (reads may complete out of submission order; writes never do).
func (a *asyncThread) getPass(hs []*Handle) {
	lt := a.lt
	s := lt.s
	base := lt.Clk
	t0 := base.Now()
	endMax := t0
	lt.part.Enter()
	defer lt.part.Exit()
	if cap(lt.mgItems) < len(hs) {
		lt.mgItems = make([]scanItem, len(hs))
	}
	items := lt.mgItems[:len(hs)]
	lt.mgPending = lt.mgPending[:0]
	a.pendIdx = a.pendIdx[:0]
	for i, h := range hs {
		base.Advance(asyncIssueNS)
		stage := sim.NewClock(base.Now())
		lt.Clk = stage
		items[i] = scanItem{key: h.key}
		resolved := true
		if idx, ok := s.index.Lookup(stage, h.key); ok {
			items[i].idx = idx
			if v, ok := lt.svcRead(idx); ok {
				items[i].val = cloneBytes(v)
			} else {
				ver := s.table.Version(idx)
				p := s.table.Load(stage, idx)
				switch p.Media {
				case hsit.PWB:
					v := s.pwbOf(p.Off).ReadValue(stage, p.Off, p.Len)
					if s.table.Load(nil, idx) == p {
						s.stats.pwbHits.Add(1)
						items[i].val = v
					} else {
						items[i].val, _, _ = lt.getOnce(idx, h.key)
					}
				case hsit.VS:
					items[i].p = p
					items[i].ver = ver
					lt.mgPending = append(lt.mgPending, &items[i])
					a.pendIdx = append(a.pendIdx, i)
					resolved = false
				default:
					// Deleted between lookup and load: stays missing.
				}
			}
		}
		lt.Clk = base
		if end := stage.Now(); end > endMax {
			endMax = end
		}
		if resolved {
			a.completeGet(hs[i], items[i].val, stage.Now(), t0)
		}
	}
	base.AdvanceTo(endMax)
	if len(lt.mgPending) > 0 {
		lt.readVSBatch(lt.mgPending, false)
		for _, i := range a.pendIdx {
			a.completeGet(hs[i], items[i].val, base.Now(), t0)
		}
	}
}

// completeGet finishes a get handle, mapping a missing value (nil — a
// present empty value is non-nil) to ErrNotFound.
func (a *asyncThread) completeGet(h *Handle, val []byte, at, t0 int64) {
	if val == nil {
		a.complete(h, nil, ErrNotFound, at, t0)
	} else {
		a.complete(h, val, nil, at, t0)
	}
}

// deletePass applies one run of deletes under a single epoch enter,
// each on its own stage clock.
func (a *asyncThread) deletePass(hs []*Handle) {
	lt := a.lt
	base := lt.Clk
	t0 := base.Now()
	endMax := t0
	lt.part.Enter()
	defer func() {
		lt.part.Exit()
		lt.Clk = base
		base.AdvanceTo(endMax)
	}()
	for _, h := range hs {
		base.Advance(asyncIssueNS)
		stage := sim.NewClock(base.Now())
		lt.Clk = stage
		var err error
		if h.ts != 0 && lt.s.repl != nil {
			found, derr := lt.deleteStepTS(h.key, h.ts)
			err = derr
			if derr == nil && !found {
				err = ErrNotFound
			}
		} else {
			err = lt.deleteStep(h.key)
		}
		lt.Clk = base
		if end := stage.Now(); end > endMax {
			endMax = end
		}
		a.complete(h, nil, err, stage.Now(), t0)
	}
}
