package core

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

func asyncStore(t *testing.T, mut func(*Options)) *Store {
	t.Helper()
	opt := Options{
		NumThreads:        2,
		PWBBytesPerThread: 64 << 10,
		HSITCapacity:      1 << 12,
		NumSSDs:           1,
		SSDBytes:          4 << 20,
		ChunkSize:         16 << 10,
		SVCBytes:          32 << 10,
	}
	if mut != nil {
		mut(&opt)
	}
	s, err := Open(opt)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

// TestAsyncRoundtrip exercises the basic future semantics: a completed
// PutAsync is visible to a later GetAsync and to the synchronous path,
// submissions on one Thread apply in submission order, and missing keys
// report ErrNotFound.
func TestAsyncRoundtrip(t *testing.T) {
	s := asyncStore(t, nil)
	th := s.Thread(0)

	hp := th.PutAsync([]byte("k"), []byte("v1"))
	hp2 := th.PutAsync([]byte("k"), []byte("v2")) // later submission wins
	hg := th.GetAsync([]byte("k"))
	if err := hp.Wait(); err != nil {
		t.Fatal(err)
	}
	if err := hp2.Wait(); err != nil {
		t.Fatal(err)
	}
	v, err := hg.Value()
	if err != nil || !bytes.Equal(v, []byte("v2")) {
		t.Fatalf("GetAsync = %q, %v; want v2", v, err)
	}
	if hp.CompletedAt() > hp2.CompletedAt() {
		t.Fatalf("completion times not monotone: %d > %d", hp.CompletedAt(), hp2.CompletedAt())
	}
	// Visible on the synchronous path too (same store state).
	if v, err := th.Get([]byte("k")); err != nil || !bytes.Equal(v, []byte("v2")) {
		t.Fatalf("sync Get after async Put = %q, %v", v, err)
	}

	if err := th.DeleteAsync([]byte("k")).Wait(); err != nil {
		t.Fatal(err)
	}
	if _, err := th.GetAsync([]byte("k")).Value(); err != ErrNotFound {
		t.Fatalf("GetAsync after delete: %v, want ErrNotFound", err)
	}
	if err := th.DeleteAsync([]byte("nope")).Wait(); err != ErrNotFound {
		t.Fatalf("DeleteAsync missing: %v, want ErrNotFound", err)
	}

	// Empty value stays distinguishable from missing.
	if err := th.PutAsync([]byte("e"), nil).Wait(); err != nil {
		t.Fatal(err)
	}
	if v, err := th.GetAsync([]byte("e")).Value(); err != nil || v == nil || len(v) != 0 {
		t.Fatalf("empty value roundtrip = %v, %v", v, err)
	}
}

// TestAsyncFlushAndClose checks Flush quiescence and the Close
// contract: submissions after Close fail fast with ErrClosed, and
// handles still queued at Close complete (with ErrClosed) rather than
// hanging their waiters.
func TestAsyncFlushAndClose(t *testing.T) {
	s := asyncStore(t, nil)
	th := s.Thread(0)
	var hs []*Handle
	for i := 0; i < 100; i++ {
		hs = append(hs, th.PutAsync([]byte(fmt.Sprintf("k%03d", i)), []byte("v")))
	}
	th.Flush()
	for i, h := range hs {
		if !h.Done() {
			t.Fatalf("handle %d not done after Flush", i)
		}
		if err := h.Wait(); err != nil {
			t.Fatalf("handle %d: %v", i, err)
		}
	}
	if n := s.Stats().AsyncPuts; n != 100 {
		t.Fatalf("AsyncPuts = %d, want 100", n)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := th.PutAsync([]byte("late"), []byte("v")).Wait(); err != ErrClosed {
		t.Fatalf("PutAsync after Close: %v, want ErrClosed", err)
	}
	if err := th.GetAsync([]byte("late")).Wait(); err != ErrClosed {
		t.Fatalf("GetAsync after Close: %v, want ErrClosed", err)
	}
}

// TestAsyncCoalescing verifies the admission loop actually batches: a
// burst of puts submitted ahead of the loop must land in far fewer
// admission windows than ops, observable as epoch enters well below one
// per op (the window shares one epoch section).
func TestAsyncCoalescing(t *testing.T) {
	s := asyncStore(t, nil)
	th := s.Thread(0)
	e0 := s.em.Enters()
	const ops = 256
	var hs []*Handle
	for i := 0; i < ops; i++ {
		hs = append(hs, th.PutAsync([]byte(fmt.Sprintf("k%04d", i)), make([]byte, 64)))
	}
	th.Flush()
	for _, h := range hs {
		if err := h.Wait(); err != nil {
			t.Fatal(err)
		}
	}
	enters := s.em.Enters() - e0
	if enters >= ops {
		t.Fatalf("epoch enters %d for %d async puts: admission loop did not coalesce", enters, ops)
	}
	t.Logf("%d async puts -> %d epoch enters", ops, enters)
}

// TestAsyncCompletionStress hammers the admission loops from many
// concurrent submitter goroutines per thread handle while tiny PWB
// rings force constant reclamation stalls mid-window. Every handle must
// complete exactly once (a double completion would panic closing the
// done channel twice; a lost wakeup would hang Flush or a Wait), with
// no error other than ErrNotFound.
func TestAsyncCompletionStress(t *testing.T) {
	s := asyncStore(t, func(o *Options) {
		o.PWBBytesPerThread = 8 << 10 // tiny rings: stall/reclaim churn
		o.AsyncMaxPending = 16        // exercise backpressure waits
		o.QueueDepth = 8
	})
	const submitters, opsEach = 4, 250
	val := bytes.Repeat([]byte("x"), 200)
	var completed atomic.Int64
	var wg sync.WaitGroup
	for ti := 0; ti < s.NumThreads(); ti++ {
		th := s.Thread(ti)
		for g := 0; g < submitters; g++ {
			wg.Add(1)
			go func(ti, g int) {
				defer wg.Done()
				var hs []*Handle
				for i := 0; i < opsEach; i++ {
					key := []byte(fmt.Sprintf("t%d-g%d-%03d", ti, g, i%40))
					var h *Handle
					switch i % 4 {
					case 0, 1:
						h = th.PutAsync(key, val)
					case 2:
						h = th.GetAsync(key)
					default:
						h = th.DeleteAsync(key)
					}
					hs = append(hs, h)
					if i%16 == 0 {
						// Interleave waiting with submitting: exercises
						// completion wakeups racing fresh submissions.
						if err := h.Wait(); err != nil && err != ErrNotFound {
							t.Error(err)
							return
						}
					}
				}
				for _, h := range hs {
					if err := h.Wait(); err != nil && err != ErrNotFound {
						t.Error(err)
						return
					}
					// Waiting again must return the identical result.
					if err2 := h.Wait(); !errors.Is(err2, h.err) {
						t.Errorf("second Wait differs: %v", err2)
						return
					}
					completed.Add(1)
				}
			}(ti, g)
		}
	}
	wg.Wait()
	for ti := 0; ti < s.NumThreads(); ti++ {
		s.Thread(ti).Flush()
	}
	want := int64(s.NumThreads() * submitters * opsEach)
	if completed.Load() != want {
		t.Fatalf("completed %d handles, want %d", completed.Load(), want)
	}
	st := s.Stats()
	if st.AsyncPuts+st.AsyncGets+st.AsyncDeletes != want {
		t.Fatalf("async stats %d+%d+%d != %d", st.AsyncPuts, st.AsyncGets, st.AsyncDeletes, want)
	}
}

// TestAsyncConcurrentWithSync drives synchronous Put/PutBatch/Get on
// the public Thread handle while a second goroutine keeps the async
// pipeline of the same thread busy: the shared PWB ring must stay
// consistent (execMu serializes append windows) and both paths must see
// each other's completed writes.
func TestAsyncConcurrentWithSync(t *testing.T) {
	s := asyncStore(t, nil)
	th := s.Thread(0)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		i := 0
		for {
			select {
			case <-stop:
				return
			default:
			}
			key := []byte(fmt.Sprintf("async-%03d", i%64))
			if err := th.PutAsync(key, []byte("av")).Wait(); err != nil {
				t.Error(err)
				return
			}
			i++
		}
	}()
	val := bytes.Repeat([]byte("s"), 128)
	for i := 0; i < 400; i++ {
		key := []byte(fmt.Sprintf("sync-%03d", i%64))
		if err := th.Put(key, val); err != nil {
			t.Fatal(err)
		}
		if v, err := th.Get(key); err != nil || !bytes.Equal(v, val) {
			t.Fatalf("sync Get = %q, %v", v, err)
		}
		if i%10 == 0 {
			if err := th.PutBatch([]KV{{Key: key, Value: val}, {Key: []byte("b"), Value: val}}); err != nil {
				t.Fatal(err)
			}
		}
	}
	close(stop)
	wg.Wait()
	th.Flush()
	if v, err := th.Get([]byte("async-000")); err != nil || !bytes.Equal(v, []byte("av")) {
		t.Fatalf("sync read of async write = %q, %v", v, err)
	}
}

// TestAsyncCrashRecover crashes the store while async puts are in
// flight and verifies the durable prefix property carries over: after
// Recover, every key whose handle completed successfully before the
// crash must be present with its submitted value.
func TestAsyncCrashRecover(t *testing.T) {
	s := asyncStore(t, nil)
	th := s.Thread(0)
	const ops = 200
	var hs []*Handle
	for i := 0; i < ops; i++ {
		hs = append(hs, th.PutAsync([]byte(fmt.Sprintf("k%04d", i)), []byte(fmt.Sprintf("v%04d", i))))
	}
	hs[ops/4].Wait() // let the pipeline get partway through the stream
	s.Crash()        // joins the admission loop mid-stream; rest fail with ErrClosed
	okBefore := 0
	sawClosed := false
	for _, h := range hs {
		if !h.Done() {
			t.Fatal("handle not completed after Crash")
		}
		switch err := h.Wait(); err {
		case nil:
			if sawClosed {
				t.Fatal("successful completion after a failed one: not a prefix")
			}
			okBefore++
		case ErrClosed:
			sawClosed = true
		default:
			t.Fatal(err)
		}
	}
	if _, err := s.Recover(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < okBefore; i++ {
		v, err := th.Get([]byte(fmt.Sprintf("k%04d", i)))
		if err != nil || !bytes.Equal(v, []byte(fmt.Sprintf("v%04d", i))) {
			t.Fatalf("key %d completed before crash but reads %q, %v after recovery", i, v, err)
		}
	}
	// The pipeline must be usable again after recovery.
	if err := th.PutAsync([]byte("post"), []byte("crash")).Wait(); err != nil {
		t.Fatal(err)
	}
	t.Logf("%d/%d async puts completed before crash", okBefore, ops)
}
