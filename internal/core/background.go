package core

import (
	"sort"

	"repro/internal/hsit"
	"repro/internal/pwb"
	"repro/internal/sim"
	"repro/internal/svc"
	"repro/internal/valuestore"
)

// reclaimLoop is PWB i's background reclamation thread (§5.2): it drains
// the ring past the watermark into Value Storage chunks, off its
// application thread's critical path. One reclaimer per PWB mirrors the
// per-thread write-buffer design — reclamation scales with the writers.
func (s *Store) reclaimLoop(i int) {
	defer s.bg.Done()
	rng := sim.NewRNG(s.opt.Seed ^ (0xabcdef + uint64(i)*7919))
	clk := sim.NewClock(0)
	for {
		select {
		case <-s.stop:
			return
		case now := <-s.reclaimChs[i]:
			clk.AdvanceTo(now)
			s.reclaimBuffer(i, clk, rng)
			s.em.Collect()
		}
	}
}

// reclaimBuffer migrates the well-coupled (live) values of one PWB into
// Value Storage (§5.2): scan the ring, keep only records whose HSIT
// forward pointer still refers back to them, write them chunk by chunk to
// an idle Value Storage, republish their pointers, and release the ring
// space after epoch grace.
//
// Release protocol: each buffer has exactly one scan owner (this
// function, reached either from the buffer's reclaimLoop goroutine or —
// under SyncVSWrites — from the owning application thread, never both).
// Epoch grace turns a completed pass into a Grant; the owner folds
// pending grants into the tail only here, between passes. The tail is
// therefore frozen while a scan is in flight, which closes two seed
// races: a foreground append can never recycle (and physically alias)
// bytes the scan is still reading, and PublishIf can never install a
// pointer that a newer append at the same wrapped DevOff now owns.
func (s *Store) reclaimBuffer(threadID int, clk *sim.Clock, rng *sim.RNG) {
	b := s.pwbs[threadID]
	b.ApplyGrants()
	head, tail := b.Head(), b.Tail()
	// Exclude the owner's append-to-publish window: a record whose HSIT
	// forward pointer has not landed yet looks ill-coupled, and treating
	// it as garbage would release a slot that the imminent publish will
	// reference forever. (Head must be read before the floor — see
	// pwb.UnpublishedFloor.)
	if f := b.UnpublishedFloor(); f < head {
		head = f
	}
	if head <= tail {
		return
	}
	s.stats.reclaims.Add(1)
	// Adaptive-watermark feedback baseline: putStalls at pass start tells
	// whether a put hit a full ring while this pass ran.
	stalls0 := s.stats.putStalls.Load()

	type liveRec struct {
		idx    uint64
		devOff uint64
		val    []byte
	}
	var live []liveRec
	// The ring scan is one large sequential NVM read: charge it in bulk
	// (per-record latency would overstate a streaming read by ~300x).
	s.nvmDev.ChargeRead(clk, int(head-tail))
	err := b.Scan(nil, tail, head, func(r pwb.Record) bool {
		p := s.table.Load(clk, r.HSITIdx)
		// Well-coupled check (§5.2): forward and backward pointers refer
		// to each other. Ill-coupled records are superseded garbage and
		// are skipped — only the latest version reaches the SSD, which
		// is where the write-traffic reduction comes from.
		if p.Media == hsit.PWB && p.Off == r.DevOff && p.Len == len(r.Value) {
			live = append(live, liveRec{idx: r.HSITIdx, devOff: r.DevOff, val: r.Value})
		}
		return true
	})
	if err != nil {
		// A header failed to parse. With the frozen-tail protocol this
		// should be unreachable; if it ever fires, abort the pass without
		// migrating or releasing anything — the range is intact on NVM
		// and a later pass simply re-scans it.
		s.stats.scanTornRecords.Add(1)
		return
	}

	// migrate writes recs into Value Storage and republishes their HSIT
	// pointers. target >= 0 pins the destination (tier steering); -1
	// keeps the paper's idle-device selection. When the target is out of
	// chunks the records spill to any device with space (counted as
	// fallback bytes — availability beats placement). Returns false when
	// no device has space: the remaining records stay in the PWB (tail
	// does not advance; a later reclaim retries once GC has produced
	// space). Already-published records are then simply ill-coupled ring
	// garbage, so a partial pass aborting is safe.
	migrate := func(recs []liveRec, target int, hot bool) bool {
		i := 0
		for i < len(recs) {
			var devIdx int
			var st *valuestore.Store
			steered := target >= 0
			if steered {
				devIdx, st = target, s.vsm.Stores[target]
			} else {
				devIdx, st = s.vsm.PickIdle(rng)
			}
			w, err := st.NewWriterReserve(s.gcReserve(st))
			if err != nil {
				// This store is out of chunks; kick its GC and try any other.
				s.kickGC(devIdx, clk.Now())
				w, devIdx, st = s.anyWriter(clk.Now())
				if w == nil {
					return false
				}
				steered = steered && devIdx == target
			}
			var batch []liveRec
			for i < len(recs) && w.Room(len(recs[i].val)) {
				w.Add(recs[i].idx, recs[i].val)
				batch = append(batch, recs[i])
				i++
			}
			done, entries := w.Commit(clk.Now())
			clk.AdvanceTo(done)
			for j, e := range entries {
				if s.tiered() {
					switch {
					case hot && steered:
						s.stats.tierHotSteered.Add(int64(e.ValueLen))
					case hot:
						s.stats.tierHotFallback.Add(int64(e.ValueLen))
					case steered:
						s.stats.tierColdSteered.Add(int64(e.ValueLen))
					default:
						s.stats.tierColdFallback.Add(int64(e.ValueLen))
					}
				}
				old := hsit.Pointer{Media: hsit.PWB, Len: e.ValueLen, Off: batch[j].devOff}
				newp := hsit.Pointer{Media: hsit.VS, Len: e.ValueLen, Off: valuestore.GlobalOff(devIdx, e.LocalOff)}
				if s.table.PublishIf(clk, e.HSITIdx, old, newp) {
					s.stats.pwbLiveMigrated.Add(1)
					// First landing of this user value on an SSD: credit
					// the per-device WAF denominator.
					st.AttributeUserBytes(int64(e.ValueLen))
				} else {
					// A foreground write superseded this value mid-flight.
					s.stats.reclaimPublishLost.Add(1)
					st.Invalidate(e.LocalOff, e.ValueLen)
				}
			}
			s.maybeKickGC(devIdx, st, clk.Now())
		}
		return true
	}

	if s.tiered() {
		// Classify at reclaim time (§4.3 meets PrismDB's placement rule):
		// hot values to the fastest device — migrated first, so they hit
		// the SSD soonest — cold values to the capacity device.
		var hot, cold []liveRec
		for _, r := range live {
			if s.hotIdx(r.idx) {
				hot = append(hot, r)
			} else {
				cold = append(cold, r)
			}
		}
		if !migrate(hot, s.tierFast, true) || !migrate(cold, s.tierCap, false) {
			return
		}
	} else if !migrate(live, -1, false) {
		return
	}
	// Every live value has been migrated; the whole scanned range is
	// garbage. After epoch grace (no reader can still be inside, §5.4)
	// the space becomes a grant, which the next pass folds into the tail.
	s.em.Retire(func() { b.Grant(head) })
	// Close the controller loop (§4.7): a background pass that completed
	// without any put hitting a full ring means reclamation is keeping
	// pace — relax the trigger upward to recover batching efficiency. A
	// stall during the pass already decayed the trigger in
	// writeAndPublish, so don't also raise it here. Sync-mode passes run
	// inline on the putting thread (the put *is* the stall) and their
	// decay happens at the trigger crossing in maybeKickReclaim, so they
	// never adapt up.
	if !s.opt.SyncVSWrites && s.stats.putStalls.Load() == stalls0 {
		s.adaptWatermark(true)
	}
	for {
		cur := s.reclaimStall[threadID].Load()
		if clk.Now() <= cur || s.reclaimStall[threadID].CompareAndSwap(cur, clk.Now()) {
			break
		}
	}
}

// gcReserve is the number of free chunks held back for GC to compact
// into (log-structured reserve).
func (s *Store) gcReserve(st *valuestore.Store) int {
	r := st.Chunks() / 16
	if r < 2 {
		r = 2
	}
	return r
}

// anyWriter tries every store for a free chunk (respecting GC reserve).
func (s *Store) anyWriter(now int64) (*valuestore.Writer, int, *valuestore.Store) {
	for di, st := range s.vsm.Stores {
		if w, err := st.NewWriterReserve(s.gcReserve(st)); err == nil {
			return w, di, st
		}
		s.kickGC(di, now)
	}
	return nil, 0, nil
}

func (s *Store) maybeKickGC(devIdx int, st *valuestore.Store, now int64) {
	if float64(st.FreeChunks())/float64(st.Chunks()) < s.opt.GCFreeFraction {
		s.kickGC(devIdx, now)
	}
}

func (s *Store) kickGC(devIdx int, now int64) {
	select {
	case s.gcCh <- gcReq{store: devIdx, now: now}:
	default:
	}
}

// gcLoop runs Value Storage garbage collection (§5.2): when a store's
// free-chunk fraction drops below the threshold, greedily collect the
// chunks with the fewest live values. Each Value Storage is collected
// independently.
func (s *Store) gcLoop() {
	defer s.bg.Done()
	for {
		select {
		case <-s.stop:
			return
		case r := <-s.gcCh:
			s.gcClk.AdvanceTo(r.now)
			st := s.vsm.Stores[r.store]
			for float64(st.FreeChunks())/float64(st.Chunks()) < s.opt.GCFreeFraction {
				before := st.FreeChunks()
				freed, done := st.GC(s.gcClk.Now(), 4, func(idx, oldOff, newOff uint64, vlen int) bool {
					return s.table.PublishIf(s.gcClk,
						idx,
						hsit.Pointer{Media: hsit.VS, Len: vlen, Off: valuestore.GlobalOff(r.store, oldOff)},
						hsit.Pointer{Media: hsit.VS, Len: vlen, Off: valuestore.GlobalOff(r.store, newOff)})
				})
				s.gcClk.AdvanceTo(done)
				s.em.Collect()
				// Stop on zero NET progress: freed counts victims, but a
				// pass also consumes output chunks.
				if freed == 0 || st.FreeChunks() <= before {
					break
				}
			}
		}
	}
}

// onScanEvict is the SVC rewrite hook (§4.4 steps 5-6): when a chained
// (scanned) entry is evicted, the resident chain is sorted by key and
// written into a single fresh Value Storage chunk, restoring spatial
// locality for the key range. Runs on the cache manager goroutine.
func (s *Store) onScanEvict(chain svc.EvictedChain) {
	s.svcMu.Lock()
	defer s.svcMu.Unlock()
	clk := s.svcClk

	entries := chain.Entries
	sort.Slice(entries, func(a, b int) bool {
		return string(entries[a].Key) < string(entries[b].Key)
	})

	type staged struct {
		e   *svc.Entry
		old hsit.Pointer
	}
	var todo []staged
	for _, e := range entries {
		// Only values still resident in Value Storage with unchanged
		// content participate; anything updated meanwhile is skipped.
		// Currency is judged by the publish version under which the
		// cached bytes were admitted — a length/media check alone would
		// stage stale bytes when a same-length overwrite reused the
		// offset (chunks are recycled without epoch grace).
		if s.table.Version(e.HSITIdx) != e.Ver {
			continue
		}
		p := s.table.Load(clk, e.HSITIdx)
		if p.Media == hsit.VS && p.Len == len(e.Value) {
			todo = append(todo, staged{e: e, old: p})
		}
	}
	if len(todo) < 2 {
		return
	}
	// Skip ranges that already sit contiguously on the SSD: rewriting
	// them gains no locality, and the relocation churn would invalidate
	// in-flight scans of the same range. (The paper rewrites to *create*
	// spatial locality; once created, the range stays put.)
	adjacent := 0
	for i := 1; i < len(todo); i++ {
		prev, cur := todo[i-1].old, todo[i].old
		gap := int64(cur.Off) - int64(prev.Off) - int64(valuestore.RecordSize(prev.Len))
		if gap >= 0 && gap <= mergeGap {
			adjacent++
		}
	}
	if adjacent*10 >= (len(todo)-1)*7 {
		return
	}
	// Pace reorganization: at simulation scale the SVC cycles its whole
	// capacity in milliseconds, so unthrottled eviction-time rewrites
	// would relocate hot ranges out from under the scans they are meant
	// to help. One rewrite per couple of virtual milliseconds matches the
	// paper's effective rate (its 20 GB cache evicts a range rarely).
	if clk.Now()-s.lastRewrite < 2_000_000 {
		return
	}
	s.lastRewrite = clk.Now()

	rng := sim.NewRNG(uint64(clk.Now()) | 1)
	devIdx, st := s.vsm.PickIdle(rng)
	w, err := st.NewWriterReserve(s.gcReserve(st))
	if err != nil {
		return // no space: skip the rewrite, correctness unaffected
	}
	var batch []staged
	commit := func() {
		done, committed := w.Commit(clk.Now())
		clk.AdvanceTo(done)
		for j, ce := range committed {
			newp := hsit.Pointer{Media: hsit.VS, Len: ce.ValueLen, Off: valuestore.GlobalOff(devIdx, ce.LocalOff)}
			// Version-conditioned publish: the old offset may have been
			// recycled since staging, so a pointer-word compare could
			// alias (ABA) and clobber a newer value. The version cannot.
			if s.table.PublishIfVersion(clk, ce.HSITIdx, batch[j].e.Ver, newp) {
				s.vsm.Invalidate(batch[j].old.Off, batch[j].old.Len)
			} else {
				st.Invalidate(ce.LocalOff, ce.ValueLen)
			}
		}
		batch = nil
	}
	for _, t := range todo {
		if !w.Room(len(t.e.Value)) {
			commit()
			w, err = st.NewWriterReserve(s.gcReserve(st))
			if err != nil {
				s.stats.scanRewrites.Add(1)
				return
			}
		}
		w.Add(t.e.HSITIdx, t.e.Value)
		batch = append(batch, t)
	}
	commit()
	s.stats.scanRewrites.Add(1)
	s.maybeKickGC(devIdx, st, clk.Now())
}
