package core

import (
	"errors"
	"fmt"
	"runtime"

	"repro/internal/hsit"
)

// Batch operations: PutBatch and MultiGet amortize the fixed per-op toll
// of the public API — epoch enter/exit, publish-pending bookkeeping, and
// (for reads) Value Storage IO — across many keys. The device-level
// batching of §5.3 (thread combining) already merges concurrent IO;
// these entry points remove the per-key software overhead above it.

// PutBatch applies kvs in order, entering the epoch once and clearing
// the PWB publish-pending window once per pass instead of once per key.
//
// Durability contract: PutBatch is NOT atomic. Entries are appended and
// published in slice order, and each entry's HSIT publish is persisted
// before the next entry is written, so a crash (or concurrent Close)
// leaves a durable PREFIX of the batch: if entry i survived recovery,
// entries 0..i-1 did too. On error the prefix applied so far remains;
// a nil return means every entry is durable. Duplicate keys are applied
// in order (the later entry wins), never coalesced — skipping an earlier
// duplicate would break the prefix guarantee.
func (t *Thread) PutBatch(kvs []KV) error {
	s := t.s
	if s.closed.Load() {
		return ErrClosed
	}
	if len(kvs) == 0 {
		return nil
	}
	var total int64
	for i := range kvs {
		if len(kvs[i].Value) > hsit.MaxValueLen {
			return fmt.Errorf("prism: batch entry %d: value of %d bytes exceeds max %d",
				i, len(kvs[i].Value), hsit.MaxValueLen)
		}
		total += int64(len(kvs[i].Value))
	}
	s.stats.puts.Add(int64(len(kvs)))
	s.stats.batchPuts.Add(1)
	s.stats.userBytesWritten.Add(total)
	s.batchSizePut.Record(int64(len(kvs)))
	t0 := t.Clk.Now()
	defer func() { s.latPutBatch.Record(t.Clk.Now() - t0) }()

	done := 0
	for attempt := 0; attempt < 1_000_000; attempt++ {
		// execMu: the PWB ring and its publish-pending window are shared
		// with the async admission loop (see Thread.async).
		t.async.execMu.Lock()
		n, err := t.putBatchEpoch(kvs[done:])
		t.async.execMu.Unlock()
		done += n
		if err != errRetryPut {
			if done == len(kvs) && err == nil {
				t.maybeKickReclaim()
				return nil
			}
			return err
		}
		// Stalled on a full PWB mid-batch: the pass's publish window is
		// closed (deferred Published), so reclamation can make progress.
		// Help epochs along and wait, in virtual time, for the latest
		// reclamation pass — exactly the single-op Put stall protocol.
		s.em.Collect()
		runtime.Gosched()
		t.Clk.AdvanceTo(s.reclaimStall[t.id].Load())
	}
	return errors.New("prism: PWB reclamation stalled")
}

// putBatchEpoch applies as many entries as one epoch-scoped pass can,
// returning how many were applied. The PWB publish-pending floor is set
// by the pass's first append and lifted once on the way out (every HSIT
// publish in between has already persisted, so the single clear is safe
// for the whole window).
func (t *Thread) putBatchEpoch(kvs []KV) (applied int, err error) {
	s := t.s
	t.part.Enter()
	defer t.part.Exit()
	// One Published per pass — including the error paths, where records
	// already published this pass must become visible to the reclaimer.
	defer t.buf.Published()
	for i := range kvs {
		if s.closed.Load() {
			return i, ErrClosed
		}
		if err := t.putStep(kvs[i].Key, kvs[i].Value, false); err != nil {
			return i, err
		}
		if h := s.batchStepHook; h != nil {
			h(i)
		}
	}
	return len(kvs), nil
}

// MultiGet resolves keys in one epoch-scoped pass and returns one value
// per key, with nil marking a missing key (present-but-empty values are
// non-nil). Values resident only in Value Storage are read as merged,
// sorted extents — one coalesced IO per extent through the §5.3 batching
// scheme — instead of one IO per key.
func (t *Thread) MultiGet(keys [][]byte) ([][]byte, error) {
	return t.MultiGetInto(keys, make([][]byte, 0, len(keys)))
}

// MultiGetInto is MultiGet appending into vals (one entry per key, nil =
// missing), returning the extended slice. Callers serving hot paths keep
// a scratch slice and pass vals[:0] to avoid the per-batch allocation.
func (t *Thread) MultiGetInto(keys [][]byte, vals [][]byte) ([][]byte, error) {
	s := t.s
	if s.closed.Load() {
		return vals, ErrClosed
	}
	base := len(vals)
	for range keys {
		vals = append(vals, nil)
	}
	if len(keys) == 0 {
		return vals, nil
	}
	s.stats.gets.Add(int64(len(keys)))
	s.stats.batchGets.Add(1)
	s.batchSizeGet.Record(int64(len(keys)))
	t0 := t.Clk.Now()
	defer func() { s.latMultiGet.Record(t.Clk.Now() - t0) }()
	t.part.Enter()
	defer t.part.Exit()

	if cap(t.mgItems) < len(keys) {
		t.mgItems = make([]scanItem, len(keys))
	}
	items := t.mgItems[:len(keys)]
	t.mgPending = t.mgPending[:0]

	// Fast paths per key (SVC, then PWB), collecting Value Storage
	// residents for the merged batch read — the Scan resolution order.
	for i, k := range keys {
		items[i] = scanItem{key: k}
		idx, ok := s.index.Lookup(t.Clk, k)
		if !ok {
			continue
		}
		items[i].idx = idx
		if v, ok := t.svcRead(idx); ok {
			items[i].val = cloneBytes(v)
			continue
		}
		ver := s.table.Version(idx)
		p := s.table.Load(t.Clk, idx)
		switch p.Media {
		case hsit.PWB:
			v := s.pwbOf(p.Off).ReadValue(t.Clk, p.Off, p.Len)
			if s.table.Load(nil, idx) == p {
				s.stats.pwbHits.Add(1)
				items[i].val = v
				continue
			}
			items[i].val, _, _ = t.getOnce(idx, k)
		case hsit.VS:
			items[i].p = p
			items[i].ver = ver
			t.mgPending = append(t.mgPending, &items[i])
		default:
			// Deleted between lookup and load: stays missing.
		}
	}
	t.readVSBatch(t.mgPending, false)

	for i := range items {
		vals[base+i] = items[i].val
	}
	return vals, nil
}
