package core

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"repro/internal/sim"
)

// TestPutBatchReclaimStress is TestPWBReclaimPublishStress's batch
// sibling and the -race gate for the batched publish window: PutBatch
// holds the PWB's unpublished floor across several appends, so on tiny
// 4 KiB rings every batch pins a window the background reclaimer must
// not scan past. The failure modes it guards are the batch variants of
// the PR 3 seed race:
//
//   - a reclaimer scanning into the unpublished tail of a half-appended
//     batch (torn read or DATA RACE between Append and Scan);
//   - a floor that a mid-batch append re-raised (the conditional mark in
//     pwb.Append), letting the reclaimer release the batch's first
//     records before their forward pointers landed — a lost update the
//     exact-value self-reads below catch;
//   - a batch retry (ring full mid-batch) republishing a prefix twice.
//
// Each thread owns a disjoint key range and writes it only in batches;
// after PutBatch returns, a MultiGet over its own range must see exactly
// the last committed sequence for every key. Foreign MultiGets add
// reader pressure on rings being appended and reclaimed concurrently.
func TestPutBatchReclaimStress(t *testing.T) {
	t.Run("svc", func(t *testing.T) { runPutBatchReclaimStress(t, false) })
	t.Run("nosvc", func(t *testing.T) { runPutBatchReclaimStress(t, true) })
}

func runPutBatchReclaimStress(t *testing.T, disableSVC bool) {
	const (
		threads         = 4
		rounds          = 5
		keysPerThread   = 12
		batchesPerRound = 80
	)
	s := small(t, func(o *Options) {
		o.NumThreads = threads
		o.PWBBytesPerThread = 4096 // minimum: a batch spans a large ring fraction
		o.ReclaimWatermark = 0.2
		o.DisableSVC = disableSVC
		o.SVCBytes = 8 << 10 // tiny: constant admission/eviction churn
	})

	lastSeq := make([][]int, threads)
	for ti := range lastSeq {
		lastSeq[ti] = make([]int, keysPerThread)
		for k := range lastSeq[ti] {
			lastSeq[ti][k] = -1
		}
	}
	keyOf := func(ti, k int) []byte { return key(ti*keysPerThread + k) }

	seq := 0
	for round := 0; round < rounds; round++ {
		var wg sync.WaitGroup
		errs := make(chan error, threads)
		for ti := 0; ti < threads; ti++ {
			wg.Add(1)
			go func(ti, base int) {
				defer wg.Done()
				th := s.Thread(ti)
				rng := sim.NewRNG(uint64(1+round*threads+ti) * 0x9e3779b9)
				selfKeys := make([][]byte, keysPerThread)
				for k := range selfKeys {
					selfKeys[k] = keyOf(ti, k)
				}
				for j := 0; j < batchesPerRound; j++ {
					// 2-6 keys per batch, duplicates allowed (later wins).
					n := 2 + rng.Intn(5)
					kvs := make([]KV, n)
					picked := make([]int, n)
					for b := 0; b < n; b++ {
						k := rng.Intn(keysPerThread)
						picked[b] = k
						kvs[b] = KV{Key: keyOf(ti, k), Value: stressVal(ti, k, base+j*8+b)}
					}
					if err := th.PutBatch(kvs); err != nil {
						errs <- fmt.Errorf("thread %d batch: %w", ti, err)
						return
					}
					for b, k := range picked {
						lastSeq[ti][k] = base + j*8 + b
					}
					switch rng.Uint64() % 4 {
					case 0:
						// Self MultiGet over the whole owned range: every
						// key must hold exactly its last committed write.
						vals, err := th.MultiGet(selfKeys)
						if err != nil {
							errs <- fmt.Errorf("thread %d self-multiget: %w", ti, err)
							return
						}
						for k, got := range vals {
							sq := lastSeq[ti][k]
							if sq < 0 {
								continue
							}
							if want := stressVal(ti, k, sq); !bytes.Equal(got, want) {
								errs <- fmt.Errorf("thread %d key %d: lost batched update, got %.20q want %.20q",
									ti, k, got, want)
								return
							}
						}
					case 1:
						// Foreign MultiGet: reader pressure on a ring being
						// concurrently batch-appended and reclaimed.
						fi := rng.Intn(threads)
						fkeys := make([][]byte, 4)
						for b := range fkeys {
							fkeys[b] = keyOf(fi, rng.Intn(keysPerThread))
						}
						if _, err := th.MultiGet(fkeys); err != nil {
							errs <- fmt.Errorf("thread %d foreign-multiget: %w", ti, err)
							return
						}
					}
				}
			}(ti, seq)
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			t.Fatal(err)
		}
		seq += batchesPerRound * 8

		// Round barrier: every key must hold its owner's last batched
		// write, observed from a different thread via MultiGet.
		th := s.Thread(0)
		for ti := 0; ti < threads; ti++ {
			keys := make([][]byte, keysPerThread)
			for k := range keys {
				keys[k] = keyOf(ti, k)
			}
			vals, err := th.MultiGet(keys)
			if err != nil {
				t.Fatalf("round %d thread %d: %v", round, ti, err)
			}
			for k, got := range vals {
				sq := lastSeq[ti][k]
				if sq < 0 {
					continue
				}
				if want := stressVal(ti, k, sq); !bytes.Equal(got, want) {
					t.Fatalf("round %d thread %d key %d: lost batched update, got %.20q want %.20q",
						round, ti, k, got, want)
				}
			}
		}
	}

	// Full quiescence, then the offline coupling checker: an ill-coupled
	// record left by a batch-window race that reads happened to miss
	// shows up here.
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if rep := s.CheckInvariants(); !rep.OK() {
		t.Fatalf("invariants violated after batch stress: %v", rep.Problems)
	}
}
