package core

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/hsit"
)

func TestPutBatchBasics(t *testing.T) {
	s := small(t, nil)
	th := s.Thread(0)

	// Empty batch: a no-op, not an error, and not a counted batch.
	if err := th.PutBatch(nil); err != nil {
		t.Fatalf("empty batch: %v", err)
	}
	if got := s.Stats().BatchPuts; got != 0 {
		t.Fatalf("empty batch counted: %d", got)
	}

	var kvs []KV
	for i := 0; i < 50; i++ {
		kvs = append(kvs, KV{Key: key(i), Value: value(i)})
	}
	if err := th.PutBatch(kvs); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		got, err := th.Get(key(i))
		if err != nil || !bytes.Equal(got, value(i)) {
			t.Fatalf("key %d after batch: %q, %v", i, got, err)
		}
	}
	st := s.Stats()
	if st.BatchPuts != 1 || st.Puts != 50 {
		t.Fatalf("BatchPuts=%d Puts=%d, want 1/50", st.BatchPuts, st.Puts)
	}
}

// Duplicate keys in one batch apply in order — the last occurrence wins,
// exactly as the same sequence of single Puts would.
func TestPutBatchDuplicateKeysLastWins(t *testing.T) {
	s := small(t, nil)
	th := s.Thread(0)
	err := th.PutBatch([]KV{
		{Key: []byte("dup"), Value: []byte("first")},
		{Key: []byte("other"), Value: []byte("x")},
		{Key: []byte("dup"), Value: []byte("second")},
		{Key: []byte("dup"), Value: []byte("third")},
	})
	if err != nil {
		t.Fatal(err)
	}
	got, err := th.Get([]byte("dup"))
	if err != nil || string(got) != "third" {
		t.Fatalf("dup = %q, %v", got, err)
	}
}

// An oversized value is rejected up front, before any entry applies:
// validation runs over the whole batch first, so a bad entry cannot
// leave a partial prefix behind.
func TestPutBatchRejectsOversizedValueUpFront(t *testing.T) {
	s := small(t, nil)
	th := s.Thread(0)
	err := th.PutBatch([]KV{
		{Key: []byte("ok0"), Value: []byte("v")},
		{Key: []byte("big"), Value: make([]byte, hsit.MaxValueLen+1)},
		{Key: []byte("ok2"), Value: []byte("v")},
	})
	if err == nil || !strings.Contains(err.Error(), "entry 1") {
		t.Fatalf("oversized entry error: %v", err)
	}
	if _, gerr := th.Get([]byte("ok0")); gerr != ErrNotFound {
		t.Fatalf("prefix applied despite up-front validation failure: %v", gerr)
	}
}

func TestMultiGetSemantics(t *testing.T) {
	s := small(t, nil)
	th := s.Thread(0)
	if err := th.Put([]byte("a"), []byte("va")); err != nil {
		t.Fatal(err)
	}
	if err := th.Put([]byte("empty"), nil); err != nil {
		t.Fatal(err)
	}
	vals, err := th.MultiGet([][]byte{[]byte("a"), []byte("missing"), []byte("empty"), []byte("a")})
	if err != nil {
		t.Fatal(err)
	}
	if len(vals) != 4 {
		t.Fatalf("len = %d", len(vals))
	}
	if string(vals[0]) != "va" || string(vals[3]) != "va" {
		t.Fatalf("vals = %q", vals)
	}
	// Missing is nil; present-but-empty is non-nil. This is the contract
	// the RESP server's nil-bulk vs empty-bulk replies ride on.
	if vals[1] != nil {
		t.Fatalf("missing key non-nil: %q", vals[1])
	}
	if vals[2] == nil || len(vals[2]) != 0 {
		t.Fatalf("empty value: %#v", vals[2])
	}

	// Empty key set: no batch counted.
	before := s.Stats().BatchGets
	if vals, err := th.MultiGet(nil); err != nil || len(vals) != 0 {
		t.Fatalf("empty MultiGet: %q, %v", vals, err)
	}
	if got := s.Stats().BatchGets; got != before {
		t.Fatalf("empty MultiGet counted: %d -> %d", before, got)
	}

	// MultiGetInto appends after existing entries and reuses capacity.
	scratch := make([][]byte, 0, 8)
	scratch = append(scratch, []byte("sentinel"))
	out, err := th.MultiGetInto([][]byte{[]byte("a")}, scratch)
	if err != nil || len(out) != 2 || string(out[0]) != "sentinel" || string(out[1]) != "va" {
		t.Fatalf("MultiGetInto: %q, %v", out, err)
	}
}

// MultiGet must read through every residence a value can have: fresh in
// the PWB, cached in the SVC, and migrated to Value Storage.
func TestMultiGetAcrossMedia(t *testing.T) {
	s := small(t, func(o *Options) {
		o.PWBBytesPerThread = 4096 // tiny ring: early keys migrate to VS
	})
	th := s.Thread(0)
	// 64 puts through a 4 KiB ring force most early records through
	// reclamation into Value Storage before the reads run.
	const n = 64
	for i := 0; i < n; i++ {
		if err := th.Put(key(i), value(i)); err != nil {
			t.Fatal(err)
		}
	}
	keys := make([][]byte, n)
	for i := range keys {
		keys[i] = key(i)
	}
	vals, err := th.MultiGet(keys)
	if err != nil {
		t.Fatal(err)
	}
	for i := range keys {
		if !bytes.Equal(vals[i], value(i)) {
			t.Fatalf("key %d = %.20q, want %.20q", i, vals[i], value(i))
		}
	}
	// Second pass hits whatever the first pass admitted to the SVC.
	vals, err = th.MultiGet(keys)
	if err != nil {
		t.Fatal(err)
	}
	for i := range keys {
		if !bytes.Equal(vals[i], value(i)) {
			t.Fatalf("cached key %d = %.20q", i, vals[i])
		}
	}
}

func TestBatchOpsAfterClose(t *testing.T) {
	s := small(t, nil)
	th := s.Thread(0)
	s.Close()
	if err := th.PutBatch([]KV{{Key: []byte("k"), Value: []byte("v")}}); err != ErrClosed {
		t.Fatalf("PutBatch after close: %v", err)
	}
	if _, err := th.MultiGet([][]byte{[]byte("k")}); err != ErrClosed {
		t.Fatalf("MultiGet after close: %v", err)
	}
}

// TestBatchAmortizesEpochEnters is the ISSUE acceptance check in unit
// form: writing N keys through size-32 batches must enter the epoch at
// least 8x less often than N single Puts (it is ~32x absent retries).
func TestBatchAmortizesEpochEnters(t *testing.T) {
	s := small(t, nil)
	th := s.Thread(0)
	const n = 128

	e0 := s.Epochs().Enters()
	for i := 0; i < n; i++ {
		if err := th.Put(key(i), value(i)); err != nil {
			t.Fatal(err)
		}
	}
	single := s.Epochs().Enters() - e0

	e1 := s.Epochs().Enters()
	kvs := make([]KV, 0, 32)
	for i := 0; i < n; i += 32 {
		kvs = kvs[:0]
		for j := i; j < i+32 && j < n; j++ {
			kvs = append(kvs, KV{Key: key(j), Value: value(j + 1)})
		}
		if err := th.PutBatch(kvs); err != nil {
			t.Fatal(err)
		}
	}
	batched := s.Epochs().Enters() - e1

	if single < n {
		t.Fatalf("single-put enters = %d, want >= %d", single, n)
	}
	if batched*8 > single {
		t.Fatalf("batched enters = %d vs single %d: less than 8x amortization", batched, single)
	}
	// And the writes themselves landed.
	for i := 0; i < n; i++ {
		got, err := th.Get(key(i))
		if err != nil || !bytes.Equal(got, value(i+1)) {
			t.Fatalf("key %d after batched overwrite: %q, %v", i, got, err)
		}
	}

	// The obs counter mirrors the manager's sum.
	if v, ok := s.Metrics().Value("epoch.enters"); !ok || int64(v) < single+batched {
		t.Fatalf("epoch.enters metric = %v ok=%v, want >= %d", v, ok, single+batched)
	}
	// Batch histograms recorded the batch sizes.
	if m, ok := s.Metrics().Get("core.batch_size", map[string]string{"op": "put"}); !ok || m.Hist == nil || m.Hist.Count != 4 {
		t.Fatalf("core.batch_size{op=put} = %+v ok=%v, want 4 batches", m, ok)
	}
}

// Latency histograms for the batch entry points must populate.
func TestBatchLatencyMetrics(t *testing.T) {
	s := small(t, nil)
	th := s.Thread(0)
	if err := th.PutBatch([]KV{{Key: []byte("k"), Value: []byte("v")}}); err != nil {
		t.Fatal(err)
	}
	if _, err := th.MultiGet([][]byte{[]byte("k")}); err != nil {
		t.Fatal(err)
	}
	for _, lbl := range []string{"put_batch", "multiget"} {
		if m, ok := s.Metrics().Get("core.op_latency", map[string]string{"op": lbl}); !ok || m.Hist == nil || m.Hist.Count == 0 {
			t.Fatalf("core.op_latency{op=%s} = %+v ok=%v", lbl, m, ok)
		}
	}
	if m, ok := s.Metrics().Get("core.batch_ops", map[string]string{"op": "get"}); !ok || m.Value != 1 {
		t.Fatalf("core.batch_ops{op=get} = %+v ok=%v", m, ok)
	}
}

// TestStaleAdmissionRejectedOnRead pins the read-side currency check
// down deterministically. An SVC admission races with a writer like
// this: the admitter reads value v1 from Value Storage, the writer
// supersedes it with v2 (its invalidateOld sees HSIT word 1 == 0 —
// nothing to retract), and only then does the admitter CAS its handle
// in. The admitter's own TOCTOU guard retracts the entry, but between
// the CAS and the retraction the stale handle is resolvable — a reader
// in that window must reject the hit because the entry's admission
// version no longer matches the entry's publish version. Here the
// window is frozen by planting the published-but-stale entry directly.
func TestStaleAdmissionRejectedOnRead(t *testing.T) {
	s := small(t, nil)
	th := s.Thread(0)
	if err := th.Put([]byte("k"), []byte("fresh")); err != nil {
		t.Fatal(err)
	}
	idx, ok := s.index.Lookup(nil, []byte("k"))
	if !ok {
		t.Fatal("lookup failed")
	}
	// An odd version token can never equal the entry's resting publish
	// version, so the planted entry is permanently stale.
	staleVer := s.table.Version(idx) + 101
	e := s.cache.Admit(idx, staleVer, []byte("k"), []byte("stale"))
	if !s.table.CasSVC(nil, idx, 0, e.Handle()) {
		t.Fatal("word 1 unexpectedly occupied")
	}
	s.cache.Published(e)

	got, err := th.Get([]byte("k"))
	if err != nil || string(got) != "fresh" {
		t.Fatalf("Get through stale cache entry = %q, %v", got, err)
	}
	// The rejected entry must have been retracted, not just skipped.
	if h := s.table.LoadSVC(nil, idx); h != 0 {
		t.Fatalf("stale handle still published: %d", h)
	}

	// Same via the MultiGet fast path: re-plant and batch-read.
	e = s.cache.Admit(idx, staleVer, []byte("k"), []byte("stale"))
	if !s.table.CasSVC(nil, idx, 0, e.Handle()) {
		t.Fatal("word 1 unexpectedly occupied after retraction")
	}
	s.cache.Published(e)
	vals, err := th.MultiGet([][]byte{[]byte("k")})
	if err != nil || string(vals[0]) != "fresh" {
		t.Fatalf("MultiGet through stale cache entry = %q, %v", vals, err)
	}
	if h := s.table.LoadSVC(nil, idx); h != 0 {
		t.Fatalf("stale handle still published after MultiGet: %d", h)
	}
}
