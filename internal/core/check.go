package core

import (
	"fmt"

	"repro/internal/hsit"
	"repro/internal/ssd"
	"repro/internal/valuestore"
)

// CheckReport is the result of a CheckInvariants pass.
type CheckReport struct {
	LiveKeys        int
	PWBResident     int
	VSResident      int
	SVCPublished    int
	Problems        []string
	ProblemsOmitted int
}

func (r *CheckReport) problem(format string, args ...any) {
	if len(r.Problems) >= 32 {
		r.ProblemsOmitted++
		return
	}
	r.Problems = append(r.Problems, fmt.Sprintf(format, args...))
}

// OK reports whether no invariant violations were found.
func (r *CheckReport) OK() bool { return len(r.Problems) == 0 && r.ProblemsOmitted == 0 }

// CheckInvariants is the offline consistency checker (an fsck for the
// cross-media structures). It walks the Persistent Key Index and
// verifies, for every live key, the §4.5/§5.5 invariants:
//
//   - the HSIT entry holds a durable forward pointer (PWB or VS);
//   - the pointed-to record is well-coupled: its backward pointer names
//     the same HSIT entry and its length matches the pointer;
//   - a VS-resident record's validity bit is set;
//   - a published SVC handle resolves to a cache entry for that key
//     whose content matches the durable value.
//
// The store must be quiescent (no concurrent operations); background
// threads may be running but the keyspace must not change. Reads are
// uncharged (nil clocks): checking is free of virtual time.
func (s *Store) CheckInvariants() CheckReport {
	var rep CheckReport
	s.index.Scan(nil, nil, 0, func(key []byte, idx uint64) bool {
		rep.LiveKeys++
		p := s.table.Load(nil, idx)
		switch p.Media {
		case hsit.None:
			rep.problem("key %q: HSIT[%d] has no durable value", key, idx)
		case hsit.PWB:
			rep.PWBResident++
			buf := s.pwbOf(p.Off)
			backptr, vlen, ok := buf.ReadHeader(nil, p.Off)
			if !ok {
				rep.problem("key %q: PWB record at %d unparseable", key, p.Off)
			} else if backptr != idx {
				rep.problem("key %q: ill-coupled PWB record (backptr %d != %d)", key, backptr, idx)
			} else if vlen != p.Len {
				rep.problem("key %q: PWB length mismatch (%d != %d)", key, vlen, p.Len)
			}
		case hsit.VS:
			rep.VSResident++
			devIdx, local := valuestore.SplitOff(p.Off)
			if devIdx >= len(s.vsm.Stores) {
				rep.problem("key %q: VS pointer names device %d of %d", key, devIdx, len(s.vsm.Stores))
				break
			}
			st := s.vsm.Stores[devIdx]
			if !st.IsValid(local) {
				rep.problem("key %q: VS record at %d has a clear validity bit", key, p.Off)
				break
			}
			req := st.ReadAt(local, p.Len)
			st.Dev.Submit(0, []ssd.Request{req})
			backptr, val, ok := valuestore.DecodeRecord(req.Data)
			if !ok {
				rep.problem("key %q: VS record at %d unparseable", key, p.Off)
			} else if backptr != idx {
				rep.problem("key %q: ill-coupled VS record (backptr %d != %d)", key, backptr, idx)
			} else if len(val) != p.Len {
				rep.problem("key %q: VS length mismatch (%d != %d)", key, len(val), p.Len)
			}
		}
		// SVC publication, if any, must resolve and agree with the
		// durable value.
		if s.cache != nil {
			if h := s.table.LoadSVC(nil, idx); h != 0 {
				rep.SVCPublished++
				// Ver may legitimately lag the publish version here (a GC
				// or scan rewrite relocates values without touching the
				// cache, and the read-side retraction only fires on
				// access), so only resolution and length are checked.
				if v, _, ok := s.cache.Lookup(idx, h); !ok {
					rep.problem("key %q: published SVC handle %d does not resolve", key, h)
				} else if len(v) != p.Len && !p.IsNil() {
					rep.problem("key %q: cached value length %d != durable %d", key, len(v), p.Len)
				}
			}
		}
		return true
	})
	if live := s.table.Live(); live < rep.LiveKeys {
		rep.problem("HSIT live count %d < reachable keys %d", live, rep.LiveKeys)
	}
	return rep
}
