package core

import (
	"strings"
	"testing"

	"repro/internal/hsit"
)

// settle stops all background work so the checker sees a stable store
// (CheckInvariants requires quiescence). Operations are done by the time
// tests call this; Close is idempotent with the test cleanup.
func settle(s *Store) {
	if s.cache != nil {
		s.cache.Sync()
	}
	s.em.Barrier()
	s.Close()
}

func TestCheckerCleanStore(t *testing.T) {
	s := small(t, nil)
	th := s.Thread(0)
	const n = 2500 // spans PWB and Value Storage residency
	for i := 0; i < n; i++ {
		if err := th.Put(key(i), value(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i += 5 {
		th.Get(key(i)) // populate the SVC
	}
	for i := 0; i < n; i += 9 {
		th.Delete(key(i))
	}
	settle(s)
	rep := s.CheckInvariants()
	if !rep.OK() {
		t.Fatalf("invariant violations on a clean store: %v", rep.Problems)
	}
	if rep.LiveKeys != s.Len() {
		t.Fatalf("checker visited %d keys, store has %d", rep.LiveKeys, s.Len())
	}
	if rep.VSResident == 0 {
		t.Fatalf("expected Value Storage residency: %+v", rep)
	}
	// PWBResident may legitimately be zero if background reclamation
	// drained the rings before the check — don't assert on it.
}

func TestCheckerAfterRecovery(t *testing.T) {
	s := small(t, nil)
	th := s.Thread(0)
	for i := 0; i < 2000; i++ {
		th.Put(key(i), value(i))
	}
	s.Crash()
	if _, err := s.Recover(); err != nil {
		t.Fatal(err)
	}
	settle(s)
	rep := s.CheckInvariants()
	if !rep.OK() {
		t.Fatalf("invariant violations after recovery: %v", rep.Problems)
	}
}

func TestCheckerDetectsIllCoupling(t *testing.T) {
	s := small(t, nil)
	th := s.Thread(0)
	th.Put(key(1), value(1))
	idx, ok := s.index.Lookup(nil, key(1))
	if !ok {
		t.Fatal("lookup failed")
	}
	// Corrupt the forward pointer: point it at a bogus PWB offset.
	s.table.Publish(nil, idx, hsit.Pointer{Media: hsit.PWB, Len: 3, Off: uint64(s.pwbBase + 4096)})
	rep := s.CheckInvariants()
	if rep.OK() {
		t.Fatal("checker missed a corrupted forward pointer")
	}
	found := false
	for _, p := range rep.Problems {
		if strings.Contains(p, "unparseable") || strings.Contains(p, "ill-coupled") || strings.Contains(p, "mismatch") {
			found = true
		}
	}
	if !found {
		t.Fatalf("unexpected problem set: %v", rep.Problems)
	}
}

func TestCheckerDetectsClearedValidityBit(t *testing.T) {
	s := small(t, nil)
	th := s.Thread(0)
	const n = 2000
	for i := 0; i < n; i++ {
		th.Put(key(i), value(i))
	}
	drain(t, s) // push everything to Value Storage
	// Clear one live record's validity bit behind the engine's back.
	idx, ok := s.index.Lookup(nil, key(77))
	if !ok {
		t.Fatal("lookup failed")
	}
	p := s.table.Load(nil, idx)
	if p.Media != hsit.VS {
		t.Skip("key 77 not VS-resident after drain")
	}
	s.vsm.Invalidate(p.Off, p.Len)
	rep := s.CheckInvariants()
	if rep.OK() {
		t.Fatal("checker missed a cleared validity bit")
	}
}

func TestCheckerProblemCap(t *testing.T) {
	var rep CheckReport
	for i := 0; i < 100; i++ {
		rep.problem("p%d", i)
	}
	if len(rep.Problems) != 32 || rep.ProblemsOmitted != 68 {
		t.Fatalf("cap broken: %d problems, %d omitted", len(rep.Problems), rep.ProblemsOmitted)
	}
	if rep.OK() {
		t.Fatal("OK with problems")
	}
}
