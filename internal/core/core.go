package core
