package core

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"

	"repro/internal/hsit"
	"repro/internal/sim"
)

// small returns a store sized so that reclamation, caching, and GC all
// trigger quickly in tests.
func small(t *testing.T, mutate func(*Options)) *Store {
	t.Helper()
	opt := Options{
		NumThreads:        2,
		PWBBytesPerThread: 64 << 10,
		HSITCapacity:      1 << 14,
		NumSSDs:           2,
		SSDBytes:          4 << 20,
		ChunkSize:         16 << 10,
		SVCBytes:          64 << 10,
	}
	if mutate != nil {
		mutate(&opt)
	}
	s, err := Open(opt)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func key(i int) []byte   { return []byte(fmt.Sprintf("user%08d", i)) }
func value(i int) []byte { return []byte(fmt.Sprintf("value-%08d-%032d", i, i)) }

func TestPutGetRoundTrip(t *testing.T) {
	s := small(t, nil)
	th := s.Thread(0)
	if err := th.Put(key(1), value(1)); err != nil {
		t.Fatal(err)
	}
	got, err := th.Get(key(1))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, value(1)) {
		t.Fatalf("Get = %q, want %q", got, value(1))
	}
	if _, err := th.Get([]byte("missing")); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing key err = %v", err)
	}
}

func TestUpdateReturnsLatest(t *testing.T) {
	s := small(t, nil)
	th := s.Thread(0)
	for v := 0; v < 10; v++ {
		if err := th.Put(key(1), []byte(fmt.Sprintf("v%d", v))); err != nil {
			t.Fatal(err)
		}
		got, err := th.Get(key(1))
		if err != nil || string(got) != fmt.Sprintf("v%d", v) {
			t.Fatalf("after update %d: %q, %v", v, got, err)
		}
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d", s.Len())
	}
}

func TestDelete(t *testing.T) {
	s := small(t, nil)
	th := s.Thread(0)
	th.Put(key(1), value(1))
	th.Put(key(2), value(2))
	if err := th.Delete(key(1)); err != nil {
		t.Fatal(err)
	}
	if _, err := th.Get(key(1)); !errors.Is(err, ErrNotFound) {
		t.Fatalf("deleted key: %v", err)
	}
	if err := th.Delete(key(1)); !errors.Is(err, ErrNotFound) {
		t.Fatalf("double delete: %v", err)
	}
	if got, err := th.Get(key(2)); err != nil || !bytes.Equal(got, value(2)) {
		t.Fatalf("unrelated key disturbed: %q, %v", got, err)
	}
}

func TestReinsertAfterDelete(t *testing.T) {
	s := small(t, nil)
	th := s.Thread(0)
	th.Put(key(1), []byte("first"))
	th.Delete(key(1))
	th.Put(key(1), []byte("second"))
	got, err := th.Get(key(1))
	if err != nil || string(got) != "second" {
		t.Fatalf("reinsert: %q, %v", got, err)
	}
}

// Writing more than the PWB holds forces reclamation to Value Storage;
// every value must remain readable throughout and afterwards.
func TestReclamationPreservesValues(t *testing.T) {
	s := small(t, nil)
	th := s.Thread(0)
	const n = 2000 // * ~50B values >> 64KB PWB
	for i := 0; i < n; i++ {
		if err := th.Put(key(i), value(i)); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
	}
	st := s.Stats()
	if st.Reclaims == 0 {
		t.Fatal("no reclamation happened despite PWB overflow")
	}
	if st.VS.ChunksWritten == 0 {
		t.Fatal("nothing migrated to Value Storage")
	}
	for i := 0; i < n; i++ {
		got, err := th.Get(key(i))
		if err != nil || !bytes.Equal(got, value(i)) {
			t.Fatalf("key %d after reclamation: %q, %v", i, got, err)
		}
	}
}

// Only the latest version of a key reaches the SSD (§4.3: append-only PWB
// + well-coupled check cut write traffic).
func TestReclamationSkipsSupersededVersions(t *testing.T) {
	s := small(t, func(o *Options) { o.SVCBytes = 1 << 10 })
	th := s.Thread(0)
	const updates = 3000
	for i := 0; i < updates; i++ {
		if err := th.Put(key(i%5), value(i)); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.PWBLiveMigrated >= updates/2 {
		t.Fatalf("migrated %d of %d versions — superseded values not skipped", st.PWBLiveMigrated, updates)
	}
	for i := updates - 5; i < updates; i++ {
		got, err := th.Get(key(i % 5))
		if err != nil || !bytes.Equal(got, value(i)) {
			t.Fatalf("latest version lost for key %d: %q, %v", i%5, got, err)
		}
	}
}

func TestGetServedFromSVCAfterVSRead(t *testing.T) {
	s := small(t, nil)
	th := s.Thread(0)
	const n = 2000
	for i := 0; i < n; i++ {
		th.Put(key(i), value(i))
	}
	// Force the PWB empty so reads come from VS.
	drain(t, s)
	before := s.Stats()
	if _, err := th.Get(key(7)); err != nil {
		t.Fatal(err)
	}
	mid := s.Stats()
	if mid.VSReads == before.VSReads {
		t.Skip("value still in PWB; cannot exercise SVC admission")
	}
	// Second read must hit the cache, not the SSD.
	if _, err := th.Get(key(7)); err != nil {
		t.Fatal(err)
	}
	after := s.Stats()
	if after.SVCHits != mid.SVCHits+1 {
		t.Fatalf("second read missed the SVC: %+v -> %+v", mid, after)
	}
	if after.VSReads != mid.VSReads {
		t.Fatal("second read went to the SSD")
	}
}

// drain pushes both PWBs to Value Storage by forcing reclamation. It
// uses a private clock and RNG: the background reclaim loop owns the
// store's.
func drain(t *testing.T, s *Store) {
	t.Helper()
	clk := sim.NewClock(0)
	rng := sim.NewRNG(0xd7a1)
	for i := range s.pwbs {
		s.reclaimBuffer(i, clk, rng)
	}
	s.em.Barrier()
}

func TestStaleCacheInvalidatedOnUpdate(t *testing.T) {
	s := small(t, nil)
	th := s.Thread(0)
	const n = 2000
	for i := 0; i < n; i++ {
		th.Put(key(i), value(i))
	}
	drain(t, s)
	th.Get(key(3)) // admit to SVC
	if err := th.Put(key(3), []byte("fresh")); err != nil {
		t.Fatal(err)
	}
	got, err := th.Get(key(3))
	if err != nil || string(got) != "fresh" {
		t.Fatalf("read after update = %q, %v (stale cache?)", got, err)
	}
}

func TestScanReturnsOrderedRange(t *testing.T) {
	s := small(t, nil)
	th := s.Thread(0)
	for i := 0; i < 200; i++ {
		th.Put(key(i), value(i))
	}
	var got []string
	err := th.Scan(key(50), 20, func(kv KV) bool {
		got = append(got, string(kv.Key))
		if !bytes.Equal(kv.Value, value(50+len(got)-1)) {
			t.Fatalf("scan value mismatch at %s", kv.Key)
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 20 {
		t.Fatalf("scan visited %d", len(got))
	}
	for i, k := range got {
		if k != string(key(50+i)) {
			t.Fatalf("scan[%d] = %s", i, k)
		}
	}
}

func TestScanAcrossAllMedia(t *testing.T) {
	s := small(t, nil)
	th := s.Thread(0)
	const n = 2000
	for i := 0; i < n; i++ {
		th.Put(key(i), value(i))
	}
	drain(t, s) // everything on SSD
	// Re-write a few (PWB) and read a few (SVC) inside the scan range.
	th.Put(key(102), []byte("pwb-resident"))
	th.Get(key(105))
	var got int
	err := th.Scan(key(100), 10, func(kv KV) bool {
		want := value(100 + got)
		if string(kv.Key) == string(key(102)) {
			want = []byte("pwb-resident")
		}
		if !bytes.Equal(kv.Value, want) {
			t.Fatalf("scan %s = %q", kv.Key, kv.Value)
		}
		got++
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if got != 10 {
		t.Fatalf("visited %d", got)
	}
}

func TestScanEarlyStop(t *testing.T) {
	s := small(t, nil)
	th := s.Thread(0)
	for i := 0; i < 50; i++ {
		th.Put(key(i), value(i))
	}
	n := 0
	th.Scan(nil, 0, func(kv KV) bool { n++; return n < 5 })
	if n != 5 {
		t.Fatalf("early stop visited %d", n)
	}
}

func TestConcurrentThreadsDisjointKeys(t *testing.T) {
	s := small(t, func(o *Options) { o.NumThreads = 4 })
	var wg sync.WaitGroup
	const per = 500
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			th := s.Thread(w)
			for i := 0; i < per; i++ {
				k := []byte(fmt.Sprintf("t%d-%06d", w, i))
				if err := th.Put(k, value(i)); err != nil {
					t.Errorf("put: %v", err)
					return
				}
			}
			for i := 0; i < per; i += 7 {
				k := []byte(fmt.Sprintf("t%d-%06d", w, i))
				got, err := th.Get(k)
				if err != nil || !bytes.Equal(got, value(i)) {
					t.Errorf("get %s: %q, %v", k, got, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if s.Len() != 4*per {
		t.Fatalf("Len = %d, want %d", s.Len(), 4*per)
	}
}

func TestConcurrentSameKeyContention(t *testing.T) {
	s := small(t, func(o *Options) { o.NumThreads = 4 })
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			th := s.Thread(w)
			for i := 0; i < 300; i++ {
				if err := th.Put([]byte("hotkey"), []byte(fmt.Sprintf("w%d-i%d", w, i))); err != nil {
					t.Errorf("put: %v", err)
					return
				}
				if _, err := th.Get([]byte("hotkey")); err != nil {
					t.Errorf("get: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if s.Len() != 1 {
		t.Fatalf("Len = %d, want 1", s.Len())
	}
	got, err := s.Thread(0).Get([]byte("hotkey"))
	if err != nil || len(got) == 0 {
		t.Fatalf("final read: %q, %v", got, err)
	}
}

func TestConcurrentMixedWorkload(t *testing.T) {
	s := small(t, func(o *Options) { o.NumThreads = 4 })
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			th := s.Thread(w)
			rng := th.rng
			for i := 0; i < 800; i++ {
				k := key(rng.Intn(200))
				switch rng.Intn(10) {
				case 0:
					th.Delete(k)
				case 1, 2:
					if err := th.Scan(k, 10, func(kv KV) bool { return true }); err != nil {
						t.Errorf("scan: %v", err)
						return
					}
				case 3, 4, 5:
					if _, err := th.Get(k); err != nil && !errors.Is(err, ErrNotFound) {
						t.Errorf("get: %v", err)
						return
					}
				default:
					if err := th.Put(k, value(i)); err != nil {
						t.Errorf("put: %v", err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
}

// Value Storage GC must kick in when chunks run out and keep all data.
func TestGCUnderSpacePressure(t *testing.T) {
	s := small(t, func(o *Options) {
		o.NumSSDs = 1
		o.SSDBytes = 512 << 10 // 32 chunks of 16KB
		o.SVCBytes = 1 << 10
	})
	th := s.Thread(0)
	// Interleave never-updated cold keys with heavily churned hot keys:
	// every chunk ends up a few percent live (cold) and mostly dead
	// (superseded hot versions). Such chunks are never auto-released, so
	// only GC's greedy compaction can reclaim the space.
	pad := make([]byte, 512)
	val := func(v int) []byte {
		return append([]byte(fmt.Sprintf("v%08d-", v)), pad...)
	}
	const hotKeys = 20
	latestHot := make([]int, hotKeys)
	var coldIDs []int
	for round := 0; round < 40; round++ {
		for j := 0; j < 10; j++ {
			id := 10000 + round*10 + j
			coldIDs = append(coldIDs, id)
			if err := th.Put(key(id), val(id)); err != nil {
				t.Fatalf("cold put %d: %v", id, err)
			}
		}
		for j := 0; j < 100; j++ {
			h := j % hotKeys
			v := round*1000 + j
			if err := th.Put(key(h), val(v)); err != nil {
				t.Fatalf("hot put round %d: %v", round, err)
			}
			latestHot[h] = v
		}
	}
	st := s.Stats()
	if st.VS.GCRuns == 0 {
		t.Fatal("GC never ran under space pressure")
	}
	if st.VS.GCLiveMoved == 0 {
		t.Fatal("GC ran but migrated nothing")
	}
	for _, id := range coldIDs {
		got, err := th.Get(key(id))
		if err != nil || !bytes.Equal(got, val(id)) {
			t.Fatalf("cold key %d after GC: err=%v", id, err)
		}
	}
	for h, v := range latestHot {
		got, err := th.Get(key(h))
		if err != nil || !bytes.Equal(got, val(v)) {
			t.Fatalf("hot key %d after GC: err=%v", h, err)
		}
	}
}

func TestVirtualClockAdvances(t *testing.T) {
	s := small(t, nil)
	th := s.Thread(0)
	th.Put(key(1), value(1))
	if th.Clk.Now() == 0 {
		t.Fatal("put charged no virtual time")
	}
	before := th.Clk.Now()
	th.Get(key(1))
	if th.Clk.Now() <= before {
		t.Fatal("get charged no virtual time")
	}
}

func TestValueTooLargeRejected(t *testing.T) {
	s := small(t, nil)
	if err := s.Thread(0).Put(key(1), make([]byte, hsit.MaxValueLen+1)); err == nil {
		t.Fatal("oversized value accepted")
	}
}

func TestOpsAfterCloseFail(t *testing.T) {
	opt := Options{NumThreads: 1, PWBBytesPerThread: 64 << 10, HSITCapacity: 1 << 10, NumSSDs: 1, SSDBytes: 1 << 20, ChunkSize: 16 << 10, SVCBytes: 16 << 10}
	s, err := Open(opt)
	if err != nil {
		t.Fatal(err)
	}
	s.Close()
	if err := s.Thread(0).Put(key(1), value(1)); !errors.Is(err, ErrClosed) {
		t.Fatalf("put after close: %v", err)
	}
	if _, err := s.Thread(0).Get(key(1)); !errors.Is(err, ErrClosed) {
		t.Fatalf("get after close: %v", err)
	}
	if err := s.Close(); !errors.Is(err, ErrClosed) {
		t.Fatalf("double close: %v", err)
	}
}

func TestAblationConfigsWork(t *testing.T) {
	for _, tc := range []struct {
		name   string
		mutate func(*Options)
	}{
		{"NoSVC", func(o *Options) { o.DisableSVC = true }},
		{"NoCombining", func(o *Options) { o.DisableCombining = true }},
		{"SyncVSWrites", func(o *Options) { o.SyncVSWrites = true }},
		{"NoScanSort", func(o *Options) { o.DisableScanSort = true }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			s := small(t, tc.mutate)
			th := s.Thread(0)
			const n = 1500
			for i := 0; i < n; i++ {
				if err := th.Put(key(i), value(i)); err != nil {
					t.Fatalf("put %d: %v", i, err)
				}
			}
			for i := 0; i < n; i += 13 {
				got, err := th.Get(key(i))
				if err != nil || !bytes.Equal(got, value(i)) {
					t.Fatalf("get %d: %q, %v", i, got, err)
				}
			}
			cnt := 0
			th.Scan(key(0), 25, func(kv KV) bool { cnt++; return true })
			if cnt != 25 {
				t.Fatalf("scan visited %d", cnt)
			}
		})
	}
}

func TestStatsReporting(t *testing.T) {
	s := small(t, nil)
	th := s.Thread(0)
	th.Put(key(1), value(1))
	th.Get(key(1))
	th.Scan(nil, 1, func(kv KV) bool { return true })
	th.Delete(key(1))
	st := s.Stats()
	if st.Puts != 1 || st.Gets != 1 || st.Scans != 1 || st.Deletes != 1 {
		t.Fatalf("op counters: %+v", st)
	}
	if st.IndexSpaceBytes < 0 || st.HSITSpaceBytes < 0 {
		t.Fatalf("space: %+v", st)
	}
}

func TestOpenValidation(t *testing.T) {
	bad := []Options{
		{NumSSDs: 65},
		{PWBBytesPerThread: 1024},
		{ChunkSize: 1 << 30, SSDBytes: 1 << 20},
	}
	for i, opt := range bad {
		if _, err := Open(opt); err == nil {
			t.Errorf("case %d: invalid options accepted", i)
		}
	}
}
