package core

import (
	"fmt"

	"repro/internal/obs"
)

// registerMetrics wires every subsystem into the observability registry
// (see METRICS.md for the full reference). Counters that the subsystems
// already keep as atomics are re-exported as counter funcs, read only at
// snapshot time, so the hot paths are untouched; the only new hot-path
// instrumentation is the op-latency histograms (one Record per public
// operation) and the TCQ batch-size histogram (one Record per batch).
//
// Called from Open before background goroutines start; the registry is
// immutable afterwards.
func (s *Store) registerMetrics() {
	r := s.reg

	// ---- core: operation mix, latency, read-path breakdown ----
	ops := func(op string, v func() int64) {
		r.CounterFunc(obs.Desc{Name: "core.ops", Help: "public operations", Unit: "ops",
			Labels: map[string]string{"op": op}}, v)
	}
	ops("put", s.stats.puts.Load)
	ops("get", s.stats.gets.Load)
	ops("delete", s.stats.deletes.Load)
	ops("scan", s.stats.scans.Load)
	rp := func(src, help string, v func() int64) {
		r.CounterFunc(obs.Desc{Name: "core.read_path", Help: help, Unit: "reads",
			Labels: map[string]string{"source": src}}, v)
	}
	rp("svc", "value reads served from the DRAM cache", s.stats.svcHits.Load)
	rp("pwb", "value reads served from an NVM write buffer", s.stats.pwbHits.Load)
	rp("vs", "value read IOs issued to Value Storage", s.stats.vsReads.Load)
	r.CounterFunc(obs.Desc{Name: "core.put_stalls", Help: "puts that waited on PWB reclamation", Unit: "ops"},
		s.stats.putStalls.Load)
	r.CounterFunc(obs.Desc{Name: "core.user_bytes", Help: "value payload bytes written by the application (WAF denominator)", Unit: "bytes"},
		s.stats.userBytesWritten.Load)
	r.GaugeFunc(obs.Desc{Name: "core.keys", Help: "live keys in the store", Unit: "keys"},
		func() float64 { return float64(s.index.Len()) })
	lat := func(op string) *obs.Histogram {
		return r.Histogram(obs.Desc{Name: "core.op_latency", Help: "operation latency in virtual time", Unit: "ns",
			Labels: map[string]string{"op": op}})
	}
	s.latPut, s.latGet, s.latScan = lat("put"), lat("get"), lat("scan")
	s.latPutBatch, s.latMultiGet = lat("put_batch"), lat("multiget")

	// Batch API (PutBatch/MultiGet): how often batches run and how many
	// keys each carries. Per-key work still lands in core.ops above.
	batchOps := func(op string, v func() int64) {
		r.CounterFunc(obs.Desc{Name: "core.batch_ops", Help: "batch operations (PutBatch/MultiGet calls)", Unit: "ops",
			Labels: map[string]string{"op": op}}, v)
	}
	batchOps("put", s.stats.batchPuts.Load)
	batchOps("get", s.stats.batchGets.Load)
	s.batchSizePut = r.Histogram(obs.Desc{Name: "core.batch_size", Help: "keys per batch operation", Unit: "keys",
		Labels: map[string]string{"op": "put"}})
	s.batchSizeGet = r.Histogram(obs.Desc{Name: "core.batch_size", Help: "keys per batch operation", Unit: "keys",
		Labels: map[string]string{"op": "get"}})

	// Async submission pipeline (PutAsync/GetAsync/DeleteAsync): how much
	// is submitted, how well the admission loop coalesces it, and how
	// long completions take on the async timeline. Per-key work still
	// lands in core.ops above.
	asyncOps := func(op string, v func() int64) {
		r.CounterFunc(obs.Desc{Name: "core.async_ops", Help: "asynchronous submissions accepted", Unit: "ops",
			Labels: map[string]string{"op": op}}, v)
	}
	asyncOps("put", s.stats.asyncPuts.Load)
	asyncOps("get", s.stats.asyncGets.Load)
	asyncOps("delete", s.stats.asyncDeletes.Load)
	s.asyncWindow = r.Histogram(obs.Desc{Name: "core.async_window", Help: "submissions coalesced per admission window", Unit: "ops"})
	s.asyncLat = r.Histogram(obs.Desc{Name: "core.async_latency", Help: "virtual time from admission-window open to completion", Unit: "ns"})
	r.GaugeFunc(obs.Desc{Name: "core.async_inflight", Help: "async submissions accepted but not yet completed", Unit: "ops"},
		func() float64 {
			var n int64
			for _, t := range s.threads {
				n += t.async.inflight.Load()
			}
			return float64(n)
		})

	// ---- svc: Scan-aware Value Cache (§4.4) ----
	if s.cache != nil {
		r.CounterFunc(obs.Desc{Name: "svc.hits", Help: "reads served from the cache", Unit: "reads"},
			s.stats.svcHits.Load)
		r.CounterFunc(obs.Desc{Name: "svc.misses", Help: "reads that fell through to NVM or SSD", Unit: "reads"},
			func() int64 { return s.stats.pwbHits.Load() + s.stats.vsReads.Load() })
		r.GaugeFunc(obs.Desc{Name: "svc.bytes", Help: "resident key+value+overhead bytes", Unit: "bytes"},
			func() float64 { return float64(s.cache.Stats().Bytes) })
		r.GaugeFunc(obs.Desc{Name: "svc.entries", Help: "resident entries", Unit: "entries"},
			func() float64 { return float64(s.cache.Stats().Entries) })
		r.CounterFunc(obs.Desc{Name: "svc.promotions", Help: "2Q inactive->active promotions", Unit: "entries"},
			func() int64 { return s.cache.Stats().Promotions })
		r.CounterFunc(obs.Desc{Name: "svc.evictions", Help: "entries evicted for capacity", Unit: "entries"},
			func() int64 { return s.cache.Stats().Evictions })
		r.CounterFunc(obs.Desc{Name: "svc.chain_rewrites", Help: "scan chains handed to the rewrite hook on eviction", Unit: "chains"},
			func() int64 { return s.cache.Stats().ChainRewrites })
		r.CounterFunc(obs.Desc{Name: "svc.scan_rewrites", Help: "sorted scan-range rewrites into Value Storage (§4.4 steps 5-6)", Unit: "rewrites"},
			s.stats.scanRewrites.Load)
		r.CounterFunc(obs.Desc{Name: "svc.touch_drops", Help: "advisory touch events dropped under pressure", Unit: "events"},
			func() int64 { return s.cache.Stats().TouchDrops })
	}

	// ---- pwb: per-thread Persistent Write Buffers (§4.3) ----
	r.GaugeFunc(obs.Desc{Name: "pwb.capacity_bytes", Help: "total ring capacity across threads", Unit: "bytes"},
		func() float64 {
			var t int64
			for _, b := range s.pwbs {
				t += int64(b.Size())
			}
			return float64(t)
		})
	r.GaugeFunc(obs.Desc{Name: "pwb.used_bytes", Help: "bytes between tail and head across rings", Unit: "bytes"},
		func() float64 {
			var t int64
			for _, b := range s.pwbs {
				t += int64(b.Used())
			}
			return float64(t)
		})
	r.GaugeFunc(obs.Desc{Name: "pwb.utilization", Help: "highest ring utilization (reclamation triggers above pwb.watermark)", Unit: "ratio"},
		func() float64 {
			var m float64
			for _, b := range s.pwbs {
				if u := b.Utilization(); u > m {
					m = u
				}
			}
			return m
		})
	r.GaugeFunc(obs.Desc{Name: "pwb.watermark", Help: "configured reclamation watermark (0 = adaptive)", Unit: "ratio"},
		func() float64 { return s.opt.ReclaimWatermark })
	r.GaugeFunc(obs.Desc{Name: "pwb.watermark_effective", Help: "reclamation trigger in force (the adaptive controller's value, or the configured watermark when fixed)", Unit: "ratio"},
		s.effectiveWatermark)
	r.CounterFunc(obs.Desc{Name: "pwb.bytes_appended", Help: "value payload bytes appended across rings", Unit: "bytes"},
		func() int64 {
			var t int64
			for _, b := range s.pwbs {
				t += b.BytesAppended()
			}
			return t
		})
	r.CounterFunc(obs.Desc{Name: "pwb.reclaims", Help: "background reclamation passes", Unit: "passes"},
		s.stats.reclaims.Load)
	r.CounterFunc(obs.Desc{Name: "pwb.live_migrated", Help: "live values migrated from PWB to Value Storage", Unit: "values"},
		s.stats.pwbLiveMigrated.Load)
	r.CounterFunc(obs.Desc{Name: "core.reclaim_publish_lost", Help: "migrated values whose PublishIf lost to a concurrent foreground write (VS copy invalidated)", Unit: "values"},
		s.stats.reclaimPublishLost.Load)
	r.CounterFunc(obs.Desc{Name: "pwb.scan_torn_record", Help: "reclamation passes aborted on an unparseable ring record (should stay 0 under the frozen-tail protocol)", Unit: "passes"},
		s.stats.scanTornRecords.Load)

	// ---- vs: log-structured Value Storage, per device (§5.1-5.2) ----
	for i, vs := range s.vsm.Stores {
		vs := vs
		lbl := map[string]string{"device": fmt.Sprintf("ssd%d", i)}
		r.CounterFunc(obs.Desc{Name: "vs.chunks_written", Help: "chunks committed", Unit: "chunks", Labels: lbl},
			func() int64 { return vs.Stats().ChunksWritten })
		r.CounterFunc(obs.Desc{Name: "vs.bytes_written", Help: "record bytes shipped to the device (incl. GC)", Unit: "bytes", Labels: lbl},
			func() int64 { return vs.Stats().BytesWritten })
		r.CounterFunc(obs.Desc{Name: "vs.gc_runs", Help: "garbage collection passes", Unit: "passes", Labels: lbl},
			func() int64 { return vs.Stats().GCRuns })
		r.CounterFunc(obs.Desc{Name: "vs.gc_live_moved", Help: "live values relocated by GC", Unit: "values", Labels: lbl},
			func() int64 { return vs.Stats().GCLiveMoved })
		r.CounterFunc(obs.Desc{Name: "vs.gc_bytes_moved", Help: "payload bytes copied by GC", Unit: "bytes", Labels: lbl},
			func() int64 { return vs.Stats().GCBytesMoved })
		r.GaugeFunc(obs.Desc{Name: "vs.free_chunks", Help: "free chunks", Unit: "chunks", Labels: lbl},
			func() float64 { return float64(vs.FreeChunks()) })
		r.GaugeFunc(obs.Desc{Name: "vs.live_chunks", Help: "live (sealed, non-empty) chunks", Unit: "chunks", Labels: lbl},
			func() float64 { return float64(vs.Stats().LiveChunks) })
		r.CounterFunc(obs.Desc{Name: "vs.user_bytes", Help: "user payload bytes first landed on this device (per-device WAF denominator)", Unit: "bytes", Labels: lbl},
			vs.UserBytes)
	}

	// ---- ssd: simulated flash devices ----
	for i, dev := range s.ssds {
		dev := dev
		lbl := map[string]string{"device": fmt.Sprintf("ssd%d", i)}
		r.CounterFunc(obs.Desc{Name: "ssd.bytes_read", Help: "bytes read from the device", Unit: "bytes", Labels: lbl},
			func() int64 { return dev.Stats().BytesRead })
		r.CounterFunc(obs.Desc{Name: "ssd.bytes_written", Help: "durable (acked) bytes written (WAF numerator)", Unit: "bytes", Labels: lbl},
			func() int64 { return dev.Stats().BytesWritten })
		r.CounterFunc(obs.Desc{Name: "ssd.read_ios", Help: "read requests serviced", Unit: "ios", Labels: lbl},
			func() int64 { return dev.Stats().ReadIOs })
		r.CounterFunc(obs.Desc{Name: "ssd.write_ios", Help: "write requests serviced", Unit: "ios", Labels: lbl},
			func() int64 { return dev.Stats().WriteIOs })
		r.GaugeFunc(obs.Desc{Name: "ssd.queue_depth", Help: "staged, unacknowledged writes in flight", Unit: "ios", Labels: lbl},
			func() float64 { return float64(dev.InFlight()) })
	}
	// Per-device WAF: each device's acked bytes over the user bytes that
	// first landed there, so a hot device's amplification is no longer
	// averaged against idle capacity devices. Relocations onto a device
	// (GC, demotion, scan rewrite) raise its numerator without touching
	// its denominator — amplification, honestly attributed.
	for i := range s.ssds {
		i := i
		lbl := map[string]string{"device": fmt.Sprintf("ssd%d", i)}
		r.GaugeFunc(obs.Desc{Name: "ssd.waf", Help: "per-device write amplification: device bytes written / user bytes first landed on it", Unit: "ratio", Labels: lbl},
			func() float64 {
				user := s.vsm.Stores[i].UserBytes()
				if user == 0 {
					return 0
				}
				return float64(s.ssds[i].Stats().BytesWritten) / float64(user)
			})
	}
	r.GaugeFunc(obs.Desc{Name: "ssd.waf", Help: "store-wide SSD write amplification: device bytes written / user bytes (Fig 12)", Unit: "ratio"},
		func() float64 {
			user := s.stats.userBytesWritten.Load()
			if user == 0 {
				return 0
			}
			var dev int64
			for _, d := range s.ssds {
				dev += d.Stats().BytesWritten
			}
			return float64(dev) / float64(user)
		})

	// ---- tier: hot/cold value placement (PrismDB-style steering) ----
	tierBytes := func(name, class, help string, v func() int64) {
		r.CounterFunc(obs.Desc{Name: name, Help: help, Unit: "bytes",
			Labels: map[string]string{"class": class}}, v)
	}
	tierBytes("tier.steered_bytes", "hot", "reclaimed bytes written to the class's intended tier", s.stats.tierHotSteered.Load)
	tierBytes("tier.steered_bytes", "cold", "reclaimed bytes written to the class's intended tier", s.stats.tierColdSteered.Load)
	tierBytes("tier.fallback_bytes", "hot", "reclaimed bytes spilled to another device (intended tier out of space)", s.stats.tierHotFallback.Load)
	tierBytes("tier.fallback_bytes", "cold", "reclaimed bytes spilled to another device (intended tier out of space)", s.stats.tierColdFallback.Load)
	r.CounterFunc(obs.Desc{Name: "tier.demotions", Help: "cooled-off values relocated fast tier -> capacity tier", Unit: "values"},
		s.stats.tierDemotions.Load)
	r.CounterFunc(obs.Desc{Name: "tier.demoted_bytes", Help: "payload bytes relocated by the demotion pass", Unit: "bytes"},
		s.stats.tierDemotedBytes.Load)
	r.GaugeFunc(obs.Desc{Name: "tier.fast_device", Help: "device index of the fast tier (-1 when tiering is off)", Unit: "index"},
		func() float64 {
			if !s.tiered() {
				return -1
			}
			return float64(s.tierFast)
		})
	r.GaugeFunc(obs.Desc{Name: "tier.capacity_device", Help: "device index of the capacity tier (-1 when tiering is off)", Unit: "index"},
		func() float64 {
			if !s.tiered() {
				return -1
			}
			return float64(s.tierCap)
		})

	// ---- nvm: persistent memory device ----
	r.CounterFunc(obs.Desc{Name: "nvm.loads", Help: "load operations", Unit: "ops"},
		func() int64 { return s.nvmDev.Stats().Loads })
	r.CounterFunc(obs.Desc{Name: "nvm.stores", Help: "store operations", Unit: "ops"},
		func() int64 { return s.nvmDev.Stats().Stores })
	r.CounterFunc(obs.Desc{Name: "nvm.flushes", Help: "cache-line flushes", Unit: "ops"},
		func() int64 { return s.nvmDev.Stats().Flushes })
	r.CounterFunc(obs.Desc{Name: "nvm.fences", Help: "persistence fences", Unit: "ops"},
		func() int64 { return s.nvmDev.Stats().Fences })

	// ---- tcq / ta: read batching (§5.3) ----
	if !s.opt.DisableCombining {
		batchHist := r.Histogram(obs.Desc{Name: "tcq.batch_size", Help: "requests coalesced per submitted batch (Fig 11)", Unit: "requests"})
		for i, q := range s.queues {
			q := q
			q.BatchHist = batchHist
			lbl := map[string]string{"device": fmt.Sprintf("ssd%d", i)}
			r.CounterFunc(obs.Desc{Name: "tcq.batches", Help: "batches submitted by combining leaders", Unit: "batches", Labels: lbl},
				func() int64 { return q.Stats().Batches })
			r.CounterFunc(obs.Desc{Name: "tcq.combined", Help: "requests submitted across all batches", Unit: "requests", Labels: lbl},
				func() int64 { return q.Stats().Combined })
		}
		r.GaugeFunc(obs.Desc{Name: "tcq.avg_batch", Help: "mean requests per submission across queues", Unit: "requests"},
			func() float64 {
				var b, c int64
				for _, q := range s.queues {
					st := q.Stats()
					b, c = b+st.Batches, c+st.Combined
				}
				if b == 0 {
					return 0
				}
				return float64(c) / float64(b)
			})
	} else {
		batchHist := r.Histogram(obs.Desc{Name: "ta.batch_size", Help: "requests per timeout-batched submission (Fig 11 baseline)", Unit: "requests"})
		for i, b := range s.tas {
			b := b
			b.BatchHist = batchHist
			lbl := map[string]string{"device": fmt.Sprintf("ssd%d", i)}
			r.CounterFunc(obs.Desc{Name: "ta.batches", Help: "timeout-batched submissions", Unit: "batches", Labels: lbl},
				b.Batches)
		}
	}

	// ---- NVM index structures and epochs ----
	r.GaugeFunc(obs.Desc{Name: "hsit.space_bytes", Help: "NVM bytes of HSIT entries (§7.6 space accounting)", Unit: "bytes"},
		func() float64 { return float64(s.table.SpaceBytes()) })
	r.GaugeFunc(obs.Desc{Name: "index.space_bytes", Help: "NVM bytes of the persistent key index (§7.6)", Unit: "bytes"},
		func() float64 { return float64(s.index.SpaceBytes()) })
	r.GaugeFunc(obs.Desc{Name: "epoch.global", Help: "current global epoch", Unit: "epochs"},
		func() float64 { return float64(s.em.Epoch()) })
	r.GaugeFunc(obs.Desc{Name: "epoch.pending", Help: "retired objects awaiting the two-epoch grace", Unit: "objects"},
		func() float64 { return float64(s.em.Pending()) })
	r.CounterFunc(obs.Desc{Name: "epoch.enters", Help: "epoch critical sections entered (batch ops amortize this per-op toll)", Unit: "ops"},
		s.em.Enters)
}

// MetricsRegistry exposes the store's observability registry (nil when
// Options.DisableMetrics), e.g. for attaching an obs.Sampler.
func (s *Store) MetricsRegistry() *obs.Registry { return s.reg }

// Metrics returns a stable, JSON-serializable snapshot of every
// registered metric. With metrics disabled it returns an empty snapshot.
// Safe to call concurrently with operations, and after Close.
func (s *Store) Metrics() obs.Snapshot { return s.reg.Snapshot() }
