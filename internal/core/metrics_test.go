package core

import (
	"encoding/json"
	"fmt"
	"testing"
)

// runMixedWorkload drives enough traffic through st to touch every
// subsystem: puts that overflow the PWB into Value Storage, gets that hit
// SVC/PWB/VS, scans, and deletes.
func runMixedWorkload(t *testing.T, st *Store) {
	t.Helper()
	th := st.Thread(0)
	val := make([]byte, 1024)
	for i := 0; i < 4000; i++ {
		key := []byte(fmt.Sprintf("key-%05d", i%500))
		if err := th.Put(key, val); err != nil {
			t.Fatalf("put: %v", err)
		}
	}
	for i := 0; i < 2000; i++ {
		key := []byte(fmt.Sprintf("key-%05d", i%500))
		if _, err := th.Get(key); err != nil {
			t.Fatalf("get: %v", err)
		}
	}
	for i := 0; i < 20; i++ {
		if err := th.Scan([]byte("key-"), 50, func(KV) bool { return true }); err != nil {
			t.Fatalf("scan: %v", err)
		}
	}
	for i := 0; i < 50; i++ {
		key := []byte(fmt.Sprintf("key-%05d", i))
		if err := th.Delete(key); err != nil {
			t.Fatalf("delete: %v", err)
		}
	}
}

// TestMetricsMatchStats runs a mixed workload and cross-checks the obs
// snapshot against the pre-existing Stats() accessors: every number
// surfaced through the registry must agree with the subsystem that owns
// it.
func TestMetricsMatchStats(t *testing.T) {
	st, err := Open(Options{
		NumThreads:        2,
		PWBBytesPerThread: 64 << 10,
		SSDBytes:          8 << 20,
		ChunkSize:         64 << 10,
		SVCBytes:          256 << 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	runMixedWorkload(t, st)
	// Quiesce the SVC manager goroutine: admissions and evictions are
	// processed asynchronously, and comparing two point-in-time readings
	// while it still drains its queue would race the counters.
	if st.cache != nil {
		st.cache.Sync()
	}

	snap := st.Metrics()
	stats := st.Stats()

	wantCounter := func(name string, labels map[string]string, want int64) {
		t.Helper()
		m, ok := snap.Get(name, labels)
		if !ok {
			t.Fatalf("metric %s%v not in snapshot", name, labels)
		}
		if int64(m.Value) != want {
			t.Errorf("%s%v = %v, Stats says %d", name, labels, m.Value, want)
		}
	}

	wantCounter("core.ops", map[string]string{"op": "put"}, stats.Puts)
	wantCounter("core.ops", map[string]string{"op": "get"}, stats.Gets)
	wantCounter("core.ops", map[string]string{"op": "delete"}, stats.Deletes)
	wantCounter("core.ops", map[string]string{"op": "scan"}, stats.Scans)
	wantCounter("core.read_path", map[string]string{"source": "svc"}, stats.SVCHits)
	wantCounter("core.read_path", map[string]string{"source": "pwb"}, stats.PWBHits)
	wantCounter("core.read_path", map[string]string{"source": "vs"}, stats.VSReads)
	wantCounter("core.user_bytes", nil, stats.UserBytesWritten)
	wantCounter("svc.hits", nil, stats.SVCHits)
	wantCounter("svc.evictions", nil, stats.SVC.Evictions)
	wantCounter("pwb.reclaims", nil, stats.Reclaims)
	wantCounter("pwb.live_migrated", nil, stats.PWBLiveMigrated)
	wantCounter("hsit.space_bytes", nil, stats.HSITSpaceBytes)
	wantCounter("index.space_bytes", nil, stats.IndexSpaceBytes)

	if got, want := int64(snap.Sum("vs.bytes_written")), stats.VS.BytesWritten; got != want {
		t.Errorf("sum(vs.bytes_written) = %d, Stats says %d", got, want)
	}
	if got, want := int64(snap.Sum("vs.gc_runs")), stats.VS.GCRuns; got != want {
		t.Errorf("sum(vs.gc_runs) = %d, Stats says %d", got, want)
	}

	// WAF gauge must equal sum(ssd bytes written)/user bytes.
	var devBytes int64
	for _, d := range st.SSDs() {
		devBytes += d.Stats().BytesWritten
	}
	if devBytes == 0 {
		t.Fatal("workload never reached the SSDs; enlarge it")
	}
	wafM, ok := snap.Get("ssd.waf", nil)
	if !ok {
		t.Fatal("ssd.waf (aggregate row) missing")
	}
	waf := wafM.Value
	want := float64(devBytes) / float64(stats.UserBytesWritten)
	if diff := waf - want; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("ssd.waf = %v, want %v", waf, want)
	}
	if waf < 1.0 {
		t.Errorf("ssd.waf = %v; values flow PWB->VS so device bytes should exceed user bytes", waf)
	}

	// Per-device WAF rows: each device's acked bytes over the user bytes
	// first landed there, and the denominators must sum to what the
	// reclaimers attributed (a subset of UserBytesWritten — values still
	// in the PWB ring or superseded before migration never land).
	var attributed int64
	for i, d := range st.SSDs() {
		lbl := map[string]string{"device": fmt.Sprintf("ssd%d", i)}
		m, ok := snap.Get("ssd.waf", lbl)
		if !ok {
			t.Fatalf("ssd.waf%v missing", lbl)
		}
		user := st.vsm.Stores[i].UserBytes()
		attributed += user
		if user == 0 {
			if m.Value != 0 {
				t.Errorf("ssd.waf%v = %v with zero user bytes, want 0", lbl, m.Value)
			}
			continue
		}
		dw := float64(d.Stats().BytesWritten) / float64(user)
		if diff := m.Value - dw; diff > 1e-9 || diff < -1e-9 {
			t.Errorf("ssd.waf%v = %v, want %v", lbl, m.Value, dw)
		}
	}
	if attributed == 0 || attributed > stats.UserBytesWritten {
		t.Errorf("per-device user bytes attributed = %d, want in (0, %d]", attributed, stats.UserBytesWritten)
	}

	// Latency histograms must have one sample per operation.
	for op, n := range map[string]int64{"put": stats.Puts, "get": stats.Gets, "scan": stats.Scans} {
		m, ok := snap.Get("core.op_latency", map[string]string{"op": op})
		if !ok || m.Hist == nil {
			t.Fatalf("core.op_latency{op=%s} missing or not a histogram", op)
		}
		if m.Hist.Count != n {
			t.Errorf("op_latency{%s}.Count = %d, want %d", op, m.Hist.Count, n)
		}
		if n > 0 && m.Hist.P50 <= 0 {
			t.Errorf("op_latency{%s}.P50 = %v, want > 0", op, m.Hist.P50)
		}
	}

	// Batch-size histogram totals must agree with the TCQ counters.
	m, ok := snap.Get("tcq.batch_size", nil)
	if !ok || m.Hist == nil {
		t.Fatal("tcq.batch_size missing")
	}
	var batches int64
	for _, q := range st.queues {
		batches += q.Stats().Batches
	}
	if m.Hist.Count != batches {
		t.Errorf("tcq.batch_size.Count = %d, queue stats say %d batches", m.Hist.Count, batches)
	}

	// The whole snapshot must serialize to valid JSON and round-trip.
	raw, err := json.Marshal(snap)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var back struct {
		Metrics []json.RawMessage `json:"metrics"`
	}
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if len(back.Metrics) != len(snap.Metrics) {
		t.Errorf("JSON round-trip lost metrics: %d != %d", len(back.Metrics), len(snap.Metrics))
	}
}

// TestMetricsDisabled verifies DisableMetrics yields an empty snapshot
// and no hot-path panics.
func TestMetricsDisabled(t *testing.T) {
	st, err := Open(Options{DisableMetrics: true, PWBBytesPerThread: 64 << 10, SSDBytes: 4 << 20, ChunkSize: 64 << 10})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	th := st.Thread(0)
	if err := th.Put([]byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	if _, err := th.Get([]byte("k")); err != nil {
		t.Fatal(err)
	}
	if err := th.Scan([]byte("k"), 1, func(KV) bool { return true }); err != nil {
		t.Fatal(err)
	}
	if snap := st.Metrics(); len(snap.Metrics) != 0 {
		t.Errorf("disabled store exported %d metrics", len(snap.Metrics))
	}
	if st.MetricsRegistry() != nil {
		t.Error("disabled store has a registry")
	}
}

// TestMetricsTABaseline checks the DisableCombining configuration exports
// the ta.* family instead of tcq.*.
func TestMetricsTABaseline(t *testing.T) {
	st, err := Open(Options{DisableCombining: true, PWBBytesPerThread: 64 << 10, SSDBytes: 4 << 20, ChunkSize: 64 << 10})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	names := make(map[string]bool)
	for _, n := range st.Metrics().Names() {
		names[n] = true
	}
	if !names["ta.batch_size"] || !names["ta.batches"] {
		t.Error("TA store missing ta.* metrics")
	}
	if names["tcq.batch_size"] || names["tcq.batches"] {
		t.Error("TA store exports tcq.* metrics")
	}
}
