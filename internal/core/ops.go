package core

import (
	"errors"
	"fmt"
	"runtime"
	"sort"

	"repro/internal/hsit"
	"repro/internal/pwb"
	"repro/internal/sim"
	"repro/internal/ssd"
	"repro/internal/valuestore"
)

// pwbFullErr aliases the PWB's full signal for the retry loop.
var pwbFullErr = pwb.ErrFull

// dramCost models a DRAM copy: ~80ns latency plus 15 GB/s transfer.
func dramCost(n int) int64 { return 80 + sim.TransferNS(n, 15_000_000_000) }

// cloneBytes copies b into a fresh, always non-nil slice: a present key
// with an empty value must stay distinguishable from a missing key
// (MultiGet reports absence as a nil entry).
func cloneBytes(b []byte) []byte { return append(make([]byte, 0, len(b)), b...) }

// errRetryPut signals that a Put attempt must restart outside its epoch
// (the PWB was full; space can only be released once the thread unpins).
var errRetryPut = errors.New("prism: retry put")

// Put inserts or updates key with value. The write is durable when Put
// returns (§5.4 durable linearizability): the value is persisted in the
// thread's PWB before its HSIT forward pointer is published.
func (t *Thread) Put(key, value []byte) error {
	s := t.s
	if s.closed.Load() {
		return ErrClosed
	}
	if len(value) > hsit.MaxValueLen {
		return fmt.Errorf("prism: value of %d bytes exceeds max %d", len(value), hsit.MaxValueLen)
	}
	s.stats.puts.Add(1)
	s.stats.userBytesWritten.Add(int64(len(value)))
	t0 := t.Clk.Now()
	defer func() { s.latPut.Record(t.Clk.Now() - t0) }()
	for attempt := 0; attempt < 1_000_000; attempt++ {
		// The thread's PWB ring (and its publish-pending window) is shared
		// with the async admission loop; execMu keeps whole append windows
		// mutually exclusive with this attempt.
		t.async.execMu.Lock()
		err := t.putOnce(key, value)
		t.async.execMu.Unlock()
		if err != errRetryPut {
			if err == nil {
				t.maybeKickReclaim()
			}
			return err
		}
		// Stalled on a full PWB: help epochs along (so retired ring space
		// and chunks land) and wait, in virtual time, until the latest
		// reclamation pass has finished.
		s.em.Collect()
		runtime.Gosched()
		t.Clk.AdvanceTo(s.reclaimStall[t.id].Load())
	}
	return errors.New("prism: PWB reclamation stalled")
}

// putOnce performs one epoch-scoped write attempt.
func (t *Thread) putOnce(key, value []byte) error {
	t.part.Enter()
	defer t.part.Exit()
	return t.putStep(key, value, true)
}

// putStep is one index-traversal-plus-write for key, shared by Put and
// PutBatch. The caller holds the epoch guard. clearPending selects
// whether each publish immediately lifts the PWB publish-pending mark
// (single-op Put) or the caller lifts it once for a whole append window
// (PutBatch, via a deferred Buffer.Published).
func (t *Thread) putStep(key, value []byte, clearPending bool) error {
	s := t.s
	idx, found := s.index.Lookup(t.Clk, key)
	if !found {
		var err error
		idx, err = s.table.Alloc(t.Clk)
		if err != nil {
			return err
		}
	}
	if err := t.writeAndPublish(idx, value, clearPending); err != nil {
		if !found {
			s.table.Free(idx) // never published, never inserted
		}
		return err
	}
	if !found {
		winner, inserted := s.index.Insert(t.Clk, key, idx)
		if !inserted {
			// Another thread inserted the key first. Our entry is
			// orphaned: clear it and redo the write against the winner's
			// entry (the record must carry the winner's backward pointer
			// to stay well-coupled).
			old := s.table.Clear(t.Clk, idx)
			t.invalidateOld(idx, old)
			s.table.Free(idx)
			return t.writeAndPublish(winner, value, clearPending)
		}
	}
	return nil
}

// writeAndPublish appends the value to the thread's PWB with idx as its
// backward pointer and publishes the new location in HSIT, invalidating
// whatever the entry pointed to before. When clearPending is false the
// publish-pending mark set by Append stays in place for the caller's
// batch-wide Published call.
func (t *Thread) writeAndPublish(idx uint64, value []byte, clearPending bool) error {
	s := t.s
	off, _, err := t.buf.Append(t.Clk, idx, value)
	if err == pwbFullErr {
		s.stats.putStalls.Add(1)
		// Feedback for the adaptive watermark: a full ring means
		// reclamation started too late — lower the trigger.
		s.adaptWatermark(false)
		if s.opt.SyncVSWrites {
			s.reclaimBuffer(t.id, t.Clk, t.rng)
		} else {
			t.kickReclaim()
		}
		return errRetryPut
	}
	if err != nil {
		return err
	}
	old := s.table.Publish(t.Clk, idx, hsit.Pointer{Media: hsit.PWB, Len: len(value), Off: off})
	// Lift the publish-pending mark set by Append: the reclaimer may now
	// include this record in its scan, and is guaranteed to observe the
	// pointer just published (so it classifies the record as live).
	if clearPending {
		t.buf.Published()
	}
	if s.heat != nil {
		s.heat.Touch(idx) // write heat: a fresh put is a hot key
	}
	t.invalidateOld(idx, old)
	if s.opt.SyncVSWrites && t.buf.Used() >= s.opt.ChunkSize {
		// Ablation: no asynchronous bandwidth-optimized write — the
		// application thread migrates PWB contents to Value Storage on
		// its own clock, putting the SSD write on the critical path.
		s.reclaimBuffer(t.id, t.Clk, t.rng)
	}
	return nil
}

// maybeKickReclaim triggers background reclamation at the effective
// watermark (§4.3: 50% by default; the adaptive controller moves it).
func (t *Thread) maybeKickReclaim() {
	if t.buf.Utilization() < t.s.effectiveWatermark() {
		return
	}
	if t.s.opt.SyncVSWrites {
		// The put thread owns its buffer's scans in sync mode, so reclaim
		// inline at the trigger: passes are watermark-sized instead of
		// always full-ring at ErrFull, which is what lets the adaptive
		// controller bound the reclamation share of a put's latency. The
		// put crossing the trigger absorbs the whole pass — a put-latency
		// stall by construction — so it is also the controller's decay
		// signal: the trigger shrinks until pass cost stops dominating
		// the stalled put's latency.
		t.s.adaptWatermark(false)
		t.s.reclaimBuffer(t.id, t.Clk, t.rng)
		t.s.em.Collect()
		return
	}
	t.kickReclaim()
}

func (t *Thread) kickReclaim() {
	select {
	case t.s.reclaimChs[t.id] <- t.Clk.Now():
	default:
	}
}

// invalidateOld cleans up the location a Publish displaced: a superseded
// Value Storage record loses its validity bit; a superseded PWB record
// simply becomes ill-coupled (§4.3). Any cached copy is unpublished and
// dropped, since it now holds a stale value.
func (t *Thread) invalidateOld(idx uint64, old hsit.Pointer) {
	s := t.s
	if old.Media == hsit.VS {
		s.vsm.Invalidate(old.Off, old.Len)
	}
	if s.cache != nil {
		if h := s.table.LoadSVC(t.Clk, idx); h != 0 {
			if s.table.CasSVC(t.Clk, idx, h, 0) {
				s.cache.Invalidate(idx, h)
			}
		}
	}
}

// Get returns the current value for key. Resolution order is the paper's
// fast-path order: SVC (DRAM) -> PWB (NVM) -> Value Storage (SSD, via
// thread combining), admitting SSD-read values into the SVC (§4.4).
func (t *Thread) Get(key []byte) ([]byte, error) {
	s := t.s
	if s.closed.Load() {
		return nil, ErrClosed
	}
	t.part.Enter()
	defer t.part.Exit()
	s.stats.gets.Add(1)
	t0 := t.Clk.Now()
	defer func() { s.latGet.Record(t.Clk.Now() - t0) }()

	idx, ok := s.index.Lookup(t.Clk, key)
	if !ok {
		return nil, ErrNotFound
	}
	for attempt := 0; attempt < 1000; attempt++ {
		val, err, retry := t.resolve(idx, key, true)
		if !retry {
			return val, err
		}
	}
	return nil, fmt.Errorf("prism: value for %q kept moving; giving up", key)
}

// svcRead resolves idx through the SVC with the read-side currency
// check: a cached value counts as a hit only while the HSIT entry's
// publish version still equals the version it was admitted under. A
// mismatch means the entry is not current — either an in-flight
// admission that lost its race with a writer (published stale bytes for
// a few instructions before its own guard retracts them), or a value
// that GC / the scan rewrite relocated (bytes unchanged, version
// bumped). Either way the entry is retracted so the next Value Storage
// read re-admits under the current version. The check deliberately uses
// the version, not the forward pointer: recycled PWB/chunk offsets can
// make a stale pointer word bit-identical to the current one.
func (t *Thread) svcRead(idx uint64) ([]byte, bool) {
	s := t.s
	if s.cache == nil {
		return nil, false
	}
	h := s.table.LoadSVC(t.Clk, idx)
	if h == 0 {
		return nil, false
	}
	v, ver, ok := s.cache.Lookup(idx, h)
	if !ok {
		return nil, false
	}
	if s.table.Version(idx) != ver {
		if s.table.CasSVC(t.Clk, idx, h, 0) {
			s.cache.Invalidate(idx, h)
		}
		return nil, false
	}
	t.Clk.Advance(dramCost(len(v)))
	s.stats.svcHits.Add(1)
	return v, true
}

// resolve reads the value behind HSIT entry idx once. retry reports that
// the location changed mid-read (reclamation/GC migration) and the caller
// should re-resolve.
func (t *Thread) resolve(idx uint64, key []byte, admit bool) (val []byte, err error, retry bool) {
	s := t.s
	if v, ok := t.svcRead(idx); ok {
		return cloneBytes(v), nil, false
	}
	// The version snapshot must precede the pointer load: SVC admission
	// keeps the bytes only if the version is unchanged (and even) at
	// publish time, which certifies no write overlapped the read.
	ver := s.table.Version(idx)
	p := s.table.Load(t.Clk, idx)
	switch p.Media {
	case hsit.None:
		return nil, ErrNotFound, false
	case hsit.PWB:
		v := s.pwbOf(p.Off).ReadValue(t.Clk, p.Off, p.Len)
		if s.table.Load(nil, idx) != p {
			return nil, nil, true // superseded while reading
		}
		s.stats.pwbHits.Add(1)
		return v, nil, false
	case hsit.VS:
		devIdx, local := valuestore.SplitOff(p.Off)
		if !s.vsm.Stores[devIdx].IsValid(local) {
			return nil, nil, true // migrated before we read
		}
		data := s.readVS(t.Clk, p)
		backptr, v, ok := valuestore.DecodeRecord(data)
		if !ok || backptr != idx || len(v) != p.Len {
			return nil, nil, true // chunk recycled under us
		}
		if admit {
			t.admitToSVC(idx, ver, key, v)
		}
		return cloneBytes(v), nil, false
	}
	return nil, nil, true
}

// admitToSVC publishes a freshly read value in the cache (§4.4: admission
// only on Value Storage reads, lock-free HSIT publication). ver is the
// entry's publish version observed before the pointer load that the read
// resolved; admission is aborted if the entry has moved on since.
func (t *Thread) admitToSVC(idx uint64, ver uint64, key, value []byte) (handle uint64, admitted bool) {
	s := t.s
	if s.cache == nil || ver&1 != 0 {
		return 0, false
	}
	e := s.cache.Admit(idx, ver, key, value)
	if !s.table.CasSVC(t.Clk, idx, 0, e.Handle()) {
		s.cache.AbortAdmit(e)
		return 0, false
	}
	s.cache.Published(e)
	// Admission TOCTOU guard: a writer that superseded the value after
	// our read may have run its invalidateOld before the CAS above, seen
	// word1 == 0, and concluded there was nothing to unpublish — which
	// would leave these stale bytes cached forever. Re-checking the
	// publish version after publishing closes the window: whichever side
	// acts second is guaranteed to see the other's update. The version —
	// not the forward pointer — is what makes the guard sound: Value
	// Storage chunks and PWB ring slots are recycled without epoch grace,
	// so a superseded value of the same length can be rewritten at the
	// same offset and make the pointer word match a stale snapshot (the
	// releaseChunk coincidence is linearizable for an overlapping read,
	// but caching it would leak the stale bytes to later reads). A reader
	// that resolves the handle between the CAS and this retraction is
	// covered by svcRead's identical version check.
	if s.table.Version(idx) != ver {
		if s.table.CasSVC(t.Clk, idx, e.Handle(), 0) {
			s.cache.Invalidate(idx, e.Handle())
		}
		return 0, false
	}
	return e.Handle(), true
}

// Delete removes key. The HSIT entry is reclaimed after two epochs
// (§5.4: safe reclamation of deleted values and entries).
func (t *Thread) Delete(key []byte) error {
	s := t.s
	if s.closed.Load() {
		return ErrClosed
	}
	t.part.Enter()
	defer t.part.Exit()
	s.stats.deletes.Add(1)
	return t.deleteStep(key)
}

// deleteStep is one delete under the caller's epoch guard, shared by
// Delete and the async admission loop.
func (t *Thread) deleteStep(key []byte) error {
	s := t.s
	idx, ok := s.index.Delete(t.Clk, key)
	if !ok {
		return ErrNotFound
	}
	old := s.table.Clear(t.Clk, idx)
	t.invalidateOld(idx, old)
	s.table.Free(idx)
	return nil
}

// KV is one key-value pair yielded by Scan.
type KV struct {
	Key   []byte
	Value []byte
}

// Scan visits up to count pairs with key >= start in key order, calling
// fn for each until it returns false. Values resident only in Value
// Storage are fetched in merged, batched reads, and are admitted to the
// SVC chained together so that an eviction rewrites the whole range into
// one chunk (§4.4 scan acceleration).
func (t *Thread) Scan(start []byte, count int, fn func(kv KV) bool) error {
	s := t.s
	if s.closed.Load() {
		return ErrClosed
	}
	t.part.Enter()
	defer t.part.Exit()
	s.stats.scans.Add(1)
	t0 := t.Clk.Now()
	defer func() { s.latScan.Record(t.Clk.Now() - t0) }()

	var items []*scanItem
	s.index.Scan(t.Clk, start, count, func(key []byte, idx uint64) bool {
		items = append(items, &scanItem{key: cloneBytes(key), idx: idx})
		return true
	})

	// Resolve fast paths; collect Value Storage residents for batching.
	var pending []*scanItem
	for _, it := range items {
		if v, ok := t.svcRead(it.idx); ok {
			it.val = cloneBytes(v)
			continue
		}
		ver := s.table.Version(it.idx)
		p := s.table.Load(t.Clk, it.idx)
		switch p.Media {
		case hsit.PWB:
			v := s.pwbOf(p.Off).ReadValue(t.Clk, p.Off, p.Len)
			if s.table.Load(nil, it.idx) == p {
				s.stats.pwbHits.Add(1)
				it.val = v
				continue
			}
			it.val, _, _ = t.getOnce(it.idx, it.key)
		case hsit.VS:
			it.p = p
			it.ver = ver
			pending = append(pending, it)
		default:
			// Deleted between index scan and resolution: skip.
		}
	}
	t.readVSBatch(pending, true)

	for _, it := range items {
		if it.val == nil {
			continue
		}
		if !fn(KV{Key: it.key, Value: it.val}) {
			break
		}
	}
	return nil
}

// getOnce is the slow-path fallback for values that moved mid-scan.
func (t *Thread) getOnce(idx uint64, key []byte) ([]byte, error, bool) {
	for attempt := 0; attempt < 1000; attempt++ {
		v, err, retry := t.resolve(idx, key, false)
		if !retry {
			return v, err, false
		}
	}
	return nil, ErrNotFound, false
}

// scanItem tracks one key through scan resolution.
type scanItem struct {
	key []byte
	idx uint64
	val []byte
	p   hsit.Pointer // set when pending a Value Storage read
	ver uint64       // publish version observed before p was loaded
}

// mergeGap is the maximum gap (bytes) between two records on the same
// device that still coalesces them into one read IO.
const mergeGap = 4096

// readVSBatch fetches the pending items' records with merged extents:
// records adjacent on the same device (within mergeGap bytes) coalesce
// into one IO — this is why the SVC's sorted rewrite reduces scan IO.
// chain selects the scan-specific SVC eviction chaining (§4.4); MultiGet
// shares the merged-read machinery but its keys are not a key-ordered
// range, so chaining them would invite pointless rewrites.
func (t *Thread) readVSBatch(pending []*scanItem, chain bool) {
	if len(pending) == 0 {
		return
	}
	s := t.s

	type located struct {
		it    *scanItem
		dev   int
		off   uint64 // device-local record offset
		recSz int
	}
	locs := make([]located, 0, len(pending))
	for _, it := range pending {
		dev, local := valuestore.SplitOff(it.p.Off)
		locs = append(locs, located{it: it, dev: dev, off: local, recSz: valuestore.HeaderSize + it.p.Len})
	}
	sort.Slice(locs, func(a, b int) bool {
		if locs[a].dev != locs[b].dev {
			return locs[a].dev < locs[b].dev
		}
		return locs[a].off < locs[b].off
	})

	type extent struct {
		dev        int
		start, end uint64
		members    []located
	}
	var extents []*extent
	for _, l := range locs {
		if n := len(extents); n > 0 {
			e := extents[n-1]
			if e.dev == l.dev && l.off >= e.start && l.off <= e.end+mergeGap {
				if end := l.off + uint64(l.recSz); end > e.end {
					e.end = end
				}
				e.members = append(e.members, l)
				continue
			}
		}
		extents = append(extents, &extent{dev: l.dev, start: l.off, end: l.off + uint64(l.recSz), members: []located{l}})
	}

	// Submit one IO per extent through the batching scheme.
	for _, e := range extents {
		buf := make([]byte, e.end-e.start)
		r := ssd.Request{Op: ssd.OpRead, Offset: int64(e.start), Data: buf}
		var done int64
		if s.opt.DisableCombining {
			done = s.tas[e.dev].Read(t.Clk.Now(), r)
		} else {
			done = s.queues[e.dev].Read(t.Clk.Now(), r)
		}
		t.Clk.AdvanceTo(done)
		s.stats.vsReads.Add(1)
		for _, m := range e.members {
			rec := buf[m.off-e.start:]
			backptr, v, ok := valuestore.DecodeRecord(rec)
			if !ok || backptr != m.it.idx || len(v) != m.it.p.Len {
				// Moved mid-scan: fall back to an individual resolve. The
				// batched pointer is stale now, so the item is also
				// excluded from SVC admission below.
				m.it.val, _, _ = t.getOnce(m.it.idx, m.it.key)
				m.it.p = hsit.Pointer{}
				continue
			}
			m.it.val = cloneBytes(v)
		}
	}

	// Admit the batch to the SVC and chain it in key order (§4.4). A
	// range served by one merged extent is already contiguous on the
	// SSD — chaining it would only invite a pointless rewrite later.
	if s.cache != nil {
		var handles []uint64
		for _, it := range pending {
			if it.val == nil || it.p.IsNil() {
				continue
			}
			if h, ok := t.admitToSVC(it.idx, it.ver, it.key, it.val); ok {
				handles = append(handles, h)
			}
		}
		if chain && !s.opt.DisableScanSort && len(handles) >= 2 && len(extents) > 1 {
			s.cache.LinkChain(handles)
		}
	}
}
