package core

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

// Property: under a random op sequence (with crashes injected), the
// store always agrees with an in-memory reference model — every
// committed write is durable, every delete holds, reads never return
// stale or torn values.
//
// Batch operations are part of the mix, including crashes injected
// MID-batch via Store.batchStepHook. PutBatch's durability contract is
// prefix consistency: after recovery, exactly the entries before the
// crash point hold their new values and every later entry is untouched —
// never a suffix entry without its predecessors (hsit.Publish persists
// each forward pointer before the next entry appends).
func TestStoreMatchesModelWithCrashes(t *testing.T) {
	f := func(seed uint64) bool {
		s, err := Open(Options{
			NumThreads:        1,
			PWBBytesPerThread: 64 << 10,
			HSITCapacity:      1 << 12,
			NumSSDs:           1,
			SSDBytes:          4 << 20,
			ChunkSize:         16 << 10,
			SVCBytes:          32 << 10,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		th := s.Thread(0)
		rng := sim.NewRNG(seed)
		ref := map[string]string{}
		for i := 0; i < 1200; i++ {
			k := fmt.Sprintf("key%03d", rng.Intn(150))
			switch rng.Intn(15) {
			case 14:
				// Async burst, occasionally crashed mid-flight. A handle
				// that resolves nil is durable — its put hit the PWB
				// before Crash let the devices drop state — and one that
				// resolves ErrClosed was never applied; the model applies
				// exactly the nil-resolved prefix in submission order.
				n := 4 + rng.Intn(8)
				type sub struct {
					k, v string
					h    *Handle
				}
				subs := make([]sub, n)
				doCrash := rng.Intn(6) == 0
				for j := range subs {
					kk := fmt.Sprintf("key%03d", rng.Intn(150))
					vv := fmt.Sprintf("aval-%d-%d", i, j)
					subs[j] = sub{kk, vv, th.PutAsync([]byte(kk), []byte(vv))}
					if doCrash && j == n/2 {
						s.Crash()
					}
				}
				for _, sb := range subs {
					switch err := sb.h.Wait(); {
					case err == nil:
						ref[sb.k] = sb.v
					case doCrash && errors.Is(err, ErrClosed):
						// not applied
					default:
						t.Errorf("async put %q: %v", sb.k, err)
						return false
					}
				}
				if doCrash {
					if _, err := s.Recover(); err != nil {
						t.Errorf("recover mid-async: %v", err)
						return false
					}
					for _, sb := range subs {
						want, exists := ref[sb.k]
						got, gerr := th.Get([]byte(sb.k))
						if exists != (gerr == nil) {
							t.Errorf("post-crash async key %q: err=%v, model exists=%v", sb.k, gerr, exists)
							return false
						}
						if exists && string(got) != want {
							t.Errorf("post-crash async key %q = %q, model %q", sb.k, got, want)
							return false
						}
					}
				}
			case 12:
				// MultiGet agreement: nil iff the model lacks the key.
				keys := make([][]byte, 2+rng.Intn(6))
				for j := range keys {
					keys[j] = []byte(fmt.Sprintf("key%03d", rng.Intn(150)))
				}
				vals, err := th.MultiGet(keys)
				if err != nil {
					t.Errorf("multiget: %v", err)
					return false
				}
				for j, kk := range keys {
					want, exists := ref[string(kk)]
					if exists != (vals[j] != nil) {
						t.Errorf("multiget %q: got %v, model exists=%v", kk, vals[j], exists)
						return false
					}
					if exists && string(vals[j]) != want {
						t.Errorf("multiget %q = %q, model %q", kk, vals[j], want)
						return false
					}
				}
			case 13:
				// PutBatch, occasionally crashed mid-batch. The hook
				// fires after entry `step` has been applied, so a crash
				// at step c commits exactly entries 0..c.
				n := 2 + rng.Intn(5)
				kvs := make([]KV, n)
				for j := range kvs {
					kvs[j] = KV{
						Key:   []byte(fmt.Sprintf("key%03d", rng.Intn(150))),
						Value: []byte(fmt.Sprintf("bval-%d-%d", i, j)),
					}
				}
				crashAt := -1
				if rng.Intn(6) == 0 {
					crashAt = rng.Intn(n)
					s.batchStepHook = func(step int) {
						if step == crashAt {
							s.Crash()
						}
					}
				}
				err := th.PutBatch(kvs)
				s.batchStepHook = nil
				applied := n
				switch {
				case err == nil:
					// Full application — a crash at the last step still
					// commits everything.
				case crashAt >= 0 && errors.Is(err, ErrClosed):
					applied = crashAt + 1
				default:
					t.Errorf("putbatch: %v", err)
					return false
				}
				for j := 0; j < applied; j++ {
					ref[string(kvs[j].Key)] = string(kvs[j].Value)
				}
				if crashAt >= 0 {
					if _, err := s.Recover(); err != nil {
						t.Errorf("recover mid-batch: %v", err)
						return false
					}
					// Prefix consistency: after recovery every batch key
					// agrees with the model that applied exactly the
					// prefix — suffix entries must hold their pre-batch
					// values (or stay missing), never the new ones.
					for _, kv := range kvs {
						want, exists := ref[string(kv.Key)]
						got, gerr := th.Get(kv.Key)
						if exists != (gerr == nil) {
							t.Errorf("post-crash batch key %q: err=%v, model exists=%v", kv.Key, gerr, exists)
							return false
						}
						if exists && string(got) != want {
							t.Errorf("post-crash batch key %q = %q, model %q", kv.Key, got, want)
							return false
						}
					}
				}
			case 0:
				if err := th.Delete([]byte(k)); err == nil {
					delete(ref, k)
				} else if _, exists := ref[k]; exists {
					t.Errorf("delete of existing %q failed: %v", k, err)
					return false
				}
			case 1, 2, 3:
				got, err := th.Get([]byte(k))
				want, exists := ref[k]
				if exists != (err == nil) {
					t.Errorf("get %q: err=%v, model exists=%v", k, err, exists)
					return false
				}
				if exists && string(got) != want {
					t.Errorf("get %q = %q, model %q", k, got, want)
					return false
				}
			case 4:
				if i%97 == 0 { // occasional crash+recover
					s.Crash()
					if _, err := s.Recover(); err != nil {
						t.Errorf("recover: %v", err)
						return false
					}
				}
			default:
				v := fmt.Sprintf("val-%d-%d", i, rng.Uint64()%1000)
				if err := th.Put([]byte(k), []byte(v)); err != nil {
					t.Errorf("put: %v", err)
					return false
				}
				ref[k] = v
			}
		}
		// Final full agreement, including scan order.
		if s.Len() != len(ref) {
			t.Errorf("Len %d != model %d", s.Len(), len(ref))
			return false
		}
		seen := 0
		ok := true
		th.Scan(nil, 0, func(kv KV) bool {
			want, exists := ref[string(kv.Key)]
			if !exists || want != string(kv.Value) {
				ok = false
				return false
			}
			seen++
			return true
		})
		return ok && seen == len(ref)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Fatal(err)
	}
}

// Property: concurrent per-thread key ownership — each thread's final
// writes are exactly what it reads back, across enough volume to force
// reclamation and GC.
func TestConcurrentOwnershipProperty(t *testing.T) {
	s := small(t, func(o *Options) {
		o.NumThreads = 4
		o.SSDBytes = 8 << 20
	})
	const per = 1500
	var wg sync.WaitGroup
	finals := make([]map[int]int, 4)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			th := s.Thread(w)
			rng := sim.NewRNG(uint64(w) + 99)
			final := map[int]int{}
			for i := 0; i < per; i++ {
				k := rng.Intn(200)
				v := i
				if err := th.Put([]byte(fmt.Sprintf("own%d-%04d", w, k)), []byte(fmt.Sprintf("v%06d", v))); err != nil {
					t.Errorf("put: %v", err)
					return
				}
				final[k] = v
			}
			finals[w] = final
		}(w)
	}
	wg.Wait()
	for w := 0; w < 4; w++ {
		th := s.Thread(w)
		for k, v := range finals[w] {
			got, err := th.Get([]byte(fmt.Sprintf("own%d-%04d", w, k)))
			if err != nil || !bytes.Equal(got, []byte(fmt.Sprintf("v%06d", v))) {
				t.Fatalf("thread %d key %d: %q, %v", w, k, got, err)
			}
		}
	}
	// And the whole store passes the invariant checker.
	settle(s)
	if rep := s.CheckInvariants(); !rep.OK() {
		t.Fatalf("invariants violated: %v", rep.Problems)
	}
}

// Deletes of missing keys and empty-value writes behave sanely.
func TestEdgeValues(t *testing.T) {
	s := small(t, nil)
	th := s.Thread(0)
	if err := th.Put([]byte("empty"), nil); err != nil {
		t.Fatalf("nil value rejected: %v", err)
	}
	got, err := th.Get([]byte("empty"))
	if err != nil || len(got) != 0 {
		t.Fatalf("empty value round trip: %q, %v", got, err)
	}
	if err := th.Put([]byte("k"), make([]byte, 0)); err != nil {
		t.Fatal(err)
	}
	if err := th.Delete([]byte("never-existed")); !errors.Is(err, ErrNotFound) {
		t.Fatalf("delete missing: %v", err)
	}
	// Large (but legal) value.
	big := make([]byte, 8192)
	for i := range big {
		big[i] = byte(i)
	}
	if err := th.Put([]byte("big"), big); err != nil {
		t.Fatal(err)
	}
	got, err = th.Get([]byte("big"))
	if err != nil || !bytes.Equal(got, big) {
		t.Fatalf("big value round trip failed: len=%d err=%v", len(got), err)
	}
}
