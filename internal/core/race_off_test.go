//go:build !race

package core

// raceEnabled reports whether the test binary was built with -race; see
// skipIfKnownRaceFlake.
const raceEnabled = false
