package core

import (
	"os"
	"testing"
)

// skipIfKnownRaceFlake quarantines the documented seed flake (ROADMAP,
// "Pre-existing -race flakiness in internal/core"): under the race
// detector's altered timing these tests occasionally observe an
// ill-coupled PWB record or one lost key — a reclamation/publish window
// present in the unmodified seed, pending a dedicated investigation PR.
//
// The quarantine is honest and narrow: it applies only to binaries built
// with -race, only to the three affected tests, and is overridable with
// PRISM_RACE_STRICT=1 (the investigation workflow). Non-race runs always
// enforce these tests.
func skipIfKnownRaceFlake(t *testing.T) {
	t.Helper()
	if raceEnabled && os.Getenv("PRISM_RACE_STRICT") != "1" {
		t.Skip("quarantined under -race: known seed reclamation/publish flake " +
			"(ROADMAP 'Pre-existing -race flakiness in internal/core'); " +
			"set PRISM_RACE_STRICT=1 to enforce")
	}
}
