package core

// Range export and purge hooks for the sharding router's online range
// migration (internal/shard/migrate.go). Migration streams a key range
// from its source shards to a destination over the async pipeline using
// the same pull machinery as anti-entropy repair: enumerate stamped
// records with ReplicaEntriesRange, read values through the normal read
// path, apply with PutTSAsync/DeleteTSAsync, and finally purge the
// source's copy of the range with DropRange once the placement epoch has
// flipped and the dual-read window has drained.

import "bytes"

// inRange reports lo <= key < hi; a nil bound is unbounded on that side.
func inRange(key, lo, hi []byte) bool {
	if lo != nil && bytes.Compare(key, lo) < 0 {
		return false
	}
	if hi != nil && bytes.Compare(key, hi) >= 0 {
		return false
	}
	return true
}

// ReplicaEntriesRange is ReplicaEntries restricted to lo <= key < hi
// (nil bounds are unbounded). Like ReplicaEntries it iterates a
// snapshot, so fn may call back into the store. Requires TrackTimestamps.
func (s *Store) ReplicaEntriesRange(lo, hi []byte, fn func(key []byte, ts uint64, tombstone bool) bool) {
	s.ReplicaEntries(func(key []byte, ts uint64, tomb bool) bool {
		if !inRange(key, lo, hi) {
			return true
		}
		return fn(key, ts, tomb)
	})
}

// SampleKeys returns up to max live keys in key order, strided evenly
// across the ordered key index — the boundary-learning input for
// split-key selection (shard.SelectSplitKeys). max <= 0 returns every
// key. Keys are safe to retain.
func (s *Store) SampleKeys(max int) [][]byte {
	if s.closed.Load() {
		return nil
	}
	s.mntMu.Lock()
	defer s.mntMu.Unlock()
	t := s.mnt
	n := s.index.Len()
	stride := 1
	if max > 0 && n > max {
		stride = (n + max - 1) / max
	}
	var keys [][]byte
	i := 0
	t.part.Enter()
	s.index.Scan(t.Clk, nil, 0, func(key []byte, _ uint64) bool {
		if i%stride == 0 {
			keys = append(keys, cloneBytes(key))
		}
		i++
		return true
	})
	t.part.Exit()
	return keys
}

// DropRange physically deletes every live key in [lo, hi) (nil bounds
// unbounded) and forgets the range's stamp records, live and tombstone
// alike. It is the migration purge: after the placement epoch flips, the
// source shards no longer own the range, so their copies — and their
// stamps, which would otherwise shadow the destination during a future
// migration back — are garbage. Runs on the store's dedicated
// maintenance thread, so it is safe concurrently with foreground and
// async work on other Thread handles. Returns the number of live keys
// removed; a closed store drops nothing (the leftover copies are benign:
// routing no longer reaches them).
func (s *Store) DropRange(lo, hi []byte) int {
	if s.closed.Load() {
		return 0
	}
	s.mntMu.Lock()
	defer s.mntMu.Unlock()
	t := s.mnt

	var keys [][]byte
	t.part.Enter()
	s.index.Scan(t.Clk, lo, 0, func(key []byte, _ uint64) bool {
		if hi != nil && bytes.Compare(key, hi) >= 0 {
			return false
		}
		keys = append(keys, cloneBytes(key))
		return true
	})
	t.part.Exit()

	n := 0
	for _, k := range keys {
		if s.closed.Load() {
			break
		}
		t.part.Enter()
		err := t.deleteStep(k)
		t.part.Exit()
		if err == nil {
			n++
		}
	}

	if r := s.repl; r != nil {
		r.mu.Lock()
		for k := range r.live {
			if inRange([]byte(k), lo, hi) {
				delete(r.live, k)
			}
		}
		for k := range r.tomb {
			if inRange([]byte(k), lo, hi) {
				delete(r.tomb, k)
			}
		}
		r.mu.Unlock()
	}
	return n
}
