package core

import (
	"errors"
	"sync"

	"repro/internal/hsit"
	"repro/internal/sim"
	"repro/internal/svc"
	"repro/internal/valuestore"
)

// RecoveryReport summarizes a recovery pass (§5.5, §7.6 recovery time).
type RecoveryReport struct {
	LiveKeys          int
	LostKeys          int   // index entries whose durable value was unreachable
	PWBValuesDrained  int   // live PWB values migrated to Value Storage
	VSValuesRecovered int   // validity bits rebuilt from HSIT
	VirtualNS         int64 // modeled recovery time (max over parallel workers)
}

// Crash simulates a power failure: background work stops, every device
// loses its volatile/in-flight state, and all DRAM-resident structures
// become untrustworthy. Call Recover before using the store again.
//
// The key index object survives in-process because the paper's index
// (PACTree) guarantees its own crash consistency on NVM (§5.5); this
// simulation keeps that contract by treating the index as already
// recovered.
func (s *Store) Crash() {
	if !s.closed.Swap(true) {
		// Join the admission loops before the devices lose state: a window
		// in flight completes its handles (with ErrClosed from here on),
		// then the loop exits.
		for _, t := range s.threads {
			t.async.stop()
		}
		close(s.stop)
		s.bg.Wait()
	}
	if s.cache != nil {
		s.cache.Close()
		s.cache = nil
	}
	// Pending epoch retirements (free-list pushes, ring releases) are
	// volatile deferred work: a real crash loses them, and recovery
	// rebuilds their effects from durable state. Letting one fire after
	// recovery would double-apply it — e.g., double-free an HSIT slot
	// that RebuildVolatile already reissued.
	s.em.DiscardRetired()
	s.nvmDev.Crash()
	for _, d := range s.ssds {
		d.Crash()
	}
}

// Recover rebuilds all volatile state from the durable media (§5.5):
//
//  1. Scan the Persistent Key Index for reachable HSIT entries
//     (partitioned across workers, as the paper recovers "concurrently
//     for randomly partitioned key ranges").
//  2. For each reachable entry, validate forward/backward coupling. PWB
//     values are drained into Value Storage; VS values rebuild the
//     per-chunk validity bitmaps; SVC pointers are nullified.
//  3. Unreachable HSIT entries return to the free list; PWB rings reset;
//     background threads restart.
func (s *Store) Recover() (RecoveryReport, error) {
	if !s.closed.Load() {
		return RecoveryReport{}, errors.New("prism: Recover on a running store")
	}
	var rep RecoveryReport

	// Phase 1: collect (key, idx) pairs from the index.
	scanClk := sim.NewClock(0)
	type pair struct {
		key []byte
		idx uint64
	}
	var pairs []pair
	s.index.Scan(scanClk, nil, 0, func(key []byte, idx uint64) bool {
		pairs = append(pairs, pair{key: cloneBytes(key), idx: idx})
		return true
	})

	// Phase 2: validate couplings in parallel partitions.
	s.vsm.BeginRecovery()
	workers := len(s.threads)
	if workers > len(pairs) && len(pairs) > 0 {
		workers = len(pairs)
	}
	if workers == 0 {
		workers = 1
	}
	reachable := make([]map[uint64]bool, workers)
	lost := make([][]pair, workers)
	type pwbLive struct {
		idx uint64
		p   hsit.Pointer
		val []byte
	}
	pwbVals := make([][]pwbLive, workers)
	clocks := make([]*sim.Clock, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			clk := sim.NewClock(scanClk.Now())
			clocks[w] = clk
			reach := make(map[uint64]bool)
			for i := w; i < len(pairs); i += workers {
				pr := pairs[i]
				p := s.table.Load(clk, pr.idx)
				switch p.Media {
				case hsit.PWB:
					backptr, vlen, ok := s.pwbOf(p.Off).ReadHeader(clk, p.Off)
					if !ok || backptr != pr.idx || vlen != p.Len {
						lost[w] = append(lost[w], pr) // ill-coupled
						continue
					}
					val := s.pwbOf(p.Off).ReadValue(clk, p.Off, p.Len)
					pwbVals[w] = append(pwbVals[w], pwbLive{idx: pr.idx, p: p, val: val})
					reach[pr.idx] = true
				case hsit.VS:
					s.vsm.MarkRecovered(p.Off, p.Len)
					reach[pr.idx] = true
				default:
					lost[w] = append(lost[w], pr)
				}
			}
			reachable[w] = reach
		}(w)
	}
	wg.Wait()

	allReach := make(map[uint64]bool)
	for w := 0; w < workers; w++ {
		for idx := range reachable[w] {
			allReach[idx] = true
		}
		for _, pr := range lost[w] {
			s.index.Delete(nil, pr.key)
			if s.repl != nil {
				// Forget the lost value's stamp too, so anti-entropy
				// re-pulls it from a peer instead of the stale stamp
				// making this replica refuse its own missing value.
				s.repl.dropLive(string(pr.key))
			}
			rep.LostKeys++
		}
		if clocks[w].Now() > rep.VirtualNS {
			rep.VirtualNS = clocks[w].Now()
		}
	}

	// Rebuild the free-chunk lists before draining: every chunk that
	// recovered no live record is writable again.
	s.vsm.FinishRecovery()

	// Phase 3: drain live PWB values into Value Storage so the rings can
	// reset (their volatile cursors are unknown after the crash).
	drainClk := sim.NewClock(rep.VirtualNS)
	rng := sim.NewRNG(s.opt.Seed ^ 0x5ec0)
	var drain []pwbLive
	for w := 0; w < workers; w++ {
		drain = append(drain, pwbVals[w]...)
	}
	i := 0
	for i < len(drain) {
		devIdx, st := s.vsm.PickIdle(rng)
		w, err := st.NewWriter()
		if err != nil {
			w, devIdx, st = s.anyWriter(drainClk.Now())
			if w == nil {
				return rep, errors.New("prism: no Value Storage space during recovery")
			}
		}
		var batch []pwbLive
		for i < len(drain) && w.Room(len(drain[i].val)) {
			w.Add(drain[i].idx, drain[i].val)
			batch = append(batch, drain[i])
			i++
		}
		done, entries := w.Commit(drainClk.Now())
		drainClk.AdvanceTo(done)
		for j, e := range entries {
			newp := hsit.Pointer{Media: hsit.VS, Len: e.ValueLen, Off: valuestore.GlobalOff(devIdx, e.LocalOff)}
			if s.table.PublishIf(drainClk, e.HSITIdx, batch[j].p, newp) {
				// First landing of this user value on an SSD (it only ever
				// lived in the PWB before the crash): per-device WAF credit.
				st.AttributeUserBytes(int64(e.ValueLen))
			} else {
				st.Invalidate(e.LocalOff, e.ValueLen)
			}
		}
		rep.PWBValuesDrained += len(entries)
	}
	for _, b := range s.pwbs {
		b.Reset()
	}

	// Phase 4: rebuild volatile tables and restart background work.
	rep.LiveKeys = s.table.RebuildVolatile(func(idx uint64) bool { return allReach[idx] }, uint64(s.table.Capacity()))
	rep.VSValuesRecovered = rep.LiveKeys - rep.PWBValuesDrained

	// Heat state is DRAM-resident and died with the crash: every key
	// restarts cold (placement already made persists in Value Storage).
	if s.heat != nil {
		s.heat = newHeatTracker(s.opt.HSITCapacity)
	}
	if !s.opt.DisableSVC {
		cfg := svc.Config{
			CapacityBytes: s.opt.SVCBytes,
			Unpublish: func(idx, handle uint64) bool {
				return s.table.CasSVC(nil, idx, handle, 0)
			},
		}
		if !s.opt.DisableScanSort {
			cfg.OnScanEvict = s.onScanEvict
		}
		if s.heat != nil {
			cfg.OnPromote = s.heat.Touch
		}
		s.cache = svc.New(cfg)
	}
	s.stop = make(chan struct{})
	s.bg.Add(2 + len(s.threads))
	for i := range s.threads {
		go s.reclaimLoop(i)
	}
	go s.gcLoop()
	go s.maintenanceLoop()
	for _, t := range s.threads {
		t.async.reset()
	}
	s.closed.Store(false)
	rep.VirtualNS = drainClk.Now()
	s.stats.recoveredValues.Add(int64(rep.LiveKeys))
	return rep, nil
}
