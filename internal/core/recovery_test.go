package core

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"repro/internal/hsit"
)

func TestCrashRecoveryPreservesAllData(t *testing.T) {
	s := small(t, nil)
	th := s.Thread(0)
	const n = 3000 // forces a mix of PWB-resident and VS-resident values
	for i := 0; i < n; i++ {
		if err := th.Put(key(i), value(i)); err != nil {
			t.Fatal(err)
		}
	}
	s.Crash()
	rep, err := s.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if rep.LiveKeys != n {
		t.Fatalf("recovered %d keys, want %d (lost %d)", rep.LiveKeys, n, rep.LostKeys)
	}
	if rep.LostKeys != 0 {
		t.Fatalf("lost %d committed keys", rep.LostKeys)
	}
	if rep.VirtualNS <= 0 {
		t.Fatal("recovery charged no virtual time")
	}
	for i := 0; i < n; i++ {
		got, err := th.Get(key(i))
		if err != nil || !bytes.Equal(got, value(i)) {
			t.Fatalf("key %d after recovery: %q, %v", i, got, err)
		}
	}
}

func TestCrashRecoveryLatestVersionWins(t *testing.T) {
	s := small(t, nil)
	th := s.Thread(0)
	for i := 0; i < 500; i++ {
		th.Put(key(i%50), value(i))
	}
	want := map[int][]byte{}
	for i := 450; i < 500; i++ {
		want[i%50] = value(i)
	}
	s.Crash()
	if _, err := s.Recover(); err != nil {
		t.Fatal(err)
	}
	for k, v := range want {
		got, err := th.Get(key(k))
		if err != nil || !bytes.Equal(got, v) {
			t.Fatalf("key %d: %q, %v", k, got, err)
		}
	}
}

func TestCrashRecoveryAfterDeletes(t *testing.T) {
	s := small(t, nil)
	th := s.Thread(0)
	for i := 0; i < 200; i++ {
		th.Put(key(i), value(i))
	}
	for i := 0; i < 200; i += 2 {
		th.Delete(key(i))
	}
	s.Crash()
	rep, err := s.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if rep.LiveKeys != 100 {
		t.Fatalf("live = %d, want 100", rep.LiveKeys)
	}
	for i := 0; i < 200; i++ {
		got, err := th.Get(key(i))
		if i%2 == 0 {
			if !errors.Is(err, ErrNotFound) {
				t.Fatalf("deleted key %d resurrected: %q, %v", i, got, err)
			}
		} else if err != nil || !bytes.Equal(got, value(i)) {
			t.Fatalf("surviving key %d: %q, %v", i, got, err)
		}
	}
}

func TestStoreUsableAfterRecovery(t *testing.T) {
	s := small(t, nil)
	th := s.Thread(0)
	for i := 0; i < 300; i++ {
		th.Put(key(i), value(i))
	}
	s.Crash()
	if _, err := s.Recover(); err != nil {
		t.Fatal(err)
	}
	// Full read/write/scan cycle must work after recovery, including
	// enough writes to force reclamation into the recovered Value
	// Storage state.
	for i := 300; i < 2500; i++ {
		if err := th.Put(key(i), value(i)); err != nil {
			t.Fatalf("post-recovery put %d: %v", i, err)
		}
	}
	for i := 0; i < 2500; i += 17 {
		got, err := th.Get(key(i))
		if err != nil || !bytes.Equal(got, value(i)) {
			t.Fatalf("post-recovery get %d: %q, %v", i, got, err)
		}
	}
	cnt := 0
	th.Scan(key(100), 50, func(kv KV) bool { cnt++; return true })
	if cnt != 50 {
		t.Fatalf("post-recovery scan visited %d", cnt)
	}
}

func TestDoubleCrashRecovery(t *testing.T) {
	s := small(t, nil)
	th := s.Thread(0)
	for i := 0; i < 1000; i++ {
		th.Put(key(i), value(i))
	}
	s.Crash()
	if _, err := s.Recover(); err != nil {
		t.Fatal(err)
	}
	for i := 1000; i < 1500; i++ {
		th.Put(key(i), value(i))
	}
	s.Crash()
	rep, err := s.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if rep.LiveKeys != 1500 {
		t.Fatalf("second recovery: %d live", rep.LiveKeys)
	}
	for i := 0; i < 1500; i += 11 {
		got, err := th.Get(key(i))
		if err != nil || !bytes.Equal(got, value(i)) {
			t.Fatalf("key %d after double crash: %q, %v", i, got, err)
		}
	}
}

// An unflushed HSIT update must roll back to the previous durable value
// — the §5.4 dirty-bit protocol end to end. We simulate a writer that
// crashed between its pointer CAS and its flush by writing the dirty
// word directly.
func TestTornPointerUpdateRollsBack(t *testing.T) {
	s := small(t, nil)
	th := s.Thread(0)
	th.Put(key(1), []byte("durable-v1"))
	idx, ok := s.index.Lookup(nil, []byte(string(key(1))))
	if !ok {
		t.Fatal("index lookup failed")
	}
	// Fabricate an unpersisted dirty update: valid PWB record, pointer
	// CASed but never flushed.
	off, _, err := s.pwbs[0].Append(nil, idx, []byte("torn-v2000"))
	if err != nil {
		t.Fatal(err)
	}
	p := hsit.Pointer{Media: hsit.PWB, Len: 10, Off: off}
	s.nvmDev.StoreUint64(nil, int(idx)*hsit.EntrySize, hsit.Encode(p)|uint64(1)<<61)

	s.Crash()
	if _, err := s.Recover(); err != nil {
		t.Fatal(err)
	}
	got, err := th.Get(key(1))
	if err != nil || string(got) != "durable-v1" {
		t.Fatalf("torn update did not roll back: %q, %v", got, err)
	}
}

func TestRecoverOnRunningStoreFails(t *testing.T) {
	s := small(t, nil)
	if _, err := s.Recover(); err == nil {
		t.Fatal("Recover on running store succeeded")
	}
}

func TestRecoveryReportsMediaBreakdown(t *testing.T) {
	s := small(t, nil)
	th := s.Thread(0)
	const n = 2500
	for i := 0; i < n; i++ {
		th.Put(key(i), value(i))
	}
	s.Crash()
	rep, err := s.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if rep.PWBValuesDrained+rep.VSValuesRecovered != rep.LiveKeys {
		t.Fatalf("breakdown inconsistent: %+v", rep)
	}
	if rep.PWBValuesDrained == 0 {
		t.Log("note: no values were PWB-resident at crash")
	}
	if rep.VSValuesRecovered == 0 {
		t.Fatalf("expected VS-resident values with %d writes: %+v", n, rep)
	}
}

func TestRecoveryWithManyThreads(t *testing.T) {
	s := small(t, func(o *Options) { o.NumThreads = 4 })
	var keys [][]byte
	for w := 0; w < 4; w++ {
		th := s.Thread(w)
		for i := 0; i < 400; i++ {
			k := []byte(fmt.Sprintf("w%d-%05d", w, i))
			if err := th.Put(k, value(i)); err != nil {
				t.Fatal(err)
			}
			keys = append(keys, k)
		}
	}
	s.Crash()
	rep, err := s.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if rep.LiveKeys != len(keys) {
		t.Fatalf("recovered %d of %d", rep.LiveKeys, len(keys))
	}
	th := s.Thread(0)
	for _, k := range keys {
		if _, err := th.Get(k); err != nil {
			t.Fatalf("key %s lost: %v", k, err)
		}
	}
}
