package core

import (
	"errors"
	"fmt"
	"runtime"
	"sync"

	"repro/internal/hsit"
)

// Replication groundwork: per-key logical timestamps (the
// creiht/valuestore idiom — every write carries a monotonically
// increasing stamp, deletes are tombstones carrying a stamp, and
// last-writer-wins reconciliation makes replica repair idempotent).
//
// The store itself neither assigns stamps nor talks to peers; the shard
// router does both. When Options.TrackTimestamps is set the store keeps
// a newest-stamp map alongside the Persistent Key Index — modeled, like
// the index, as NVM-resident state that survives Crash in-process — and
// exposes the TS write variants plus the enumeration hooks an
// anti-entropy pass needs (ReplicaEntries, ReplicaNewest,
// DiscardTombstones). With TrackTimestamps unset nothing below is
// allocated and every TS variant with stamp 0 degrades to its plain
// counterpart, so the single-replica path is untouched.

// errNoTimestamps rejects TS mutations on a store opened without
// Options.TrackTimestamps.
var errNoTimestamps = errors.New("prism: timestamped writes require Options.TrackTimestamps")

// replState is the newest-stamp map: for each key, at most one of live
// (a stored value) or tomb (a deletion) holds the newest stamp observed.
// A coarse RWMutex guards the maps; 64 stripe locks serialize
// check-then-apply sequences per key so two concurrent timestamped
// writes cannot apply out of stamp order (map says ts2 but the stored
// value is ts1's).
//
// Lock order: PWB execMu → epoch section → stripe → mu. The stripe is
// only ever taken inside an epoch section (putStepTS/deleteStepTS run
// under the caller's Enter), and mu is a leaf.
type replState struct {
	stripes [64]sync.Mutex
	mu      sync.RWMutex
	live    map[string]uint64
	tomb    map[string]uint64
}

func newReplState() *replState {
	return &replState{
		live: make(map[string]uint64),
		tomb: make(map[string]uint64),
	}
}

// stripe returns the per-key write-sequencing lock.
func (r *replState) stripe(key []byte) *sync.Mutex {
	h := uint64(14695981039346656037)
	for _, b := range key {
		h ^= uint64(b)
		h *= 1099511628211
	}
	return &r.stripes[h&63]
}

// newest returns the newest stamp recorded for key and whether it is a
// tombstone. Zero means no record.
func (r *replState) newest(key string) (ts uint64, tomb bool) {
	r.mu.RLock()
	lv := r.live[key]
	tv := r.tomb[key]
	r.mu.RUnlock()
	if tv > lv {
		return tv, true
	}
	return lv, false
}

func (r *replState) setLive(key string, ts uint64) {
	r.mu.Lock()
	r.live[key] = ts
	delete(r.tomb, key)
	r.mu.Unlock()
}

func (r *replState) setTomb(key string, ts uint64) {
	r.mu.Lock()
	r.tomb[key] = ts
	delete(r.live, key)
	r.mu.Unlock()
}

// dropLive forgets the live stamp for a key whose value did not survive
// recovery (a lost forward/backward pair). The next anti-entropy pull
// sees the peer's newer stamp and re-replicates it; keeping the stale
// stamp would make the repaired store refuse its own missing value.
func (r *replState) dropLive(key string) {
	r.mu.Lock()
	delete(r.live, key)
	r.mu.Unlock()
}

// PutTS is Put carrying a logical timestamp: the write applies only if
// ts is newer than every stamp already recorded for key (last writer
// wins; a superseded write returns nil — it is not an error for a
// replica to already hold something newer). ts must be nonzero on a
// TrackTimestamps store; ts 0 degrades to plain Put. Same durability and
// concurrency contract as Put.
func (t *Thread) PutTS(key, value []byte, ts uint64) error {
	s := t.s
	if s.repl == nil || ts == 0 {
		return t.Put(key, value)
	}
	if s.closed.Load() {
		return ErrClosed
	}
	if len(value) > hsit.MaxValueLen {
		return fmt.Errorf("prism: value of %d bytes exceeds max %d", len(value), hsit.MaxValueLen)
	}
	s.stats.puts.Add(1)
	s.stats.userBytesWritten.Add(int64(len(value)))
	t0 := t.Clk.Now()
	defer func() { s.latPut.Record(t.Clk.Now() - t0) }()
	for attempt := 0; attempt < 1_000_000; attempt++ {
		t.async.execMu.Lock()
		err := t.putOnceTS(key, value, ts)
		t.async.execMu.Unlock()
		if err != errRetryPut {
			if err == nil {
				t.maybeKickReclaim()
			}
			return err
		}
		s.em.Collect()
		runtime.Gosched()
		t.Clk.AdvanceTo(s.reclaimStall[t.id].Load())
	}
	return errors.New("prism: PWB reclamation stalled")
}

func (t *Thread) putOnceTS(key, value []byte, ts uint64) error {
	t.part.Enter()
	defer t.part.Exit()
	return t.putStepTS(key, value, ts, true)
}

// putStepTS is putStep gated by the newest-stamp map. Caller holds the
// epoch section (and, on the sync path, execMu). The stripe is held
// across the stamp check, the write, and the map update, so concurrent
// writers to one key apply in stamp order.
func (t *Thread) putStepTS(key, value []byte, ts uint64, clearPending bool) error {
	r := t.s.repl
	if r == nil || ts == 0 {
		return t.putStep(key, value, clearPending)
	}
	st := r.stripe(key)
	st.Lock()
	defer st.Unlock()
	if cur, _ := r.newest(string(key)); cur >= ts {
		return nil // superseded: a write or tombstone at least as new already applied
	}
	if err := t.putStep(key, value, clearPending); err != nil {
		return err
	}
	r.setLive(string(key), ts)
	return nil
}

// DeleteTS is Delete carrying a logical timestamp. It always records the
// tombstone when ts is newest — even for a key this replica never held —
// so a divergent peer's stale value cannot resurrect through it. found
// reports whether a live value was actually removed here; a superseded
// delete returns (false, nil).
func (t *Thread) DeleteTS(key []byte, ts uint64) (found bool, err error) {
	s := t.s
	if s.repl == nil {
		return false, errNoTimestamps
	}
	if ts == 0 {
		err := t.Delete(key)
		if err == ErrNotFound {
			return false, nil
		}
		return err == nil, err
	}
	if s.closed.Load() {
		return false, ErrClosed
	}
	s.stats.deletes.Add(1)
	t.part.Enter()
	defer t.part.Exit()
	return t.deleteStepTS(key, ts)
}

// deleteStepTS applies one timestamped tombstone under the caller's
// epoch section.
func (t *Thread) deleteStepTS(key []byte, ts uint64) (found bool, err error) {
	r := t.s.repl
	st := r.stripe(key)
	st.Lock()
	defer st.Unlock()
	if cur, _ := r.newest(string(key)); cur >= ts {
		return false, nil
	}
	derr := t.deleteStep(key) // ErrNotFound is fine: tombstone still recorded
	if derr != nil && derr != ErrNotFound {
		return false, derr
	}
	r.setTomb(string(key), ts)
	return derr == nil, nil
}

// PutBatchTS is PutBatch with one stamp per entry: the routed replica
// fan-out's write path, keeping the one-epoch-enter/one-publish-window
// amortization while each entry individually obeys last-writer-wins.
func (t *Thread) PutBatchTS(kvs []KV, tss []uint64) error {
	s := t.s
	if s.repl == nil {
		return errNoTimestamps
	}
	if len(kvs) == 0 {
		return nil
	}
	if len(tss) != len(kvs) {
		return errors.New("prism: PutBatchTS stamp count mismatch")
	}
	if s.closed.Load() {
		return ErrClosed
	}
	for i, kv := range kvs {
		if len(kv.Value) > hsit.MaxValueLen {
			return fmt.Errorf("prism: batch entry %d: value of %d bytes exceeds max %d",
				i, len(kv.Value), hsit.MaxValueLen)
		}
		s.stats.userBytesWritten.Add(int64(len(kv.Value)))
	}
	s.stats.puts.Add(int64(len(kvs)))
	s.stats.batchPuts.Add(1)
	s.batchSizePut.Record(int64(len(kvs)))
	done := 0
	for attempt := 0; attempt < 1_000_000; attempt++ {
		t.async.execMu.Lock()
		n, err := t.putBatchEpochTS(kvs[done:], tss[done:])
		t.async.execMu.Unlock()
		done += n
		if err != errRetryPut {
			if err == nil {
				t.maybeKickReclaim()
			}
			return err
		}
		s.em.Collect()
		runtime.Gosched()
		t.Clk.AdvanceTo(s.reclaimStall[t.id].Load())
	}
	return errors.New("prism: PWB reclamation stalled")
}

// putBatchEpochTS mirrors putBatchEpoch with per-entry stamp gating.
func (t *Thread) putBatchEpochTS(kvs []KV, tss []uint64) (int, error) {
	s := t.s
	t.part.Enter()
	defer func() {
		t.buf.Published()
		t.part.Exit()
	}()
	for i := range kvs {
		if s.closed.Load() {
			return i, ErrClosed
		}
		if err := t.putStepTS(kvs[i].Key, kvs[i].Value, tss[i], false); err != nil {
			return i, err
		}
		if s.batchStepHook != nil {
			s.batchStepHook(i)
		}
	}
	return len(kvs), nil
}

// PutTSAsync is PutAsync carrying a logical timestamp; the admission
// loop applies it through the same last-writer-wins gate as PutTS.
func (t *Thread) PutTSAsync(key, value []byte, ts uint64) *Handle {
	s := t.s
	if s.closed.Load() {
		return completedHandle(ErrClosed)
	}
	if len(value) > hsit.MaxValueLen {
		return completedHandle(fmt.Errorf("prism: value of %d bytes exceeds max %d", len(value), hsit.MaxValueLen))
	}
	s.stats.puts.Add(1)
	s.stats.asyncPuts.Add(1)
	s.stats.userBytesWritten.Add(int64(len(value)))
	return t.async.submit(&Handle{op: opPut, key: cloneBytes(key), val: cloneBytes(value), ts: ts, done: make(chan struct{})})
}

// DeleteTSAsync is DeleteAsync carrying a logical timestamp. The handle
// completes with nil if a live value was removed here and ErrNotFound if
// only the tombstone was recorded (superseded or already absent).
func (t *Thread) DeleteTSAsync(key []byte, ts uint64) *Handle {
	s := t.s
	if s.closed.Load() {
		return completedHandle(ErrClosed)
	}
	s.stats.deletes.Add(1)
	s.stats.asyncDeletes.Add(1)
	return t.async.submit(&Handle{op: opDelete, key: cloneBytes(key), ts: ts, done: make(chan struct{})})
}

// ReplicaEntries calls fn for every key with a recorded stamp — live
// values and tombstones — until fn returns false. It iterates a snapshot
// taken under the lock, so fn may freely call back into the store
// (anti-entropy passes read peers and write pulls from inside fn's
// loop). Keys are safe to retain. Requires TrackTimestamps.
func (s *Store) ReplicaEntries(fn func(key []byte, ts uint64, tombstone bool) bool) {
	r := s.repl
	if r == nil {
		return
	}
	type ent struct {
		key  string
		ts   uint64
		tomb bool
	}
	r.mu.RLock()
	snap := make([]ent, 0, len(r.live)+len(r.tomb))
	for k, ts := range r.live {
		snap = append(snap, ent{key: k, ts: ts})
	}
	for k, ts := range r.tomb {
		snap = append(snap, ent{key: k, ts: ts, tomb: true})
	}
	r.mu.RUnlock()
	for _, e := range snap {
		if !fn([]byte(e.key), e.ts, e.tomb) {
			return
		}
	}
}

// ReplicaNewest returns the newest stamp recorded for key, whether it is
// a tombstone, and whether any record exists. Requires TrackTimestamps.
func (s *Store) ReplicaNewest(key []byte) (ts uint64, tombstone, ok bool) {
	r := s.repl
	if r == nil {
		return 0, false, false
	}
	ts, tombstone = r.newest(string(key))
	return ts, tombstone, ts != 0
}

// DiscardTombstones forgets tombstones stamped strictly older than
// olderThan, returning how many were dropped. Safe only once every
// replica has seen the tombstone (the router's grace-period rule);
// discarding early lets a divergent replica resurrect the key.
func (s *Store) DiscardTombstones(olderThan uint64) int {
	r := s.repl
	if r == nil {
		return 0
	}
	r.mu.Lock()
	n := 0
	for k, ts := range r.tomb {
		if ts < olderThan {
			delete(r.tomb, k)
			n++
		}
	}
	r.mu.Unlock()
	return n
}

// TombstoneCount returns the number of tombstones currently retained.
func (s *Store) TombstoneCount() int {
	r := s.repl
	if r == nil {
		return 0
	}
	r.mu.RLock()
	n := len(r.tomb)
	r.mu.RUnlock()
	return n
}
