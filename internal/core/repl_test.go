package core

import (
	"bytes"
	"errors"
	"testing"
)

func tsStore(t *testing.T) *Store {
	return small(t, func(o *Options) { o.TrackTimestamps = true })
}

// Last-writer-wins: an older stamp never overwrites a newer one, in
// either direction (put-then-stale-put, delete-then-stale-put).
func TestPutTSLastWriterWins(t *testing.T) {
	s := tsStore(t)
	th := s.Thread(0)
	if err := th.PutTS(key(1), []byte("new"), 10); err != nil {
		t.Fatal(err)
	}
	// A stale write is silently superseded, not an error.
	if err := th.PutTS(key(1), []byte("old"), 5); err != nil {
		t.Fatal(err)
	}
	if v, err := th.Get(key(1)); err != nil || !bytes.Equal(v, []byte("new")) {
		t.Fatalf("Get = %q, %v; want \"new\"", v, err)
	}
	// Equal stamp is also superseded (idempotent re-pull).
	if err := th.PutTS(key(1), []byte("dup"), 10); err != nil {
		t.Fatal(err)
	}
	if v, _ := th.Get(key(1)); !bytes.Equal(v, []byte("new")) {
		t.Fatalf("equal-stamp rewrite applied: %q", v)
	}
	if ts, tomb, ok := s.ReplicaNewest(key(1)); !ok || tomb || ts != 10 {
		t.Fatalf("ReplicaNewest = %d,%v,%v; want 10,false,true", ts, tomb, ok)
	}
}

func TestDeleteTSTombstoneBlocksStaleWrite(t *testing.T) {
	s := tsStore(t)
	th := s.Thread(0)
	if err := th.PutTS(key(2), value(2), 3); err != nil {
		t.Fatal(err)
	}
	found, err := th.DeleteTS(key(2), 7)
	if err != nil || !found {
		t.Fatalf("DeleteTS = %v,%v; want true,nil", found, err)
	}
	if _, err := th.Get(key(2)); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get after delete = %v", err)
	}
	// A write stamped before the tombstone must not resurrect the key.
	if err := th.PutTS(key(2), value(2), 5); err != nil {
		t.Fatal(err)
	}
	if _, err := th.Get(key(2)); !errors.Is(err, ErrNotFound) {
		t.Fatalf("stale write resurrected deleted key: %v", err)
	}
	if ts, tomb, ok := s.ReplicaNewest(key(2)); !ok || !tomb || ts != 7 {
		t.Fatalf("ReplicaNewest = %d,%v,%v; want 7,true,true", ts, tomb, ok)
	}
	// A tombstone is recorded even for a key never stored here (the
	// divergent-replica propagation case).
	found, err = th.DeleteTS(key(3), 9)
	if err != nil || found {
		t.Fatalf("DeleteTS(missing) = %v,%v; want false,nil", found, err)
	}
	if ts, tomb, ok := s.ReplicaNewest(key(3)); !ok || !tomb || ts != 9 {
		t.Fatalf("missing-key tombstone not recorded: %d,%v,%v", ts, tomb, ok)
	}
	if n := s.TombstoneCount(); n != 2 {
		t.Fatalf("TombstoneCount = %d, want 2", n)
	}
	if n := s.DiscardTombstones(8); n != 1 {
		t.Fatalf("DiscardTombstones(8) = %d, want 1 (only ts=7 is older)", n)
	}
	if n := s.TombstoneCount(); n != 1 {
		t.Fatalf("TombstoneCount after discard = %d, want 1", n)
	}
}

func TestPutBatchTSAndEntries(t *testing.T) {
	s := tsStore(t)
	th := s.Thread(0)
	kvs := []KV{
		{Key: key(10), Value: value(10)},
		{Key: key(11), Value: value(11)},
		{Key: key(12), Value: value(12)},
	}
	if err := th.PutBatchTS(kvs, []uint64{21, 22, 23}); err != nil {
		t.Fatal(err)
	}
	// A second batch where only one entry is newer.
	kvs2 := []KV{
		{Key: key(10), Value: []byte("stale")},
		{Key: key(11), Value: []byte("fresh")},
	}
	if err := th.PutBatchTS(kvs2, []uint64{20, 30}); err != nil {
		t.Fatal(err)
	}
	if v, _ := th.Get(key(10)); !bytes.Equal(v, value(10)) {
		t.Fatalf("stale batch entry applied: %q", v)
	}
	if v, _ := th.Get(key(11)); !bytes.Equal(v, []byte("fresh")) {
		t.Fatalf("fresh batch entry missing: %q", v)
	}
	got := map[string]uint64{}
	s.ReplicaEntries(func(k []byte, ts uint64, tomb bool) bool {
		if tomb {
			t.Fatalf("unexpected tombstone for %q", k)
		}
		got[string(k)] = ts
		return true
	})
	want := map[string]uint64{string(key(10)): 21, string(key(11)): 30, string(key(12)): 23}
	for k, ts := range want {
		if got[k] != ts {
			t.Fatalf("entry %q stamp = %d, want %d (all: %v)", k, got[k], ts, got)
		}
	}
}

// Async TS variants go through the same gate.
func TestAsyncTSVariants(t *testing.T) {
	s := tsStore(t)
	th := s.Thread(0)
	if err := th.PutTSAsync(key(20), []byte("v1"), 100).Wait(); err != nil {
		t.Fatal(err)
	}
	if err := th.PutTSAsync(key(20), []byte("v0"), 99).Wait(); err != nil {
		t.Fatal(err) // superseded, still a successful completion
	}
	if v, err := th.GetAsync(key(20)).Value(); err != nil || !bytes.Equal(v, []byte("v1")) {
		t.Fatalf("GetAsync = %q, %v", v, err)
	}
	if err := th.DeleteTSAsync(key(20), 101).Wait(); err != nil {
		t.Fatal(err)
	}
	if err := th.DeleteTSAsync(key(20), 50).Wait(); !errors.Is(err, ErrNotFound) {
		t.Fatalf("superseded async delete = %v, want ErrNotFound", err)
	}
	if _, err := th.GetAsync(key(20)).Value(); !errors.Is(err, ErrNotFound) {
		t.Fatalf("key survived async delete: %v", err)
	}
}

// The stamp map survives Crash/Recover with the index, minus entries
// whose value was lost (unacknowledged at the crash): those are
// forgotten so anti-entropy can re-pull them.
func TestReplStateSurvivesCrash(t *testing.T) {
	s := tsStore(t)
	th := s.Thread(0)
	for i := 0; i < 50; i++ {
		if err := th.PutTS(key(i), value(i), uint64(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := th.DeleteTS(key(0), 100); err != nil {
		t.Fatal(err)
	}
	s.Crash()
	if _, err := s.Recover(); err != nil {
		t.Fatal(err)
	}
	th = s.Thread(0)
	live, tombs := 0, 0
	s.ReplicaEntries(func(k []byte, ts uint64, tomb bool) bool {
		if tomb {
			tombs++
		} else {
			live++
		}
		return true
	})
	if tombs != 1 {
		t.Fatalf("tombstones after recovery = %d, want 1", tombs)
	}
	// Every surviving stamp must be backed by a readable value.
	bad := 0
	s.ReplicaEntries(func(k []byte, ts uint64, tomb bool) bool {
		if !tomb {
			if _, err := th.Get(k); err != nil {
				bad++
			}
		}
		return true
	})
	if bad != 0 {
		t.Fatalf("%d live stamps have no readable value after recovery", bad)
	}
}

// OnDone runs exactly once — inline when the handle already completed,
// from the completer otherwise — and proxy handles resolve through it.
func TestHandleOnDoneAndProxy(t *testing.T) {
	s := small(t, nil)
	th := s.Thread(0)
	h := th.PutAsync(key(1), value(1))
	if err := h.Wait(); err != nil {
		t.Fatal(err)
	}
	ran := 0
	h.OnDone(func(h *Handle) { ran++ })
	if ran != 1 {
		t.Fatalf("OnDone on completed handle ran %d times, want 1 (inline)", ran)
	}

	ph, resolve := NewProxyHandle()
	got := make(chan error, 1)
	ph.OnDone(func(h *Handle) { got <- h.Wait() })
	resolve([]byte("x"), nil, 42)
	if err := <-got; err != nil {
		t.Fatal(err)
	}
	if v, err := ph.Value(); err != nil || !bytes.Equal(v, []byte("x")) {
		t.Fatalf("proxy Value = %q, %v", v, err)
	}
	if at := ph.CompletedAt(); at != 42 {
		t.Fatalf("proxy CompletedAt = %d, want 42", at)
	}
}
