package core

import (
	"bytes"
	"fmt"
	"testing"
)

// Force the §4.4 eviction-time sort-and-rewrite and verify it both fires
// and preserves every value.
func TestScanSortRewrite(t *testing.T) {
	s := small(t, func(o *Options) {
		o.NumThreads = 1
		o.NumSSDs = 1
		o.SSDBytes = 32 << 20
		o.SVCBytes = 64 << 10 // tiny cache: scanned chains evict fast
		o.ChunkSize = 64 << 10
	})
	th := s.Thread(0)

	// Scatter prefix-a keys between filler bursts so consecutive a-keys
	// are too far apart on the SSD for extent merging.
	const n = 300
	filler := 0
	for i := 0; i < n; i++ {
		if err := th.Put([]byte(fmt.Sprintf("a%06d", i)), bytes.Repeat([]byte{byte(i)}, 512)); err != nil {
			t.Fatal(err)
		}
		for j := 0; j < 12; j++ {
			filler++
			if err := th.Put([]byte(fmt.Sprintf("b%06d", filler)), make([]byte, 512)); err != nil {
				t.Fatal(err)
			}
		}
	}
	drain(t, s)

	// Scan a range (chains it in the SVC), then flood the cache so the
	// chain evicts and the rewrite hook runs.
	scanReads := func() int64 {
		before := s.Stats().VSReads
		count := 0
		if err := th.Scan([]byte("a000050"), 40, func(kv KV) bool { count++; return true }); err != nil {
			t.Fatal(err)
		}
		if count != 40 {
			t.Fatalf("scan visited %d", count)
		}
		return s.Stats().VSReads - before
	}
	first := scanReads()
	for i := 1; i <= 4000; i++ {
		if _, err := th.Get([]byte(fmt.Sprintf("b%06d", i%filler+1))); err != nil {
			t.Fatal(err)
		}
	}
	if s.cache != nil {
		s.cache.Sync()
	}
	s.em.Barrier()
	if s.Stats().ScanRewrites == 0 {
		t.Fatal("scan-range rewrite never fired")
	}
	second := scanReads()
	if second >= first {
		t.Fatalf("rewrite did not improve locality: %d -> %d reads", first, second)
	}

	// Every value must still be intact after relocation.
	for i := 0; i < n; i++ {
		got, err := th.Get([]byte(fmt.Sprintf("a%06d", i)))
		if err != nil || len(got) != 512 || got[0] != byte(i) {
			t.Fatalf("a-key %d after rewrite: len=%d err=%v", i, len(got), err)
		}
	}
}

func TestAccessors(t *testing.T) {
	s := small(t, nil)
	if s.NumThreads() != 2 {
		t.Fatalf("NumThreads = %d", s.NumThreads())
	}
	if s.Epochs() == nil || s.NVM() == nil || len(s.SSDs()) != 2 {
		t.Fatal("accessors returned zero values")
	}
}
