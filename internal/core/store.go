// Package core implements the Prism key-value store engine: the five
// components of §4 (Persistent Key Index, PWB, Value Storage, SVC, HSIT)
// wired together with the cross-media concurrency control of §5.4 and the
// crash-consistency/recovery protocol of §5.5.
//
// Storage layout:
//
//	NVM:  [ HSIT entries | per-thread PWB rings | (key index, modeled) ]
//	SSDs: [ Value Storage chunks ] x NumSSDs, one Value Storage per SSD
//	DRAM: [ Scan-aware Value Cache | validity bitmaps | volatile state ]
//
// Every application thread obtains a Thread handle carrying its virtual
// clock, epoch participant, and private PWB. Background work (PWB
// reclamation, Value Storage GC, SVC management) runs on goroutines with
// their own clocks, contending with the foreground for device bandwidth
// in virtual time exactly as the paper's background threads contend for
// real devices.
package core

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/epoch"
	"repro/internal/hsit"
	"repro/internal/keyindex"
	"repro/internal/nvm"
	"repro/internal/obs"
	"repro/internal/pwb"
	"repro/internal/sim"
	"repro/internal/ssd"
	"repro/internal/svc"
	"repro/internal/tcq"
	"repro/internal/valuestore"
)

// Errors returned by store operations.
var (
	ErrNotFound = errors.New("prism: key not found")
	ErrClosed   = errors.New("prism: store closed")
)

// Options configures a Store. The zero value is completed by defaults
// sized for tests; benchmarks override explicitly.
type Options struct {
	// NumThreads is the number of application Thread handles (each gets
	// a private PWB, §4.3). Default 4.
	NumThreads int
	// PWBBytesPerThread sizes each PWB ring. Default 1 MiB.
	PWBBytesPerThread int
	// HSITCapacity is the maximum number of live keys. Default 1 << 16.
	HSITCapacity int
	// NumSSDs is the number of simulated flash SSDs, one Value Storage
	// each (§5.1). Default 2.
	NumSSDs int
	// SSDBytes is the capacity of each SSD. Default 64 MiB.
	SSDBytes int64
	// ChunkSize is the Value Storage chunk size. Default 512 KiB.
	ChunkSize int
	// SVCBytes bounds the DRAM value cache. Default 4 MiB.
	SVCBytes int64
	// QueueDepth is the IO coalescing limit (§5.3), and also caps how
	// many async submissions one admission window coalesces. Default 64.
	QueueDepth int
	// AsyncMaxPending bounds in-flight async submissions per Thread;
	// PutAsync/GetAsync/DeleteAsync block (backpressure) at the bound.
	// Default 256.
	AsyncMaxPending int
	// ReclaimWatermark is the PWB utilization that triggers background
	// reclamation. Zero selects the adaptive controller, which starts at
	// 0.5 (§4.3) and closes the loop from put stalls and reclaim-pass
	// outcomes: a stall lowers the trigger (reclaim starts earlier, so
	// the ring has headroom when the next burst arrives) and a stall-free
	// pass raises it back. A non-zero value pins the fixed watermark.
	ReclaimWatermark float64
	// GCFreeFraction triggers Value Storage GC when the free-chunk
	// fraction drops below it. Default 0.25.
	GCFreeFraction float64

	// NVM and SSD performance envelopes (zero = paper defaults).
	NVM nvm.Config
	SSD ssd.Config

	// SSDConfigs, when non-empty, gives each device its own envelope —
	// the heterogeneous array of §2.1 — and overrides NumSSDs with its
	// length. A config's zero Size falls back to SSDBytes and its Name is
	// always rewritten to ssdN.
	SSDConfigs []ssd.Config

	// EnableTiering turns on hot/cold value placement: the PWB reclaimer
	// steers hot values (SVC-promoted or recently written) to the fastest
	// device and cold values to the highest-capacity one, and a
	// background pass demotes values that cool off. It is a no-op when
	// tier selection cannot tell two devices apart (a single SSD).
	EnableTiering bool

	// Ablation switches (§7.6 "impact of individual techniques").
	DisableSVC       bool  // no DRAM value cache
	DisableCombining bool  // use timeout-based async IO (TA) instead of TC
	TimeoutNS        int64 // TA timeout; default 100 us
	SyncVSWrites     bool  // bypass PWB: write values synchronously to VS
	DisableScanSort  bool  // no eviction-time scan-range rewrite

	// DisableMetrics turns off the observability registry: Metrics()
	// returns an empty snapshot and every hot-path metric update becomes
	// a nil-receiver no-op.
	DisableMetrics bool

	// Shards is consumed by the sharding router above this package
	// (internal/shard, surfaced as prism.Open): values > 1 open that many
	// independent core Stores behind one routed front end, each with the
	// full per-shard resources described by the other fields. core.Open
	// itself runs exactly one store and rejects Shards > 1 loudly rather
	// than silently ignoring the request.
	Shards int

	// Replicas is likewise consumed by the sharding router: values > 1
	// place each key on that many shards (primary + N-1 successors on
	// the ring) with timestamped last-writer-wins writes and background
	// anti-entropy repair. core.Open rejects Replicas > 1; a lone core
	// store has nothing to replicate onto.
	Replicas int

	// Placement selects the router's key-placement policy and is
	// consumed, like Shards, by the sharding router: "" or "hash" (the
	// default) routes every key by FNV-1a + jump consistent hash;
	// "range" routes through a boundary table of split keys so scans
	// touch only owning shards and key ranges can migrate online
	// between shards (see internal/shard/migrate.go). core.Open rejects
	// "range" loudly — a single core store has nothing to place.
	Placement string

	// SplitKeys seeds the range-placement boundary table: split points
	// dividing the keyspace into len(SplitKeys)+1 ranges assigned
	// round-robin to shards. Ignored unless Placement is "range". An
	// empty list starts with a single hash-owned range covering the
	// whole keyspace (routing is then hash-identical) which
	// RebalanceRanges converts online once keys exist to sample.
	SplitKeys [][]byte

	// TrackTimestamps keeps a per-key logical-timestamp map (newest
	// write or tombstone stamp) alongside the Persistent Key Index and
	// enables the TS operation variants (PutTS/DeleteTS/PutBatchTS and
	// their async forms). The router sets it automatically when
	// Replicas > 1. Stamp state is modeled as NVM-resident: like the key
	// index it survives Crash in-process.
	TrackTimestamps bool

	// TombstoneGraceWrites is how many logical stamps a tombstone is
	// retained for after its delete before a full repair pass may
	// discard it (creiht/valuestore "tombstone age" in stamp units,
	// since the simulation has no wall clock). Discarding is only ever
	// done by the router's Repair when every replica is up. Default 4096.
	TombstoneGraceWrites uint64

	// DisableAutoRepair stops the router from starting its background
	// anti-entropy worker; RecoverShard then leaves the shard in the
	// repairing state until the application drives Repair/RepairShard
	// itself (what the fault-injection tests do to count passes).
	DisableAutoRepair bool

	Seed uint64
}

func (o *Options) applyDefaults() {
	if o.NumThreads == 0 {
		o.NumThreads = 4
	}
	if o.PWBBytesPerThread == 0 {
		o.PWBBytesPerThread = 1 << 20
	}
	if o.HSITCapacity == 0 {
		o.HSITCapacity = 1 << 16
	}
	if len(o.SSDConfigs) > 0 {
		o.NumSSDs = len(o.SSDConfigs)
	}
	if o.NumSSDs == 0 {
		o.NumSSDs = 2
	}
	if o.SSDBytes == 0 {
		o.SSDBytes = 64 << 20
	}
	if o.ChunkSize == 0 {
		o.ChunkSize = 512 << 10
	}
	if o.SVCBytes == 0 {
		o.SVCBytes = 4 << 20
	}
	if o.QueueDepth == 0 {
		o.QueueDepth = 64
	}
	if o.AsyncMaxPending == 0 {
		o.AsyncMaxPending = 256
	}
	// ReclaimWatermark deliberately has no default: zero means adaptive.
	if o.GCFreeFraction == 0 {
		o.GCFreeFraction = 0.25
	}
	if o.TimeoutNS == 0 {
		o.TimeoutNS = 100_000
	}
	if o.TombstoneGraceWrites == 0 {
		o.TombstoneGraceWrites = 4096
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
}

// Store is a Prism key-value store instance.
type Store struct {
	opt Options

	nvmDev  *nvm.Device
	ssds    []*ssd.Device
	index   *keyindex.Index
	table   *hsit.Table
	pwbs    []*pwb.Buffer
	pwbBase int
	vsm     *valuestore.Manager
	queues  []*tcq.Queue
	tas     []*tcq.TimeoutBatcher
	cache   *svc.Cache
	em      *epoch.Manager

	threads []*Thread

	// mnt is a dedicated maintenance thread (own clock + epoch
	// participant, no PWB, no RNG) used by the router's range-migration
	// purge (DropRange) so physical deletes never borrow a router-owned
	// thread handle; mntMu serializes its users. It must never append —
	// a nil buf fails loudly if a write path is ever misrouted here.
	mnt   *Thread
	mntMu sync.Mutex

	reclaimChs []chan int64 // per-PWB reclamation triggers (value = trigger time)
	gcCh       chan gcReq
	stop       chan struct{}
	bg         sync.WaitGroup
	closed     atomic.Bool

	gcClk *sim.Clock
	// reclaimStall[i] is the virtual time at which PWB i's latest
	// reclamation pass finished; its stalled owner waits until then
	// (the paper's "thread utilizes the remaining space" then blocks if
	// reclamation cannot keep up).
	reclaimStall []atomic.Int64

	svcMu       sync.Mutex // guards svcClk and the rewrite path
	svcClk      *sim.Clock
	lastRewrite int64 // guarded by svcMu; paces scan-range rewrites

	// Tiering + adaptive admission (tiering.go). tierFast/tierCap are the
	// device indices chosen at Open; equal when the array is
	// indistinguishable (tiering then disables itself). heat is nil
	// unless EnableTiering. watermark holds the effective reclaim
	// trigger as float64 bits; adaptiveWM says whether the controller
	// may move it.
	tierFast, tierCap int
	heat              *heatTracker
	watermark         atomic.Uint64
	adaptiveWM        bool

	stats statsCounters

	// repl is the per-key newest-stamp map for replication (nil unless
	// Options.TrackTimestamps); see repl.go.
	repl *replState

	// Observability (nil when Options.DisableMetrics): the registry and
	// the owned hot-path histograms of op latency in virtual ns.
	reg                        *obs.Registry
	latPut, latGet, latScan    *obs.Histogram
	latPutBatch, latMultiGet   *obs.Histogram
	batchSizePut, batchSizeGet *obs.Histogram
	asyncWindow, asyncLat      *obs.Histogram

	// batchStepHook, when non-nil, runs after each batch entry is applied
	// (crash-injection point for the mid-batch prefix-consistency tests).
	batchStepHook func(i int)
}

type gcReq struct {
	store int
	now   int64
}

type statsCounters struct {
	puts, gets, deletes, scans    atomic.Int64
	batchPuts, batchGets          atomic.Int64
	svcHits, pwbHits, vsReads     atomic.Int64
	userBytesWritten              atomic.Int64
	reclaims, pwbLiveMigrated     atomic.Int64
	scanRewrites, recoveredValues atomic.Int64
	putStalls                     atomic.Int64
	reclaimPublishLost            atomic.Int64
	scanTornRecords               atomic.Int64

	asyncPuts, asyncGets atomic.Int64
	asyncDeletes         atomic.Int64

	// Tiering: bytes the reclaimer steered to the intended tier vs. spilled
	// to a fallback device, by heat class, and the demotion pass totals.
	tierHotSteered, tierColdSteered   atomic.Int64
	tierHotFallback, tierColdFallback atomic.Int64
	tierDemotions, tierDemotedBytes   atomic.Int64
}

// Thread is one application thread's handle: it owns a virtual clock, an
// epoch participant, and a private PWB. A Thread must not be used
// concurrently; different Threads may run in parallel.
type Thread struct {
	s    *Store
	id   int
	Clk  *sim.Clock
	part *epoch.Participant
	buf  *pwb.Buffer
	rng  *sim.RNG

	// async is the thread's admission loop for PutAsync/GetAsync/
	// DeleteAsync (nil only on shadow executors, which never submit).
	async *asyncThread

	// MultiGet scratch, reused across calls (a Thread is single-owner, so
	// per-thread reuse is race-free and keeps batch reads allocation-flat).
	mgItems   []scanItem
	mgPending []*scanItem
}

// Open creates a Store over fresh simulated devices.
func Open(opt Options) (*Store, error) {
	opt.applyDefaults()
	if opt.Shards > 1 {
		return nil, errors.New("prism: Shards > 1 requires the sharding router (use prism.Open, not core.Open)")
	}
	if opt.Replicas > 1 {
		return nil, errors.New("prism: Replicas > 1 requires the sharding router (use prism.Open, not core.Open)")
	}
	switch opt.Placement {
	case "", "hash":
	case "range":
		return nil, errors.New("prism: Placement \"range\" requires the sharding router (use prism.Open, not core.Open)")
	default:
		return nil, fmt.Errorf("prism: unknown Placement %q (want \"hash\" or \"range\")", opt.Placement)
	}
	if opt.NumSSDs > 64 {
		return nil, errors.New("prism: at most 64 SSDs (global offset encoding)")
	}
	if opt.NumThreads < 1 || opt.NumSSDs < 1 {
		return nil, errors.New("prism: need at least one thread and one SSD")
	}
	// PWB rings require 16-byte alignment; chunk sizes must hold at
	// least one max-size record.
	opt.PWBBytesPerThread = opt.PWBBytesPerThread / 16 * 16
	if opt.PWBBytesPerThread < 4096 {
		return nil, errors.New("prism: PWBBytesPerThread too small (< 4 KiB)")
	}
	if int64(opt.ChunkSize) > opt.SSDBytes {
		return nil, errors.New("prism: chunk size exceeds SSD capacity")
	}
	for _, c := range opt.SSDConfigs {
		if c.Size != 0 && int64(opt.ChunkSize) > c.Size {
			return nil, errors.New("prism: chunk size exceeds SSD capacity")
		}
	}
	hsitBytes := opt.HSITCapacity * hsit.EntrySize
	pwbBase := (hsitBytes + 63) / 64 * 64
	nvmSize := pwbBase + opt.NumThreads*opt.PWBBytesPerThread + 4096
	ncfg := opt.NVM
	if ncfg.Size < nvmSize {
		ncfg.Size = nvmSize
	}
	s := &Store{
		opt:     opt,
		nvmDev:  nvm.New(ncfg),
		em:      epoch.NewManager(),
		gcCh:    make(chan gcReq, opt.NumSSDs*2),
		stop:    make(chan struct{}),
		gcClk:   sim.NewClock(0),
		svcClk:  sim.NewClock(0),
		pwbBase: pwbBase,
	}
	if opt.TrackTimestamps {
		s.repl = newReplState()
	}
	s.reclaimStall = make([]atomic.Int64, opt.NumThreads)
	for i := 0; i < opt.NumThreads; i++ {
		s.reclaimChs = append(s.reclaimChs, make(chan int64, 2))
	}
	s.index = keyindex.New(s.nvmDev)
	s.table = hsit.New(s.nvmDev, 0, opt.HSITCapacity, s.em)
	for i := 0; i < opt.NumThreads; i++ {
		base := pwbBase + i*opt.PWBBytesPerThread
		s.pwbs = append(s.pwbs, pwb.NewBuffer(s.nvmDev, base, opt.PWBBytesPerThread))
	}
	for i := 0; i < opt.NumSSDs; i++ {
		scfg := opt.SSD
		if len(opt.SSDConfigs) > 0 {
			scfg = opt.SSDConfigs[i]
		}
		if scfg.Size == 0 {
			scfg.Size = opt.SSDBytes
		}
		scfg.Name = fmt.Sprintf("ssd%d", i)
		dev := ssd.New(scfg)
		s.ssds = append(s.ssds, dev)
		if opt.DisableCombining {
			s.tas = append(s.tas, tcq.NewTimeoutBatcher(dev, opt.QueueDepth, opt.TimeoutNS))
		} else {
			s.queues = append(s.queues, tcq.New(dev, opt.QueueDepth))
		}
	}
	s.vsm = valuestore.NewManager(s.ssds, opt.ChunkSize, s.em)
	s.initTiering()
	if !opt.DisableSVC {
		cfg := svc.Config{
			CapacityBytes: opt.SVCBytes,
			Unpublish: func(idx, handle uint64) bool {
				return s.table.CasSVC(nil, idx, handle, 0)
			},
		}
		if !opt.DisableScanSort {
			cfg.OnScanEvict = s.onScanEvict
		}
		if s.heat != nil {
			cfg.OnPromote = s.heat.Touch
		}
		s.cache = svc.New(cfg)
	}
	rng := sim.NewRNG(opt.Seed)
	for i := 0; i < opt.NumThreads; i++ {
		s.threads = append(s.threads, &Thread{
			s:    s,
			id:   i,
			Clk:  sim.NewClock(0),
			part: s.em.Register(),
			buf:  s.pwbs[i],
			rng:  rng.Split(),
		})
	}
	// Shadow executors are split from the master RNG after every public
	// thread, so existing seeds produce the same public-thread streams.
	for i := 0; i < opt.NumThreads; i++ {
		t := s.threads[i]
		a := &asyncThread{
			t: t,
			lt: &Thread{
				s:    s,
				id:   i,
				Clk:  sim.NewClock(0),
				part: s.em.Register(),
				buf:  s.pwbs[i],
				rng:  rng.Split(),
			},
		}
		a.cond = sync.NewCond(&a.mu)
		t.async = a
	}
	// The maintenance thread registers after all public + shadow
	// participants and takes no RNG split, so existing seeds keep their
	// streams bit-identical.
	s.mnt = &Thread{s: s, id: 0, Clk: sim.NewClock(0), part: s.em.Register()}
	if !opt.DisableMetrics {
		s.reg = obs.NewRegistry()
		s.registerMetrics()
	}
	s.bg.Add(2 + opt.NumThreads)
	for i := 0; i < opt.NumThreads; i++ {
		go s.reclaimLoop(i)
	}
	go s.gcLoop()
	go s.maintenanceLoop()
	return s, nil
}

// Thread returns application thread handle i (0 <= i < NumThreads).
func (s *Store) Thread(i int) *Thread { return s.threads[i] }

// NumThreads returns the number of thread handles.
func (s *Store) NumThreads() int { return len(s.threads) }

// Epochs returns the store's epoch manager (tests and harness plumbing).
func (s *Store) Epochs() *epoch.Manager { return s.em }

// NVM returns the simulated NVM device.
func (s *Store) NVM() *nvm.Device { return s.nvmDev }

// SSDs returns the simulated flash devices.
func (s *Store) SSDs() []*ssd.Device { return s.ssds }

// Close stops background work and flushes NVM (clean shutdown).
func (s *Store) Close() error {
	if s.closed.Swap(true) {
		return ErrClosed
	}
	// Stop admission loops first (closed is set, so still-queued
	// submissions complete with ErrClosed) while reclamation/GC are
	// still alive to serve any window already in flight.
	for _, t := range s.threads {
		t.async.stop()
	}
	close(s.stop)
	s.bg.Wait()
	if s.cache != nil {
		s.cache.Close()
	}
	s.em.Barrier()
	s.nvmDev.PersistAll()
	return nil
}

// pwbOf maps a PWB forward-pointer offset to its owning buffer.
func (s *Store) pwbOf(devOff uint64) *pwb.Buffer {
	i := (int(devOff) - s.pwbBase) / s.opt.PWBBytesPerThread
	return s.pwbs[i]
}

// readVS reads the record for (idx, p) from Value Storage through the
// configured batching scheme and returns the raw record bytes.
func (s *Store) readVS(clk *sim.Clock, p hsit.Pointer) []byte {
	devIdx, local := valuestore.SplitOff(p.Off)
	req := s.vsm.Stores[devIdx].ReadAt(local, p.Len)
	var done int64
	if s.opt.DisableCombining {
		done = s.tas[devIdx].Read(clk.Now(), req)
	} else {
		done = s.queues[devIdx].Read(clk.Now(), req)
	}
	clk.AdvanceTo(done)
	s.stats.vsReads.Add(1)
	return req.Data
}

// Stats is a point-in-time snapshot of store-level counters.
type Stats struct {
	Puts, Gets, Deletes, Scans int64
	BatchPuts, BatchGets       int64
	AsyncPuts, AsyncGets       int64
	AsyncDeletes               int64
	SVCHits, PWBHits, VSReads  int64
	UserBytesWritten           int64
	Reclaims, PWBLiveMigrated  int64
	ScanRewrites               int64
	PutStalls                  int64
	ReclaimPublishLost         int64
	ScanTornRecords            int64
	IndexSpaceBytes            int64
	HSITSpaceBytes             int64
	TierHotSteeredBytes        int64
	TierColdSteeredBytes       int64
	TierHotFallbackBytes       int64
	TierColdFallbackBytes      int64
	TierDemotions              int64
	TierDemotedBytes           int64
	VS                         valuestore.Stats
	SVC                        svc.Stats
}

// Stats returns current counters.
func (s *Store) Stats() Stats {
	st := Stats{
		Puts:                  s.stats.puts.Load(),
		Gets:                  s.stats.gets.Load(),
		BatchPuts:             s.stats.batchPuts.Load(),
		BatchGets:             s.stats.batchGets.Load(),
		AsyncPuts:             s.stats.asyncPuts.Load(),
		AsyncGets:             s.stats.asyncGets.Load(),
		AsyncDeletes:          s.stats.asyncDeletes.Load(),
		Deletes:               s.stats.deletes.Load(),
		Scans:                 s.stats.scans.Load(),
		SVCHits:               s.stats.svcHits.Load(),
		PWBHits:               s.stats.pwbHits.Load(),
		VSReads:               s.stats.vsReads.Load(),
		UserBytesWritten:      s.stats.userBytesWritten.Load(),
		Reclaims:              s.stats.reclaims.Load(),
		PWBLiveMigrated:       s.stats.pwbLiveMigrated.Load(),
		ScanRewrites:          s.stats.scanRewrites.Load(),
		PutStalls:             s.stats.putStalls.Load(),
		ReclaimPublishLost:    s.stats.reclaimPublishLost.Load(),
		ScanTornRecords:       s.stats.scanTornRecords.Load(),
		TierHotSteeredBytes:   s.stats.tierHotSteered.Load(),
		TierColdSteeredBytes:  s.stats.tierColdSteered.Load(),
		TierHotFallbackBytes:  s.stats.tierHotFallback.Load(),
		TierColdFallbackBytes: s.stats.tierColdFallback.Load(),
		TierDemotions:         s.stats.tierDemotions.Load(),
		TierDemotedBytes:      s.stats.tierDemotedBytes.Load(),
		IndexSpaceBytes:       s.index.SpaceBytes(),
		HSITSpaceBytes:        s.table.SpaceBytes(),
		VS:                    s.vsm.Stats(),
	}
	if s.cache != nil {
		st.SVC = s.cache.Stats()
	}
	return st
}

// Len returns the number of live keys.
func (s *Store) Len() int { return s.index.Len() }
