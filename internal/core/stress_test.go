package core

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"

	"repro/internal/sim"
)

// stressVal builds a value whose content encodes (thread, key, seq) so a
// lost update is attributable, padded to one of a few fixed sizes so that
// records of equal length recur at the same ring offsets after a wrap
// (the ABA shape of the seed reclamation/publish race).
func stressVal(ti, k, seq int) []byte {
	sizes := [3]int{96, 160, 224}
	v := make([]byte, sizes[seq%len(sizes)])
	copy(v, fmt.Sprintf("t%02d-k%04d-s%08d", ti, k, seq))
	for i := len(v) - 1; i >= 0 && v[i] == 0; i-- {
		v[i] = byte('a' + (ti+k+seq)%26)
	}
	return v
}

// TestPWBReclaimPublishStress is the permanent regression gate for the
// seed reclamation/publish race (ROADMAP PR 3): tiny per-thread rings
// force a wrap every handful of appends, a low watermark keeps the
// background reclaimer scanning almost continuously, and every thread's
// Put storm runs concurrently with foreign readers. On the unfixed seed
// this fails under -race within a few rounds, in one of three ways:
//
//   - a DATA RACE report between pwb.Append and the reclaimer's
//     pwb.Scan (the ring tail advanced mid-scan, so the foreground
//     recycled bytes the scanner was still reading);
//   - a lost update: Get returns a stale sequence for a key the owning
//     thread had already overwritten (the DevOff-aliasing ABA in the
//     well-coupled check / PublishIf);
//   - a torn scan read surfacing as a corrupt-record error or an
//     ill-coupled record in the final CheckInvariants pass.
//
// Each thread owns a disjoint key range and is its keys' only writer, so
// after its own Put(k, seq) returns, its own Get(k) must observe exactly
// seq — any older value is a durable-linearizability violation.
//
// It runs in two configurations: "nosvc" isolates the PWB release
// protocol, while "svc" (with a deliberately tiny cache, so admission
// and eviction churn constantly) additionally covers the SVC admission
// TOCTOU — on the unfixed seed a reader could publish a stale value into
// the cache after a concurrent Put's invalidation had already run.
func TestPWBReclaimPublishStress(t *testing.T) {
	t.Run("svc", func(t *testing.T) { runReclaimPublishStress(t, false) })
	t.Run("nosvc", func(t *testing.T) { runReclaimPublishStress(t, true) })
}

func runReclaimPublishStress(t *testing.T, disableSVC bool) {
	const (
		threads       = 4
		rounds        = 6
		keysPerThread = 12
		putsPerRound  = 300
	)
	s := small(t, func(o *Options) {
		o.NumThreads = threads
		o.PWBBytesPerThread = 4096 // minimum: wraps every ~16 appends
		o.ReclaimWatermark = 0.2
		o.DisableSVC = disableSVC
		o.SVCBytes = 8 << 10 // tiny: constant admission/eviction churn
	})

	lastSeq := make([][]int, threads)
	for ti := range lastSeq {
		lastSeq[ti] = make([]int, keysPerThread)
		for k := range lastSeq[ti] {
			lastSeq[ti][k] = -1
		}
	}
	keyOf := func(ti, k int) []byte { return key(ti*keysPerThread + k) }

	seq := 0
	for round := 0; round < rounds; round++ {
		var wg sync.WaitGroup
		errs := make(chan error, threads)
		for ti := 0; ti < threads; ti++ {
			wg.Add(1)
			go func(ti, base int) {
				defer wg.Done()
				th := s.Thread(ti)
				rng := sim.NewRNG(uint64(1+round*threads+ti) * 2654435761)
				for j := 0; j < putsPerRound; j++ {
					k := rng.Intn(keysPerThread)
					sq := base + j
					if err := th.Put(keyOf(ti, k), stressVal(ti, k, sq)); err != nil {
						errs <- fmt.Errorf("thread %d put: %w", ti, err)
						return
					}
					lastSeq[ti][k] = sq
					switch rng.Uint64() % 4 {
					case 0:
						// Self-read: must observe exactly the last write.
						got, err := th.Get(keyOf(ti, k))
						if err != nil {
							errs <- fmt.Errorf("thread %d self-get: %w", ti, err)
							return
						}
						if want := stressVal(ti, k, sq); !bytes.Equal(got, want) {
							errs <- fmt.Errorf("thread %d key %d: lost update, got %.20q want %.20q",
								ti, k, got, want)
							return
						}
					case 1:
						// Foreign read: adds reader pressure on a ring being
						// concurrently appended and reclaimed.
						fi := rng.Intn(threads)
						if _, err := th.Get(keyOf(fi, rng.Intn(keysPerThread))); err != nil && !errors.Is(err, ErrNotFound) {
							errs <- fmt.Errorf("thread %d foreign-get: %w", ti, err)
							return
						}
					}
				}
			}(ti, seq)
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			t.Fatal(err)
		}
		seq += putsPerRound

		// Round barrier: every key must hold its owner's last write.
		th := s.Thread(0)
		for ti := 0; ti < threads; ti++ {
			for k := 0; k < keysPerThread; k++ {
				sq := lastSeq[ti][k]
				if sq < 0 {
					continue
				}
				got, err := th.Get(keyOf(ti, k))
				if err != nil {
					t.Fatalf("round %d thread %d key %d: %v", round, ti, k, err)
				}
				if want := stressVal(ti, k, sq); !bytes.Equal(got, want) {
					t.Fatalf("round %d thread %d key %d: lost update, got %.20q want %.20q",
						round, ti, k, got, want)
				}
			}
		}
	}

	// Full quiescence (background goroutines joined), then the offline
	// coupling checker: any ill-coupled record the races above produced
	// but reads happened to miss shows up here.
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if rep := s.CheckInvariants(); !rep.OK() {
		t.Fatalf("invariants violated after stress: %v", rep.Problems)
	}
}
