package core

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/hsit"
	"repro/internal/sim"
	"repro/internal/ssd"
	"repro/internal/valuestore"
)

// ---- per-key heat tracking ----

// heatTracker classifies keys as hot by repeated recent access. Time is
// a logical clock advanced by every touch (not virtual ns, so heat is
// workload-relative). Touch sources are put publishes (write heat) and
// SVC 2Q promotions (read heat, via svc.Config.OnPromote — itself a
// second-access signal, matching this tracker's repetition requirement).
//
// A key is hot only when touched at least twice with the latest touch
// inside the window. The repetition requirement is what makes the
// signal usable at reclaim time: every record in the PWB ring was by
// construction *written* recently, so recency alone would classify all
// traffic — including a one-shot bulk load — as hot. Load-once data
// stays cold and steers straight to the capacity tier; only re-written
// or re-read keys earn the fast device (PrismDB's popularity rule).
//
// The state is DRAM-resident and volatile: after a crash every key
// starts cold, which is safe — placement already made persists in Value
// Storage, and heat re-accumulates with traffic.
type heatTracker struct {
	clock  atomic.Int64
	window int64
	last   []atomic.Int64 // HSIT idx -> logical clock of last touch (0 = never)
	prev   []atomic.Int64 // HSIT idx -> logical clock of the touch before
}

func newHeatTracker(capacity int) *heatTracker {
	w := int64(capacity) / 4
	if w < 256 {
		w = 256
	}
	return &heatTracker{
		window: w,
		last:   make([]atomic.Int64, capacity),
		prev:   make([]atomic.Int64, capacity),
	}
}

// Touch records an access to HSIT entry idx. Safe from any goroutine;
// the prev/last pair is advisory, so a racing pair of touches at worst
// misorders two timestamps.
func (h *heatTracker) Touch(idx uint64) {
	if idx >= uint64(len(h.last)) {
		return
	}
	c := h.clock.Add(1)
	h.prev[idx].Store(h.last[idx].Load())
	h.last[idx].Store(c)
}

// Hot reports whether idx was touched at least twice, with the latest
// touch within the last window accesses.
func (h *heatTracker) Hot(idx uint64) bool {
	if h.prev[idx].Load() == 0 {
		return false
	}
	l := h.last[idx].Load()
	return l != 0 && h.clock.Load()-l <= h.window
}

// ---- tier selection ----

// initTiering ranks the SSD array and arms heat tracking. Called from
// Open/Recover after the devices exist, before any thread runs.
func (s *Store) initTiering() {
	s.tierFast, s.tierCap = pickTiers(s.ssds)
	if s.opt.EnableTiering && s.tierFast != s.tierCap {
		if s.heat == nil {
			s.heat = newHeatTracker(s.opt.HSITCapacity)
		}
	} else {
		s.heat = nil
	}
	wm := s.opt.ReclaimWatermark
	if wm == 0 {
		s.adaptiveWM = true
		wm = wmStart
	}
	s.watermark.Store(math.Float64bits(wm))
}

// tiered reports whether hot/cold steering is active.
func (s *Store) tiered() bool { return s.heat != nil }

// pickTiers returns the fastest device (highest write bandwidth, ties
// broken by lower write latency then lower index) and the capacity
// device (largest, ties broken toward any device other than fast so a
// homogeneous two-device array still yields distinct tiers).
func pickTiers(devs []*ssd.Device) (fast, capacity int) {
	for i, d := range devs {
		c, f := d.Config(), devs[fast].Config()
		if c.WriteBandwidth > f.WriteBandwidth ||
			(c.WriteBandwidth == f.WriteBandwidth && c.WriteLatency < f.WriteLatency) {
			fast = i
		}
	}
	for i, d := range devs {
		c, k := d.Config(), devs[capacity].Config()
		if c.Size > k.Size || (c.Size == k.Size && capacity == fast && i != fast) {
			capacity = i
		}
	}
	return fast, capacity
}

// hotIdx is the reclaim/demotion-time heat classification: recently
// touched (written or SVC-promoted) or currently SVC-resident.
func (s *Store) hotIdx(idx uint64) bool {
	if s.heat != nil && s.heat.Hot(idx) {
		return true
	}
	return s.cache != nil && s.table.LoadSVC(nil, idx) != 0
}

// ---- adaptive reclamation watermark ----

// The controller is AIMD over the PWB utilization trigger. Decay is
// driven only by genuine put-latency events: a ring-full stall
// (reclamation started too late — multiplicative decrease buys the next
// burst headroom), or, in SyncVSWrites mode, a put absorbing an inline
// reclaim pass (the pass cost IS that put's stall, and it scales with
// the trigger). A background pass that completes without any concurrent
// stall additively raises the trigger back, recovering batching
// efficiency. Pass frequency or duration is deliberately NOT a decay
// signal: lowering the trigger makes passes more frequent, so
// "passes dominate the timeline" feeds back on itself and pins the
// trigger at the floor even under stall-free steady load.
const (
	wmStart = 0.5  // §4.3 default, also the adaptive starting point
	wmFloor = 0.10 // never reclaim below 10% utilization
	wmCeil  = 0.90 // never wait beyond 90%
	wmDecay = 0.7  // multiplicative decrease on a put stall
	wmStep  = 0.02 // additive increase on a stall-free reclaim pass
)

// effectiveWatermark is the trigger currently in force (the fixed
// Options.ReclaimWatermark when non-zero, else the controller's value).
func (s *Store) effectiveWatermark() float64 {
	return math.Float64frombits(s.watermark.Load())
}

func (s *Store) adaptWatermark(up bool) {
	if !s.adaptiveWM {
		return
	}
	for {
		old := s.watermark.Load()
		w := math.Float64frombits(old)
		if up {
			w += wmStep
			if w > wmCeil {
				w = wmCeil
			}
		} else {
			w *= wmDecay
			if w < wmFloor {
				w = wmFloor
			}
		}
		if s.watermark.CompareAndSwap(old, math.Float64bits(w)) {
			return
		}
	}
}

// ---- background maintenance ----

// maintenanceLoop is the store's periodic worker: it probes every PWB so
// a store left idle above the watermark still reclaims (the put path and
// the async admission loop are the other two probes, but both go silent
// when traffic stops), helps epoch collection along, and paces the
// tiering demotion scan one chunk at a time.
func (s *Store) maintenanceLoop() {
	defer s.bg.Done()
	tick := time.NewTicker(time.Millisecond)
	defer tick.Stop()
	clk := sim.NewClock(0)
	cursor := 0
	for {
		select {
		case <-s.stop:
			return
		case <-tick.C:
			if !s.opt.SyncVSWrites {
				for i, b := range s.pwbs {
					if b.Utilization() >= s.effectiveWatermark() {
						// Trigger time 0: the reclaimer keeps its own
						// clock and AdvanceTo(0) is a no-op, so we never
						// read a foreground clock from this goroutine.
						select {
						case s.reclaimChs[i] <- 0:
						default:
						}
					}
				}
			}
			s.em.Collect()
			cursor = s.demoteStep(clk, cursor)
		}
	}
}

// demoteStep runs one increment of the background demotion pass: when
// the fast tier is more than half full, relocate the cold records of one
// chunk to the capacity tier. The cursor makes successive ticks sweep
// the whole fast store instead of re-scanning its head.
func (s *Store) demoteStep(clk *sim.Clock, cursor int) int {
	if !s.tiered() {
		return cursor
	}
	fastSt := s.vsm.Stores[s.tierFast]
	if fastSt.FreeChunks()*2 > fastSt.Chunks() {
		return cursor
	}
	capSt := s.vsm.Stores[s.tierCap]
	next, moved, done := fastSt.DemoteChunk(clk.Now(), cursor, capSt, s.gcReserve(capSt),
		func(idx uint64) bool { return !s.hotIdx(idx) },
		func(idx, oldLocal, newLocal uint64, vlen int) bool {
			ok := s.table.PublishIf(clk, idx,
				hsit.Pointer{Media: hsit.VS, Len: vlen, Off: valuestore.GlobalOff(s.tierFast, oldLocal)},
				hsit.Pointer{Media: hsit.VS, Len: vlen, Off: valuestore.GlobalOff(s.tierCap, newLocal)})
			if ok {
				s.stats.tierDemotedBytes.Add(int64(vlen))
			}
			return ok
		})
	clk.AdvanceTo(done)
	if moved > 0 {
		s.stats.tierDemotions.Add(int64(moved))
		s.maybeKickGC(s.tierCap, capSt, clk.Now())
	}
	s.em.Collect()
	return next
}

// ---- tier spec parsing (cmd tools) ----

// ParseTierSpec parses the -tiers flag: a comma-separated device list,
// each "size[:writeMBps[:readMBps]]" with K/M/G size suffixes, e.g.
// "64M:5000,512M:2000:3000" for a small fast device plus a large slow
// one. Omitted bandwidths keep the paper's defaults. An empty spec
// returns nil (homogeneous array from NumSSDs/SSDBytes).
func ParseTierSpec(spec string) ([]ssd.Config, error) {
	if strings.TrimSpace(spec) == "" {
		return nil, nil
	}
	var out []ssd.Config
	for _, part := range strings.Split(spec, ",") {
		fields := strings.Split(strings.TrimSpace(part), ":")
		if len(fields) > 3 {
			return nil, fmt.Errorf("tier spec %q: want size[:writeMBps[:readMBps]]", part)
		}
		size, err := parseSizeBytes(fields[0])
		if err != nil {
			return nil, fmt.Errorf("tier spec %q: %v", part, err)
		}
		var c ssd.Config
		c.Size = size
		if len(fields) > 1 {
			mbps, err := strconv.ParseInt(fields[1], 10, 64)
			if err != nil || mbps <= 0 {
				return nil, fmt.Errorf("tier spec %q: bad write MB/s %q", part, fields[1])
			}
			c.WriteBandwidth = mbps * 1_000_000
		}
		if len(fields) > 2 {
			mbps, err := strconv.ParseInt(fields[2], 10, 64)
			if err != nil || mbps <= 0 {
				return nil, fmt.Errorf("tier spec %q: bad read MB/s %q", part, fields[2])
			}
			c.ReadBandwidth = mbps * 1_000_000
		}
		out = append(out, c)
	}
	return out, nil
}

func parseSizeBytes(v string) (int64, error) {
	v = strings.TrimSpace(v)
	mult := int64(1)
	if n := len(v); n > 0 {
		switch v[n-1] {
		case 'k', 'K':
			mult, v = 1<<10, v[:n-1]
		case 'm', 'M':
			mult, v = 1<<20, v[:n-1]
		case 'g', 'G':
			mult, v = 1<<30, v[:n-1]
		}
	}
	b, err := strconv.ParseInt(v, 10, 64)
	if err != nil || b <= 0 {
		return 0, fmt.Errorf("bad size %q", v)
	}
	return b * mult, nil
}
