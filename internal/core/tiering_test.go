package core

import (
	"bytes"
	"fmt"
	"sort"
	"testing"
	"time"

	"repro/internal/hsit"
	"repro/internal/ssd"
	"repro/internal/valuestore"
)

// tieredStore opens a store over a small fast device (ssd0, paper-default
// speed) and a large slow one (ssd1, QLC-class), with heat steering on
// and the fixed 0.5 watermark so reclamation timing is predictable.
func tieredStore(t *testing.T, mutate func(*Options)) *Store {
	t.Helper()
	opt := Options{
		NumThreads:        1,
		PWBBytesPerThread: 32 << 10,
		HSITCapacity:      1 << 12,
		SSDConfigs: []ssd.Config{
			{Size: 1 << 20},
			{Size: 8 << 20, WriteLatency: 80_000, WriteBandwidth: 1_000_000_000},
		},
		ChunkSize:        16 << 10,
		SVCBytes:         16 << 10,
		EnableTiering:    true,
		ReclaimWatermark: 0.5,
	}
	if mutate != nil {
		mutate(&opt)
	}
	s, err := Open(opt)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

// vsDevice returns the device index holding key's value, or -1 when the
// key is not Value-Storage-resident (still in the PWB ring, or absent).
func vsDevice(s *Store, k []byte) int {
	idx, ok := s.index.Lookup(nil, k)
	if !ok {
		return -1
	}
	p := s.table.Load(nil, idx)
	if p.Media != hsit.VS {
		return -1
	}
	dev, _ := valuestore.SplitOff(p.Off)
	return dev
}

func hotKey(i int) []byte  { return []byte(fmt.Sprintf("hot%08d", i)) }
func coldKey(i int) []byte { return []byte(fmt.Sprintf("cold%08d", i)) }

func val512(i int) []byte {
	return bytes.Repeat([]byte{byte('a' + i%26)}, 512)
}

// TestTieringHotColdPlacement is the placement property: under steering,
// repeatedly-written keys land on the fast device and write-once keys on
// the capacity device, and a crash/recover cycle preserves the placement
// of everything already in Value Storage.
func TestTieringHotColdPlacement(t *testing.T) {
	s := tieredStore(t, nil)
	if !s.tiered() {
		t.Fatal("tiering did not arm on a heterogeneous array")
	}
	if s.tierFast != 0 || s.tierCap != 1 {
		t.Fatalf("tiers = fast %d cap %d, want 0/1", s.tierFast, s.tierCap)
	}
	th := s.Thread(0)
	const nHot, nCold = 32, 512
	// Interleave one-shot cold writes with hot churn, so every reclaim
	// pass sees both classes. Each hot key is written 8 times (two-touch
	// hot); each cold key exactly once.
	for r := 0; r < 8; r++ {
		for i := r * nCold / 8; i < (r+1)*nCold/8; i++ {
			if err := th.Put(coldKey(i), val512(i)); err != nil {
				t.Fatal(err)
			}
		}
		for i := 0; i < nHot; i++ {
			if err := th.Put(hotKey(i), val512(i)); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Push the hot keys' final versions out of the ring with write-once
	// filler (few enough touches that the hot set stays in-window).
	for i := 0; i < 256; i++ {
		if err := th.Put(coldKey(nCold+i), val512(i)); err != nil {
			t.Fatal(err)
		}
	}

	count := func(n int, key func(int) []byte) (onFast, onCap, inVS int) {
		for i := 0; i < n; i++ {
			switch vsDevice(s, key(i)) {
			case s.tierFast:
				onFast, inVS = onFast+1, inVS+1
			case s.tierCap:
				onCap, inVS = onCap+1, inVS+1
			}
		}
		return
	}
	hotFast, _, hotVS := count(nHot, hotKey)
	_, coldCap, coldVS := count(nCold, coldKey)
	if hotVS < nHot/2 {
		t.Fatalf("only %d/%d hot keys reached Value Storage", hotVS, nHot)
	}
	if coldVS < nCold*3/4 {
		t.Fatalf("only %d/%d cold keys reached Value Storage", coldVS, nCold)
	}
	if hotFast*10 < hotVS*8 {
		t.Errorf("hot on fast tier: %d/%d, want >= 80%%", hotFast, hotVS)
	}
	if coldCap*10 < coldVS*8 {
		t.Errorf("cold on capacity tier: %d/%d, want >= 80%%", coldCap, coldVS)
	}

	// Crash and recover: whatever was VS-resident must stay on its device
	// (placement is durable state; only the volatile heat resets).
	before := map[string]int{}
	for i := 0; i < nHot; i++ {
		if d := vsDevice(s, hotKey(i)); d >= 0 {
			before[string(hotKey(i))] = d
		}
	}
	for i := 0; i < nCold; i++ {
		if d := vsDevice(s, coldKey(i)); d >= 0 {
			before[string(coldKey(i))] = d
		}
	}
	s.Crash()
	if _, err := s.Recover(); err != nil {
		t.Fatal(err)
	}
	for k, want := range before {
		if got := vsDevice(s, []byte(k)); got != want {
			t.Fatalf("key %q moved from device %d to %d across recovery", k, want, got)
		}
	}
	th = s.Thread(0)
	for i := 0; i < nCold; i++ {
		got, err := th.Get(coldKey(i))
		if err != nil || !bytes.Equal(got, val512(i)) {
			t.Fatalf("cold key %d after recovery: %v", i, err)
		}
	}
}

// TestTieringDemotion drives the background demotion path by hand: keys
// made hot enough to land on the fast device, then aged out of the heat
// window, must migrate to the capacity tier once the fast tier passes
// half full.
func TestTieringDemotion(t *testing.T) {
	s := tieredStore(t, func(o *Options) {
		// A tiny fast device so the demotion threshold (half full) is
		// reachable with a small hot set.
		o.SSDConfigs[0].Size = 256 << 10
	})
	th := s.Thread(0)
	const nHot = 288
	for r := 0; r < 4; r++ {
		for i := 0; i < nHot; i++ {
			if err := th.Put(hotKey(i), val512(i)); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Age the hot set: enough one-shot writes to push the heat clock past
	// the window (HSITCapacity/4 = 1024) and flush the ring.
	for i := 0; i < 1200; i++ {
		if err := th.Put(coldKey(i), val512(i)); err != nil {
			t.Fatal(err)
		}
	}
	fastSt := s.vsm.Stores[s.tierFast]
	if fastSt.FreeChunks()*2 > fastSt.Chunks() {
		t.Skipf("fast tier only %d/%d chunks used; demotion threshold not reached",
			fastSt.Chunks()-fastSt.FreeChunks(), fastSt.Chunks())
	}
	deadline := time.Now().Add(5 * time.Second)
	for s.stats.tierDemotions.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond) // maintenanceLoop ticks at 1ms
	}
	if n := s.stats.tierDemotions.Load(); n == 0 {
		t.Fatal("no demotions despite a cooled-off, more-than-half-full fast tier")
	}
	for i := 0; i < nHot; i++ {
		got, err := th.Get(hotKey(i))
		if err != nil || !bytes.Equal(got, val512(i)) {
			t.Fatalf("hot key %d after demotion: %v", i, err)
		}
	}
}

// TestAdaptiveWatermarkBurstStress pits the adaptive controller against
// the fixed 0.5 default under bursty one-shot traffic. SyncVSWrites puts
// reclamation on the writing thread's virtual clock, which makes the
// comparison deterministic: a put that crosses the trigger absorbs the
// whole migration pass, so the put-stall tail IS the pass cost, and the
// pass cost scales with the trigger level on a transfer-dominated
// capacity device. The burst keeps passes back-to-back (pass duration
// dominates the inter-pass gap), which is exactly the regime where the
// controller shrinks the trigger — so adaptive passes converge to the
// floor and the stalled puts' p99 must beat the fixed default's. A
// second, asynchronous store then checks convergence: left idle, the
// maintenance probe must drain every ring below the trigger in force.
func TestAdaptiveWatermarkBurstStress(t *testing.T) {
	const rounds, burst = 12, 600
	run := func(watermark float64) (stallP99 int64, nStalls int, s *Store) {
		s = tieredStore(t, func(o *Options) {
			o.ReclaimWatermark = watermark
			o.SyncVSWrites = true
			o.PWBBytesPerThread = 32 << 10
			// One chunk = one ring: the watermark is the only drain
			// trigger (the sync per-chunk drain never fires).
			o.ChunkSize = 32 << 10
			o.HSITCapacity = 1 << 13 // every burst key stays live
			// Transfer-dominated capacity device, so a pass's cost is
			// proportional to its size — the quantity the trigger sets.
			o.SSDConfigs[1].WriteLatency = 1
			o.SSDConfigs[1].WriteBandwidth = 100_000_000
		})
		th := s.Thread(0)
		var stallLat []int64
		for r := 0; r < rounds; r++ {
			for i := 0; i < burst; i++ {
				rec0 := s.stats.reclaims.Load()
				t0 := th.Clk.Now()
				if err := th.Put(coldKey(r*burst+i), val512(i)); err != nil {
					t.Fatal(err)
				}
				// A put that triggered a pass paid for it inline: its
				// latency is the stall the watermark controls.
				if s.stats.reclaims.Load() != rec0 {
					stallLat = append(stallLat, th.Clk.Now()-t0)
				}
			}
			th.Clk.Advance(5_000_000) // 5ms virtual idle between bursts
		}
		if len(stallLat) == 0 {
			return 0, 0, s
		}
		sort.Slice(stallLat, func(a, b int) bool { return stallLat[a] < stallLat[b] })
		return stallLat[len(stallLat)*99/100], len(stallLat), s
	}

	fixedP99, fixedN, _ := run(0.5)
	adP99, adN, ad := run(0)

	if !ad.adaptiveWM {
		t.Fatal("ReclaimWatermark=0 did not arm the adaptive controller")
	}
	if fixedN == 0 {
		t.Fatal("no put ever paid a reclamation pass under the fixed watermark; stress is not stressing")
	}
	t.Logf("fixed: %d reclaim-paying puts, p99 %dns; adaptive: %d, p99 %dns (trigger settled at %.3f)",
		fixedN, fixedP99, adN, adP99, ad.effectiveWatermark())
	if adP99 >= fixedP99 {
		t.Errorf("adaptive put-stall p99 = %dns, fixed = %dns — controller is not shrinking passes", adP99, fixedP99)
	}
	if wm := ad.effectiveWatermark(); wm >= 0.5 {
		t.Errorf("adaptive trigger settled at %.3f under a burst; want below the 0.5 default", wm)
	}

	// Convergence, async this time: fill the ring past any plausible
	// trigger, stop traffic, and require the maintenance probe (idle
	// reclaim) to drain every ring below the trigger in force.
	async := tieredStore(t, func(o *Options) { o.ReclaimWatermark = 0 })
	th := async.Thread(0)
	for i := 0; i < 400; i++ {
		if err := th.Put(coldKey(i), val512(i)); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		converged := true
		for _, b := range async.pwbs {
			if b.Utilization() >= async.effectiveWatermark() {
				converged = false
			}
		}
		if converged {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	for i, b := range async.pwbs {
		t.Errorf("ring %d stuck at %.2f utilization (trigger %.2f)", i, b.Utilization(), async.effectiveWatermark())
	}
}

func TestParseTierSpec(t *testing.T) {
	cfgs, err := ParseTierSpec(" 64M:5000 , 2G:1000:3000 ")
	if err != nil {
		t.Fatal(err)
	}
	want := []ssd.Config{
		{Size: 64 << 20, WriteBandwidth: 5_000_000_000},
		{Size: 2 << 30, WriteBandwidth: 1_000_000_000, ReadBandwidth: 3_000_000_000},
	}
	if len(cfgs) != len(want) {
		t.Fatalf("got %d configs, want %d", len(cfgs), len(want))
	}
	for i := range want {
		if cfgs[i] != want[i] {
			t.Errorf("config %d = %+v, want %+v", i, cfgs[i], want[i])
		}
	}
	if cfgs, err := ParseTierSpec("  "); err != nil || cfgs != nil {
		t.Errorf("empty spec: %v, %v (want nil, nil)", cfgs, err)
	}
	for _, bad := range []string{"64X", "0M", "64M:-1", "64M:0", "64M:a:b", "64M:1:2:3", ":5000"} {
		if _, err := ParseTierSpec(bad); err == nil {
			t.Errorf("ParseTierSpec(%q) accepted a bad spec", bad)
		}
	}
}

// TestPickTiers pins the device-ranking rules, including the homogeneous
// tie-break that still yields two distinct tiers.
func TestPickTiers(t *testing.T) {
	mk := func(cfgs ...ssd.Config) []*ssd.Device {
		devs := make([]*ssd.Device, len(cfgs))
		for i, c := range cfgs {
			c.Name = fmt.Sprintf("ssd%d", i)
			if c.Size == 0 {
				c.Size = 1 << 20
			}
			devs[i] = ssd.New(c)
		}
		return devs
	}
	fast, cap := pickTiers(mk(
		ssd.Config{Size: 1 << 20},
		ssd.Config{Size: 8 << 20, WriteBandwidth: 1_000_000_000}))
	if fast != 0 || cap != 1 {
		t.Errorf("hetero: fast %d cap %d, want 0/1", fast, cap)
	}
	fast, cap = pickTiers(mk(ssd.Config{}, ssd.Config{}))
	if fast == cap {
		t.Errorf("homogeneous pair: fast %d == cap %d, want distinct", fast, cap)
	}
}
