// Package devices provides the performance profiles of the paper's
// Figure 1 — the heterogeneous storage media whose overlapping
// capabilities motivate Prism — as ready-to-use configurations for the
// simulated devices.
//
// Profiles are also the vehicle for the §8 discussion: swapping a
// profile in core.Options.SSD explores how Prism behaves over emerging
// media (PCIe 5 flash, ultra-low-latency NVM SSDs) without touching any
// engine code.
package devices

import (
	"repro/internal/nvm"
	"repro/internal/ssd"
)

// Profile describes one Figure 1 row.
type Profile struct {
	Type  string
	Model string
	// Performance (Figure 1 columns).
	ReadBW       int64 // bytes/second
	WriteBW      int64 // bytes/second
	ReadLatency  int64 // ns
	WriteLatency int64 // ns
	// Cost in $/TB (Figure 1's economics column).
	DollarsPerTB int
}

// The Figure 1 table, plus the PCIe Gen 5 projection from §2.1.
var (
	DRAM = Profile{
		Type: "DRAM", Model: "SK Hynix DDR4 16GB",
		ReadBW: 15_000_000_000, WriteBW: 15_000_000_000,
		ReadLatency: 80, WriteLatency: 80,
		DollarsPerTB: 5427,
	}
	OptaneDCPMM = Profile{
		Type: "NVM", Model: "Intel Optane DCPMM 128GB",
		ReadBW: 6_800_000_000, WriteBW: 1_900_000_000,
		ReadLatency: 300, WriteLatency: 90,
		DollarsPerTB: 4096,
	}
	Optane905P = Profile{
		Type: "NVM SSD", Model: "Intel Optane 905P 960GB",
		ReadBW: 2_600_000_000, WriteBW: 2_200_000_000,
		ReadLatency: 10_000, WriteLatency: 10_000,
		DollarsPerTB: 1024,
	}
	Samsung980Pro = Profile{
		Type: "Flash SSD", Model: "Samsung 980 Pro 1TB (PCIe 4)",
		ReadBW: 7_000_000_000, WriteBW: 5_000_000_000,
		ReadLatency: 50_000, WriteLatency: 20_000,
		DollarsPerTB: 150,
	}
	Samsung980 = Profile{
		Type: "Flash SSD", Model: "Samsung 980 1TB (PCIe 3)",
		ReadBW: 3_500_000_000, WriteBW: 3_000_000_000,
		ReadLatency: 60_000, WriteLatency: 20_000,
		DollarsPerTB: 100,
	}
	PCIe5Flash = Profile{
		Type: "Flash SSD", Model: "PCIe 5 projection (§2.1)",
		ReadBW: 13_000_000_000, WriteBW: 6_600_000_000,
		ReadLatency: 50_000, WriteLatency: 20_000,
		DollarsPerTB: 150,
	}
)

// All lists the profiles in Figure 1 order (plus the PCIe 5 projection).
var All = []Profile{DRAM, OptaneDCPMM, Optane905P, Samsung980Pro, Samsung980, PCIe5Flash}

// SSDConfig returns the profile as a block-device configuration.
func (p Profile) SSDConfig() ssd.Config {
	return ssd.Config{
		Name:           p.Model,
		ReadLatency:    p.ReadLatency,
		WriteLatency:   p.WriteLatency,
		ReadBandwidth:  p.ReadBW,
		WriteBandwidth: p.WriteBW,
	}
}

// NVMConfig returns the profile as a byte-addressable device
// configuration (meaningful for the DRAM/NVM rows).
func (p Profile) NVMConfig() nvm.Config {
	return nvm.Config{
		ReadLatency:    p.ReadLatency,
		WriteLatency:   p.WriteLatency,
		ReadBandwidth:  p.ReadBW,
		WriteBandwidth: p.WriteBW,
	}
}

// CostDollars returns the Table 1-style cost of capacity bytes on this
// medium, in dollars.
func (p Profile) CostDollars(capacityBytes int64) float64 {
	return float64(capacityBytes) / 1e12 * float64(p.DollarsPerTB)
}
