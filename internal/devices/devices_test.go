package devices

import (
	"testing"

	"repro/internal/sim"
	"repro/internal/ssd"
)

// The device models must reproduce Figure 1's measured characteristics:
// per-profile latency for small random IO and bandwidth for large
// sequential IO.
func TestProfilesReproduceFigure1(t *testing.T) {
	for _, p := range All {
		p := p
		t.Run(p.Model, func(t *testing.T) {
			cfg := p.SSDConfig()
			cfg.Size = 64 << 20
			dev := ssd.New(cfg)

			// Small random read: completion ~= latency.
			c := dev.Submit(0, []ssd.Request{{Op: ssd.OpRead, Offset: 0, Data: make([]byte, 512)}})
			got := c[0].DoneTime
			if got < p.ReadLatency || got > p.ReadLatency*2 {
				t.Fatalf("512B read = %dns, profile latency %dns", got, p.ReadLatency)
			}

			// Large sequential read: throughput ~= bandwidth.
			const total = 32 << 20
			var reqs []ssd.Request
			for off := int64(0); off < total; off += 1 << 20 {
				reqs = append(reqs, ssd.Request{Op: ssd.OpRead, Offset: off, Data: make([]byte, 1<<20)})
			}
			comps := dev.Submit(0, reqs)
			last := comps[len(comps)-1].DoneTime
			bw := float64(total) / (float64(last) / 1e9)
			if bw < float64(p.ReadBW)*0.8 || bw > float64(p.ReadBW)*1.2 {
				t.Fatalf("sequential read bandwidth %.2f GB/s, profile %.2f GB/s",
					bw/1e9, float64(p.ReadBW)/1e9)
			}
		})
	}
}

func TestNVMConfigCharging(t *testing.T) {
	d := sim.NewClock(0)
	cfg := OptaneDCPMM.NVMConfig()
	if cfg.ReadLatency != 300 || cfg.WriteBandwidth != 1_900_000_000 {
		t.Fatalf("NVM config %+v", cfg)
	}
	_ = d
}

func TestCostModel(t *testing.T) {
	// Table 1's Prism configuration: 20 GB DRAM + 16 GB NVM = ~$170.
	cost := DRAM.CostDollars(20<<30) + OptaneDCPMM.CostDollars(16<<30)
	if cost < 150 || cost > 200 {
		t.Fatalf("Table 1 Prism cost = $%.0f, paper says ~$170", cost)
	}
	// KVell: 32 GB DRAM = ~$170 too (cost parity).
	kvell := DRAM.CostDollars(32 << 30)
	if kvell < 150 || kvell > 200 {
		t.Fatalf("Table 1 KVell cost = $%.0f", kvell)
	}
}

func TestOrderingMatchesInsight1(t *testing.T) {
	// §2.1's Insight #1: flash has the highest bandwidth at the lowest
	// cost; NVM has the lowest durable latency.
	if !(Samsung980Pro.ReadBW > OptaneDCPMM.ReadBW) {
		t.Fatal("flash should out-bandwidth NVM")
	}
	if !(Samsung980Pro.DollarsPerTB < OptaneDCPMM.DollarsPerTB/20) {
		t.Fatal("flash should be >20x cheaper than NVM")
	}
	if !(OptaneDCPMM.ReadLatency < Samsung980Pro.ReadLatency/100) {
		t.Fatal("NVM should be >100x lower latency than flash")
	}
}
