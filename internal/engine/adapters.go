package engine

import (
	"errors"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/shard"
	"repro/internal/sim"
)

// PrismStore adapts shard.Store (the routed front end over one or more
// core engines; one shard is a pass-through) to the engine interface.
type PrismStore struct {
	S *shard.Store
}

// NewPrism opens a Prism store as an engine.Store; opt.Shards selects
// the shard count (default one).
func NewPrism(opt core.Options) (*PrismStore, error) {
	s, err := shard.Open(opt)
	if err != nil {
		return nil, err
	}
	return &PrismStore{S: s}, nil
}

type prismThread struct {
	t *shard.Thread
}

// Thread returns handle i.
func (p *PrismStore) Thread(i int) KV { return prismThread{p.S.Thread(i)} }

// NumThreads returns the handle count.
func (p *PrismStore) NumThreads() int { return p.S.NumThreads() }

// Close stops the store.
func (p *PrismStore) Close() error { return p.S.Close() }

// Metrics returns the underlying store's observability snapshot,
// implementing bench.MetricsSource.
func (p *PrismStore) Metrics() obs.Snapshot { return p.S.Metrics() }

// WriteAmp reports (SSD bytes written, user bytes written).
func (p *PrismStore) WriteAmp() (device, user int64) { return p.S.WriteAmp() }

func (t prismThread) Put(key, value []byte) error { return t.t.Put(key, value) }

func (t prismThread) Get(key []byte) ([]byte, error) {
	v, err := t.t.Get(key)
	if errors.Is(err, core.ErrNotFound) {
		return nil, ErrNotFound
	}
	return v, err
}

func (t prismThread) Delete(key []byte) error {
	err := t.t.Delete(key)
	if errors.Is(err, core.ErrNotFound) {
		return ErrNotFound
	}
	return err
}

func (t prismThread) Scan(start []byte, count int, fn func(key, value []byte) bool) error {
	return t.t.Scan(start, count, func(kv core.KV) bool { return fn(kv.Key, kv.Value) })
}

func (t prismThread) Clock() *sim.Clock { return t.t.Clk }

// PutBatch implements BatchKV over the routed single-epoch-per-shard
// batch write.
func (t prismThread) PutBatch(pairs []Pair) error {
	kvs := make([]core.KV, len(pairs))
	for i, p := range pairs {
		kvs[i] = core.KV{Key: p.Key, Value: p.Value}
	}
	return t.t.PutBatch(kvs)
}

// MultiGet implements BatchKV over the routed merged-extent batch read.
func (t prismThread) MultiGet(keys [][]byte) ([][]byte, error) {
	return t.t.MultiGet(keys)
}

// prismCompletion wraps a core Handle so errors surface as the engine's
// sentinel (errors.Is-matching callers never see core.ErrNotFound).
type prismCompletion struct{ h *core.Handle }

func (c prismCompletion) Wait() error {
	err := c.h.Wait()
	if errors.Is(err, core.ErrNotFound) {
		return ErrNotFound
	}
	return err
}

func (c prismCompletion) Value() ([]byte, error) {
	v, err := c.h.Value()
	if errors.Is(err, core.ErrNotFound) {
		return nil, ErrNotFound
	}
	return v, err
}

func (c prismCompletion) Done() bool { return c.h.Done() }

func (c prismCompletion) CompletedAt() int64 { return c.h.CompletedAt() }

// PutAsync implements AsyncKV over the routed per-shard admission loops.
func (t prismThread) PutAsync(key, value []byte) Completion {
	return prismCompletion{t.t.PutAsync(key, value)}
}

// GetAsync implements AsyncKV.
func (t prismThread) GetAsync(key []byte) Completion {
	return prismCompletion{t.t.GetAsync(key)}
}

// DeleteAsync implements AsyncKV.
func (t prismThread) DeleteAsync(key []byte) Completion {
	return prismCompletion{t.t.DeleteAsync(key)}
}

// Flush implements AsyncKV: waits out every in-flight submission and
// folds the per-shard async timelines into the handle's makespan clock.
func (t prismThread) Flush() { t.t.Flush() }
