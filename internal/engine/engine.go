// Package engine defines the key-value engine interface shared by Prism
// and the baseline stores (KVell, MatrixKV, RocksDB-NVM, SLM-DB), so the
// YCSB driver and the benchmark harness can run any of them. Each engine
// hands out per-thread handles carrying a virtual clock; the harness
// computes throughput from virtual time and latency from per-op deltas.
package engine

import (
	"errors"

	"repro/internal/sim"
)

// ErrNotFound is returned by Get/Delete for missing keys. Engines must
// return an error that errors.Is-matches this.
var ErrNotFound = errors.New("engine: key not found")

// Pair is a key-value pair exchanged by engines.
type Pair struct {
	Key   []byte
	Value []byte
}

// KV is one application thread's handle onto a store.
type KV interface {
	Put(key, value []byte) error
	Get(key []byte) ([]byte, error)
	Delete(key []byte) error
	// Scan visits up to count pairs with key >= start in order.
	Scan(start []byte, count int, fn func(key, value []byte) bool) error
	// Clock returns the thread's virtual clock.
	Clock() *sim.Clock
}

// Store is a key-value store instance with per-thread handles.
type Store interface {
	// Thread returns handle i; handles must not be shared across
	// goroutines, distinct handles may run concurrently.
	Thread(i int) KV
	// NumThreads returns how many handles exist.
	NumThreads() int
	// Close stops background work.
	Close() error
	// WriteAmp returns (deviceBytesWritten, userBytesWritten) for
	// SSD-level WAF accounting (Figure 12).
	WriteAmp() (device, user int64)
}
