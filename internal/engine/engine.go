// Package engine defines the key-value engine interface shared by Prism
// and the baseline stores (KVell, MatrixKV, RocksDB-NVM, SLM-DB), so the
// YCSB driver and the benchmark harness can run any of them. Each engine
// hands out per-thread handles carrying a virtual clock; the harness
// computes throughput from virtual time and latency from per-op deltas.
package engine

import (
	"errors"

	"repro/internal/sim"
)

// ErrNotFound is returned by Get/Delete for missing keys. Engines must
// return an error that errors.Is-matches this.
var ErrNotFound = errors.New("engine: key not found")

// Pair is a key-value pair exchanged by engines.
type Pair struct {
	Key   []byte
	Value []byte
}

// KV is one application thread's handle onto a store.
type KV interface {
	Put(key, value []byte) error
	Get(key []byte) ([]byte, error)
	Delete(key []byte) error
	// Scan visits up to count pairs with key >= start in order.
	Scan(start []byte, count int, fn func(key, value []byte) bool) error
	// Clock returns the thread's virtual clock.
	Clock() *sim.Clock
}

// BatchKV is the optional batch extension of KV: engines with native
// batch operations (Prism's single-epoch PutBatch/MultiGet) implement
// it; callers go through the package-level PutBatch/MultiGet helpers,
// which fall back to per-key loops for the baselines — exactly the
// unamortized cost the batch API is measured against.
type BatchKV interface {
	// PutBatch applies pairs in order. Not atomic: on error a prefix of
	// the batch may have been applied.
	PutBatch(pairs []Pair) error
	// MultiGet returns one value per key; a nil entry marks a missing
	// key (no ErrNotFound), a present-but-empty value is non-nil.
	MultiGet(keys [][]byte) ([][]byte, error)
}

// Completion is the future returned by an AsyncKV submission. All
// methods are safe to call from any goroutine, repeatedly; a Completion
// resolves exactly once.
type Completion interface {
	// Wait blocks until the operation completes and returns its error
	// (ErrNotFound for a missing key on Get/Delete).
	Wait() error
	// Value blocks until completion and returns the result; only async
	// gets produce a value.
	Value() ([]byte, error)
	// Done reports completion without blocking.
	Done() bool
	// CompletedAt blocks until completion and returns the virtual time
	// (ns) at which the operation finished on its async timeline.
	CompletedAt() int64
}

// AsyncKV is the optional asynchronous extension of KV: engines with a
// native submission pipeline (Prism's per-thread admission loops)
// implement it. Unlike KV's single-owner contract, the async methods
// may be called from any goroutine; per-handle submissions apply in
// submission order. Flush blocks until everything submitted has
// completed and folds the async makespan into the handle's Clock.
type AsyncKV interface {
	PutAsync(key, value []byte) Completion
	GetAsync(key []byte) Completion
	DeleteAsync(key []byte) Completion
	Flush()
}

// PutBatch writes pairs through kv: natively when kv implements BatchKV,
// otherwise as a per-pair Put loop.
func PutBatch(kv KV, pairs []Pair) error {
	if b, ok := kv.(BatchKV); ok {
		return b.PutBatch(pairs)
	}
	for _, p := range pairs {
		if err := kv.Put(p.Key, p.Value); err != nil {
			return err
		}
	}
	return nil
}

// MultiGet reads keys through kv: natively when kv implements BatchKV,
// otherwise as a per-key Get loop. Missing keys yield nil entries;
// present-but-empty values are non-nil.
func MultiGet(kv KV, keys [][]byte) ([][]byte, error) {
	if b, ok := kv.(BatchKV); ok {
		return b.MultiGet(keys)
	}
	vals := make([][]byte, len(keys))
	for i, k := range keys {
		v, err := kv.Get(k)
		switch {
		case err == nil:
			if v == nil {
				v = []byte{}
			}
			vals[i] = v
		case errors.Is(err, ErrNotFound):
			// stays nil
		default:
			return vals, err
		}
	}
	return vals, nil
}

// Store is a key-value store instance with per-thread handles.
type Store interface {
	// Thread returns handle i; handles must not be shared across
	// goroutines, distinct handles may run concurrently.
	Thread(i int) KV
	// NumThreads returns how many handles exist.
	NumThreads() int
	// Close stops background work.
	Close() error
	// WriteAmp returns (deviceBytesWritten, userBytesWritten) for
	// SSD-level WAF accounting (Figure 12).
	WriteAmp() (device, user int64)
}
