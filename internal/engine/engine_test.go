package engine

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"repro/internal/core"
)

func openPrism(t *testing.T) *PrismStore {
	t.Helper()
	s, err := NewPrism(core.Options{
		NumThreads:        2,
		PWBBytesPerThread: 128 << 10,
		HSITCapacity:      1 << 13,
		NumSSDs:           1,
		SSDBytes:          8 << 20,
		SVCBytes:          128 << 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func TestPrismAdapterRoundTrip(t *testing.T) {
	s := openPrism(t)
	kv := s.Thread(0)
	if err := kv.Put([]byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	got, err := kv.Get([]byte("k"))
	if err != nil || !bytes.Equal(got, []byte("v")) {
		t.Fatalf("Get = %q, %v", got, err)
	}
	if kv.Clock().Now() == 0 {
		t.Fatal("adapter exposes no virtual time")
	}
	if s.NumThreads() != 2 {
		t.Fatalf("NumThreads = %d", s.NumThreads())
	}
}

func TestPrismAdapterErrorMapping(t *testing.T) {
	s := openPrism(t)
	kv := s.Thread(0)
	if _, err := kv.Get([]byte("missing")); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get missing = %v, want engine.ErrNotFound", err)
	}
	if err := kv.Delete([]byte("missing")); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Delete missing = %v, want engine.ErrNotFound", err)
	}
}

func TestPrismAdapterScan(t *testing.T) {
	s := openPrism(t)
	kv := s.Thread(0)
	for i := 0; i < 30; i++ {
		kv.Put([]byte(fmt.Sprintf("k%02d", i)), []byte{byte(i)})
	}
	var keys []string
	err := kv.Scan([]byte("k10"), 5, func(k, v []byte) bool {
		keys = append(keys, string(k))
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 5 || keys[0] != "k10" || keys[4] != "k14" {
		t.Fatalf("scan = %v", keys)
	}
}

func TestPrismAdapterBatch(t *testing.T) {
	s := openPrism(t)
	kv := s.Thread(0)
	if _, ok := kv.(BatchKV); !ok {
		t.Fatal("prism thread does not implement BatchKV")
	}
	var pairs []Pair
	for i := 0; i < 40; i++ {
		pairs = append(pairs, Pair{Key: []byte(fmt.Sprintf("b%03d", i)), Value: []byte(fmt.Sprintf("v%03d", i))})
	}
	if err := PutBatch(kv, pairs); err != nil {
		t.Fatal(err)
	}
	keys := [][]byte{[]byte("b005"), []byte("missing"), []byte("b039")}
	vals, err := MultiGet(kv, keys)
	if err != nil {
		t.Fatal(err)
	}
	if string(vals[0]) != "v005" || vals[1] != nil || string(vals[2]) != "v039" {
		t.Fatalf("MultiGet = %q", vals)
	}
	// Present-but-empty stays distinguishable from missing.
	if err := kv.Put([]byte("empty"), nil); err != nil {
		t.Fatal(err)
	}
	vals, err = MultiGet(kv, [][]byte{[]byte("empty"), []byte("missing")})
	if err != nil || vals[0] == nil || len(vals[0]) != 0 || vals[1] != nil {
		t.Fatalf("empty/missing = %v, %v", vals, err)
	}
}

// loopKV is a minimal non-batch engine; the package helpers must fall
// back to per-key loops for it with identical semantics.
type loopKV struct {
	KV
	m map[string][]byte
}

func (l *loopKV) Put(k, v []byte) error { l.m[string(k)] = append([]byte{}, v...); return nil }
func (l *loopKV) Get(k []byte) ([]byte, error) {
	v, ok := l.m[string(k)]
	if !ok {
		return nil, ErrNotFound
	}
	return v, nil
}

func TestBatchHelpersFallback(t *testing.T) {
	kv := &loopKV{m: map[string][]byte{}}
	if err := PutBatch(kv, []Pair{{Key: []byte("a"), Value: []byte("1")}, {Key: []byte("e"), Value: nil}}); err != nil {
		t.Fatal(err)
	}
	vals, err := MultiGet(kv, [][]byte{[]byte("a"), []byte("nope"), []byte("e")})
	if err != nil {
		t.Fatal(err)
	}
	if string(vals[0]) != "1" || vals[1] != nil || vals[2] == nil || len(vals[2]) != 0 {
		t.Fatalf("fallback MultiGet = %q", vals)
	}
}

func TestPrismAdapterWriteAmp(t *testing.T) {
	s := openPrism(t)
	kv := s.Thread(0)
	for i := 0; i < 1000; i++ {
		kv.Put([]byte(fmt.Sprintf("key%05d", i)), make([]byte, 256))
	}
	dev, user := s.WriteAmp()
	if user != 1000*256 {
		t.Fatalf("user bytes = %d", user)
	}
	if dev <= 0 {
		t.Fatal("no device writes counted despite PWB overflow traffic")
	}
}
