package engine

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"repro/internal/core"
)

func openPrism(t *testing.T) *PrismStore {
	t.Helper()
	s, err := NewPrism(core.Options{
		NumThreads:        2,
		PWBBytesPerThread: 128 << 10,
		HSITCapacity:      1 << 13,
		NumSSDs:           1,
		SSDBytes:          8 << 20,
		SVCBytes:          128 << 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func TestPrismAdapterRoundTrip(t *testing.T) {
	s := openPrism(t)
	kv := s.Thread(0)
	if err := kv.Put([]byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	got, err := kv.Get([]byte("k"))
	if err != nil || !bytes.Equal(got, []byte("v")) {
		t.Fatalf("Get = %q, %v", got, err)
	}
	if kv.Clock().Now() == 0 {
		t.Fatal("adapter exposes no virtual time")
	}
	if s.NumThreads() != 2 {
		t.Fatalf("NumThreads = %d", s.NumThreads())
	}
}

func TestPrismAdapterErrorMapping(t *testing.T) {
	s := openPrism(t)
	kv := s.Thread(0)
	if _, err := kv.Get([]byte("missing")); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get missing = %v, want engine.ErrNotFound", err)
	}
	if err := kv.Delete([]byte("missing")); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Delete missing = %v, want engine.ErrNotFound", err)
	}
}

func TestPrismAdapterScan(t *testing.T) {
	s := openPrism(t)
	kv := s.Thread(0)
	for i := 0; i < 30; i++ {
		kv.Put([]byte(fmt.Sprintf("k%02d", i)), []byte{byte(i)})
	}
	var keys []string
	err := kv.Scan([]byte("k10"), 5, func(k, v []byte) bool {
		keys = append(keys, string(k))
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 5 || keys[0] != "k10" || keys[4] != "k14" {
		t.Fatalf("scan = %v", keys)
	}
}

func TestPrismAdapterWriteAmp(t *testing.T) {
	s := openPrism(t)
	kv := s.Thread(0)
	for i := 0; i < 1000; i++ {
		kv.Put([]byte(fmt.Sprintf("key%05d", i)), make([]byte, 256))
	}
	dev, user := s.WriteAmp()
	if user != 1000*256 {
		t.Fatalf("user bytes = %d", user)
	}
	if dev <= 0 {
		t.Fatal("no device writes counted despite PWB overflow traffic")
	}
}
