// Package epoch implements epoch-based memory reclamation as used by
// Prism for HSIT entries, SVC entries, PWB space, and Value Storage
// chunks (§5.4).
//
// A participant wraps every operation that may hold references to shared
// state in Enter/Exit. An object retired at global epoch e becomes safe
// to reclaim once the global epoch has advanced twice past e: the first
// advance guarantees no *new* operation can acquire a reference, the
// second that every operation which might already hold one has finished —
// the paper's two-epoch rule.
//
// Concurrency contract: Manager methods and Participant.Enter/Exit are
// safe from any goroutine, but a single Participant must not be shared —
// each thread registers its own. Retire may be called from inside or
// outside a critical section; retired functions run on whichever
// goroutine triggers collection (Collect/Barrier), so they must not
// block or re-enter the manager.
package epoch

import (
	"sync"
	"sync/atomic"
)

// Manager coordinates a set of participants and the retired-object lists.
// The zero value is not usable; create managers with NewManager.
type Manager struct {
	global atomic.Uint64

	mu      sync.Mutex
	parts   []*Participant
	retired []retiredItem
}

type retiredItem struct {
	epoch uint64
	fn    func()
}

// NewManager returns an empty manager at epoch 0.
func NewManager() *Manager { return &Manager{} }

// Participant is one thread's registration with a Manager. A Participant
// must not be shared between concurrently running goroutines.
type Participant struct {
	m *Manager
	// state holds (epoch+1) while inside a critical section, 0 outside.
	state atomic.Uint64
	// enters counts critical sections begun; atomic because Manager.Enters
	// sums it from other goroutines while the owner keeps operating.
	enters atomic.Int64
	exits  uint64
}

// Register adds a participant. Participants are never removed; an idle
// participant (outside any critical section) does not block advancement.
func (m *Manager) Register() *Participant {
	p := &Participant{m: m}
	m.mu.Lock()
	m.parts = append(m.parts, p)
	m.mu.Unlock()
	return p
}

// Enter begins a critical section, pinning the current global epoch.
func (p *Participant) Enter() {
	p.enters.Add(1)
	for {
		e := p.m.global.Load()
		p.state.Store(e + 1)
		// Re-check: if the global epoch moved between the load and the
		// store we might have published a stale pin; retry so that the
		// pinned epoch is never older than global-at-publication.
		if p.m.global.Load() == e {
			return
		}
	}
}

// Exit ends the critical section. Every few exits the participant tries
// to advance the global epoch and reclaim, keeping reclamation off the
// common path but still prompt.
func (p *Participant) Exit() {
	p.state.Store(0)
	p.exits++
	if p.exits%64 == 0 {
		p.m.Collect()
	}
}

// Retire registers fn to run once two epochs have passed. Safe to call
// from any goroutine, inside or outside a critical section.
func (m *Manager) Retire(fn func()) {
	e := m.global.Load()
	m.mu.Lock()
	m.retired = append(m.retired, retiredItem{epoch: e, fn: fn})
	m.mu.Unlock()
}

// Collect tries to advance the global epoch and runs every retired
// callback that has satisfied the two-epoch rule. It returns the number
// of callbacks run.
func (m *Manager) Collect() int {
	m.tryAdvance()
	cur := m.global.Load()

	m.mu.Lock()
	var ready []func()
	keep := m.retired[:0]
	for _, it := range m.retired {
		if cur >= it.epoch+2 {
			ready = append(ready, it.fn)
		} else {
			keep = append(keep, it)
		}
	}
	m.retired = keep
	m.mu.Unlock()

	for _, fn := range ready {
		fn()
	}
	return len(ready)
}

// tryAdvance bumps the global epoch if every active participant has
// observed the current one.
func (m *Manager) tryAdvance() {
	e := m.global.Load()
	m.mu.Lock()
	parts := m.parts
	m.mu.Unlock()
	for _, p := range parts {
		s := p.state.Load()
		if s != 0 && s != e+1 {
			return // active in an older epoch
		}
	}
	m.global.CompareAndSwap(e, e+1)
}

// DiscardRetired drops every pending retirement without running it.
// Crash simulation uses this: retired-but-unreclaimed callbacks are
// volatile deferred work (free-list pushes, ring releases) that a real
// machine loses with its DRAM — recovery rebuilds that state from
// durable media, and a stale callback firing afterwards would double-
// apply it (e.g., double-free an HSIT entry recovery already reissued).
func (m *Manager) DiscardRetired() {
	m.mu.Lock()
	m.retired = nil
	m.mu.Unlock()
}

// Epoch returns the current global epoch (for tests and introspection).
func (m *Manager) Epoch() uint64 { return m.global.Load() }

// Enters returns the total number of critical sections begun across all
// participants — the per-op epoch toll that batch operations amortize
// (one Enter covers a whole PutBatch/MultiGet).
func (m *Manager) Enters() int64 {
	m.mu.Lock()
	parts := m.parts
	m.mu.Unlock()
	var n int64
	for _, p := range parts {
		n += p.enters.Load()
	}
	return n
}

// Pending returns the number of retired-but-unreclaimed objects.
func (m *Manager) Pending() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.retired)
}

// Barrier advances epochs until every object retired before the call has
// been reclaimed. It must only be called while no participant is inside a
// critical section that could last forever (used at shutdown and in
// tests).
func (m *Manager) Barrier() {
	target := m.global.Load() + 2
	for m.global.Load() < target {
		m.Collect()
	}
	m.Collect()
}
