package epoch

import (
	"sync"
	"sync/atomic"
	"testing"
)

func TestRetireRunsAfterTwoEpochs(t *testing.T) {
	m := NewManager()
	p := m.Register()
	var ran atomic.Bool

	p.Enter()
	m.Retire(func() { ran.Store(true) })
	if m.Collect() != 0 {
		t.Fatal("reclaimed while participant active in retire epoch")
	}
	p.Exit()

	// Two advances must pass before the callback runs.
	m.Collect()
	m.Collect()
	m.Collect()
	if !ran.Load() {
		t.Fatal("callback never ran after participant exited")
	}
}

func TestActiveParticipantBlocksAdvance(t *testing.T) {
	m := NewManager()
	p1 := m.Register()
	p2 := m.Register()
	_ = p2 // idle participant must not block

	p1.Enter()
	e := m.Epoch()
	m.Collect() // p1 pinned current epoch: advance allowed once...
	m.Collect()
	// p1 is still pinned to epoch e, so global can advance at most to e+1.
	if m.Epoch() > e+1 {
		t.Fatalf("epoch advanced to %d while participant pinned %d", m.Epoch(), e)
	}
	p1.Exit()
	m.Collect()
	m.Collect()
	if m.Epoch() < e+2 {
		t.Fatalf("epoch stuck at %d after exit", m.Epoch())
	}
}

func TestBarrierReclaimsEverything(t *testing.T) {
	m := NewManager()
	_ = m.Register()
	var n atomic.Int64
	for i := 0; i < 100; i++ {
		m.Retire(func() { n.Add(1) })
	}
	m.Barrier()
	if n.Load() != 100 {
		t.Fatalf("barrier reclaimed %d of 100", n.Load())
	}
	if m.Pending() != 0 {
		t.Fatalf("pending = %d after barrier", m.Pending())
	}
}

// The core safety property: an object retired while readers may still
// hold it is never reclaimed until those readers exit.
func TestNoUseAfterReclaimUnderConcurrency(t *testing.T) {
	m := NewManager()
	const readers = 4
	const rounds = 2000

	type node struct {
		alive atomic.Bool
		val   int
	}
	var current atomic.Pointer[node]
	first := &node{val: 1}
	first.alive.Store(true)
	current.Store(first)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	var fail atomic.Bool

	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			p := m.Register()
			for {
				select {
				case <-stop:
					return
				default:
				}
				p.Enter()
				n := current.Load()
				if !n.alive.Load() {
					fail.Store(true)
				}
				p.Exit()
			}
		}()
	}

	for i := 0; i < rounds; i++ {
		old := current.Load()
		nw := &node{val: old.val + 1}
		nw.alive.Store(true)
		current.Store(nw)
		m.Retire(func() { old.alive.Store(false) })
		if i%16 == 0 {
			m.Collect()
		}
	}
	close(stop)
	wg.Wait()
	m.Barrier()
	if fail.Load() {
		t.Fatal("reader observed a reclaimed node")
	}
}

func TestRetireFromManyGoroutines(t *testing.T) {
	m := NewManager()
	_ = m.Register()
	var n atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				m.Retire(func() { n.Add(1) })
			}
		}()
	}
	wg.Wait()
	m.Barrier()
	if n.Load() != 4000 {
		t.Fatalf("reclaimed %d of 4000", n.Load())
	}
}

func TestDiscardRetired(t *testing.T) {
	m := NewManager()
	_ = m.Register()
	var ran atomic.Int64
	for i := 0; i < 10; i++ {
		m.Retire(func() { ran.Add(1) })
	}
	m.DiscardRetired()
	m.Barrier()
	if ran.Load() != 0 {
		t.Fatalf("%d discarded callbacks ran", ran.Load())
	}
	if m.Pending() != 0 {
		t.Fatalf("pending = %d after discard", m.Pending())
	}
	// The manager must keep working afterwards.
	m.Retire(func() { ran.Add(1) })
	m.Barrier()
	if ran.Load() != 1 {
		t.Fatalf("post-discard retirement did not run")
	}
}
