// Package histogram records latency samples with bounded relative error
// and answers the statistics the paper reports: average, median (p50),
// p99 and p999.
//
// Buckets are log-linear (HdrHistogram-style): 64 linear sub-buckets per
// power of two, giving <1.6 % relative error across nanoseconds to
// minutes with a few KB of memory. Histograms are not safe for concurrent
// use; benchmark threads each record into their own and Merge at the end.
package histogram

import (
	"fmt"
	"math/bits"
)

const (
	subBucketBits  = 6
	subBuckets     = 1 << subBucketBits // 64
	maxExponent    = 40                 // covers ~18 minutes in ns
	totalBuckets   = (maxExponent + 1) * subBuckets
	firstLinearMax = subBuckets // values < 64 map 1:1
)

// NumBuckets is the number of log-linear buckets. Exported so concurrent
// recorders (internal/obs) can reuse this package's bucket layout with
// their own atomic counts.
const NumBuckets = totalBuckets

// BucketIndex returns the bucket a sample falls into (0 <= i < NumBuckets).
func BucketIndex(v int64) int { return bucketOf(v) }

// BucketUpper returns a representative (upper-edge) value for bucket b.
func BucketUpper(b int) int64 { return valueOf(b) }

// H is a latency histogram over non-negative int64 samples (nanoseconds).
// The zero value is ready to use.
type H struct {
	counts [totalBuckets]int64
	total  int64
	sum    int64
	min    int64
	max    int64
}

// New returns an empty histogram.
func New() *H { return &H{min: -1} }

func bucketOf(v int64) int {
	if v < 0 {
		v = 0
	}
	if v < firstLinearMax {
		return int(v)
	}
	exp := 63 - bits.LeadingZeros64(uint64(v)) // floor(log2 v), >= 6
	if exp > maxExponent {
		exp = maxExponent
		v = 1 << maxExponent
	}
	sub := (v >> (uint(exp) - subBucketBits)) & (subBuckets - 1)
	return (exp-subBucketBits+1)*subBuckets + int(sub)
}

// valueOf returns a representative (upper-edge) value for bucket b.
func valueOf(b int) int64 {
	if b < firstLinearMax {
		return int64(b)
	}
	exp := b/subBuckets + subBucketBits - 1
	sub := int64(b % subBuckets)
	base := int64(1) << uint(exp)
	return base + (sub+1)<<(uint(exp)-subBucketBits) - 1
}

// Record adds one sample.
func (h *H) Record(v int64) {
	if v < 0 {
		v = 0
	}
	h.counts[bucketOf(v)]++
	h.total++
	h.sum += v
	if h.min < 0 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
}

// Count returns the number of samples recorded.
func (h *H) Count() int64 { return h.total }

// Mean returns the average sample, or 0 if empty.
func (h *H) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.total)
}

// Min returns the smallest sample, or 0 if empty.
func (h *H) Min() int64 {
	if h.min < 0 {
		return 0
	}
	return h.min
}

// Max returns the largest sample.
func (h *H) Max() int64 { return h.max }

// Percentile returns the approximate p-th percentile (0 < p <= 100).
func (h *H) Percentile(p float64) int64 {
	if h.total == 0 {
		return 0
	}
	rank := int64(p / 100 * float64(h.total))
	if rank < 1 {
		rank = 1
	}
	if rank > h.total {
		rank = h.total
	}
	var seen int64
	for b, c := range h.counts {
		seen += c
		if seen >= rank {
			v := valueOf(b)
			if v > h.max {
				v = h.max
			}
			return v
		}
	}
	return h.max
}

// Merge adds all of other's samples into h.
func (h *H) Merge(other *H) {
	if other == nil || other.total == 0 {
		return
	}
	for b, c := range other.counts {
		h.counts[b] += c
	}
	h.total += other.total
	h.sum += other.sum
	if h.min < 0 || (other.min >= 0 && other.min < h.min) {
		h.min = other.min
	}
	if other.max > h.max {
		h.max = other.max
	}
}

// Reset clears the histogram.
func (h *H) Reset() {
	*h = H{min: -1}
}

// Summary is the latency row the paper's tables report, in microseconds.
type Summary struct {
	Count  int64
	AvgUS  float64
	P50US  float64
	P99US  float64
	P999US float64
	MaxUS  float64
}

// Summarize converts the histogram (ns samples) into a microsecond row.
func (h *H) Summarize() Summary {
	return Summary{
		Count:  h.total,
		AvgUS:  h.Mean() / 1e3,
		P50US:  float64(h.Percentile(50)) / 1e3,
		P99US:  float64(h.Percentile(99)) / 1e3,
		P999US: float64(h.Percentile(99.9)) / 1e3,
		MaxUS:  float64(h.max) / 1e3,
	}
}

// String renders the summary like the paper's latency tables.
func (s Summary) String() string {
	return fmt.Sprintf("avg=%.1fus p50=%.1fus p99=%.1fus p99.9=%.1fus", s.AvgUS, s.P50US, s.P99US, s.P999US)
}
