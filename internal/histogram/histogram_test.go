package histogram

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func TestEmpty(t *testing.T) {
	h := New()
	if h.Count() != 0 || h.Mean() != 0 || h.Percentile(99) != 0 || h.Min() != 0 {
		t.Fatal("empty histogram not zeroed")
	}
}

func TestExactSmallValues(t *testing.T) {
	h := New()
	for v := int64(0); v < 64; v++ {
		h.Record(v)
	}
	if h.Min() != 0 || h.Max() != 63 {
		t.Fatalf("min/max = %d/%d", h.Min(), h.Max())
	}
	if got := h.Percentile(50); got < 30 || got > 33 {
		t.Fatalf("p50 = %d, want ~31", got)
	}
}

func TestRelativeErrorBound(t *testing.T) {
	// Every recorded value must come back within ~3.2% (two sub-bucket
	// widths) when it is the only sample.
	for _, v := range []int64{1, 63, 64, 100, 1000, 54321, 1e6, 5e7, 3e9} {
		h := New()
		h.Record(v)
		got := h.Percentile(100)
		rel := math.Abs(float64(got-v)) / float64(v)
		if rel > 0.032 {
			t.Errorf("value %d came back as %d (rel err %.3f)", v, got, rel)
		}
	}
}

func TestPercentilesAgainstSortedSamples(t *testing.T) {
	rng := sim.NewRNG(99)
	h := New()
	var samples []int64
	for i := 0; i < 20000; i++ {
		v := rng.Int63n(1_000_000)
		samples = append(samples, v)
		h.Record(v)
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	for _, p := range []float64{50, 90, 99, 99.9} {
		exact := samples[int(p/100*float64(len(samples)))-1]
		got := h.Percentile(p)
		rel := math.Abs(float64(got-exact)) / math.Max(float64(exact), 1)
		if rel > 0.05 {
			t.Errorf("p%.1f = %d, exact %d (rel err %.3f)", p, got, exact, rel)
		}
	}
}

func TestMergeEqualsCombinedRecording(t *testing.T) {
	rng := sim.NewRNG(5)
	a, b, all := New(), New(), New()
	for i := 0; i < 5000; i++ {
		v := rng.Int63n(100000)
		if i%2 == 0 {
			a.Record(v)
		} else {
			b.Record(v)
		}
		all.Record(v)
	}
	a.Merge(b)
	if a.Count() != all.Count() || a.Mean() != all.Mean() {
		t.Fatal("merge diverged from combined recording")
	}
	for _, p := range []float64{50, 99} {
		if a.Percentile(p) != all.Percentile(p) {
			t.Fatalf("p%.0f differs after merge", p)
		}
	}
}

func TestNegativeClampedToZero(t *testing.T) {
	h := New()
	h.Record(-5)
	if h.Min() != 0 || h.Count() != 1 {
		t.Fatal("negative sample mishandled")
	}
}

func TestMonotonePercentiles(t *testing.T) {
	f := func(seed uint64) bool {
		rng := sim.NewRNG(seed)
		h := New()
		for i := 0; i < 500; i++ {
			h.Record(rng.Int63n(1 << 30))
		}
		last := int64(-1)
		for _, p := range []float64{1, 10, 25, 50, 75, 90, 99, 99.9, 100} {
			v := h.Percentile(p)
			if v < last {
				return false
			}
			last = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestSummarize(t *testing.T) {
	h := New()
	for i := 0; i < 100; i++ {
		h.Record(10_000) // 10us
	}
	s := h.Summarize()
	if s.Count != 100 {
		t.Fatalf("count = %d", s.Count)
	}
	if s.AvgUS < 9 || s.AvgUS > 11 {
		t.Fatalf("avg = %v us", s.AvgUS)
	}
	if s.String() == "" {
		t.Fatal("empty summary string")
	}
}

func TestReset(t *testing.T) {
	h := New()
	h.Record(100)
	h.Reset()
	if h.Count() != 0 || h.Max() != 0 {
		t.Fatal("reset incomplete")
	}
	h.Record(5)
	if h.Min() != 5 {
		t.Fatal("min tracking broken after reset")
	}
}
