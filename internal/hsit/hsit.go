// Package hsit implements the Heterogeneous Storage Index Table (§4.5):
// the NVM-resident indirection layer at the center of Prism's cross-media
// concurrency control and crash consistency.
//
// Each entry is 16 bytes, updated with 8-byte atomics on the simulated
// NVM device:
//
//	word 0 — forward pointer to the durable value:
//	         [media:2][dirty:1][len:16][off:45]
//	word 1 — volatile forward pointer to the SVC (DRAM cache) entry;
//	         meaningless after a crash and nullified during recovery.
//
// A value can live in either the PWB or Value Storage, never both, so a
// single durable pointer word suffices — this is how the paper packs
// three forward pointers into 16 bytes. The value length rides in the
// pointer so a Value Storage read knows how many bytes to fetch.
//
// Durable linearizability (§5.4) uses the flush-on-read dirty bit: a
// writer CASes in the new pointer with the dirty bit set, flushes the
// line, then clears the bit with a second CAS. A reader that observes the
// dirty bit flushes the line on the writer's behalf before using the
// pointer, so an unpersisted pointer is never acted upon.
//
// Concurrency contract: every Table method is safe for concurrent use by
// any number of goroutines; entry words are only ever read and written
// with 8-byte atomics, and the CAS on the forward pointer is the
// linearization point of a write. Callers must hold an epoch
// (epoch.Participant.Enter) across any load-then-use of an entry, since
// freed entries are recycled only after the two-epoch grace period.
//
// Each entry additionally carries a volatile (DRAM) publish version — a
// per-entry seqlock bumped by every pointer install. Readers are
// unaffected; publishers serialize per entry on it. Its purpose is
// ABA-safe currency certification for the SVC: pointer words alias when
// PWB slots or Value Storage chunks are recycled, versions never do.
// See Version, PublishIfVersion.
package hsit

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/epoch"
	"repro/internal/nvm"
)

// EntrySize is the NVM footprint of one HSIT entry in bytes.
const EntrySize = 16

// Media identifies which device a forward pointer targets.
type Media uint8

// Forward-pointer media tags.
const (
	None Media = iota // entry holds no durable value (deleted/fresh)
	PWB               // offset into the NVM write-buffer space
	VS                // global offset into Value Storage (SSD space)
)

func (m Media) String() string {
	switch m {
	case None:
		return "none"
	case PWB:
		return "pwb"
	case VS:
		return "vs"
	}
	return fmt.Sprintf("media(%d)", uint8(m))
}

const (
	mediaShift = 62
	dirtyBit   = uint64(1) << 61
	lenShift   = 45
	lenMask    = uint64(0xffff)
	offMask    = (uint64(1) << lenShift) - 1

	// MaxValueLen is the largest value length encodable in a pointer.
	MaxValueLen = int(lenMask)
	// MaxOffset is the largest device offset encodable in a pointer.
	MaxOffset = offMask
)

// Pointer is a decoded forward pointer.
type Pointer struct {
	Media Media
	Len   int    // value length in bytes
	Off   uint64 // location within the media's address space
}

// IsNil reports whether the pointer targets no durable value.
func (p Pointer) IsNil() bool { return p.Media == None }

func (p Pointer) String() string {
	if p.IsNil() {
		return "<nil>"
	}
	return fmt.Sprintf("%s@%d+%d", p.Media, p.Off, p.Len)
}

// Encode packs p into its on-NVM word (dirty bit clear).
func Encode(p Pointer) uint64 {
	if p.Media == None {
		return 0
	}
	if p.Len < 0 || p.Len > MaxValueLen {
		panic(fmt.Sprintf("hsit: value length %d out of range", p.Len))
	}
	if p.Off > MaxOffset {
		panic(fmt.Sprintf("hsit: offset %d out of range", p.Off))
	}
	return uint64(p.Media)<<mediaShift | uint64(p.Len)<<lenShift | p.Off
}

// Decode unpacks an on-NVM word (the dirty bit is ignored).
func Decode(w uint64) Pointer {
	w &^= dirtyBit
	m := Media(w >> mediaShift)
	if m == None {
		return Pointer{}
	}
	return Pointer{Media: m, Len: int(w >> lenShift & lenMask), Off: w & offMask}
}

// ErrFull is returned by Alloc when every entry is in use.
var ErrFull = errors.New("hsit: table full")

// Table is the HSIT. Entries live on the NVM device at [base,
// base+EntrySize*capacity); the free list and allocation cursor are
// volatile and rebuilt during recovery.
type Table struct {
	dev  *nvm.Device
	base int
	cap  uint64
	em   *epoch.Manager

	bump atomic.Uint64 // next never-used slot

	mu   sync.Mutex
	free []uint64 // recycled slots

	allocated atomic.Int64 // live entries (for NVM-space accounting)

	// vers holds one volatile publish-version word per entry (DRAM, not
	// NVM: versions are rebuilt as zero after a crash, which is safe
	// because the SVC they protect is nullified during recovery too).
	//
	// The word is a seqlock: even = quiescent, odd = a publish in
	// flight. Every publisher claims the entry (CAS even→odd), installs
	// the pointer, and releases with +1 (Publish) or restores the old
	// even value when nothing was installed (PublishIf miss). The
	// counter is monotone over successful publishes and never reused, so
	// "version unchanged and even" certifies that NO pointer install
	// overlapped the observation window — a guarantee the pointer word
	// itself cannot give: PWB ring offsets and Value Storage chunks are
	// recycled, so a superseded-then-rewritten value of the same length
	// can land at the same offset and make the pointer word bit-identical
	// to a stale snapshot (ABA). Cache admission keyed on pointer
	// equality would then publish stale bytes; versions close that.
	vers []atomic.Uint64
}

// New creates a table over capacity entries starting at byte offset base
// of dev. The region must be 8-byte aligned and within the device.
func New(dev *nvm.Device, base int, capacity int, em *epoch.Manager) *Table {
	if base%8 != 0 {
		panic("hsit: unaligned base")
	}
	if base+capacity*EntrySize > dev.Size() {
		panic("hsit: region exceeds device")
	}
	return &Table{dev: dev, base: base, cap: uint64(capacity), em: em,
		vers: make([]atomic.Uint64, capacity)}
}

// Version returns the entry's volatile publish version. Even values are
// quiescent; an odd value means a publish is in flight. A reader that
// observes the same even version before loading the forward pointer and
// after acting on the bytes it read is guaranteed that no publish
// overlapped — the foundation of SVC admission's currency guard, which
// cannot rely on pointer-word equality (recycled offsets make stale
// pointer words bit-identical to current ones).
func (t *Table) Version(idx uint64) uint64 {
	t.checkIdx(idx)
	return t.vers[idx].Load()
}

// lockVersion claims idx's publish seqlock (even→odd), spinning out any
// concurrent publisher. Critical sections are a handful of simulated-NVM
// word operations, so the spin is short and never blocks on IO.
func (t *Table) lockVersion(idx uint64) uint64 {
	for {
		v := t.vers[idx].Load()
		if v&1 == 0 && t.vers[idx].CompareAndSwap(v, v+1) {
			return v
		}
		runtime.Gosched()
	}
}

// Capacity returns the number of entry slots.
func (t *Table) Capacity() int { return int(t.cap) }

// Live returns the number of allocated entries.
func (t *Table) Live() int { return int(t.allocated.Load()) }

// SpaceBytes returns the NVM bytes consumed by live entries.
func (t *Table) SpaceBytes() int64 { return t.allocated.Load() * EntrySize }

func (t *Table) word0(idx uint64) int { return t.base + int(idx)*EntrySize }
func (t *Table) word1(idx uint64) int { return t.base + int(idx)*EntrySize + 8 }

func (t *Table) checkIdx(idx uint64) {
	if idx >= t.cap {
		panic(fmt.Sprintf("hsit: index %d out of range (cap %d)", idx, t.cap))
	}
}

// Alloc returns a fresh entry index with both words zeroed. The zeroed
// state is persisted so a post-crash recovery never mistakes a recycled
// entry for a live one.
func (t *Table) Alloc(clk nvm.Clock) (uint64, error) {
	t.mu.Lock()
	var idx uint64
	if n := len(t.free); n > 0 {
		idx = t.free[n-1]
		t.free = t.free[:n-1]
		t.mu.Unlock()
	} else {
		t.mu.Unlock()
		idx = t.bump.Add(1) - 1
		if idx >= t.cap {
			t.bump.Add(^uint64(0)) // undo
			return 0, ErrFull
		}
	}
	t.dev.StoreUint64(clk, t.word0(idx), 0)
	t.dev.StoreUint64(clk, t.word1(idx), 0)
	t.dev.Persist(clk, t.word0(idx), EntrySize)
	t.allocated.Add(1)
	return idx, nil
}

// Free retires idx: after two epochs (no concurrent reader can still
// reach it, §5.4) the slot returns to the free list.
func (t *Table) Free(idx uint64) {
	t.checkIdx(idx)
	t.allocated.Add(-1)
	t.em.Retire(func() {
		t.mu.Lock()
		t.free = append(t.free, idx)
		t.mu.Unlock()
	})
}

// Load returns the forward pointer of idx, applying flush-on-read: if the
// dirty bit is set the reader persists the line and clears the bit on the
// writer's behalf, so the returned pointer is always durable.
func (t *Table) Load(clk nvm.Clock, idx uint64) Pointer {
	t.checkIdx(idx)
	off := t.word0(idx)
	w := t.dev.LoadUint64(clk, off)
	if w&dirtyBit != 0 {
		t.dev.Persist(clk, off, 8)
		t.dev.CompareAndSwapUint64(clk, off, w, w&^dirtyBit)
		w &^= dirtyBit
	}
	return Decode(w)
}

// install runs the durable-linearizable dirty-bit install under the
// publish claim: CAS in the new word with the dirty bit set, persist,
// clear. The CAS loop only contends with readers' flush-on-read clears,
// never another publisher (those are spun out by the seqlock).
func (t *Table) install(clk nvm.Clock, off int, neww uint64) uint64 {
	for {
		old := t.dev.LoadUint64(clk, off)
		if t.dev.CompareAndSwapUint64(clk, off, old, neww|dirtyBit) {
			t.dev.Persist(clk, off, 8)
			t.dev.CompareAndSwapUint64(clk, off, neww|dirtyBit, neww)
			return old
		}
	}
}

// Publish unconditionally installs p as idx's forward pointer with the
// durable-linearizable dirty-bit protocol and returns the pointer it
// replaced. The replaced location is now ill-coupled garbage the caller
// must invalidate (PWB: nothing to do; VS: clear the validity bit).
func (t *Table) Publish(clk nvm.Clock, idx uint64, p Pointer) Pointer {
	v := t.lockVersion(idx)
	old := t.install(clk, t.word0(idx), Encode(p))
	t.vers[idx].Store(v + 2)
	return Decode(old)
}

// PublishIf installs p only if the current pointer still equals expect
// (ignoring the dirty bit). It returns false when the entry has moved on —
// the reclamation/GC case where a foreground write superseded the value
// being migrated (§5.2). On success the expect location is garbage.
//
// Callers must guarantee expect cannot be a recycled-offset alias of a
// different value (reclamation's frozen-tail scan and GC's victim-chunk
// pin both do); callers that cannot, use PublishIfVersion.
func (t *Table) PublishIf(clk nvm.Clock, idx uint64, expect, p Pointer) bool {
	v := t.lockVersion(idx)
	off := t.word0(idx)
	if t.dev.LoadUint64(clk, off)&^dirtyBit != Encode(expect) {
		t.vers[idx].Store(v) // nothing installed: restore quiescence
		return false
	}
	t.install(clk, off, Encode(p))
	t.vers[idx].Store(v + 2)
	return true
}

// PublishIfVersion installs p only if the entry's publish version still
// equals expectVer (an even Version() observation taken when the caller
// read the value it is relocating). Unlike PublishIf's pointer-word
// compare, the version cannot alias across offset reuse, so this is the
// safe conditional publish for relocators whose old location may have
// been recycled since the snapshot (the SVC scan rewrite).
func (t *Table) PublishIfVersion(clk nvm.Clock, idx uint64, expectVer uint64, p Pointer) bool {
	t.checkIdx(idx)
	if expectVer&1 != 0 || !t.vers[idx].CompareAndSwap(expectVer, expectVer+1) {
		return false
	}
	t.install(clk, t.word0(idx), Encode(p))
	t.vers[idx].Store(expectVer + 2)
	return true
}

// Clear removes the forward pointer (delete path), returning the old one.
func (t *Table) Clear(clk nvm.Clock, idx uint64) Pointer {
	return t.Publish(clk, idx, Pointer{})
}

// LoadSVC returns the volatile SVC handle of idx (0 = none).
func (t *Table) LoadSVC(clk nvm.Clock, idx uint64) uint64 {
	t.checkIdx(idx)
	return t.dev.LoadUint64(clk, t.word1(idx))
}

// CasSVC atomically replaces the SVC handle if it still equals old. No
// flush: the word is volatile by design (§4.4 — lock-free publication).
func (t *Table) CasSVC(clk nvm.Clock, idx uint64, old, new uint64) bool {
	t.checkIdx(idx)
	return t.dev.CompareAndSwapUint64(clk, t.word1(idx), old, new)
}

// RebuildVolatile reconstructs the volatile state after a crash: the free
// list becomes every slot not in the reachable set, reachable entries get
// their SVC word nullified, and unreachable words are zeroed and
// persisted so a later crash cannot resurrect them. reachable must report
// true exactly for the HSIT indices found by the key-index scan (§5.5).
// It returns the number of live entries.
func (t *Table) RebuildVolatile(reachable func(idx uint64) bool, scanLimit uint64) int {
	if scanLimit > t.cap {
		scanLimit = t.cap
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.free = t.free[:0]
	live := 0
	for idx := uint64(0); idx < scanLimit; idx++ {
		if reachable(idx) {
			live++
			t.dev.StoreUint64(nil, t.word1(idx), 0)
			continue
		}
		t.dev.StoreUint64(nil, t.word0(idx), 0)
		t.dev.StoreUint64(nil, t.word1(idx), 0)
		t.dev.Persist(nil, t.word0(idx), EntrySize)
		t.free = append(t.free, idx)
	}
	t.bump.Store(scanLimit)
	t.allocated.Store(int64(live))
	return live
}

// Bump returns the high-water mark of ever-allocated slots (recovery uses
// it as the scan limit).
func (t *Table) Bump() uint64 { return t.bump.Load() }
