package hsit

import (
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/epoch"
	"repro/internal/nvm"
)

func newTable(capacity int) (*Table, *nvm.Device, *epoch.Manager) {
	dev := nvm.New(nvm.Config{Size: capacity*EntrySize + 4096})
	em := epoch.NewManager()
	return New(dev, 0, capacity, em), dev, em
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	f := func(media uint8, length uint16, off uint64) bool {
		p := Pointer{
			Media: Media(media%2 + 1), // PWB or VS
			Len:   int(length),
			Off:   off & MaxOffset,
		}
		return Decode(Encode(p)) == p
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	if !Decode(Encode(Pointer{})).IsNil() {
		t.Fatal("nil pointer round trip failed")
	}
}

func TestEncodeRejectsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("oversized length did not panic")
		}
	}()
	Encode(Pointer{Media: PWB, Len: MaxValueLen + 1})
}

func TestAllocPublishLoad(t *testing.T) {
	tb, _, _ := newTable(16)
	idx, err := tb.Alloc(nil)
	if err != nil {
		t.Fatal(err)
	}
	if !tb.Load(nil, idx).IsNil() {
		t.Fatal("fresh entry not nil")
	}
	p := Pointer{Media: PWB, Len: 100, Off: 4096}
	old := tb.Publish(nil, idx, p)
	if !old.IsNil() {
		t.Fatalf("publish returned old=%v", old)
	}
	if got := tb.Load(nil, idx); got != p {
		t.Fatalf("Load = %v, want %v", got, p)
	}
	if tb.Live() != 1 || tb.SpaceBytes() != EntrySize {
		t.Fatalf("Live=%d Space=%d", tb.Live(), tb.SpaceBytes())
	}
}

func TestPublishReturnsReplacedPointer(t *testing.T) {
	tb, _, _ := newTable(4)
	idx, _ := tb.Alloc(nil)
	p1 := Pointer{Media: PWB, Len: 10, Off: 100}
	p2 := Pointer{Media: VS, Len: 10, Off: 200}
	tb.Publish(nil, idx, p1)
	if old := tb.Publish(nil, idx, p2); old != p1 {
		t.Fatalf("old = %v, want %v", old, p1)
	}
	if got := tb.Load(nil, idx); got != p2 {
		t.Fatalf("Load = %v", got)
	}
}

func TestPublishIf(t *testing.T) {
	tb, _, _ := newTable(4)
	idx, _ := tb.Alloc(nil)
	p1 := Pointer{Media: PWB, Len: 10, Off: 100}
	p2 := Pointer{Media: VS, Len: 10, Off: 200}
	p3 := Pointer{Media: VS, Len: 10, Off: 300}
	tb.Publish(nil, idx, p1)
	if !tb.PublishIf(nil, idx, p1, p2) {
		t.Fatal("PublishIf with matching expect failed")
	}
	if tb.PublishIf(nil, idx, p1, p3) {
		t.Fatal("PublishIf with stale expect succeeded")
	}
	if got := tb.Load(nil, idx); got != p2 {
		t.Fatalf("Load = %v, want %v", got, p2)
	}
}

// The durable-linearizability core: a published pointer survives a crash
// because Publish persists before clearing the dirty bit.
func TestPublishIsDurable(t *testing.T) {
	tb, dev, _ := newTable(4)
	idx, _ := tb.Alloc(nil)
	p := Pointer{Media: PWB, Len: 42, Off: 1234}
	tb.Publish(nil, idx, p)
	dev.Crash()
	if got := tb.Load(nil, idx); got != p {
		t.Fatalf("published pointer lost on crash: %v", got)
	}
}

// Flush-on-read: a reader that sees a dirty pointer persists it before
// use, so the value it acts on can never be rolled back by a crash.
func TestFlushOnRead(t *testing.T) {
	tb, dev, _ := newTable(4)
	idx, _ := tb.Alloc(nil)
	// Simulate a writer that CASed in a dirty pointer and stalled before
	// its flush: store the dirty word directly without persisting.
	p := Pointer{Media: VS, Len: 7, Off: 999}
	dev.StoreUint64(nil, int(idx)*EntrySize, Encode(p)|dirtyBit)

	got := tb.Load(nil, idx)
	if got != p {
		t.Fatalf("Load = %v, want %v", got, p)
	}
	// The read must have persisted the pointer value. (The dirty bit may
	// legitimately persist as set — a crash between the flush and the
	// clearing CAS leaves it; the next reader simply flushes again.)
	dev.Crash()
	w := dev.LoadUint64(nil, int(idx)*EntrySize)
	if Decode(w) != p {
		t.Fatalf("pointer not durable after flush-on-read: %v", Decode(w))
	}
	if got := tb.Load(nil, idx); got != p {
		t.Fatalf("post-crash Load = %v, want %v", got, p)
	}
}

func TestUnpersistedPointerRollsBack(t *testing.T) {
	tb, dev, _ := newTable(4)
	idx, _ := tb.Alloc(nil)
	p1 := Pointer{Media: PWB, Len: 1, Off: 10}
	tb.Publish(nil, idx, p1)
	// A dirty update that nobody read or flushed: lost on crash.
	p2 := Pointer{Media: PWB, Len: 2, Off: 20}
	dev.StoreUint64(nil, int(idx)*EntrySize, Encode(p2)|dirtyBit)
	dev.Crash()
	if got := tb.Load(nil, idx); got != p1 {
		t.Fatalf("after crash = %v, want rollback to %v", got, p1)
	}
}

func TestSVCWord(t *testing.T) {
	tb, _, _ := newTable(4)
	idx, _ := tb.Alloc(nil)
	if tb.LoadSVC(nil, idx) != 0 {
		t.Fatal("fresh SVC word nonzero")
	}
	if !tb.CasSVC(nil, idx, 0, 55) {
		t.Fatal("CasSVC from 0 failed")
	}
	if tb.CasSVC(nil, idx, 0, 66) {
		t.Fatal("stale CasSVC succeeded")
	}
	if tb.LoadSVC(nil, idx) != 55 {
		t.Fatalf("SVC = %d", tb.LoadSVC(nil, idx))
	}
}

func TestAllocExhaustionAndFree(t *testing.T) {
	tb, _, em := newTable(4)
	var idxs []uint64
	for i := 0; i < 4; i++ {
		idx, err := tb.Alloc(nil)
		if err != nil {
			t.Fatal(err)
		}
		idxs = append(idxs, idx)
	}
	if _, err := tb.Alloc(nil); err != ErrFull {
		t.Fatalf("err = %v, want ErrFull", err)
	}
	tb.Free(idxs[2])
	// Not yet reusable: two epochs must pass.
	if _, err := tb.Alloc(nil); err != ErrFull {
		t.Fatal("freed entry reusable before two epochs")
	}
	em.Barrier()
	idx, err := tb.Alloc(nil)
	if err != nil {
		t.Fatal(err)
	}
	if idx != idxs[2] {
		t.Fatalf("recycled %d, want %d", idx, idxs[2])
	}
}

func TestAllocZeroesRecycledEntry(t *testing.T) {
	tb, _, em := newTable(2)
	idx, _ := tb.Alloc(nil)
	tb.Publish(nil, idx, Pointer{Media: VS, Len: 5, Off: 77})
	tb.CasSVC(nil, idx, 0, 123)
	tb.Free(idx)
	em.Barrier()
	idx2, _ := tb.Alloc(nil)
	if idx2 != idx {
		t.Fatalf("expected recycle of %d, got %d", idx, idx2)
	}
	if !tb.Load(nil, idx2).IsNil() || tb.LoadSVC(nil, idx2) != 0 {
		t.Fatal("recycled entry not zeroed")
	}
}

func TestConcurrentPublishersLastWriterWins(t *testing.T) {
	tb, _, _ := newTable(8)
	idx, _ := tb.Alloc(nil)
	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				tb.Publish(nil, idx, Pointer{Media: PWB, Len: w + 1, Off: uint64(i)})
			}
		}(w)
	}
	wg.Wait()
	got := tb.Load(nil, idx)
	if got.Media != PWB || got.Len < 1 || got.Len > workers {
		t.Fatalf("final pointer implausible: %v", got)
	}
}

func TestConcurrentAllocUnique(t *testing.T) {
	tb, _, _ := newTable(1024)
	var mu sync.Mutex
	seen := map[uint64]bool{}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 128; i++ {
				idx, err := tb.Alloc(nil)
				if err != nil {
					t.Errorf("alloc: %v", err)
					return
				}
				mu.Lock()
				if seen[idx] {
					t.Errorf("duplicate index %d", idx)
				}
				seen[idx] = true
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if len(seen) != 1024 {
		t.Fatalf("allocated %d unique, want 1024", len(seen))
	}
}

func TestRebuildVolatile(t *testing.T) {
	tb, dev, em := newTable(8)
	for i := 0; i < 6; i++ {
		idx, _ := tb.Alloc(nil)
		tb.Publish(nil, idx, Pointer{Media: VS, Len: 1, Off: uint64(i)})
		tb.CasSVC(nil, idx, 0, uint64(100+i))
	}
	dev.Crash()
	// Entries 0,2,4 reachable from the key index; others leaked.
	live := tb.RebuildVolatile(func(idx uint64) bool { return idx%2 == 0 }, tb.Bump())
	if live != 3 {
		t.Fatalf("live = %d, want 3", live)
	}
	for idx := uint64(0); idx < 6; idx++ {
		if tb.LoadSVC(nil, idx) != 0 {
			t.Fatalf("SVC word %d not nullified", idx)
		}
		if idx%2 == 1 && !tb.Load(nil, idx).IsNil() {
			t.Fatalf("unreachable entry %d not cleared", idx)
		}
	}
	// Freed slots are immediately allocatable (recovery is quiescent).
	for i := 0; i < 5; i++ { // 3 recycled (1,3,5) + bump 6,7
		if _, err := tb.Alloc(nil); err != nil {
			t.Fatalf("alloc %d after rebuild: %v", i, err)
		}
	}
	if _, err := tb.Alloc(nil); err != ErrFull {
		t.Fatal("capacity accounting broken after rebuild")
	}
	_ = em
}
