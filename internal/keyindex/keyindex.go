// Package keyindex provides the Persistent Key Index of §4.1: a central,
// concurrent, ordered index mapping keys to HSIT entry indices.
//
// The paper uses PACTree and stresses that "Prism can replace it with any
// other range index" because the index is a black box that (a) is
// multicore-scalable, (b) lives on NVM, and (c) "ensures its own crash
// consistency" (§5.5). This implementation honors that contract with a
// lazy concurrent skip list (Herlihy et al.): wait-free lookups, per-node
// locking confined to structural changes, and ordered range scans. NVM
// residency is modeled: every traversal charges NVM read latency and
// bandwidth for the visited nodes, and structural updates charge write
// and persist costs, so the index contributes its real share to the
// virtual-time performance model and to the NVM-space accounting of §7.6.
package keyindex

import (
	"bytes"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/nvm"
)

const maxHeight = 20

// Index is a concurrent ordered map from []byte keys to uint64 values
// (HSIT entry indices in Prism). Create with New.
type Index struct {
	head *node
	dev  *nvm.Device // optional cost model; nil = free accesses
	rnd  atomic.Uint64

	count atomic.Int64
	space atomic.Int64 // modeled NVM bytes
}

type node struct {
	key  []byte
	val  atomic.Uint64
	next []atomic.Pointer[node]

	mu          sync.Mutex
	marked      atomic.Bool
	fullyLinked atomic.Bool
}

func (n *node) height() int { return len(n.next) }

// New returns an empty index. dev may be nil; if set, accesses charge
// that device's latency/bandwidth model.
func New(dev *nvm.Device) *Index {
	h := &node{next: make([]atomic.Pointer[node], maxHeight)}
	h.fullyLinked.Store(true)
	return &Index{head: h, dev: dev, rnd: atomic.Uint64{}}
}

// nodeBytes models the NVM footprint of one index node: key bytes plus
// value, height pointers, and per-node metadata — comparable to a packed
// persistent index node.
func nodeBytes(keyLen, height int) int64 {
	return int64(keyLen) + 8 + int64(height)*8 + 16
}

func (ix *Index) chargeRead(clk nvm.Clock, nodes int) {
	if ix.dev != nil && nodes > 0 {
		// Upper index levels stay CPU-cache-resident; only a few node
		// visits per traversal reach NVM media.
		eff := 4 + nodes/8
		ix.dev.ChargeRead(clk, eff*nvm.LineSize)
	}
}

func (ix *Index) chargeWrite(clk nvm.Clock, bytes int) {
	if ix.dev != nil && bytes > 0 {
		ix.dev.ChargeWrite(clk, bytes)
	}
}

// randomHeight draws a geometric height from a shared deterministic
// stream (p = 1/2), safe for concurrent callers.
func (ix *Index) randomHeight() int {
	s := ix.rnd.Add(0x9e3779b97f4a7c15)
	z := s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	h := 1
	for z&1 == 1 && h < maxHeight {
		h++
		z >>= 1
	}
	return h
}

// findPaths locates key, filling preds/succs for all levels.
// Returns the level at which an equal key was found, or -1.
func (ix *Index) findPaths(key []byte, preds, succs *[maxHeight]*node) (int, int) {
	found := -1
	visited := 0
	pred := ix.head
	for level := maxHeight - 1; level >= 0; level-- {
		cur := pred.next[level].Load()
		for cur != nil && bytes.Compare(cur.key, key) < 0 {
			pred = cur
			cur = pred.next[level].Load()
			visited++
		}
		if found == -1 && cur != nil && bytes.Equal(cur.key, key) {
			found = level
		}
		preds[level] = pred
		succs[level] = cur
	}
	return found, visited + maxHeight
}

// Lookup returns the value stored for key.
func (ix *Index) Lookup(clk nvm.Clock, key []byte) (uint64, bool) {
	var preds, succs [maxHeight]*node
	lf, visited := ix.findPaths(key, &preds, &succs)
	ix.chargeRead(clk, visited)
	if lf == -1 {
		return 0, false
	}
	n := succs[lf]
	if n.fullyLinked.Load() && !n.marked.Load() {
		return n.val.Load(), true
	}
	return 0, false
}

// Insert stores val for key if absent. It returns the value now present
// and whether this call inserted it. Matching Prism's use, an existing
// key's value is returned untouched (the HSIT index for a key never
// changes while the key is live).
func (ix *Index) Insert(clk nvm.Clock, key []byte, val uint64) (uint64, bool) {
	topLayer := ix.randomHeight()
	var preds, succs [maxHeight]*node
	for {
		lf, visited := ix.findPaths(key, &preds, &succs)
		ix.chargeRead(clk, visited)
		if lf != -1 {
			n := succs[lf]
			if !n.marked.Load() {
				for !n.fullyLinked.Load() {
					// An in-flight insert of the same key: wait for it.
					runtime.Gosched()
				}
				return n.val.Load(), false
			}
			// Marked node being deleted: retry until it is unlinked.
			continue
		}

		// Lock predecessors bottom-up and validate.
		var prevPred *node
		valid := true
		highest := -1
		for level := 0; valid && level < topLayer; level++ {
			pred, succ := preds[level], succs[level]
			if pred != prevPred {
				pred.mu.Lock()
				highest = level
				prevPred = pred
			}
			valid = !pred.marked.Load() &&
				pred.next[level].Load() == succ &&
				(succ == nil || !succ.marked.Load())
		}
		if !valid {
			unlockPreds(&preds, highest)
			continue
		}

		n := &node{key: append([]byte(nil), key...), next: make([]atomic.Pointer[node], topLayer)}
		n.val.Store(val)
		for level := 0; level < topLayer; level++ {
			n.next[level].Store(succs[level])
		}
		for level := 0; level < topLayer; level++ {
			preds[level].next[level].Store(n)
		}
		n.fullyLinked.Store(true)
		unlockPreds(&preds, highest)

		nb := nodeBytes(len(key), topLayer)
		ix.space.Add(nb)
		ix.count.Add(1)
		// Persist the new node and the spliced pointers.
		ix.chargeWrite(clk, int(nb))
		return val, true
	}
}

// Upsert stores val for key, replacing any existing value. It returns
// the previous value if the key existed. (Prism itself never replaces an
// index value — the HSIT index is stable per live key — but the baseline
// engines' memtables need classic map semantics.)
func (ix *Index) Upsert(clk nvm.Clock, key []byte, val uint64) (old uint64, existed bool) {
	for {
		var preds, succs [maxHeight]*node
		lf, visited := ix.findPaths(key, &preds, &succs)
		ix.chargeRead(clk, visited)
		if lf == -1 {
			if _, inserted := ix.Insert(clk, key, val); inserted {
				return 0, false
			}
			continue // raced with a concurrent insert: retry as update
		}
		n := succs[lf]
		if n.marked.Load() {
			continue // mid-delete: retry
		}
		for !n.fullyLinked.Load() {
			runtime.Gosched()
		}
		old = n.val.Swap(val)
		ix.chargeWrite(clk, 8)
		return old, true
	}
}

func unlockPreds(preds *[maxHeight]*node, highest int) {
	var prev *node
	for level := 0; level <= highest; level++ {
		if preds[level] != prev {
			preds[level].mu.Unlock()
			prev = preds[level]
		}
	}
}

// Delete removes key, returning its value.
func (ix *Index) Delete(clk nvm.Clock, key []byte) (uint64, bool) {
	var preds, succs [maxHeight]*node
	var victim *node
	isMarked := false
	topLayer := -1
	for {
		lf, visited := ix.findPaths(key, &preds, &succs)
		ix.chargeRead(clk, visited)
		if !isMarked {
			if lf == -1 {
				return 0, false
			}
			victim = succs[lf]
			if !victim.fullyLinked.Load() || victim.marked.Load() || victim.height()-1 != lf {
				return 0, false
			}
			topLayer = victim.height()
			victim.mu.Lock()
			if victim.marked.Load() {
				victim.mu.Unlock()
				return 0, false
			}
			victim.marked.Store(true)
			isMarked = true
		}

		var prevPred *node
		valid := true
		highest := -1
		for level := 0; valid && level < topLayer; level++ {
			pred := preds[level]
			if pred != prevPred {
				pred.mu.Lock()
				highest = level
				prevPred = pred
			}
			valid = !pred.marked.Load() && pred.next[level].Load() == victim
		}
		if !valid {
			unlockPreds(&preds, highest)
			continue
		}

		for level := topLayer - 1; level >= 0; level-- {
			preds[level].next[level].Store(victim.next[level].Load())
		}
		val := victim.val.Load()
		victim.mu.Unlock()
		unlockPreds(&preds, highest)

		ix.space.Add(-nodeBytes(len(key), topLayer))
		ix.count.Add(-1)
		ix.chargeWrite(clk, topLayer*8+8)
		return val, true
	}
}

// Scan visits keys >= start in order, calling fn for each, until fn
// returns false or count entries have been visited (count <= 0 means
// unbounded). It is linearizable per visited node, not per snapshot —
// the semantics of the paper's range scans.
func (ix *Index) Scan(clk nvm.Clock, start []byte, count int, fn func(key []byte, val uint64) bool) {
	var preds, succs [maxHeight]*node
	_, visited := ix.findPaths(start, &preds, &succs)
	n := succs[0]
	seen := 0
	for n != nil {
		visited++
		if n.fullyLinked.Load() && !n.marked.Load() {
			if !fn(n.key, n.val.Load()) {
				break
			}
			seen++
			if count > 0 && seen >= count {
				break
			}
		}
		n = n.next[0].Load()
	}
	ix.chargeRead(clk, visited)
}

// Len returns the number of live keys.
func (ix *Index) Len() int { return int(ix.count.Load()) }

// SpaceBytes returns the modeled NVM footprint in bytes (§7.6 NVM-space
// experiment).
func (ix *Index) SpaceBytes() int64 { return ix.space.Load() }
