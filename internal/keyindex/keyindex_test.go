package keyindex

import (
	"bytes"
	"fmt"
	"sort"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/nvm"
	"repro/internal/sim"
)

func TestInsertLookup(t *testing.T) {
	ix := New(nil)
	if _, ok := ix.Lookup(nil, []byte("missing")); ok {
		t.Fatal("lookup on empty index succeeded")
	}
	v, inserted := ix.Insert(nil, []byte("alpha"), 7)
	if !inserted || v != 7 {
		t.Fatalf("insert = (%d, %v)", v, inserted)
	}
	v, ok := ix.Lookup(nil, []byte("alpha"))
	if !ok || v != 7 {
		t.Fatalf("lookup = (%d, %v)", v, ok)
	}
	if ix.Len() != 1 {
		t.Fatalf("Len = %d", ix.Len())
	}
}

func TestInsertIfAbsentSemantics(t *testing.T) {
	ix := New(nil)
	ix.Insert(nil, []byte("k"), 1)
	v, inserted := ix.Insert(nil, []byte("k"), 2)
	if inserted {
		t.Fatal("second insert of same key claimed success")
	}
	if v != 1 {
		t.Fatalf("existing value = %d, want 1", v)
	}
	if ix.Len() != 1 {
		t.Fatalf("Len = %d after duplicate insert", ix.Len())
	}
}

func TestDelete(t *testing.T) {
	ix := New(nil)
	ix.Insert(nil, []byte("a"), 1)
	ix.Insert(nil, []byte("b"), 2)
	v, ok := ix.Delete(nil, []byte("a"))
	if !ok || v != 1 {
		t.Fatalf("delete = (%d, %v)", v, ok)
	}
	if _, ok := ix.Lookup(nil, []byte("a")); ok {
		t.Fatal("deleted key still visible")
	}
	if _, ok := ix.Delete(nil, []byte("a")); ok {
		t.Fatal("double delete succeeded")
	}
	if _, ok := ix.Delete(nil, []byte("zzz")); ok {
		t.Fatal("delete of absent key succeeded")
	}
	if ix.Len() != 1 {
		t.Fatalf("Len = %d", ix.Len())
	}
}

func TestReinsertAfterDelete(t *testing.T) {
	ix := New(nil)
	ix.Insert(nil, []byte("k"), 1)
	ix.Delete(nil, []byte("k"))
	v, inserted := ix.Insert(nil, []byte("k"), 9)
	if !inserted || v != 9 {
		t.Fatalf("reinsert = (%d, %v)", v, inserted)
	}
	got, ok := ix.Lookup(nil, []byte("k"))
	if !ok || got != 9 {
		t.Fatalf("lookup after reinsert = (%d, %v)", got, ok)
	}
}

func TestScanOrderAndBounds(t *testing.T) {
	ix := New(nil)
	for i := 99; i >= 0; i-- {
		ix.Insert(nil, []byte(fmt.Sprintf("key%03d", i)), uint64(i))
	}
	var got []uint64
	ix.Scan(nil, []byte("key010"), 5, func(k []byte, v uint64) bool {
		got = append(got, v)
		return true
	})
	want := []uint64{10, 11, 12, 13, 14}
	if len(got) != len(want) {
		t.Fatalf("scan returned %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("scan[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestScanEarlyStopAndUnbounded(t *testing.T) {
	ix := New(nil)
	for i := 0; i < 20; i++ {
		ix.Insert(nil, []byte(fmt.Sprintf("%02d", i)), uint64(i))
	}
	n := 0
	ix.Scan(nil, nil, 0, func(k []byte, v uint64) bool {
		n++
		return n < 7
	})
	if n != 7 {
		t.Fatalf("early stop visited %d", n)
	}
	n = 0
	ix.Scan(nil, []byte("15"), 0, func(k []byte, v uint64) bool { n++; return true })
	if n != 5 {
		t.Fatalf("unbounded tail scan visited %d, want 5", n)
	}
}

func TestScanSkipsDeleted(t *testing.T) {
	ix := New(nil)
	for i := 0; i < 10; i++ {
		ix.Insert(nil, []byte(fmt.Sprintf("%02d", i)), uint64(i))
	}
	ix.Delete(nil, []byte("03"))
	ix.Delete(nil, []byte("04"))
	var keys []string
	ix.Scan(nil, []byte("02"), 4, func(k []byte, v uint64) bool {
		keys = append(keys, string(k))
		return true
	})
	want := []string{"02", "05", "06", "07"}
	if len(keys) != 4 {
		t.Fatalf("scan = %v", keys)
	}
	for i := range want {
		if keys[i] != want[i] {
			t.Fatalf("scan = %v, want %v", keys, want)
		}
	}
}

func TestCostCharging(t *testing.T) {
	dev := nvm.New(nvm.Config{Size: 4096})
	ix := New(dev)
	clk := sim.NewClock(0)
	ix.Insert(clk, []byte("a"), 1)
	if clk.Now() == 0 {
		t.Fatal("insert charged nothing")
	}
	before := clk.Now()
	ix.Lookup(clk, []byte("a"))
	if clk.Now() <= before {
		t.Fatal("lookup charged nothing")
	}
}

func TestSpaceAccounting(t *testing.T) {
	ix := New(nil)
	if ix.SpaceBytes() != 0 {
		t.Fatal("empty index has space")
	}
	for i := 0; i < 100; i++ {
		ix.Insert(nil, []byte(fmt.Sprintf("key-%04d", i)), uint64(i))
	}
	full := ix.SpaceBytes()
	if full <= 0 {
		t.Fatal("no space accounted")
	}
	for i := 0; i < 100; i++ {
		ix.Delete(nil, []byte(fmt.Sprintf("key-%04d", i)))
	}
	if ix.SpaceBytes() != 0 {
		t.Fatalf("space leak after deleting all: %d", ix.SpaceBytes())
	}
}

func TestConcurrentInsertDisjoint(t *testing.T) {
	ix := New(nil)
	const workers, per = 8, 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				key := []byte(fmt.Sprintf("w%d-%05d", w, i))
				if _, inserted := ix.Insert(nil, key, uint64(w*per+i)); !inserted {
					t.Errorf("disjoint insert failed for %s", key)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if ix.Len() != workers*per {
		t.Fatalf("Len = %d, want %d", ix.Len(), workers*per)
	}
	for w := 0; w < workers; w++ {
		for i := 0; i < per; i += 37 {
			v, ok := ix.Lookup(nil, []byte(fmt.Sprintf("w%d-%05d", w, i)))
			if !ok || v != uint64(w*per+i) {
				t.Fatalf("lookup w%d-%05d = (%d,%v)", w, i, v, ok)
			}
		}
	}
}

func TestConcurrentSameKeyOneWinner(t *testing.T) {
	ix := New(nil)
	const workers = 8
	wins := make([]bool, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			_, inserted := ix.Insert(nil, []byte("contended"), uint64(w))
			wins[w] = inserted
		}(w)
	}
	wg.Wait()
	n := 0
	for _, won := range wins {
		if won {
			n++
		}
	}
	if n != 1 {
		t.Fatalf("%d winners for one key", n)
	}
}

func TestConcurrentMixedOps(t *testing.T) {
	ix := New(nil)
	const workers = 6
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := sim.NewRNG(uint64(w) + 1)
			for i := 0; i < 2000; i++ {
				key := []byte(fmt.Sprintf("%04d", rng.Intn(300)))
				switch rng.Intn(4) {
				case 0:
					ix.Insert(nil, key, rng.Uint64())
				case 1:
					ix.Delete(nil, key)
				case 2:
					ix.Lookup(nil, key)
				case 3:
					ix.Scan(nil, key, 10, func(k []byte, v uint64) bool { return true })
				}
			}
		}(w)
	}
	wg.Wait()
	// Post-condition: scan visits strictly increasing keys and Len matches.
	var prev []byte
	n := 0
	ix.Scan(nil, nil, 0, func(k []byte, v uint64) bool {
		if prev != nil && bytes.Compare(prev, k) >= 0 {
			t.Fatalf("scan out of order: %q then %q", prev, k)
		}
		prev = append(prev[:0], k...)
		n++
		return true
	})
	if n != ix.Len() {
		t.Fatalf("scan count %d != Len %d", n, ix.Len())
	}
}

// Property: the index agrees with a reference map under a random
// single-threaded operation sequence.
func TestMatchesReferenceModel(t *testing.T) {
	f := func(seed uint64) bool {
		rng := sim.NewRNG(seed)
		ix := New(nil)
		ref := map[string]uint64{}
		for i := 0; i < 800; i++ {
			key := fmt.Sprintf("%03d", rng.Intn(120))
			switch rng.Intn(3) {
			case 0:
				v := rng.Uint64()
				if _, exists := ref[key]; !exists {
					ref[key] = v
				}
				ix.Insert(nil, []byte(key), v)
			case 1:
				delete(ref, key)
				ix.Delete(nil, []byte(key))
			case 2:
				got, ok := ix.Lookup(nil, []byte(key))
				want, exists := ref[key]
				if ok != exists || (ok && got != want) {
					return false
				}
			}
		}
		if ix.Len() != len(ref) {
			return false
		}
		// Full scan must equal sorted reference keys.
		var want []string
		for k := range ref {
			want = append(want, k)
		}
		sort.Strings(want)
		var got []string
		ix.Scan(nil, nil, 0, func(k []byte, v uint64) bool {
			got = append(got, string(k))
			return true
		})
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkLookup(b *testing.B) {
	ix := New(nil)
	for i := 0; i < 100000; i++ {
		ix.Insert(nil, []byte(fmt.Sprintf("user%08d", i)), uint64(i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.Lookup(nil, []byte(fmt.Sprintf("user%08d", i%100000)))
	}
}

func BenchmarkInsert(b *testing.B) {
	ix := New(nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.Insert(nil, []byte(fmt.Sprintf("user%010d", i)), uint64(i))
	}
}
