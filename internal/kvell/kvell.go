// Package kvell reimplements the KVell baseline (Lepers et al., SOSP'19)
// the paper compares against in §7.3: a shared-nothing key-value store
// over DRAM + SSD with no NVM.
//
// Design, following the original:
//
//   - The keyspace is hash-partitioned across worker threads; each
//     worker owns an in-DRAM sorted index, a slab of fixed-size item
//     slots on its SSD, and a page cache. No structure is shared, so
//     there is no synchronization — and no defense against skew: a hot
//     partition's worker saturates while others idle (§7.6).
//   - Items live in 4 KB pages; sub-page updates are read-modify-write.
//     Writes are committed when the page write completes (no commit
//     log), reads hit the page cache or fetch whole pages.
//   - Workers batch IO up to a queue depth before submitting, which
//     yields bandwidth at the cost of queueing latency — the tail-latency
//     amplification Table 3 shows.
//   - Scans must consult every partition and merge, costing an index
//     probe and page reads per partition.
//   - Recovery scans all slabs to rebuild the in-memory indexes.
package kvell

import (
	"bytes"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/engine"
	"repro/internal/keyindex"
	"repro/internal/sim"
	"repro/internal/ssd"
)

// PageSize is the slab IO granularity (4 KB, as in KVell).
const PageSize = 4096

// Config parameterizes a KVell instance.
type Config struct {
	Workers    int   // shared-nothing partitions (default 4)
	NumSSDs    int   // devices; workers are striped across them (default 2)
	SSDBytes   int64 // per-device capacity (default 64 MiB)
	ItemSize   int   // fixed slot size incl. 16-byte header (default 1040)
	CacheBytes int64 // total DRAM page cache (split across workers)
	QueueDepth int   // IO batch limit per worker (default 64)
	SSD        ssd.Config

	// Clients is the number of client (injector) thread handles.
	Clients int
}

func (c *Config) applyDefaults() {
	if c.NumSSDs == 0 {
		c.NumSSDs = 2
	}
	if c.Workers == 0 {
		c.Workers = 3 * c.NumSSDs // KVell's own configuration (§7.1)
	}
	if c.SSDBytes == 0 {
		c.SSDBytes = 64 << 20
	}
	if c.ItemSize == 0 {
		c.ItemSize = 1040
	}
	if c.CacheBytes == 0 {
		c.CacheBytes = 4 << 20
	}
	if c.QueueDepth == 0 {
		c.QueueDepth = 64
	}
	if c.Clients == 0 {
		c.Clients = c.Workers
	}
}

const itemHeader = 16 // [keyLen:4][valLen:4][keyHash:8] per slot

// Store is a KVell instance.
type Store struct {
	cfg     Config
	devs    []*ssd.Device
	workers []*worker
	clients []*client

	mu     sync.Mutex
	userWr int64
}

// request is one operation shipped to a worker.
type request struct {
	op      opKind
	key     []byte
	value   []byte
	scanCnt int
	slots   []int64 // opFetch targets
	arrive  int64
	resp    chan response
}

type opKind uint8

const (
	opPut opKind = iota
	opGet
	opDelete
	opScanKeys // phase 1: local index range (keys + slots), no IO
	opFetch    // phase 2: fetch values for chosen slots
)

type response struct {
	done  int64
	value []byte
	err   error
	items []engine.Pair // scan results
	slots []int64       // opScanKeys slot numbers, parallel to items
}

// Open creates a KVell store.
func Open(cfg Config) *Store {
	cfg.applyDefaults()
	s := &Store{cfg: cfg}
	for i := 0; i < cfg.NumSSDs; i++ {
		sc := cfg.SSD
		sc.Size = cfg.SSDBytes
		sc.Name = fmt.Sprintf("kvell-ssd%d", i)
		s.devs = append(s.devs, ssd.New(sc))
	}
	perWorkerSlab := cfg.SSDBytes * int64(cfg.NumSSDs) / int64(cfg.Workers)
	perWorkerSlab = perWorkerSlab / PageSize * PageSize
	for w := 0; w < cfg.Workers; w++ {
		dev := s.devs[w%cfg.NumSSDs]
		base := int64(w/cfg.NumSSDs) * perWorkerSlab
		wk := newWorker(w, dev, base, perWorkerSlab, cfg)
		s.workers = append(s.workers, wk)
		go wk.run()
	}
	for c := 0; c < cfg.Clients; c++ {
		s.clients = append(s.clients, &client{s: s, clk: sim.NewClock(0)})
	}
	return s
}

// Thread returns client handle i.
func (s *Store) Thread(i int) engine.KV { return s.clients[i] }

// NumThreads returns the number of client handles.
func (s *Store) NumThreads() int { return len(s.clients) }

// Close stops the workers.
func (s *Store) Close() error {
	for _, w := range s.workers {
		close(w.in)
	}
	for _, w := range s.workers {
		<-w.done
	}
	return nil
}

// WriteAmp returns (device bytes written, user bytes written).
func (s *Store) WriteAmp() (device, user int64) {
	for _, d := range s.devs {
		device += d.Stats().BytesWritten
	}
	s.mu.Lock()
	user = s.userWr
	s.mu.Unlock()
	return device, user
}

func (s *Store) addUserBytes(n int) {
	s.mu.Lock()
	s.userWr += int64(n)
	s.mu.Unlock()
}

// partition routes a key to its worker.
func (s *Store) partition(key []byte) *worker {
	h := uint64(0xcbf29ce484222325)
	for _, b := range key {
		h ^= uint64(b)
		h *= 0x100000001b3
	}
	return s.workers[h%uint64(len(s.workers))]
}

// Recover simulates KVell's restart path: every worker scans its entire
// slab to rebuild the in-memory index. It returns the modeled recovery
// time (max across workers, which run in parallel).
func (s *Store) Recover() int64 {
	var maxNS int64
	var mu sync.Mutex
	var wg sync.WaitGroup
	for _, w := range s.workers {
		wg.Add(1)
		go func(w *worker) {
			defer wg.Done()
			ns := w.rebuildFromSlab()
			mu.Lock()
			if ns > maxNS {
				maxNS = ns
			}
			mu.Unlock()
		}(w)
	}
	wg.Wait()
	return maxNS
}

// client is one injector thread handle.
type client struct {
	s   *Store
	clk *sim.Clock
}

// Clock returns the client's virtual clock.
func (c *client) Clock() *sim.Clock { return c.clk }

func (c *client) call(w *worker, req request) response {
	req.arrive = c.clk.Now()
	req.resp = make(chan response, 1)
	w.in <- req
	r := <-req.resp
	c.clk.AdvanceTo(r.done)
	return r
}

// Put stores key/value (insert or update).
func (c *client) Put(key, value []byte) error {
	c.s.addUserBytes(len(value))
	r := c.call(c.s.partition(key), request{op: opPut, key: key, value: value})
	return r.err
}

// Get fetches the value for key.
func (c *client) Get(key []byte) ([]byte, error) {
	r := c.call(c.s.partition(key), request{op: opGet, key: key})
	return r.value, r.err
}

// Delete removes key.
func (c *client) Delete(key []byte) error {
	r := c.call(c.s.partition(key), request{op: opDelete, key: key})
	return r.err
}

// Scan is KVell's partitioned range query: every worker is asked for
// its local index range (keys only), the client merges to pick the
// winners, then fetches each winner's item from its partition — one
// index probe per partition plus one page read per item, with no
// spatial locality (§7.3: "KVell incurs more IOs to the SSD for a given
// key range").
func (c *client) Scan(start []byte, count int, fn func(key, value []byte) bool) error {
	if count <= 0 {
		count = 1 << 30
	}
	type cand struct {
		key    []byte
		slot   int64
		worker int
	}
	var all []cand
	for wi, w := range c.s.workers {
		r := c.call(w, request{op: opScanKeys, key: start, scanCnt: count})
		if r.err != nil {
			return r.err
		}
		for i, p := range r.items {
			all = append(all, cand{key: p.Key, slot: r.slots[i], worker: wi})
		}
	}
	sort.Slice(all, func(a, b int) bool { return bytes.Compare(all[a].key, all[b].key) < 0 })
	if len(all) > count {
		all = all[:count]
	}
	// Group winners per worker, fetch, then emit in key order.
	bySlot := map[string][]byte{}
	perWorker := map[int][]int64{}
	for _, cd := range all {
		perWorker[cd.worker] = append(perWorker[cd.worker], cd.slot)
	}
	for wi, slots := range perWorker {
		r := c.call(c.s.workers[wi], request{op: opFetch, slots: slots})
		if r.err != nil {
			return r.err
		}
		for i, p := range r.items {
			bySlot[fmt.Sprintf("%d/%d", wi, slots[i])] = p.Value
		}
	}
	for _, cd := range all {
		v := bySlot[fmt.Sprintf("%d/%d", cd.worker, cd.slot)]
		if v == nil {
			continue
		}
		if !fn(cd.key, v) {
			break
		}
	}
	return nil
}

// worker owns one partition.
type worker struct {
	id   int
	cfg  Config
	dev  *ssd.Device
	base int64 // slab base offset on dev
	size int64 // slab bytes

	in   chan request
	done chan struct{}
	busy atomic.Int64 // latest CPU-busy timestamp (skew diagnostics)

	index *keyindex.Index // key -> slot number
	slots int64           // slots in the slab
	next  int64           // bump allocator
	free  []int64

	itemsPerPage int
	cache        *pageCache
}

func newWorker(id int, dev *ssd.Device, base, size int64, cfg Config) *worker {
	w := &worker{
		id:   id,
		cfg:  cfg,
		dev:  dev,
		base: base,
		size: size,
		in:   make(chan request, 4*cfg.QueueDepth),
		done: make(chan struct{}),

		index:        keyindex.New(nil),
		itemsPerPage: PageSize / cfg.ItemSize,
	}
	if w.itemsPerPage == 0 {
		panic("kvell: item size exceeds page size")
	}
	w.slots = size / PageSize * int64(w.itemsPerPage)
	w.cache = newPageCache(cfg.CacheBytes / int64(cfg.Workers) / PageSize)
	return w
}

// slotLoc returns the page offset (device) and intra-page byte offset.
func (w *worker) slotLoc(slot int64) (pageOff int64, intra int) {
	page := slot / int64(w.itemsPerPage)
	idx := int(slot % int64(w.itemsPerPage))
	return w.base + page*PageSize, idx * w.cfg.ItemSize
}

// run is the worker loop: drain a batch (up to QueueDepth), process it,
// respond. Batching is what gives KVell bandwidth — and queueing delay.
func (w *worker) run() {
	defer close(w.done)
	for {
		req, ok := <-w.in
		if !ok {
			return
		}
		batch := []request{req}
		for len(batch) < w.cfg.QueueDepth {
			select {
			case r, ok := <-w.in:
				if !ok {
					w.process(batch)
					return
				}
				batch = append(batch, r)
			default:
				goto full
			}
		}
	full:
		w.process(batch)
	}
}

// ioCtx tracks one request's asynchronous IO completion independently of
// the worker's CPU clock. KVell submits up to QueueDepth IOs before
// reaping completions, so device latencies within a batch overlap; only
// CPU work serializes on the worker.
type ioCtx struct {
	ioDone int64
}

func (x *ioCtx) observe(t int64) {
	if t > x.ioDone {
		x.ioDone = t
	}
}

// complete is a request's completion time: its CPU window plus its last IO.
func complete(clk *sim.Clock, x *ioCtx) int64 {
	t := clk.Now()
	if x.ioDone > t {
		t = x.ioDone
	}
	return t
}

// process services one drained batch. The batch is the set of requests
// that are genuinely concurrent, so the worker's serial CPU is modeled
// within it: requests are served in virtual-arrival order, each window
// starting no earlier than its arrival and no earlier than the previous
// window's end. Across batches the worker may backfill idle gaps (a new
// batch's earlier arrivals are not stranded behind an old batch's
// future-time request). IO overlaps through the device queues, with each
// request's completion tracked separately (async queue-depth semantics).
func (w *worker) process(batch []request) {
	sort.Slice(batch, func(a, b int) bool { return batch[a].arrive < batch[b].arrive })
	var cpuFree int64
	for _, r := range batch {
		start := r.arrive
		if cpuFree > start {
			start = cpuFree
		}
		end := start + 1500 // hash, index, queue handling
		cpuFree = end
		clk := sim.NewClock(end)
		var x ioCtx
		switch r.op {
		case opGet:
			r.resp <- w.get(clk, r, &x)
		case opPut:
			r.resp <- w.put(clk, r, &x)
		case opDelete:
			r.resp <- w.del(clk, r, &x)
		case opScanKeys:
			r.resp <- w.scanKeys(clk, r)
		case opFetch:
			r.resp <- w.fetch(clk, r, &x)
		}
		cpuFree = clk.Now() // CPU consumed by cache copies, index walks
		if t := clk.Now(); t > w.busy.Load() {
			w.busy.Store(t)
		}
	}
}

// readPage returns the page at pageOff through the cache, submitting a
// device read at the worker's current CPU time on a miss. The data is
// available immediately for processing; the request's completion waits
// for the IO via ctx.
func (w *worker) readPage(clk *sim.Clock, x *ioCtx, pageOff int64) []byte {
	if pg := w.cache.get(pageOff); pg != nil {
		clk.Advance(300) // DRAM hit
		return pg
	}
	buf := make([]byte, PageSize)
	comps := w.dev.Submit(clk.Now(), []ssd.Request{{Op: ssd.OpRead, Offset: pageOff, Data: buf}})
	x.observe(comps[0].DoneTime)
	w.cache.put(pageOff, buf)
	return buf
}

// writePage submits the page write (commit point is its completion,
// carried in ctx) and updates the cache.
func (w *worker) writePage(clk *sim.Clock, x *ioCtx, pageOff int64, pg []byte) {
	at := clk.Now()
	if x.ioDone > at {
		at = x.ioDone // RMW: the write depends on the read completing
	}
	comps := w.dev.Submit(at, []ssd.Request{{Op: ssd.OpWrite, Offset: pageOff, Data: pg}})
	w.dev.Ack(comps[0])
	x.observe(comps[0].DoneTime)
	w.cache.put(pageOff, pg)
}

func (w *worker) get(clk *sim.Clock, r request, x *ioCtx) response {
	slot, ok := w.index.Lookup(nil, r.key)
	if !ok {
		return response{done: complete(clk, x), err: engine.ErrNotFound}
	}
	pageOff, intra := w.slotLoc(int64(slot))
	pg := w.readPage(clk, x, pageOff)
	_, val, ok := decodeItem(pg[intra:], w.cfg.ItemSize)
	if !ok {
		return response{done: complete(clk, x), err: engine.ErrNotFound}
	}
	return response{done: complete(clk, x), value: append([]byte(nil), val...)}
}

func (w *worker) put(clk *sim.Clock, r request, x *ioCtx) response {
	if len(r.key)+len(r.value)+itemHeader > w.cfg.ItemSize {
		return response{done: complete(clk, x), err: fmt.Errorf("kvell: item exceeds slot size %d", w.cfg.ItemSize)}
	}
	slot64, ok := w.index.Lookup(nil, r.key)
	var slot int64
	if ok {
		slot = int64(slot64)
	} else {
		var err error
		slot, err = w.allocSlot()
		if err != nil {
			return response{done: complete(clk, x), err: err}
		}
		w.index.Insert(nil, r.key, uint64(slot))
	}
	// Read-modify-write of the slot's page.
	pageOff, intra := w.slotLoc(slot)
	pg := w.readPage(clk, x, pageOff)
	npg := append([]byte(nil), pg...)
	encodeItem(npg[intra:intra+w.cfg.ItemSize], r.key, r.value)
	w.writePage(clk, x, pageOff, npg)
	return response{done: complete(clk, x)}
}

func (w *worker) del(clk *sim.Clock, r request, x *ioCtx) response {
	slot, ok := w.index.Delete(nil, r.key)
	if !ok {
		return response{done: complete(clk, x), err: engine.ErrNotFound}
	}
	pageOff, intra := w.slotLoc(int64(slot))
	pg := w.readPage(clk, x, pageOff)
	npg := append([]byte(nil), pg...)
	for i := 0; i < w.cfg.ItemSize; i++ {
		npg[intra+i] = 0
	}
	w.writePage(clk, x, pageOff, npg)
	w.free = append(w.free, int64(slot))
	return response{done: complete(clk, x)}
}

// scanKeys returns the local index range — keys and slots, no data IO.
func (w *worker) scanKeys(clk *sim.Clock, r request) response {
	var items []engine.Pair
	var slots []int64
	w.index.Scan(nil, r.key, r.scanCnt, func(k []byte, v uint64) bool {
		items = append(items, engine.Pair{Key: append([]byte(nil), k...)})
		slots = append(slots, int64(v))
		return true
	})
	clk.Advance(int64(len(items)) * 150) // index-walk CPU
	return response{done: clk.Now(), items: items, slots: slots}
}

// fetch reads the items in the given slots (page-granularity IO,
// overlapped within the batch).
func (w *worker) fetch(clk *sim.Clock, r request, x *ioCtx) response {
	items := make([]engine.Pair, len(r.slots))
	for i, slot := range r.slots {
		pageOff, intra := w.slotLoc(slot)
		pg := w.readPage(clk, x, pageOff)
		k, val, ok := decodeItem(pg[intra:], w.cfg.ItemSize)
		if ok {
			items[i] = engine.Pair{Key: append([]byte(nil), k...), Value: append([]byte(nil), val...)}
		}
	}
	return response{done: complete(clk, x), items: items}
}

func (w *worker) allocSlot() (int64, error) {
	if n := len(w.free); n > 0 {
		s := w.free[n-1]
		w.free = w.free[:n-1]
		return s, nil
	}
	if w.next >= w.slots {
		return 0, fmt.Errorf("kvell: worker %d slab full", w.id)
	}
	w.next++
	return w.next - 1, nil
}

// rebuildFromSlab scans the worker's slab pages and rebuilds the index;
// returns the modeled time.
func (w *worker) rebuildFromSlab() int64 {
	clk := sim.NewClock(0)
	w.index = keyindex.New(nil)
	w.free = w.free[:0]
	used := w.next / int64(w.itemsPerPage) * PageSize
	if w.next%int64(w.itemsPerPage) != 0 {
		used += PageSize
	}
	const extent = 1 << 20
	for off := int64(0); off < used; off += extent {
		n := extent
		if int64(n) > used-off {
			n = int(used - off)
		}
		buf := make([]byte, n)
		comps := w.dev.Submit(clk.Now(), []ssd.Request{{Op: ssd.OpRead, Offset: w.base + off, Data: buf}})
		clk.AdvanceTo(comps[0].DoneTime)
		for p := 0; p+PageSize <= n; p += PageSize {
			for it := 0; it < w.itemsPerPage; it++ {
				slot := (off+int64(p))/PageSize*int64(w.itemsPerPage) + int64(it)
				key, _, ok := decodeItem(buf[p+it*w.cfg.ItemSize:p+(it+1)*w.cfg.ItemSize], w.cfg.ItemSize)
				if ok {
					w.index.Insert(nil, key, uint64(slot))
				} else if slot < w.next {
					w.free = append(w.free, slot)
				}
			}
		}
		clk.Advance(int64(n / 64)) // CPU parse cost
	}
	return clk.Now()
}

func encodeItem(dst []byte, key, val []byte) {
	putU32(dst[0:], uint32(len(key)))
	putU32(dst[4:], uint32(len(val)))
	putU64(dst[8:], 0xdead1077)
	copy(dst[itemHeader:], key)
	copy(dst[itemHeader+len(key):], val)
}

func decodeItem(src []byte, itemSize int) (key, val []byte, ok bool) {
	if len(src) < itemHeader {
		return nil, nil, false
	}
	kl := int(getU32(src[0:]))
	vl := int(getU32(src[4:]))
	if getU64(src[8:]) != 0xdead1077 || kl == 0 || itemHeader+kl+vl > itemSize || itemHeader+kl+vl > len(src) {
		return nil, nil, false
	}
	return src[itemHeader : itemHeader+kl], src[itemHeader+kl : itemHeader+kl+vl], true
}

func putU32(b []byte, v uint32) {
	b[0], b[1], b[2], b[3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
}
func getU32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}
func putU64(b []byte, v uint64) {
	putU32(b, uint32(v))
	putU32(b[4:], uint32(v>>32))
}
func getU64(b []byte) uint64 {
	return uint64(getU32(b)) | uint64(getU32(b[4:]))<<32
}

// pageCache is a simple LRU of whole pages.
type pageCache struct {
	capPages int64
	m        map[int64]*cacheNode
	head     *cacheNode
	tail     *cacheNode
}

type cacheNode struct {
	off        int64
	pg         []byte
	prev, next *cacheNode
}

func newPageCache(capPages int64) *pageCache {
	if capPages < 1 {
		capPages = 1
	}
	return &pageCache{capPages: capPages, m: make(map[int64]*cacheNode)}
}

func (c *pageCache) get(off int64) []byte {
	n := c.m[off]
	if n == nil {
		return nil
	}
	c.moveFront(n)
	return n.pg
}

func (c *pageCache) put(off int64, pg []byte) {
	if n := c.m[off]; n != nil {
		n.pg = pg
		c.moveFront(n)
		return
	}
	n := &cacheNode{off: off, pg: pg}
	c.m[off] = n
	c.pushFront(n)
	if int64(len(c.m)) > c.capPages {
		victim := c.tail
		c.unlink(victim)
		delete(c.m, victim.off)
	}
}

func (c *pageCache) pushFront(n *cacheNode) {
	n.next = c.head
	n.prev = nil
	if c.head != nil {
		c.head.prev = n
	}
	c.head = n
	if c.tail == nil {
		c.tail = n
	}
}

func (c *pageCache) unlink(n *cacheNode) {
	if n.prev != nil {
		n.prev.next = n.next
	} else {
		c.head = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	} else {
		c.tail = n.prev
	}
	n.prev, n.next = nil, nil
}

func (c *pageCache) moveFront(n *cacheNode) {
	c.unlink(n)
	c.pushFront(n)
}
