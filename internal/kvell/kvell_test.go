package kvell

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"

	"repro/internal/engine"
)

func open(t *testing.T, mutate func(*Config)) *Store {
	t.Helper()
	cfg := Config{
		Workers:    4,
		NumSSDs:    2,
		SSDBytes:   8 << 20,
		ItemSize:   128,
		CacheBytes: 256 << 10,
		Clients:    2,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	s := Open(cfg)
	t.Cleanup(func() { s.Close() })
	return s
}

func key(i int) []byte   { return []byte(fmt.Sprintf("user%08d", i)) }
func value(i int) []byte { return []byte(fmt.Sprintf("val-%04d", i)) }

func TestPutGetDelete(t *testing.T) {
	s := open(t, nil)
	c := s.Thread(0)
	if err := c.Put(key(1), value(1)); err != nil {
		t.Fatal(err)
	}
	got, err := c.Get(key(1))
	if err != nil || !bytes.Equal(got, value(1)) {
		t.Fatalf("Get = %q, %v", got, err)
	}
	if _, err := c.Get(key(2)); !errors.Is(err, engine.ErrNotFound) {
		t.Fatalf("missing key: %v", err)
	}
	if err := c.Delete(key(1)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Get(key(1)); !errors.Is(err, engine.ErrNotFound) {
		t.Fatalf("deleted key: %v", err)
	}
}

func TestUpdateInPlace(t *testing.T) {
	s := open(t, nil)
	c := s.Thread(0)
	for v := 0; v < 5; v++ {
		if err := c.Put(key(3), value(v)); err != nil {
			t.Fatal(err)
		}
	}
	got, _ := c.Get(key(3))
	if !bytes.Equal(got, value(4)) {
		t.Fatalf("latest = %q", got)
	}
}

func TestManyKeysAcrossPartitions(t *testing.T) {
	s := open(t, nil)
	c := s.Thread(0)
	const n = 2000
	for i := 0; i < n; i++ {
		if err := c.Put(key(i), value(i)); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
	}
	for i := 0; i < n; i += 7 {
		got, err := c.Get(key(i))
		if err != nil || !bytes.Equal(got, value(i)) {
			t.Fatalf("get %d: %q, %v", i, got, err)
		}
	}
}

func TestScanMergesPartitions(t *testing.T) {
	s := open(t, nil)
	c := s.Thread(0)
	for i := 0; i < 300; i++ {
		c.Put(key(i), value(i))
	}
	var keys []string
	err := c.Scan(key(100), 20, func(k, v []byte) bool {
		keys = append(keys, string(k))
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 20 {
		t.Fatalf("scan visited %d", len(keys))
	}
	for i, k := range keys {
		if k != string(key(100+i)) {
			t.Fatalf("scan[%d] = %s, want %s", i, k, key(100+i))
		}
	}
}

func TestConcurrentClients(t *testing.T) {
	s := open(t, func(c *Config) { c.Clients = 4 })
	var wg sync.WaitGroup
	for ci := 0; ci < 4; ci++ {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			c := s.Thread(ci)
			for i := 0; i < 300; i++ {
				k := []byte(fmt.Sprintf("c%d-%05d", ci, i))
				if err := c.Put(k, value(i)); err != nil {
					t.Errorf("put: %v", err)
					return
				}
				if got, err := c.Get(k); err != nil || !bytes.Equal(got, value(i)) {
					t.Errorf("get: %q, %v", got, err)
					return
				}
			}
		}(ci)
	}
	wg.Wait()
}

func TestClockAdvancesAndQueueingCosts(t *testing.T) {
	s := open(t, nil)
	c := s.Thread(0)
	c.Put(key(1), value(1))
	if c.Clock().Now() == 0 {
		t.Fatal("no virtual time charged")
	}
	// A cache-miss read must cost at least the SSD read latency.
	s2 := open(t, func(cfg *Config) { cfg.CacheBytes = 4096 * 4 })
	c2 := s2.Thread(0)
	for i := 0; i < 200; i++ {
		c2.Put(key(i), value(i))
	}
	before := c2.Clock().Now()
	c2.Get(key(0)) // long evicted
	if c2.Clock().Now()-before < 50_000 {
		t.Fatalf("cache-miss read cost only %dns", c2.Clock().Now()-before)
	}
}

func TestWriteAmpPageGranularity(t *testing.T) {
	s := open(t, nil)
	c := s.Thread(0)
	const n = 500
	for i := 0; i < n; i++ {
		if err := c.Put(key(i), make([]byte, 64)); err != nil {
			t.Fatal(err)
		}
	}
	dev, user := s.WriteAmp()
	if user != n*64 {
		t.Fatalf("user bytes = %d", user)
	}
	// Every put writes a whole 4KB page: WAF must be roughly
	// PageSize/64, far above 1.
	if waf := float64(dev) / float64(user); waf < 10 {
		t.Fatalf("WAF = %.1f, expected page-granularity amplification", waf)
	}
}

func TestRecoveryRebuildsIndexes(t *testing.T) {
	s := open(t, nil)
	c := s.Thread(0)
	const n = 500
	for i := 0; i < n; i++ {
		c.Put(key(i), value(i))
	}
	c.Delete(key(3))
	ns := s.Recover()
	if ns <= 0 {
		t.Fatal("recovery took no virtual time")
	}
	for i := 0; i < n; i++ {
		got, err := c.Get(key(i))
		if i == 3 {
			if !errors.Is(err, engine.ErrNotFound) {
				t.Fatalf("deleted key resurrected: %v", err)
			}
			continue
		}
		if err != nil || !bytes.Equal(got, value(i)) {
			t.Fatalf("key %d after recovery: %q, %v", i, got, err)
		}
	}
	// Rewrites after recovery must not corrupt (freelist correctness).
	for i := 0; i < 50; i++ {
		if err := c.Put(key(n+i), value(i)); err != nil {
			t.Fatal(err)
		}
	}
}

func TestOversizedItemRejected(t *testing.T) {
	s := open(t, nil)
	if err := s.Thread(0).Put(key(1), make([]byte, 4096)); err == nil {
		t.Fatal("oversized item accepted")
	}
}

func TestSkewCreatesImbalance(t *testing.T) {
	// All requests to one hot key load a single partition; its worker
	// clock should be far ahead of the others'.
	s := open(t, func(c *Config) { c.Workers = 4 })
	c := s.Thread(0)
	for i := 0; i < 500; i++ {
		c.Put([]byte("hotkey"), value(i))
	}
	hot := s.partition([]byte("hotkey"))
	busy, idle := hot.busy.Load(), int64(0)
	for _, w := range s.workers {
		if w != hot && w.busy.Load() > idle {
			idle = w.busy.Load()
		}
	}
	if busy <= idle {
		t.Fatalf("no imbalance: hot=%d others<=%d", busy, idle)
	}
}
