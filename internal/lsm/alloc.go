package lsm

import (
	"fmt"
	"sort"
	"sync"
)

// extentAlloc is a first-fit extent allocator with coalescing, managing
// SSTable placement on a device.
type extentAlloc struct {
	mu   sync.Mutex
	free []extent // sorted by offset, non-adjacent
}

type extent struct {
	off, n int64
}

func newExtentAlloc(size int64) *extentAlloc {
	return &extentAlloc{free: []extent{{0, size}}}
}

// alloc reserves n bytes, first-fit.
func (a *extentAlloc) alloc(n int64) (int64, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	for i := range a.free {
		if a.free[i].n >= n {
			off := a.free[i].off
			a.free[i].off += n
			a.free[i].n -= n
			if a.free[i].n == 0 {
				a.free = append(a.free[:i], a.free[i+1:]...)
			}
			return off, nil
		}
	}
	return 0, fmt.Errorf("lsm: no extent of %d bytes free", n)
}

// release returns [off, off+n) to the free list, coalescing neighbors.
func (a *extentAlloc) release(off, n int64) {
	if n == 0 {
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	i := sort.Search(len(a.free), func(i int) bool { return a.free[i].off >= off })
	a.free = append(a.free, extent{})
	copy(a.free[i+1:], a.free[i:])
	a.free[i] = extent{off, n}
	// Coalesce with right then left neighbor.
	if i+1 < len(a.free) && a.free[i].off+a.free[i].n == a.free[i+1].off {
		a.free[i].n += a.free[i+1].n
		a.free = append(a.free[:i+1], a.free[i+2:]...)
	}
	if i > 0 && a.free[i-1].off+a.free[i-1].n == a.free[i].off {
		a.free[i-1].n += a.free[i].n
		a.free = append(a.free[:i], a.free[i+1:]...)
	}
}

// freeBytes reports total free space (tests).
func (a *extentAlloc) freeBytes() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	var t int64
	for _, e := range a.free {
		t += e.n
	}
	return t
}
