package lsm

import (
	"bytes"
	"sort"
)

func (s *Store) backgroundLoop() {
	defer s.bg.Done()
	for {
		select {
		case <-s.stop:
			return
		case <-s.flushCh:
		}
		for s.flushOne() {
		}
		for s.compactOne() {
			for s.flushOne() {
			}
		}
		s.em.Collect()
	}
}

func (s *Store) bump() {
	t := s.flushClk.Now()
	if c := s.compactClk.Now(); c > t {
		t = c
	}
	for {
		cur := s.stallUntil.Load()
		if t <= cur || s.stallUntil.CompareAndSwap(cur, t) {
			break
		}
	}
	s.cond.Broadcast()
}

// flushOne writes the oldest immutable memtable to L0 (an SSTable, or an
// NVM matrix run in MatrixKV mode).
func (s *Store) flushOne() bool {
	s.mu.Lock()
	if len(s.imm) == 0 {
		s.mu.Unlock()
		return false
	}
	m := s.imm[0]
	s.mu.Unlock()

	s.flushClk.AdvanceTo(s.flushReq.Load())
	entries := m.sorted()
	if s.cfg.MatrixL0 {
		run := newL0Run(entries)
		s.nvmCost.ChargeWrite(s.flushClk, int(run.bytes))
		s.mu.Lock()
		s.matrix = append([]*l0run{run}, s.matrix...)
	} else {
		di, al := s.pickDevAlloc()
		t, err := buildSSTable(s.flushClk, s.dataDevs[di], al, entries)
		s.mu.Lock()
		if err == nil && t != nil {
			s.levels[0] = append([]*SSTable{t}, s.levels[0]...)
		}
	}
	s.imm = s.imm[1:]
	s.mu.Unlock()
	s.flushes.Add(1)
	s.bump()
	return true
}

// pickDevAlloc stripes output tables across the data devices, pairing
// each with its extent allocator.
func (s *Store) pickDevAlloc() (int, *extentAlloc) {
	i := s.pickDev()
	return i, s.allocs[i]
}

func (s *Store) levelTarget(lvl int) int64 {
	t := s.cfg.LevelBaseBytes
	for i := 1; i < lvl; i++ {
		t *= int64(s.cfg.LevelMult)
	}
	return t
}

func (s *Store) levelSizeLocked(lvl int) int64 {
	var n int64
	for _, t := range s.levels[lvl] {
		n += t.size
	}
	return n
}

func (s *Store) deepestLevelLocked() int {
	deepest := 0
	for i := 1; i < maxLevels; i++ {
		if len(s.levels[i]) > 0 {
			deepest = i
		}
	}
	return deepest
}

// compactOne performs at most one compaction step, preferring L0.
func (s *Store) compactOne() bool {
	s.compactClk.AdvanceTo(s.flushClk.Now())
	s.mu.Lock()
	if s.cfg.MatrixL0 {
		var mbytes int64
		for _, r := range s.matrix {
			mbytes += r.bytes
		}
		if len(s.matrix) >= s.cfg.L0CompactTrigger || mbytes >= s.cfg.MatrixCap {
			s.mu.Unlock()
			s.columnCompact()
			return true
		}
	} else if len(s.levels[0]) >= s.cfg.L0CompactTrigger {
		s.mu.Unlock()
		s.compactL0()
		return true
	}
	for lvl := 1; lvl < maxLevels-1; lvl++ {
		if s.levelSizeLocked(lvl) > s.levelTarget(lvl) && len(s.levels[lvl]) > 0 {
			s.mu.Unlock()
			s.compactLevel(lvl)
			return true
		}
	}
	s.mu.Unlock()
	return false
}

// compactL0 merges every L0 table with the overlapping part of L1 — the
// whole-level rewrite whose cost MatrixKV's column compaction avoids.
func (s *Store) compactL0() {
	s.mu.Lock()
	l0 := append([]*SSTable(nil), s.levels[0]...)
	if len(l0) == 0 {
		s.mu.Unlock()
		return
	}
	minK, maxK := l0[0].minKey, l0[0].maxKey
	for _, t := range l0[1:] {
		if bytes.Compare(t.minKey, minK) < 0 {
			minK = t.minKey
		}
		if bytes.Compare(t.maxKey, maxK) > 0 {
			maxK = t.maxKey
		}
	}
	var overlap, keep []*SSTable
	for _, t := range s.levels[1] {
		if t.overlaps(minK, maxK) {
			overlap = append(overlap, t)
		} else {
			keep = append(keep, t)
		}
	}
	deepest := s.deepestLevelLocked()
	s.mu.Unlock()

	// Sources: L0 newest first (they already are), then L1.
	var sources [][]entry
	for _, t := range l0 {
		sources = append(sources, t.allEntries(s.compactClk, nil))
	}
	var l1ents []entry
	for _, t := range overlap {
		l1ents = append(l1ents, t.allEntries(s.compactClk, nil)...)
	}
	sortEntries(l1ents)
	sources = append(sources, l1ents)
	merged := mergeKeepTombs(sources, deepest > 1)

	newTables := s.buildTables(merged)
	s.mu.Lock()
	s.levels[0] = s.levels[0][:0]
	s.levels[1] = sortTables(append(keep, newTables...))
	s.mu.Unlock()
	s.retire(l0)
	s.retire(overlap)
	s.compactions.Add(1)
	s.bump()
}

// compactLevel moves one table from lvl into lvl+1.
func (s *Store) compactLevel(lvl int) {
	s.mu.Lock()
	if len(s.levels[lvl]) == 0 {
		s.mu.Unlock()
		return
	}
	// Pick the table round-robin by compaction count to avoid thrashing
	// one key range.
	victim := s.levels[lvl][int(s.compactions.Load())%len(s.levels[lvl])]
	var overlap, keepNext []*SSTable
	for _, t := range s.levels[lvl+1] {
		if t.overlaps(victim.minKey, victim.maxKey) {
			overlap = append(overlap, t)
		} else {
			keepNext = append(keepNext, t)
		}
	}
	var keepCur []*SSTable
	for _, t := range s.levels[lvl] {
		if t != victim {
			keepCur = append(keepCur, t)
		}
	}
	deepest := s.deepestLevelLocked()
	s.mu.Unlock()

	var nextEnts []entry
	for _, t := range overlap {
		nextEnts = append(nextEnts, t.allEntries(s.compactClk, nil)...)
	}
	sortEntries(nextEnts)
	merged := mergeKeepTombs([][]entry{victim.allEntries(s.compactClk, nil), nextEnts}, deepest > lvl+1)

	newTables := s.buildTables(merged)
	s.mu.Lock()
	s.levels[lvl] = sortTables(keepCur)
	s.levels[lvl+1] = sortTables(append(keepNext, newTables...))
	s.mu.Unlock()
	s.retire([]*SSTable{victim})
	s.retire(overlap)
	s.compactions.Add(1)
	s.bump()
}

// columnCompact is MatrixKV's fine-grained compaction (§2.2, §7.1): pick
// one key-range column, extract it from every matrix run on NVM, merge
// it with the overlapping L1 tables, and write only that column to the
// SSD — far smaller IO bursts than a whole-L0 rewrite.
func (s *Store) columnCompact() {
	s.mu.Lock()
	if len(s.matrix) == 0 {
		s.mu.Unlock()
		return
	}
	// Column boundaries: sample the largest run.
	largest := s.matrix[0]
	for _, r := range s.matrix {
		if len(r.ents) > len(largest.ents) {
			largest = r
		}
	}
	cols := s.cfg.MatrixColumns
	cursor := int(s.compactions.Load()) % cols
	var lo, hi []byte
	if n := len(largest.ents); n > 0 {
		if cursor > 0 {
			lo = largest.ents[n*cursor/cols].key
		}
		if cursor < cols-1 {
			hi = largest.ents[n*(cursor+1)/cols].key
		}
	}
	if lo == nil {
		lo = []byte{}
	}
	// Rebuild runs minus the column (copy-on-write: concurrent readers
	// hold the old runs via the epoch guard).
	var sources [][]entry
	newMatrix := make([]*l0run, 0, len(s.matrix))
	var colBytes int64
	for _, r := range s.matrix {
		cp := &l0run{ents: append([]entry(nil), r.ents...), bytes: r.bytes}
		col := cp.extract(lo, hi)
		if len(col) > 0 {
			sources = append(sources, col)
			for _, e := range col {
				colBytes += int64(entrySize(e))
			}
		}
		if len(cp.ents) > 0 {
			newMatrix = append(newMatrix, cp)
		}
	}
	var overlap, keep []*SSTable
	maxProbe := hi
	if maxProbe == nil {
		maxProbe = []byte("\xff\xff\xff\xff\xff\xff\xff\xff")
	}
	for _, t := range s.levels[1] {
		if t.overlaps(lo, maxProbe) {
			overlap = append(overlap, t)
		} else {
			keep = append(keep, t)
		}
	}
	deepest := s.deepestLevelLocked()
	s.mu.Unlock()

	if len(sources) == 0 && len(overlap) == 0 {
		s.mu.Lock()
		s.matrix = newMatrix
		s.mu.Unlock()
		s.compactions.Add(1)
		s.bump()
		return
	}
	s.nvmCost.ChargeRead(s.compactClk, int(colBytes))
	var l1ents []entry
	for _, t := range overlap {
		l1ents = append(l1ents, t.allEntries(s.compactClk, nil)...)
	}
	sortEntries(l1ents)
	sources = append(sources, l1ents)
	merged := mergeKeepTombs(sources, deepest > 1)

	newTables := s.buildTables(merged)
	s.mu.Lock()
	s.matrix = newMatrix
	s.levels[1] = sortTables(append(keep, newTables...))
	s.mu.Unlock()
	s.retire(overlap)
	s.compactions.Add(1)
	s.bump()
}

// buildTables splits a merged run into target-size SSTables.
func (s *Store) buildTables(merged []entry) []*SSTable {
	var out []*SSTable
	var cur []entry
	var curBytes int64
	emit := func() {
		if len(cur) == 0 {
			return
		}
		dev, alloc := s.pickDevAlloc()
		t, err := buildSSTable(s.compactClk, s.dataDevs[dev], alloc, cur)
		if err == nil && t != nil {
			out = append(out, t)
		}
		cur, curBytes = nil, 0
	}
	for _, e := range merged {
		cur = append(cur, e)
		curBytes += int64(entrySize(e))
		if curBytes >= s.cfg.TableTargetBytes {
			emit()
		}
	}
	emit()
	return out
}

// retire releases tables' extents once no reader can hold them.
func (s *Store) retire(tables []*SSTable) {
	for _, t := range tables {
		t := t
		s.em.Retire(t.release)
	}
}

func sortTables(ts []*SSTable) []*SSTable {
	sort.Slice(ts, func(a, b int) bool { return bytes.Compare(ts[a].minKey, ts[b].minKey) < 0 })
	return ts
}

func sortEntries(es []entry) {
	sort.Slice(es, func(a, b int) bool { return bytes.Compare(es[a].key, es[b].key) < 0 })
}

// mergeKeepTombs merges sorted sources with precedence (earlier shadows
// later); tombstones are dropped only when dropTombs is true (compaction
// into the deepest level).
func mergeKeepTombs(sources [][]entry, keepTombs bool) []entry {
	type tagged struct {
		e    entry
		rank int
	}
	var all []tagged
	for r, src := range sources {
		for _, e := range src {
			all = append(all, tagged{e, r})
		}
	}
	sort.SliceStable(all, func(a, b int) bool {
		c := bytes.Compare(all[a].e.key, all[b].e.key)
		if c != 0 {
			return c < 0
		}
		return all[a].rank < all[b].rank
	})
	var out []entry
	for i, t := range all {
		if i > 0 && bytes.Equal(all[i-1].e.key, t.e.key) {
			continue
		}
		if t.e.tomb && !keepTombs {
			continue
		}
		out = append(out, t.e)
	}
	return out
}
