package lsm

import "repro/internal/ssd"

// RocksDBNVMConfig returns the RocksDB-NVM baseline of §7.1: a leveled
// LSM tree whose WAL and SSTables all live on NVM-speed block storage —
// "a reference point showing the maximum performance of LSM-tree based
// approaches".
//
// scale multiplies the default (test-sized) capacities; pass 1 for unit
// tests, larger for benchmarks.
func RocksDBNVMConfig(threads int, scale int64) Config {
	if scale < 1 {
		scale = 1
	}
	return Config{
		Name:          "rocksdb-nvm",
		Threads:       threads,
		WAL:           NVMBlockConfig(),
		Data:          NVMBlockConfig(),
		NumDataDevs:   1,
		DataBytes:     scale * (64 << 20),
		MemtableBytes: scale * (1 << 20),
		WALBytes:      scale * (16 << 20),
	}
}

// MatrixKVConfig returns the MatrixKV baseline of §7.1: WAL on NVM, an
// 8 GB-analogue NVM matrix container as L0 with column compaction, and
// L1+ striped across the flash SSD array.
func MatrixKVConfig(threads, numSSDs int, scale int64) Config {
	if scale < 1 {
		scale = 1
	}
	if numSSDs == 0 {
		numSSDs = 2
	}
	return Config{
		Name:          "matrixkv",
		Threads:       threads,
		WAL:           NVMBlockConfig(),
		Data:          ssd.Config{}, // flash defaults (980 PRO)
		NumDataDevs:   numSSDs,
		DataBytes:     scale * (64 << 20),
		MemtableBytes: scale * (1 << 20),
		WALBytes:      scale * (16 << 20),
		MatrixL0:      true,
		MatrixCap:     scale * (8 << 20), // the paper's 8 GB L0, scaled
	}
}
