// Package lsm implements a leveled LSM-tree key-value engine over the
// simulated devices: memtable + WAL, L0, leveled SSTables with background
// compaction, bloom filters, a block cache, and write stalls.
//
// It exists as the substrate for two of the paper's baselines:
//
//   - RocksDB-NVM (§7.1): WAL and every SSTable on an NVM-speed block
//     device — the paper's reference point for the best an LSM tree can
//     do on fast media.
//   - MatrixKV (§7.1): WAL on NVM, L0 as a "matrix container" of sorted
//     runs resident on NVM, fine-grained *column* compaction from the
//     matrix into L1, and L1+ SSTables striped over the flash SSD array.
//
// Both inherit the LSM pathologies the paper measures: compaction write
// amplification, multi-level read traversal, and write stalls when L0 or
// the immutable-memtable queue backs up.
package lsm

import (
	"bytes"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/engine"
	"repro/internal/epoch"
	"repro/internal/nvm"
	"repro/internal/sim"
	"repro/internal/ssd"
)

const maxLevels = 7

// Config parameterizes an LSM store.
type Config struct {
	Name    string
	Threads int // client handles (default 4)

	MemtableBytes    int64 // rotation threshold (default 1 MiB)
	MaxImmutables    int   // queued immutable memtables before stall (default 2)
	L0CompactTrigger int   // L0 runs triggering compaction (default 4)
	L0StallTrigger   int   // L0 runs stalling writers (default 8)
	LevelBaseBytes   int64 // L1 target size (default 8x memtable)
	LevelMult        int   // per-level growth (default 10)
	TableTargetBytes int64 // output SSTable size (default 2x memtable)
	BlockCacheBytes  int64 // shared block cache (default 1 MiB)

	// MatrixL0 enables the MatrixKV mode: L0 lives in an NVM matrix
	// container with column compaction.
	MatrixL0      bool
	MatrixColumns int   // column granularity (default 16)
	MatrixCap     int64 // NVM budget for the matrix (default 8 MiB)

	WAL         ssd.Config // WAL device performance envelope
	WALBytes    int64      // default 16 MiB
	Data        ssd.Config // per-data-device performance envelope
	NumDataDevs int        // default 1
	DataBytes   int64      // per device (default 64 MiB)
}

func (c *Config) applyDefaults() {
	if c.Threads == 0 {
		c.Threads = 4
	}
	if c.MemtableBytes == 0 {
		c.MemtableBytes = 1 << 20
	}
	if c.MaxImmutables == 0 {
		c.MaxImmutables = 2
	}
	if c.L0CompactTrigger == 0 {
		c.L0CompactTrigger = 4
	}
	if c.L0StallTrigger == 0 {
		c.L0StallTrigger = 8
	}
	if c.LevelBaseBytes == 0 {
		c.LevelBaseBytes = 8 * c.MemtableBytes
	}
	if c.LevelMult == 0 {
		c.LevelMult = 10
	}
	if c.TableTargetBytes == 0 {
		c.TableTargetBytes = 2 * c.MemtableBytes
	}
	if c.BlockCacheBytes == 0 {
		c.BlockCacheBytes = 1 << 20
	}
	if c.MatrixColumns == 0 {
		c.MatrixColumns = 16
	}
	if c.MatrixCap == 0 {
		c.MatrixCap = 8 << 20
	}
	if c.WALBytes == 0 {
		c.WALBytes = 16 << 20
	}
	if c.NumDataDevs == 0 {
		c.NumDataDevs = 1
	}
	if c.DataBytes == 0 {
		c.DataBytes = 64 << 20
	}
}

// NVMBlockConfig returns an ssd.Config modeling NVM used as a block
// store (Figure 1's DCPMM numbers): what RocksDB-NVM's filesystem on
// NVM provides.
func NVMBlockConfig() ssd.Config {
	return ssd.Config{
		ReadLatency:    300,
		WriteLatency:   100,
		ReadBandwidth:  6_800_000_000,
		WriteBandwidth: 1_900_000_000,
	}
}

// Store is the LSM engine.
type Store struct {
	cfg Config

	mu     sync.Mutex
	cond   *sync.Cond
	mem    *memtable
	imm    []*memtable // oldest first
	levels [maxLevels][]*SSTable
	matrix []*l0run // MatrixKV mode; newest first

	walDev *ssd.Device
	walOff int64

	dataDevs []*ssd.Device
	allocs   []*extentAlloc
	devRR    atomic.Uint64
	cache    *blockCache
	nvmCost  *nvm.Device // matrix-container cost charging

	em      *epoch.Manager
	handles []*handle

	flushCh chan struct{}
	stop    chan struct{}
	bg      sync.WaitGroup

	flushClk   *sim.Clock
	compactClk *sim.Clock
	writeGroup sim.Resource // serializes the WAL/memtable write group
	flushReq   atomic.Int64 // foreground time of the latest rotation
	stallUntil atomic.Int64

	userBytes   atomic.Int64
	stalls      atomic.Int64
	flushes     atomic.Int64
	compactions atomic.Int64
	closed      atomic.Bool
}

// Open creates an LSM store over fresh simulated devices.
func Open(cfg Config) *Store {
	cfg.applyDefaults()
	wcfg := cfg.WAL
	wcfg.Size = cfg.WALBytes
	wcfg.Name = cfg.Name + "-wal"
	s := &Store{
		cfg:        cfg,
		mem:        newMemtable(),
		walDev:     ssd.New(wcfg),
		cache:      newBlockCache(cfg.BlockCacheBytes),
		em:         epoch.NewManager(),
		flushCh:    make(chan struct{}, 8),
		stop:       make(chan struct{}),
		flushClk:   sim.NewClock(0),
		compactClk: sim.NewClock(0),
	}
	s.cond = sync.NewCond(&s.mu)
	for i := 0; i < cfg.NumDataDevs; i++ {
		dcfg := cfg.Data
		dcfg.Size = cfg.DataBytes
		dcfg.Name = fmt.Sprintf("%s-data%d", cfg.Name, i)
		s.dataDevs = append(s.dataDevs, ssd.New(dcfg))
		s.allocs = append(s.allocs, newExtentAlloc(cfg.DataBytes))
	}
	if cfg.MatrixL0 {
		s.nvmCost = nvm.New(nvm.Config{Size: 4096})
	}
	for i := 0; i < cfg.Threads; i++ {
		s.handles = append(s.handles, &handle{s: s, clk: sim.NewClock(0), part: s.em.Register()})
	}
	s.bg.Add(1)
	go s.backgroundLoop()
	return s
}

// Thread returns client handle i.
func (s *Store) Thread(i int) engine.KV { return s.handles[i] }

// NumThreads returns the handle count.
func (s *Store) NumThreads() int { return len(s.handles) }

// Close stops background work.
func (s *Store) Close() error {
	if s.closed.Swap(true) {
		return nil
	}
	close(s.stop)
	s.cond.Broadcast()
	s.bg.Wait()
	return nil
}

// WriteAmp returns (flash-device bytes written, user bytes). For
// RocksDB-NVM the "flash" devices are its NVM block devices; the metric
// still measures LSM write amplification.
func (s *Store) WriteAmp() (device, user int64) {
	for _, d := range s.dataDevs {
		device += d.Stats().BytesWritten
	}
	return device, s.userBytes.Load()
}

// Stats summarizes engine activity.
type Stats struct {
	Flushes, Compactions, Stalls int64
	L0Runs                       int
	LevelTables                  []int
}

// Stats returns current counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := Stats{
		Flushes:     s.flushes.Load(),
		Compactions: s.compactions.Load(),
		Stalls:      s.stalls.Load(),
	}
	if s.cfg.MatrixL0 {
		st.L0Runs = len(s.matrix)
	} else {
		st.L0Runs = len(s.levels[0])
	}
	for _, lvl := range s.levels {
		st.LevelTables = append(st.LevelTables, len(lvl))
	}
	return st
}

func (s *Store) pickDev() int {
	return int(s.devRR.Add(1)) % len(s.dataDevs)
}

// handle is one client thread.
type handle struct {
	s    *Store
	clk  *sim.Clock
	part *epoch.Participant
}

// Clock returns the handle's virtual clock.
func (h *handle) Clock() *sim.Clock { return h.clk }

// walAppend charges a durable WAL record write.
func (s *Store) walAppend(clk *sim.Clock, n int) {
	rec := int64(n + 16)
	if s.walOff+rec > s.walDev.Size() {
		s.walOff = 0
	}
	comps := s.walDev.Submit(clk.Now(), []ssd.Request{{Op: ssd.OpWrite, Offset: s.walOff, Data: make([]byte, rec)}})
	s.walDev.Ack(comps[0])
	clk.AdvanceTo(comps[0].DoneTime)
	s.walOff += rec
}

// Put inserts or updates key.
func (h *handle) Put(key, value []byte) error { return h.write(key, value, false) }

// Delete writes a tombstone for key. Missing keys return ErrNotFound to
// match the engine contract.
func (h *handle) Delete(key []byte) error {
	if _, err := h.Get(key); err != nil {
		return err
	}
	return h.write(key, nil, true)
}

func (h *handle) write(key, value []byte, tomb bool) error {
	s := h.s
	s.userBytes.Add(int64(len(value)))
	// WAL, memtable insert, and the rotation check form one critical
	// section (the write-group lock), so an insert can never land in a
	// memtable that already rotated out for flushing. The group is a
	// serial resource in virtual time too: concurrent writers queue
	// behind it, which is the LSM write-path scalability ceiling the
	// paper's Figure 16 shows.
	s.mu.Lock()
	_, end := s.writeGroup.Acquire(h.clk.Now(), 1200)
	h.clk.AdvanceTo(end)
	s.walAppend(h.clk, len(key)+len(value))
	s.mem.put(key, value, tomb)
	h.clk.Advance(2000) // WAL record build + skiplist insert + arena copy
	if s.mem.size() >= s.cfg.MemtableBytes {
		s.imm = append(s.imm, s.mem)
		s.mem = newMemtable()
		for {
			cur := s.flushReq.Load()
			if h.clk.Now() <= cur || s.flushReq.CompareAndSwap(cur, h.clk.Now()) {
				break
			}
		}
		select {
		case s.flushCh <- struct{}{}:
		default:
		}
	}
	// Write stall (§7.2: "MatrixKV and RocksDB-NVM still suffer from
	// expensive compaction"): block while the pipeline is backed up.
	for (len(s.imm) > s.cfg.MaxImmutables || s.l0CountLocked() >= s.cfg.L0StallTrigger) && !s.closed.Load() {
		s.stalls.Add(1)
		select {
		case s.flushCh <- struct{}{}:
		default:
		}
		s.cond.Wait()
	}
	s.mu.Unlock()
	h.clk.AdvanceTo(s.stallUntil.Load())
	return nil
}

func (s *Store) l0CountLocked() int {
	if s.cfg.MatrixL0 {
		return len(s.matrix)
	}
	return len(s.levels[0])
}

// snapshot captures the current version under the epoch guard.
type snapshot struct {
	mem    *memtable
	imm    []*memtable
	matrix []*l0run
	levels [maxLevels][]*SSTable
}

func (s *Store) snapshot() snapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	sn := snapshot{
		mem:    s.mem,
		imm:    append([]*memtable(nil), s.imm...),
		matrix: append([]*l0run(nil), s.matrix...),
	}
	for i := range s.levels {
		sn.levels[i] = append([]*SSTable(nil), s.levels[i]...)
	}
	return sn
}

// Get returns the newest value for key, traversing memtable ->
// immutables -> L0 -> L1+ (the multi-level read path whose cost §7.2
// attributes LSM read inefficiency to).
func (h *handle) Get(key []byte) ([]byte, error) {
	s := h.s
	h.part.Enter()
	defer h.part.Exit()
	sn := s.snapshot()
	// LSM software stack per lookup: version/memtable probes, key
	// comparisons, seek setup (the CPU inefficiency §3 cites).
	h.clk.Advance(3500)

	if e, ok := sn.mem.get(key); ok {
		return h.result(e)
	}
	for i := len(sn.imm) - 1; i >= 0; i-- {
		if e, ok := sn.imm[i].get(key); ok {
			return h.result(e)
		}
	}
	if s.cfg.MatrixL0 {
		for _, run := range sn.matrix {
			s.nvmCost.ChargeRead(h.clk, 128) // binary-search probes
			if e, ok := run.get(key); ok {
				return h.result(e)
			}
		}
	} else {
		for _, t := range sn.levels[0] {
			if v, tomb, found := t.get(h.clk, s.cache, key); found {
				return h.result(entry{val: v, tomb: tomb})
			}
		}
	}
	for lvl := 1; lvl < maxLevels; lvl++ {
		tables := sn.levels[lvl]
		i := sort.Search(len(tables), func(i int) bool {
			return bytes.Compare(tables[i].maxKey, key) >= 0
		})
		if i == len(tables) {
			continue
		}
		h.clk.Advance(800) // per-level seek
		if v, tomb, found := tables[i].get(h.clk, s.cache, key); found {
			return h.result(entry{val: v, tomb: tomb})
		}
	}
	return nil, engine.ErrNotFound
}

func (h *handle) result(e entry) ([]byte, error) {
	if e.tomb {
		return nil, engine.ErrNotFound
	}
	return append([]byte(nil), e.val...), nil
}

// Scan merges every live source in precedence order (the full-tree
// traversal that makes LSM scans expensive, §7.2).
func (h *handle) Scan(start []byte, count int, fn func(key, value []byte) bool) error {
	s := h.s
	h.part.Enter()
	defer h.part.Exit()
	if count <= 0 {
		count = 1 << 30
	}
	sn := s.snapshot()

	// Gather per-source sorted slices, newest source first.
	limit := count*4 + 16
	var sources [][]entry
	collect := func(scan func(fn func(e entry) bool)) {
		var es []entry
		scan(func(e entry) bool {
			es = append(es, entry{key: append([]byte(nil), e.key...), val: append([]byte(nil), e.val...), tomb: e.tomb})
			return len(es) < limit
		})
		sources = append(sources, es)
	}
	collect(func(fn func(e entry) bool) { sn.mem.scanFrom(start, fn) })
	for i := len(sn.imm) - 1; i >= 0; i-- {
		m := sn.imm[i]
		collect(func(fn func(e entry) bool) { m.scanFrom(start, fn) })
	}
	if s.cfg.MatrixL0 {
		for _, run := range sn.matrix {
			r := run
			s.nvmCost.ChargeRead(h.clk, 256)
			collect(func(fn func(e entry) bool) { r.scanFrom(start, fn) })
		}
	} else {
		for _, t := range sn.levels[0] {
			tt := t
			collect(func(fn func(e entry) bool) { tt.scanFrom(h.clk, s.cache, start, fn) })
		}
	}
	for lvl := 1; lvl < maxLevels; lvl++ {
		var es []entry
		tables := sn.levels[lvl]
		i := sort.Search(len(tables), func(i int) bool {
			return bytes.Compare(tables[i].maxKey, start) >= 0
		})
		for ; i < len(tables) && len(es) < limit; i++ {
			tables[i].scanFrom(h.clk, s.cache, start, func(e entry) bool {
				es = append(es, entry{key: append([]byte(nil), e.key...), val: append([]byte(nil), e.val...), tomb: e.tomb})
				return len(es) < limit
			})
		}
		sources = append(sources, es)
	}

	// Iterator setup and per-entry merge CPU.
	var merged = mergeKeepTombs(sources, false)
	h.clk.Advance(int64(len(sources))*1200 + int64(len(merged))*300)
	for _, e := range merged {
		if count == 0 {
			break
		}
		count--
		if !fn(e.key, e.val) {
			break
		}
	}
	return nil
}
