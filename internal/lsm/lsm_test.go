package lsm

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"

	"repro/internal/engine"
	"repro/internal/sim"
	"repro/internal/ssd"
)

func openTest(t *testing.T, mutate func(*Config)) *Store {
	t.Helper()
	cfg := Config{
		Name:          "test",
		Threads:       2,
		MemtableBytes: 16 << 10,
		DataBytes:     16 << 20,
		WALBytes:      4 << 20,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	s := Open(cfg)
	t.Cleanup(func() { s.Close() })
	return s
}

func key(i int) []byte   { return []byte(fmt.Sprintf("user%08d", i)) }
func value(i int) []byte { return []byte(fmt.Sprintf("value-%08d-%016d", i, i)) }

func TestExtentAllocator(t *testing.T) {
	a := newExtentAlloc(1000)
	o1, err := a.alloc(100)
	if err != nil || o1 != 0 {
		t.Fatalf("alloc = %d, %v", o1, err)
	}
	o2, _ := a.alloc(200)
	if o2 != 100 {
		t.Fatalf("second alloc at %d", o2)
	}
	a.release(o1, 100)
	o3, _ := a.alloc(50)
	if o3 != 0 {
		t.Fatalf("first-fit ignored freed hole: %d", o3)
	}
	a.release(o3, 50)
	a.release(o2, 200)
	// Everything free again: coalescing must give one extent of 1000.
	if a.freeBytes() != 1000 {
		t.Fatalf("free = %d", a.freeBytes())
	}
	if o, err := a.alloc(1000); err != nil || o != 0 {
		t.Fatalf("full-range alloc after coalesce: %d, %v", o, err)
	}
	if _, err := a.alloc(1); err == nil {
		t.Fatal("alloc beyond capacity succeeded")
	}
}

func TestMemtableBasics(t *testing.T) {
	m := newMemtable()
	m.put([]byte("b"), []byte("1"), false)
	m.put([]byte("a"), []byte("2"), false)
	m.put([]byte("b"), []byte("3"), false) // update
	m.put([]byte("c"), nil, true)          // tombstone
	if e, ok := m.get([]byte("b")); !ok || string(e.val) != "3" {
		t.Fatalf("get b = %+v, %v", e, ok)
	}
	if e, ok := m.get([]byte("c")); !ok || !e.tomb {
		t.Fatal("tombstone lost")
	}
	s := m.sorted()
	if len(s) != 3 || string(s[0].key) != "a" || string(s[1].key) != "b" || string(s[2].key) != "c" {
		t.Fatalf("sorted = %v", s)
	}
}

func TestSSTableBuildAndGet(t *testing.T) {
	dev := ssd.New(ssd.Config{Size: 1 << 20})
	alloc := newExtentAlloc(1 << 20)
	clk := sim.NewClock(0)
	var ents []entry
	for i := 0; i < 500; i++ {
		ents = append(ents, entry{key: key(i), val: value(i)})
	}
	tbl, err := buildSSTable(clk, dev, alloc, ents)
	if err != nil {
		t.Fatal(err)
	}
	if clk.Now() == 0 {
		t.Fatal("build charged nothing")
	}
	if len(tbl.index) < 2 {
		t.Fatalf("expected multiple blocks, got %d", len(tbl.index))
	}
	cache := newBlockCache(1 << 20)
	for i := 0; i < 500; i += 23 {
		v, tomb, found := tbl.get(clk, cache, key(i))
		if !found || tomb || !bytes.Equal(v, value(i)) {
			t.Fatalf("get %d = %q, %v, %v", i, v, tomb, found)
		}
	}
	if _, _, found := tbl.get(clk, cache, []byte("zzz")); found {
		t.Fatal("found absent key")
	}
	// allEntries round trip.
	got := tbl.allEntries(clk, nil)
	if len(got) != 500 {
		t.Fatalf("allEntries = %d", len(got))
	}
}

func TestBloomFilterRejectsMost(t *testing.T) {
	b := newBloom(1000)
	for i := 0; i < 1000; i++ {
		b.add(key(i))
	}
	for i := 0; i < 1000; i++ {
		if !b.mayContain(key(i)) {
			t.Fatalf("false negative for %d", i)
		}
	}
	fp := 0
	for i := 10000; i < 20000; i++ {
		if b.mayContain(key(i)) {
			fp++
		}
	}
	if fp > 500 { // ~1% expected; allow 5%
		t.Fatalf("false positive rate %d/10000", fp)
	}
}

func TestPutGetThroughFlushAndCompaction(t *testing.T) {
	s := openTest(t, nil)
	h := s.Thread(0)
	const n = 3000
	for i := 0; i < n; i++ {
		if err := h.Put(key(i), value(i)); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.Flushes == 0 {
		t.Fatal("no memtable flush happened")
	}
	for i := 0; i < n; i += 13 {
		got, err := h.Get(key(i))
		if err != nil || !bytes.Equal(got, value(i)) {
			t.Fatalf("get %d: %q, %v (stats %+v)", i, got, err, st)
		}
	}
}

func TestUpdatesShadowAcrossLevels(t *testing.T) {
	s := openTest(t, nil)
	h := s.Thread(0)
	for round := 0; round < 5; round++ {
		for i := 0; i < 800; i++ {
			if err := h.Put(key(i), value(round*10000+i)); err != nil {
				t.Fatal(err)
			}
		}
	}
	for i := 0; i < 800; i += 7 {
		got, err := h.Get(key(i))
		if err != nil || !bytes.Equal(got, value(40000+i)) {
			t.Fatalf("key %d: %q, %v", i, got, err)
		}
	}
}

func TestDeleteTombstones(t *testing.T) {
	s := openTest(t, nil)
	h := s.Thread(0)
	for i := 0; i < 1000; i++ {
		h.Put(key(i), value(i))
	}
	if err := h.Delete(key(5)); err != nil {
		t.Fatal(err)
	}
	if err := h.Delete(key(99999)); !errors.Is(err, engine.ErrNotFound) {
		t.Fatalf("delete missing: %v", err)
	}
	// Push the tombstone through flush/compaction.
	for i := 1000; i < 3000; i++ {
		h.Put(key(i), value(i))
	}
	if _, err := h.Get(key(5)); !errors.Is(err, engine.ErrNotFound) {
		t.Fatalf("deleted key visible after compaction: %v", err)
	}
}

func TestScanOrderedAndShadowed(t *testing.T) {
	s := openTest(t, nil)
	h := s.Thread(0)
	for i := 0; i < 2000; i++ {
		h.Put(key(i), value(i))
	}
	h.Put(key(105), []byte("updated"))
	h.Delete(key(107))
	var keys []string
	err := h.Scan(key(100), 10, func(k, v []byte) bool {
		keys = append(keys, string(k))
		if string(k) == string(key(105)) && string(v) != "updated" {
			t.Fatalf("stale value in scan: %q", v)
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 10 {
		t.Fatalf("scan length %d", len(keys))
	}
	for _, k := range keys {
		if k == string(key(107)) {
			t.Fatal("deleted key in scan")
		}
	}
	for i := 1; i < len(keys); i++ {
		if keys[i-1] >= keys[i] {
			t.Fatalf("scan out of order: %v", keys)
		}
	}
}

func TestWriteStallsUnderLoad(t *testing.T) {
	s := openTest(t, func(c *Config) {
		c.MemtableBytes = 4 << 10
		c.L0StallTrigger = 2
		c.L0CompactTrigger = 2
	})
	h := s.Thread(0)
	for i := 0; i < 3000; i++ {
		if err := h.Put(key(i), value(i)); err != nil {
			t.Fatal(err)
		}
	}
	if s.Stats().Stalls == 0 {
		t.Fatal("no write stalls under pressure")
	}
}

func TestCompactionWriteAmplification(t *testing.T) {
	s := openTest(t, nil)
	h := s.Thread(0)
	for round := 0; round < 4; round++ {
		for i := 0; i < 1500; i++ {
			h.Put(key(i), value(i))
		}
	}
	dev, user := s.WriteAmp()
	if user == 0 || dev == 0 {
		t.Fatalf("write accounting broken: dev=%d user=%d", dev, user)
	}
	if float64(dev)/float64(user) < 1.5 {
		t.Fatalf("LSM WAF = %.2f, expected compaction amplification", float64(dev)/float64(user))
	}
}

func TestConcurrentHandles(t *testing.T) {
	s := openTest(t, func(c *Config) { c.Threads = 4 })
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h := s.Thread(w)
			for i := 0; i < 500; i++ {
				k := []byte(fmt.Sprintf("w%d-%05d", w, i))
				if err := h.Put(k, value(i)); err != nil {
					t.Errorf("put: %v", err)
					return
				}
				if got, err := h.Get(k); err != nil || !bytes.Equal(got, value(i)) {
					t.Errorf("get %s: %q, %v", k, got, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}

func TestMatrixKVModeWorks(t *testing.T) {
	s := openTest(t, func(c *Config) {
		c.MatrixL0 = true
		c.MatrixCap = 64 << 10
		c.NumDataDevs = 2
	})
	h := s.Thread(0)
	const n = 4000
	for i := 0; i < n; i++ {
		if err := h.Put(key(i), value(i)); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.Compactions == 0 {
		t.Fatal("column compaction never ran")
	}
	for i := 0; i < n; i += 17 {
		got, err := h.Get(key(i))
		if err != nil || !bytes.Equal(got, value(i)) {
			t.Fatalf("matrix get %d: %q, %v (stats %+v)", i, got, err, st)
		}
	}
	// Updates must shadow across matrix and L1.
	h.Put(key(3), []byte("fresh"))
	got, err := h.Get(key(3))
	if err != nil || string(got) != "fresh" {
		t.Fatalf("matrix update: %q, %v", got, err)
	}
	cnt := 0
	h.Scan(key(0), 20, func(k, v []byte) bool { cnt++; return true })
	if cnt != 20 {
		t.Fatalf("matrix scan visited %d", cnt)
	}
}

func TestBaselineConfigsOpen(t *testing.T) {
	r := Open(RocksDBNVMConfig(2, 1))
	defer r.Close()
	m := Open(MatrixKVConfig(2, 2, 1))
	defer m.Close()
	for i, s := range []*Store{r, m} {
		h := s.Thread(0)
		for k := 0; k < 300; k++ {
			if err := h.Put(key(k), value(k)); err != nil {
				t.Fatalf("engine %d put: %v", i, err)
			}
		}
		got, err := h.Get(key(42))
		if err != nil || !bytes.Equal(got, value(42)) {
			t.Fatalf("engine %d get: %q, %v", i, got, err)
		}
	}
}

func TestVirtualTimeCharged(t *testing.T) {
	s := openTest(t, nil)
	h := s.Thread(0)
	h.Put(key(1), value(1))
	if h.Clock().Now() == 0 {
		t.Fatal("put free")
	}
	before := h.Clock().Now()
	h.Get(key(1))
	if h.Clock().Now() <= before {
		t.Fatal("get free")
	}
}
