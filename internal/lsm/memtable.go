package lsm

import (
	"bytes"
	"sort"
	"sync"

	"repro/internal/keyindex"
)

// memtable is a concurrent sorted write buffer: an ordered index over an
// append-only entry arena. Updates supersede by re-pointing the index at
// the newest arena slot, so sorted() naturally yields only the latest
// version of each key.
type memtable struct {
	index *keyindex.Index

	mu    sync.Mutex
	ents  []entry
	bytes int64
}

func newMemtable() *memtable {
	return &memtable{index: keyindex.New(nil)}
}

// put stores key -> value (or a tombstone).
func (m *memtable) put(key, val []byte, tomb bool) {
	e := entry{key: append([]byte(nil), key...), val: append([]byte(nil), val...), tomb: tomb}
	m.mu.Lock()
	id := uint64(len(m.ents))
	m.ents = append(m.ents, e)
	m.bytes += int64(entrySize(e)) + 32
	m.mu.Unlock()
	m.index.Upsert(nil, key, id)
}

// get returns the newest entry for key.
func (m *memtable) get(key []byte) (entry, bool) {
	id, ok := m.index.Lookup(nil, key)
	if !ok {
		return entry{}, false
	}
	m.mu.Lock()
	e := m.ents[id]
	m.mu.Unlock()
	return e, true
}

// size returns the approximate resident bytes.
func (m *memtable) size() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.bytes
}

// sorted returns the latest entry per key in key order (flush input).
func (m *memtable) sorted() []entry {
	var out []entry
	m.mu.Lock()
	ents := m.ents
	m.mu.Unlock()
	m.index.Scan(nil, nil, 0, func(key []byte, id uint64) bool {
		if id < uint64(len(ents)) {
			out = append(out, ents[id])
		}
		return true
	})
	return out
}

// scanFrom yields entries with key >= start in order. Entries inserted
// after the arena snapshot are skipped — scans see a consistent point in
// time even while the memtable keeps absorbing writes.
func (m *memtable) scanFrom(start []byte, fn func(e entry) bool) {
	m.mu.Lock()
	ents := m.ents
	m.mu.Unlock()
	m.index.Scan(nil, start, 0, func(key []byte, id uint64) bool {
		if id >= uint64(len(ents)) {
			return true
		}
		return fn(ents[id])
	})
}

// l0run is one sorted run inside the MatrixKV-style NVM matrix container:
// a flushed memtable kept on NVM, from which column compaction extracts
// key subranges without rewriting whole tables.
type l0run struct {
	ents  []entry // sorted by key
	bytes int64
}

func newL0Run(ents []entry) *l0run {
	var b int64
	for _, e := range ents {
		b += int64(entrySize(e))
	}
	return &l0run{ents: ents, bytes: b}
}

// get binary-searches the run.
func (r *l0run) get(key []byte) (entry, bool) {
	i := sort.Search(len(r.ents), func(i int) bool {
		return bytes.Compare(r.ents[i].key, key) >= 0
	})
	if i < len(r.ents) && bytes.Equal(r.ents[i].key, key) {
		return r.ents[i], true
	}
	return entry{}, false
}

// extract removes and returns entries with lo <= key < hi (hi nil =
// unbounded), the column-compaction primitive.
func (r *l0run) extract(lo, hi []byte) []entry {
	start := sort.Search(len(r.ents), func(i int) bool {
		return bytes.Compare(r.ents[i].key, lo) >= 0
	})
	end := len(r.ents)
	if hi != nil {
		end = sort.Search(len(r.ents), func(i int) bool {
			return bytes.Compare(r.ents[i].key, hi) >= 0
		})
	}
	if start >= end {
		return nil
	}
	col := append([]entry(nil), r.ents[start:end]...)
	r.ents = append(r.ents[:start], r.ents[end:]...)
	for _, e := range col {
		r.bytes -= int64(entrySize(e))
	}
	return col
}

// scanFrom yields entries with key >= start.
func (r *l0run) scanFrom(start []byte, fn func(e entry) bool) {
	i := sort.Search(len(r.ents), func(i int) bool {
		return bytes.Compare(r.ents[i].key, start) >= 0
	})
	for ; i < len(r.ents); i++ {
		if !fn(r.ents[i]) {
			return
		}
	}
}
