package lsm

import (
	"bytes"
	"encoding/binary"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/sim"
	"repro/internal/ssd"
)

// blockSize is the SSTable data-block size (RocksDB default 4 KB).
const blockSize = 4096

// entry is one key-value record (tombstones carry a nil value and the
// tomb flag).
type entry struct {
	key  []byte
	val  []byte
	tomb bool
}

// SSTable is one immutable sorted run on a block device. The block index
// and bloom filter live in DRAM (as an opened table's metadata would);
// data blocks are read from the device through the shared block cache.
type SSTable struct {
	id      uint64
	dev     *ssd.Device
	alloc   *extentAlloc
	off     int64
	size    int64
	minKey  []byte
	maxKey  []byte
	index   []blockMeta
	bloom   bloomFilter
	entries int
}

type blockMeta struct {
	firstKey []byte
	off      int64 // relative to table base
	n        int
}

var tableIDs atomic.Uint64

// encodeEntry appends one record: [klen:2][vlen:4 (high bit = tombstone)][key][val].
func encodeEntry(dst []byte, e entry) []byte {
	var hdr [6]byte
	binary.LittleEndian.PutUint16(hdr[0:], uint16(len(e.key)))
	v := uint32(len(e.val))
	if e.tomb {
		v |= 1 << 31
	}
	binary.LittleEndian.PutUint32(hdr[2:], v)
	dst = append(dst, hdr[:]...)
	dst = append(dst, e.key...)
	dst = append(dst, e.val...)
	return dst
}

func entrySize(e entry) int { return 6 + len(e.key) + len(e.val) }

// decodeEntries parses all records in a block.
func decodeEntries(b []byte, fn func(e entry) bool) {
	for len(b) >= 6 {
		kl := int(binary.LittleEndian.Uint16(b[0:]))
		v := binary.LittleEndian.Uint32(b[2:])
		tomb := v&(1<<31) != 0
		vl := int(v &^ (1 << 31))
		if kl == 0 || 6+kl+vl > len(b) {
			return // padding
		}
		if !fn(entry{key: b[6 : 6+kl], val: b[6+kl : 6+kl+vl], tomb: tomb}) {
			return
		}
		b = b[6+kl+vl:]
	}
}

// buildSSTable writes a sorted entry stream as one table with a single
// large sequential device write at virtual time clk.Now().
func buildSSTable(clk *sim.Clock, dev *ssd.Device, alloc *extentAlloc, entries []entry) (*SSTable, error) {
	if len(entries) == 0 {
		return nil, nil
	}
	t := &SSTable{
		id:      tableIDs.Add(1),
		dev:     dev,
		alloc:   alloc,
		minKey:  append([]byte(nil), entries[0].key...),
		maxKey:  append([]byte(nil), entries[len(entries)-1].key...),
		bloom:   newBloom(len(entries)),
		entries: len(entries),
	}
	var data []byte
	blockStart := 0
	t.index = append(t.index, blockMeta{firstKey: append([]byte(nil), entries[0].key...), off: 0})
	for _, e := range entries {
		if len(data)-blockStart+entrySize(e) > blockSize && len(data) > blockStart {
			// Pad and seal the block.
			for len(data)%blockSize != 0 {
				data = append(data, 0)
			}
			t.index[len(t.index)-1].n = len(data) - blockStart
			blockStart = len(data)
			t.index = append(t.index, blockMeta{firstKey: append([]byte(nil), e.key...), off: int64(blockStart)})
		}
		data = encodeEntry(data, e)
		t.bloom.add(e.key)
	}
	for len(data)%blockSize != 0 {
		data = append(data, 0)
	}
	t.index[len(t.index)-1].n = len(data) - blockStart
	t.size = int64(len(data))

	off, err := alloc.alloc(t.size)
	if err != nil {
		return nil, err
	}
	t.off = off
	comps := dev.Submit(clk.Now(), []ssd.Request{{Op: ssd.OpWrite, Offset: off, Data: data}})
	dev.Ack(comps[0])
	clk.AdvanceTo(comps[0].DoneTime)
	return t, nil
}

// release frees the table's device extent.
func (t *SSTable) release() { t.alloc.release(t.off, t.size) }

// mayContain is the bloom-filter pre-check.
func (t *SSTable) mayContain(key []byte) bool {
	if bytes.Compare(key, t.minKey) < 0 || bytes.Compare(key, t.maxKey) > 0 {
		return false
	}
	return t.bloom.mayContain(key)
}

// findBlock returns the index of the block that could hold key.
func (t *SSTable) findBlock(key []byte) int {
	i := sort.Search(len(t.index), func(i int) bool {
		return bytes.Compare(t.index[i].firstKey, key) > 0
	})
	if i == 0 {
		return 0
	}
	return i - 1
}

// readBlock fetches block bi through the cache, charging clk.
func (t *SSTable) readBlock(clk *sim.Clock, cache *blockCache, bi int) []byte {
	if cache != nil {
		if b := cache.get(t.id, bi); b != nil {
			// Cache hit: LRU lock (serialized across threads) plus block
			// checksum + decode CPU.
			_, end := cache.lock.Acquire(clk.Now(), 1000)
			clk.AdvanceTo(end)
			clk.Advance(1200)
			return b
		}
	}
	bm := t.index[bi]
	buf := make([]byte, bm.n)
	comps := t.dev.Submit(clk.Now(), []ssd.Request{{Op: ssd.OpRead, Offset: t.off + bm.off, Data: buf}})
	clk.AdvanceTo(comps[0].DoneTime)
	if cache != nil {
		cache.put(t.id, bi, buf)
	}
	return buf
}

// get looks key up in the table.
func (t *SSTable) get(clk *sim.Clock, cache *blockCache, key []byte) (val []byte, tomb, found bool) {
	if !t.mayContain(key) {
		clk.Advance(120) // bloom probe CPU
		return nil, false, false
	}
	b := t.readBlock(clk, cache, t.findBlock(key))
	decodeEntries(b, func(e entry) bool {
		switch bytes.Compare(e.key, key) {
		case 0:
			val = append([]byte(nil), e.val...)
			tomb = e.tomb
			found = true
			return false
		case 1:
			return false
		}
		return true
	})
	return val, tomb, found
}

// scanFrom yields entries with key >= start in order until fn says stop.
func (t *SSTable) scanFrom(clk *sim.Clock, cache *blockCache, start []byte, fn func(e entry) bool) {
	for bi := t.findBlock(start); bi < len(t.index); bi++ {
		b := t.readBlock(clk, cache, bi)
		stop := false
		decodeEntries(b, func(e entry) bool {
			if bytes.Compare(e.key, start) < 0 {
				return true
			}
			if !fn(e) {
				stop = true
				return false
			}
			return true
		})
		if stop {
			return
		}
	}
}

// allEntries materializes the table (compaction input).
func (t *SSTable) allEntries(clk *sim.Clock, cache *blockCache) []entry {
	var out []entry
	for bi := range t.index {
		b := t.readBlock(clk, cache, bi)
		decodeEntries(b, func(e entry) bool {
			out = append(out, entry{
				key:  append([]byte(nil), e.key...),
				val:  append([]byte(nil), e.val...),
				tomb: e.tomb,
			})
			return true
		})
	}
	return out
}

// overlaps reports key-range overlap with [min, max].
func (t *SSTable) overlaps(min, max []byte) bool {
	return bytes.Compare(t.minKey, max) <= 0 && bytes.Compare(min, t.maxKey) <= 0
}

// bloomFilter is a double-hashed bloom filter (~10 bits/key, ~1% FPR).
type bloomFilter struct {
	bits []uint64
	k    int
}

func newBloom(n int) bloomFilter {
	if n < 1 {
		n = 1
	}
	words := (n*10 + 63) / 64
	return bloomFilter{bits: make([]uint64, words), k: 7}
}

func bloomHash(key []byte) (uint64, uint64) {
	var h1, h2 uint64 = 0xcbf29ce484222325, 0x9e3779b97f4a7c15
	for _, b := range key {
		h1 = (h1 ^ uint64(b)) * 0x100000001b3
		h2 = (h2 + uint64(b)) * 0xff51afd7ed558ccd
	}
	return h1, h2
}

func (f bloomFilter) add(key []byte) {
	h1, h2 := bloomHash(key)
	m := uint64(len(f.bits) * 64)
	for i := 0; i < f.k; i++ {
		bit := (h1 + uint64(i)*h2) % m
		f.bits[bit/64] |= 1 << (bit % 64)
	}
}

func (f bloomFilter) mayContain(key []byte) bool {
	h1, h2 := bloomHash(key)
	m := uint64(len(f.bits) * 64)
	for i := 0; i < f.k; i++ {
		bit := (h1 + uint64(i)*h2) % m
		if f.bits[bit/64]&(1<<(bit%64)) == 0 {
			return false
		}
	}
	return true
}

// blockCache is a shared LRU over (table, block) with a byte budget. The
// lock resource models the serialization real LSM block caches pay on
// every hit (shard mutex + LRU maintenance) — one of the CPU costs §3
// argues dominates on fast storage.
type blockCache struct {
	mu    sync.Mutex
	lock  sim.Resource
	cap   int64
	bytes int64
	m     map[blockKey]*bcNode
	head  *bcNode
	tail  *bcNode
}

type blockKey struct {
	table uint64
	block int
}

type bcNode struct {
	key        blockKey
	data       []byte
	prev, next *bcNode
}

func newBlockCache(capBytes int64) *blockCache {
	if capBytes <= 0 {
		return nil
	}
	return &blockCache{cap: capBytes, m: make(map[blockKey]*bcNode)}
}

func (c *blockCache) get(table uint64, block int) []byte {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	n := c.m[blockKey{table, block}]
	if n == nil {
		return nil
	}
	c.moveFront(n)
	return n.data
}

func (c *blockCache) put(table uint64, block int, data []byte) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	k := blockKey{table, block}
	if n := c.m[k]; n != nil {
		c.bytes += int64(len(data)) - int64(len(n.data))
		n.data = data
		c.moveFront(n)
	} else {
		n := &bcNode{key: k, data: data}
		c.m[k] = n
		c.pushFront(n)
		c.bytes += int64(len(data))
	}
	for c.bytes > c.cap && c.tail != nil {
		v := c.tail
		c.unlink(v)
		delete(c.m, v.key)
		c.bytes -= int64(len(v.data))
	}
}

func (c *blockCache) pushFront(n *bcNode) {
	n.next = c.head
	if c.head != nil {
		c.head.prev = n
	}
	c.head = n
	if c.tail == nil {
		c.tail = n
	}
}

func (c *blockCache) unlink(n *bcNode) {
	if n.prev != nil {
		n.prev.next = n.next
	} else {
		c.head = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	} else {
		c.tail = n.prev
	}
	n.prev, n.next = nil, nil
}

func (c *blockCache) moveFront(n *bcNode) {
	c.unlink(n)
	c.pushFront(n)
}
