// Package nvm simulates a byte-addressable non-volatile memory device
// (the role Intel Optane DCPMM plays in the paper).
//
// The simulation preserves the two properties Prism's protocols depend on:
//
//  1. Persistence granularity and ordering. Stores land in a volatile
//     view first; a cache line becomes durable only after an explicit
//     Flush covering it. Crash discards every line that was modified but
//     not flushed, so crash-consistency protocols (backward/forward
//     pointer coupling, dirty-bit flush-on-read) are exercised against
//     genuinely lossy state.
//  2. Cost. Accesses charge the paper's Figure 1 latencies and consume
//     shared device bandwidth in virtual time, so NVM's limited write
//     bandwidth (1.9 GB/s) surfaces in benchmarks exactly where the paper
//     says it should.
//
// Offsets within the device are stable across crashes, so components
// store offset-based pointers (never Go pointers) in NVM.
package nvm

import (
	"fmt"
	"sync/atomic"
	"unsafe"

	"repro/internal/sim"
)

// LineSize is the persistence granularity in bytes (a CPU cache line).
const LineSize = 64

// Config describes the performance envelope of the simulated device.
// Zero-valued fields fall back to the defaults from the paper's Figure 1
// (Intel Optane DCPMM 128 GB).
type Config struct {
	Size           int   // device capacity in bytes
	ReadLatency    int64 // ns per load
	WriteLatency   int64 // ns per store
	FlushLatency   int64 // ns per flushed line (clwb analogue)
	FenceLatency   int64 // ns per fence (sfence analogue)
	ReadBandwidth  int64 // bytes/second
	WriteBandwidth int64 // bytes/second
}

func (c *Config) applyDefaults() {
	if c.ReadLatency == 0 {
		c.ReadLatency = 300 // 0.30 us
	}
	if c.WriteLatency == 0 {
		c.WriteLatency = 90 // 0.09 us
	}
	if c.FlushLatency == 0 {
		c.FlushLatency = 40 // clwb instructions pipeline; per-line cost amortizes
	}
	if c.FenceLatency == 0 {
		c.FenceLatency = 30
	}
	if c.ReadBandwidth == 0 {
		c.ReadBandwidth = 6_800_000_000 // 6.8 GB/s
	}
	if c.WriteBandwidth == 0 {
		c.WriteBandwidth = 1_900_000_000 // 1.9 GB/s
	}
}

// Clock is the subset of sim.Clock the device needs. A nil Clock means
// the access is free (setup and test plumbing).
type Clock interface {
	Now() int64
	Advance(d int64)
	AdvanceTo(t int64) int64
}

// Device is a simulated byte-addressable persistent memory device.
//
// Concurrency contract (mirrors real persistent memory programming):
//   - 8-byte words that multiple threads race on must be accessed only
//     through the atomic LoadUint64 / StoreUint64 / CompareAndSwapUint64.
//   - Bulk Load/Store may be used on regions owned by a single writer at
//     a time; readers of such regions must be ordered after the writer by
//     an atomic publication (for example an HSIT pointer CAS).
type Device struct {
	cfg    Config
	words  []uint64        // live (volatile view), 8-byte aligned backing
	data   []byte          // byte view over words
	shadow []uint64        // durable state
	dirty  []atomic.Uint64 // one bit per line: modified since last flush

	bw sim.Resource

	loads   atomic.Int64
	stores  atomic.Int64
	flushes atomic.Int64
	fences  atomic.Int64
}

// New creates a device of cfg.Size bytes (rounded up to a line multiple).
func New(cfg Config) *Device {
	cfg.applyDefaults()
	if cfg.Size <= 0 {
		panic("nvm: non-positive size")
	}
	lines := (cfg.Size + LineSize - 1) / LineSize
	cfg.Size = lines * LineSize
	nwords := cfg.Size / 8
	d := &Device{
		cfg:    cfg,
		words:  make([]uint64, nwords),
		shadow: make([]uint64, nwords),
		dirty:  make([]atomic.Uint64, (lines+63)/64),
	}
	d.data = unsafe.Slice((*byte)(unsafe.Pointer(&d.words[0])), cfg.Size)
	return d
}

// Size returns the device capacity in bytes.
func (d *Device) Size() int { return d.cfg.Size }

func (d *Device) check(off, n int) {
	if off < 0 || n < 0 || off+n > d.cfg.Size {
		panic(fmt.Sprintf("nvm: access [%d,%d) out of range (size %d)", off, off+n, d.cfg.Size))
	}
}

// chargeRead and chargeWrite reserve transfer time on the shared device
// channel (so concurrent threads contend for the DIMM bandwidth in
// virtual time) and add the fixed access latency on top.
func (d *Device) chargeRead(clk Clock, n int) {
	if clk == nil {
		return
	}
	_, end := d.bw.Acquire(clk.Now(), sim.TransferNS(n, d.cfg.ReadBandwidth))
	clk.AdvanceTo(end + d.cfg.ReadLatency)
}

func (d *Device) chargeWrite(clk Clock, n int) {
	if clk == nil {
		return
	}
	_, end := d.bw.Acquire(clk.Now(), sim.TransferNS(n, d.cfg.WriteBandwidth))
	clk.AdvanceTo(end + d.cfg.WriteLatency)
}

// ChargeRead charges the cost of reading n modeled bytes without touching
// the data space. Components that model their NVM residency logically
// (for example the key index, which the paper treats as a self-contained
// crash-consistent structure) use this so their accesses still contend
// for device bandwidth and pay device latency.
func (d *Device) ChargeRead(clk Clock, n int) { d.chargeRead(clk, n) }

// ChargeWrite is the write-side counterpart of ChargeRead.
func (d *Device) ChargeWrite(clk Clock, n int) { d.chargeWrite(clk, n) }

// Load copies n = len(dst) bytes at off into dst and charges read cost.
func (d *Device) Load(clk Clock, off int, dst []byte) {
	d.check(off, len(dst))
	copy(dst, d.data[off:off+len(dst)])
	d.loads.Add(1)
	d.chargeRead(clk, len(dst))
}

// Store copies src to off, marks the covered lines dirty, and charges
// store cost. Stores land in the CPU cache, so they pay store latency
// and cache-fill time but not NVM media bandwidth — the media write is
// charged when Flush pushes the lines out. The data is volatile until
// Flush covers it.
func (d *Device) Store(clk Clock, off int, src []byte) {
	d.check(off, len(src))
	copy(d.data[off:off+len(src)], src)
	d.markDirty(off, len(src))
	d.stores.Add(1)
	if clk != nil {
		clk.Advance(d.cfg.WriteLatency + sim.TransferNS(len(src), 30_000_000_000))
	}
}

func (d *Device) wordAt(off int) *atomic.Uint64 {
	if off%8 != 0 {
		panic(fmt.Sprintf("nvm: unaligned atomic access at %d", off))
	}
	d.check(off, 8)
	return (*atomic.Uint64)(unsafe.Pointer(&d.words[off/8]))
}

// LoadUint64 atomically loads the 8-byte word at off (must be 8-aligned).
func (d *Device) LoadUint64(clk Clock, off int) uint64 {
	v := d.wordAt(off).Load()
	d.loads.Add(1)
	d.chargeRead(clk, 8)
	return v
}

// StoreUint64 atomically stores v at off and marks the line dirty.
func (d *Device) StoreUint64(clk Clock, off int, v uint64) {
	d.wordAt(off).Store(v)
	d.markDirty(off, 8)
	d.stores.Add(1)
	d.chargeWrite(clk, 8)
}

// CompareAndSwapUint64 atomically CASes the word at off.
func (d *Device) CompareAndSwapUint64(clk Clock, off int, old, new uint64) bool {
	ok := d.wordAt(off).CompareAndSwap(old, new)
	if ok {
		d.markDirty(off, 8)
		d.stores.Add(1)
	}
	d.chargeWrite(clk, 8)
	return ok
}

func (d *Device) markDirty(off, n int) {
	first := off / LineSize
	last := (off + n - 1) / LineSize
	for l := first; l <= last; l++ {
		d.dirty[l/64].Or(1 << (uint(l) % 64))
	}
}

// Flush persists every line overlapping [off, off+n): line contents are
// copied to the durable state and the dirty bits cleared. It charges one
// FlushLatency per flushed line and consumes write bandwidth. Flush of a
// clean line is free of bandwidth but still charges latency, like a clwb
// that misses dirty data.
func (d *Device) Flush(clk Clock, off, n int) {
	if n <= 0 {
		return
	}
	d.check(off, n)
	first := off / LineSize
	last := (off + n - 1) / LineSize
	var flushed int
	for l := first; l <= last; l++ {
		mask := uint64(1) << (uint(l) % 64)
		if d.dirty[l/64].Load()&mask == 0 {
			continue
		}
		d.dirty[l/64].And(^mask)
		w := l * LineSize / 8
		for i := 0; i < LineSize/8; i++ {
			v := (*atomic.Uint64)(unsafe.Pointer(&d.words[w+i])).Load()
			(*atomic.Uint64)(unsafe.Pointer(&d.shadow[w+i])).Store(v)
		}
		flushed++
	}
	d.flushes.Add(int64(flushed))
	if clk != nil {
		clk.Advance(int64(1+flushed)*d.cfg.FlushLatency + sim.TransferNS(flushed*LineSize, d.cfg.WriteBandwidth))
	}
}

// Fence charges ordering cost. In this model Flush is synchronous, so
// Fence provides no additional semantics — only its cost — but callers
// use it at exactly the points real code would issue sfence, which keeps
// the protocol code faithful.
func (d *Device) Fence(clk Clock) {
	d.fences.Add(1)
	if clk != nil {
		clk.Advance(d.cfg.FenceLatency)
	}
}

// Persist is the common flush-then-fence sequence.
func (d *Device) Persist(clk Clock, off, n int) {
	d.Flush(clk, off, n)
	d.Fence(clk)
}

// Crash simulates a power failure: the volatile view reverts to the last
// flushed state and all dirty bits clear. The caller must guarantee
// quiescence (no in-flight accesses) — exactly like a real machine reset.
func (d *Device) Crash() {
	copy(d.words, d.shadow)
	for i := range d.dirty {
		d.dirty[i].Store(0)
	}
}

// PersistAll flushes the entire device (clean-shutdown analogue). Free.
func (d *Device) PersistAll() {
	for l := 0; l < d.cfg.Size/LineSize; l++ {
		mask := uint64(1) << (uint(l) % 64)
		if d.dirty[l/64].Load()&mask == 0 {
			continue
		}
		d.dirty[l/64].And(^mask)
		w := l * LineSize / 8
		copy(d.shadow[w:w+LineSize/8], d.words[w:w+LineSize/8])
	}
}

// ReadPersisted copies the durable (post-crash) contents at off into dst.
// Test helper; charges nothing.
func (d *Device) ReadPersisted(off int, dst []byte) {
	d.check(off, len(dst))
	src := unsafe.Slice((*byte)(unsafe.Pointer(&d.shadow[0])), d.cfg.Size)
	copy(dst, src[off:off+len(dst)])
}

// Stats reports cumulative operation counts.
type Stats struct {
	Loads, Stores, Flushes, Fences int64
}

// Stats returns a snapshot of the device's operation counters.
func (d *Device) Stats() Stats {
	return Stats{
		Loads:   d.loads.Load(),
		Stores:  d.stores.Load(),
		Flushes: d.flushes.Load(),
		Fences:  d.fences.Load(),
	}
}
