package nvm

import (
	"bytes"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func newDev(size int) *Device {
	return New(Config{Size: size})
}

func TestStoreLoadRoundTrip(t *testing.T) {
	d := newDev(4096)
	src := []byte("hello, persistent world")
	d.Store(nil, 100, src)
	dst := make([]byte, len(src))
	d.Load(nil, 100, dst)
	if !bytes.Equal(src, dst) {
		t.Fatalf("round trip mismatch: %q != %q", src, dst)
	}
}

func TestUnflushedDataLostOnCrash(t *testing.T) {
	d := newDev(4096)
	d.Store(nil, 0, []byte("durable"))
	d.Persist(nil, 0, 7)
	d.Store(nil, 256, []byte("volatile"))
	d.Crash()

	got := make([]byte, 7)
	d.Load(nil, 0, got)
	if string(got) != "durable" {
		t.Fatalf("flushed data lost: %q", got)
	}
	got = make([]byte, 8)
	d.Load(nil, 256, got)
	if string(got) == "volatile" {
		t.Fatal("unflushed data survived crash")
	}
}

func TestFlushGranularityIsLine(t *testing.T) {
	d := newDev(4096)
	// Two values in the same line: flushing one persists the line.
	d.Store(nil, 0, []byte{1, 2, 3, 4})
	d.Store(nil, 8, []byte{5, 6, 7, 8})
	d.Flush(nil, 0, 4)
	d.Fence(nil)
	d.Crash()
	got := make([]byte, 4)
	d.Load(nil, 8, got)
	if !bytes.Equal(got, []byte{5, 6, 7, 8}) {
		t.Fatalf("same-line data not persisted by line flush: %v", got)
	}
}

func TestPartialFlushAcrossLines(t *testing.T) {
	d := newDev(4096)
	buf := make([]byte, 3*LineSize)
	for i := range buf {
		buf[i] = byte(i)
	}
	d.Store(nil, 0, buf)
	// Flush only the middle line.
	d.Persist(nil, LineSize, LineSize)
	d.Crash()
	got := make([]byte, 3*LineSize)
	d.Load(nil, 0, got)
	if !bytes.Equal(got[LineSize:2*LineSize], buf[LineSize:2*LineSize]) {
		t.Fatal("flushed middle line lost")
	}
	if bytes.Equal(got[:LineSize], buf[:LineSize]) {
		t.Fatal("unflushed first line survived")
	}
	if bytes.Equal(got[2*LineSize:], buf[2*LineSize:]) {
		t.Fatal("unflushed last line survived")
	}
}

func TestAtomicWordOps(t *testing.T) {
	d := newDev(4096)
	d.StoreUint64(nil, 64, 0xdeadbeef)
	if v := d.LoadUint64(nil, 64); v != 0xdeadbeef {
		t.Fatalf("LoadUint64 = %#x", v)
	}
	if !d.CompareAndSwapUint64(nil, 64, 0xdeadbeef, 42) {
		t.Fatal("CAS with correct old value failed")
	}
	if d.CompareAndSwapUint64(nil, 64, 0xdeadbeef, 43) {
		t.Fatal("CAS with stale old value succeeded")
	}
	if v := d.LoadUint64(nil, 64); v != 42 {
		t.Fatalf("after CAS = %d, want 42", v)
	}
}

func TestUnalignedAtomicPanics(t *testing.T) {
	d := newDev(4096)
	defer func() {
		if recover() == nil {
			t.Fatal("unaligned atomic access did not panic")
		}
	}()
	d.LoadUint64(nil, 3)
}

func TestOutOfRangePanics(t *testing.T) {
	d := newDev(128)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range access did not panic")
		}
	}()
	d.Store(nil, 120, make([]byte, 16))
}

func TestCASPersistsAfterFlush(t *testing.T) {
	d := newDev(4096)
	d.StoreUint64(nil, 0, 1)
	d.Persist(nil, 0, 8)
	d.CompareAndSwapUint64(nil, 0, 1, 2)
	d.Crash() // CAS result not flushed
	if v := d.LoadUint64(nil, 0); v != 1 {
		t.Fatalf("unflushed CAS survived crash: %d", v)
	}
	d.CompareAndSwapUint64(nil, 0, 1, 2)
	d.Persist(nil, 0, 8)
	d.Crash()
	if v := d.LoadUint64(nil, 0); v != 2 {
		t.Fatalf("flushed CAS lost on crash: %d", v)
	}
}

func TestPersistAll(t *testing.T) {
	d := newDev(4096)
	for off := 0; off < 4096; off += 512 {
		d.Store(nil, off, []byte{byte(off / 512)})
	}
	d.PersistAll()
	d.Crash()
	for off := 0; off < 4096; off += 512 {
		got := make([]byte, 1)
		d.Load(nil, off, got)
		if got[0] != byte(off/512) {
			t.Fatalf("PersistAll missed offset %d", off)
		}
	}
}

func TestReadPersisted(t *testing.T) {
	d := newDev(256)
	d.Store(nil, 0, []byte("abc"))
	got := make([]byte, 3)
	d.ReadPersisted(0, got)
	if string(got) == "abc" {
		t.Fatal("ReadPersisted saw unflushed data")
	}
	d.Persist(nil, 0, 3)
	d.ReadPersisted(0, got)
	if string(got) != "abc" {
		t.Fatalf("ReadPersisted after flush = %q", got)
	}
}

func TestCostCharging(t *testing.T) {
	d := New(Config{Size: 4096, ReadLatency: 300, WriteLatency: 90, FlushLatency: 100, FenceLatency: 30})
	clk := sim.NewClock(0)
	d.Load(clk, 0, make([]byte, 8))
	if clk.Now() < 300 {
		t.Fatalf("read did not charge latency: %d", clk.Now())
	}
	before := clk.Now()
	d.Store(clk, 0, make([]byte, 1024))
	if clk.Now() <= before {
		t.Fatal("store charged nothing")
	}
}

func TestBandwidthContention(t *testing.T) {
	d := New(Config{Size: 1 << 20, WriteBandwidth: 1_000_000_000}) // 1 GB/s => 1ns/byte
	// Two threads pushing 64 KB to media at t=0: the second waits for
	// channel time. (Media bandwidth is charged at flush/ChargeWrite;
	// plain stores only pay cache-fill costs.)
	c1, c2 := sim.NewClock(0), sim.NewClock(0)
	d.ChargeWrite(c1, 64<<10)
	d.ChargeWrite(c2, 64<<10)
	faster, slower := c1.Now(), c2.Now()
	if faster > slower {
		faster, slower = slower, faster
	}
	if slower < 2*(64<<10) {
		t.Fatalf("no bandwidth contention: second writer at %dns", slower)
	}
	// A flush of stored data must consume media bandwidth too.
	c3 := sim.NewClock(0)
	d.Store(c3, 0, make([]byte, 64<<10))
	storeOnly := c3.Now()
	d.Persist(c3, 0, 64<<10)
	if c3.Now()-storeOnly < 64<<10/2 {
		t.Fatalf("flush charged too little: %dns", c3.Now()-storeOnly)
	}
}

func TestConcurrentDisjointStores(t *testing.T) {
	d := newDev(1 << 16)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			base := w * 4096
			buf := make([]byte, 64)
			for i := range buf {
				buf[i] = byte(w)
			}
			for i := 0; i < 50; i++ {
				d.Store(nil, base+(i%16)*64, buf)
				d.Persist(nil, base+(i%16)*64, 64)
			}
		}(w)
	}
	wg.Wait()
	for w := 0; w < 8; w++ {
		got := make([]byte, 64)
		d.Load(nil, w*4096, got)
		if got[0] != byte(w) {
			t.Fatalf("worker %d data corrupted: %d", w, got[0])
		}
	}
}

func TestConcurrentCASUniqueWinners(t *testing.T) {
	d := newDev(4096)
	const n = 64
	winners := make([]int, n)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < n; i++ {
				if d.CompareAndSwapUint64(nil, i*8, 0, uint64(w)+1) {
					winners[i]++
				}
			}
		}(w)
	}
	wg.Wait()
	for i, c := range winners {
		if c != 1 {
			t.Fatalf("slot %d had %d CAS winners", i, c)
		}
	}
}

// Property: any sequence of store/flush operations followed by a crash
// leaves each line either in its pre-store or fully-stored state.
func TestCrashStateIsPrefixConsistent(t *testing.T) {
	f := func(seed uint64, nOps uint8) bool {
		rng := sim.NewRNG(seed)
		d := newDev(16 * LineSize)
		flushed := make(map[int][]byte) // expected durable value per line
		current := make(map[int][]byte)
		for i := 0; i < int(nOps%50)+1; i++ {
			line := rng.Intn(16)
			buf := make([]byte, LineSize)
			for j := range buf {
				buf[j] = byte(rng.Uint64())
			}
			d.Store(nil, line*LineSize, buf)
			current[line] = buf
			if rng.Intn(2) == 0 {
				d.Persist(nil, line*LineSize, LineSize)
				flushed[line] = buf
			}
		}
		d.Crash()
		for line, want := range flushed {
			got := make([]byte, LineSize)
			d.Load(nil, line*LineSize, got)
			if !bytes.Equal(got, want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestStats(t *testing.T) {
	d := newDev(4096)
	d.Store(nil, 0, []byte{1})
	d.Load(nil, 0, make([]byte, 1))
	d.Persist(nil, 0, 1)
	s := d.Stats()
	if s.Stores != 1 || s.Loads != 1 || s.Flushes != 1 || s.Fences != 1 {
		t.Fatalf("stats = %+v", s)
	}
}
