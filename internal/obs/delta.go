package obs

// Delta returns the activity between prev and s, so per-phase metrics
// (load vs run vs recovery, per-shard intervals, Fig12 WAF phases) no
// longer require hand-diffing counters:
//
//   - counters become the increase since prev (clamped at 0 if a series
//     restarted);
//   - histograms report the interval's Count and Sum, with Mean
//     recomputed from them; Min/Max/percentiles are structural over the
//     whole history — log-bucketed histograms cannot subtract rank
//     state — so they are zeroed rather than left at their cumulative
//     values (which would silently mix lifetime tails into an interval
//     snapshot). Consumers needing tails over an interval must keep
//     their own histogram; trajectory comparison (prism-bench -compare)
//     keys off KOps only and never reads these fields;
//   - gauges are point-in-time readings and pass through unchanged.
//
// Series absent from prev (e.g. registered mid-run) are treated as
// starting from zero. prev must come from the same registry lineage for
// the result to be meaningful, but no identity check is enforced.
func (s Snapshot) Delta(prev Snapshot) Snapshot {
	idx := make(map[string]Metric, len(prev.Metrics))
	for _, m := range prev.Metrics {
		idx[Desc{Name: m.Name, Labels: m.Labels}.key()] = m
	}
	out := Snapshot{Metrics: make([]Metric, 0, len(s.Metrics))}
	for _, m := range s.Metrics {
		p, ok := idx[Desc{Name: m.Name, Labels: m.Labels}.key()]
		if ok {
			switch {
			case m.Hist != nil && p.Hist != nil:
				h := *m.Hist
				h.Count -= p.Hist.Count
				h.Sum -= p.Hist.Sum
				if h.Count > 0 {
					h.Mean = float64(h.Sum) / float64(h.Count)
				} else {
					h.Count, h.Sum, h.Mean = 0, 0, 0
				}
				// Rank statistics cannot be diffed; zero them so an
				// interval snapshot never reads as lifetime tails.
				h.Min, h.Max = 0, 0
				h.P50, h.P99, h.P999 = 0, 0, 0
				m.Hist = &h
				m.Value = float64(h.Count)
			case m.Type == TypeCounter:
				m.Value -= p.Value
				if m.Value < 0 {
					m.Value = 0
				}
			}
		}
		out.Metrics = append(out.Metrics, m)
	}
	return out
}
