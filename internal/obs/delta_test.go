package obs

import "testing"

// TestDeltaHistogramZeroesRankStats pins the interval-snapshot contract:
// a delta'd histogram carries the interval's Count/Sum/Mean, and the
// rank statistics (Min/Max/percentiles), which are structural over the
// whole history and cannot be subtracted, are zeroed — never left at
// their cumulative values, which would silently mix lifetime tails into
// an interval snapshot (the bench-record bug of ISSUE 8).
func TestDeltaHistogramZeroesRankStats(t *testing.T) {
	hist := func(count, sum, min, max, p50, p99, p999 int64) Metric {
		return Metric{Name: "h", Type: TypeHistogram, Value: float64(count),
			Hist: &HistogramValue{Count: count, Sum: sum,
				Mean: float64(sum) / float64(count),
				Min:  min, Max: max, P50: p50, P99: p99, P999: p999}}
	}
	prev := Snapshot{Metrics: []Metric{hist(10, 1000, 5, 400, 90, 380, 400)}}
	cur := Snapshot{Metrics: []Metric{hist(25, 4000, 5, 900, 120, 850, 900)}}

	d := cur.Delta(prev)
	h := d.Metrics[0].Hist
	if h.Count != 15 || h.Sum != 3000 {
		t.Fatalf("interval Count/Sum = %d/%d, want 15/3000", h.Count, h.Sum)
	}
	if h.Mean != 200 {
		t.Errorf("interval Mean = %v, want 200 (recomputed from interval Count/Sum)", h.Mean)
	}
	if d.Metrics[0].Value != 15 {
		t.Errorf("histogram Value = %v, want interval count 15", d.Metrics[0].Value)
	}
	if h.Min != 0 || h.Max != 0 || h.P50 != 0 || h.P99 != 0 || h.P999 != 0 {
		t.Errorf("rank stats not zeroed in delta: %+v", *h)
	}
	if cur.Metrics[0].Hist.Max != 900 {
		t.Error("Delta mutated the source snapshot's histogram")
	}

	// An idle interval zeroes everything rather than reporting stale
	// lifetime values.
	idle := cur.Delta(cur)
	h = idle.Metrics[0].Hist
	if h.Count != 0 || h.Sum != 0 || h.Mean != 0 || h.Max != 0 || h.P99 != 0 {
		t.Errorf("idle-interval histogram not fully zeroed: %+v", *h)
	}
}

// TestDeltaCounterAndGauge pins the non-histogram delta rules: counters
// report the increase (clamped at zero across a restart), gauges pass
// through as point-in-time readings, and series absent from prev count
// from zero.
func TestDeltaCounterAndGauge(t *testing.T) {
	snap := func(c, g float64) Snapshot {
		return Snapshot{Metrics: []Metric{
			{Name: "c", Type: TypeCounter, Value: c},
			{Name: "g", Type: TypeGauge, Value: g},
		}}
	}
	d := snap(70, 3).Delta(snap(50, 9))
	if d.Metrics[0].Value != 20 {
		t.Errorf("counter delta = %v, want 20", d.Metrics[0].Value)
	}
	if d.Metrics[1].Value != 3 {
		t.Errorf("gauge delta = %v, want pass-through 3", d.Metrics[1].Value)
	}

	restarted := snap(5, 1).Delta(snap(50, 9))
	if restarted.Metrics[0].Value != 0 {
		t.Errorf("restarted counter delta = %v, want clamp to 0", restarted.Metrics[0].Value)
	}

	fresh := snap(70, 3).Delta(Snapshot{})
	if fresh.Metrics[0].Value != 70 {
		t.Errorf("counter absent from prev: delta = %v, want 70", fresh.Metrics[0].Value)
	}
}
