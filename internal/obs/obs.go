// Package obs is the unified observability layer: a dependency-free
// metrics registry shared by every subsystem of the store.
//
// Three metric kinds cover the engine's needs:
//
//   - Counter: an owned, monotonically increasing atomic (hot-path
//     increments are one atomic add).
//   - Gauge / counter funcs: callbacks evaluated at snapshot time, used
//     to re-export the per-subsystem Stats() counters that already exist
//     without touching their hot paths.
//   - Histogram: a concurrent log-bucketed distribution reusing
//     internal/histogram's bucket layout with atomic counts (recording is
//     a handful of atomic adds; percentiles are computed at snapshot
//     time).
//
// Metrics are identified by a dot-separated name whose first segment is
// the owning subsystem ("ssd.bytes_written") plus an optional label set
// ({device: ssd0}). Snapshot() returns a stable, sorted,
// JSON-serializable view; see METRICS.md for the full reference of
// metrics the engine exports.
//
// Concurrency: Counter.Add and Histogram.Record are safe from any
// goroutine. Registration and Snapshot take the registry mutex; gauge
// and counter funcs run under it and must not re-enter the registry.
//
// Disabled operation: every method is nil-safe. A nil *Registry returns
// nil metric handles, and Add/Record on nil handles are no-ops that
// compile to a pointer test — turning the registry off (Options.
// DisableMetrics) costs nothing on the hot path.
package obs

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/histogram"
)

// Type discriminates metric kinds in a Snapshot.
type Type string

// Metric kinds.
const (
	TypeCounter   Type = "counter"
	TypeGauge     Type = "gauge"
	TypeHistogram Type = "histogram"
)

// Desc names and documents one metric at registration time.
type Desc struct {
	// Name is dot-separated with the owning subsystem first, e.g.
	// "vs.gc_runs". Required.
	Name string
	// Help is a one-line description (surfaced in snapshots and
	// METRICS.md).
	Help string
	// Unit is the value's unit ("ops", "bytes", "ns", "ratio", ...).
	Unit string
	// Labels distinguish instances of the same metric (e.g. one series
	// per SSD: {device: ssd1}). May be nil.
	Labels map[string]string
}

// key is the canonical identity: name plus sorted labels.
func (d Desc) key() string {
	if len(d.Labels) == 0 {
		return d.Name
	}
	ks := make([]string, 0, len(d.Labels))
	for k := range d.Labels {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	var b strings.Builder
	b.WriteString(d.Name)
	for _, k := range ks {
		fmt.Fprintf(&b, "{%s=%s}", k, d.Labels[k])
	}
	return b.String()
}

// Counter is a monotonically increasing metric owned by the registry.
// The nil Counter is a no-op.
type Counter struct {
	v atomic.Int64
}

// Add increases the counter by n.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increases the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 for a nil Counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Histogram is a concurrent distribution over non-negative int64 samples
// using internal/histogram's log-linear buckets (<1.6% relative error).
// The nil Histogram is a no-op.
type Histogram struct {
	counts []atomic.Int64 // histogram.NumBuckets
	total  atomic.Int64
	sum    atomic.Int64
	min    atomic.Int64 // math.MaxInt64 when empty
	max    atomic.Int64
}

func newHistogram() *Histogram {
	h := &Histogram{counts: make([]atomic.Int64, histogram.NumBuckets)}
	h.min.Store(math.MaxInt64)
	return h
}

// Record adds one sample. Negative samples clamp to zero.
func (h *Histogram) Record(v int64) {
	if h == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	h.counts[histogram.BucketIndex(v)].Add(1)
	h.total.Add(1)
	h.sum.Add(v)
	for {
		cur := h.min.Load()
		if v >= cur || h.min.CompareAndSwap(cur, v) {
			break
		}
	}
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
}

// Count returns the number of samples recorded (0 for nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.total.Load()
}

// value summarizes the histogram. Concurrent Records may land between
// bucket reads; each read is individually consistent, which is enough
// for monitoring.
func (h *Histogram) value() *HistogramValue {
	v := &HistogramValue{Count: h.total.Load(), Max: h.max.Load()}
	if v.Count == 0 {
		return v
	}
	if m := h.min.Load(); m != math.MaxInt64 {
		v.Min = m
	}
	v.Sum = h.sum.Load()
	v.Mean = float64(v.Sum) / float64(v.Count)
	pct := func(p float64) int64 {
		rank := int64(p / 100 * float64(v.Count))
		if rank < 1 {
			rank = 1
		}
		var seen int64
		for b := range h.counts {
			seen += h.counts[b].Load()
			if seen >= rank {
				u := histogram.BucketUpper(b)
				if u > v.Max {
					u = v.Max
				}
				return u
			}
		}
		return v.Max
	}
	v.P50, v.P99, v.P999 = pct(50), pct(99), pct(99.9)
	return v
}

// HistogramValue is the snapshot form of a Histogram.
type HistogramValue struct {
	Count int64   `json:"count"`
	Sum   int64   `json:"sum"`
	Mean  float64 `json:"mean"`
	Min   int64   `json:"min"`
	Max   int64   `json:"max"`
	P50   int64   `json:"p50"`
	P99   int64   `json:"p99"`
	P999  int64   `json:"p999"`
}

// entry is one registered metric.
type entry struct {
	desc      Desc
	typ       Type
	counter   *Counter
	hist      *Histogram
	gaugeFn   func() float64
	counterFn func() int64
}

// Registry holds named metrics. Create with NewRegistry; the nil
// *Registry is a valid disabled registry (all methods no-op).
type Registry struct {
	mu      sync.Mutex
	entries []*entry
	keys    map[string]*entry
}

// NewRegistry returns an empty enabled registry.
func NewRegistry() *Registry {
	return &Registry{keys: make(map[string]*entry)}
}

func (r *Registry) add(e *entry) {
	r.mu.Lock()
	defer r.mu.Unlock()
	k := e.desc.key()
	if _, dup := r.keys[k]; dup {
		panic("obs: duplicate metric " + k)
	}
	r.keys[k] = e
	r.entries = append(r.entries, e)
}

// Counter registers and returns an owned counter. Returns nil (a no-op
// handle) on a nil registry.
func (r *Registry) Counter(d Desc) *Counter {
	if r == nil {
		return nil
	}
	c := &Counter{}
	r.add(&entry{desc: d, typ: TypeCounter, counter: c})
	return c
}

// Histogram registers and returns a concurrent histogram. Returns nil (a
// no-op handle) on a nil registry.
func (r *Registry) Histogram(d Desc) *Histogram {
	if r == nil {
		return nil
	}
	h := newHistogram()
	r.add(&entry{desc: d, typ: TypeHistogram, hist: h})
	return h
}

// GaugeFunc registers a gauge whose value is read by fn at snapshot
// time. No-op on a nil registry.
func (r *Registry) GaugeFunc(d Desc, fn func() float64) {
	if r == nil {
		return
	}
	r.add(&entry{desc: d, typ: TypeGauge, gaugeFn: fn})
}

// CounterFunc registers a counter whose cumulative value is read by fn
// at snapshot time — the bridge to subsystems that already keep their
// own atomic counters. No-op on a nil registry.
func (r *Registry) CounterFunc(d Desc, fn func() int64) {
	if r == nil {
		return
	}
	r.add(&entry{desc: d, typ: TypeCounter, counterFn: fn})
}

// Metric is one metric's snapshot row.
type Metric struct {
	Name   string            `json:"name"`
	Type   Type              `json:"type"`
	Unit   string            `json:"unit,omitempty"`
	Help   string            `json:"help,omitempty"`
	Labels map[string]string `json:"labels,omitempty"`
	// Value carries counter and gauge readings (for histograms it is the
	// sample count, so Sum over a histogram series is meaningful).
	Value float64         `json:"value"`
	Hist  *HistogramValue `json:"hist,omitempty"`
}

// Snapshot is a point-in-time, JSON-serializable view of a registry,
// sorted by metric name then labels for stable output.
type Snapshot struct {
	Metrics []Metric `json:"metrics"`
}

// Snapshot reads every metric. Safe concurrently with hot-path updates;
// a nil registry yields an empty snapshot.
func (r *Registry) Snapshot() Snapshot {
	if r == nil {
		return Snapshot{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s := Snapshot{Metrics: make([]Metric, 0, len(r.entries))}
	for _, e := range r.entries {
		m := Metric{Name: e.desc.Name, Type: e.typ, Unit: e.desc.Unit, Help: e.desc.Help, Labels: e.desc.Labels}
		switch {
		case e.counter != nil:
			m.Value = float64(e.counter.Value())
		case e.counterFn != nil:
			m.Value = float64(e.counterFn())
		case e.gaugeFn != nil:
			m.Value = e.gaugeFn()
		case e.hist != nil:
			m.Hist = e.hist.value()
			m.Value = float64(m.Hist.Count)
		}
		s.Metrics = append(s.Metrics, m)
	}
	s.Sort()
	return s
}

// Sort orders metrics by name then label set — the invariant every
// Snapshot carries. Callers that merge snapshots (the sharding router)
// restore it after appending.
func (s *Snapshot) Sort() {
	sort.Slice(s.Metrics, func(a, b int) bool {
		if s.Metrics[a].Name != s.Metrics[b].Name {
			return s.Metrics[a].Name < s.Metrics[b].Name
		}
		return labelKey(s.Metrics[a].Labels) < labelKey(s.Metrics[b].Labels)
	})
}

func labelKey(labels map[string]string) string {
	return Desc{Labels: labels}.key()
}

// Get returns the metric with the given name and exact label set.
func (s Snapshot) Get(name string, labels map[string]string) (Metric, bool) {
	want := Desc{Name: name, Labels: labels}.key()
	for _, m := range s.Metrics {
		if (Desc{Name: m.Name, Labels: m.Labels}).key() == want {
			return m, true
		}
	}
	return Metric{}, false
}

// Value returns the value of the uniquely named metric (any label set);
// ok is false when the name is absent or ambiguous across label sets.
func (s Snapshot) Value(name string) (v float64, ok bool) {
	n := 0
	for _, m := range s.Metrics {
		if m.Name == name {
			v, n = m.Value, n+1
		}
	}
	return v, n == 1
}

// Sum adds the values of every series with the given name (e.g. a
// per-device counter summed across devices).
func (s Snapshot) Sum(name string) float64 {
	var t float64
	for _, m := range s.Metrics {
		if m.Name == name {
			t += m.Value
		}
	}
	return t
}

// Names returns the sorted, de-duplicated metric names in the snapshot.
func (s Snapshot) Names() []string {
	seen := map[string]bool{}
	var out []string
	for _, m := range s.Metrics {
		if !seen[m.Name] {
			seen[m.Name] = true
			out = append(out, m.Name)
		}
	}
	sort.Strings(out)
	return out
}

// JSON renders the snapshot as indented JSON.
func (s Snapshot) JSON() string {
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		panic(err) // static types: cannot fail
	}
	return string(b)
}

// Text renders the snapshot as aligned "name{labels} value" lines — the
// human-readable form used by prism-cli's metrics command.
func (s Snapshot) Text() string {
	var b strings.Builder
	for _, m := range s.Metrics {
		id := m.Name
		if len(m.Labels) > 0 {
			id = Desc{Name: m.Name, Labels: m.Labels}.key()
		}
		if m.Hist != nil {
			fmt.Fprintf(&b, "%-40s count=%d mean=%.1f p50=%d p99=%d p99.9=%d max=%d\n",
				id, m.Hist.Count, m.Hist.Mean, m.Hist.P50, m.Hist.P99, m.Hist.P999, m.Hist.Max)
			continue
		}
		if m.Value == math.Trunc(m.Value) && math.Abs(m.Value) < 1e15 {
			fmt.Fprintf(&b, "%-40s %d %s\n", id, int64(m.Value), m.Unit)
		} else {
			fmt.Fprintf(&b, "%-40s %.4f %s\n", id, m.Value, m.Unit)
		}
	}
	return b.String()
}
