package obs

import (
	"encoding/json"
	"math/rand"
	"sync"
	"testing"
)

func TestCounterConcurrent(t *testing.T) {
	r := NewRegistry()
	c := r.Counter(Desc{Name: "t.count", Unit: "ops"})
	const workers, each = 8, 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != workers*each {
		t.Fatalf("counter = %d, want %d", got, workers*each)
	}
	m, ok := r.Snapshot().Get("t.count", nil)
	if !ok || m.Value != workers*each {
		t.Fatalf("snapshot value = %v ok=%v", m.Value, ok)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram(Desc{Name: "t.lat", Unit: "ns"})
	const workers, each = 8, 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < each; i++ {
				h.Record(rng.Int63n(1_000_000))
			}
		}(int64(w))
	}
	wg.Wait()
	if h.Count() != workers*each {
		t.Fatalf("count = %d, want %d", h.Count(), workers*each)
	}
	m, _ := r.Snapshot().Get("t.lat", nil)
	hv := m.Hist
	if hv == nil {
		t.Fatal("no histogram value in snapshot")
	}
	if hv.Min < 0 || hv.Max >= 1_000_000 || hv.Min > hv.Max {
		t.Fatalf("min/max out of range: %d..%d", hv.Min, hv.Max)
	}
	if hv.P50 > hv.P99 || hv.P99 > hv.P999 || hv.P999 > hv.Max {
		t.Fatalf("percentiles not monotonic: p50=%d p99=%d p999=%d max=%d", hv.P50, hv.P99, hv.P999, hv.Max)
	}
	// Uniform [0, 1e6): p50 should land near 500k within bucket error.
	if hv.P50 < 400_000 || hv.P50 > 600_000 {
		t.Fatalf("p50 = %d, want ~500000", hv.P50)
	}
}

func TestHistogramPercentilesExact(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram(Desc{Name: "t.h"})
	for v := int64(1); v <= 1000; v++ {
		h.Record(v)
	}
	m, _ := r.Snapshot().Get("t.h", nil)
	hv := m.Hist
	if hv.Count != 1000 || hv.Min != 1 || hv.Max != 1000 {
		t.Fatalf("count/min/max = %d/%d/%d", hv.Count, hv.Min, hv.Max)
	}
	// log-linear buckets guarantee <1.6% relative error.
	within := func(got, want int64) bool {
		d := got - want
		if d < 0 {
			d = -d
		}
		return float64(d) <= 0.02*float64(want)+1
	}
	if !within(hv.P50, 500) || !within(hv.P99, 990) || !within(hv.P999, 999) {
		t.Fatalf("percentiles p50=%d p99=%d p999=%d", hv.P50, hv.P99, hv.P999)
	}
	if hv.Mean < 499 || hv.Mean > 502 {
		t.Fatalf("mean = %f, want ~500.5", hv.Mean)
	}
}

func TestSnapshotStableAndJSON(t *testing.T) {
	r := NewRegistry()
	// Register out of order with labels; snapshot must sort stably.
	r.CounterFunc(Desc{Name: "z.last", Labels: map[string]string{"device": "ssd1"}}, func() int64 { return 2 })
	r.CounterFunc(Desc{Name: "z.last", Labels: map[string]string{"device": "ssd0"}}, func() int64 { return 1 })
	r.GaugeFunc(Desc{Name: "a.first", Unit: "ratio"}, func() float64 { return 0.5 })
	r.Counter(Desc{Name: "m.mid"}).Add(7)

	s1, s2 := r.Snapshot(), r.Snapshot()
	j1, j2 := s1.JSON(), s2.JSON()
	if j1 != j2 {
		t.Fatalf("snapshots differ with no updates:\n%s\nvs\n%s", j1, j2)
	}
	var decoded Snapshot
	if err := json.Unmarshal([]byte(j1), &decoded); err != nil {
		t.Fatalf("snapshot JSON does not round-trip: %v", err)
	}
	order := []string{"a.first", "m.mid", "z.last", "z.last"}
	for i, want := range order {
		if s1.Metrics[i].Name != want {
			t.Fatalf("metric %d = %s, want %s", i, s1.Metrics[i].Name, want)
		}
	}
	if s1.Metrics[2].Labels["device"] != "ssd0" || s1.Metrics[3].Labels["device"] != "ssd1" {
		t.Fatal("label sets not sorted")
	}
	if got := s1.Sum("z.last"); got != 3 {
		t.Fatalf("Sum(z.last) = %v, want 3", got)
	}
	if _, ok := s1.Value("z.last"); ok {
		t.Fatal("Value must reject ambiguous names")
	}
	if v, ok := s1.Value("m.mid"); !ok || v != 7 {
		t.Fatalf("Value(m.mid) = %v ok=%v", v, ok)
	}
}

func TestNilRegistryNoOps(t *testing.T) {
	var r *Registry
	c := r.Counter(Desc{Name: "x"})
	h := r.Histogram(Desc{Name: "y"})
	r.GaugeFunc(Desc{Name: "g"}, func() float64 { return 1 })
	r.CounterFunc(Desc{Name: "c"}, func() int64 { return 1 })
	c.Inc()
	c.Add(5)
	h.Record(42)
	if c.Value() != 0 || h.Count() != 0 {
		t.Fatal("nil handles must stay zero")
	}
	if s := r.Snapshot(); len(s.Metrics) != 0 {
		t.Fatal("nil registry snapshot must be empty")
	}
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter(Desc{Name: "dup", Labels: map[string]string{"a": "1"}})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on duplicate metric")
		}
	}()
	r.Counter(Desc{Name: "dup", Labels: map[string]string{"a": "1"}})
}

func TestSampler(t *testing.T) {
	r := NewRegistry()
	c := r.Counter(Desc{Name: "s.ops"})
	sp := NewSampler(r.Snapshot, 100)
	if !sp.Observe(0) {
		t.Fatal("first observation must sample")
	}
	c.Add(10)
	if sp.Observe(50) {
		t.Fatal("mid-interval observation must not sample")
	}
	if !sp.Observe(100) {
		t.Fatal("interval boundary must sample")
	}
	c.Add(5)
	sp.Observe(250)
	pts := sp.Series("s.ops")
	want := []Point{{0, 0}, {100, 10}, {250, 15}}
	if len(pts) != len(want) {
		t.Fatalf("series = %v, want %v", pts, want)
	}
	for i := range want {
		if pts[i] != want[i] {
			t.Fatalf("series[%d] = %v, want %v", i, pts[i], want[i])
		}
	}
	if got := SeriesOf(sp.Samples(), "s.ops"); len(got) != 3 || got[2].Value != 15 {
		t.Fatalf("SeriesOf = %v", got)
	}

	var nilSp *Sampler
	if nilSp.Observe(1) || nilSp.Samples() != nil {
		t.Fatal("nil sampler must no-op")
	}
}
