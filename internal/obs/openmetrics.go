package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// WriteOpenMetrics renders the snapshot in the Prometheus text
// exposition format (text/plain version 0.0.4, accepted by Prometheus
// and OpenMetrics scrapers):
//
//   - metric names are mangled to the Prometheus charset with a prism_
//     prefix ("core.ops" -> "prism_core_ops") and keep their labels;
//   - counters and gauges render as one sample per series;
//   - histograms render as summaries: {quantile="0.5"|"0.99"|"0.999"}
//     series plus _sum and _count, so rates and interval means come out
//     of PromQL directly.
//
// One # HELP / # TYPE header is emitted per family. The snapshot's
// sorted order groups every series of a family contiguously.
func (s Snapshot) WriteOpenMetrics(w io.Writer) error {
	prev := ""
	for _, m := range s.Metrics {
		name := promName(m.Name)
		if m.Name != prev {
			prev = m.Name
			help := m.Help
			if m.Unit != "" {
				help += " (" + m.Unit + ")"
			}
			typ := "counter"
			switch m.Type {
			case TypeGauge:
				typ = "gauge"
			case TypeHistogram:
				typ = "summary"
			}
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, promEscape(help), name, typ); err != nil {
				return err
			}
		}
		if m.Hist != nil {
			for _, q := range [...]struct {
				q string
				v int64
			}{{"0.5", m.Hist.P50}, {"0.99", m.Hist.P99}, {"0.999", m.Hist.P999}} {
				if _, err := fmt.Fprintf(w, "%s%s %d\n", name, promLabels(m.Labels, "quantile", q.q), q.v); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "%s_sum%s %d\n%s_count%s %d\n",
				name, promLabels(m.Labels), m.Hist.Sum,
				name, promLabels(m.Labels), m.Hist.Count); err != nil {
				return err
			}
			continue
		}
		if _, err := fmt.Fprintf(w, "%s%s %s\n", name, promLabels(m.Labels), strconv.FormatFloat(m.Value, 'g', -1, 64)); err != nil {
			return err
		}
	}
	return nil
}

// promName mangles a dotted metric name into the Prometheus charset
// with the exporter prefix.
func promName(name string) string {
	var b strings.Builder
	b.WriteString("prism_")
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// promLabels renders a sorted {k="v",...} block, appending any extra
// key/value pairs given (the summary quantile). Empty when there are no
// labels at all.
func promLabels(labels map[string]string, extra ...string) string {
	if len(labels) == 0 && len(extra) == 0 {
		return ""
	}
	ks := make([]string, 0, len(labels))
	for k := range labels {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	var b strings.Builder
	b.WriteByte('{')
	// %q escapes quotes, backslashes, and newlines — exactly the label
	// value escaping the format requires.
	for i, k := range ks {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", promName(k)[len("prism_"):], labels[k])
	}
	for i := 0; i < len(extra); i += 2 {
		if len(ks) > 0 || i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", extra[i], extra[i+1])
	}
	b.WriteByte('}')
	return b.String()
}

// promEscape escapes backslashes and newlines for help text and label
// values (quotes are handled by %q).
func promEscape(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}
