package obs

import (
	"strings"
	"testing"
)

func TestWriteOpenMetrics(t *testing.T) {
	r := NewRegistry()
	r.Counter(Desc{Name: "t.ops", Help: "ops done", Unit: "ops",
		Labels: map[string]string{"op": "put"}}).Add(3)
	r.Counter(Desc{Name: "t.ops", Help: "ops done", Unit: "ops",
		Labels: map[string]string{"op": "get"}}).Add(5)
	r.GaugeFunc(Desc{Name: "t.ratio", Help: "a gauge"}, func() float64 { return 0.25 })
	h := r.Histogram(Desc{Name: "t.lat", Help: "latency", Unit: "ns"})
	for v := int64(1); v <= 100; v++ {
		h.Record(v)
	}
	r.Counter(Desc{Name: "t.weird", Help: `back\slash help`,
		Labels: map[string]string{"path": `a\b"c`}}).Add(1)

	var b strings.Builder
	if err := r.Snapshot().WriteOpenMetrics(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()

	for _, want := range []string{
		"# HELP prism_t_ops ops done (ops)",
		"# TYPE prism_t_ops counter",
		`prism_t_ops{op="get"} 5`,
		`prism_t_ops{op="put"} 3`,
		"# TYPE prism_t_ratio gauge",
		"prism_t_ratio 0.25",
		"# TYPE prism_t_lat summary",
		`prism_t_lat{quantile="0.5"}`,
		`prism_t_lat{quantile="0.99"}`,
		`prism_t_lat{quantile="0.999"}`,
		"prism_t_lat_sum 5050",
		"prism_t_lat_count 100",
		"# HELP prism_t_weird back\\\\slash help",
		`prism_t_weird{path="a\\b\"c"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	if n := strings.Count(out, "# TYPE prism_t_ops"); n != 1 {
		t.Fatalf("t.ops family header emitted %d times, want once:\n%s", n, out)
	}
	// Every non-comment line is "name{labels} value" with a parseable
	// float value — the shape scrapers require.
	for _, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 || !strings.HasPrefix(line, "prism_") {
			t.Fatalf("malformed sample line %q", line)
		}
	}
}

func TestSnapshotDelta(t *testing.T) {
	r := NewRegistry()
	c := r.Counter(Desc{Name: "d.ops", Unit: "ops"})
	h := r.Histogram(Desc{Name: "d.lat", Unit: "ns"})
	g := 10.0
	r.GaugeFunc(Desc{Name: "d.gauge"}, func() float64 { return g })

	c.Add(5)
	h.Record(100)
	h.Record(300)
	prev := r.Snapshot()

	c.Add(7)
	h.Record(500)
	g = 42
	cur := r.Snapshot()

	d := cur.Delta(prev)
	if v, ok := d.Value("d.ops"); !ok || v != 7 {
		t.Fatalf("counter delta = %v ok=%v, want 7", v, ok)
	}
	m, ok := d.Get("d.lat", nil)
	if !ok || m.Hist == nil {
		t.Fatalf("histogram delta missing: %+v ok=%v", m, ok)
	}
	if m.Hist.Count != 1 || m.Hist.Sum != 500 || m.Hist.Mean != 500 {
		t.Fatalf("histogram delta count=%d sum=%d mean=%f, want 1/500/500",
			m.Hist.Count, m.Hist.Sum, m.Hist.Mean)
	}
	// Gauges are point-in-time and pass through.
	if v, ok := d.Value("d.gauge"); !ok || v != 42 {
		t.Fatalf("gauge in delta = %v ok=%v, want 42", v, ok)
	}

	// No activity between snapshots: counters and histogram intervals
	// are exactly zero.
	idle := r.Snapshot().Delta(cur)
	if v, _ := idle.Value("d.ops"); v != 0 {
		t.Fatalf("idle counter delta = %v, want 0", v)
	}
	if m, _ := idle.Get("d.lat", nil); m.Hist.Count != 0 || m.Hist.Sum != 0 || m.Hist.Mean != 0 {
		t.Fatalf("idle histogram delta = %+v, want zeroed", m.Hist)
	}

	// A series restart (current < prev) clamps to zero, and a series
	// absent from prev counts from zero.
	r2 := NewRegistry()
	r2.Counter(Desc{Name: "d.ops"}).Add(2)
	d2 := r2.Snapshot().Delta(prev)
	if v, _ := d2.Value("d.ops"); v != 0 {
		t.Fatalf("restarted counter delta = %v, want clamp to 0", v)
	}
	r3 := NewRegistry()
	r3.Counter(Desc{Name: "d.fresh"}).Add(9)
	d3 := r3.Snapshot().Delta(prev)
	if v, _ := d3.Value("d.fresh"); v != 9 {
		t.Fatalf("fresh series delta = %v, want 9", v)
	}
}
