package obs

import "sync"

// Sample is one periodic observation of a registry.
type Sample struct {
	NS   int64    `json:"ns"` // virtual time of the sample
	Snap Snapshot `json:"snapshot"`
}

// Point is one (time, value) pair of a metric timeline.
type Point struct {
	NS    int64   `json:"ns"`
	Value float64 `json:"value"`
}

// Sampler turns a snapshot source into a periodic timeline in *virtual*
// time: callers feed it their virtual clock via Observe, and whenever a
// full interval has elapsed it captures a snapshot. Because simulated
// time only advances when threads run, the sampler is driven by the
// workload itself rather than a wall-clock ticker — the benchmark
// harness calls Observe at its round barrier, which is how any metric
// gets a Figure 17-style timeline.
//
// Concurrency: Observe and Samples are safe from any goroutine. The nil
// *Sampler is a no-op.
type Sampler struct {
	mu       sync.Mutex
	source   func() Snapshot
	interval int64
	nextAt   int64
	samples  []Sample
}

// NewSampler creates a sampler reading source every intervalNS of
// virtual time. A nil source or non-positive interval yields a no-op
// sampler.
func NewSampler(source func() Snapshot, intervalNS int64) *Sampler {
	if source == nil || intervalNS <= 0 {
		return nil
	}
	return &Sampler{source: source, interval: intervalNS}
}

// Observe advances the sampler to virtual time nowNS, capturing one
// snapshot if at least an interval has passed since the previous
// capture (the first call always captures). Reports whether a sample
// was taken.
func (sp *Sampler) Observe(nowNS int64) bool {
	if sp == nil {
		return false
	}
	sp.mu.Lock()
	defer sp.mu.Unlock()
	if len(sp.samples) > 0 && nowNS < sp.nextAt {
		return false
	}
	sp.samples = append(sp.samples, Sample{NS: nowNS, Snap: sp.source()})
	sp.nextAt = nowNS + sp.interval
	return true
}

// Samples returns the captured samples in time order.
func (sp *Sampler) Samples() []Sample {
	if sp == nil {
		return nil
	}
	sp.mu.Lock()
	defer sp.mu.Unlock()
	out := make([]Sample, len(sp.samples))
	copy(out, sp.samples)
	return out
}

// Series extracts the timeline of one metric (values summed across its
// label sets, as Snapshot.Sum does).
func (sp *Sampler) Series(name string) []Point {
	var out []Point
	for _, s := range sp.Samples() {
		out = append(out, Point{NS: s.NS, Value: s.Snap.Sum(name)})
	}
	return out
}

// SeriesOf extracts the timeline of one metric from pre-collected
// samples (e.g. samples carried in a benchmark result).
func SeriesOf(samples []Sample, name string) []Point {
	var out []Point
	for _, s := range samples {
		out = append(out, Point{NS: s.NS, Value: s.Snap.Sum(name)})
	}
	return out
}
