// Package pwb implements the Persistent Write Buffer of §4.3: a
// per-thread, append-only ring of value records on NVM that makes every
// write durable off the SSD's critical path.
//
// Record layout on NVM (16-byte aligned, sizes multiples of 16):
//
//	[ backptr:8 ][ len:4 ][ magic:4 ][ value... pad ]
//
// backptr is the HSIT entry index — the backward pointer of §4.5. A
// record is live iff it is well-coupled: HSIT[backptr]'s forward pointer
// refers back to this record. Because writes are append-only, old
// versions are never overwritten in place; they simply become ill-coupled
// once the HSIT entry moves on, which is what makes PWB crash consistency
// "easy and efficient" (§4.3).
//
// The ring is single-writer (its owning thread appends) and multi-reader
// (Get paths and the background reclaimer read records). Space is
// released strictly in order, and only between reclaim passes: epoch
// grace turns a pass's scanned range into a Grant, and the single scan
// owner applies pending grants via ApplyGrants before it snapshots the
// next scan range. The tail therefore never moves while a scan is in
// flight, so the physical bytes under a scan can never be recycled and
// re-appended (the aliasing that caused the seed's reclamation race).
package pwb

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync/atomic"

	"repro/internal/nvm"
)

const (
	headerSize  = 16
	recordAlign = 16
	// magic marks a live record header; padMagic marks end-of-ring filler.
	magic    = 0x50574252 // "PWBR"
	padMagic = 0x50574250 // "PWBP"
)

// ErrFull is returned by Append when the ring has insufficient space.
// The engine responds by kicking reclamation and retrying (§4.3: the
// application thread uses the remaining space while reclaiming).
var ErrFull = errors.New("pwb: buffer full")

// Buffer is one thread's persistent write buffer over the NVM region
// [base, base+size).
type Buffer struct {
	dev  *nvm.Device
	base int
	size uint64

	head atomic.Uint64 // logical append cursor (monotonic)
	tail atomic.Uint64 // logical release cursor (monotonic)

	// releasable is the highest logical cursor whose space has been
	// granted back by epoch grace (Grant). Only the single scan owner
	// folds it into tail (ApplyGrants), so the tail is frozen for the
	// whole duration of any scan pass.
	releasable atomic.Uint64

	// unpublished is the logical cursor of the owner's in-flight append
	// whose HSIT forward pointer has not been published yet, or noPending.
	// The reclaimer clamps its scan below it: a record in this window
	// looks ill-coupled (its publish hasn't landed), and classifying it
	// as garbage would release a slot that a live pointer is about to
	// reference forever.
	unpublished atomic.Uint64

	bytesAppended atomic.Int64 // user payload bytes (WAF accounting; survives Reset)
}

// noPending is the unpublished-floor sentinel meaning "no append is
// awaiting its HSIT publish".
const noPending = ^uint64(0)

// NewBuffer creates a buffer over [base, base+size) of dev. base and size
// must be 16-byte aligned, size >= 64.
func NewBuffer(dev *nvm.Device, base, size int) *Buffer {
	if base%recordAlign != 0 || size%recordAlign != 0 {
		panic("pwb: unaligned region")
	}
	if size < 64 {
		panic("pwb: region too small")
	}
	if base+size > dev.Size() {
		panic("pwb: region exceeds device")
	}
	b := &Buffer{dev: dev, base: base, size: uint64(size)}
	b.unpublished.Store(noPending)
	return b
}

// recSize returns the aligned on-NVM footprint of a value record.
func recSize(valueLen int) uint64 {
	return uint64(headerSize+valueLen+recordAlign-1) / recordAlign * recordAlign
}

// Size returns the ring capacity in bytes.
func (b *Buffer) Size() int { return int(b.size) }

// Used returns the number of bytes between tail and head.
func (b *Buffer) Used() int { return int(b.head.Load() - b.tail.Load()) }

// Utilization returns Used/Size in [0,1].
func (b *Buffer) Utilization() float64 { return float64(b.Used()) / float64(b.size) }

// Head returns the logical append cursor (reclaimer scan upper bound).
func (b *Buffer) Head() uint64 { return b.head.Load() }

// Tail returns the logical release cursor (reclaimer scan lower bound).
func (b *Buffer) Tail() uint64 { return b.tail.Load() }

// pos maps a logical cursor to a physical byte offset on the device.
func (b *Buffer) pos(logical uint64) int { return b.base + int(logical%b.size) }

// GlobalOff maps a logical cursor to the stable device offset stored in
// HSIT forward pointers.
func (b *Buffer) GlobalOff(logical uint64) uint64 { return uint64(b.pos(logical)) }

// Append durably writes a value record for hsitIdx and returns the
// record's device offset (what the HSIT forward pointer should hold) and
// its logical cursor. The record is flushed and fenced before return, so
// the caller may immediately publish it (§5.4: persist value before
// pointer). Only the owning thread may call Append.
//
// The record is born with its HSIT publish pending: the caller MUST call
// Published after installing the forward pointer (or after deciding not
// to). Until then the reclaimer's scan bound (UnpublishedFloor) excludes
// the record, so a pass that would otherwise see it as ill-coupled
// cannot release its space out from under the soon-to-land pointer.
// Several appends may share one publish window: the floor sticks to the
// first record appended since the last Published call, so a batch of
// appends followed by a single Published is covered end to end.
func (b *Buffer) Append(clk nvm.Clock, hsitIdx uint64, value []byte) (devOff uint64, logical uint64, err error) {
	need := recSize(len(value))
	if need > b.size {
		return 0, 0, fmt.Errorf("pwb: value of %d bytes exceeds buffer capacity %d", len(value), b.size)
	}
	head := b.head.Load()
	// A record never straddles the ring end; pad the remainder if needed.
	if rem := b.size - head%b.size; rem < need {
		if b.size-(head-b.tail.Load()) < rem+need {
			return 0, 0, ErrFull
		}
		b.writePad(clk, head, rem)
		head += rem
	} else if b.size-(head-b.tail.Load()) < need {
		return 0, 0, ErrFull
	}

	off := b.pos(head)
	var hdr [headerSize]byte
	binary.LittleEndian.PutUint64(hdr[0:], hsitIdx)
	binary.LittleEndian.PutUint32(hdr[8:], uint32(len(value)))
	binary.LittleEndian.PutUint32(hdr[12:], magic)
	b.dev.Store(clk, off, hdr[:])
	b.dev.Store(clk, off+headerSize, value)
	b.dev.Persist(clk, off, headerSize+len(value))

	// Publish-pending mark BEFORE the head advance: a reclaimer that
	// observes the new head is guaranteed to also observe the mark (or
	// the completed publish that clears it). The mark is a floor, not a
	// single-record cursor: when the owner appends several records before
	// calling Published (a PutBatch), the first unpublished record keeps
	// the floor, so the reclaimer's scan cap excludes the whole window.
	if b.unpublished.Load() == noPending {
		b.unpublished.Store(head)
	}
	b.head.Store(head + need)
	b.bytesAppended.Add(int64(len(value)))
	return uint64(off), head, nil
}

// Published clears the publish-pending mark set by Append. Only the
// owning thread may call it, after the forward pointers of every record
// appended since the previous Published call are installed (the
// reclaimer observing the cleared mark is thereby guaranteed to observe
// the published pointers too).
func (b *Buffer) Published() {
	b.unpublished.Store(noPending)
}

// UnpublishedFloor returns the logical cursor of the owner's append
// whose HSIT publish is still pending, or ^uint64(0) when there is none.
// The reclaimer caps its scan at min(Head, UnpublishedFloor): reading
// Head first and the floor second guarantees every append below the cap
// has a visible forward pointer.
func (b *Buffer) UnpublishedFloor() uint64 { return b.unpublished.Load() }

func (b *Buffer) writePad(clk nvm.Clock, head, n uint64) {
	off := b.pos(head)
	var hdr [headerSize]byte
	binary.LittleEndian.PutUint64(hdr[0:], ^uint64(0))
	binary.LittleEndian.PutUint32(hdr[8:], uint32(n-headerSize))
	binary.LittleEndian.PutUint32(hdr[12:], padMagic)
	b.dev.Store(clk, off, hdr[:])
	b.dev.Persist(clk, off, headerSize)
	b.head.Store(head + n)
}

// ReadValue reads the value payload of the record at devOff (from an HSIT
// forward pointer) into a new slice. valueLen comes from the pointer.
//
// Contract: the caller must hold an epoch guard (epoch.Participant.Enter)
// across the pointer load and this read — released ring space is recycled
// only after two-epoch grace, so the guard keeps the bytes from being
// re-appended mid-read. Because the pointer may still be superseded
// concurrently, the caller must re-validate the HSIT pointer after the
// read and retry on mismatch; ReadValue itself does not parse or verify
// the record header. A nil clk performs the read without charging device
// time (offline checkers and tests).
func (b *Buffer) ReadValue(clk nvm.Clock, devOff uint64, valueLen int) []byte {
	buf := make([]byte, valueLen)
	b.dev.Load(clk, int(devOff)+headerSize, buf)
	return buf
}

// ReadHeader parses the record header at devOff, returning its backward
// pointer and value length. ok is false when the bytes do not form a
// value record (coupling validation during recovery, §5.5).
func (b *Buffer) ReadHeader(clk nvm.Clock, devOff uint64) (hsitIdx uint64, valueLen int, ok bool) {
	var hdr [headerSize]byte
	b.dev.Load(clk, int(devOff), hdr[:])
	if binary.LittleEndian.Uint32(hdr[12:]) != magic {
		return 0, 0, false
	}
	return binary.LittleEndian.Uint64(hdr[0:]), int(binary.LittleEndian.Uint32(hdr[8:])), true
}

// Record is one entry yielded by Scan.
type Record struct {
	HSITIdx uint64
	DevOff  uint64 // device offset of the record (HSIT pointer value)
	Logical uint64 // logical cursor of the record
	Value   []byte
}

// ErrCorruptRecord is returned by Scan when a header fails to parse; it
// wraps the logical cursor and bad magic. A torn or recycled header must
// surface as an error the caller can abort on, not a process abort.
var ErrCorruptRecord = errors.New("pwb: corrupt record")

// Scan parses records in logical range [from, to), calling fn for each
// value record (padding is skipped). It is used by the background
// reclaimer (§5.2) to collect candidate values; the caller decides
// liveness via HSIT well-coupledness.
//
// Contract: [from, to) must be a range whose bytes are stable for the
// duration of the call — from at or above the ring tail (which only the
// single scan owner may advance, via ApplyGrants between passes) and to
// at or below min(Head, UnpublishedFloor). A nil clk performs the reads
// without charging device time; the reclaimer charges the whole range as
// one bulk sequential read instead. If a header fails to parse, Scan
// stops and returns an error wrapping ErrCorruptRecord — the caller
// should abort the pass without releasing any space, so the torn range
// is simply re-scanned later.
func (b *Buffer) Scan(clk nvm.Clock, from, to uint64, fn func(r Record) bool) error {
	cur := from
	var hdr [headerSize]byte
	for cur < to {
		off := b.pos(cur)
		b.dev.Load(clk, off, hdr[:])
		backptr := binary.LittleEndian.Uint64(hdr[0:])
		vlen := binary.LittleEndian.Uint32(hdr[8:])
		mg := binary.LittleEndian.Uint32(hdr[12:])
		switch mg {
		case padMagic:
			cur += uint64(vlen) + headerSize
			continue
		case magic:
			val := make([]byte, vlen)
			b.dev.Load(clk, off+headerSize, val)
			if !fn(Record{HSITIdx: backptr, DevOff: uint64(off), Logical: cur, Value: val}) {
				return nil
			}
			cur += recSize(int(vlen))
		default:
			return fmt.Errorf("%w at logical %d (magic %#x)", ErrCorruptRecord, cur, mg)
		}
	}
	return nil
}

// ReleaseTo advances the tail to newTail, recycling everything before it.
// Quiescent callers (recovery, tests) may call it directly; during normal
// operation space is released only through Grant + ApplyGrants so the
// tail never moves while a scan pass is in flight.
func (b *Buffer) ReleaseTo(newTail uint64) {
	for {
		t := b.tail.Load()
		if newTail <= t {
			return
		}
		if b.tail.CompareAndSwap(t, newTail) {
			return
		}
	}
}

// Grant records that the ring space below newTail has passed epoch grace
// and may be recycled. It does NOT move the tail: the grant takes effect
// only when the single scan owner calls ApplyGrants between passes. Safe
// to call from any goroutine (epoch-retire callbacks run wherever
// Collect happens to be called).
func (b *Buffer) Grant(newTail uint64) {
	for {
		g := b.releasable.Load()
		if newTail <= g {
			return
		}
		if b.releasable.CompareAndSwap(g, newTail) {
			return
		}
	}
}

// ApplyGrants folds all pending grants into the tail, making the space
// appendable. Only the single scan owner (the buffer's reclaimer) may
// call it, and only between scan passes: freezing the tail for the whole
// duration of a pass is what keeps the scanned bytes stable and the
// physical DevOff coupling check free of ring-wrap aliasing.
func (b *Buffer) ApplyGrants() {
	if g := b.releasable.Load(); g > b.tail.Load() {
		b.ReleaseTo(g)
	}
}

// BytesAppended returns cumulative user payload bytes (write-traffic
// accounting for the WAF experiments). The counter intentionally
// survives Reset: recovery re-initializes the ring cursors, but the
// device write traffic already issued does not un-happen, so WAF
// accounting keeps accumulating across crash/recover cycles.
func (b *Buffer) BytesAppended() int64 { return b.bytesAppended.Load() }

// Reset empties the ring. Recovery drains every live PWB value into
// Value Storage and then resets the cursors, because the volatile
// head/tail are unknown after a crash (§5.5). Pending grants and the
// publish-pending mark are volatile state of the old incarnation and are
// discarded; bytesAppended survives (see BytesAppended). Quiescent
// callers only.
func (b *Buffer) Reset() {
	b.head.Store(0)
	b.tail.Store(0)
	b.releasable.Store(0)
	b.unpublished.Store(noPending)
}
