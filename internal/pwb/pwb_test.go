package pwb

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/nvm"
	"repro/internal/sim"
)

func newBuf(size int) (*Buffer, *nvm.Device) {
	dev := nvm.New(nvm.Config{Size: size + 4096})
	return NewBuffer(dev, 0, size), dev
}

func TestAppendAndReadValue(t *testing.T) {
	b, _ := newBuf(1024)
	val := []byte("the value payload")
	off, _, err := b.Append(nil, 42, val)
	if err != nil {
		t.Fatal(err)
	}
	got := b.ReadValue(nil, off, len(val))
	if !bytes.Equal(got, val) {
		t.Fatalf("ReadValue = %q, want %q", got, val)
	}
	if b.BytesAppended() != int64(len(val)) {
		t.Fatalf("BytesAppended = %d", b.BytesAppended())
	}
}

func TestAppendIsDurableBeforeReturn(t *testing.T) {
	b, dev := newBuf(1024)
	val := []byte("must survive crash")
	off, _, err := b.Append(nil, 7, val)
	if err != nil {
		t.Fatal(err)
	}
	dev.Crash()
	got := make([]byte, len(val))
	dev.Load(nil, int(off)+headerSize, got)
	if !bytes.Equal(got, val) {
		t.Fatalf("value lost on crash: %q", got)
	}
}

func TestAppendOnlyOldVersionsSurvive(t *testing.T) {
	b, _ := newBuf(4096)
	off1, _, _ := b.Append(nil, 1, []byte("version-1"))
	off2, _, _ := b.Append(nil, 1, []byte("version-2"))
	if off1 == off2 {
		t.Fatal("append-only buffer reused an offset")
	}
	if got := b.ReadValue(nil, off1, 9); string(got) != "version-1" {
		t.Fatalf("old version overwritten: %q", got)
	}
	if got := b.ReadValue(nil, off2, 9); string(got) != "version-2" {
		t.Fatalf("new version wrong: %q", got)
	}
}

func TestFullAndRelease(t *testing.T) {
	b, _ := newBuf(256)
	var lastLogical uint64
	n := 0
	for {
		_, logical, err := b.Append(nil, uint64(n), []byte("0123456789012345")) // 32B records
		if err == ErrFull {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		lastLogical = logical
		n++
	}
	if n != 256/32 {
		t.Fatalf("fit %d records, want 8", n)
	}
	if b.Utilization() != 1.0 {
		t.Fatalf("utilization = %v", b.Utilization())
	}
	// Release the first half and append again.
	b.ReleaseTo(128)
	if b.Used() != 128 {
		t.Fatalf("Used = %d after release", b.Used())
	}
	if _, _, err := b.Append(nil, 99, make([]byte, 120)); err != ErrFull {
		t.Fatal("append beyond free space did not report full")
	}
	for i := 0; i < 4; i++ {
		if _, _, err := b.Append(nil, 100+uint64(i), []byte("0123456789012345")); err != nil {
			t.Fatalf("append after release: %v", err)
		}
	}
	_ = lastLogical
}

func TestWraparoundPadding(t *testing.T) {
	b, _ := newBuf(256)
	// 3 x 80-byte records (96B on NVM each): third leaves 64B at the end.
	for i := 0; i < 2; i++ {
		if _, _, err := b.Append(nil, uint64(i), make([]byte, 80)); err != nil {
			t.Fatal(err)
		}
	}
	b.ReleaseTo(96) // free the first record
	// 64B remain at ring end; an 80-byte record (96B) must pad and wrap.
	off, _, err := b.Append(nil, 2, make([]byte, 80))
	if err != nil {
		t.Fatal(err)
	}
	if off != 0 { // wrapped to the region base
		t.Fatalf("wrapped record at %d, want 0", off)
	}
	// Scan must skip the pad and see all three records.
	var seen []uint64
	b.Scan(nil, b.Tail(), b.Head(), func(r Record) bool {
		seen = append(seen, r.HSITIdx)
		return true
	})
	if len(seen) != 2 || seen[0] != 1 || seen[1] != 2 {
		t.Fatalf("scan after wrap = %v", seen)
	}
}

func TestScanYieldsValuesAndOffsets(t *testing.T) {
	b, _ := newBuf(2048)
	want := map[uint64]string{}
	for i := 0; i < 10; i++ {
		v := fmt.Sprintf("value-%02d", i)
		b.Append(nil, uint64(i), []byte(v))
		want[uint64(i)] = v
	}
	n := 0
	b.Scan(nil, b.Tail(), b.Head(), func(r Record) bool {
		if want[r.HSITIdx] != string(r.Value) {
			t.Fatalf("record %d = %q", r.HSITIdx, r.Value)
		}
		// DevOff must read back the same value.
		if got := b.ReadValue(nil, r.DevOff, len(r.Value)); !bytes.Equal(got, r.Value) {
			t.Fatalf("DevOff mismatch for %d", r.HSITIdx)
		}
		n++
		return true
	})
	if n != 10 {
		t.Fatalf("scanned %d records", n)
	}
}

func TestScanEarlyStop(t *testing.T) {
	b, _ := newBuf(2048)
	for i := 0; i < 10; i++ {
		b.Append(nil, uint64(i), []byte("x"))
	}
	n := 0
	b.Scan(nil, b.Tail(), b.Head(), func(r Record) bool {
		n++
		return n < 3
	})
	if n != 3 {
		t.Fatalf("early stop scanned %d", n)
	}
}

func TestOversizedValueRejected(t *testing.T) {
	b, _ := newBuf(256)
	if _, _, err := b.Append(nil, 1, make([]byte, 300)); err == nil || err == ErrFull {
		t.Fatalf("oversized append: err = %v", err)
	}
}

func TestReleaseToNeverRegresses(t *testing.T) {
	b, _ := newBuf(256)
	b.Append(nil, 1, make([]byte, 16))
	b.ReleaseTo(32)
	b.ReleaseTo(16) // stale release must not move tail backwards
	if b.Tail() != 32 {
		t.Fatalf("tail = %d", b.Tail())
	}
}

func TestCostCharging(t *testing.T) {
	b, _ := newBuf(1024)
	clk := sim.NewClock(0)
	b.Append(clk, 1, make([]byte, 128))
	if clk.Now() == 0 {
		t.Fatal("append charged no virtual time")
	}
}

func TestManyLapsConsistency(t *testing.T) {
	b, _ := newBuf(512)
	logicalOf := map[int]uint64{}
	offOf := map[int]uint64{}
	val := func(i int) []byte { return []byte(fmt.Sprintf("payload-%06d", i)) } // 28B -> 48B rec
	next := 0
	for lap := 0; lap < 20; lap++ {
		for {
			off, logical, err := b.Append(nil, uint64(next), val(next))
			if err == ErrFull {
				break
			}
			logicalOf[next] = logical
			offOf[next] = off
			next++
		}
		// Verify the resident window then release half of it.
		b.Scan(nil, b.Tail(), b.Head(), func(r Record) bool {
			if !bytes.Equal(r.Value, val(int(r.HSITIdx))) {
				t.Fatalf("lap %d: record %d corrupted: %q", lap, r.HSITIdx, r.Value)
			}
			return true
		})
		b.ReleaseTo(b.Tail() + uint64(b.Used()/2/16*16))
	}
	if next < 100 {
		t.Fatalf("only %d appends across 20 laps", next)
	}
}
