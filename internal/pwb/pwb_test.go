package pwb

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"repro/internal/nvm"
	"repro/internal/sim"
)

func newBuf(size int) (*Buffer, *nvm.Device) {
	dev := nvm.New(nvm.Config{Size: size + 4096})
	return NewBuffer(dev, 0, size), dev
}

func TestAppendAndReadValue(t *testing.T) {
	b, _ := newBuf(1024)
	val := []byte("the value payload")
	off, _, err := b.Append(nil, 42, val)
	if err != nil {
		t.Fatal(err)
	}
	got := b.ReadValue(nil, off, len(val))
	if !bytes.Equal(got, val) {
		t.Fatalf("ReadValue = %q, want %q", got, val)
	}
	if b.BytesAppended() != int64(len(val)) {
		t.Fatalf("BytesAppended = %d", b.BytesAppended())
	}
}

func TestAppendIsDurableBeforeReturn(t *testing.T) {
	b, dev := newBuf(1024)
	val := []byte("must survive crash")
	off, _, err := b.Append(nil, 7, val)
	if err != nil {
		t.Fatal(err)
	}
	dev.Crash()
	got := make([]byte, len(val))
	dev.Load(nil, int(off)+headerSize, got)
	if !bytes.Equal(got, val) {
		t.Fatalf("value lost on crash: %q", got)
	}
}

func TestAppendOnlyOldVersionsSurvive(t *testing.T) {
	b, _ := newBuf(4096)
	off1, _, _ := b.Append(nil, 1, []byte("version-1"))
	off2, _, _ := b.Append(nil, 1, []byte("version-2"))
	if off1 == off2 {
		t.Fatal("append-only buffer reused an offset")
	}
	if got := b.ReadValue(nil, off1, 9); string(got) != "version-1" {
		t.Fatalf("old version overwritten: %q", got)
	}
	if got := b.ReadValue(nil, off2, 9); string(got) != "version-2" {
		t.Fatalf("new version wrong: %q", got)
	}
}

func TestFullAndRelease(t *testing.T) {
	b, _ := newBuf(256)
	var lastLogical uint64
	n := 0
	for {
		_, logical, err := b.Append(nil, uint64(n), []byte("0123456789012345")) // 32B records
		if err == ErrFull {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		lastLogical = logical
		n++
	}
	if n != 256/32 {
		t.Fatalf("fit %d records, want 8", n)
	}
	if b.Utilization() != 1.0 {
		t.Fatalf("utilization = %v", b.Utilization())
	}
	// Release the first half and append again.
	b.ReleaseTo(128)
	if b.Used() != 128 {
		t.Fatalf("Used = %d after release", b.Used())
	}
	if _, _, err := b.Append(nil, 99, make([]byte, 120)); err != ErrFull {
		t.Fatal("append beyond free space did not report full")
	}
	for i := 0; i < 4; i++ {
		if _, _, err := b.Append(nil, 100+uint64(i), []byte("0123456789012345")); err != nil {
			t.Fatalf("append after release: %v", err)
		}
	}
	_ = lastLogical
}

func TestWraparoundPadding(t *testing.T) {
	b, _ := newBuf(256)
	// 3 x 80-byte records (96B on NVM each): third leaves 64B at the end.
	for i := 0; i < 2; i++ {
		if _, _, err := b.Append(nil, uint64(i), make([]byte, 80)); err != nil {
			t.Fatal(err)
		}
	}
	b.ReleaseTo(96) // free the first record
	// 64B remain at ring end; an 80-byte record (96B) must pad and wrap.
	off, _, err := b.Append(nil, 2, make([]byte, 80))
	if err != nil {
		t.Fatal(err)
	}
	if off != 0 { // wrapped to the region base
		t.Fatalf("wrapped record at %d, want 0", off)
	}
	// Scan must skip the pad and see all three records.
	var seen []uint64
	if err := b.Scan(nil, b.Tail(), b.Head(), func(r Record) bool {
		seen = append(seen, r.HSITIdx)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(seen) != 2 || seen[0] != 1 || seen[1] != 2 {
		t.Fatalf("scan after wrap = %v", seen)
	}
}

func TestScanYieldsValuesAndOffsets(t *testing.T) {
	b, _ := newBuf(2048)
	want := map[uint64]string{}
	for i := 0; i < 10; i++ {
		v := fmt.Sprintf("value-%02d", i)
		b.Append(nil, uint64(i), []byte(v))
		want[uint64(i)] = v
	}
	n := 0
	if err := b.Scan(nil, b.Tail(), b.Head(), func(r Record) bool {
		if want[r.HSITIdx] != string(r.Value) {
			t.Fatalf("record %d = %q", r.HSITIdx, r.Value)
		}
		// DevOff must read back the same value.
		if got := b.ReadValue(nil, r.DevOff, len(r.Value)); !bytes.Equal(got, r.Value) {
			t.Fatalf("DevOff mismatch for %d", r.HSITIdx)
		}
		n++
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if n != 10 {
		t.Fatalf("scanned %d records", n)
	}
}

func TestScanEarlyStop(t *testing.T) {
	b, _ := newBuf(2048)
	for i := 0; i < 10; i++ {
		b.Append(nil, uint64(i), []byte("x"))
	}
	n := 0
	if err := b.Scan(nil, b.Tail(), b.Head(), func(r Record) bool {
		n++
		return n < 3
	}); err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("early stop scanned %d", n)
	}
}

func TestOversizedValueRejected(t *testing.T) {
	b, _ := newBuf(256)
	if _, _, err := b.Append(nil, 1, make([]byte, 300)); err == nil || err == ErrFull {
		t.Fatalf("oversized append: err = %v", err)
	}
}

func TestReleaseToNeverRegresses(t *testing.T) {
	b, _ := newBuf(256)
	b.Append(nil, 1, make([]byte, 16))
	b.ReleaseTo(32)
	b.ReleaseTo(16) // stale release must not move tail backwards
	if b.Tail() != 32 {
		t.Fatalf("tail = %d", b.Tail())
	}
}

// TestPWBWrapABA pins the ring-wrap aliasing that enabled the seed's
// reclamation race: with a ring sized to wrap within a few appends, the
// physical offset (GlobalOff / Append's devOff) of logical cursor L is
// identical to that of L+size — so any liveness decision keyed on the
// physical offset alone is ABA-prone. The frozen-tail protocol (Grant +
// ApplyGrants) is what makes the reclaimer immune: space granted during
// a pass must not become appendable until the owner applies it.
func TestPWBWrapABA(t *testing.T) {
	b, _ := newBuf(128) // 2 x 64B records per lap
	v := make([]byte, 48)
	off0, logical0, err := b.Append(nil, 0, v)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := b.Append(nil, 1, v); err != nil {
		t.Fatal(err)
	}

	// Grant alone must not free space: the scan owner has not applied it.
	b.Grant(64)
	if _, _, err := b.Append(nil, 2, v); err != ErrFull {
		t.Fatalf("append consumed granted-but-unapplied space: err = %v", err)
	}
	if b.Tail() != 0 {
		t.Fatalf("Grant moved the tail to %d", b.Tail())
	}

	// ApplyGrants (the owner, between passes) releases it; the next
	// append physically aliases record 0 one lap later.
	b.ApplyGrants()
	if b.Tail() != 64 {
		t.Fatalf("tail = %d after ApplyGrants, want 64", b.Tail())
	}
	off2, logical2, err := b.Append(nil, 2, v)
	if err != nil {
		t.Fatal(err)
	}
	if off2 != off0 {
		t.Fatalf("wrapped record at %d, want alias of %d", off2, off0)
	}
	if logical2 == logical0 {
		t.Fatal("logical cursors must stay distinct across laps")
	}
	if b.GlobalOff(logical0) != b.GlobalOff(logical2) {
		t.Fatal("GlobalOff should alias across exactly one lap")
	}

	// Stale grants never regress the tail.
	b.Grant(32)
	b.ApplyGrants()
	if b.Tail() != 64 {
		t.Fatalf("stale grant moved tail to %d", b.Tail())
	}
}

// TestScanCorruptHeaderReturnsError covers the panic→error conversion:
// a header that parses as neither a record nor padding must surface as
// ErrCorruptRecord so the reclaimer can abort its pass, not crash.
func TestScanCorruptHeaderReturnsError(t *testing.T) {
	b, dev := newBuf(256)
	if _, _, err := b.Append(nil, 1, make([]byte, 16)); err != nil {
		t.Fatal(err)
	}
	// Smash the magic of the first record.
	dev.Store(nil, 12, []byte{0xde, 0xad, 0xbe, 0xef})
	err := b.Scan(nil, b.Tail(), b.Head(), func(r Record) bool { return true })
	if !errors.Is(err, ErrCorruptRecord) {
		t.Fatalf("Scan on corrupt header = %v, want ErrCorruptRecord", err)
	}
}

// TestUnpublishedFloor covers the append-to-publish window contract: a
// record is excluded from the reclaimable range until the owner calls
// Published.
func TestUnpublishedFloor(t *testing.T) {
	b, _ := newBuf(256)
	if b.UnpublishedFloor() != ^uint64(0) {
		t.Fatalf("fresh buffer floor = %d", b.UnpublishedFloor())
	}
	_, logical, err := b.Append(nil, 1, make([]byte, 16))
	if err != nil {
		t.Fatal(err)
	}
	if b.UnpublishedFloor() != logical {
		t.Fatalf("floor = %d after append, want %d", b.UnpublishedFloor(), logical)
	}
	b.Published()
	if b.UnpublishedFloor() != ^uint64(0) {
		t.Fatalf("floor = %d after publish", b.UnpublishedFloor())
	}
	b.Append(nil, 2, make([]byte, 16))
	b.Reset()
	if b.UnpublishedFloor() != ^uint64(0) || b.Tail() != 0 || b.Head() != 0 {
		t.Fatal("Reset did not clear cursors and publish-pending mark")
	}
	if b.BytesAppended() == 0 {
		t.Fatal("BytesAppended must survive Reset (WAF accounting)")
	}
}

// TestUnpublishedFloorBatch covers the batch publish window: several
// appends before one Published must keep the floor at the FIRST
// unpublished record — if a later append raised it, the reclaimer could
// release earlier records of the window while their HSIT publishes are
// still in flight (the PR 3 race, reintroduced batch-style).
func TestUnpublishedFloorBatch(t *testing.T) {
	b, _ := newBuf(1024)
	_, first, err := b.Append(nil, 1, make([]byte, 16))
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(2); i <= 4; i++ {
		if _, _, err := b.Append(nil, i, make([]byte, 16)); err != nil {
			t.Fatal(err)
		}
		if got := b.UnpublishedFloor(); got != first {
			t.Fatalf("floor moved to %d after append %d, want pinned at %d", got, i, first)
		}
	}
	b.Published()
	if b.UnpublishedFloor() != ^uint64(0) {
		t.Fatalf("floor = %d after batch publish", b.UnpublishedFloor())
	}
	// The next window starts at the next append's cursor, not the old one.
	_, next, err := b.Append(nil, 5, make([]byte, 16))
	if err != nil {
		t.Fatal(err)
	}
	if got := b.UnpublishedFloor(); got != next {
		t.Fatalf("new window floor = %d, want %d", got, next)
	}
	b.Published()
}

func TestCostCharging(t *testing.T) {
	b, _ := newBuf(1024)
	clk := sim.NewClock(0)
	b.Append(clk, 1, make([]byte, 128))
	if clk.Now() == 0 {
		t.Fatal("append charged no virtual time")
	}
}

func TestManyLapsConsistency(t *testing.T) {
	b, _ := newBuf(512)
	logicalOf := map[int]uint64{}
	offOf := map[int]uint64{}
	val := func(i int) []byte { return []byte(fmt.Sprintf("payload-%06d", i)) } // 28B -> 48B rec
	next := 0
	for lap := 0; lap < 20; lap++ {
		for {
			off, logical, err := b.Append(nil, uint64(next), val(next))
			if err == ErrFull {
				break
			}
			logicalOf[next] = logical
			offOf[next] = off
			next++
		}
		// Verify the resident window then release half of it.
		if err := b.Scan(nil, b.Tail(), b.Head(), func(r Record) bool {
			if !bytes.Equal(r.Value, val(int(r.HSITIdx))) {
				t.Fatalf("lap %d: record %d corrupted: %q", lap, r.HSITIdx, r.Value)
			}
			return true
		}); err != nil {
			t.Fatal(err)
		}
		b.ReleaseTo(b.Tail() + uint64(b.Used()/2/16*16))
	}
	if next < 100 {
		t.Fatalf("only %d appends across 20 laps", next)
	}
}
