package server_test

import (
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/server"
	"repro/internal/server/respclient"
	"repro/internal/shard"
)

// TestDispatchContentionStress is the race gate for contention-free
// dispatch: every connection is pinned to the SAME store thread
// (NumThreads: 1), so async single-key submissions from the fast-path
// connections run concurrently with the locked synchronous surface
// (MSET/MGET/SCAN/MULTI-EXEC) exercised by the slow-path connections —
// the exact interleaving the per-handle mutex used to forbid. Every
// reply is verified, so cross-connection corruption (not just races)
// fails the test.
func TestDispatchContentionStress(t *testing.T) {
	store, err := shard.Open(core.Options{NumThreads: 1})
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(store, server.Config{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	defer func() {
		if err := srv.Shutdown(10 * time.Second); err != nil {
			t.Errorf("shutdown: %v", err)
		}
		if err := <-serveErr; err != nil {
			t.Errorf("serve: %v", err)
		}
		store.Close()
	}()
	addr := ln.Addr().String()

	const (
		asyncConns  = 6
		lockedConns = 2
		rounds      = 40
	)
	var wg sync.WaitGroup
	errs := make(chan error, asyncConns+lockedConns)

	// Fast-path connections: pipelined single-key bursts, never touching
	// the slot mutex.
	for ci := 0; ci < asyncConns; ci++ {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			c, err := respclient.Dial(addr)
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			for r := 0; r < rounds; r++ {
				k := fmt.Sprintf("a%d-%d", ci, r)
				v := fmt.Sprintf("v%d-%d", ci, r)
				c.Send("SET", k, v)
				c.Send("GET", k)
				c.Send("EXISTS", k)
				c.Send("DEL", k)
				c.Send("EXISTS", k)
				if err := c.Flush(); err != nil {
					errs <- err
					return
				}
				want := []func(respclient.Reply) bool{
					func(r respclient.Reply) bool { return r.Str == "OK" },
					func(r respclient.Reply) bool { return r.Str == v },
					func(r respclient.Reply) bool { return r.Int == 1 },
					func(r respclient.Reply) bool { return r.Int == 1 },
					func(r respclient.Reply) bool { return r.Int == 0 },
				}
				for i, ok := range want {
					rep, err := c.Receive()
					if err != nil {
						errs <- fmt.Errorf("async conn %d round %d reply %d: %w", ci, r, i, err)
						return
					}
					if rerr := rep.Err(); rerr != nil || !ok(rep) {
						errs <- fmt.Errorf("async conn %d round %d reply %d: %+v (%v)", ci, r, i, rep, rerr)
						return
					}
				}
			}
		}(ci)
	}

	// Slow-path connections: multi-key and transactional verbs holding
	// the slot mutex while the async connections keep submitting.
	for ci := 0; ci < lockedConns; ci++ {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			c, err := respclient.Dial(addr)
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			for r := 0; r < rounds; r++ {
				k1 := fmt.Sprintf("m%d-%d-1", ci, r)
				k2 := fmt.Sprintf("m%d-%d-2", ci, r)
				if rep, err := c.Do("MSET", k1, "x", k2, "y"); err != nil || rep.Str != "OK" {
					errs <- fmt.Errorf("locked conn %d round %d MSET: %+v (%v)", ci, r, rep, err)
					return
				}
				rep, err := c.Do("MGET", k1, k2, "missing")
				if err != nil || len(rep.Elems) != 3 ||
					rep.Elems[0].Str != "x" || rep.Elems[1].Str != "y" || !rep.Elems[2].Nil {
					errs <- fmt.Errorf("locked conn %d round %d MGET: %+v (%v)", ci, r, rep, err)
					return
				}
				if _, err := c.Do("MULTI"); err != nil {
					errs <- err
					return
				}
				tk := fmt.Sprintf("t%d-%d", ci, r)
				if _, err := c.Do("SET", tk, "tx"); err != nil {
					errs <- err
					return
				}
				if _, err := c.Do("GET", tk); err != nil {
					errs <- err
					return
				}
				rep, err = c.Do("EXEC")
				if err != nil || len(rep.Elems) != 2 ||
					rep.Elems[0].Str != "OK" || rep.Elems[1].Str != "tx" {
					errs <- fmt.Errorf("locked conn %d round %d EXEC: %+v (%v)", ci, r, rep, err)
					return
				}
				if rep, err := c.Do("SCAN", k1, "2"); err != nil || len(rep.Elems) < 2 {
					errs <- fmt.Errorf("locked conn %d round %d SCAN: %+v (%v)", ci, r, rep, err)
					return
				}
			}
		}(ci)
	}

	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// Async connections deleted their keys; locked connections left 3 per
	// round (2 MSET + 1 transactional).
	c, err := respclient.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if rep, err := c.Do("DBSIZE"); err != nil || rep.Int != lockedConns*rounds*3 {
		t.Fatalf("DBSIZE = %+v (%v), want %d", rep, err, lockedConns*rounds*3)
	}
	// The contention the test is about must actually have happened.
	snap := store.Metrics()
	if m, ok := snap.Get("server.dispatch_wait", nil); !ok || m.Hist == nil || m.Hist.Count == 0 {
		t.Fatalf("server.dispatch_wait missing or empty: %+v ok=%v", m, ok)
	}
}
