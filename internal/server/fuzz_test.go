package server

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

// FuzzParse drives the RESP reader with arbitrary bytes. Invariants: no
// panic, every parsed argument respects the configured bulk bound, and a
// *ProtocolError is terminal for the stream (matching the server, which
// closes the connection after one).
func FuzzParse(f *testing.F) {
	// Valid commands (array and inline framings).
	f.Add([]byte("*3\r\n$3\r\nSET\r\n$1\r\nk\r\n$5\r\nhello\r\n"))
	f.Add([]byte("*2\r\n$3\r\nGET\r\n$1\r\nk\r\n"))
	f.Add([]byte("*1\r\n$4\r\nPING\r\n"))
	f.Add([]byte("PING\r\nGET key\r\n"))
	f.Add([]byte("*2\r\n$4\r\nMGET\r\n$0\r\n\r\n"))
	// Transaction framing: a whole MULTI..EXEC block in one pipeline,
	// a discarded block, and control verbs with no block open.
	f.Add([]byte("*1\r\n$5\r\nMULTI\r\n*3\r\n$3\r\nSET\r\n$1\r\nk\r\n$1\r\nv\r\n*2\r\n$3\r\nGET\r\n$1\r\nk\r\n*1\r\n$4\r\nEXEC\r\n"))
	f.Add([]byte("MULTI\r\nSET a 1\r\nDISCARD\r\nEXEC\r\n"))
	f.Add([]byte("*1\r\n$4\r\nEXEC\r\n*1\r\n$7\r\nDISCARD\r\n*1\r\n$5\r\nMULTI\r\n*1\r\n$5\r\nMULTI\r\n"))
	f.Add([]byte("*1\r\n$5\r\nMULTI\r\n*1\r\n$6\r\nNOSUCH\r\n*1\r\n$4\r\nEXEC\r\n"))
	// Truncated frames.
	f.Add([]byte("*2\r\n$3\r\nGET\r\n"))
	f.Add([]byte("*3\r\n$3\r\nSET\r\n$1\r\nk\r\n$5\r\nhel"))
	f.Add([]byte("*1\r\n$3"))
	f.Add([]byte("*"))
	// Hostile lengths.
	f.Add([]byte("*1\r\n$99999999999999999999\r\n"))
	f.Add([]byte("*1\r\n$1073741824\r\nx\r\n"))
	f.Add([]byte("*-1\r\n"))
	f.Add([]byte("*1\r\n$-1\r\n"))
	f.Add([]byte("$5\r\nhello\r\n"))
	f.Add(bytes.Repeat([]byte("a"), 4096))

	const maxArgs, maxBulk = 64, 1 << 16
	f.Fuzz(func(t *testing.T, data []byte) {
		r := newRespReader(bytes.NewReader(data), maxArgs, maxBulk)
		for i := 0; i < 1024; i++ {
			args, err := r.ReadCommand()
			if err != nil {
				var pe *ProtocolError
				if !errors.As(err, &pe) && !errors.Is(err, io.EOF) {
					t.Fatalf("non-protocol, non-EOF error: %v", err)
				}
				return
			}
			if len(args) > maxArgs {
				t.Fatalf("%d args exceeds limit %d", len(args), maxArgs)
			}
			for _, a := range args {
				if len(a) > maxBulk {
					t.Fatalf("arg of %d bytes exceeds bulk limit %d", len(a), maxBulk)
				}
			}
		}
	})
}
