package server

import (
	"io"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// Command verbs with a dedicated server.commands series; anything else
// lands in {verb=other} so hostile garbage cannot grow the registry.
var knownVerbs = []string{
	"PING", "ECHO", "GET", "SET", "DEL", "EXISTS",
	"MGET", "MSET", "SCAN", "DBSIZE", "INFO", "COMMAND", "QUIT",
	"MULTI", "EXEC", "DISCARD",
}

// verbClasses label server.cmd_latency: latency profiles differ by what
// a command does (point read vs write vs range scan vs transaction), not
// by individual verb, so the histogram is bucketed per class.
var verbClasses = []string{"read", "write", "scan", "tx", "admin"}

// verbClass maps a canonical verb to its cmd_latency class.
func verbClass(verb string) string {
	switch verb {
	case "GET", "MGET", "EXISTS":
		return "read"
	case "SET", "DEL", "MSET":
		return "write"
	case "SCAN":
		return "scan"
	case "MULTI", "EXEC", "DISCARD":
		return "tx"
	}
	return "admin"
}

// serverMetrics holds the server.* instrumentation (see METRICS.md).
// Every handle is nil-safe, so a store opened with DisableMetrics costs
// the server nothing.
type serverMetrics struct {
	connsCur   atomic.Int64 // exported via gauge func
	connsTotal *obs.Counter
	rejected   *obs.Counter
	parseErrs  *obs.Counter
	bytesIn    *obs.Counter
	bytesOut   *obs.Counter
	commands   map[string]*obs.Counter
	otherCmds  *obs.Counter
	multiExec  *obs.Counter
	virtLat    *obs.Histogram
	wallLat    *obs.Histogram

	// cmdLat is the per-class end-to-end command latency (submit or
	// dispatch through reply written); dispatchWait is the wall time
	// dispatch spends blocked on the store — slot-mutex acquisition for
	// locked verbs, completion-handle waits for async bursts.
	cmdLat       map[string]*obs.Histogram
	dispatchWait *obs.Histogram

	pipelineOps    *obs.Counter
	pipelineBursts *obs.Counter
	pipelineDepth  *obs.Histogram
}

// recordCmdLatency feeds server.cmd_latency{class=...} for one command.
func (m *serverMetrics) recordCmdLatency(verb string, d time.Duration) {
	m.cmdLat[verbClass(verb)].Record(d.Nanoseconds())
}

// registerMetrics wires the server.* family into the store's registry.
// Registration panics on duplicates, which is why a Store admits at most
// one Server.
func (s *Server) registerMetrics(r *obs.Registry) {
	m := &s.m
	r.GaugeFunc(obs.Desc{Name: "server.connections", Help: "currently open client connections", Unit: "conns"},
		func() float64 { return float64(m.connsCur.Load()) })
	m.connsTotal = r.Counter(obs.Desc{Name: "server.connections_total", Help: "client connections accepted since start", Unit: "conns"})
	m.rejected = r.Counter(obs.Desc{Name: "server.connections_rejected", Help: "connections refused at the MaxConns limit", Unit: "conns"})
	m.parseErrs = r.Counter(obs.Desc{Name: "server.parse_errors", Help: "malformed RESP frames (each closes its connection)", Unit: "errors"})
	m.bytesIn = r.Counter(obs.Desc{Name: "server.bytes_in", Help: "bytes read from clients", Unit: "bytes"})
	m.bytesOut = r.Counter(obs.Desc{Name: "server.bytes_out", Help: "bytes written to clients", Unit: "bytes"})
	m.commands = make(map[string]*obs.Counter, len(knownVerbs)+1)
	for _, v := range knownVerbs {
		m.commands[v] = r.Counter(obs.Desc{Name: "server.commands", Help: "commands dispatched", Unit: "ops",
			Labels: map[string]string{"verb": v}})
	}
	m.otherCmds = r.Counter(obs.Desc{Name: "server.commands", Help: "commands dispatched", Unit: "ops",
		Labels: map[string]string{"verb": "other"}})
	m.multiExec = r.Counter(obs.Desc{Name: "server.multi_exec", Help: "MULTI/EXEC blocks executed (queued commands batched on the pinned thread)", Unit: "txns"})
	m.virtLat = r.Histogram(obs.Desc{Name: "server.cmd_virtual_ns", Help: "store-command latency in virtual time (engine cost)", Unit: "ns"})
	m.wallLat = r.Histogram(obs.Desc{Name: "server.cmd_wall_ns", Help: "command latency in wall-clock time (host cost)", Unit: "ns"})
	m.cmdLat = make(map[string]*obs.Histogram, len(verbClasses))
	for _, c := range verbClasses {
		m.cmdLat[c] = r.Histogram(obs.Desc{Name: "server.cmd_latency", Help: "end-to-end command latency by verb class (submit/dispatch to reply written), wall ns", Unit: "ns",
			Labels: map[string]string{"class": c}})
	}
	m.dispatchWait = r.Histogram(obs.Desc{Name: "server.dispatch_wait", Help: "wall time dispatch blocked on the store: slot-lock acquisition (locked verbs) or async-burst completion waits", Unit: "ns"})
	m.pipelineOps = r.Counter(obs.Desc{Name: "server.pipeline_ops", Help: "commands submitted through the async pipelined fast path", Unit: "ops"})
	m.pipelineBursts = r.Counter(obs.Desc{Name: "server.pipeline_bursts", Help: "pipelined bursts drained (replies written in protocol order)", Unit: "bursts"})
	m.pipelineDepth = r.Histogram(obs.Desc{Name: "server.pipeline_depth", Help: "pending completions per burst at drain", Unit: "ops"})
}

func (s *Server) countCommand(verb string) {
	if c, ok := s.m.commands[verb]; ok {
		c.Inc()
		return
	}
	s.m.otherCmds.Inc()
}

// countingReader / countingWriter meter the raw socket, beneath the
// protocol buffers, feeding server.bytes_in / server.bytes_out.
type countingReader struct {
	r io.Reader
	n *obs.Counter
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n.Add(int64(n))
	return n, err
}

type countingWriter struct {
	w io.Writer
	n *obs.Counter
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n.Add(int64(n))
	return n, err
}
