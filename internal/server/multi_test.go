package server_test

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"repro/internal/server"
	"repro/internal/server/respclient"
)

func TestMultiExecBasics(t *testing.T) {
	store, addr := start(t, server.Config{})
	c := dial(t, addr)

	// Control-verb errors outside a block.
	if _, err := c.Do("EXEC"); err == nil || !strings.Contains(err.Error(), "EXEC without MULTI") {
		t.Fatalf("EXEC outside MULTI: %v", err)
	}
	if _, err := c.Do("DISCARD"); err == nil || !strings.Contains(err.Error(), "DISCARD without MULTI") {
		t.Fatalf("DISCARD outside MULTI: %v", err)
	}

	// A block: queue, then execute.
	if r, err := c.Do("MULTI"); err != nil || r.Str != "OK" {
		t.Fatalf("MULTI: %+v, %v", r, err)
	}
	if _, err := c.Do("MULTI"); err == nil || !strings.Contains(err.Error(), "can not be nested") {
		t.Fatalf("nested MULTI: %v", err)
	}
	for _, cmd := range [][]string{
		{"SET", "ta", "1"}, {"SET", "tb", "2"}, {"SET", "tc", ""},
		{"GET", "ta"}, {"GET", "missing"}, {"GET", "tc"},
		{"DEL", "tb"}, {"PING"},
	} {
		if r, err := c.Do(cmd...); err != nil || r.Str != "QUEUED" {
			t.Fatalf("queue %v: %+v, %v", cmd, r, err)
		}
	}
	r, err := c.Do("EXEC")
	if err != nil || len(r.Elems) != 8 {
		t.Fatalf("EXEC: %+v, %v", r, err)
	}
	for i := 0; i < 3; i++ {
		if r.Elems[i].Str != "OK" {
			t.Fatalf("EXEC SET reply %d: %+v", i, r.Elems[i])
		}
	}
	if r.Elems[3].Str != "1" {
		t.Fatalf("EXEC GET ta: %+v", r.Elems[3])
	}
	if !r.Elems[4].Nil {
		t.Fatalf("EXEC GET missing not nil: %+v", r.Elems[4])
	}
	// Present-but-empty comes back as an empty bulk, not a nil.
	if r.Elems[5].Nil || r.Elems[5].Str != "" || r.Elems[5].Kind != '$' {
		t.Fatalf("EXEC GET empty value: %+v", r.Elems[5])
	}
	if r.Elems[6].Int != 1 {
		t.Fatalf("EXEC DEL: %+v", r.Elems[6])
	}
	if r.Elems[7].Str != "PONG" {
		t.Fatalf("EXEC PING: %+v", r.Elems[7])
	}

	// The block really applied: tb deleted, ta survives.
	if r, err := c.Do("GET", "tb"); err != nil || !r.Nil {
		t.Fatalf("tb after EXEC: %+v, %v", r, err)
	}
	if r, err := c.Do("GET", "ta"); err != nil || r.Str != "1" {
		t.Fatalf("ta after EXEC: %+v, %v", r, err)
	}

	// DISCARD throws the queue away.
	c.Do("MULTI")
	c.Do("SET", "ta", "overwritten")
	if r, err := c.Do("DISCARD"); err != nil || r.Str != "OK" {
		t.Fatalf("DISCARD: %+v, %v", r, err)
	}
	if r, err := c.Do("GET", "ta"); err != nil || r.Str != "1" {
		t.Fatalf("ta after DISCARD: %+v, %v", r, err)
	}

	// A queue-time error (unknown verb, bad arity) poisons the block.
	c.Do("MULTI")
	if _, err := c.Do("NOSUCH"); err == nil || !strings.Contains(err.Error(), "unknown command") {
		t.Fatalf("unknown in MULTI: %v", err)
	}
	if r, err := c.Do("SET", "tx", "v"); err != nil || r.Str != "QUEUED" {
		t.Fatalf("queue after poison: %+v, %v", r, err)
	}
	if _, err := c.Do("EXEC"); err == nil || !strings.Contains(err.Error(), "EXECABORT") {
		t.Fatalf("EXEC of poisoned block: %v", err)
	}
	if r, err := c.Do("GET", "tx"); err != nil || !r.Nil {
		t.Fatalf("tx applied despite EXECABORT: %+v, %v", r, err)
	}

	// An empty block yields an empty array.
	c.Do("MULTI")
	if r, err := c.Do("EXEC"); err != nil || len(r.Elems) != 0 || r.Nil {
		t.Fatalf("empty EXEC: %+v, %v", r, err)
	}

	snap := store.Metrics()
	if v, ok := snap.Value("server.multi_exec"); !ok || v < 2 {
		t.Fatalf("server.multi_exec = %v ok=%v, want >= 2", v, ok)
	}
	// The SET run inside EXEC went through PutBatch, the GET run through
	// MultiGet.
	if m, ok := snap.Get("core.batch_ops", map[string]string{"op": "put"}); !ok || m.Value < 1 {
		t.Fatalf("core.batch_ops{op=put} = %+v ok=%v", m, ok)
	}
	if m, ok := snap.Get("core.batch_ops", map[string]string{"op": "get"}); !ok || m.Value < 1 {
		t.Fatalf("core.batch_ops{op=get} = %+v ok=%v", m, ok)
	}
}

func TestMultiQueueCap(t *testing.T) {
	_, addr := start(t, server.Config{MaxMultiQueued: 4})
	c := dial(t, addr)
	c.Do("MULTI")
	for i := 0; i < 4; i++ {
		if r, err := c.Do("SET", fmt.Sprintf("k%d", i), "v"); err != nil || r.Str != "QUEUED" {
			t.Fatalf("queue %d: %+v, %v", i, r, err)
		}
	}
	if _, err := c.Do("SET", "k4", "v"); err == nil || !strings.Contains(err.Error(), "queue exceeds") {
		t.Fatalf("over-cap queue: %v", err)
	}
	if _, err := c.Do("EXEC"); err == nil || !strings.Contains(err.Error(), "EXECABORT") {
		t.Fatalf("EXEC after cap: %v", err)
	}
}

// TestMultiExecPipelinedAcrossConnections drives whole MULTI blocks as
// single pipelines from several concurrent connections. Each EXEC's
// SET run must coalesce into one PutBatch and its GET run into one
// MultiGet; every reply and the final store contents are verified.
func TestMultiExecPipelinedAcrossConnections(t *testing.T) {
	store, addr := start(t, server.Config{})

	const (
		conns  = 5
		rounds = 20
		nkeys  = 8
	)
	var wg sync.WaitGroup
	errs := make(chan error, conns)
	for ci := 0; ci < conns; ci++ {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			c, err := respclient.Dial(addr)
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			for round := 0; round < rounds; round++ {
				// One pipeline flush carries the whole block.
				c.Send("MULTI")
				for i := 0; i < nkeys; i++ {
					c.Send("SET", fmt.Sprintf("m%d-k%d", ci, i), fmt.Sprintf("r%d-%d", round, i))
				}
				for i := 0; i < nkeys; i++ {
					c.Send("GET", fmt.Sprintf("m%d-k%d", ci, i))
				}
				c.Send("EXEC")
				if err := c.Flush(); err != nil {
					errs <- err
					return
				}
				if r, err := c.Receive(); err != nil || r.Str != "OK" {
					errs <- fmt.Errorf("conn %d round %d MULTI: %+v, %v", ci, round, r, err)
					return
				}
				for i := 0; i < 2*nkeys; i++ {
					if r, err := c.Receive(); err != nil || r.Str != "QUEUED" {
						errs <- fmt.Errorf("conn %d round %d queue %d: %+v, %v", ci, round, i, r, err)
						return
					}
				}
				r, err := c.Receive()
				if err != nil || len(r.Elems) != 2*nkeys {
					errs <- fmt.Errorf("conn %d round %d EXEC: %+v, %v", ci, round, r, err)
					return
				}
				for i := 0; i < nkeys; i++ {
					if r.Elems[i].Str != "OK" {
						errs <- fmt.Errorf("conn %d round %d SET reply %d: %+v", ci, round, i, r.Elems[i])
						return
					}
					// The GETs read their own block's writes: EXEC runs
					// the whole block under one slot hold.
					want := fmt.Sprintf("r%d-%d", round, i)
					if got := r.Elems[nkeys+i].Str; got != want {
						errs <- fmt.Errorf("conn %d round %d GET %d = %q, want %q", ci, round, i, got, want)
						return
					}
				}
			}
		}(ci)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// Final contents: every connection's last-round values.
	c := dial(t, addr)
	for ci := 0; ci < conns; ci++ {
		for i := 0; i < nkeys; i++ {
			k := fmt.Sprintf("m%d-k%d", ci, i)
			r, err := c.Do("GET", k)
			if err != nil || r.Str != fmt.Sprintf("r%d-%d", rounds-1, i) {
				t.Fatalf("final GET %s: %+v, %v", k, r, err)
			}
		}
	}

	snap := store.Metrics()
	if v, ok := snap.Value("server.multi_exec"); !ok || v < conns*rounds {
		t.Fatalf("server.multi_exec = %v ok=%v, want >= %d", v, ok, conns*rounds)
	}
	// Each EXEC's SET and GET runs coalesced into one batch op apiece.
	if m, ok := snap.Get("core.batch_ops", map[string]string{"op": "put"}); !ok || m.Value < conns*rounds {
		t.Fatalf("core.batch_ops{op=put} = %+v ok=%v, want >= %d", m, ok, conns*rounds)
	}
	if m, ok := snap.Get("core.batch_ops", map[string]string{"op": "get"}); !ok || m.Value < conns*rounds {
		t.Fatalf("core.batch_ops{op=get} = %+v ok=%v, want >= %d", m, ok, conns*rounds)
	}
	if m, ok := snap.Get("core.batch_size", map[string]string{"op": "put"}); !ok || m.Hist == nil || m.Hist.Count == 0 {
		t.Fatalf("core.batch_size{op=put} missing: %+v ok=%v", m, ok)
	}
}

// TestMultiQueueCopiesArgs is the parser-reuse safety gate: commands
// queued inside a MULTI block outlive their parse frame, and the parser
// arena is rewritten by every subsequent command on the connection. If
// the queue retained the parser's args instead of copying them, the
// second queued SET here (same key/value lengths as the first, so it
// overlays the arena byte-for-byte) would corrupt the first, and EXEC
// would write key2's bytes twice.
func TestMultiQueueCopiesArgs(t *testing.T) {
	_, addr := start(t, server.Config{})
	c := dial(t, addr)

	if r, err := c.Do("MULTI"); err != nil || r.Str != "OK" {
		t.Fatalf("MULTI: %+v, %v", r, err)
	}
	if r, err := c.Do("SET", "key1", "AAAA"); err != nil || r.Str != "QUEUED" {
		t.Fatalf("queue SET key1: %+v, %v", r, err)
	}
	if r, err := c.Do("SET", "key2", "BBBB"); err != nil || r.Str != "QUEUED" {
		t.Fatalf("queue SET key2: %+v, %v", r, err)
	}
	// A queued multi-key verb too: MGET's keys must also survive.
	if r, err := c.Do("MGET", "key1", "key2"); err != nil || r.Str != "QUEUED" {
		t.Fatalf("queue MGET: %+v, %v", r, err)
	}
	r, err := c.Do("EXEC")
	if err != nil || len(r.Elems) != 3 {
		t.Fatalf("EXEC: %+v, %v", r, err)
	}
	mget := r.Elems[2]
	if len(mget.Elems) != 2 || mget.Elems[0].Str != "AAAA" || mget.Elems[1].Str != "BBBB" {
		t.Fatalf("EXEC MGET saw corrupted queue: %+v", mget)
	}
	for k, want := range map[string]string{"key1": "AAAA", "key2": "BBBB"} {
		if r, err := c.Do("GET", k); err != nil || r.Str != want {
			t.Fatalf("GET %s = %+v (%v), want %q", k, r, err, want)
		}
	}
}
