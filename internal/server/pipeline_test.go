package server_test

import (
	"fmt"
	"testing"

	"repro/internal/server"
)

// TestPipelinedBurst drives a deep single-connection pipeline through
// the async fast path: replies come back in protocol order, later
// commands in the burst observe earlier writes, and the pipeline
// metrics record the burst.
func TestPipelinedBurst(t *testing.T) {
	store, addr := start(t, server.Config{})
	c := dial(t, addr)

	// One burst: SETs, then GETs of the same keys, then DEL/EXISTS —
	// all flushed at once so the server sees them back-to-back.
	const n = 64
	for i := 0; i < n; i++ {
		if err := c.Send("SET", fmt.Sprintf("pk%03d", i), fmt.Sprintf("pv%03d", i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		if err := c.Send("GET", fmt.Sprintf("pk%03d", i)); err != nil {
			t.Fatal(err)
		}
	}
	c.Send("DEL", "pk000")
	c.Send("EXISTS", "pk000")
	c.Send("EXISTS", "pk001")
	c.Send("GET", "missing")
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}

	for i := 0; i < n; i++ {
		r, err := c.Receive()
		if err != nil || r.Str != "OK" {
			t.Fatalf("SET %d reply: %+v, %v", i, r, err)
		}
	}
	for i := 0; i < n; i++ {
		r, err := c.Receive()
		if err != nil || r.Str != fmt.Sprintf("pv%03d", i) {
			t.Fatalf("GET %d reply: %+v, %v", i, r, err)
		}
	}
	if r, err := c.Receive(); err != nil || r.Int != 1 {
		t.Fatalf("DEL reply: %+v, %v", r, err)
	}
	if r, err := c.Receive(); err != nil || r.Int != 0 {
		t.Fatalf("EXISTS deleted reply: %+v, %v", r, err)
	}
	if r, err := c.Receive(); err != nil || r.Int != 1 {
		t.Fatalf("EXISTS live reply: %+v, %v", r, err)
	}
	if r, err := c.Receive(); err != nil || !r.Nil {
		t.Fatalf("GET missing reply: %+v, %v", r, err)
	}

	// A lone follow-up command (sync path) still observes the burst.
	if r, err := c.Do("GET", "pk042"); err != nil || r.Str != "pv042" {
		t.Fatalf("lone GET after burst: %+v, %v", r, err)
	}

	snap := store.Metrics()
	ops, _ := snap.Value("server.pipeline_ops")
	bursts, _ := snap.Value("server.pipeline_bursts")
	if ops == 0 || bursts == 0 {
		t.Fatalf("pipeline metrics not recorded: ops=%v bursts=%v", ops, bursts)
	}
	if ops < float64(n) {
		t.Fatalf("pipeline_ops = %v, want >= %d", ops, n)
	}
	// The store saw async submissions, i.e. the burst really took the
	// admission-loop path rather than per-command dispatch.
	if v, _ := snap.Value("core.async_ops"); v == 0 {
		t.Fatal("no core async ops recorded for the burst")
	}
}

// TestPipelinedMixedVerbs interleaves async-eligible commands with ones
// that must drain the burst first (MGET, MULTI/EXEC): ordering and
// visibility hold across the boundary.
func TestPipelinedMixedVerbs(t *testing.T) {
	_, addr := start(t, server.Config{})
	c := dial(t, addr)

	c.Send("SET", "a", "1")
	c.Send("SET", "b", "2")
	c.Send("MGET", "a", "b") // forces a drain before it runs
	c.Send("SET", "a", "3")
	c.Send("GET", "a")
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if r, err := c.Receive(); err != nil || r.Str != "OK" {
			t.Fatalf("SET %d: %+v, %v", i, r, err)
		}
	}
	r, err := c.Receive()
	if err != nil || len(r.Elems) != 2 || r.Elems[0].Str != "1" || r.Elems[1].Str != "2" {
		t.Fatalf("MGET: %+v, %v", r, err)
	}
	if r, err := c.Receive(); err != nil || r.Str != "OK" {
		t.Fatalf("SET after MGET: %+v, %v", r, err)
	}
	if r, err := c.Receive(); err != nil || r.Str != "3" {
		t.Fatalf("GET after rewrite: %+v, %v", r, err)
	}

	// MULTI blocks bypass the async path entirely.
	c.Send("MULTI")
	c.Send("SET", "c", "4")
	c.Send("GET", "c")
	c.Send("EXEC")
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	if r, err := c.Receive(); err != nil || r.Str != "OK" {
		t.Fatalf("MULTI: %+v, %v", r, err)
	}
	for i := 0; i < 2; i++ {
		if r, err := c.Receive(); err != nil || r.Str != "QUEUED" {
			t.Fatalf("QUEUED %d: %+v, %v", i, r, err)
		}
	}
	if r, err := c.Receive(); err != nil || len(r.Elems) != 2 {
		t.Fatalf("EXEC: %+v, %v", r, err)
	}
}
