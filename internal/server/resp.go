// RESP2 wire protocol: command parsing and reply encoding.
//
// The reader accepts both framings real clients use: RESP arrays of bulk
// strings ("*2\r\n$3\r\nGET\r\n$1\r\nk\r\n") and inline commands
// ("GET k\r\n"), interleaved freely on one connection. Replies are the
// five RESP2 types: simple string, error, integer, bulk string, array.
//
// Parsing is zero-allocation at steady state: every command's argument
// bytes land in a per-connection arena that ReadCommand reuses frame
// after frame, and the returned argument vector is itself a reused
// slice. The contract is therefore strict: **args are valid only until
// the next ReadCommand call** — a handler that retains an argument past
// that point (the MULTI queue is the only one in this server) must copy
// it. TestReadCommandZeroAllocs is the gate; TestParserArenaReuse is the
// aliasing regression test.
//
// Malformed input is reported as a *ProtocolError; the connection layer
// replies with "-ERR protocol error: ..." and closes, matching Redis.
// All frame dimensions are bounded (element count, bulk length, inline
// line length) so a hostile peer cannot make the server allocate
// unbounded memory from a tiny frame header.
package server

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"io"
	"math"
	"strconv"
	"sync"
)

// Parse limits. Conservative versions of Redis's own defaults, sized so
// a single frame can never demand more memory than a legitimate value.
const (
	// DefaultMaxArgs bounds elements per command array.
	DefaultMaxArgs = 1024
	// DefaultMaxBulk bounds one bulk-string payload (keys and values).
	DefaultMaxBulk = 8 << 20
	// maxInlineLen bounds one inline command line.
	maxInlineLen = 64 << 10
	// arenaRetainBytes is the largest argument arena a connection keeps
	// across commands (and the largest one the reader pool retains): a
	// single multi-megabyte SET grows the arena for that frame only, then
	// the arena is released back to the allocator so idle connections do
	// not pin peak-frame memory.
	arenaRetainBytes = 64 << 10
)

// ProtocolError is a malformed-frame error. It is connection-fatal: the
// stream position after a bad frame is unknowable, so the server replies
// once and closes.
type ProtocolError struct{ msg string }

func (e *ProtocolError) Error() string { return "protocol error: " + e.msg }

func protoErrf(format string, args ...any) error {
	return &ProtocolError{msg: fmt.Sprintf(format, args...)}
}

// respReader decodes a stream of client commands.
//
// The arena layout: readBulk appends each payload (plus its CRLF, which
// keeps reads contiguous) to arena and records the payload length in
// lens; once the whole frame is read, sliceArgs carves the argument
// vector out of the final arena backing array. Recording lengths instead
// of slices matters because the arena may reallocate while a frame is
// still being read — earlier payloads move, and only the end-of-frame
// slicing sees their final addresses.
type respReader struct {
	br      *bufio.Reader
	maxArgs int
	maxBulk int

	args  [][]byte // reused argument vector returned by ReadCommand
	arena []byte   // reused payload arena the args point into
	lens  []int    // per-argument payload lengths of the current frame
}

// readerPool recycles respReaders (and their bufio buffers + arenas)
// across connections, so churning short-lived connections reuses parser
// memory instead of growing the heap.
var readerPool = sync.Pool{New: func() any { return &respReader{br: bufio.NewReader(nil)} }}

func newRespReader(r io.Reader, maxArgs, maxBulk int) *respReader {
	if maxArgs <= 0 {
		maxArgs = DefaultMaxArgs
	}
	if maxBulk <= 0 {
		maxBulk = DefaultMaxBulk
	}
	rr := readerPool.Get().(*respReader)
	rr.br.Reset(r)
	rr.maxArgs = maxArgs
	rr.maxBulk = maxBulk
	return rr
}

// release returns the reader to the pool. The caller must not use the
// reader (or any args it returned) afterwards.
func (r *respReader) release() {
	r.br.Reset(nil)
	clear(r.args)
	r.args = r.args[:0]
	r.lens = r.lens[:0]
	if cap(r.arena) > arenaRetainBytes {
		r.arena = nil
	} else {
		r.arena = r.arena[:0]
	}
	readerPool.Put(r)
}

// buffered reports whether more client bytes are already in memory — the
// pipelining signal: the connection loop defers its reply flush while
// another command is already waiting.
func (r *respReader) buffered() bool { return r.br.Buffered() > 0 }

// readLine reads up to CRLF (tolerating bare LF for inline telnet use)
// and returns the line without its terminator. The line aliases the
// bufio buffer and is valid only until the next read.
func (r *respReader) readLine() ([]byte, error) {
	line, err := r.br.ReadSlice('\n')
	if err == bufio.ErrBufferFull {
		return nil, protoErrf("line exceeds %d bytes", r.br.Size())
	}
	if err != nil {
		return nil, err
	}
	line = line[:len(line)-1]
	line = bytes.TrimSuffix(line, []byte{'\r'})
	if len(line) > maxInlineLen {
		return nil, protoErrf("line exceeds %d bytes", maxInlineLen)
	}
	return line, nil
}

// resetFrame invalidates the previous command's args and reclaims the
// arena. An arena grown past the retain bound by one oversized frame is
// dropped here — the previous frame's args die with it, which is exactly
// the args-valid-until-next-read contract.
func (r *respReader) resetFrame() {
	r.lens = r.lens[:0]
	if cap(r.arena) > arenaRetainBytes {
		r.arena = nil
	} else {
		r.arena = r.arena[:0]
	}
}

// grow extends the arena by n bytes and returns the destination slice.
func (r *respReader) grow(n int) []byte {
	off := len(r.arena)
	if off+n > cap(r.arena) {
		na := make([]byte, off, max(2*cap(r.arena), off+n))
		copy(na, r.arena)
		r.arena = na
	}
	r.arena = r.arena[:off+n]
	return r.arena[off : off+n]
}

// sliceArgs carves the frame's argument vector out of the (final) arena.
// Each payload sits at its recorded length followed by 2 terminator
// bytes (CRLF for bulk strings, padding for inline fields).
func (r *respReader) sliceArgs() [][]byte {
	args := r.args[:0]
	off := 0
	for _, n := range r.lens {
		args = append(args, r.arena[off:off+n:off+n])
		off += n + 2
	}
	r.args = args
	return args
}

// ReadCommand returns the next command as its argument vector. An empty
// vector with a nil error means "no command" (blank inline line or empty
// array); callers skip it and read again.
//
// The returned vector and its argument bytes are owned by the reader and
// are valid only until the next ReadCommand call; retain by copying.
func (r *respReader) ReadCommand() ([][]byte, error) {
	c, err := r.br.ReadByte()
	if err != nil {
		return nil, err
	}
	if c != '*' {
		if err := r.br.UnreadByte(); err != nil {
			return nil, err
		}
		return r.readInline()
	}
	header, err := r.readLine()
	if err != nil {
		return nil, unexpectedEOF(err)
	}
	n, err := parseInt(header)
	if err != nil {
		return nil, protoErrf("invalid multibulk length %q", header)
	}
	if n < 0 || n > int64(r.maxArgs) {
		return nil, protoErrf("multibulk length %d out of range [0, %d]", n, r.maxArgs)
	}
	r.resetFrame()
	for i := int64(0); i < n; i++ {
		if err := r.readBulk(); err != nil {
			return nil, err
		}
	}
	return r.sliceArgs(), nil
}

// readBulk reads one "$<len>\r\n<bytes>\r\n" element into the arena.
func (r *respReader) readBulk() error {
	c, err := r.br.ReadByte()
	if err != nil {
		return unexpectedEOF(err)
	}
	if c != '$' {
		return protoErrf("expected bulk string ('$'), got %q", c)
	}
	header, err := r.readLine()
	if err != nil {
		return unexpectedEOF(err)
	}
	n, err := parseInt(header)
	if err != nil {
		return protoErrf("invalid bulk length %q", header)
	}
	if n < 0 || n > int64(r.maxBulk) {
		return protoErrf("bulk length %d out of range [0, %d]", n, r.maxBulk)
	}
	buf := r.grow(int(n) + 2)
	if _, err := io.ReadFull(r.br, buf); err != nil {
		return unexpectedEOF(err)
	}
	if buf[n] != '\r' || buf[n+1] != '\n' {
		return protoErrf("bulk string missing CRLF terminator")
	}
	r.lens = append(r.lens, int(n))
	return nil
}

// readInline splits a plain text line into arguments, copying the fields
// into the arena so inline and array commands share one lifetime rule.
func (r *respReader) readInline() ([][]byte, error) {
	line, err := r.readLine()
	if err != nil {
		return nil, err
	}
	r.resetFrame()
	for i := 0; i < len(line); {
		for i < len(line) && asciiSpace(line[i]) {
			i++
		}
		if i == len(line) {
			break
		}
		j := i
		for j < len(line) && !asciiSpace(line[j]) {
			j++
		}
		if len(r.lens) >= r.maxArgs {
			return nil, protoErrf("inline command has more than %d arguments", r.maxArgs)
		}
		dst := r.grow(j - i + 2)
		copy(dst, line[i:j])
		r.lens = append(r.lens, j-i)
		i = j
	}
	return r.sliceArgs(), nil
}

func asciiSpace(c byte) bool {
	return c == ' ' || c == '\t' || c == '\v' || c == '\f' || c == '\r' || c == '\n'
}

// parseInt is a zero-allocation strconv.ParseInt(string(b), 10, 64):
// the string conversion it replaces allocated on every bulk-length and
// array-length header, which dominated the parse profile.
func parseInt(b []byte) (int64, error) {
	i := 0
	neg := false
	if len(b) > 0 && (b[0] == '+' || b[0] == '-') {
		neg = b[0] == '-'
		i = 1
	}
	if i == len(b) {
		return 0, errBadInt
	}
	var n int64
	for ; i < len(b); i++ {
		c := b[i]
		if c < '0' || c > '9' {
			return 0, errBadInt
		}
		d := int64(c - '0')
		if n > (math.MaxInt64-d)/10 {
			return 0, errBadInt
		}
		n = n*10 + d
	}
	if neg {
		n = -n
	}
	return n, nil
}

var errBadInt = errors.New("invalid integer")

// unexpectedEOF converts a mid-frame EOF into an explicit truncated-frame
// protocol error; genuine IO errors pass through.
func unexpectedEOF(err error) error {
	if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
		return protoErrf("truncated frame")
	}
	return err
}

// respWriter encodes replies onto a buffered writer. The buffer bound is
// set by the connection (Config.WriteBufBytes); a full buffer writes
// through to the socket, so per-connection reply memory stays bounded no
// matter how deep the client pipelines.
type respWriter struct {
	bw *bufio.Writer
	// num is the integer-encoding scratch: length prefixes and integer
	// replies format into it with strconv.AppendInt, so encoding a reply
	// — even an MGET array with one bulk header per key — allocates
	// nothing (asserted by TestWriterZeroAllocs).
	num [32]byte
}

// writerPool recycles respWriters across connections. Writers with a
// non-default buffer size are pooled too; newRespWriter replaces the
// bufio.Writer when the requested size differs.
var writerPool = sync.Pool{New: func() any { return &respWriter{} }}

func newRespWriter(w io.Writer, bufBytes int) *respWriter {
	rw := writerPool.Get().(*respWriter)
	if rw.bw == nil || rw.bw.Size() != bufBytes {
		rw.bw = bufio.NewWriterSize(w, bufBytes)
	} else {
		rw.bw.Reset(w)
	}
	return rw
}

// release returns the writer to the pool; the caller flushes first.
func (w *respWriter) release() {
	w.bw.Reset(nil)
	writerPool.Put(w)
}

func (w *respWriter) flush() error { return w.bw.Flush() }

func (w *respWriter) writeSimple(s string) error {
	w.bw.WriteByte('+')
	w.bw.WriteString(s)
	_, err := w.bw.WriteString("\r\n")
	return err
}

func (w *respWriter) writeError(msg string) error {
	w.bw.WriteByte('-')
	w.bw.WriteString(msg)
	_, err := w.bw.WriteString("\r\n")
	return err
}

func (w *respWriter) writeInt(n int64) error {
	w.bw.WriteByte(':')
	w.bw.Write(strconv.AppendInt(w.num[:0], n, 10))
	_, err := w.bw.WriteString("\r\n")
	return err
}

func (w *respWriter) writeBulk(b []byte) error {
	w.bw.WriteByte('$')
	w.bw.Write(strconv.AppendInt(w.num[:0], int64(len(b)), 10))
	w.bw.WriteString("\r\n")
	w.bw.Write(b)
	_, err := w.bw.WriteString("\r\n")
	return err
}

func (w *respWriter) writeNil() error {
	_, err := w.bw.WriteString("$-1\r\n")
	return err
}

func (w *respWriter) writeArrayHeader(n int) error {
	w.bw.WriteByte('*')
	w.bw.Write(strconv.AppendInt(w.num[:0], int64(n), 10))
	_, err := w.bw.WriteString("\r\n")
	return err
}
