// RESP2 wire protocol: command parsing and reply encoding.
//
// The reader accepts both framings real clients use: RESP arrays of bulk
// strings ("*2\r\n$3\r\nGET\r\n$1\r\nk\r\n") and inline commands
// ("GET k\r\n"), interleaved freely on one connection. Replies are the
// five RESP2 types: simple string, error, integer, bulk string, array.
//
// Malformed input is reported as a *ProtocolError; the connection layer
// replies with "-ERR protocol error: ..." and closes, matching Redis.
// All frame dimensions are bounded (element count, bulk length, inline
// line length) so a hostile peer cannot make the server allocate
// unbounded memory from a tiny frame header.
package server

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"io"
	"strconv"
)

// Parse limits. Conservative versions of Redis's own defaults, sized so
// a single frame can never demand more memory than a legitimate value.
const (
	// DefaultMaxArgs bounds elements per command array.
	DefaultMaxArgs = 1024
	// DefaultMaxBulk bounds one bulk-string payload (keys and values).
	DefaultMaxBulk = 8 << 20
	// maxInlineLen bounds one inline command line.
	maxInlineLen = 64 << 10
)

// ProtocolError is a malformed-frame error. It is connection-fatal: the
// stream position after a bad frame is unknowable, so the server replies
// once and closes.
type ProtocolError struct{ msg string }

func (e *ProtocolError) Error() string { return "protocol error: " + e.msg }

func protoErrf(format string, args ...any) error {
	return &ProtocolError{msg: fmt.Sprintf(format, args...)}
}

// respReader decodes a stream of client commands.
type respReader struct {
	br      *bufio.Reader
	maxArgs int
	maxBulk int
}

func newRespReader(r io.Reader, maxArgs, maxBulk int) *respReader {
	if maxArgs <= 0 {
		maxArgs = DefaultMaxArgs
	}
	if maxBulk <= 0 {
		maxBulk = DefaultMaxBulk
	}
	return &respReader{br: bufio.NewReader(r), maxArgs: maxArgs, maxBulk: maxBulk}
}

// buffered reports whether more client bytes are already in memory — the
// pipelining signal: the connection loop defers its reply flush while
// another command is already waiting.
func (r *respReader) buffered() bool { return r.br.Buffered() > 0 }

// readLine reads up to CRLF (tolerating bare LF for inline telnet use)
// and returns the line without its terminator.
func (r *respReader) readLine() ([]byte, error) {
	line, err := r.br.ReadSlice('\n')
	if err == bufio.ErrBufferFull {
		return nil, protoErrf("line exceeds %d bytes", r.br.Size())
	}
	if err != nil {
		return nil, err
	}
	line = line[:len(line)-1]
	line = bytes.TrimSuffix(line, []byte{'\r'})
	if len(line) > maxInlineLen {
		return nil, protoErrf("line exceeds %d bytes", maxInlineLen)
	}
	return line, nil
}

// ReadCommand returns the next command as its argument vector. An empty
// vector with a nil error means "no command" (blank inline line or empty
// array); callers skip it and read again.
func (r *respReader) ReadCommand() ([][]byte, error) {
	c, err := r.br.ReadByte()
	if err != nil {
		return nil, err
	}
	if c != '*' {
		if err := r.br.UnreadByte(); err != nil {
			return nil, err
		}
		return r.readInline()
	}
	header, err := r.readLine()
	if err != nil {
		return nil, unexpectedEOF(err)
	}
	n, err := parseInt(header)
	if err != nil {
		return nil, protoErrf("invalid multibulk length %q", header)
	}
	if n < 0 || n > int64(r.maxArgs) {
		return nil, protoErrf("multibulk length %d out of range [0, %d]", n, r.maxArgs)
	}
	args := make([][]byte, 0, n)
	for i := int64(0); i < n; i++ {
		arg, err := r.readBulk()
		if err != nil {
			return nil, err
		}
		args = append(args, arg)
	}
	return args, nil
}

// readBulk reads one "$<len>\r\n<bytes>\r\n" element.
func (r *respReader) readBulk() ([]byte, error) {
	c, err := r.br.ReadByte()
	if err != nil {
		return nil, unexpectedEOF(err)
	}
	if c != '$' {
		return nil, protoErrf("expected bulk string ('$'), got %q", c)
	}
	header, err := r.readLine()
	if err != nil {
		return nil, unexpectedEOF(err)
	}
	n, err := parseInt(header)
	if err != nil {
		return nil, protoErrf("invalid bulk length %q", header)
	}
	if n < 0 || n > int64(r.maxBulk) {
		return nil, protoErrf("bulk length %d out of range [0, %d]", n, r.maxBulk)
	}
	buf := make([]byte, n+2)
	if _, err := io.ReadFull(r.br, buf); err != nil {
		return nil, unexpectedEOF(err)
	}
	if buf[n] != '\r' || buf[n+1] != '\n' {
		return nil, protoErrf("bulk string missing CRLF terminator")
	}
	return buf[:n:n], nil
}

// readInline splits a plain text line into arguments.
func (r *respReader) readInline() ([][]byte, error) {
	line, err := r.readLine()
	if err != nil {
		return nil, err
	}
	fields := bytes.Fields(line)
	if len(fields) > r.maxArgs {
		return nil, protoErrf("inline command has %d arguments (max %d)", len(fields), r.maxArgs)
	}
	args := make([][]byte, len(fields))
	for i, f := range fields {
		args[i] = append([]byte(nil), f...)
	}
	return args, nil
}

// parseInt is strconv.ParseInt without the string conversion allocating
// on parse failure paths.
func parseInt(b []byte) (int64, error) {
	return strconv.ParseInt(string(b), 10, 64)
}

// unexpectedEOF converts a mid-frame EOF into an explicit truncated-frame
// protocol error; genuine IO errors pass through.
func unexpectedEOF(err error) error {
	if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
		return protoErrf("truncated frame")
	}
	return err
}

// respWriter encodes replies onto a buffered writer. The buffer bound is
// set by the connection (Config.WriteBufBytes); a full buffer writes
// through to the socket, so per-connection reply memory stays bounded no
// matter how deep the client pipelines.
type respWriter struct {
	bw *bufio.Writer
	// num is the integer-encoding scratch: length prefixes and integer
	// replies format into it with strconv.AppendInt, so encoding a reply
	// — even an MGET array with one bulk header per key — allocates
	// nothing (asserted by TestWriterZeroAllocs).
	num [32]byte
}

func newRespWriter(w io.Writer, bufBytes int) *respWriter {
	return &respWriter{bw: bufio.NewWriterSize(w, bufBytes)}
}

func (w *respWriter) flush() error { return w.bw.Flush() }

func (w *respWriter) writeSimple(s string) error {
	w.bw.WriteByte('+')
	w.bw.WriteString(s)
	_, err := w.bw.WriteString("\r\n")
	return err
}

func (w *respWriter) writeError(msg string) error {
	w.bw.WriteByte('-')
	w.bw.WriteString(msg)
	_, err := w.bw.WriteString("\r\n")
	return err
}

func (w *respWriter) writeInt(n int64) error {
	w.bw.WriteByte(':')
	w.bw.Write(strconv.AppendInt(w.num[:0], n, 10))
	_, err := w.bw.WriteString("\r\n")
	return err
}

func (w *respWriter) writeBulk(b []byte) error {
	w.bw.WriteByte('$')
	w.bw.Write(strconv.AppendInt(w.num[:0], int64(len(b)), 10))
	w.bw.WriteString("\r\n")
	w.bw.Write(b)
	_, err := w.bw.WriteString("\r\n")
	return err
}

func (w *respWriter) writeNil() error {
	_, err := w.bw.WriteString("$-1\r\n")
	return err
}

func (w *respWriter) writeArrayHeader(n int) error {
	w.bw.WriteByte('*')
	w.bw.Write(strconv.AppendInt(w.num[:0], int64(n), 10))
	_, err := w.bw.WriteString("\r\n")
	return err
}
