package server

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"
)

func readAll(t *testing.T, input string) ([][][]byte, error) {
	t.Helper()
	r := newRespReader(strings.NewReader(input), 0, 0)
	var cmds [][][]byte
	for {
		args, err := r.ReadCommand()
		if errors.Is(err, io.EOF) {
			return cmds, nil
		}
		if err != nil {
			return cmds, err
		}
		if len(args) > 0 {
			// args live in the reader's arena and die at the next
			// ReadCommand, so retaining them here requires a deep copy.
			cp := make([][]byte, len(args))
			for i, a := range args {
				cp[i] = append([]byte(nil), a...)
			}
			cmds = append(cmds, cp)
		}
	}
}

func TestReadCommandArray(t *testing.T) {
	cmds, err := readAll(t, "*3\r\n$3\r\nSET\r\n$1\r\nk\r\n$5\r\nhello\r\n")
	if err != nil {
		t.Fatal(err)
	}
	if len(cmds) != 1 {
		t.Fatalf("got %d commands, want 1", len(cmds))
	}
	want := [][]byte{[]byte("SET"), []byte("k"), []byte("hello")}
	for i, w := range want {
		if !bytes.Equal(cmds[0][i], w) {
			t.Fatalf("arg %d = %q, want %q", i, cmds[0][i], w)
		}
	}
}

func TestReadCommandInline(t *testing.T) {
	cmds, err := readAll(t, "PING\r\nGET  key1\nSET a b\r\n")
	if err != nil {
		t.Fatal(err)
	}
	if len(cmds) != 3 {
		t.Fatalf("got %d commands, want 3", len(cmds))
	}
	if string(cmds[1][0]) != "GET" || string(cmds[1][1]) != "key1" {
		t.Fatalf("inline parse: %q", cmds[1])
	}
}

func TestReadCommandPipelined(t *testing.T) {
	input := "*2\r\n$3\r\nGET\r\n$1\r\na\r\nPING\r\n*1\r\n$6\r\nDBSIZE\r\n"
	cmds, err := readAll(t, input)
	if err != nil {
		t.Fatal(err)
	}
	if len(cmds) != 3 {
		t.Fatalf("got %d commands, want 3", len(cmds))
	}
}

func TestReadCommandEmptyFramesSkipped(t *testing.T) {
	cmds, err := readAll(t, "\r\n*0\r\n   \r\nPING\r\n")
	if err != nil {
		t.Fatal(err)
	}
	if len(cmds) != 1 || string(cmds[0][0]) != "PING" {
		t.Fatalf("got %v", cmds)
	}
}

func TestReadCommandBinaryValues(t *testing.T) {
	val := []byte{0, 1, 2, '\r', '\n', 0xff}
	var buf bytes.Buffer
	buf.WriteString("*3\r\n$3\r\nSET\r\n$1\r\nk\r\n$6\r\n")
	buf.Write(val)
	buf.WriteString("\r\n")
	cmds, err := readAll(t, buf.String())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(cmds[0][2], val) {
		t.Fatalf("binary value mangled: %v", cmds[0][2])
	}
}

func TestReadCommandProtocolErrors(t *testing.T) {
	cases := map[string]string{
		"oversized multibulk": "*99999999\r\n",
		"negative multibulk":  "*-2\r\n",
		"bad multibulk len":   "*xyz\r\n",
		"oversized bulk":      "*1\r\n$99999999999\r\n",
		"negative bulk":       "*1\r\n$-5\r\n",
		"bad bulk len":        "*1\r\n$abc\r\n",
		"missing CRLF":        "*1\r\n$3\r\nabcXY",
		"wrong element type":  "*1\r\n:5\r\n",
		"truncated frame":     "*2\r\n$3\r\nGET\r\n",
	}
	for name, input := range cases {
		_, err := readAll(t, input)
		var pe *ProtocolError
		if !errors.As(err, &pe) {
			t.Errorf("%s: got %v, want *ProtocolError", name, err)
		}
	}
}

func TestWriterEncodings(t *testing.T) {
	var buf bytes.Buffer
	w := newRespWriter(&buf, 256)
	w.writeSimple("OK")
	w.writeError("ERR nope")
	w.writeInt(-7)
	w.writeBulk([]byte("hi"))
	w.writeNil()
	w.writeArrayHeader(2)
	w.writeBulk(nil)
	w.writeInt(0)
	if err := w.flush(); err != nil {
		t.Fatal(err)
	}
	want := "+OK\r\n-ERR nope\r\n:-7\r\n$2\r\nhi\r\n$-1\r\n*2\r\n$0\r\n\r\n:0\r\n"
	if buf.String() != want {
		t.Fatalf("encoded %q, want %q", buf.String(), want)
	}
}

// Reply encoding must not allocate per element: integer headers format
// into the writer's scratch array, so an MGET reply costs zero
// allocations per key no matter how many keys the client asks for.
func TestWriterZeroAllocs(t *testing.T) {
	w := newRespWriter(io.Discard, 1<<20)
	val := bytes.Repeat([]byte("v"), 64)
	allocs := testing.AllocsPerRun(200, func() {
		w.writeArrayHeader(16)
		for i := 0; i < 16; i++ {
			w.writeBulk(val)
		}
		w.writeInt(1234567890)
		w.writeNil()
		w.flush()
	})
	if allocs != 0 {
		t.Fatalf("reply encoding allocates %.1f times per run, want 0", allocs)
	}
}

// The reader must never allocate a huge buffer just because a frame
// header promises one: limits apply before allocation.
func TestReaderBoundsAllocation(t *testing.T) {
	r := newRespReader(strings.NewReader("*1\r\n$999999999\r\n"), 16, 1<<20)
	_, err := r.ReadCommand()
	var pe *ProtocolError
	if !errors.As(err, &pe) {
		t.Fatalf("oversized bulk accepted: %v", err)
	}
}

// loopReader replays one byte sequence forever, so an allocation gate
// can feed the parser an endless command stream with a zero-cost source.
type loopReader struct {
	data []byte
	off  int
}

func (l *loopReader) Read(p []byte) (int, error) {
	if l.off == len(l.data) {
		l.off = 0
	}
	n := copy(p, l.data[l.off:])
	l.off += n
	return n, nil
}

// Command parsing must not allocate at steady state: argument bytes land
// in the per-connection arena and the argument vector is reused, so GET,
// SET, and a 16-key MGET all parse with zero allocations per frame. This
// mirrors the reply-writer gate (TestWriterZeroAllocs) on the read side.
func TestReadCommandZeroAllocs(t *testing.T) {
	frames := map[string]string{
		"GET":    "*2\r\n$3\r\nGET\r\n$4\r\nkey1\r\n",
		"SET":    "*3\r\n$3\r\nSET\r\n$4\r\nkey1\r\n$64\r\n" + strings.Repeat("v", 64) + "\r\n",
		"MGET":   "*17\r\n$4\r\nMGET\r\n" + strings.Repeat("$6\r\nkey000\r\n", 16),
		"inline": "GET key1\r\n",
	}
	for name, frame := range frames {
		t.Run(name, func(t *testing.T) {
			r := newRespReader(&loopReader{data: []byte(frame)}, 0, 0)
			defer r.release()
			// Warm up so the arena and argument vector reach steady state.
			for i := 0; i < 4; i++ {
				if _, err := r.ReadCommand(); err != nil {
					t.Fatal(err)
				}
			}
			allocs := testing.AllocsPerRun(200, func() {
				if _, err := r.ReadCommand(); err != nil {
					t.Fatal(err)
				}
			})
			if allocs != 0 {
				t.Fatalf("parsing allocates %.1f times per frame, want 0", allocs)
			}
		})
	}
}

// parseInt must agree with strconv.ParseInt on the protocol-relevant
// inputs and reject everything else, without allocating.
func TestParseInt(t *testing.T) {
	good := map[string]int64{
		"0": 0, "7": 7, "1024": 1024, "-1": -1, "+15": 15,
		"9223372036854775807": 9223372036854775807,
	}
	for in, want := range good {
		got, err := parseInt([]byte(in))
		if err != nil || got != want {
			t.Errorf("parseInt(%q) = %d, %v; want %d", in, got, err, want)
		}
	}
	bad := []string{"", "-", "+", "abc", "12x", " 1", "1 ", "9223372036854775808", "99999999999999999999"}
	for _, in := range bad {
		if _, err := parseInt([]byte(in)); err == nil {
			t.Errorf("parseInt(%q) accepted, want error", in)
		}
	}
	allocs := testing.AllocsPerRun(100, func() {
		parseInt([]byte("123456789"))
		parseInt([]byte("not-a-number"))
	})
	if allocs != 0 {
		t.Fatalf("parseInt allocates %.1f times per run, want 0", allocs)
	}
}

// The arena contract: args returned by ReadCommand are invalidated by
// the next ReadCommand. The test proves both halves — the same backing
// memory really is reused (so any handler that retained args would see
// them change), and a deep copy survives.
func TestParserArenaReuse(t *testing.T) {
	input := "*3\r\n$3\r\nSET\r\n$4\r\nkey1\r\n$4\r\nval1\r\n" +
		"*3\r\n$3\r\nSET\r\n$4\r\nkey2\r\n$4\r\nval2\r\n"
	r := newRespReader(strings.NewReader(input), 0, 0)
	first, err := r.ReadCommand()
	if err != nil {
		t.Fatal(err)
	}
	copied := append([]byte(nil), first[1]...)
	if _, err := r.ReadCommand(); err != nil {
		t.Fatal(err)
	}
	// The retained (uncopied) arg now aliases the second frame's bytes.
	if !bytes.Equal(first[1], []byte("key2")) {
		t.Fatalf("expected arena reuse to overwrite retained arg, got %q", first[1])
	}
	if !bytes.Equal(copied, []byte("key1")) {
		t.Fatalf("copied arg corrupted: %q", copied)
	}
}

// One oversized frame must not pin its arena forever: after the frame is
// consumed, the next ReadCommand drops an arena grown past the retain
// bound, and release never pools one.
func TestParserArenaShrinks(t *testing.T) {
	big := strings.Repeat("x", 1<<20)
	input := "*3\r\n$3\r\nSET\r\n$1\r\nk\r\n$1048576\r\n" + big + "\r\n" +
		"*2\r\n$3\r\nGET\r\n$1\r\nk\r\n"
	r := newRespReader(strings.NewReader(input), 0, 0)
	if _, err := r.ReadCommand(); err != nil {
		t.Fatal(err)
	}
	if cap(r.arena) < 1<<20 {
		t.Fatalf("arena did not grow for the big frame: cap=%d", cap(r.arena))
	}
	if _, err := r.ReadCommand(); err != nil {
		t.Fatal(err)
	}
	if cap(r.arena) > arenaRetainBytes {
		t.Fatalf("arena cap %d retained past the %d bound", cap(r.arena), arenaRetainBytes)
	}
	r.release()
}
