package server

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"
)

func readAll(t *testing.T, input string) ([][][]byte, error) {
	t.Helper()
	r := newRespReader(strings.NewReader(input), 0, 0)
	var cmds [][][]byte
	for {
		args, err := r.ReadCommand()
		if errors.Is(err, io.EOF) {
			return cmds, nil
		}
		if err != nil {
			return cmds, err
		}
		if len(args) > 0 {
			cmds = append(cmds, args)
		}
	}
}

func TestReadCommandArray(t *testing.T) {
	cmds, err := readAll(t, "*3\r\n$3\r\nSET\r\n$1\r\nk\r\n$5\r\nhello\r\n")
	if err != nil {
		t.Fatal(err)
	}
	if len(cmds) != 1 {
		t.Fatalf("got %d commands, want 1", len(cmds))
	}
	want := [][]byte{[]byte("SET"), []byte("k"), []byte("hello")}
	for i, w := range want {
		if !bytes.Equal(cmds[0][i], w) {
			t.Fatalf("arg %d = %q, want %q", i, cmds[0][i], w)
		}
	}
}

func TestReadCommandInline(t *testing.T) {
	cmds, err := readAll(t, "PING\r\nGET  key1\nSET a b\r\n")
	if err != nil {
		t.Fatal(err)
	}
	if len(cmds) != 3 {
		t.Fatalf("got %d commands, want 3", len(cmds))
	}
	if string(cmds[1][0]) != "GET" || string(cmds[1][1]) != "key1" {
		t.Fatalf("inline parse: %q", cmds[1])
	}
}

func TestReadCommandPipelined(t *testing.T) {
	input := "*2\r\n$3\r\nGET\r\n$1\r\na\r\nPING\r\n*1\r\n$6\r\nDBSIZE\r\n"
	cmds, err := readAll(t, input)
	if err != nil {
		t.Fatal(err)
	}
	if len(cmds) != 3 {
		t.Fatalf("got %d commands, want 3", len(cmds))
	}
}

func TestReadCommandEmptyFramesSkipped(t *testing.T) {
	cmds, err := readAll(t, "\r\n*0\r\n   \r\nPING\r\n")
	if err != nil {
		t.Fatal(err)
	}
	if len(cmds) != 1 || string(cmds[0][0]) != "PING" {
		t.Fatalf("got %v", cmds)
	}
}

func TestReadCommandBinaryValues(t *testing.T) {
	val := []byte{0, 1, 2, '\r', '\n', 0xff}
	var buf bytes.Buffer
	buf.WriteString("*3\r\n$3\r\nSET\r\n$1\r\nk\r\n$6\r\n")
	buf.Write(val)
	buf.WriteString("\r\n")
	cmds, err := readAll(t, buf.String())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(cmds[0][2], val) {
		t.Fatalf("binary value mangled: %v", cmds[0][2])
	}
}

func TestReadCommandProtocolErrors(t *testing.T) {
	cases := map[string]string{
		"oversized multibulk": "*99999999\r\n",
		"negative multibulk":  "*-2\r\n",
		"bad multibulk len":   "*xyz\r\n",
		"oversized bulk":      "*1\r\n$99999999999\r\n",
		"negative bulk":       "*1\r\n$-5\r\n",
		"bad bulk len":        "*1\r\n$abc\r\n",
		"missing CRLF":        "*1\r\n$3\r\nabcXY",
		"wrong element type":  "*1\r\n:5\r\n",
		"truncated frame":     "*2\r\n$3\r\nGET\r\n",
	}
	for name, input := range cases {
		_, err := readAll(t, input)
		var pe *ProtocolError
		if !errors.As(err, &pe) {
			t.Errorf("%s: got %v, want *ProtocolError", name, err)
		}
	}
}

func TestWriterEncodings(t *testing.T) {
	var buf bytes.Buffer
	w := newRespWriter(&buf, 256)
	w.writeSimple("OK")
	w.writeError("ERR nope")
	w.writeInt(-7)
	w.writeBulk([]byte("hi"))
	w.writeNil()
	w.writeArrayHeader(2)
	w.writeBulk(nil)
	w.writeInt(0)
	if err := w.flush(); err != nil {
		t.Fatal(err)
	}
	want := "+OK\r\n-ERR nope\r\n:-7\r\n$2\r\nhi\r\n$-1\r\n*2\r\n$0\r\n\r\n:0\r\n"
	if buf.String() != want {
		t.Fatalf("encoded %q, want %q", buf.String(), want)
	}
}

// Reply encoding must not allocate per element: integer headers format
// into the writer's scratch array, so an MGET reply costs zero
// allocations per key no matter how many keys the client asks for.
func TestWriterZeroAllocs(t *testing.T) {
	w := newRespWriter(io.Discard, 1<<20)
	val := bytes.Repeat([]byte("v"), 64)
	allocs := testing.AllocsPerRun(200, func() {
		w.writeArrayHeader(16)
		for i := 0; i < 16; i++ {
			w.writeBulk(val)
		}
		w.writeInt(1234567890)
		w.writeNil()
		w.flush()
	})
	if allocs != 0 {
		t.Fatalf("reply encoding allocates %.1f times per run, want 0", allocs)
	}
}

// The reader must never allocate a huge buffer just because a frame
// header promises one: limits apply before allocation.
func TestReaderBoundsAllocation(t *testing.T) {
	r := newRespReader(strings.NewReader("*1\r\n$999999999\r\n"), 16, 1<<20)
	_, err := r.ReadCommand()
	var pe *ProtocolError
	if !errors.As(err, &pe) {
		t.Fatalf("oversized bulk accepted: %v", err)
	}
}
