// Package respclient is a minimal RESP2 client used by the server's
// tests, by prism-cli's -connect mode, and by ycsb-run's wire mode, so
// the full wire loop — parse, dispatch, epoch enter/exit, reply encode —
// is exercisable without any external binary.
//
// Three pipelining levels are offered. Do is one round trip. Send/Flush/
// Receive is manual pipelining with the bookkeeping on the caller. Go/
// Drain is managed pipelining: Go queues a command and accounts it
// in-flight, transparently flushing and consuming replies (through the
// OnReply callback) whenever the window of MaxInFlight outstanding
// replies fills, and Drain settles whatever remains — the shape a
// benchmark driver wants, with reply memory bounded no matter how many
// commands are issued.
//
// Timeout, when set, bounds every socket write (at flush) and every
// reply read with a deadline, so a wedged server fails the client
// instead of hanging it.
//
// A Client is not safe for concurrent use; open one per goroutine, as
// you would a Redis connection.
package respclient

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"io"
	"net"
	"strconv"
	"time"
)

// maxReply bounds any single bulk payload or array arity accepted from
// the server, so a corrupt stream cannot demand unbounded memory.
const maxReply = 64 << 20

// Reply is one decoded RESP2 reply.
type Reply struct {
	Kind  byte    // '+' simple, '-' error, ':' integer, '$' bulk, '*' array
	Str   string  // simple/error text, or bulk payload
	Int   int64   // integer value
	Nil   bool    // null bulk ($-1) or null array (*-1)
	Elems []Reply // array elements
}

// Err returns the reply as an error when it is a RESP error, else nil.
func (r Reply) Err() error {
	if r.Kind == '-' {
		return errors.New(r.Str)
	}
	return nil
}

// DefaultMaxInFlight is the Go/Drain pipelining window when
// Client.MaxInFlight is unset.
const DefaultMaxInFlight = 64

// Client is one RESP connection.
type Client struct {
	conn net.Conn
	br   *bufio.Reader
	bw   *bufio.Writer

	// Timeout, when > 0, bounds each socket flush and each reply read
	// with a write/read deadline. Zero means no deadlines (test servers
	// on loopback).
	Timeout time.Duration

	// MaxInFlight bounds outstanding replies under Go before the client
	// transparently flushes and consumes one (default DefaultMaxInFlight).
	MaxInFlight int

	// OnReply, when set, observes every reply consumed by Go/Drain. A
	// non-nil return stops the pipeline and surfaces from Go/Drain.
	// When nil, replies are checked for transport decodability and
	// discarded (RESP error replies do NOT fail the pipeline — count
	// them in OnReply if they matter).
	OnReply func(Reply) error

	inflight int
}

// Dial connects to a RESP server at addr.
func Dial(addr string) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, 10*time.Second)
	if err != nil {
		return nil, err
	}
	return &Client{conn: conn, br: bufio.NewReader(conn), bw: bufio.NewWriter(conn)}, nil
}

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }

// Send queues one command (encoded as a RESP array of bulk strings)
// without flushing — the pipelining primitive.
func (c *Client) Send(args ...string) error {
	if len(args) == 0 {
		return errors.New("respclient: empty command")
	}
	c.bw.WriteByte('*')
	c.bw.WriteString(strconv.Itoa(len(args)))
	c.bw.WriteString("\r\n")
	for _, a := range args {
		c.bw.WriteByte('$')
		c.bw.WriteString(strconv.Itoa(len(a)))
		c.bw.WriteString("\r\n")
		c.bw.WriteString(a)
		if _, err := c.bw.WriteString("\r\n"); err != nil {
			return err
		}
	}
	return nil
}

// Flush writes all queued commands to the socket.
func (c *Client) Flush() error {
	if err := c.setWriteDeadline(); err != nil {
		return err
	}
	return c.bw.Flush()
}

// Receive reads one reply.
func (c *Client) Receive() (Reply, error) {
	if err := c.setReadDeadline(); err != nil {
		return Reply{}, err
	}
	return c.readReply()
}

// Do sends one command and waits for its reply. A RESP error reply is
// returned as the error (with the zero-value reply intact in r.Kind).
// Replies still owed to earlier Go calls are drained first, preserving
// the wire's request/reply pairing.
func (c *Client) Do(args ...string) (Reply, error) {
	if c.inflight > 0 {
		if err := c.Drain(); err != nil {
			return Reply{}, err
		}
	}
	if err := c.Send(args...); err != nil {
		return Reply{}, err
	}
	if err := c.Flush(); err != nil {
		return Reply{}, err
	}
	r, err := c.Receive()
	if err != nil {
		return Reply{}, err
	}
	return r, r.Err()
}

// Go queues one pipelined command. When MaxInFlight replies are already
// outstanding, it flushes and consumes exactly one reply (via OnReply)
// before queueing, so the in-flight window — and therefore both ends'
// buffered memory — stays bounded while the pipe runs at full depth.
func (c *Client) Go(args ...string) error {
	limit := c.MaxInFlight
	if limit <= 0 {
		limit = DefaultMaxInFlight
	}
	if c.inflight >= limit {
		if err := c.Flush(); err != nil {
			return err
		}
		if err := c.consume(1); err != nil {
			return err
		}
	}
	if err := c.Send(args...); err != nil {
		return err
	}
	c.inflight++
	return nil
}

// Drain flushes queued commands and consumes every outstanding reply.
func (c *Client) Drain() error {
	if err := c.Flush(); err != nil {
		return err
	}
	return c.consume(c.inflight)
}

// consume reads n pipelined replies, feeding each to OnReply.
func (c *Client) consume(n int) error {
	for ; n > 0; n-- {
		r, err := c.Receive()
		if err != nil {
			return err
		}
		c.inflight--
		if c.OnReply != nil {
			if err := c.OnReply(r); err != nil {
				return err
			}
		}
	}
	return nil
}

func (c *Client) setReadDeadline() error {
	if c.Timeout <= 0 {
		return nil
	}
	return c.conn.SetReadDeadline(time.Now().Add(c.Timeout))
}

func (c *Client) setWriteDeadline() error {
	if c.Timeout <= 0 {
		return nil
	}
	return c.conn.SetWriteDeadline(time.Now().Add(c.Timeout))
}

func (c *Client) readLine() ([]byte, error) {
	line, err := c.br.ReadBytes('\n')
	if err != nil {
		return nil, err
	}
	line = bytes.TrimSuffix(line, []byte("\n"))
	line = bytes.TrimSuffix(line, []byte("\r"))
	return line, nil
}

func (c *Client) readReply() (Reply, error) {
	t, err := c.br.ReadByte()
	if err != nil {
		return Reply{}, err
	}
	line, err := c.readLine()
	if err != nil {
		return Reply{}, err
	}
	switch t {
	case '+':
		return Reply{Kind: '+', Str: string(line)}, nil
	case '-':
		return Reply{Kind: '-', Str: string(line)}, nil
	case ':':
		n, err := strconv.ParseInt(string(line), 10, 64)
		if err != nil {
			return Reply{}, fmt.Errorf("respclient: bad integer %q", line)
		}
		return Reply{Kind: ':', Int: n}, nil
	case '$':
		n, err := strconv.ParseInt(string(line), 10, 64)
		if err != nil || n > maxReply {
			return Reply{}, fmt.Errorf("respclient: bad bulk length %q", line)
		}
		if n < 0 {
			return Reply{Kind: '$', Nil: true}, nil
		}
		buf := make([]byte, n+2)
		if _, err := io.ReadFull(c.br, buf); err != nil {
			return Reply{}, err
		}
		return Reply{Kind: '$', Str: string(buf[:n])}, nil
	case '*':
		n, err := strconv.ParseInt(string(line), 10, 64)
		if err != nil || n > maxReply {
			return Reply{}, fmt.Errorf("respclient: bad array length %q", line)
		}
		if n < 0 {
			return Reply{Kind: '*', Nil: true}, nil
		}
		r := Reply{Kind: '*', Elems: make([]Reply, 0, n)}
		for i := int64(0); i < n; i++ {
			e, err := c.readReply()
			if err != nil {
				return Reply{}, err
			}
			r.Elems = append(r.Elems, e)
		}
		return r, nil
	default:
		return Reply{}, fmt.Errorf("respclient: unknown reply type %q", t)
	}
}
