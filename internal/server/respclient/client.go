// Package respclient is a minimal RESP2 client used by the server's
// tests and by prism-cli's -connect mode, so the full wire loop — parse,
// dispatch, epoch enter/exit, reply encode — is exercisable without any
// external binary. It supports explicit pipelining (Send/Flush/Receive)
// on top of the one-shot Do.
//
// A Client is not safe for concurrent use; open one per goroutine, as
// you would a Redis connection.
package respclient

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"io"
	"net"
	"strconv"
	"time"
)

// maxReply bounds any single bulk payload or array arity accepted from
// the server, so a corrupt stream cannot demand unbounded memory.
const maxReply = 64 << 20

// Reply is one decoded RESP2 reply.
type Reply struct {
	Kind  byte    // '+' simple, '-' error, ':' integer, '$' bulk, '*' array
	Str   string  // simple/error text, or bulk payload
	Int   int64   // integer value
	Nil   bool    // null bulk ($-1) or null array (*-1)
	Elems []Reply // array elements
}

// Err returns the reply as an error when it is a RESP error, else nil.
func (r Reply) Err() error {
	if r.Kind == '-' {
		return errors.New(r.Str)
	}
	return nil
}

// Client is one RESP connection.
type Client struct {
	conn net.Conn
	br   *bufio.Reader
	bw   *bufio.Writer
}

// Dial connects to a RESP server at addr.
func Dial(addr string) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, 10*time.Second)
	if err != nil {
		return nil, err
	}
	return &Client{conn: conn, br: bufio.NewReader(conn), bw: bufio.NewWriter(conn)}, nil
}

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }

// Send queues one command (encoded as a RESP array of bulk strings)
// without flushing — the pipelining primitive.
func (c *Client) Send(args ...string) error {
	if len(args) == 0 {
		return errors.New("respclient: empty command")
	}
	c.bw.WriteByte('*')
	c.bw.WriteString(strconv.Itoa(len(args)))
	c.bw.WriteString("\r\n")
	for _, a := range args {
		c.bw.WriteByte('$')
		c.bw.WriteString(strconv.Itoa(len(a)))
		c.bw.WriteString("\r\n")
		c.bw.WriteString(a)
		if _, err := c.bw.WriteString("\r\n"); err != nil {
			return err
		}
	}
	return nil
}

// Flush writes all queued commands to the socket.
func (c *Client) Flush() error { return c.bw.Flush() }

// Receive reads one reply.
func (c *Client) Receive() (Reply, error) { return c.readReply() }

// Do sends one command and waits for its reply. A RESP error reply is
// returned as the error (with the zero-value reply intact in r.Kind).
func (c *Client) Do(args ...string) (Reply, error) {
	if err := c.Send(args...); err != nil {
		return Reply{}, err
	}
	if err := c.Flush(); err != nil {
		return Reply{}, err
	}
	r, err := c.readReply()
	if err != nil {
		return Reply{}, err
	}
	return r, r.Err()
}

func (c *Client) readLine() ([]byte, error) {
	line, err := c.br.ReadBytes('\n')
	if err != nil {
		return nil, err
	}
	line = bytes.TrimSuffix(line, []byte("\n"))
	line = bytes.TrimSuffix(line, []byte("\r"))
	return line, nil
}

func (c *Client) readReply() (Reply, error) {
	t, err := c.br.ReadByte()
	if err != nil {
		return Reply{}, err
	}
	line, err := c.readLine()
	if err != nil {
		return Reply{}, err
	}
	switch t {
	case '+':
		return Reply{Kind: '+', Str: string(line)}, nil
	case '-':
		return Reply{Kind: '-', Str: string(line)}, nil
	case ':':
		n, err := strconv.ParseInt(string(line), 10, 64)
		if err != nil {
			return Reply{}, fmt.Errorf("respclient: bad integer %q", line)
		}
		return Reply{Kind: ':', Int: n}, nil
	case '$':
		n, err := strconv.ParseInt(string(line), 10, 64)
		if err != nil || n > maxReply {
			return Reply{}, fmt.Errorf("respclient: bad bulk length %q", line)
		}
		if n < 0 {
			return Reply{Kind: '$', Nil: true}, nil
		}
		buf := make([]byte, n+2)
		if _, err := io.ReadFull(c.br, buf); err != nil {
			return Reply{}, err
		}
		return Reply{Kind: '$', Str: string(buf[:n])}, nil
	case '*':
		n, err := strconv.ParseInt(string(line), 10, 64)
		if err != nil || n > maxReply {
			return Reply{}, fmt.Errorf("respclient: bad array length %q", line)
		}
		if n < 0 {
			return Reply{Kind: '*', Nil: true}, nil
		}
		r := Reply{Kind: '*', Elems: make([]Reply, 0, n)}
		for i := int64(0); i < n; i++ {
			e, err := c.readReply()
			if err != nil {
				return Reply{}, err
			}
			r.Elems = append(r.Elems, e)
		}
		return r, nil
	default:
		return Reply{}, fmt.Errorf("respclient: unknown reply type %q", t)
	}
}
