package server_test

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/server"
	"repro/internal/server/respclient"
)

// TestClientPipelinedGoDrain is the respclient e2e test: several
// connections drive the managed Go/Drain pipeline concurrently with a
// small MaxInFlight window, every reply is verified in OnReply (order
// and content), and the final store state is checked over a fresh
// connection. Since the window (8) is far smaller than the command count
// per connection, the bounded-in-flight refill path is exercised
// constantly, not just at Drain.
func TestClientPipelinedGoDrain(t *testing.T) {
	store, addr := start(t, server.Config{})

	const (
		conns = 4
		keys  = 200
	)
	var wg sync.WaitGroup
	errs := make(chan error, conns)
	for ci := 0; ci < conns; ci++ {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			c, err := respclient.Dial(addr)
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			c.Timeout = 10 * time.Second
			c.MaxInFlight = 8

			// Phase 1: pipeline SETs; every reply must be +OK.
			var got int
			c.OnReply = func(r respclient.Reply) error {
				if r.Str != "OK" {
					return fmt.Errorf("SET reply %d: %+v", got, r)
				}
				got++
				return nil
			}
			for i := 0; i < keys; i++ {
				if err := c.Go("SET", key(ci, i), val(ci, i)); err != nil {
					errs <- fmt.Errorf("conn %d Go SET %d: %w", ci, i, err)
					return
				}
			}
			if err := c.Drain(); err != nil {
				errs <- fmt.Errorf("conn %d drain SETs: %w", ci, err)
				return
			}
			if got != keys {
				errs <- fmt.Errorf("conn %d: %d SET replies, want %d", ci, got, keys)
				return
			}

			// Phase 2: pipeline GETs; replies arrive in request order, so
			// OnReply can verify values positionally.
			got = 0
			c.OnReply = func(r respclient.Reply) error {
				if want := val(ci, got); r.Str != want {
					return fmt.Errorf("GET reply %d = %q, want %q", got, r.Str, want)
				}
				got++
				return nil
			}
			for i := 0; i < keys; i++ {
				if err := c.Go("GET", key(ci, i)); err != nil {
					errs <- fmt.Errorf("conn %d Go GET %d: %w", ci, i, err)
					return
				}
			}
			if err := c.Drain(); err != nil {
				errs <- fmt.Errorf("conn %d drain GETs: %w", ci, err)
				return
			}
			if got != keys {
				errs <- fmt.Errorf("conn %d: %d GET replies, want %d", ci, got, keys)
				return
			}

			// Do after Go settles outstanding replies first.
			c.OnReply = func(r respclient.Reply) error {
				if r.Str != "OK" {
					return fmt.Errorf("drained SET reply: %+v", r)
				}
				return nil
			}
			if err := c.Go("SET", key(ci, 0), "overwritten"); err != nil {
				errs <- err
				return
			}
			if r, err := c.Do("GET", key(ci, 0)); err != nil || r.Str != "overwritten" {
				errs <- fmt.Errorf("conn %d Do-after-Go: %+v (%v)", ci, r, err)
				return
			}
		}(ci)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	c := dial(t, addr)
	if r, err := c.Do("DBSIZE"); err != nil || r.Int != conns*keys {
		t.Fatalf("DBSIZE = %+v (%v), want %d", r, err, conns*keys)
	}
	// The managed pipeline must actually have pipelined: bursts deeper
	// than one command reached the server.
	snap := store.Metrics()
	if m, ok := snap.Get("server.pipeline_depth", nil); !ok || m.Hist == nil || m.Hist.Max < 2 {
		t.Fatalf("server.pipeline_depth shows no pipelining: %+v ok=%v", m, ok)
	}
}

func key(ci, i int) string { return fmt.Sprintf("c%d-key%04d", ci, i) }
func val(ci, i int) string { return fmt.Sprintf("c%d-val%04d", ci, i) }

// TestClientTimeout: a server that accepts and never replies must fail
// the client's read with a deadline error instead of hanging it.
func TestClientTimeout(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			defer conn.Close()
			// Swallow bytes forever, reply with nothing.
			go func() {
				buf := make([]byte, 1024)
				for {
					if _, err := conn.Read(buf); err != nil {
						return
					}
				}
			}()
		}
	}()

	c, err := respclient.Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.Timeout = 50 * time.Millisecond

	done := make(chan error, 1)
	go func() {
		_, err := c.Do("GET", "k")
		done <- err
	}()
	select {
	case err := <-done:
		var ne net.Error
		if err == nil || !errors.As(err, &ne) || !ne.Timeout() {
			t.Fatalf("want timeout error, got %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("client hung despite Timeout")
	}
}
