// Package server exposes a Prism store (the shard-routed front end over
// one or more core engines) over TCP speaking the RESP2 protocol, so
// stock Redis/Valkey clients and workload generators can drive the
// store (ROADMAP "network server" item).
//
// Threading model: Prism's engine hands out per-thread handles
// (Store.Thread(i)); the server pins each accepted connection to one
// handle round-robin — the paper's thread model (§4) carried across the
// wire. Dispatch is contention-free for the hot verbs: single-key
// GET/SET/DEL/EXISTS are always submitted through the store's
// asynchronous admission pipeline (core PutAsync/GetAsync/DeleteAsync),
// whose entry points are concurrency-safe, so concurrent connections
// pinned to one store thread queue their work in the admission ring
// instead of convoying on a mutex. Only the multi-key verbs
// (MGET/MSET/SCAN, multi-key DEL/EXISTS) and MULTI/EXEC blocks — which
// need the handle's synchronous single-owner surface — serialize on the
// per-handle mutex; the wall time spent acquiring it (or waiting out an
// async burst) is visible as server.dispatch_wait. With sharding
// enabled the handle is the router's: multi-key commands fan out to the
// owning shards in parallel, and SCAN k-way merges per-shard ordered
// scans — all transparent at the protocol level.
//
// Supported commands (RESP arrays or inline, case-insensitive):
//
//	PING [msg]            ECHO msg
//	GET k                 SET k v
//	DEL k [k ...]         EXISTS k [k ...]
//	MGET k [k ...]        MSET k v [k v ...]
//	MULTI / EXEC          queue commands, then run them as one batch
//	DISCARD               abort a MULTI block
//	SCAN start count      range scan (Prism-style: start key + limit,
//	                      flat key,value,... array — not Redis cursors)
//	DBSIZE                INFO
//	COMMAND               QUIT
//
// Pipelining: commands are executed in arrival order and replies are
// buffered (bounded by Config.WriteBufBytes) until the input buffer
// drains, so a deep pipeline costs one flush, not one per command.
// Because single-key verbs always ride the async pipeline, a pipelined
// burst of N commands coalesces into a handful of admission windows —
// one epoch enter and one PWB publish window per window instead of per
// command — while replies are still written in protocol order when the
// burst drains. A lone command is the degenerate burst: submit, drain
// immediately (submit+wait), reply. The pending burst always drains
// before any other verb executes, which preserves the same-connection
// guarantee: a command always observes the writes of every command
// before it on that connection.
//
// Parsing and encoding are zero-allocation at steady state: commands
// are parsed into a per-connection arena (args are valid only until the
// next read — the MULTI queue, the one handler that retains them,
// copies), and reader/writer buffers are pooled across connections via
// sync.Pool, so connection churn reuses parser memory.
//
// Batching: MSET maps to the store's PutBatch and MGET to MultiGet, so a
// multi-key command enters the epoch once instead of once per key. A
// MULTI/EXEC block goes further: EXEC holds the connection's thread slot
// for the whole block and coalesces consecutive SETs into one PutBatch
// and consecutive GETs into one MultiGet. Blocks are isolated from other
// connections on the same slot but are not atomic under crashes — a
// crash mid-EXEC durably keeps a prefix of the block (see core.PutBatch).
package server

import (
	"errors"
	"fmt"
	"net"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/shard"
)

// Config tunes a Server. The zero value is production-shaped defaults.
type Config struct {
	// MaxConns caps concurrently served connections; excess connections
	// receive "-ERR max connections" and are closed. Default 256.
	MaxConns int
	// IdleTimeout bounds the wait for the next command on an idle
	// connection. Default 5 minutes.
	IdleTimeout time.Duration
	// WriteBufBytes bounds per-connection buffered reply bytes before
	// writing through to the socket. Default 64 KiB.
	WriteBufBytes int
	// MaxArgs and MaxBulkBytes bound a single command frame; see
	// DefaultMaxArgs / DefaultMaxBulk.
	MaxArgs      int
	MaxBulkBytes int
	// MaxMultiQueued caps commands queued inside one MULTI block; the
	// block is marked aborted past the cap, so a client cannot buffer
	// unbounded command memory server-side. Default 1024.
	MaxMultiQueued int
}

func (c *Config) applyDefaults() {
	if c.MaxConns == 0 {
		c.MaxConns = 256
	}
	if c.IdleTimeout == 0 {
		c.IdleTimeout = 5 * time.Minute
	}
	if c.WriteBufBytes == 0 {
		c.WriteBufBytes = 64 << 10
	}
	if c.MaxArgs == 0 {
		c.MaxArgs = DefaultMaxArgs
	}
	if c.MaxBulkBytes == 0 {
		c.MaxBulkBytes = DefaultMaxBulk
	}
	if c.MaxMultiQueued == 0 {
		c.MaxMultiQueued = 1024
	}
}

// lockedThread guards a store thread's synchronous single-owner surface
// (multi-key verbs, SCAN, MULTI/EXEC blocks). Single-key verbs bypass it
// entirely: they ride the concurrency-safe async admission pipeline.
type lockedThread struct {
	mu sync.Mutex
	th *shard.Thread
}

// queuedCmd is one command held in a MULTI block, with its verb already
// uppercased so EXEC's run-coalescing compares cheaply.
type queuedCmd struct {
	verb string
	args [][]byte
}

// pendingReply is one pipelined command in flight on the store's async
// pipeline: the completion handle plus the verb that decides how to
// render its result when the burst drains, and the submit time that
// feeds server.cmd_latency when the reply is finally written.
type pendingReply struct {
	verb  string
	h     *core.Handle
	start time.Time
}

// maxPendingReplies bounds a connection's in-flight burst; past it the
// burst drains inline before more commands are admitted (the store's
// own AsyncMaxPending backpressure sits below this).
const maxPendingReplies = 256

// session is one connection's dispatch state: the pinned thread slot,
// the MULTI transaction queue, and scratch slices reused across commands
// so steady-state MGET/MSET/EXEC dispatch does not allocate per key.
type session struct {
	slot    *lockedThread
	inMulti bool
	txDirty bool // a queue-time error poisons the block: EXEC aborts
	queued  []queuedCmd

	kvs  []core.KV // PutBatch scratch (MSET, EXEC SET runs)
	keys [][]byte  // MultiGet key scratch (EXEC GET runs)
	vals [][]byte  // MultiGet value scratch (MGET, EXEC GET runs)

	// pending is the connection's pipelined burst: async completion
	// handles whose replies have not been written yet, in protocol order.
	pending []pendingReply
}

// resetScratch drops references into command frames and store values so
// the retained capacity cannot pin freed payloads.
func (c *session) resetScratch() {
	for i := range c.kvs {
		c.kvs[i] = core.KV{}
	}
	c.kvs = c.kvs[:0]
	for i := range c.keys {
		c.keys[i] = nil
	}
	c.keys = c.keys[:0]
	for i := range c.vals {
		c.vals[i] = nil
	}
	c.vals = c.vals[:0]
}

// resetTx clears the MULTI state after EXEC, DISCARD, or connection end.
func (c *session) resetTx() {
	c.inMulti = false
	c.txDirty = false
	c.queued = c.queued[:0]
}

// Server is a RESP2 front end over one store. Create with New; at most
// one Server may be attached to a given Store (metric registration is
// once-only).
type Server struct {
	store *shard.Store
	cfg   Config

	threads []*lockedThread
	next    atomic.Uint64 // round-robin connection->thread assignment

	mu       sync.Mutex
	ln       net.Listener
	conns    map[net.Conn]struct{}
	started  bool
	draining atomic.Bool
	wg       sync.WaitGroup

	m serverMetrics
}

// New builds a Server over store and registers its server.* metrics in
// the store's observability registry (no-op when metrics are disabled).
func New(store *shard.Store, cfg Config) *Server {
	cfg.applyDefaults()
	s := &Server{
		store: store,
		cfg:   cfg,
		conns: make(map[net.Conn]struct{}),
	}
	for i := 0; i < store.NumThreads(); i++ {
		s.threads = append(s.threads, &lockedThread{th: store.Thread(i)})
	}
	s.registerMetrics(store.MetricsRegistry())
	return s
}

// Addr returns the listening address (nil before Serve/ListenAndServe).
func (s *Server) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

// ListenAndServe listens on addr ("host:port") and serves until
// Shutdown. It blocks; run it on its own goroutine.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// Serve accepts connections on ln until Shutdown closes it.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.started {
		s.mu.Unlock()
		ln.Close()
		return errors.New("server: already serving")
	}
	s.started = true
	s.ln = ln
	s.mu.Unlock()

	for {
		conn, err := ln.Accept()
		if err != nil {
			if s.draining.Load() {
				return nil // Shutdown closed the listener
			}
			return err
		}
		if !s.admit(conn) {
			continue
		}
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

// admit enforces MaxConns and registers the connection for Shutdown.
func (s *Server) admit(conn net.Conn) bool {
	s.mu.Lock()
	if len(s.conns) >= s.cfg.MaxConns || s.draining.Load() {
		s.mu.Unlock()
		s.m.rejected.Inc()
		conn.Write([]byte("-ERR max connections reached\r\n"))
		conn.Close()
		return false
	}
	s.conns[conn] = struct{}{}
	s.mu.Unlock()
	s.m.connsTotal.Inc()
	s.m.connsCur.Add(1)
	return true
}

func (s *Server) dropConn(conn net.Conn) {
	s.mu.Lock()
	delete(s.conns, conn)
	s.mu.Unlock()
	s.m.connsCur.Add(-1)
	conn.Close()
}

// Shutdown drains gracefully: stop accepting, let every connection
// finish the commands already buffered in its pipeline, then close. If
// the drain exceeds timeout, remaining connections are force-closed.
func (s *Server) Shutdown(timeout time.Duration) error {
	if s.draining.Swap(true) {
		return errors.New("server: already shut down")
	}
	// Commands already sent (in a connection's parse buffer or still in
	// the kernel socket buffer) drain within a grace window; after it,
	// the absolute deadline fires and every connection closes. An
	// expired deadline would fail reads of already-received bytes too,
	// so the grace must be in the future.
	grace := timeout / 2
	if grace > time.Second {
		grace = time.Second
	}
	if grace < 10*time.Millisecond {
		grace = 10 * time.Millisecond
	}
	s.mu.Lock()
	if s.ln != nil {
		s.ln.Close()
	}
	for conn := range s.conns {
		conn.SetReadDeadline(time.Now().Add(grace))
	}
	s.mu.Unlock()

	done := make(chan struct{})
	go func() { s.wg.Wait(); close(done) }()
	select {
	case <-done:
		return nil
	case <-time.After(timeout):
	}
	s.mu.Lock()
	for conn := range s.conns {
		conn.Close()
	}
	s.mu.Unlock()
	<-done
	return errors.New("server: drain timeout; connections force-closed")
}

// serveConn runs one connection's read-dispatch-reply loop.
func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer s.dropConn(conn)

	sess := &session{slot: s.threads[(s.next.Add(1)-1)%uint64(len(s.threads))]}
	r := newRespReader(&countingReader{r: conn, n: s.m.bytesIn}, s.cfg.MaxArgs, s.cfg.MaxBulkBytes)
	w := newRespWriter(&countingWriter{w: conn, n: s.m.bytesOut}, s.cfg.WriteBufBytes)
	defer r.release()
	defer w.release()

	for {
		// The deadline is refreshed per command, so it acts as an idle
		// timeout; Shutdown retracts it to now to begin the drain.
		if !s.draining.Load() {
			conn.SetReadDeadline(time.Now().Add(s.cfg.IdleTimeout))
		}
		args, err := r.ReadCommand()
		if err != nil {
			// Write out whatever the burst already earned before closing.
			s.drainPipeline(sess, w)
			var pe *ProtocolError
			if errors.As(err, &pe) {
				s.m.parseErrs.Inc()
				w.writeError("ERR " + pe.Error())
			}
			w.flush()
			return
		}
		if len(args) == 0 {
			continue
		}
		// Contention-free fast path: single-key verbs are always
		// submitted asynchronously — no thread-slot mutex — and their
		// replies deferred, so the admission loop coalesces pipelined
		// bursts into a few windows and concurrent connections on one
		// store thread queue instead of convoying. A lone command drains
		// immediately below (submit+wait).
		if s.tryAsync(sess, args) {
			if len(sess.pending) >= maxPendingReplies {
				s.drainPipeline(sess, w)
			}
			if !r.buffered() {
				s.drainPipeline(sess, w)
				if w.flush() != nil {
					return
				}
			}
			continue
		}
		// Any other verb waits for the burst: replies stay in protocol
		// order and the command observes every prior write.
		s.drainPipeline(sess, w)
		quit := s.dispatch(sess, w, args)
		// Flush only once the pipeline drains: replies to back-to-back
		// commands share one write.
		if !r.buffered() {
			if w.flush() != nil {
				return
			}
		}
		if quit {
			return
		}
	}
}

// tryAsync submits one command to the store's asynchronous pipeline and
// queues its completion for the next drain. It reports false for verbs
// (or arities) that must take the synchronous dispatch path. Submission
// needs no thread-slot lock: the async entry points are concurrency-safe
// and never touch the router thread's scratch state.
func (s *Server) tryAsync(sess *session, args [][]byte) bool {
	if sess.inMulti {
		return false
	}
	verb := verbOf(args[0])
	th := sess.slot.th
	var h *core.Handle
	switch verb {
	case "GET":
		if len(args) != 2 {
			return false
		}
		h = th.GetAsync(args[1])
	case "SET":
		if len(args) != 3 {
			return false
		}
		h = th.PutAsync(args[1], args[2])
	case "DEL":
		if len(args) != 2 {
			return false
		}
		h = th.DeleteAsync(args[1])
	case "EXISTS":
		if len(args) != 2 {
			return false
		}
		h = th.GetAsync(args[1])
	default:
		return false
	}
	s.countCommand(verb)
	s.m.pipelineOps.Inc()
	sess.pending = append(sess.pending, pendingReply{verb: verb, h: h, start: time.Now()})
	return true
}

// drainPipeline waits out the connection's in-flight burst and writes
// the replies in protocol order. The wall time blocked on completion
// handles feeds server.dispatch_wait; each command's submit-to-reply
// time feeds server.cmd_latency.
func (s *Server) drainPipeline(sess *session, w *respWriter) {
	if len(sess.pending) == 0 {
		return
	}
	s.m.pipelineBursts.Inc()
	s.m.pipelineDepth.Record(int64(len(sess.pending)))
	wait0 := time.Now()
	for i := range sess.pending {
		p := &sess.pending[i]
		switch p.verb {
		case "GET":
			v, err := p.h.Value()
			switch {
			case err == nil:
				w.writeBulk(v)
			case errors.Is(err, core.ErrNotFound):
				w.writeNil()
			default:
				w.writeError("ERR " + err.Error())
			}
		case "SET":
			if err := p.h.Wait(); err != nil {
				w.writeError("ERR " + err.Error())
			} else {
				w.writeSimple("OK")
			}
		case "DEL":
			switch err := p.h.Wait(); {
			case err == nil:
				w.writeInt(1)
			case errors.Is(err, core.ErrNotFound):
				w.writeInt(0)
			default:
				w.writeError("ERR " + err.Error())
			}
		case "EXISTS":
			switch err := p.h.Wait(); {
			case err == nil:
				w.writeInt(1)
			case errors.Is(err, core.ErrNotFound):
				w.writeInt(0)
			default:
				w.writeError("ERR " + err.Error())
			}
		}
		s.m.recordCmdLatency(p.verb, time.Since(p.start))
		p.h = nil
	}
	s.m.dispatchWait.Record(time.Since(wait0).Nanoseconds())
	sess.pending = sess.pending[:0]
}

// verbOf returns the canonical uppercase verb for a command name. Known
// verbs return interned constants without allocating (the dispatch hot
// path); unknown verbs fall back to an allocated uppercase copy.
func verbOf(b []byte) string {
	var buf [8]byte
	if len(b) > len(buf) {
		return strings.ToUpper(string(b))
	}
	for i, c := range b {
		if 'a' <= c && c <= 'z' {
			c -= 'a' - 'A'
		}
		buf[i] = c
	}
	switch string(buf[:len(b)]) {
	case "GET":
		return "GET"
	case "SET":
		return "SET"
	case "DEL":
		return "DEL"
	case "EXISTS":
		return "EXISTS"
	case "MGET":
		return "MGET"
	case "MSET":
		return "MSET"
	case "SCAN":
		return "SCAN"
	case "PING":
		return "PING"
	case "ECHO":
		return "ECHO"
	case "MULTI":
		return "MULTI"
	case "EXEC":
		return "EXEC"
	case "DISCARD":
		return "DISCARD"
	case "DBSIZE":
		return "DBSIZE"
	case "INFO":
		return "INFO"
	case "COMMAND":
		return "COMMAND"
	case "QUIT":
		return "QUIT"
	}
	return strings.ToUpper(string(b))
}

// copyArgs deep-copies a parsed argument vector. The parser's args live
// in a reused arena and die at the next ReadCommand, so any handler
// that retains them past the current command (the MULTI queue) copies.
func copyArgs(args [][]byte) [][]byte {
	cp := make([][]byte, len(args))
	for i, a := range args {
		cp[i] = append([]byte(nil), a...)
	}
	return cp
}

// dispatch executes one command and writes its reply. It returns true
// when the connection should close (QUIT).
func (s *Server) dispatch(sess *session, w *respWriter, args [][]byte) (quit bool) {
	verb := verbOf(args[0])
	s.countCommand(verb)
	wall0 := time.Now()
	defer func() {
		d := time.Since(wall0).Nanoseconds()
		s.m.wallLat.Record(d)
		s.m.recordCmdLatency(verb, time.Duration(d))
	}()

	// Transaction control verbs run immediately even inside a block.
	switch verb {
	case "MULTI":
		if sess.inMulti {
			w.writeError("ERR MULTI calls can not be nested")
			return false
		}
		sess.inMulti = true
		w.writeSimple("OK")
		return false
	case "EXEC":
		if !sess.inMulti {
			w.writeError("ERR EXEC without MULTI")
			return false
		}
		if sess.txDirty {
			sess.resetTx()
			w.writeError("EXECABORT Transaction discarded because of previous errors.")
			return false
		}
		s.execMulti(sess, w)
		sess.resetTx()
		return false
	case "DISCARD":
		if !sess.inMulti {
			w.writeError("ERR DISCARD without MULTI")
			return false
		}
		sess.resetTx()
		w.writeSimple("OK")
		return false
	case "QUIT":
		w.writeSimple("OK")
		return true
	}

	if sess.inMulti {
		// Queue-time validation, Redis-style: an unknown verb or bad
		// arity replies immediately and poisons the block, so EXEC can
		// trust every queued frame (the SET/GET coalescer indexes args
		// without re-checking).
		if msg := queueCheck(verb, len(args)); msg != "" {
			sess.txDirty = true
			w.writeError(msg)
			return false
		}
		if len(sess.queued) >= s.cfg.MaxMultiQueued {
			sess.txDirty = true
			w.writeError(fmt.Sprintf("ERR MULTI queue exceeds %d commands", s.cfg.MaxMultiQueued))
			return false
		}
		// args live in the parser's reused arena and are invalidated by
		// the next read, so queueing until EXEC requires a deep copy
		// (asserted by TestMultiQueueCopiesArgs).
		sess.queued = append(sess.queued, queuedCmd{verb: verb, args: copyArgs(args)})
		w.writeSimple("QUEUED")
		return false
	}

	switch verb {
	case "GET", "SET", "DEL", "EXISTS", "MGET", "MSET", "SCAN":
		slot := sess.slot
		s.lockSlot(slot)
		th := slot.th
		v0 := th.Clk.Now()
		s.execStore(sess, th, w, verb, args)
		s.m.virtLat.Record(th.Clk.Now() - v0)
		slot.mu.Unlock()
	default:
		s.execSimple(w, verb, args)
	}
	return false
}

// lockSlot acquires a thread slot's mutex, recording the wall time spent
// blocked behind other connections as server.dispatch_wait.
func (s *Server) lockSlot(slot *lockedThread) {
	if slot.mu.TryLock() {
		return
	}
	t0 := time.Now()
	slot.mu.Lock()
	s.m.dispatchWait.Record(time.Since(t0).Nanoseconds())
}

// queueCheck validates a verb and its arity at MULTI queue time. It
// returns the error reply for a rejected command, or "" to queue it.
func queueCheck(verb string, n int) string {
	switch verb {
	case "PING", "COMMAND", "INFO", "DBSIZE":
		return ""
	case "ECHO", "GET":
		if n != 2 {
			return "ERR wrong number of arguments for '" + strings.ToLower(verb) + "' command"
		}
	case "SET":
		if n != 3 {
			return "ERR wrong number of arguments for 'set' command"
		}
	case "DEL", "EXISTS", "MGET":
		if n < 2 {
			return "ERR wrong number of arguments for '" + strings.ToLower(verb) + "' command"
		}
	case "MSET":
		if n < 3 || n%2 != 1 {
			return "ERR wrong number of arguments for 'mset' command"
		}
	case "SCAN":
		if n != 3 {
			return "ERR usage: SCAN <start-key> <count>"
		}
	default:
		return fmt.Sprintf("ERR unknown command '%s'", strings.ToLower(verb))
	}
	return ""
}

// execMulti runs a validated MULTI block. The thread slot is held for
// the whole block — commands from other connections pinned to the same
// store thread cannot interleave — and adjacent same-verb commands
// coalesce into the store's batch operations: a run of SETs becomes one
// PutBatch (one epoch entry, one publish window) and a run of GETs one
// MultiGet (merged VS read extents).
func (s *Server) execMulti(sess *session, w *respWriter) {
	s.m.multiExec.Inc()
	q := sess.queued
	w.writeArrayHeader(len(q))
	slot := sess.slot
	s.lockSlot(slot)
	defer slot.mu.Unlock()
	th := slot.th
	v0 := th.Clk.Now()
	defer func() {
		s.m.virtLat.Record(th.Clk.Now() - v0)
	}()

	for i := 0; i < len(q); {
		switch q[i].verb {
		case "SET":
			j := i
			sess.kvs = sess.kvs[:0]
			for j < len(q) && q[j].verb == "SET" {
				sess.kvs = append(sess.kvs, core.KV{Key: q[j].args[1], Value: q[j].args[2]})
				j++
			}
			if err := th.PutBatch(sess.kvs); err != nil {
				// PutBatch applies a prefix before failing and does not
				// report its length, so the whole run reports the error.
				for k := i; k < j; k++ {
					w.writeError("ERR " + err.Error())
				}
			} else {
				for k := i; k < j; k++ {
					w.writeSimple("OK")
				}
			}
			i = j
		case "GET":
			j := i
			sess.keys = sess.keys[:0]
			for j < len(q) && q[j].verb == "GET" {
				sess.keys = append(sess.keys, q[j].args[1])
				j++
			}
			vals, err := th.MultiGetInto(sess.keys, sess.vals[:0])
			sess.vals = vals
			if err != nil {
				for k := i; k < j; k++ {
					w.writeError("ERR " + err.Error())
				}
			} else {
				for _, v := range vals {
					if v == nil {
						w.writeNil()
					} else {
						w.writeBulk(v)
					}
				}
			}
			i = j
		case "DEL", "EXISTS", "MGET", "MSET", "SCAN":
			s.execStore(sess, th, w, q[i].verb, q[i].args)
			i++
		default:
			s.execSimple(w, q[i].verb, q[i].args)
			i++
		}
	}
	sess.resetScratch()
}

// execSimple handles the commands that do not touch a store thread.
func (s *Server) execSimple(w *respWriter, verb string, args [][]byte) {
	switch verb {
	case "PING":
		if len(args) > 1 {
			w.writeBulk(args[1])
		} else {
			w.writeSimple("PONG")
		}
	case "ECHO":
		if len(args) != 2 {
			w.writeError("ERR wrong number of arguments for 'echo' command")
			return
		}
		w.writeBulk(args[1])
	case "COMMAND":
		// Stock clients probe COMMAND on connect; an empty array keeps
		// them happy without a command table.
		w.writeArrayHeader(0)
	case "INFO":
		w.writeBulk([]byte(s.info()))
	case "DBSIZE":
		w.writeInt(int64(s.store.Len()))
	default:
		w.writeError(fmt.Sprintf("ERR unknown command '%s'", strings.ToLower(verb)))
	}
}

// execStore runs one store-backed command on th. The caller holds the
// slot mutex and records virtual-time latency around the call.
func (s *Server) execStore(sess *session, th *shard.Thread, w *respWriter, verb string, args [][]byte) {
	switch verb {
	case "GET":
		if len(args) != 2 {
			w.writeError("ERR wrong number of arguments for 'get' command")
			return
		}
		val, err := th.Get(args[1])
		switch {
		case err == nil:
			w.writeBulk(val)
		case errors.Is(err, core.ErrNotFound):
			w.writeNil()
		default:
			w.writeError("ERR " + err.Error())
		}
	case "SET":
		if len(args) != 3 {
			w.writeError("ERR wrong number of arguments for 'set' command")
			return
		}
		if err := th.Put(args[1], args[2]); err != nil {
			w.writeError("ERR " + err.Error())
			return
		}
		w.writeSimple("OK")
	case "DEL":
		if len(args) < 2 {
			w.writeError("ERR wrong number of arguments for 'del' command")
			return
		}
		var n int64
		for _, k := range args[1:] {
			err := th.Delete(k)
			if err == nil {
				n++
			} else if !errors.Is(err, core.ErrNotFound) {
				w.writeError("ERR " + err.Error())
				return
			}
		}
		w.writeInt(n)
	case "EXISTS":
		if len(args) < 2 {
			w.writeError("ERR wrong number of arguments for 'exists' command")
			return
		}
		var n int64
		for _, k := range args[1:] {
			if _, err := th.Get(k); err == nil {
				n++
			} else if !errors.Is(err, core.ErrNotFound) {
				w.writeError("ERR " + err.Error())
				return
			}
		}
		w.writeInt(n)
	case "MGET":
		if len(args) < 2 {
			w.writeError("ERR wrong number of arguments for 'mget' command")
			return
		}
		// One MultiGet instead of a Get per key: one epoch entry, VS
		// reads merged into extents. Values land in the connection's
		// scratch slice, so steady-state MGET allocates nothing per key
		// beyond the value copies themselves.
		vals, err := th.MultiGetInto(args[1:], sess.vals[:0])
		sess.vals = vals
		if err != nil {
			w.writeError("ERR " + err.Error())
			return
		}
		w.writeArrayHeader(len(vals))
		for _, v := range vals {
			if v == nil {
				w.writeNil()
			} else {
				w.writeBulk(v)
			}
		}
		sess.resetScratch()
	case "MSET":
		if len(args) < 3 || len(args)%2 != 1 {
			w.writeError("ERR wrong number of arguments for 'mset' command")
			return
		}
		sess.kvs = sess.kvs[:0]
		for i := 1; i < len(args); i += 2 {
			sess.kvs = append(sess.kvs, core.KV{Key: args[i], Value: args[i+1]})
		}
		err := th.PutBatch(sess.kvs)
		sess.resetScratch()
		if err != nil {
			w.writeError("ERR " + err.Error())
			return
		}
		w.writeSimple("OK")
	case "SCAN":
		if len(args) != 3 {
			w.writeError("ERR usage: SCAN <start-key> <count>")
			return
		}
		count, err := strconv.Atoi(string(args[2]))
		if err != nil || count < 0 {
			w.writeError("ERR count must be a non-negative integer")
			return
		}
		var kvs []core.KV
		scanErr := th.Scan(args[1], count, func(kv core.KV) bool {
			kvs = append(kvs, kv)
			return true
		})
		if scanErr != nil {
			w.writeError("ERR " + scanErr.Error())
			return
		}
		w.writeArrayHeader(2 * len(kvs))
		for _, kv := range kvs {
			w.writeBulk(kv.Key)
			w.writeBulk(kv.Value)
		}
	}
}

// info renders the INFO reply: redis-style "name:value" lines backed by
// the store's observability snapshot, so everything in METRICS.md —
// including the server.* family — is visible over the wire.
func (s *Server) info() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# server\r\n")
	fmt.Fprintf(&b, "proto:RESP2\r\n")
	fmt.Fprintf(&b, "store_threads:%d\r\n", len(s.threads))
	fmt.Fprintf(&b, "connected_clients:%d\r\n", s.m.connsCur.Load())
	fmt.Fprintf(&b, "draining:%v\r\n", s.draining.Load())
	fmt.Fprintf(&b, "# keyspace\r\n")
	fmt.Fprintf(&b, "keys:%d\r\n", s.store.Len())
	fmt.Fprintf(&b, "# metrics\r\n")
	for _, m := range s.store.Metrics().Metrics {
		id := m.Name
		if len(m.Labels) > 0 {
			var parts []string
			for k, v := range m.Labels {
				parts = append(parts, k+"="+v)
			}
			sort.Strings(parts)
			id += "{" + strings.Join(parts, ",") + "}"
		}
		if m.Hist != nil {
			fmt.Fprintf(&b, "%s:count=%d,mean=%.1f,p50=%d,p99=%d,max=%d\r\n",
				id, m.Hist.Count, m.Hist.Mean, m.Hist.P50, m.Hist.P99, m.Hist.Max)
			continue
		}
		if m.Value == float64(int64(m.Value)) {
			fmt.Fprintf(&b, "%s:%d\r\n", id, int64(m.Value))
		} else {
			fmt.Fprintf(&b, "%s:%.4f\r\n", id, m.Value)
		}
	}
	return b.String()
}
