package server_test

import (
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/server"
	"repro/internal/server/respclient"
	"repro/internal/shard"
)

// start opens a small store, attaches a server, and serves on an
// ephemeral loopback port. Cleanup drains the server and closes the
// store.
func start(t *testing.T, cfg server.Config) (*shard.Store, string) {
	t.Helper()
	store, err := shard.Open(core.Options{NumThreads: 4})
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(store, cfg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	t.Cleanup(func() {
		if err := srv.Shutdown(5 * time.Second); err != nil {
			t.Errorf("shutdown: %v", err)
		}
		if err := <-serveErr; err != nil {
			t.Errorf("serve: %v", err)
		}
		store.Close()
	})
	return store, ln.Addr().String()
}

func dial(t *testing.T, addr string) *respclient.Client {
	t.Helper()
	c, err := respclient.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func TestBasicCommands(t *testing.T) {
	_, addr := start(t, server.Config{})
	c := dial(t, addr)

	if r, err := c.Do("PING"); err != nil || r.Str != "PONG" {
		t.Fatalf("PING: %+v, %v", r, err)
	}
	if r, err := c.Do("ECHO", "hello"); err != nil || r.Str != "hello" {
		t.Fatalf("ECHO: %+v, %v", r, err)
	}
	if r, err := c.Do("SET", "k", "v1"); err != nil || r.Str != "OK" {
		t.Fatalf("SET: %+v, %v", r, err)
	}
	if r, err := c.Do("GET", "k"); err != nil || r.Str != "v1" {
		t.Fatalf("GET: %+v, %v", r, err)
	}
	if r, err := c.Do("GET", "missing"); err != nil || !r.Nil {
		t.Fatalf("GET missing: %+v, %v", r, err)
	}
	if r, err := c.Do("EXISTS", "k", "missing"); err != nil || r.Int != 1 {
		t.Fatalf("EXISTS: %+v, %v", r, err)
	}
	if r, err := c.Do("DEL", "k", "missing"); err != nil || r.Int != 1 {
		t.Fatalf("DEL: %+v, %v", r, err)
	}
	if r, err := c.Do("GET", "k"); err != nil || !r.Nil {
		t.Fatalf("GET after DEL: %+v, %v", r, err)
	}
	if r, err := c.Do("DBSIZE"); err != nil || r.Int != 0 {
		t.Fatalf("DBSIZE: %+v, %v", r, err)
	}
	if _, err := c.Do("NOSUCH", "x"); err == nil || !strings.Contains(err.Error(), "unknown command") {
		t.Fatalf("unknown command: %v", err)
	}
	if _, err := c.Do("GET"); err == nil || !strings.Contains(err.Error(), "wrong number") {
		t.Fatalf("arity error: %v", err)
	}
}

func TestMultiKeyAndScan(t *testing.T) {
	_, addr := start(t, server.Config{})
	c := dial(t, addr)

	if r, err := c.Do("MSET", "a", "1", "b", "2", "c", "3"); err != nil || r.Str != "OK" {
		t.Fatalf("MSET: %+v, %v", r, err)
	}
	r, err := c.Do("MGET", "a", "nope", "c")
	if err != nil || len(r.Elems) != 3 {
		t.Fatalf("MGET: %+v, %v", r, err)
	}
	if r.Elems[0].Str != "1" || !r.Elems[1].Nil || r.Elems[2].Str != "3" {
		t.Fatalf("MGET values: %+v", r.Elems)
	}
	r, err = c.Do("SCAN", "a", "10")
	if err != nil || len(r.Elems) != 6 {
		t.Fatalf("SCAN: %+v, %v", r, err)
	}
	got := map[string]string{}
	for i := 0; i < len(r.Elems); i += 2 {
		got[r.Elems[i].Str] = r.Elems[i+1].Str
	}
	want := map[string]string{"a": "1", "b": "2", "c": "3"}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("SCAN results %v, want %v", got, want)
		}
	}
	// SCAN from a midpoint respects key order.
	r, err = c.Do("SCAN", "b", "1")
	if err != nil || len(r.Elems) != 2 || r.Elems[0].Str != "b" {
		t.Fatalf("SCAN b 1: %+v, %v", r, err)
	}
}

// TestEndToEndPipelinedWorkload is the acceptance test: ≥4 concurrent
// connections each drive a pipelined mixed GET/SET/DEL workload, every
// reply is verified, final store contents are checked, and the server.*
// metrics must show up both in Store.Metrics() and over the wire in
// INFO.
func TestEndToEndPipelinedWorkload(t *testing.T) {
	store, addr := start(t, server.Config{})

	const (
		conns  = 6
		rounds = 50
	)
	var wg sync.WaitGroup
	errs := make(chan error, conns)
	for ci := 0; ci < conns; ci++ {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			c, err := respclient.Dial(addr)
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			for round := 0; round < rounds; round++ {
				// One pipeline: SET a batch, read it back, delete the odd
				// keys, re-check one deleted key.
				var sent int
				for i := 0; i < 4; i++ {
					k := fmt.Sprintf("c%d-r%d-k%d", ci, round, i)
					c.Send("SET", k, fmt.Sprintf("v%d-%d", round, i))
					c.Send("GET", k)
					sent += 2
				}
				for i := 1; i < 4; i += 2 {
					c.Send("DEL", fmt.Sprintf("c%d-r%d-k%d", ci, round, i))
					sent++
				}
				c.Send("GET", fmt.Sprintf("c%d-r%d-k1", ci, round))
				sent++
				if err := c.Flush(); err != nil {
					errs <- err
					return
				}
				for i := 0; i < sent; i++ {
					r, err := c.Receive()
					if err != nil {
						errs <- fmt.Errorf("conn %d round %d reply %d: %w", ci, round, i, err)
						return
					}
					if err := r.Err(); err != nil {
						errs <- fmt.Errorf("conn %d round %d reply %d: %w", ci, round, i, err)
						return
					}
					switch {
					case i < 8 && i%2 == 0: // SET
						if r.Str != "OK" {
							errs <- fmt.Errorf("SET reply %+v", r)
							return
						}
					case i < 8: // GET of a just-set key
						want := fmt.Sprintf("v%d-%d", round, i/2)
						if r.Str != want {
							errs <- fmt.Errorf("GET = %q, want %q", r.Str, want)
							return
						}
					case i < 10: // DEL
						if r.Int != 1 {
							errs <- fmt.Errorf("DEL reply %+v", r)
							return
						}
					default: // GET of a deleted key
						if !r.Nil {
							errs <- fmt.Errorf("deleted key still present: %+v", r)
							return
						}
					}
				}
			}
		}(ci)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// Final contents: per connection and round, keys 0 and 2 survive,
	// keys 1 and 3 were deleted.
	c := dial(t, addr)
	if r, err := c.Do("DBSIZE"); err != nil || r.Int != conns*rounds*2 {
		t.Fatalf("DBSIZE = %+v (%v), want %d", r, err, conns*rounds*2)
	}
	for ci := 0; ci < conns; ci++ {
		for _, i := range []int{0, 2} {
			k := fmt.Sprintf("c%d-r%d-k%d", ci, rounds-1, i)
			r, err := c.Do("GET", k)
			if err != nil || r.Str != fmt.Sprintf("v%d-%d", rounds-1, i) {
				t.Fatalf("final GET %s: %+v, %v", k, r, err)
			}
		}
	}

	// server.* metrics in the store snapshot.
	snap := store.Metrics()
	if v, ok := snap.Value("server.connections_total"); !ok || v < conns {
		t.Fatalf("server.connections_total = %v ok=%v, want >= %d", v, ok, conns)
	}
	if got := snap.Sum("server.commands"); got < conns*rounds*11 {
		t.Fatalf("server.commands = %v, want >= %d", got, conns*rounds*11)
	}
	if m, ok := snap.Get("server.commands", map[string]string{"verb": "SET"}); !ok || m.Value < conns*rounds*4 {
		t.Fatalf("server.commands{verb=SET} = %+v ok=%v", m, ok)
	}
	for _, name := range []string{"server.bytes_in", "server.bytes_out"} {
		if v, ok := snap.Value(name); !ok || v <= 0 {
			t.Fatalf("%s = %v ok=%v, want > 0", name, v, ok)
		}
	}
	// MGET takes the locked synchronous path, which is what feeds the
	// virtual-time histogram (async verbs are timed by cmd_latency).
	if r, err := c.Do("MGET", fmt.Sprintf("c0-r%d-k0", rounds-1), "nope"); err != nil || len(r.Elems) != 2 {
		t.Fatalf("MGET: %+v, %v", r, err)
	}
	snap = store.Metrics()
	if m, ok := snap.Get("server.cmd_virtual_ns", nil); !ok || m.Hist == nil || m.Hist.Count == 0 {
		t.Fatalf("server.cmd_virtual_ns missing or empty: %+v ok=%v", m, ok)
	}
	if m, ok := snap.Get("server.cmd_wall_ns", nil); !ok || m.Hist == nil || m.Hist.Count == 0 {
		t.Fatalf("server.cmd_wall_ns missing or empty: %+v ok=%v", m, ok)
	}
	// Every wire command lands in exactly one cmd_latency class; the
	// GET/SET/DEL workload must populate read and write.
	for _, class := range []string{"read", "write"} {
		m, ok := snap.Get("server.cmd_latency", map[string]string{"class": class})
		if !ok || m.Hist == nil || m.Hist.Count == 0 {
			t.Fatalf("server.cmd_latency{class=%s} missing or empty: %+v ok=%v", class, m, ok)
		}
	}
	if m, ok := snap.Get("server.dispatch_wait", nil); !ok || m.Hist == nil || m.Hist.Count == 0 {
		t.Fatalf("server.dispatch_wait missing or empty: %+v ok=%v", m, ok)
	}

	// The same metrics over the wire via INFO.
	r, err := c.Do("INFO")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"server.connections_total", "server.commands{verb=SET}",
		"server.bytes_in", "server.cmd_virtual_ns", "core.ops{op=put}"} {
		if !strings.Contains(r.Str, want) {
			t.Fatalf("INFO output missing %q:\n%s", want, r.Str)
		}
	}
}

// A malformed frame gets one error reply, closes the connection, and
// bumps server.parse_errors.
func TestProtocolErrorClosesConnection(t *testing.T) {
	store, addr := start(t, server.Config{})
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte("*1\r\n$99999999999\r\n")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4096)
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	n, err := conn.Read(buf)
	if err != nil {
		t.Fatalf("no error reply: %v", err)
	}
	if !strings.HasPrefix(string(buf[:n]), "-ERR protocol error") {
		t.Fatalf("reply %q", buf[:n])
	}
	// The server closes after the error reply.
	if _, err := conn.Read(buf); err == nil {
		t.Fatal("connection still open after protocol error")
	}
	if v, ok := store.Metrics().Value("server.parse_errors"); !ok || v != 1 {
		t.Fatalf("server.parse_errors = %v ok=%v, want 1", v, ok)
	}
}

func TestMaxConnsRejectsExcess(t *testing.T) {
	store, addr := start(t, server.Config{MaxConns: 2})
	c1, c2 := dial(t, addr), dial(t, addr)
	if _, err := c1.Do("PING"); err != nil {
		t.Fatal(err)
	}
	if _, err := c2.Do("PING"); err != nil {
		t.Fatal(err)
	}
	c3, err := respclient.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c3.Close()
	if _, err := c3.Do("PING"); err == nil || !strings.Contains(err.Error(), "max connections") {
		t.Fatalf("over-limit connection: %v", err)
	}
	if v, ok := store.Metrics().Value("server.connections_rejected"); !ok || v != 1 {
		t.Fatalf("server.connections_rejected = %v ok=%v, want 1", v, ok)
	}
}

func TestIdleTimeoutClosesConnection(t *testing.T) {
	_, addr := start(t, server.Config{IdleTimeout: 50 * time.Millisecond})
	c := dial(t, addr)
	if _, err := c.Do("PING"); err != nil {
		t.Fatal(err)
	}
	time.Sleep(200 * time.Millisecond)
	if _, err := c.Do("PING"); err == nil {
		t.Fatal("idle connection not closed")
	}
}

// Shutdown must finish the already-buffered pipeline before closing
// (drain), and reject connections arriving during the drain.
func TestGracefulShutdownDrainsPipeline(t *testing.T) {
	store, err := shard.Open(core.Options{NumThreads: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	srv := server.New(store, server.Config{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	c, err := respclient.Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	const n = 100
	for i := 0; i < n; i++ {
		c.Send("SET", fmt.Sprintf("k%d", i), "v")
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := srv.Shutdown(5 * time.Second); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if err := <-serveErr; err != nil {
		t.Fatalf("serve: %v", err)
	}
	// Every pipelined SET must have been executed and answered.
	var acked int
	for i := 0; i < n; i++ {
		r, err := c.Receive()
		if err != nil {
			break
		}
		if r.Str == "OK" {
			acked++
		}
	}
	if acked != n {
		t.Fatalf("drained %d of %d pipelined commands", acked, n)
	}
	if store.Len() != n {
		t.Fatalf("store has %d keys, want %d", store.Len(), n)
	}
}

// TestShardedCrossShardCommands runs the multi-key surface against a
// 4-shard store: MSET/MGET fan out across shards, SCAN k-way merges the
// per-shard streams, and MULTI/EXEC queues execute atomically per
// connection — all transparently through the router.
func TestShardedCrossShardCommands(t *testing.T) {
	store, err := shard.Open(core.Options{NumThreads: 4, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(store, server.Config{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	t.Cleanup(func() {
		if err := srv.Shutdown(5 * time.Second); err != nil {
			t.Errorf("shutdown: %v", err)
		}
		if err := <-serveErr; err != nil {
			t.Errorf("serve: %v", err)
		}
		store.Close()
	})
	c := dial(t, ln.Addr().String())

	// MSET wide enough that jump placement scatters it over every shard.
	const n = 64
	args := make([]string, 0, 1+2*n)
	args = append(args, "MSET")
	for i := 0; i < n; i++ {
		args = append(args, fmt.Sprintf("sk%04d", i), fmt.Sprintf("sv%04d", i))
	}
	if r, err := c.Do(args...); err != nil || r.Str != "OK" {
		t.Fatalf("MSET: %+v, %v", r, err)
	}
	touched := 0
	for j := 0; j < store.NumShards(); j++ {
		if store.Shard(j).Len() > 0 {
			touched++
		}
	}
	if touched < 2 {
		t.Fatalf("MSET of %d keys landed on %d shards — not a cross-shard test", n, touched)
	}

	// MGET in input order with interleaved misses.
	mget := []string{"MGET"}
	for i := 0; i < n; i += 2 {
		mget = append(mget, fmt.Sprintf("sk%04d", i), fmt.Sprintf("missing%04d", i))
	}
	r, err := c.Do(mget...)
	if err != nil || len(r.Elems) != n {
		t.Fatalf("MGET: %+v, %v", r, err)
	}
	for i := 0; i < n; i += 2 {
		if got := r.Elems[i].Str; got != fmt.Sprintf("sv%04d", i) {
			t.Fatalf("MGET[%d] = %q, want sv%04d", i, got, i)
		}
		if !r.Elems[i+1].Nil {
			t.Fatalf("MGET[%d] = %+v, want nil", i+1, r.Elems[i+1])
		}
	}

	// SCAN must return the k-way-merged global key order.
	r, err = c.Do("SCAN", "sk", fmt.Sprint(n))
	if err != nil || len(r.Elems) != 2*n {
		t.Fatalf("SCAN: %d elems, %v", len(r.Elems), err)
	}
	for i := 0; i < n; i++ {
		if got := r.Elems[2*i].Str; got != fmt.Sprintf("sk%04d", i) {
			t.Fatalf("SCAN key[%d] = %q, want sk%04d", i, got, i)
		}
	}

	// MULTI/EXEC batching SETs and a cross-shard MGET.
	if r, err := c.Do("MULTI"); err != nil || r.Str != "OK" {
		t.Fatalf("MULTI: %+v, %v", r, err)
	}
	for i := 0; i < 8; i++ {
		if r, err := c.Do("SET", fmt.Sprintf("tx%02d", i), fmt.Sprintf("txv%02d", i)); err != nil || r.Str != "QUEUED" {
			t.Fatalf("queued SET: %+v, %v", r, err)
		}
	}
	if r, err := c.Do("MGET", "tx00", "tx07", "sk0001"); err != nil || r.Str != "QUEUED" {
		t.Fatalf("queued MGET: %+v, %v", r, err)
	}
	r, err = c.Do("EXEC")
	if err != nil || len(r.Elems) != 9 {
		t.Fatalf("EXEC: %+v, %v", r, err)
	}
	for i := 0; i < 8; i++ {
		if r.Elems[i].Str != "OK" {
			t.Fatalf("EXEC[%d] = %+v", i, r.Elems[i])
		}
	}
	last := r.Elems[8]
	if len(last.Elems) != 3 || last.Elems[0].Str != "txv00" ||
		last.Elems[1].Str != "txv07" || last.Elems[2].Str != "sv0001" {
		t.Fatalf("EXEC MGET = %+v", last.Elems)
	}

	// Router metrics must record the fan-out.
	snap := store.Metrics()
	if got := snap.Sum("shard.cross_batches"); got < 1 {
		t.Fatalf("shard.cross_batches = %v, want >= 1", got)
	}
	if got := snap.Sum("shard.scan_merges"); got < 1 {
		t.Fatalf("shard.scan_merges = %v, want >= 1", got)
	}
}
