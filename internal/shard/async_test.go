package shard

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/core"
)

// TestShardAsyncFanout drives async submissions whose keys spread over
// every shard through one router handle: handles complete, values land
// on their owning shards, counters sum across shards, and Flush folds
// the slowest shard's async timeline into the router thread's clock.
func TestShardAsyncFanout(t *testing.T) {
	s := small(t, 4, nil)
	th := s.Thread(0)
	const ops = 400
	var hs []*core.Handle
	for i := 0; i < ops; i++ {
		hs = append(hs, th.PutAsync([]byte(fmt.Sprintf("k%05d", i)), []byte(fmt.Sprintf("v%05d", i))))
	}
	th.Flush()
	for i, h := range hs {
		if err := h.Wait(); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
	}
	// Every shard should have seen a slice of the stream.
	for j := 0; j < s.NumShards(); j++ {
		if n := s.Shard(j).Stats().AsyncPuts; n == 0 {
			t.Fatalf("shard %d saw no async puts", j)
		}
	}
	if n := s.Stats().AsyncPuts; n != ops {
		t.Fatalf("summed AsyncPuts = %d, want %d", n, ops)
	}
	// Flush folded the makespan: the router clock covers every shard's
	// async timeline.
	for j := 0; j < s.NumShards(); j++ {
		if now := s.Shard(j).Thread(0).AsyncNow(); th.Clk.Now() < now {
			t.Fatalf("router clock %d behind shard %d async timeline %d", th.Clk.Now(), j, now)
		}
	}
	// Reads (async and sync) observe the completed writes.
	for i := 0; i < ops; i += 37 {
		key := []byte(fmt.Sprintf("k%05d", i))
		want := []byte(fmt.Sprintf("v%05d", i))
		if v, err := th.GetAsync(key).Value(); err != nil || !bytes.Equal(v, want) {
			t.Fatalf("GetAsync(%s) = %q, %v", key, v, err)
		}
		if v, err := th.Get(key); err != nil || !bytes.Equal(v, want) {
			t.Fatalf("Get(%s) = %q, %v", key, v, err)
		}
	}
	if err := th.DeleteAsync([]byte("k00000")).Wait(); err != nil {
		t.Fatal(err)
	}
	if _, err := th.GetAsync([]byte("k00000")).Value(); err != core.ErrNotFound {
		t.Fatalf("after DeleteAsync: %v, want ErrNotFound", err)
	}
}
