package shard

import (
	"errors"
	"sync"

	"repro/internal/core"
)

// PutBatch partitions kvs by owning shard and applies the per-shard
// sub-batches, in parallel goroutines when more than one shard is
// touched. Each sub-batch goes through core.PutBatch, so the
// one-epoch-enter / one-publish-window amortization holds per shard: a
// batch of B keys touching S shards costs at most S epoch enters.
//
// Ordering and durability: partitioning preserves input order within a
// shard, and duplicate keys hash to the same shard, so the later of two
// duplicate entries still wins. Core's prefix-durability guarantee
// holds per shard only — after a crash, different shards may have
// persisted different prefixes of their sub-batches.
func (t *Thread) PutBatch(kvs []core.KV) error {
	s := t.s
	if len(kvs) == 0 {
		return nil
	}
	s.m.batchPut.Inc()
	if s.rangeMode {
		p := s.placeWriteBatch(kvs)
		defer s.migMu.RUnlock()
		if s.replicas > 1 {
			return t.putBatchReplicated(kvs)
		}
		return t.putBatchRange(p, kvs)
	}
	if s.replicas > 1 {
		return t.putBatchReplicated(kvs)
	}
	if len(s.shards) == 1 {
		s.m.fanout.Record(1)
		err := t.ths[0].PutBatch(kvs)
		t.sync(0)
		return err
	}
	t.touched = t.touched[:0]
	for i := range kvs {
		j := s.ShardOf(kvs[i].Key)
		if len(t.subPut[j]) == 0 {
			t.touched = append(t.touched, j)
		}
		t.subPut[j] = append(t.subPut[j], kvs[i])
	}
	s.m.fanout.Record(int64(len(t.touched)))
	var err error
	if len(t.touched) == 1 {
		// Single-shard batch: stay on the caller's goroutine (the
		// affinity fast path — no spawn, no barrier).
		j := t.touched[0]
		err = t.ths[j].PutBatch(t.subPut[j])
		t.sync(j)
	} else {
		s.m.crossPut.Inc()
		var wg sync.WaitGroup
		for _, j := range t.touched {
			wg.Add(1)
			go func(j int) {
				defer wg.Done()
				t.errs[j] = t.ths[j].PutBatch(t.subPut[j])
			}(j)
		}
		wg.Wait()
		for _, j := range t.touched {
			err = errors.Join(err, t.errs[j])
			t.errs[j] = nil
			t.sync(j)
		}
	}
	for _, j := range t.touched {
		clear(t.subPut[j]) // release caller references
		t.subPut[j] = t.subPut[j][:0]
	}
	return err
}

// putBatchRange is the unreplicated range-mode PutBatch: partitioning
// routes through the placement snapshot (held stable by the caller's
// migMu.RLock), and every entry carries a stamp — one block drawn for
// the whole batch — so migration can enumerate the writes. Duplicate
// keys land on the same shard in input order with increasing stamps, so
// the later entry still wins.
func (t *Thread) putBatchRange(p *placement, kvs []core.KV) error {
	s := t.s
	base := s.stamp.Add(uint64(len(kvs))) - uint64(len(kvs))
	t.touched = t.touched[:0]
	for i := range kvs {
		j := p.shardFor(s, kvs[i].Key)
		if len(t.subPut[j]) == 0 {
			t.touched = append(t.touched, j)
		}
		t.subPut[j] = append(t.subPut[j], kvs[i])
		t.subTS[j] = append(t.subTS[j], base+1+uint64(i))
	}
	s.m.fanout.Record(int64(len(t.touched)))
	var err error
	if len(t.touched) == 1 {
		j := t.touched[0]
		err = t.ths[j].PutBatchTS(t.subPut[j], t.subTS[j])
		t.sync(j)
	} else {
		s.m.crossPut.Inc()
		var wg sync.WaitGroup
		for _, j := range t.touched {
			wg.Add(1)
			go func(j int) {
				defer wg.Done()
				t.errs[j] = t.ths[j].PutBatchTS(t.subPut[j], t.subTS[j])
			}(j)
		}
		wg.Wait()
		for _, j := range t.touched {
			err = errors.Join(err, t.errs[j])
			t.errs[j] = nil
			t.sync(j)
		}
	}
	for _, j := range t.touched {
		clear(t.subPut[j]) // release caller references
		t.subPut[j] = t.subPut[j][:0]
		t.subTS[j] = t.subTS[j][:0]
	}
	return err
}

// MultiGet resolves keys across shards and returns one value per key in
// input order, nil marking a missing key (see core.MultiGet).
func (t *Thread) MultiGet(keys [][]byte) ([][]byte, error) {
	return t.MultiGetInto(keys, make([][]byte, 0, len(keys)))
}

// MultiGetInto is MultiGet appending into vals (one entry per key, nil
// = missing), returning the extended slice. Keys are partitioned by
// shard, the per-shard sub-reads run in parallel goroutines (each a
// single epoch-scoped pass with merged VS read extents on its shard),
// and results scatter back to the input positions — the merged output
// order always matches the key order given, regardless of fan-out.
func (t *Thread) MultiGetInto(keys [][]byte, vals [][]byte) ([][]byte, error) {
	s := t.s
	if s.rangeMode {
		// Reads need only a stable placement snapshot (ShardOf loads it);
		// no dual-window fallback here — the destination set is complete
		// from the flip onward, so owner answers are authoritative.
		s.migMu.RLock()
		defer s.migMu.RUnlock()
	}
	if s.replicas > 1 {
		return t.multiGetReplicated(keys, vals)
	}
	if len(s.shards) == 1 {
		if len(keys) > 0 {
			s.m.batchGet.Inc()
			s.m.fanout.Record(1)
		}
		out, err := t.ths[0].MultiGetInto(keys, vals)
		t.sync(0)
		return out, err
	}
	base := len(vals)
	for range keys {
		vals = append(vals, nil)
	}
	if len(keys) == 0 {
		return vals, nil
	}
	s.m.batchGet.Inc()
	t.touched = t.touched[:0]
	for i, k := range keys {
		j := s.ShardOf(k)
		if len(t.subKeys[j]) == 0 {
			t.touched = append(t.touched, j)
		}
		t.subKeys[j] = append(t.subKeys[j], k)
		t.subIdx[j] = append(t.subIdx[j], i)
	}
	s.m.fanout.Record(int64(len(t.touched)))
	var err error
	if len(t.touched) == 1 {
		j := t.touched[0]
		t.subVals[j], t.errs[j] = t.ths[j].MultiGetInto(t.subKeys[j], t.subVals[j][:0])
		t.sync(j)
	} else {
		s.m.crossGet.Inc()
		var wg sync.WaitGroup
		for _, j := range t.touched {
			wg.Add(1)
			go func(j int) {
				defer wg.Done()
				t.subVals[j], t.errs[j] = t.ths[j].MultiGetInto(t.subKeys[j], t.subVals[j][:0])
			}(j)
		}
		wg.Wait()
		for _, j := range t.touched {
			t.sync(j)
		}
	}
	for _, j := range t.touched {
		err = errors.Join(err, t.errs[j])
		t.errs[j] = nil
		for si, i := range t.subIdx[j] {
			vals[base+i] = t.subVals[j][si]
		}
		clear(t.subKeys[j])
		t.subKeys[j] = t.subKeys[j][:0]
		clear(t.subVals[j])
		t.subVals[j] = t.subVals[j][:0]
		t.subIdx[j] = t.subIdx[j][:0]
	}
	return vals, err
}
