package shard

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
)

// waitUp polls until shard j reports up (auto-repair worker done) or
// the deadline passes. Real time, not virtual: the repair worker runs
// on its own goroutine.
func waitUp(t *testing.T, s *Store, j int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if s.ReplicaState(j) == int(replicaUp) {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("shard %d did not converge to up (state=%d)", j, s.ReplicaState(j))
}

// TestFaultMatrix is the CI replica-kill gate (make fault-smoke): for
// each (shards, replicas) cell, crash a replica in the middle of an
// async write burst, assert no acknowledged write is lost, reads keep
// being served off the survivors, and after recovery anti-entropy
// converges within a bounded number of passes to digest equality.
func TestFaultMatrix(t *testing.T) {
	cells := []struct{ shards, replicas int }{
		{2, 2},
		{3, 2},
		{3, 3},
	}
	for _, c := range cells {
		c := c
		t.Run(fmt.Sprintf("shards=%d,replicas=%d", c.shards, c.replicas), func(t *testing.T) {
			faultMatrixCell(t, c.shards, c.replicas)
		})
	}
}

func faultMatrixCell(t *testing.T, shards, replicas int) {
	s := repl(t, shards, replicas, nil)
	th := s.Thread(0)

	// Seed phase: a settled keyspace all replicas hold.
	const seed = 300
	for i := 0; i < seed; i++ {
		if err := th.Put(key(i), value(i)); err != nil {
			t.Fatal(err)
		}
	}

	// Burst phase: async writes in flight while the victim crashes.
	// Async submission is safe from any goroutine, and Crash() joins
	// each shard's admission loop, so acks are unambiguous: a handle
	// that resolves nil was durably applied on >= 1 live replica.
	const burst = 400
	victim := shards - 1
	type pending struct {
		i int
		h *core.Handle
	}
	hs := make([]pending, 0, burst)
	for i := seed; i < seed+burst; i++ {
		if i == seed+burst/2 {
			s.CrashShard(victim)
		}
		hs = append(hs, pending{i, th.PutAsync(key(i), value(i))})
	}
	var acked []int
	for _, p := range hs {
		if err := p.h.Wait(); err == nil {
			acked = append(acked, p.i)
		}
	}
	if len(acked) < burst/2 {
		t.Fatalf("only %d/%d burst writes acked with one replica down", len(acked), burst)
	}

	// While the victim is down: every acked key (and the whole seed)
	// stays readable via failover.
	readAll := func(when string) {
		for i := 0; i < seed; i++ {
			v, err := th.Get(key(i))
			if err != nil || !bytes.Equal(v, value(i)) {
				t.Fatalf("%s: seed key %d = %q, %v", when, i, v, err)
			}
		}
		for _, i := range acked {
			v, err := th.Get(key(i))
			if err != nil || !bytes.Equal(v, value(i)) {
				t.Fatalf("%s: acked key %d lost: %q, %v", when, i, v, err)
			}
		}
	}
	readAll("victim down")

	// Some deletes while degraded, to exercise tombstone propagation
	// through repair.
	for i := 0; i < 20; i++ {
		if err := th.Delete(key(i)); err != nil {
			t.Fatalf("delete %d while degraded: %v", i, err)
		}
	}

	if _, err := s.RecoverShard(victim); err != nil {
		t.Fatal(err)
	}
	passes := 0
	const passBound = 8
	for ; passes < passBound; passes++ {
		if s.RepairShard(victim).Applied() == 0 {
			break
		}
	}
	if passes >= passBound {
		t.Fatalf("anti-entropy did not converge within %d passes", passBound)
	}
	if s.ReplicaState(victim) != int(replicaUp) {
		t.Fatalf("victim state %d after converged repair", s.ReplicaState(victim))
	}
	if err := s.ConvergenceCheck(); err != nil {
		t.Fatalf("digest divergence after repair (%d passes): %v", passes, err)
	}

	// Post-repair audit: deletes held, acked writes present.
	for i := 0; i < 20; i++ {
		if _, err := th.Get(key(i)); !errors.Is(err, core.ErrNotFound) {
			t.Fatalf("deleted key %d resurrected by repair: %v", i, err)
		}
	}
	for i := 20; i < seed; i++ {
		v, err := th.Get(key(i))
		if err != nil || !bytes.Equal(v, value(i)) {
			t.Fatalf("post-repair: seed key %d = %q, %v", i, v, err)
		}
	}
	for _, i := range acked {
		v, err := th.Get(key(i))
		if err != nil || !bytes.Equal(v, value(i)) {
			t.Fatalf("post-repair: acked key %d lost: %q, %v", i, v, err)
		}
	}
}

// TestReplicaFanoutStress runs in the strict race gate: concurrent
// mixed operations across router threads while a chaos goroutine
// crashes and recovers replicas, with the background auto-repair
// worker enabled. The assertions are liveness and convergence, not
// exact contents — interleaved crashes can legitimately drop unacked
// writes.
func TestReplicaFanoutStress(t *testing.T) {
	const shards, replicas = 3, 2
	s := small(t, shards, func(o *core.Options) {
		o.Replicas = replicas
		o.NumThreads = 4
	})
	const (
		workers = 4
		opsEach = 600
	)
	var failed atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			th := s.Thread(w)
			rng := rand.New(rand.NewSource(int64(w + 1)))
			for i := 0; i < opsEach; i++ {
				k := key(rng.Intn(200))
				switch rng.Intn(10) {
				case 0, 1, 2, 3, 4:
					if err := th.Put(k, value(i)); err != nil {
						failed.Add(1)
					}
				case 5:
					err := th.Delete(k)
					if err != nil && !errors.Is(err, core.ErrNotFound) {
						failed.Add(1)
					}
				case 6:
					_ = th.PutAsync(k, value(i))
				case 7:
					kvs := []core.KV{
						{Key: key(rng.Intn(200)), Value: value(i)},
						{Key: key(rng.Intn(200)), Value: value(i + 1)},
					}
					if err := th.PutBatch(kvs); err != nil {
						failed.Add(1)
					}
				default:
					_, err := th.Get(k)
					if err != nil && !errors.Is(err, core.ErrNotFound) {
						failed.Add(1)
					}
				}
			}
		}(w)
	}

	// Chaos: crash one replica at a time, let auto-repair bring it
	// back, bounded rounds.
	chaosDone := make(chan struct{})
	go func() {
		defer close(chaosDone)
		rng := rand.New(rand.NewSource(42))
		for round := 0; round < 6; round++ {
			victim := rng.Intn(shards)
			if s.ReplicaState(victim) != int(replicaUp) {
				time.Sleep(2 * time.Millisecond)
				continue
			}
			s.CrashShard(victim)
			time.Sleep(2 * time.Millisecond)
			if _, err := s.RecoverShard(victim); err != nil {
				t.Errorf("chaos recover shard %d: %v", victim, err)
				return
			}
			// Wait for the background worker to converge before the
			// next crash (two concurrent downs with R=2 could kill a
			// whole replica set).
			deadline := time.Now().Add(10 * time.Second)
			for s.ReplicaState(victim) != int(replicaUp) && time.Now().Before(deadline) {
				time.Sleep(time.Millisecond)
			}
			if s.ReplicaState(victim) != int(replicaUp) {
				t.Errorf("chaos: shard %d stuck in state %d", victim, s.ReplicaState(victim))
				return
			}
		}
	}()
	wg.Wait()
	<-chaosDone
	if t.Failed() {
		return
	}
	if n := failed.Load(); n != 0 {
		t.Fatalf("%d operations failed despite >=1 live replica per set", n)
	}

	// Quiesce: everything up, one final repair, digests must agree.
	for j := 0; j < shards; j++ {
		waitUp(t, s, j)
	}
	for i := 0; i < maxRepairPasses; i++ {
		if s.Repair().Applied() == 0 {
			break
		}
	}
	if err := s.ConvergenceCheck(); err != nil {
		t.Fatal(err)
	}
}
