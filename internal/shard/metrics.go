package shard

import (
	"strconv"

	"repro/internal/obs"
)

// routerMetrics are the router's own counters — everything a shard's
// core registry cannot see because it happens above the shards.
type routerMetrics struct {
	routedPut, routedGet     *obs.Counter
	routedDelete, routedScan *obs.Counter
	batchPut, batchGet       *obs.Counter
	crossPut, crossGet       *obs.Counter
	scanMerges               *obs.Counter
	fanout                   *obs.Histogram
}

func (s *Store) registerMetrics() {
	r := s.reg
	op := func(v string) map[string]string { return map[string]string{"op": v} }
	s.m.routedPut = r.Counter(obs.Desc{Name: "shard.routed_ops", Help: "single-key ops routed to their owning shard", Unit: "ops", Labels: op("put")})
	s.m.routedGet = r.Counter(obs.Desc{Name: "shard.routed_ops", Help: "single-key ops routed to their owning shard", Unit: "ops", Labels: op("get")})
	s.m.routedDelete = r.Counter(obs.Desc{Name: "shard.routed_ops", Help: "single-key ops routed to their owning shard", Unit: "ops", Labels: op("delete")})
	s.m.routedScan = r.Counter(obs.Desc{Name: "shard.routed_ops", Help: "single-key ops routed to their owning shard", Unit: "ops", Labels: op("scan")})
	s.m.batchPut = r.Counter(obs.Desc{Name: "shard.batch_ops", Help: "batches seen by the router", Unit: "ops", Labels: op("put")})
	s.m.batchGet = r.Counter(obs.Desc{Name: "shard.batch_ops", Help: "batches seen by the router", Unit: "ops", Labels: op("get")})
	s.m.crossPut = r.Counter(obs.Desc{Name: "shard.cross_batches", Help: "batches fanned out to more than one shard", Unit: "ops", Labels: op("put")})
	s.m.crossGet = r.Counter(obs.Desc{Name: "shard.cross_batches", Help: "batches fanned out to more than one shard", Unit: "ops", Labels: op("get")})
	s.m.scanMerges = r.Counter(obs.Desc{Name: "shard.scan_merges", Help: "scans answered by a k-way merge over shards", Unit: "ops"})
	s.m.fanout = r.Histogram(obs.Desc{Name: "shard.batch_fanout", Help: "shards touched per batch", Unit: "shards"})
	r.GaugeFunc(obs.Desc{Name: "shard.count", Help: "number of shards", Unit: "shards"},
		func() float64 { return float64(len(s.shards)) })
	for i := range s.shards {
		cs := s.shards[i]
		r.GaugeFunc(obs.Desc{Name: "shard.keys", Help: "live keys on one shard", Unit: "keys",
			Labels: map[string]string{"shard": strconv.Itoa(i)}},
			func() float64 { return float64(cs.Len()) })
	}
	r.GaugeFunc(obs.Desc{Name: "shard.imbalance", Help: "max/mean live keys across shards (1.0 = perfectly balanced, 0 = empty)", Unit: "ratio"},
		func() float64 {
			var total, max int
			for _, cs := range s.shards {
				n := cs.Len()
				total += n
				if n > max {
					max = n
				}
			}
			if total == 0 {
				return 0
			}
			mean := float64(total) / float64(len(s.shards))
			return float64(max) / mean
		})
}

// Metrics merges the router's own snapshot with every shard's. With one
// shard the core series pass through untouched (so existing unique-name
// lookups keep working); with several, each core series gains a
// {shard=i} label and store-wide values are obtained with Snapshot.Sum.
// Empty when Options.DisableMetrics.
func (s *Store) Metrics() obs.Snapshot {
	if s.reg == nil {
		return obs.Snapshot{}
	}
	snap := s.reg.Snapshot()
	if len(s.shards) == 1 {
		snap.Metrics = append(snap.Metrics, s.shards[0].Metrics().Metrics...)
	} else {
		for i, cs := range s.shards {
			lab := strconv.Itoa(i)
			for _, m := range cs.Metrics().Metrics {
				ls := make(map[string]string, len(m.Labels)+1)
				for k, v := range m.Labels {
					ls[k] = v
				}
				ls["shard"] = lab
				m.Labels = ls
				snap.Metrics = append(snap.Metrics, m)
			}
		}
	}
	snap.Sort()
	return snap
}

// MetricsRegistry returns the router-level registry (nil when metrics
// are disabled) — the home for front-end metrics such as the RESP
// server's, which are store-wide rather than per-shard.
func (s *Store) MetricsRegistry() *obs.Registry { return s.reg }
