package shard

import (
	"strconv"

	"repro/internal/obs"
)

// routerMetrics are the router's own counters — everything a shard's
// core registry cannot see because it happens above the shards.
type routerMetrics struct {
	routedPut, routedGet     *obs.Counter
	routedDelete, routedScan *obs.Counter
	batchPut, batchGet       *obs.Counter
	crossPut, crossGet       *obs.Counter
	scanMerges               *obs.Counter
	fanout                   *obs.Histogram

	// Range placement + migration (registered only when Placement is
	// "range", so hash-mode exports stay exactly what they were).
	rangeScans       *obs.Counter
	migSplits        *obs.Counter
	migRanges        *obs.Counter
	migKeysStreamed  *obs.Counter
	migTombsStreamed *obs.Counter
	migAborts        *obs.Counter
	migPurged        *obs.Counter
	migFrozenWaits   *obs.Counter
	migDualReads     *obs.Counter

	// Replication (registered only when Replicas > 1, so the
	// single-replica export stays exactly what it was).
	replicaPut, replicaDelete *obs.Counter
	replicaSkips              *obs.Counter
	replicaErrors             *obs.Counter
	replicaFallbacks          *obs.Counter
	replicaReads              []*obs.Counter // by position in the replica set
	repairPasses              *obs.Counter
	repairKeysPulled          *obs.Counter
	repairTombsPulled         *obs.Counter
	repairTombsDiscarded      *obs.Counter
	repairConverged           *obs.Counter
}

func (s *Store) registerMetrics() {
	r := s.reg
	op := func(v string) map[string]string { return map[string]string{"op": v} }
	s.m.routedPut = r.Counter(obs.Desc{Name: "shard.routed_ops", Help: "single-key ops routed to their owning shard", Unit: "ops", Labels: op("put")})
	s.m.routedGet = r.Counter(obs.Desc{Name: "shard.routed_ops", Help: "single-key ops routed to their owning shard", Unit: "ops", Labels: op("get")})
	s.m.routedDelete = r.Counter(obs.Desc{Name: "shard.routed_ops", Help: "single-key ops routed to their owning shard", Unit: "ops", Labels: op("delete")})
	s.m.routedScan = r.Counter(obs.Desc{Name: "shard.routed_ops", Help: "single-key ops routed to their owning shard", Unit: "ops", Labels: op("scan")})
	s.m.batchPut = r.Counter(obs.Desc{Name: "shard.batch_ops", Help: "batches seen by the router", Unit: "ops", Labels: op("put")})
	s.m.batchGet = r.Counter(obs.Desc{Name: "shard.batch_ops", Help: "batches seen by the router", Unit: "ops", Labels: op("get")})
	s.m.crossPut = r.Counter(obs.Desc{Name: "shard.cross_batches", Help: "batches fanned out to more than one shard", Unit: "ops", Labels: op("put")})
	s.m.crossGet = r.Counter(obs.Desc{Name: "shard.cross_batches", Help: "batches fanned out to more than one shard", Unit: "ops", Labels: op("get")})
	s.m.scanMerges = r.Counter(obs.Desc{Name: "shard.scan_merges", Help: "scans answered by a k-way merge over shards", Unit: "ops"})
	s.m.fanout = r.Histogram(obs.Desc{Name: "shard.batch_fanout", Help: "shards touched per batch", Unit: "shards"})
	r.GaugeFunc(obs.Desc{Name: "shard.count", Help: "number of shards", Unit: "shards"},
		func() float64 { return float64(len(s.shards)) })
	for i := range s.shards {
		cs := s.shards[i]
		r.GaugeFunc(obs.Desc{Name: "shard.keys", Help: "live keys on one shard", Unit: "keys",
			Labels: map[string]string{"shard": strconv.Itoa(i)}},
			func() float64 { return float64(cs.Len()) })
	}
	if s.rangeMode {
		s.registerPlacementMetrics()
	}
	if s.replicas > 1 {
		s.registerReplicaMetrics()
	}
	r.GaugeFunc(obs.Desc{Name: "shard.imbalance", Help: "max/mean live keys across shards (1.0 = perfectly balanced, 0 = empty)", Unit: "ratio"},
		func() float64 {
			var total, max int
			for _, cs := range s.shards {
				n := cs.Len()
				total += n
				if n > max {
					max = n
				}
			}
			if total == 0 {
				return 0
			}
			mean := float64(total) / float64(len(s.shards))
			return float64(max) / mean
		})
}

// registerPlacementMetrics registers the range-placement and migration
// families; only range-mode stores export them.
func (s *Store) registerPlacementMetrics() {
	r := s.reg
	r.GaugeFunc(obs.Desc{Name: "shard.placement_epoch", Help: "current placement epoch (bumped by every split and migration flip)", Unit: "epoch"},
		func() float64 { return float64(s.PlacementEpoch()) })
	r.GaugeFunc(obs.Desc{Name: "shard.placement_ranges", Help: "ranges in the placement boundary table", Unit: "ranges"},
		func() float64 { return float64(s.Ranges()) })
	s.m.rangeScans = r.Counter(obs.Desc{Name: "shard.range_scans", Help: "scans routed through the boundary table (owner-only reads)", Unit: "ops"})
	s.m.migSplits = r.Counter(obs.Desc{Name: "migrate.splits", Help: "placement boundaries inserted by SplitRange", Unit: "ops"})
	s.m.migRanges = r.Counter(obs.Desc{Name: "migrate.ranges", Help: "range migrations completed (epoch flipped and settled)", Unit: "ops"})
	s.m.migKeysStreamed = r.Counter(obs.Desc{Name: "migrate.keys_streamed", Help: "live values streamed to migration destinations", Unit: "keys"})
	s.m.migTombsStreamed = r.Counter(obs.Desc{Name: "migrate.tombstones_streamed", Help: "tombstones streamed to migration destinations", Unit: "keys"})
	s.m.migAborts = r.Counter(obs.Desc{Name: "migrate.aborts", Help: "migrations aborted before the epoch flip (placement restored)", Unit: "ops"})
	s.m.migPurged = r.Counter(obs.Desc{Name: "migrate.purged_keys", Help: "source copies physically dropped after a migration settled", Unit: "keys"})
	s.m.migFrozenWaits = r.Counter(obs.Desc{Name: "migrate.frozen_waits", Help: "writes parked on a frozen migration window until its flip", Unit: "ops"})
	s.m.migDualReads = r.Counter(obs.Desc{Name: "migrate.dual_reads", Help: "reads answered from the source set during a dual-read window", Unit: "ops"})
}

// registerReplicaMetrics registers the replication and anti-entropy
// families; only replicated stores export them.
func (s *Store) registerReplicaMetrics() {
	r := s.reg
	op := func(v string) map[string]string { return map[string]string{"op": v} }
	r.GaugeFunc(obs.Desc{Name: "shard.replica_factor", Help: "replica count per key", Unit: "replicas"},
		func() float64 { return float64(s.replicas) })
	s.m.replicaPut = r.Counter(obs.Desc{Name: "shard.replica_writes", Help: "per-replica write applications fanned out by the router", Unit: "ops", Labels: op("put")})
	s.m.replicaDelete = r.Counter(obs.Desc{Name: "shard.replica_writes", Help: "per-replica write applications fanned out by the router", Unit: "ops", Labels: op("delete")})
	s.m.replicaSkips = r.Counter(obs.Desc{Name: "shard.replica_write_skips", Help: "write fan-out legs skipped because the replica was down", Unit: "ops"})
	s.m.replicaErrors = r.Counter(obs.Desc{Name: "shard.replica_errors", Help: "write fan-out legs that failed (crashed mid-op or store error)", Unit: "ops"})
	s.m.replicaFallbacks = r.Counter(obs.Desc{Name: "shard.replica_read_fallbacks", Help: "reads served by a non-primary or repairing replica", Unit: "ops"})
	// s.m.replicaReads is allocated in Open (the read path indexes it
	// even when metrics are disabled); here we only fill the elements.
	for m := 0; m < s.replicas; m++ {
		s.m.replicaReads[m] = r.Counter(obs.Desc{Name: "shard.replica_reads", Help: "reads served, by position in the key's replica set (0 = primary)", Unit: "ops",
			Labels: map[string]string{"replica": strconv.Itoa(m)}})
	}
	for j := range s.shards {
		j := j
		r.GaugeFunc(obs.Desc{Name: "shard.replica_state", Help: "replica availability: 0 up, 1 down, 2 repairing", Unit: "state",
			Labels: map[string]string{"shard": strconv.Itoa(j)}},
			func() float64 { return float64(s.state[j].Load()) })
	}
	s.m.repairPasses = r.Counter(obs.Desc{Name: "repair.passes", Help: "anti-entropy pull passes run", Unit: "passes"})
	s.m.repairKeysPulled = r.Counter(obs.Desc{Name: "repair.keys_pulled", Help: "live values re-replicated by anti-entropy", Unit: "keys"})
	s.m.repairTombsPulled = r.Counter(obs.Desc{Name: "repair.tombstones_pulled", Help: "tombstones propagated by anti-entropy", Unit: "keys"})
	s.m.repairTombsDiscarded = r.Counter(obs.Desc{Name: "repair.tombstones_discarded", Help: "tombstones dropped after the grace window", Unit: "keys"})
	s.m.repairConverged = r.Counter(obs.Desc{Name: "repair.converged", Help: "repair cycles that converged a repairing replica to up", Unit: "events"})
}

// Metrics merges the router's own snapshot with every shard's. With one
// shard the core series pass through untouched (so existing unique-name
// lookups keep working); with several, each core series gains a
// {shard=i} label and store-wide values are obtained with Snapshot.Sum.
// Empty when Options.DisableMetrics.
func (s *Store) Metrics() obs.Snapshot {
	if s.reg == nil {
		return obs.Snapshot{}
	}
	snap := s.reg.Snapshot()
	if len(s.shards) == 1 {
		snap.Metrics = append(snap.Metrics, s.shards[0].Metrics().Metrics...)
	} else {
		for i, cs := range s.shards {
			lab := strconv.Itoa(i)
			for _, m := range cs.Metrics().Metrics {
				ls := make(map[string]string, len(m.Labels)+1)
				for k, v := range m.Labels {
					ls[k] = v
				}
				ls["shard"] = lab
				m.Labels = ls
				snap.Metrics = append(snap.Metrics, m)
			}
		}
	}
	snap.Sort()
	return snap
}

// MetricsRegistry returns the router-level registry (nil when metrics
// are disabled) — the home for front-end metrics such as the RESP
// server's, which are store-wide rather than per-shard.
func (s *Store) MetricsRegistry() *obs.Registry { return s.reg }
