package shard

// Online shard migration: moving a placement range between shards while
// the store serves traffic. The protocol is the slot-migration shape
// (catch-up → freeze → drain+delta → flip → settle), built on the same
// pull machinery as anti-entropy repair (repair.go): stamped records are
// enumerated with core.ReplicaEntriesRange and replayed onto the
// destination over the async pipeline under last-writer-wins, so a
// migration can never regress a newer write.
//
//  1. catch-up   — stream the range with foreground traffic live; the
//                  bulk of the data moves without blocking anyone.
//  2. freeze     — install a placement snapshot whose migState gates
//                  writes into the range (placeWrite spins them);
//                  reads stay live against the source.
//  3. drain+delta— flush the source shards' async pipelines, then
//                  stream what changed since the catch-up pass — only
//                  the delta, so the freeze stays brief.
//  4. flip       — install the new table (owner = destination) with the
//                  epoch bumped and the dual-read window open: a read
//                  that finds no stamp record at all on the destination
//                  set may fall back to the not-yet-purged source.
//  5. settle     — drain the source again (reads routed pre-flip), close
//                  the dual window, and purge the source's copy of the
//                  range (core.DropRange) including its stamp records,
//                  so a later migration back cannot be shadowed by
//                  stale stamps.
//
// Invariants: an acked write is either streamed before the flip (it
// carries a stamp <= the freeze, and the delta pass replays every stamp
// the destination lacks) or lands post-flip on the destination directly
// — never both lost. A crash before the flip aborts: the placement is
// restored unchanged and the destination's extra copies are harmless
// (LWW; the next attempt re-streams). A crash after the flip leaves the
// flip standing: the destination is complete by construction, and the
// unpurged source copies are unreachable garbage. Either way exactly one
// placement snapshot owns the range — no double-owner, no orphan.
//
// Replication: migrating a range moves its whole replica set — the
// destination set is the ring successor run {dst .. dst+R-1}, sources
// are enumerated from every member of the old set. Migration requires
// the full source set alive (a down source may hold the only copy of
// acked writes — the same veto repair promotion applies) and at least
// one destination member up; down destination members are skipped and
// healed later by anti-entropy repair, whose replica sets follow
// placement automatically.

import (
	"errors"
	"fmt"

	"repro/internal/core"
)

// errHashPlacement rejects placement operations on a hash-mode store.
var errHashPlacement = errors.New("prism: placement operation requires Placement \"range\"")

// hook runs the test-only migration crash point for a protocol stage
// ("catchup", "frozen", "streamed", "flipped", "settled"). Called with
// migOne/repairMu held but never migMu, so a hook may drive store ops.
func (s *Store) hook(stage string) {
	if s.migHook != nil {
		s.migHook(stage)
	}
}

// SplitRange inserts a placement boundary at key: the containing range
// splits into two halves that both keep its owner, the placement epoch
// bumps, and no data moves (ranges are routing state, not storage).
// No-op when key is already a boundary.
func (s *Store) SplitRange(key []byte) error {
	if !s.rangeMode {
		return errHashPlacement
	}
	if len(key) == 0 {
		return errors.New("prism: empty split key")
	}
	s.migOne.Lock()
	defer s.migOne.Unlock()
	p := s.pl.Load()
	nt, ok := p.tab.withSplit(key)
	if !ok {
		return nil
	}
	if nt.ranges() > maxRanges {
		return errors.New("prism: too many ranges")
	}
	s.migMu.Lock()
	s.pl.Store(&placement{epoch: p.epoch + 1, tab: nt})
	s.migMu.Unlock()
	s.m.migSplits.Inc()
	return nil
}

// ownerSet returns the replica set rooted at shard o ({o .. o+R-1} ring
// successors, matching replicaSet), or every shard for hashOwned — a
// hash-owned range's keys are spread across all shards, so all of them
// are migration sources.
func (s *Store) ownerSet(o int) []int {
	n := len(s.shards)
	if o == hashOwned {
		all := make([]int, n)
		for i := range all {
			all[i] = i
		}
		return all
	}
	set := make([]int, 0, s.replicas)
	for k := 0; k < s.replicas; k++ {
		set = append(set, (o+k)%n)
	}
	return set
}

// MigrateRange moves range r — and, with Replicas > 1, its whole replica
// set — to destination shard dst via catch-up → freeze → drain+delta →
// flip → settle (see the package comment above). Hash-owned ranges
// stream from every shard, which is the online hash→range conversion
// step. Returns with the placement unchanged on any pre-flip failure
// (source crash mid-stream, store closing); after the flip the new
// placement stands. Serialized against other placement operations and
// against anti-entropy repair passes.
func (s *Store) MigrateRange(r, dst int) error {
	if !s.rangeMode {
		return errHashPlacement
	}
	if dst < 0 || dst >= len(s.shards) {
		return fmt.Errorf("prism: destination shard %d out of range", dst)
	}
	s.migOne.Lock()
	defer s.migOne.Unlock()
	// Exclude repair passes for the whole window: repair enumerates with
	// placement-derived replica sets and must not interleave with the
	// flip.
	s.repairMu.Lock()
	defer s.repairMu.Unlock()

	p := s.pl.Load()
	if r < 0 || r >= p.tab.ranges() {
		return fmt.Errorf("prism: range %d out of range", r)
	}
	src := p.tab.owner[r]
	if src == dst {
		return nil
	}
	lo, hi := p.tab.rangeBounds(r)
	srcSet := s.ownerSet(src)
	dstSet := s.ownerSet(dst)
	// A down source may hold the only copy of acked writes in the range
	// (the repair-promotion veto, repair.go); a destination set with no
	// live member has nowhere to stream to.
	for _, j := range srcSet {
		if s.state[j].Load() == replicaDown {
			return fmt.Errorf("prism: source shard %d is down: %w", j, errNoReplica)
		}
	}
	dstUp := false
	for _, j := range dstSet {
		if s.state[j].Load() != replicaDown {
			dstUp = true
			break
		}
	}
	if !dstUp {
		return fmt.Errorf("prism: destination replica set all down: %w", errNoReplica)
	}

	s.hook("catchup")
	if err := s.streamRange(srcSet, dstSet, lo, hi); err != nil {
		s.m.migAborts.Inc()
		return err
	}

	// Freeze writes into the range; reads stay on the source.
	s.migMu.Lock()
	s.pl.Store(&placement{epoch: p.epoch, tab: p.tab, mig: &migState{
		lo: lo, hi: hi, frozen: true, srcOwner: src, srcSet: srcSet, dstSet: dstSet,
	}})
	s.migMu.Unlock()
	s.hook("frozen")

	abort := func(err error) error {
		s.migMu.Lock()
		s.pl.Store(&placement{epoch: p.epoch, tab: p.tab})
		s.migMu.Unlock()
		s.m.migAborts.Inc()
		return err
	}

	// Drain writes admitted before the freeze, then stream the delta.
	s.drainShards(srcSet)
	if err := s.streamRange(srcSet, dstSet, lo, hi); err != nil {
		return abort(err)
	}
	s.hook("streamed")

	// Flip: the destination owns the range; open the dual-read window.
	nt := p.tab.withOwner(r, dst)
	s.migMu.Lock()
	s.pl.Store(&placement{epoch: p.epoch + 1, tab: nt, mig: &migState{
		lo: lo, hi: hi, dual: true, srcOwner: src, srcSet: srcSet, dstSet: dstSet,
	}})
	s.migMu.Unlock()
	s.hook("flipped")

	// Settle: drain reads routed pre-flip, close the window, purge the
	// source copies (stamp records included) outside the lock — routing
	// no longer reaches them.
	s.drainShards(srcSet)
	s.migMu.Lock()
	s.pl.Store(&placement{epoch: p.epoch + 1, tab: nt})
	s.migMu.Unlock()
	for _, j := range srcSet {
		inDst := false
		for _, d := range dstSet {
			if d == j {
				inDst = true
				break
			}
		}
		if inDst {
			continue
		}
		n := s.shards[j].DropRange(lo, hi)
		s.m.migPurged.Add(int64(n))
	}
	s.m.migRanges.Inc()
	s.hook("settled")
	return nil
}

// streamRange replays every stamped record in [lo, hi) from the source
// shards onto the destination set under LWW, mirroring RepairShard's
// pull idiom. Down destination members are skipped (anti-entropy heals
// them); any ErrClosed — a source or destination crashing mid-stream —
// aborts the stream so the caller can abort the migration.
func (s *Store) streamRange(srcSet, dstSet []int, lo, hi []byte) error {
	type ent struct {
		key  []byte
		ts   uint64
		tomb bool
	}
	for _, si := range srcSet {
		src := s.shards[si]
		var todo []ent
		src.ReplicaEntriesRange(lo, hi, func(key []byte, ts uint64, tomb bool) bool {
			todo = append(todo, ent{key: key, ts: ts, tomb: tomb})
			return true
		})
		for _, e := range todo {
			var val []byte
			if !e.tomb {
				v, err := src.Thread(0).GetAsync(e.key).Value()
				switch {
				case err == nil:
					// Re-check the stamp (repair.go): a moved stamp means a
					// newer write superseded this entry — it has its own
					// record and streams on its own terms.
					if ts2, tomb2, ok := src.ReplicaNewest(e.key); !ok || tomb2 || ts2 != e.ts {
						continue
					}
					val = v
				case errors.Is(err, core.ErrClosed):
					return err
				default:
					// Deleted or superseded since enumeration — unless the
					// record still claims this stamp lives here, in which
					// case the source lost a value it acked and the
					// migration must not proceed.
					if ts2, tomb2, ok := src.ReplicaNewest(e.key); ok && !tomb2 && ts2 == e.ts {
						return err
					}
					continue
				}
			}
			for _, di := range dstSet {
				if di == si || s.state[di].Load() == replicaDown {
					continue
				}
				dst := s.shards[di]
				if cur, _, ok := dst.ReplicaNewest(e.key); ok && cur >= e.ts {
					continue
				}
				if e.tomb {
					err := dst.Thread(0).DeleteTSAsync(e.key, e.ts).Wait()
					if err != nil && !errors.Is(err, core.ErrNotFound) {
						return err
					}
					s.m.migTombsStreamed.Inc()
					continue
				}
				if err := dst.Thread(0).PutTSAsync(e.key, val, e.ts).Wait(); err != nil {
					return err
				}
				s.m.migKeysStreamed.Inc()
			}
		}
	}
	return nil
}

// drainShards flushes every async pipeline on the given shards — the
// freeze/settle barrier that guarantees no in-flight write or read is
// still executing against a pre-transition placement. core.Thread.Flush
// is safe from any goroutine.
func (s *Store) drainShards(js []int) {
	for _, j := range js {
		cs := s.shards[j]
		for i := 0; i < cs.NumThreads(); i++ {
			cs.Thread(i).Flush()
		}
	}
}

// RebalanceRanges learns an equal-population boundary table from the
// store's live keys and migrates every range to its round-robin owner —
// the online conversion from hash-equivalent routing (zero split keys)
// to true range placement, and a rebalance for stores whose boundaries
// drifted. Placement operations in flight serialize behind it range by
// range; a failed migration aborts the remaining moves.
func (s *Store) RebalanceRanges() error {
	if !s.rangeMode {
		return errHashPlacement
	}
	var samples [][]byte
	for _, cs := range s.shards {
		samples = append(samples, cs.SampleKeys(4096/len(s.shards))...)
	}
	for _, sp := range SelectSplitKeys(samples, len(s.shards)) {
		if err := s.SplitRange(sp); err != nil {
			return err
		}
	}
	p := s.pl.Load()
	n := p.tab.ranges()
	for r := 0; r < n; r++ {
		if err := s.MigrateRange(r, r%len(s.shards)); err != nil {
			return err
		}
	}
	return nil
}
