package shard

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"repro/internal/core"
)

// TestMigrationFaultMatrix is the migration half of the CI fault gate
// (make fault-smoke): for each protocol stage, crash the migration
// source at exactly that point — via the migHook crash point — and
// prove the freeze→stream→flip protocol never double-owns or orphans a
// range. A crash before the flip aborts with the placement unchanged; a
// crash at or after the flip leaves the flip standing (the destination
// is complete by construction). Either way, after recovery (plus
// anti-entropy for the replicated cells) every acked write is present,
// every delete holds, and a retried migration completes.
func TestMigrationFaultMatrix(t *testing.T) {
	stages := []string{"catchup", "frozen", "streamed", "flipped"}
	for _, replicas := range []int{1, 2} {
		for _, stage := range stages {
			replicas, stage := replicas, stage
			t.Run(fmt.Sprintf("replicas=%d,stage=%s", replicas, stage), func(t *testing.T) {
				migrationFaultCell(t, replicas, stage)
			})
		}
	}
}

func migrationFaultCell(t *testing.T, replicas int, stage string) {
	const shards, seed = 3, 300
	s := rng(t, shards, replicas, [][]byte{key(100), key(200)}, nil)
	th := s.Thread(0)

	// Seed all three ranges, with some deletes so tombstones stream too.
	model := map[int]string{}
	for i := 0; i < seed; i++ {
		v := fmt.Sprintf("v%d", i)
		if err := th.Put(key(i), []byte(v)); err != nil {
			t.Fatal(err)
		}
		model[i] = v
	}
	for i := 0; i < seed; i += 17 {
		if err := th.Delete(key(i)); err != nil {
			t.Fatal(err)
		}
		delete(model, i)
	}

	// Migrate range 1 ([100, 200)) away from its owner; crash the source
	// owner exactly once, at the requested protocol stage.
	const ri = 1
	src := s.RangeOwner(ri)
	dst := (src + 1) % shards
	epochBefore := s.PlacementEpoch()
	crashed := false
	s.migHook = func(st string) {
		if st == stage && !crashed {
			crashed = true
			s.CrashShard(src)
		}
	}
	err := s.MigrateRange(ri, dst)
	s.migHook = nil
	if !crashed {
		t.Fatalf("migration never reached stage %q", stage)
	}

	switch stage {
	case "catchup", "frozen":
		// Pre-flip crash: the migration must abort and the placement must
		// be exactly what it was — no orphaned range, no double owner.
		if err == nil {
			t.Fatalf("stage %s: migration succeeded with the source crashed", stage)
		}
		if got := s.RangeOwner(ri); got != src {
			t.Fatalf("stage %s: owner %d after abort, want %d", stage, got, src)
		}
		if got := s.PlacementEpoch(); got != epochBefore {
			t.Fatalf("stage %s: epoch %d after abort, want %d", stage, got, epochBefore)
		}
	case "streamed", "flipped":
		// The destination set already holds every record, so the flip
		// stands and the range has exactly one owner: the destination.
		if err != nil {
			t.Fatalf("stage %s: migration failed post-stream: %v", stage, err)
		}
		if got := s.RangeOwner(ri); got != dst {
			t.Fatalf("stage %s: owner %d after flip, want %d", stage, got, dst)
		}
		if got := s.PlacementEpoch(); got != epochBefore+1 {
			t.Fatalf("stage %s: epoch %d after flip, want %d", stage, got, epochBefore+1)
		}
		// Even before recovery, the migrated range serves from the
		// destination (replicated cells serve everything: R=2 survives one
		// down member in every set).
		for i := 100; i < 200; i++ {
			want, ok := model[i]
			v, gerr := th.Get(key(i))
			if ok && (gerr != nil || string(v) != want) {
				t.Fatalf("stage %s pre-recovery: key %d = %q, %v; want %q", stage, i, v, gerr, want)
			}
			if !ok && !errors.Is(gerr, core.ErrNotFound) {
				t.Fatalf("stage %s pre-recovery: deleted key %d: %v", stage, i, gerr)
			}
		}
	}

	// Recover the source; replicated cells must also re-converge.
	if _, rerr := s.RecoverShard(src); rerr != nil {
		t.Fatal(rerr)
	}
	if replicas > 1 {
		for i := 0; i < maxRepairPasses; i++ {
			if s.Repair().Applied() == 0 {
				break
			}
		}
		if st := s.ReplicaState(src); st != int(replicaUp) {
			t.Fatalf("source state %d after repair", st)
		}
		if cerr := s.ConvergenceCheck(); cerr != nil {
			t.Fatal(cerr)
		}
	}

	audit := func(when string) {
		t.Helper()
		for i := 0; i < seed; i++ {
			want, ok := model[i]
			v, gerr := th.Get(key(i))
			if ok && (gerr != nil || string(v) != want) {
				t.Fatalf("%s: key %d = %q, %v; want %q", when, i, v, gerr, want)
			}
			if !ok && !errors.Is(gerr, core.ErrNotFound) {
				t.Fatalf("%s: deleted key %d resurrected: %v", when, i, gerr)
			}
		}
		count := 0
		if serr := th.Scan(nil, 0, func(kv core.KV) bool {
			count++
			return true
		}); serr != nil {
			t.Fatalf("%s: scan: %v", when, serr)
		}
		if count != len(model) {
			t.Fatalf("%s: scan saw %d keys, model has %d (orphaned or double-owned range)", when, count, len(model))
		}
	}
	audit("post-recovery")

	// The store keeps migrating: an aborted cell retries the same move; a
	// flipped cell (whose source kept unpurged, unreachable copies) moves
	// the range straight back. Fresh writes ride along either way.
	for i := 120; i < 130; i++ {
		v := fmt.Sprintf("post%d", i)
		if perr := th.Put(key(i), []byte(v)); perr != nil {
			t.Fatal(perr)
		}
		model[i] = v
	}
	retryDst := dst
	if s.RangeOwner(ri) == dst {
		retryDst = src
	}
	if merr := s.MigrateRange(ri, retryDst); merr != nil {
		t.Fatalf("retry migration to %d: %v", retryDst, merr)
	}
	if got := s.RangeOwner(ri); got != retryDst {
		t.Fatalf("retry: owner %d, want %d", got, retryDst)
	}
	audit("post-retry")
}

// TestMigrationDestMemberCrash: with Replicas > 1, a destination-set
// member crashing mid-stream does not block the migration — the member
// is skipped, the flip proceeds on the live members, and anti-entropy
// heals the skipped member after recovery under the placement-derived
// replica sets.
func TestMigrationDestMemberCrash(t *testing.T) {
	const shards, replicas = 3, 2
	s := rng(t, shards, replicas, [][]byte{key(100), key(200)}, nil)
	th := s.Thread(0)
	for i := 0; i < 300; i++ {
		if err := th.Put(key(i), value(i)); err != nil {
			t.Fatal(err)
		}
	}
	const ri = 1
	src := s.RangeOwner(ri)
	dst := (src + 1) % shards
	victim := (dst + 1) % shards // second member of the destination set
	crashed := false
	s.migHook = func(st string) {
		if st == "catchup" && !crashed {
			crashed = true
			s.CrashShard(victim)
		}
	}
	err := s.MigrateRange(ri, dst)
	s.migHook = nil
	if err != nil {
		t.Fatalf("migration with one dest member down: %v", err)
	}
	if got := s.RangeOwner(ri); got != dst {
		t.Fatalf("owner %d, want %d", got, dst)
	}
	if _, err := s.RecoverShard(victim); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < maxRepairPasses; i++ {
		if s.Repair().Applied() == 0 {
			break
		}
	}
	if err := s.ConvergenceCheck(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 300; i++ {
		v, err := th.Get(key(i))
		if err != nil || !bytes.Equal(v, value(i)) {
			t.Fatalf("key %d = %q, %v", i, v, err)
		}
	}
}
