package shard

// Range-partitioned placement (Options.Placement == "range"): a boundary
// table of split keys divides the keyspace into contiguous ranges, each
// owned by one shard (or left hash-owned, routing by jump hash until a
// migration claims it). Routing stays a pure lookup — binary search over
// the sorted bounds — so single-key ops cost one search plus one method
// call, and Scan walks only the ranges that intersect the request
// instead of k-way merging every shard.
//
// The table lives in an immutable placement snapshot swapped atomically
// under migMu (see migrate.go for the freeze → stream → flip protocol).
// Hash mode (the default) never allocates a placement and takes no
// locks: its routing is bit-for-bit the pre-placement code path.

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"runtime"
	"sort"

	"repro/internal/core"
)

// hashOwned marks a range still routed by jump hash — the bridge that
// lets a range store open with zero split keys (routing then equals hash
// placement exactly) and convert online via RebalanceRanges.
const hashOwned = -1

// maxRanges bounds the boundary table; each range is only three words of
// routing state, so the cap just guards absurd split storms.
const maxRanges = 4096

// boundaryTable maps keys to ranges: bounds is the sorted, strictly
// increasing list of split keys, and range i covers [bounds[i-1],
// bounds[i]) with nil edges unbounded — len(owner) == len(bounds)+1.
// owner[i] is the shard owning range i, or hashOwned. A table is
// immutable once installed; mutations clone.
type boundaryTable struct {
	bounds [][]byte
	owner  []int
}

// newBoundaryTable builds the Open-time table: splits are cloned,
// sorted, and deduplicated; with no splits the single all-covering range
// is hash-owned, otherwise ranges are assigned round-robin.
func newBoundaryTable(splits [][]byte, shards int) (*boundaryTable, error) {
	bs := make([][]byte, 0, len(splits))
	for _, sp := range splits {
		if len(sp) == 0 {
			return nil, errors.New("prism: empty split key")
		}
		bs = append(bs, append([]byte(nil), sp...))
	}
	sort.Slice(bs, func(i, j int) bool { return bytes.Compare(bs[i], bs[j]) < 0 })
	dedup := bs[:0]
	for i, b := range bs {
		if i > 0 && bytes.Equal(b, dedup[len(dedup)-1]) {
			continue
		}
		dedup = append(dedup, b)
	}
	bs = dedup
	if len(bs)+1 > maxRanges {
		return nil, errors.New("prism: too many split keys")
	}
	bt := &boundaryTable{bounds: bs, owner: make([]int, len(bs)+1)}
	if len(bs) == 0 {
		bt.owner[0] = hashOwned
	} else {
		for i := range bt.owner {
			bt.owner[i] = i % shards
		}
	}
	return bt, nil
}

// ranges returns the number of ranges.
func (bt *boundaryTable) ranges() int { return len(bt.owner) }

// rangeOf returns the index of the range containing key: the number of
// bounds <= key, so a key equal to a split belongs to the right-hand
// range (lower bounds are inclusive).
func (bt *boundaryTable) rangeOf(key []byte) int {
	return sort.Search(len(bt.bounds), func(i int) bool {
		return bytes.Compare(bt.bounds[i], key) > 0
	})
}

// rangeBounds returns range r's [lo, hi) bounds; nil means unbounded.
func (bt *boundaryTable) rangeBounds(r int) (lo, hi []byte) {
	if r > 0 {
		lo = bt.bounds[r-1]
	}
	if r < len(bt.bounds) {
		hi = bt.bounds[r]
	}
	return lo, hi
}

// withOwner clones the table with range r's owner replaced.
func (bt *boundaryTable) withOwner(r, o int) *boundaryTable {
	nt := &boundaryTable{bounds: bt.bounds, owner: append([]int(nil), bt.owner...)}
	nt.owner[r] = o
	return nt
}

// withSplit clones the table with a boundary inserted at key, splitting
// the containing range into two halves that both keep its owner. Returns
// ok=false when key is already a boundary.
func (bt *boundaryTable) withSplit(key []byte) (*boundaryTable, bool) {
	r := bt.rangeOf(key)
	if r > 0 && bytes.Equal(bt.bounds[r-1], key) {
		return nil, false
	}
	nb := make([][]byte, 0, len(bt.bounds)+1)
	nb = append(nb, bt.bounds[:r]...)
	nb = append(nb, append([]byte(nil), key...))
	nb = append(nb, bt.bounds[r:]...)
	no := make([]int, 0, len(bt.owner)+1)
	no = append(no, bt.owner[:r+1]...)
	no = append(no, bt.owner[r:]...)
	return &boundaryTable{bounds: nb, owner: no}, true
}

// btMagic identifies an encoded boundary table.
var btMagic = []byte("PBT1")

// Encode serializes the table: magic, uvarint range count, one uvarint
// owner per range (0 = hash-owned, else shard+1), then each bound as a
// uvarint length plus bytes. The format round-trips through
// decodeBoundaryTable (FuzzBoundaryTable pins this).
func (bt *boundaryTable) Encode() []byte {
	buf := append([]byte(nil), btMagic...)
	var tmp [binary.MaxVarintLen64]byte
	putUvarint := func(v uint64) {
		n := binary.PutUvarint(tmp[:], v)
		buf = append(buf, tmp[:n]...)
	}
	putUvarint(uint64(len(bt.owner)))
	for _, o := range bt.owner {
		putUvarint(uint64(o + 1))
	}
	for _, b := range bt.bounds {
		putUvarint(uint64(len(b)))
		buf = append(buf, b...)
	}
	return buf
}

// decodeBoundaryTable parses an Encode()d table, validating structure
// end to end: magic, range count in [1, maxRanges], owners within
// [hashOwned, shards), non-empty strictly increasing bounds, no trailing
// bytes.
func decodeBoundaryTable(data []byte, shards int) (*boundaryTable, error) {
	if len(data) < len(btMagic) || !bytes.Equal(data[:len(btMagic)], btMagic) {
		return nil, errors.New("prism: boundary table: bad magic")
	}
	rd := data[len(btMagic):]
	get := func() (uint64, error) {
		v, n := binary.Uvarint(rd)
		if n <= 0 {
			return 0, errors.New("prism: boundary table: truncated varint")
		}
		rd = rd[n:]
		return v, nil
	}
	nr, err := get()
	if err != nil {
		return nil, err
	}
	if nr < 1 || nr > maxRanges {
		return nil, fmt.Errorf("prism: boundary table: bad range count %d", nr)
	}
	bt := &boundaryTable{owner: make([]int, nr)}
	for i := range bt.owner {
		v, err := get()
		if err != nil {
			return nil, err
		}
		o := int(v) - 1
		if o < hashOwned || o >= shards {
			return nil, fmt.Errorf("prism: boundary table: owner %d out of range", o)
		}
		bt.owner[i] = o
	}
	for i := 0; i < int(nr)-1; i++ {
		l, err := get()
		if err != nil {
			return nil, err
		}
		if l == 0 || l > uint64(len(rd)) {
			return nil, errors.New("prism: boundary table: bad bound length")
		}
		b := append([]byte(nil), rd[:l]...)
		rd = rd[l:]
		if i > 0 && bytes.Compare(bt.bounds[i-1], b) >= 0 {
			return nil, errors.New("prism: boundary table: bounds not strictly increasing")
		}
		bt.bounds = append(bt.bounds, b)
	}
	if len(rd) != 0 {
		return nil, errors.New("prism: boundary table: trailing bytes")
	}
	return bt, nil
}

// SelectSplitKeys picks up to n-1 split keys dividing the sampled keys
// into n roughly equal-population ranges — the boundary-learning step
// behind RebalanceRanges (samples come from core.SampleKeys). The input
// is not mutated; the result is sorted, strictly increasing, and a
// subset of the (deduplicated) samples.
func SelectSplitKeys(keys [][]byte, n int) [][]byte {
	if n <= 1 || len(keys) == 0 {
		return nil
	}
	sorted := make([][]byte, len(keys))
	copy(sorted, keys)
	sort.Slice(sorted, func(i, j int) bool { return bytes.Compare(sorted[i], sorted[j]) < 0 })
	dedup := sorted[:0]
	for i, k := range sorted {
		if len(k) == 0 {
			continue
		}
		if i > 0 && len(dedup) > 0 && bytes.Equal(k, dedup[len(dedup)-1]) {
			continue
		}
		dedup = append(dedup, k)
	}
	sorted = dedup
	var splits [][]byte
	for i := 1; i < n; i++ {
		idx := i * len(sorted) / n
		if idx <= 0 || idx >= len(sorted) {
			continue
		}
		k := sorted[idx]
		if len(splits) > 0 && bytes.Equal(k, splits[len(splits)-1]) {
			continue
		}
		splits = append(splits, append([]byte(nil), k...))
	}
	return splits
}

// placement is the router's immutable placement snapshot: the epoch
// (bumped on every split and flip), the boundary table, and the
// migration window state (nil when no migration is in flight). A new
// snapshot is installed only under migMu.Lock; range-mode ops hold
// migMu.RLock for their duration, so the snapshot they loaded stays the
// installed one until they finish.
type placement struct {
	epoch uint64
	tab   *boundaryTable
	mig   *migState
}

// migState describes the migration window over [lo, hi). frozen gates
// writes into the range (they spin-wait for the flip); dual marks the
// post-flip dual-read window during which a read that misses the
// destination set entirely — no stamp record at all — may fall back to
// the source set (srcSet), which has not yet been purged. dstSet is the
// destination replica set.
type migState struct {
	lo, hi   []byte
	frozen   bool
	dual     bool
	srcOwner int // pre-flip owner; hashOwned when converting a hash range
	srcSet   []int
	dstSet   []int
}

// contains reports whether key falls in the migration window.
func (m *migState) contains(key []byte) bool {
	if m.lo != nil && bytes.Compare(key, m.lo) < 0 {
		return false
	}
	if m.hi != nil && bytes.Compare(key, m.hi) >= 0 {
		return false
	}
	return true
}

// shardFor routes key under this placement snapshot: the owning shard of
// its range, or jump hash for hash-owned ranges.
func (p *placement) shardFor(s *Store, key []byte) int {
	if o := p.tab.owner[p.tab.rangeOf(key)]; o != hashOwned {
		return o
	}
	if len(s.shards) == 1 {
		return 0
	}
	return jump(fnv64a(key), len(s.shards))
}

// PlacementMode returns "hash" or "range".
func (s *Store) PlacementMode() string {
	if s.rangeMode {
		return "range"
	}
	return "hash"
}

// PlacementEpoch returns the current placement epoch — bumped by every
// split and every migration flip — or 0 in hash mode.
func (s *Store) PlacementEpoch() uint64 {
	if p := s.pl.Load(); p != nil {
		return p.epoch
	}
	return 0
}

// Ranges returns the number of placement ranges (1 in hash mode's
// degenerate view).
func (s *Store) Ranges() int {
	if p := s.pl.Load(); p != nil {
		return p.tab.ranges()
	}
	return 1
}

// RangeOwner returns the shard owning range r, or -1 when the range is
// hash-owned (or the store is in hash mode).
func (s *Store) RangeOwner(r int) int {
	if p := s.pl.Load(); p != nil && r >= 0 && r < p.tab.ranges() {
		return p.tab.owner[r]
	}
	return hashOwned
}

// RangeBounds returns range r's [lo, hi) bounds; nil bounds are
// unbounded.
func (s *Store) RangeBounds(r int) (lo, hi []byte) {
	if p := s.pl.Load(); p != nil && r >= 0 && r < p.tab.ranges() {
		return p.tab.rangeBounds(r)
	}
	return nil, nil
}

// placeWrite acquires the range-mode op guard (migMu.RLock, released by
// the caller) and returns the placement snapshot, spin-waiting while the
// key sits in a frozen migration window: the freeze is the short
// stream-the-delta phase of MigrateRange, and a pending flip (a writer
// waiting in migMu.Lock) blocks new RLocks, so spinners drain into the
// flipped epoch naturally.
func (s *Store) placeWrite(key []byte) *placement {
	waited := false
	for {
		s.migMu.RLock()
		p := s.pl.Load()
		if m := p.mig; m == nil || !m.frozen || !m.contains(key) {
			return p
		}
		s.migMu.RUnlock()
		if !waited {
			waited = true
			s.m.migFrozenWaits.Inc()
		}
		runtime.Gosched()
	}
}

// dualRecorded reports whether any destination-set member holds a stamp
// record for key, live or tombstone — the gate on dual-read fallback. A
// record on the destination means the owner's answer is authoritative:
// every migrated key has one (streamed under its stamp), and a
// tombstone recorded there must not resurrect from the source. Stamp
// records are modeled NVM-resident, so they stay readable even while
// the member's devices are crashed.
func (s *Store) dualRecorded(m *migState, key []byte) bool {
	for _, di := range m.dstSet {
		if _, _, ok := s.shards[di].ReplicaNewest(key); ok {
			return true
		}
	}
	return false
}

// dualSrcShard picks the source shard to consult for a dual-window
// fallback read: the pre-flip owner's first live set member, or the
// key's jump shard when the range was hash-owned. Returns -1 when no
// source is live.
func (s *Store) dualSrcShard(m *migState, key []byte) int {
	if m.srcOwner == hashOwned {
		j := jump(fnv64a(key), len(s.shards))
		if s.state[j].Load() != replicaDown {
			return j
		}
		return -1
	}
	for _, si := range m.srcSet {
		if s.state[si].Load() != replicaDown {
			return si
		}
	}
	return -1
}

// dualGet is the synchronous dual-window fallback: called after the
// owner path failed for a key inside the migration window, it re-reads
// from the source set when no destination member has any record of the
// key. Returns ok=false when the fallback does not apply (the owner's
// answer stands).
func (t *Thread) dualGet(p *placement, key []byte) ([]byte, error, bool) {
	s := t.s
	m := p.mig
	if s.dualRecorded(m, key) {
		return nil, nil, false
	}
	si := s.dualSrcShard(m, key)
	if si < 0 {
		return nil, nil, false
	}
	s.m.migDualReads.Inc()
	v, err := t.ths[si].Get(key)
	t.sync(si)
	return v, err, true
}

// placeWriteBatch is placeWrite for a whole batch: it blocks while any
// batch key sits in a frozen window (the batch lands atomically in one
// placement epoch per shard).
func (s *Store) placeWriteBatch(kvs []core.KV) *placement {
	waited := false
	for {
		s.migMu.RLock()
		p := s.pl.Load()
		m := p.mig
		if m == nil || !m.frozen {
			return p
		}
		blocked := false
		for i := range kvs {
			if m.contains(kvs[i].Key) {
				blocked = true
				break
			}
		}
		if !blocked {
			return p
		}
		s.migMu.RUnlock()
		if !waited {
			waited = true
			s.m.migFrozenWaits.Inc()
		}
		runtime.Gosched()
	}
}
