package shard

import (
	"bytes"
	"testing"
)

// FuzzBoundaryTable drives the boundary-table decoder with arbitrary
// bytes and split-key selection with arbitrary key sets (the placement
// analogue of the RESP FuzzParse). Invariants: no panic; anything that
// decodes is structurally valid (bounded range count, strictly
// increasing non-empty bounds, owners in range) and round-trips through
// Encode bit-for-bit semantics; SelectSplitKeys always returns a
// strictly increasing subset of its input that newBoundaryTable accepts
// and that itself round-trips.
func FuzzBoundaryTable(f *testing.F) {
	// Encodings of representative tables.
	for _, splits := range [][]string{
		{},
		{"m"},
		{"b", "c", "x"},
		{"user00000050", "user00000100", "user00000150"},
	} {
		bs := make([][]byte, len(splits))
		for i, sp := range splits {
			bs[i] = []byte(sp)
		}
		bt, err := newBoundaryTable(bs, 8)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(bt.Encode())
	}
	// Hostile framings.
	f.Add([]byte("PBT1"))
	f.Add([]byte("PBT0\x01\x01"))
	f.Add([]byte("PBT1\x00"))
	f.Add([]byte("PBT1\xff\xff\xff\xff\xff\xff\xff\xff\xff\x01"))
	f.Add([]byte("PBT1\x02\x01\x02\x05abc"))
	f.Add(bytes.Repeat([]byte{0x80}, 64))

	const shards = 8
	f.Fuzz(func(t *testing.T, data []byte) {
		if bt, err := decodeBoundaryTable(data, shards); err == nil {
			if bt.ranges() < 1 || bt.ranges() > maxRanges {
				t.Fatalf("decoded range count %d out of bounds", bt.ranges())
			}
			if len(bt.bounds) != bt.ranges()-1 {
				t.Fatalf("%d bounds for %d ranges", len(bt.bounds), bt.ranges())
			}
			for i, b := range bt.bounds {
				if len(b) == 0 {
					t.Fatal("decoded empty bound")
				}
				if i > 0 && bytes.Compare(bt.bounds[i-1], b) >= 0 {
					t.Fatalf("bounds not strictly increasing at %d", i)
				}
				// A bound key belongs to its right-hand range (lower bounds
				// are inclusive).
				if r := bt.rangeOf(b); r != i+1 {
					t.Fatalf("rangeOf(bounds[%d]) = %d, want %d", i, r, i+1)
				}
			}
			for i, o := range bt.owner {
				if o < hashOwned || o >= shards {
					t.Fatalf("owner[%d] = %d out of range", i, o)
				}
			}
			rt, err := decodeBoundaryTable(bt.Encode(), shards)
			if err != nil {
				t.Fatalf("re-decode of Encode failed: %v", err)
			}
			if len(rt.owner) != len(bt.owner) || len(rt.bounds) != len(bt.bounds) {
				t.Fatalf("roundtrip shape mismatch: %d/%d ranges, %d/%d bounds",
					len(rt.owner), len(bt.owner), len(rt.bounds), len(bt.bounds))
			}
			for i := range bt.owner {
				if rt.owner[i] != bt.owner[i] {
					t.Fatalf("roundtrip owner[%d] = %d, want %d", i, rt.owner[i], bt.owner[i])
				}
			}
			for i := range bt.bounds {
				if !bytes.Equal(rt.bounds[i], bt.bounds[i]) {
					t.Fatalf("roundtrip bounds[%d] = %q, want %q", i, rt.bounds[i], bt.bounds[i])
				}
			}
		}

		// Split-key selection over keys chunked out of the input.
		chunk := 1
		if len(data) > 0 {
			chunk = 1 + int(data[0]%7)
		}
		var keys [][]byte
		for i := 0; i+chunk <= len(data) && len(keys) < 256; i += chunk {
			keys = append(keys, data[i:i+chunk])
		}
		n := 2 + len(data)%7
		splits := SelectSplitKeys(keys, n)
		if len(splits) > n-1 {
			t.Fatalf("%d splits for n=%d", len(splits), n)
		}
		for i, sp := range splits {
			if len(sp) == 0 {
				t.Fatal("empty split key selected")
			}
			if i > 0 && bytes.Compare(splits[i-1], sp) >= 0 {
				t.Fatalf("splits not strictly increasing at %d", i)
			}
			member := false
			for _, k := range keys {
				if bytes.Equal(k, sp) {
					member = true
					break
				}
			}
			if !member {
				t.Fatalf("split %q is not one of the input keys", sp)
			}
		}
		bt, err := newBoundaryTable(splits, shards)
		if err != nil {
			t.Fatalf("newBoundaryTable rejected selected splits: %v", err)
		}
		if bt.ranges() != len(splits)+1 {
			t.Fatalf("table has %d ranges for %d splits", bt.ranges(), len(splits))
		}
		if _, err := decodeBoundaryTable(bt.Encode(), shards); err != nil {
			t.Fatalf("selected-split table does not round-trip: %v", err)
		}
	})
}
