package shard

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"

	"repro/internal/core"
)

// Placement-aware model property test (TestReplicatedStoreMatchesModel
// lineage): a single-writer sequence of puts/deletes/gets/scans against
// a model map, with random splits and range migrations — plus replica
// crash/recover churn (replicated variant) or whole-store crash/recover
// (unreplicated variant) — interleaved mid-sequence. An acknowledged
// write is never lost, and every scan matches the model exactly.
func TestRangePlacementMatchesModel(t *testing.T) {
	for _, replicas := range []int{1, 2} {
		replicas := replicas
		t.Run(fmt.Sprintf("replicas=%d", replicas), func(t *testing.T) {
			const shards, keyspace = 3, 150
			s := rng(t, shards, replicas, [][]byte{key(50), key(100)}, nil)
			th := s.Thread(0)
			model := map[string]string{}
			r := rand.New(rand.NewSource(11))
			down := -1

			modelScan := func(start string, count int) []string {
				var ks []string
				for k := range model {
					if k >= start {
						ks = append(ks, k)
					}
				}
				sort.Strings(ks)
				if count > 0 && len(ks) > count {
					ks = ks[:count]
				}
				return ks
			}

			for step := 0; step < 2500; step++ {
				k := key(r.Intn(keyspace))
				switch op := r.Intn(12); {
				case op < 5: // put
					v := []byte(fmt.Sprintf("v-%d-%d", step, r.Intn(1000)))
					if err := th.Put(k, v); err != nil {
						t.Fatalf("step %d: Put: %v", step, err)
					}
					model[string(k)] = string(v)
				case op < 7: // delete
					err := th.Delete(k)
					_, want := model[string(k)]
					if want && err != nil {
						t.Fatalf("step %d: Delete(%q) = %v, model has it", step, k, err)
					}
					if !want && !errors.Is(err, core.ErrNotFound) {
						t.Fatalf("step %d: Delete(%q) = %v, want ErrNotFound", step, k, err)
					}
					delete(model, string(k))
				case op < 10: // get
					v, err := th.Get(k)
					want, ok := model[string(k)]
					if ok && (err != nil || string(v) != want) {
						t.Fatalf("step %d: Get(%q) = %q,%v; model %q (down=%d)", step, k, v, err, want, down)
					}
					if !ok && !errors.Is(err, core.ErrNotFound) {
						t.Fatalf("step %d: Get(%q) = %v, model missing (down=%d)", step, k, err, down)
					}
				default: // scan vs model
					start := key(r.Intn(keyspace))
					count := 1 + r.Intn(20)
					var got []string
					if err := th.Scan(start, count, func(kv core.KV) bool {
						got = append(got, string(kv.Key))
						return true
					}); err != nil {
						t.Fatalf("step %d: Scan: %v (down=%d)", step, err, down)
					}
					want := modelScan(string(start), count)
					if len(got) != len(want) {
						t.Fatalf("step %d: scan len %d, model %d (down=%d)", step, len(got), len(want), down)
					}
					for i := range got {
						if got[i] != want[i] {
							t.Fatalf("step %d: scan[%d] = %q, model %q", step, i, got[i], want[i])
						}
					}
				}
				// Placement churn: splits any time; migrations only when
				// every shard is up (a down source vetoes the stream).
				if step%250 == 100 {
					if r.Intn(2) == 0 {
						if err := s.SplitRange(key(r.Intn(keyspace))); err != nil {
							t.Fatalf("step %d: SplitRange: %v", step, err)
						}
					} else if down < 0 {
						ri := r.Intn(s.Ranges())
						if err := s.MigrateRange(ri, r.Intn(shards)); err != nil {
							t.Fatalf("step %d: MigrateRange(%d): %v", step, ri, err)
						}
					}
				}
				// Crash churn.
				if replicas > 1 {
					if step%400 == 250 && down < 0 {
						down = r.Intn(shards)
						s.CrashShard(down)
					}
					if step%400 == 399 && down >= 0 {
						if _, err := s.RecoverShard(down); err != nil {
							t.Fatal(err)
						}
						for i := 0; i < maxRepairPasses; i++ {
							if s.Repair().Applied() == 0 {
								break
							}
						}
						if st := s.ReplicaState(down); st != int(replicaUp) {
							t.Fatalf("step %d: shard %d state %d after repair", step, down, st)
						}
						down = -1
					}
				} else if step%700 == 600 {
					// Whole-store power failure: every acked write must
					// survive recovery, placement table included.
					s.Crash()
					if _, err := s.Recover(); err != nil {
						t.Fatalf("step %d: Recover: %v", step, err)
					}
				}
			}
			if down >= 0 {
				if _, err := s.RecoverShard(down); err != nil {
					t.Fatal(err)
				}
				for i := 0; i < maxRepairPasses; i++ {
					if s.Repair().Applied() == 0 {
						break
					}
				}
			}
			if replicas > 1 {
				if err := s.ConvergenceCheck(); err != nil {
					t.Fatal(err)
				}
			}
			// Final audit: store contents == model exactly, by point reads
			// and by full scan.
			for k, want := range model {
				v, err := th.Get([]byte(k))
				if err != nil || string(v) != want {
					t.Fatalf("final: Get(%q) = %q,%v; want %q", k, v, err, want)
				}
			}
			seen := 0
			if err := th.Scan(nil, 0, func(kv core.KV) bool {
				want, ok := model[string(kv.Key)]
				if !ok || want != string(kv.Value) {
					t.Fatalf("final scan: %q = %q, model %q (present=%v)", kv.Key, kv.Value, want, ok)
				}
				seen++
				return true
			}); err != nil {
				t.Fatal(err)
			}
			if seen != len(model) {
				t.Fatalf("final scan saw %d keys, model has %d", seen, len(model))
			}
		})
	}
}

// TestMigrationMidFlightStress drives concurrent writers (sync, async,
// batch, scans) across the keyspace while the main goroutine splits and
// migrates ranges under them — the strict race gate for the placement
// guard: no acked write may be lost across any number of epoch flips,
// and no scan may error while every shard is up.
func TestMigrationMidFlightStress(t *testing.T) {
	const shards, writers, perWriter = 3, 4, 150
	s := rng(t, shards, 1, [][]byte{key(200), key(400)}, func(o *core.Options) {
		o.NumThreads = writers
	})
	expected := make([]map[string]string, writers)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		expected[w] = map[string]string{}
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			th := s.Thread(w)
			r := rand.New(rand.NewSource(int64(100 + w)))
			exp := expected[w]
			base := w * perWriter // writers own disjoint key stripes
			for i := 0; i < 600; i++ {
				k := key(base + r.Intn(perWriter))
				switch op := r.Intn(10); {
				case op < 3: // sync put
					v := fmt.Sprintf("w%d-%d", w, i)
					if err := th.Put(k, []byte(v)); err != nil {
						t.Errorf("writer %d: Put: %v", w, err)
						return
					}
					exp[string(k)] = v
				case op < 5: // async put, waited
					v := fmt.Sprintf("w%d-a%d", w, i)
					if err := th.PutAsync(k, []byte(v)).Wait(); err != nil {
						t.Errorf("writer %d: PutAsync: %v", w, err)
						return
					}
					exp[string(k)] = v
				case op < 6: // batch put
					v := fmt.Sprintf("w%d-b%d", w, i)
					k2 := key(base + r.Intn(perWriter))
					if err := th.PutBatch([]core.KV{
						{Key: k, Value: []byte(v)},
						{Key: k2, Value: []byte(v + "x")},
					}); err != nil {
						t.Errorf("writer %d: PutBatch: %v", w, err)
						return
					}
					exp[string(k)] = v
					exp[string(k2)] = v + "x"
					if string(k) == string(k2) {
						exp[string(k)] = v + "x" // later duplicate wins
					}
				case op < 7: // delete
					err := th.Delete(k)
					if err != nil && !errors.Is(err, core.ErrNotFound) {
						t.Errorf("writer %d: Delete: %v", w, err)
						return
					}
					delete(exp, string(k))
				case op < 9: // get (stripe-exclusive, so exact)
					v, err := th.Get(k)
					want, ok := exp[string(k)]
					if ok && (err != nil || string(v) != want) {
						t.Errorf("writer %d: Get(%q) = %q,%v; want %q", w, k, v, err, want)
						return
					}
					if !ok && !errors.Is(err, core.ErrNotFound) {
						t.Errorf("writer %d: Get(%q) = %v, want ErrNotFound", w, k, err)
						return
					}
				default: // scan: no error while all shards are up
					if err := th.Scan(k, 10, func(core.KV) bool { return true }); err != nil {
						t.Errorf("writer %d: Scan: %v", w, err)
						return
					}
				}
			}
		}(w)
	}
	// Placement churn under the writers: splits and migrations walking
	// every range across every shard.
	for i := 0; i < 8; i++ {
		if i == 2 {
			if err := s.SplitRange(key(100)); err != nil {
				t.Error(err)
			}
		}
		if i == 5 {
			if err := s.SplitRange(key(300)); err != nil {
				t.Error(err)
			}
		}
		ri := i % s.Ranges()
		if err := s.MigrateRange(ri, (ri+i)%shards); err != nil {
			t.Errorf("MigrateRange(%d): %v", ri, err)
		}
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	// Final audit across all writers' acked state.
	th := s.Thread(0)
	total := 0
	for w, exp := range expected {
		total += len(exp)
		for k, want := range exp {
			v, err := th.Get([]byte(k))
			if err != nil || string(v) != want {
				t.Fatalf("final: writer %d key %q = %q,%v; want %q", w, k, v, err, want)
			}
		}
	}
	seen := 0
	if err := th.Scan(nil, 0, func(kv core.KV) bool { seen++; return true }); err != nil {
		t.Fatal(err)
	}
	if seen != total {
		t.Fatalf("final scan saw %d keys, writers acked %d", seen, total)
	}
}
