package shard

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"repro/internal/core"
)

// rng opens a range-placement store (auto-repair off so tests drive
// repair deterministically, like repl()).
func rng(t *testing.T, shards, replicas int, splits [][]byte, mutate func(*core.Options)) *Store {
	t.Helper()
	return small(t, shards, func(o *core.Options) {
		o.Placement = "range"
		o.SplitKeys = splits
		o.Replicas = replicas
		o.DisableAutoRepair = true
		if mutate != nil {
			mutate(o)
		}
	})
}

// quartiles returns split keys dividing [0, n) into parts equal ranges.
func quartiles(n, parts int) [][]byte {
	var out [][]byte
	for i := 1; i < parts; i++ {
		out = append(out, key(i*n/parts))
	}
	return out
}

func TestRangePlacementRoundTrip(t *testing.T) {
	const n = 400
	s := rng(t, 4, 1, quartiles(n, 4), nil)
	th := s.Thread(0)
	for i := 0; i < n; i++ {
		if err := th.Put(key(i), value(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		v, err := th.Get(key(i))
		if err != nil || !bytes.Equal(v, value(i)) {
			t.Fatalf("Get(%d) = %q, %v", i, v, err)
		}
	}
	// Every key lives on exactly one shard — boundary keys included.
	if got := s.Len(); got != n {
		t.Fatalf("Len = %d, want %d (each key on exactly one shard)", got, n)
	}
	// Keys land on the range owner the table reports.
	for i := 0; i < n; i++ {
		j := s.ShardOf(key(i))
		if v, err := s.Shard(j).Thread(0).Get(key(i)); err != nil || !bytes.Equal(v, value(i)) {
			t.Fatalf("key %d not on its owner %d: %v", i, j, err)
		}
	}
	if err := th.Delete(key(0)); err != nil {
		t.Fatal(err)
	}
	if _, err := th.Get(key(0)); !errors.Is(err, core.ErrNotFound) {
		t.Fatalf("Get after Delete = %v", err)
	}
	if err := th.Delete(key(0)); !errors.Is(err, core.ErrNotFound) {
		t.Fatalf("double Delete = %v, want ErrNotFound", err)
	}
}

func TestRangeRoutingBoundaries(t *testing.T) {
	s := rng(t, 3, 1, [][]byte{[]byte("b"), []byte("c")}, nil)
	if got := s.Ranges(); got != 3 {
		t.Fatalf("Ranges = %d, want 3", got)
	}
	// A key equal to a split belongs to the right-hand range (inclusive
	// lower bounds), so every key has exactly one owner.
	cases := []struct {
		key  string
		want int
	}{
		{"a", 0}, {"azzz", 0},
		{"b", 1}, {"bzzz", 1},
		{"c", 2}, {"zzzz", 2},
	}
	for _, c := range cases {
		if got := s.ShardOf([]byte(c.key)); got != c.want {
			t.Fatalf("ShardOf(%q) = %d, want %d", c.key, got, c.want)
		}
	}
	if lo, hi := s.RangeBounds(0); lo != nil || string(hi) != "b" {
		t.Fatalf("RangeBounds(0) = %q, %q", lo, hi)
	}
	if lo, hi := s.RangeBounds(2); string(lo) != "c" || hi != nil {
		t.Fatalf("RangeBounds(2) = %q, %q", lo, hi)
	}
	if got := s.PlacementMode(); got != "range" {
		t.Fatalf("PlacementMode = %q", got)
	}
	if got := s.PlacementEpoch(); got != 1 {
		t.Fatalf("PlacementEpoch = %d, want 1", got)
	}
}

func TestRangeZeroSplitsMatchesHash(t *testing.T) {
	// With no splits the single range is hash-owned: routing must equal
	// hash placement key for key (the "both placement modes" bridge).
	s := rng(t, 4, 1, nil, nil)
	if got := s.Ranges(); got != 1 {
		t.Fatalf("Ranges = %d, want 1", got)
	}
	if got := s.RangeOwner(0); got != hashOwned {
		t.Fatalf("RangeOwner(0) = %d, want hashOwned", got)
	}
	for i := 0; i < 500; i++ {
		if got, want := s.ShardOf(key(i)), jump(fnv64a(key(i)), 4); got != want {
			t.Fatalf("ShardOf(%d) = %d, want hash %d", i, got, want)
		}
	}
	// The hash-owned range still serves scans (bounded k-way merge).
	th := s.Thread(0)
	for i := 0; i < 100; i++ {
		if err := th.Put(key(i), value(i)); err != nil {
			t.Fatal(err)
		}
	}
	got := 0
	if err := th.Scan(key(0), 0, func(kv core.KV) bool { got++; return true }); err != nil {
		t.Fatal(err)
	}
	if got != 100 {
		t.Fatalf("scan over hash-owned range saw %d keys, want 100", got)
	}
}

func TestRangeScanOrderAndBounds(t *testing.T) {
	const n = 300
	s := rng(t, 3, 1, quartiles(n, 3), nil)
	th := s.Thread(0)
	for i := 0; i < n; i++ {
		if err := th.Put(key(i), value(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Full scan: global key order, every key once.
	var keys [][]byte
	if err := th.Scan(nil, 0, func(kv core.KV) bool {
		keys = append(keys, append([]byte(nil), kv.Key...))
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(keys) != n {
		t.Fatalf("full scan saw %d keys, want %d", len(keys), n)
	}
	for i := 1; i < len(keys); i++ {
		if bytes.Compare(keys[i-1], keys[i]) >= 0 {
			t.Fatalf("scan out of order at %d: %q >= %q", i, keys[i-1], keys[i])
		}
	}
	// Bounded scan crossing a range boundary: starts mid-range, spans
	// into the next owner, respects count.
	start := n/3 - 5
	var got []int
	if err := th.Scan(key(start), 10, func(kv core.KV) bool {
		var i int
		fmt.Sscanf(string(kv.Key), "user%d", &i)
		got = append(got, i)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != 10 || got[0] != start || got[9] != start+9 {
		t.Fatalf("boundary-crossing scan = %v", got)
	}
	// Early stop.
	seen := 0
	if err := th.Scan(nil, 0, func(kv core.KV) bool { seen++; return seen < 7 }); err != nil {
		t.Fatal(err)
	}
	if seen != 7 {
		t.Fatalf("early-stop scan saw %d", seen)
	}
}

func TestRangeScanEmptyRange(t *testing.T) {
	// Ranges [0,100) and [200,300) populated; [100,200) empty. Scans
	// spanning the empty middle range skip it without emitting or
	// erroring.
	s := rng(t, 3, 1, [][]byte{key(100), key(200)}, nil)
	th := s.Thread(0)
	for i := 0; i < 100; i++ {
		if err := th.Put(key(i), value(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 200; i < 300; i++ {
		if err := th.Put(key(i), value(i)); err != nil {
			t.Fatal(err)
		}
	}
	var got []int
	if err := th.Scan(key(50), 100, func(kv core.KV) bool {
		var i int
		fmt.Sscanf(string(kv.Key), "user%d", &i)
		got = append(got, i)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != 100 || got[0] != 50 || got[49] != 99 || got[50] != 200 || got[99] != 249 {
		t.Fatalf("scan across empty range: len=%d first=%v", len(got), got[:min(4, len(got))])
	}
	// A scan starting inside the empty range skips straight to the next
	// populated range (Scan's contract is keys >= start).
	got = got[:0]
	if err := th.Scan(key(120), 10, func(kv core.KV) bool {
		var i int
		fmt.Sscanf(string(kv.Key), "user%d", &i)
		got = append(got, i)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != 10 || got[0] != 200 || got[9] != 209 {
		t.Fatalf("scan from empty range = %v", got)
	}
}

func TestSplitRangeOnline(t *testing.T) {
	const n = 200
	s := rng(t, 2, 1, [][]byte{key(n / 2)}, nil)
	th := s.Thread(0)
	for i := 0; i < n; i++ {
		if err := th.Put(key(i), value(i)); err != nil {
			t.Fatal(err)
		}
	}
	epoch := s.PlacementEpoch()
	if err := s.SplitRange(key(n / 4)); err != nil {
		t.Fatal(err)
	}
	if got := s.Ranges(); got != 3 {
		t.Fatalf("Ranges after split = %d", got)
	}
	if s.PlacementEpoch() != epoch+1 {
		t.Fatalf("epoch = %d, want %d", s.PlacementEpoch(), epoch+1)
	}
	// Both halves keep the owner: no data moved, everything readable.
	if s.RangeOwner(0) != s.RangeOwner(1) {
		t.Fatalf("split halves have different owners: %d vs %d", s.RangeOwner(0), s.RangeOwner(1))
	}
	for i := 0; i < n; i++ {
		if _, err := th.Get(key(i)); err != nil {
			t.Fatalf("Get(%d) after split: %v", i, err)
		}
	}
	// Splitting on an existing boundary is a no-op.
	if err := s.SplitRange(key(n / 4)); err != nil {
		t.Fatal(err)
	}
	if got := s.Ranges(); got != 3 {
		t.Fatalf("duplicate split changed Ranges to %d", got)
	}
}

func TestMigrateRangeMovesData(t *testing.T) {
	const n = 300
	s := rng(t, 3, 1, quartiles(n, 3), nil)
	th := s.Thread(0)
	for i := 0; i < n; i++ {
		if err := th.Put(key(i), value(i)); err != nil {
			t.Fatal(err)
		}
	}
	src := s.RangeOwner(1)
	dst := (src + 1) % 3
	before := s.Shard(dst).Len()
	epoch := s.PlacementEpoch()
	if err := s.MigrateRange(1, dst); err != nil {
		t.Fatal(err)
	}
	if got := s.RangeOwner(1); got != dst {
		t.Fatalf("RangeOwner(1) = %d, want %d", got, dst)
	}
	if s.PlacementEpoch() != epoch+1 {
		t.Fatalf("epoch = %d, want %d", s.PlacementEpoch(), epoch+1)
	}
	// Destination gained the range, source was purged: store-wide key
	// count is unchanged (no orphan, no double-own).
	if got := s.Len(); got != n {
		t.Fatalf("Len after migration = %d, want %d", got, n)
	}
	if got := s.Shard(dst).Len(); got <= before {
		t.Fatalf("destination shard did not grow: %d -> %d", before, got)
	}
	for i := 0; i < n; i++ {
		v, err := th.Get(key(i))
		if err != nil || !bytes.Equal(v, value(i)) {
			t.Fatalf("Get(%d) after migration = %v", i, err)
		}
	}
	// Migrating to the current owner is a no-op.
	if err := s.MigrateRange(1, dst); err != nil {
		t.Fatal(err)
	}
	// Deleted keys stay deleted after migrating the range again — the
	// tombstone streams with the range.
	if err := th.Delete(key(n / 3)); err != nil {
		t.Fatal(err)
	}
	if err := s.MigrateRange(1, src); err != nil {
		t.Fatal(err)
	}
	if _, err := th.Get(key(n / 3)); !errors.Is(err, core.ErrNotFound) {
		t.Fatalf("deleted key resurrected after migration: %v", err)
	}
}

func TestRebalanceRangesFromHash(t *testing.T) {
	// Zero splits (hash-equivalent routing) → RebalanceRanges learns
	// boundaries from live keys and migrates every range to an owner:
	// the online hash→range conversion.
	const n = 400
	s := rng(t, 4, 1, nil, nil)
	th := s.Thread(0)
	for i := 0; i < n; i++ {
		if err := th.Put(key(i), value(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.RebalanceRanges(); err != nil {
		t.Fatal(err)
	}
	if got := s.Ranges(); got != 4 {
		t.Fatalf("Ranges after rebalance = %d, want 4", got)
	}
	for r := 0; r < s.Ranges(); r++ {
		if s.RangeOwner(r) == hashOwned {
			t.Fatalf("range %d still hash-owned after rebalance", r)
		}
	}
	if got := s.Len(); got != n {
		t.Fatalf("Len after rebalance = %d, want %d", got, n)
	}
	for i := 0; i < n; i++ {
		v, err := th.Get(key(i))
		if err != nil || !bytes.Equal(v, value(i)) {
			t.Fatalf("Get(%d) after rebalance = %v", i, err)
		}
	}
	// A narrow scan now touches only the owning shard.
	pre := s.Shard(0).Stats().Scans + s.Shard(1).Stats().Scans + s.Shard(2).Stats().Scans + s.Shard(3).Stats().Scans
	if err := th.Scan(key(10), 5, func(core.KV) bool { return true }); err != nil {
		t.Fatal(err)
	}
	post := s.Shard(0).Stats().Scans + s.Shard(1).Stats().Scans + s.Shard(2).Stats().Scans + s.Shard(3).Stats().Scans
	if post-pre != 1 {
		t.Fatalf("narrow scan issued %d shard scans, want 1", post-pre)
	}
}

func TestScanDuringDualWindow(t *testing.T) {
	// A scan and reads spanning a mid-flight migration observe the
	// dual-read window correctly: migrated values are served from the
	// destination, a delete landing post-flip does not resurrect from
	// the unpurged source, and truly missing keys miss.
	const n = 300
	s := rng(t, 3, 1, quartiles(n, 3), nil)
	th := s.Thread(0)
	for i := 0; i < n; i++ {
		if err := th.Put(key(i), value(i)); err != nil {
			t.Fatal(err)
		}
	}
	dst := (s.RangeOwner(1) + 1) % 3
	checked := false
	s.migHook = func(stage string) {
		if stage != "flipped" {
			return
		}
		checked = true
		probe := s.Thread(1)
		// Scan spanning the migrating range during the dual window.
		seen := 0
		if err := probe.Scan(nil, 0, func(core.KV) bool { seen++; return true }); err != nil {
			t.Errorf("scan during dual window: %v", err)
		}
		if seen != n {
			t.Errorf("scan during dual window saw %d keys, want %d", seen, n)
		}
		// Migrated value served (from the destination).
		mid := n/3 + 5
		if v, err := probe.Get(key(mid)); err != nil || !bytes.Equal(v, value(mid)) {
			t.Errorf("Get during dual window = %v", err)
		}
		// A post-flip delete must not resurrect from the source: the
		// destination's tombstone record blocks the dual fallback.
		if err := probe.Delete(key(mid)); err != nil {
			t.Errorf("Delete during dual window: %v", err)
		}
		if _, err := probe.Get(key(mid)); !errors.Is(err, core.ErrNotFound) {
			t.Errorf("deleted key visible during dual window: %v", err)
		}
		// A key that never existed misses through the fallback path too.
		if _, err := probe.Get([]byte("user99999999")); !errors.Is(err, core.ErrNotFound) {
			t.Errorf("missing key during dual window: %v", err)
		}
		// Async read of a migrated key during the window.
		if v, err := probe.GetAsync(key(mid + 1)).Value(); err != nil || !bytes.Equal(v, value(mid+1)) {
			t.Errorf("GetAsync during dual window = %v", err)
		}
	}
	if err := s.MigrateRange(1, dst); err != nil {
		t.Fatal(err)
	}
	if !checked {
		t.Fatal("flipped hook never ran")
	}
	if _, err := th.Get(key(n/3 + 5)); !errors.Is(err, core.ErrNotFound) {
		t.Fatalf("dual-window delete lost after settle: %v", err)
	}
}

func TestRangeScanReplicatedAvailability(t *testing.T) {
	// Replicas > 1 range scans fail with errNoReplica only when a whole
	// replica set is down; a single down member routes to a live one.
	const n = 300
	s := rng(t, 4, 2, quartiles(n, 4), nil)
	th := s.Thread(0)
	for i := 0; i < n; i++ {
		if err := th.Put(key(i), value(i)); err != nil {
			t.Fatal(err)
		}
	}
	owner := s.RangeOwner(1) // set {owner, owner+1}
	s.CrashShard(owner)
	seen := 0
	if err := th.Scan(nil, 0, func(core.KV) bool { seen++; return true }); err != nil {
		t.Fatalf("scan with one set member down: %v", err)
	}
	if seen != n {
		t.Fatalf("scan with one member down saw %d keys, want %d", seen, n)
	}
	// Down the whole set: scans touching range 1 fail, scans confined
	// to other ranges still work.
	s.CrashShard((owner + 1) % 4)
	if err := th.Scan(nil, 0, func(core.KV) bool { return true }); !errors.Is(err, errNoReplica) {
		t.Fatalf("scan over dead set = %v, want errNoReplica", err)
	}
	// Range 3's set must still be live for a confined scan to pass
	// (sets overlap on a 4-ring with R=2 only at distance 1).
	lo, _ := s.RangeBounds(3)
	own3 := s.RangeOwner(3)
	if own3 != owner && own3 != (owner+1)%4 && (own3+1)%4 != owner {
		count := 0
		if err := th.Scan(lo, 10, func(core.KV) bool { count++; return true }); err != nil {
			t.Fatalf("confined scan over live set: %v", err)
		}
	}
}

func TestPlacementValidation(t *testing.T) {
	if _, err := core.Open(core.Options{NumThreads: 1, NumSSDs: 1, PWBBytesPerThread: 1 << 20,
		HSITCapacity: 1 << 10, SSDBytes: 1 << 20, ChunkSize: 16 << 10, Placement: "range"}); err == nil {
		t.Fatal("core.Open must reject Placement=range")
	}
	if _, err := Open(core.Options{Shards: 2, Placement: "zorp"}); err == nil {
		t.Fatal("unknown placement must be rejected")
	}
	s := small(t, 2, nil) // hash mode
	if err := s.SplitRange([]byte("k")); !errors.Is(err, errHashPlacement) {
		t.Fatalf("SplitRange on hash store = %v", err)
	}
	if err := s.MigrateRange(0, 1); !errors.Is(err, errHashPlacement) {
		t.Fatalf("MigrateRange on hash store = %v", err)
	}
	if err := s.RebalanceRanges(); !errors.Is(err, errHashPlacement) {
		t.Fatalf("RebalanceRanges on hash store = %v", err)
	}
	if got := s.PlacementMode(); got != "hash" {
		t.Fatalf("PlacementMode = %q", got)
	}
	r := rng(t, 2, 1, nil, nil)
	if err := r.MigrateRange(5, 0); err == nil {
		t.Fatal("out-of-range range index must be rejected")
	}
	if err := r.MigrateRange(0, 9); err == nil {
		t.Fatal("out-of-range destination must be rejected")
	}
	if err := r.SplitRange(nil); err == nil {
		t.Fatal("empty split key must be rejected")
	}
}

func TestRangeBatchAndAsync(t *testing.T) {
	const n = 240
	s := rng(t, 3, 1, quartiles(n, 3), nil)
	th := s.Thread(0)
	var kvs []core.KV
	for i := 0; i < n; i++ {
		kvs = append(kvs, core.KV{Key: key(i), Value: value(i)})
	}
	if err := th.PutBatch(kvs); err != nil {
		t.Fatal(err)
	}
	keys := make([][]byte, n)
	for i := range keys {
		keys[i] = key(i)
	}
	vals, err := th.MultiGet(keys)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range vals {
		if !bytes.Equal(v, value(i)) {
			t.Fatalf("MultiGet[%d] = %q", i, v)
		}
	}
	// Async round trip + async delete.
	for i := 0; i < 50; i++ {
		if err := th.PutAsync(key(i), value(i+1)).Wait(); err != nil {
			t.Fatal(err)
		}
	}
	th.Flush()
	for i := 0; i < 50; i++ {
		v, err := th.GetAsync(key(i)).Value()
		if err != nil || !bytes.Equal(v, value(i+1)) {
			t.Fatalf("GetAsync(%d) = %v", i, err)
		}
	}
	if err := th.DeleteAsync(key(0)).Wait(); err != nil {
		t.Fatal(err)
	}
	if _, err := th.Get(key(0)); !errors.Is(err, core.ErrNotFound) {
		t.Fatalf("Get after DeleteAsync = %v", err)
	}
	if got := s.Len(); got != n-1 {
		t.Fatalf("Len = %d, want %d", got, n-1)
	}
}
