package shard

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/core"
)

// Anti-entropy repair (the creiht/valuestore pull-replication idiom):
// a repair pass for shard j walks every peer's timestamped entry map —
// live stamps and tombstones — restricted to keys whose replica set
// contains j, and pulls anything stamped newer than j's own record.
// Pulls ride the existing async submission pipeline on core thread 0 of
// the source and destination shards (the async methods are safe from
// any goroutine), so repair traffic is coalesced and timed on the same
// virtual async timelines as foreground pipelined load. Last-writer-
// wins at the destination makes passes idempotent: a pass that races
// foreground writes at worst re-offers a stamp the destination already
// has. Convergence is "a full pass pulled nothing".

// maxRepairPasses bounds one convergence attempt of the background
// worker. Under quiesced writes a single pass converges; under
// continuous load each pass shrinks the in-flight window, and if the
// bound is hit the shard simply stays repairing until the next attempt.
const maxRepairPasses = 16

// RepairStats reports what one or more anti-entropy passes applied.
type RepairStats struct {
	Passes              int // enumeration passes run
	KeysPulled          int // live values re-replicated
	TombstonesPulled    int // tombstones propagated
	TombstonesDiscarded int // tombstones dropped past the grace window
}

// Applied returns the number of records a pass moved — zero means the
// pass found the shard converged.
func (r RepairStats) Applied() int { return r.KeysPulled + r.TombstonesPulled }

func (r *RepairStats) add(o RepairStats) {
	r.Passes += o.Passes
	r.KeysPulled += o.KeysPulled
	r.TombstonesPulled += o.TombstonesPulled
	r.TombstonesDiscarded += o.TombstonesDiscarded
}

// CrashShard simulates a power failure on shard j's devices and marks
// the replica down so the replicated paths route around it. With
// Replicas == 1 this is Shard(j).Crash() plus unavailability for j's
// keyspace until RecoverShard.
func (s *Store) CrashShard(j int) {
	s.setState(j, replicaDown)
	s.shards[j].Crash()
}

// RecoverShard rebuilds shard j from its durable state and, when
// replicated, moves it to the repairing state: it immediately accepts
// new writes (so it stops diverging) but serves reads only as a last
// resort until an anti-entropy pass converges it — the background
// worker is kicked automatically unless Options.DisableAutoRepair.
func (s *Store) RecoverShard(j int) (core.RecoveryReport, error) {
	rep, err := s.shards[j].Recover()
	if err != nil {
		return rep, err
	}
	if s.replicas <= 1 {
		s.setState(j, replicaUp)
		return rep, nil
	}
	s.setState(j, replicaRepairing)
	if !s.opt.DisableAutoRepair && s.repairCh != nil {
		select {
		case s.repairCh <- j:
		default: // worker already has a kick pending; it re-scans states
		}
	}
	return rep, nil
}

// repairWorker is the background anti-entropy goroutine: each kick
// sweeps every repairing shard to convergence. A shard that does not
// converge within maxRepairPasses (continuous heavy writes) stays
// repairing and is retried after a short real-time backoff, so the
// worker never spins hot.
func (s *Store) repairWorker() {
	defer s.repairWG.Done()
	for {
		select {
		case <-s.repairStop:
			return
		case <-s.repairCh:
		}
		for {
			progressed := false
			pending := false
			for j := range s.state {
				if s.state[j].Load() != replicaRepairing {
					continue
				}
				if s.repairUntilConverged(j) {
					progressed = true
				} else {
					pending = true
				}
			}
			if !pending {
				break
			}
			if !progressed {
				select {
				case <-s.repairStop:
					return
				case <-time.After(time.Millisecond):
				}
			}
		}
	}
}

// stopRepairWorker joins the background worker (idempotent).
func (s *Store) stopRepairWorker() {
	if s.repairStop == nil {
		return
	}
	select {
	case <-s.repairStop:
	default:
		close(s.repairStop)
	}
	s.repairWG.Wait()
}

// repairUntilConverged runs passes for shard j until one pulls nothing
// (RepairShard promotes the shard to up on that pass, unless a keyspace
// peer was down — then the shard stays repairing and the worker parks
// until the peer's RecoverShard kicks it again). Returns false if the
// pass bound was hit (or the shard crashed again mid-repair) without
// the pass going quiet.
func (s *Store) repairUntilConverged(j int) bool {
	for pass := 0; pass < maxRepairPasses; pass++ {
		st := s.RepairShard(j)
		if s.state[j].Load() != replicaRepairing {
			return true // converged, or crashed again mid-repair
		}
		if st.Applied() == 0 {
			return true
		}
	}
	return false
}

// RepairShard runs one anti-entropy pull pass into shard j: enumerate
// every live peer's stamps for keys replicated on j and pull anything
// newer than j's own record. Returns what the pass applied; call it
// repeatedly until Applied() == 0 for convergence (the fault-injection
// gate asserts the pass count stays bounded). A pass that pulls nothing
// promotes a repairing shard back to up — unless a keyspace peer was
// down during the pass: that peer may be the only holder of acked
// writes for j's keyspace, so promoting on a pass that could not
// consult it would declare convergence while acked data is still
// missing (and, since anti-entropy only pulls into repairing shards,
// the gap would never heal once j is up). The shard stays repairing
// until a pass runs with every keyspace peer consultable; RecoverShard
// on the peer re-kicks the worker. Safe to call concurrently with
// foreground traffic; passes themselves serialize.
func (s *Store) RepairShard(j int) RepairStats {
	var st RepairStats
	if s.replicas <= 1 {
		return st
	}
	s.repairMu.Lock()
	defer s.repairMu.Unlock()
	st.Passes = 1
	s.m.repairPasses.Inc()
	dst := s.shards[j]
	peerDown := false
	var rset []int
	for i := range s.shards {
		if i == j {
			continue
		}
		if s.state[i].Load() == replicaDown {
			if s.ringPeers(i, j) {
				peerDown = true
			}
			continue
		}
		src := s.shards[i]
		type ent struct {
			key  []byte
			ts   uint64
			tomb bool
		}
		var todo []ent
		src.ReplicaEntries(func(key []byte, ts uint64, tomb bool) bool {
			rset = s.replicaSet(key, rset)
			member := false
			for _, r := range rset {
				if r == j {
					member = true
					break
				}
			}
			if !member {
				return true
			}
			if cur, _, ok := dst.ReplicaNewest(key); !ok || cur < ts {
				todo = append(todo, ent{key: key, ts: ts, tomb: tomb})
			}
			return true
		})
		for _, e := range todo {
			if e.tomb {
				err := dst.Thread(0).DeleteTSAsync(e.key, e.ts).Wait()
				if err == nil || errors.Is(err, core.ErrNotFound) {
					st.TombstonesPulled++
					s.m.repairTombsPulled.Inc()
				}
				continue
			}
			v, err := src.Thread(0).GetAsync(e.key).Value()
			if err != nil {
				continue // overwritten or deleted since enumeration; next pass settles it
			}
			// Re-check the stamp: installing v under e.ts when the source
			// has moved on would pin a stale value under a newer-looking
			// stamp. A moved stamp is left for the next pass.
			if ts2, tomb2, ok := src.ReplicaNewest(e.key); !ok || tomb2 || ts2 != e.ts {
				continue
			}
			if dst.Thread(0).PutTSAsync(e.key, v, e.ts).Wait() == nil {
				st.KeysPulled++
				s.m.repairKeysPulled.Inc()
			}
		}
	}
	if st.Applied() == 0 && !peerDown && s.state[j].CompareAndSwap(replicaRepairing, replicaUp) {
		s.m.repairConverged.Inc()
	}
	return st
}

// ringPeers reports whether shards i and j share any replica set: with
// ring-successor placement the set of primary p is {p .. p+R-1} mod n,
// so two shards overlap some set exactly when their ring distance is
// less than the replica factor.
func (s *Store) ringPeers(i, j int) bool {
	n := len(s.shards)
	d := i - j
	if d < 0 {
		d = -d
	}
	if n-d < d {
		d = n - d
	}
	return d < s.replicas
}

// Repair runs one pull pass into every live shard, promotes repairing
// shards that converged, and — only when every replica is up — discards
// tombstones older than Options.TombstoneGraceWrites stamps, the point
// at which every replica has provably seen them. Returns the aggregate
// work applied; call until Applied() == 0 for full convergence.
func (s *Store) Repair() RepairStats {
	var agg RepairStats
	if s.replicas <= 1 {
		return agg
	}
	for j := range s.shards {
		if s.state[j].Load() == replicaDown {
			continue
		}
		agg.add(s.RepairShard(j))
	}
	allUp := true
	for j := range s.state {
		if s.state[j].Load() != replicaUp {
			allUp = false
			break
		}
	}
	if allUp {
		if cur := s.stamp.Load(); cur > s.graceWrites() {
			cutoff := cur - s.graceWrites()
			for _, cs := range s.shards {
				n := cs.DiscardTombstones(cutoff)
				agg.TombstonesDiscarded += n
				s.m.repairTombsDiscarded.Add(int64(n))
			}
		}
	}
	return agg
}

func (s *Store) graceWrites() uint64 {
	if s.opt.TombstoneGraceWrites != 0 {
		return s.opt.TombstoneGraceWrites
	}
	return 4096 // core's default (applyDefaults runs per shard, not here)
}

// PairDigest folds an order-independent digest of the replicated
// keyspace shards i and j share: every (key, stamp, tombstone) record
// on each side whose replica set contains both shards. Equal digests
// mean the two replicas agree bit-for-bit on their shared keys — the
// convergence check the fault-injection gate uses. Callers must quiesce
// writes first (the fold reads live state).
func (s *Store) PairDigest(i, j int) (di, dj uint64) {
	return s.sharedDigest(i, j), s.sharedDigest(j, i)
}

// sharedDigest digests shard a's records for keys replicated on both a
// and b.
func (s *Store) sharedDigest(a, b int) uint64 {
	var d uint64
	var rset []int
	s.shards[a].ReplicaEntries(func(key []byte, ts uint64, tomb bool) bool {
		rset = s.replicaSet(key, rset)
		hasA, hasB := false, false
		for _, r := range rset {
			hasA = hasA || r == a
			hasB = hasB || r == b
		}
		if !hasA || !hasB {
			return true
		}
		h := fnv64a(key) ^ (ts * 0x9e3779b97f4a7c15)
		if tomb {
			h = ^h
		}
		// Avalanche before folding so single-bit stamp differences
		// cannot cancel across keys.
		h ^= h >> 33
		h *= 0xff51afd7ed558ccd
		h ^= h >> 33
		d ^= h
		return true
	})
	return d
}

// ConvergenceCheck verifies full-keyspace digest equality across every
// replica pair that is not down, returning an error naming the first
// divergent pair. Quiesce writes (Flush, stop submitting) before
// calling.
func (s *Store) ConvergenceCheck() error {
	if s.replicas <= 1 {
		return nil
	}
	for i := 0; i < len(s.shards); i++ {
		if s.state[i].Load() == replicaDown {
			continue
		}
		for j := i + 1; j < len(s.shards); j++ {
			if s.state[j].Load() == replicaDown {
				continue
			}
			if di, dj := s.PairDigest(i, j); di != dj {
				return fmt.Errorf("prism: replicas diverged: shard %d digest %016x != shard %d digest %016x", i, di, j, dj)
			}
		}
	}
	return nil
}
