package shard

import (
	"errors"
	"runtime"
	"sync"

	"repro/internal/core"
)

// Replica placement and the replicated operation paths. Placement rides
// the existing jump-hash ring: a key's replica set is its jump primary
// plus the next Replicas-1 shards in ring order, so Replicas=1
// degenerates to plain sharding and growing the shard count still moves
// only ~1/n of (primary) placements.
//
// Every write draws one store-wide logical timestamp (Store.stamp) and
// applies it on each replica through core's last-writer-wins TS layer,
// which makes the fan-out idempotent and replica repair a pure
// "pull anything newer" pass (repair.go).

// Per-shard replica states. A shard is born up; CrashShard marks it
// down (writes skip it, reads route around it); RecoverShard moves it
// to repairing (it accepts new writes and repair pulls, but reads avoid
// it — it may still be missing history); a converged repair pass marks
// it up again. Exported via ReplicaState and the shard.replica_state
// gauge.
const (
	replicaUp        = int32(0)
	replicaDown      = int32(1)
	replicaRepairing = int32(2)
)

// errNoReplica reports an operation that found no live replica at all —
// every shard in the key's set was crashed.
var errNoReplica = errors.New("prism: no live replica for key")

// Replicas returns the replica factor (1 = unreplicated).
func (s *Store) Replicas() int { return s.replicas }

// ReplicaState reports shard j's availability state: 0 up, 1 down
// (crashed), 2 repairing (recovered, anti-entropy still converging).
func (s *Store) ReplicaState(j int) int { return int(s.state[j].Load()) }

func (s *Store) setState(j int, st int32) { s.state[j].Store(st) }

// Replica states change only through CrashShard, RecoverShard,
// repair-pass promotion, and markNeedsRepair's up→repairing demotion —
// never otherwise from operation paths. An operation that observes
// ErrClosed treats the replica as unavailable for that attempt
// (CrashShard stores the down state before crashing the shard, so a
// fresh state read is authoritative); writing the down state from the
// observer would race a concurrent RecoverShard and wedge a healthy
// replica down.

// markNeedsRepair demotes an up replica that failed a write with a
// non-closed error to repairing and kicks the anti-entropy worker: the
// other replicas may have acknowledged that write, and an up-but-missed
// replica would otherwise stay divergent forever (states never change
// on their own). The CAS only moves up→repairing, so it cannot race
// CrashShard (down wins: CrashShard stores down before crashing) or
// resurrect a down replica.
func (s *Store) markNeedsRepair(j int) {
	if !s.state[j].CompareAndSwap(replicaUp, replicaRepairing) {
		return
	}
	if s.repairCh != nil {
		select {
		case s.repairCh <- j:
		default: // worker already has a kick pending; it re-scans states
		}
	}
}

// writeRetries bounds the re-attempts a synchronous replicated
// operation makes when a replica crashes underneath it mid-operation:
// each retry re-reads the replica states, so an op racing a
// crash/recover transition lands on whichever replicas are now live
// instead of failing spuriously.
const writeRetries = 4

// replicaSet appends key's shard set to buf (reused scratch): the jump
// primary first, then its ring successors.
func (s *Store) replicaSet(key []byte, buf []int) []int {
	p := s.ShardOf(key)
	buf = buf[:0]
	for k := 0; k < s.replicas; k++ {
		buf = append(buf, (p+k)%len(s.shards))
	}
	return buf
}

// nextStamp draws one logical timestamp. Stamps are store-wide and
// strictly increasing; they order writes for last-writer-wins
// reconciliation, not for linearizability (which single-key ops get
// from the per-key stripe serialization in core).
func (s *Store) nextStamp() uint64 { return s.stamp.Add(1) }

// putReplicated fans one write out to every live replica in the key's
// set under one stamp. The write acknowledges when at least one replica
// accepted it; replicas that are down are skipped (repair converges
// them later). If every attempted replica turns out to be closed — the
// op raced a crash — the fan-out retries with fresh states (the stamp
// stays fixed, so partial applications are idempotent).
func (t *Thread) putReplicated(key, value []byte) error {
	s := t.s
	ts := s.nextStamp()
	for attempt := 0; ; attempt++ {
		t.rset = s.replicaSet(key, t.rset)
		acked, closed := 0, false
		var firstErr error
		for _, j := range t.rset {
			if s.state[j].Load() == replicaDown {
				s.m.replicaSkips.Inc()
				continue
			}
			err := t.ths[j].PutTS(key, value, ts)
			t.sync(j)
			switch {
			case err == nil:
				acked++
				s.m.replicaPut.Inc()
			case errors.Is(err, core.ErrClosed):
				closed = true
				s.m.replicaErrors.Inc()
			default:
				s.m.replicaErrors.Inc()
				s.markNeedsRepair(j)
				if firstErr == nil {
					firstErr = err
				}
			}
		}
		if acked > 0 {
			return nil
		}
		if firstErr != nil {
			return firstErr
		}
		if closed && attempt < writeRetries {
			runtime.Gosched()
			continue
		}
		return errNoReplica
	}
}

// getReplicated reads primary-first across the key's replica set.
// Up replicas are tried in set order; a miss on one falls through to
// the next (safe against resurrecting deletes: an acknowledged delete
// reached every replica that was up, and a replica that missed it must
// pass through repair — where the tombstone propagates — before it is
// readable again). Repairing replicas are consulted only if no up
// replica exists, as a last resort against total unavailability.
func (t *Thread) getReplicated(key []byte) ([]byte, error) {
	s := t.s
	for attempt := 0; ; attempt++ {
		t.rset = s.replicaSet(key, t.rset)
		if v, err, ok := t.getFromReplicas(key, t.rset, replicaUp); ok {
			return v, err
		}
		if v, err, ok := t.getFromReplicas(key, t.rset, replicaRepairing); ok {
			return v, err
		}
		// No replica answered: raced a crash/recover transition; retry
		// with fresh states before declaring the set unavailable.
		if attempt >= writeRetries {
			return nil, errNoReplica
		}
		runtime.Gosched()
	}
}

// getFromReplicas tries every replica currently in state want, in set
// order. ok=false means no replica in that state answered at all
// (missing counts as an answer only after every candidate missed).
func (t *Thread) getFromReplicas(key []byte, set []int, want int32) (val []byte, err error, ok bool) {
	s := t.s
	missed := false
	for pos, j := range set {
		if s.state[j].Load() != want {
			continue
		}
		v, gerr := t.ths[j].Get(key)
		t.sync(j)
		switch {
		case gerr == nil:
			if pos > 0 || want != replicaUp {
				s.m.replicaFallbacks.Inc()
			}
			s.m.replicaReads[pos].Inc()
			return v, nil, true
		case errors.Is(gerr, core.ErrNotFound):
			missed = true
		case errors.Is(gerr, core.ErrClosed):
			// Crashed underneath us; the next state read sees it down.
		default:
			return nil, gerr, true
		}
	}
	if missed {
		return nil, core.ErrNotFound, true
	}
	return nil, nil, false
}

// deleteReplicated records one timestamped tombstone on every live
// replica. The delete acknowledges when at least one replica accepted
// the tombstone; ErrNotFound is reported only when no replica held a
// live value.
func (t *Thread) deleteReplicated(key []byte) error {
	s := t.s
	ts := s.nextStamp()
	for attempt := 0; ; attempt++ {
		t.rset = s.replicaSet(key, t.rset)
		acked, found, closed := 0, false, false
		var firstErr error
		for _, j := range t.rset {
			if s.state[j].Load() == replicaDown {
				s.m.replicaSkips.Inc()
				continue
			}
			f, err := t.ths[j].DeleteTS(key, ts)
			t.sync(j)
			switch {
			case err == nil:
				acked++
				found = found || f
				s.m.replicaDelete.Inc()
			case errors.Is(err, core.ErrClosed):
				closed = true
				s.m.replicaErrors.Inc()
			default:
				s.m.replicaErrors.Inc()
				s.markNeedsRepair(j)
				if firstErr == nil {
					firstErr = err
				}
			}
		}
		if acked == 0 {
			if firstErr != nil {
				return firstErr
			}
			if closed && attempt < writeRetries {
				runtime.Gosched()
				continue
			}
			return errNoReplica
		}
		if !found {
			return core.ErrNotFound
		}
		return nil
	}
}

// putBatchReplicated partitions a batch over the replica sets of its
// keys — each entry goes to every live replica of its key, stamped
// individually — and runs the per-shard sub-batches in parallel,
// preserving core's one-epoch/one-publish-window amortization per
// replica. An entry is acknowledged if at least one of its replicas'
// sub-batches succeeded; the batch fails if any entry went wholly
// unacknowledged.
func (t *Thread) putBatchReplicated(kvs []core.KV) error {
	s := t.s
	base := s.stamp.Add(uint64(len(kvs))) - uint64(len(kvs))
	var err error
	for attempt := 0; ; attempt++ {
		err = t.putBatchReplicatedOnce(kvs, base)
		// A sub-batch that hit a closed shard raced a crash: the stamps
		// are fixed, so re-running the whole fan-out is idempotent and
		// picks up the current replica states.
		if err == nil || !errors.Is(err, core.ErrClosed) || attempt >= writeRetries {
			return err
		}
		runtime.Gosched()
	}
}

func (t *Thread) putBatchReplicatedOnce(kvs []core.KV, base uint64) error {
	s := t.s
	t.touched = t.touched[:0]
	for i := range kvs {
		ts := base + 1 + uint64(i)
		t.rset = s.replicaSet(kvs[i].Key, t.rset)
		for _, j := range t.rset {
			if s.state[j].Load() == replicaDown {
				s.m.replicaSkips.Inc()
				continue
			}
			if len(t.subPut[j]) == 0 {
				t.touched = append(t.touched, j)
			}
			t.subPut[j] = append(t.subPut[j], kvs[i])
			t.subTS[j] = append(t.subTS[j], ts)
			t.subIdx[j] = append(t.subIdx[j], i)
		}
	}
	s.m.fanout.Record(int64(len(t.touched)))
	if len(t.touched) > 1 {
		s.m.crossPut.Inc()
	}
	var wg sync.WaitGroup
	for _, j := range t.touched {
		wg.Add(1)
		go func(j int) {
			defer wg.Done()
			t.errs[j] = t.ths[j].PutBatchTS(t.subPut[j], t.subTS[j])
		}(j)
	}
	wg.Wait()
	err := t.finishBatchReplicated(len(kvs))
	for _, j := range t.touched {
		t.sync(j)
		t.subPut[j] = t.subPut[j][:0]
		t.subTS[j] = t.subTS[j][:0]
		t.subIdx[j] = t.subIdx[j][:0]
		t.errs[j] = nil
	}
	return err
}

// finishBatchReplicated folds the per-shard fan-out errors into the
// batch result: nil only if every entry was acknowledged somewhere.
func (t *Thread) finishBatchReplicated(nkvs int) error {
	s := t.s
	var errs []error
	for _, j := range t.touched {
		if t.errs[j] == nil {
			continue
		}
		errs = append(errs, t.errs[j])
		s.m.replicaErrors.Inc()
		if !errors.Is(t.errs[j], core.ErrClosed) {
			s.markNeedsRepair(j)
		}
	}
	// An entry is covered if at least one replica's sub-batch fully
	// succeeded (a failed sub-batch may have applied a prefix, but only
	// full success is counted — conservative). Coverage runs even with
	// zero sub-batch errors: an entry whose entire replica set was down
	// was never partitioned into any sub-batch at all and must surface
	// errNoReplica, not a silent acknowledgment.
	if cap(t.cov) < nkvs {
		t.cov = make([]bool, nkvs)
	}
	cov := t.cov[:nkvs]
	for i := range cov {
		cov[i] = false
	}
	for _, j := range t.touched {
		if t.errs[j] != nil {
			continue
		}
		for _, i := range t.subIdx[j] {
			cov[i] = true
		}
	}
	for i := range cov {
		if !cov[i] {
			if len(errs) > 0 {
				return errors.Join(errs...)
			}
			return errNoReplica
		}
	}
	for _, j := range t.touched {
		if t.errs[j] == nil {
			s.m.replicaPut.Add(int64(len(t.subPut[j])))
		}
	}
	return nil
}

// multiGetReplicated fans a batch read out with one preferred replica
// per key (first up replica in set order; repairing as a last resort),
// rerouting keys whose shard turns out to be closed. Unlike the
// single-key path there is no per-key miss fallback: a key missing on
// its preferred up replica is reported missing (vals entry stays nil),
// matching MultiGet's semantics of one consistent pass.
func (t *Thread) multiGetReplicated(keys [][]byte, vals [][]byte) ([][]byte, error) {
	s := t.s
	base := len(vals)
	for range keys {
		vals = append(vals, nil)
	}
	if len(keys) == 0 {
		return vals, nil
	}
	s.m.batchGet.Inc()
	remaining := make([]int, 0, len(keys))
	for i := range keys {
		remaining = append(remaining, i)
	}
	var firstErr error
	for round := 0; round <= s.replicas && len(remaining) > 0; round++ {
		perShard := make(map[int][]int)
		var dead []int
		for _, i := range remaining {
			j, ok := s.readReplicaFor(keys[i])
			if !ok {
				dead = append(dead, i)
				continue
			}
			perShard[j] = append(perShard[j], i)
		}
		if len(dead) > 0 && firstErr == nil {
			firstErr = errNoReplica
		}
		if len(perShard) == 0 {
			break
		}
		type result struct {
			j    int
			idxs []int
			vs   [][]byte
			err  error
		}
		results := make([]result, 0, len(perShard))
		var mu sync.Mutex
		var wg sync.WaitGroup
		for j, idxs := range perShard {
			wg.Add(1)
			go func(j int, idxs []int) {
				defer wg.Done()
				sub := make([][]byte, 0, len(idxs))
				for _, i := range idxs {
					sub = append(sub, keys[i])
				}
				vs, err := t.ths[j].MultiGet(sub)
				mu.Lock()
				results = append(results, result{j: j, idxs: idxs, vs: vs, err: err})
				mu.Unlock()
			}(j, idxs)
		}
		wg.Wait()
		remaining = remaining[:0]
		for _, res := range results {
			t.sync(res.j)
			switch {
			case res.err == nil:
				for k, i := range res.idxs {
					vals[base+i] = res.vs[k]
				}
			case errors.Is(res.err, core.ErrClosed):
				// Shard crashed underneath us: the next round re-reads
				// the states and routes these keys to a live replica.
				remaining = append(remaining, res.idxs...)
			default:
				if firstErr == nil {
					firstErr = res.err
				}
			}
		}
	}
	if len(remaining) > 0 && firstErr == nil {
		firstErr = errNoReplica
	}
	return vals, firstErr
}

// readReplicaFor picks the replica shard a batched read of key should
// use: the first up replica in set order, else the first repairing one.
func (s *Store) readReplicaFor(key []byte) (shard int, ok bool) {
	p := s.ShardOf(key)
	n := len(s.shards)
	repairing := -1
	for k := 0; k < s.replicas; k++ {
		j := (p + k) % n
		switch s.state[j].Load() {
		case replicaUp:
			return j, true
		case replicaRepairing:
			if repairing < 0 {
				repairing = j
			}
		}
	}
	if repairing >= 0 {
		return repairing, true
	}
	return 0, false
}

// putAsyncReplicated fans an async write out to every live replica and
// joins the per-replica handles into one caller-visible Handle: it
// completes when every replica completed, successfully if at least one
// accepted the write. Safe from any goroutine (allocates its own
// replica-set scratch).
func (t *Thread) putAsyncReplicated(key, value []byte) *core.Handle {
	s := t.s
	ts := s.nextStamp()
	set := s.replicaSet(key, make([]int, 0, s.replicas))
	hs := make([]*core.Handle, 0, len(set))
	js := make([]int, 0, len(set))
	for _, j := range set {
		if s.state[j].Load() == replicaDown {
			s.m.replicaSkips.Inc()
			continue
		}
		hs = append(hs, t.ths[j].PutTSAsync(key, value, ts))
		js = append(js, j)
	}
	return s.joinWrite(hs, js, s.m.replicaPut)
}

// deleteAsyncReplicated is putAsyncReplicated for tombstones.
func (t *Thread) deleteAsyncReplicated(key []byte) *core.Handle {
	s := t.s
	ts := s.nextStamp()
	set := s.replicaSet(key, make([]int, 0, s.replicas))
	hs := make([]*core.Handle, 0, len(set))
	js := make([]int, 0, len(set))
	for _, j := range set {
		if s.state[j].Load() == replicaDown {
			s.m.replicaSkips.Inc()
			continue
		}
		hs = append(hs, t.ths[j].DeleteTSAsync(key, ts))
		js = append(js, j)
	}
	return s.joinWrite(hs, js, s.m.replicaDelete)
}

// joinWrite composes per-replica write handles into one: nil if any
// replica succeeded, ErrNotFound if every replica reported it (deletes
// of a missing key), otherwise the first error. js names the shard
// behind each handle so a replica that failed with a non-closed error
// can be demoted to repairing. Completion time is the slowest
// replica's — the fan-out is a barrier in virtual time.
func (s *Store) joinWrite(hs []*core.Handle, js []int, opCounter interface{ Inc() }) *core.Handle {
	if len(hs) == 0 {
		ph, resolve := core.NewProxyHandle()
		resolve(nil, errNoReplica, 0)
		return ph
	}
	ph, resolve := core.NewProxyHandle()
	var mu sync.Mutex
	remaining := len(hs)
	anyOK, allNotFound := false, true
	var firstErr error
	var endMax int64
	for k, h := range hs {
		j := js[k]
		h.OnDone(func(h *core.Handle) {
			err := h.Wait()
			mu.Lock()
			switch {
			case err == nil:
				anyOK = true
				allNotFound = false
				opCounter.Inc()
			case errors.Is(err, core.ErrNotFound):
				// counts toward allNotFound
			case errors.Is(err, core.ErrClosed):
				allNotFound = false
				if firstErr == nil {
					firstErr = err
				}
				s.m.replicaErrors.Inc()
			default:
				allNotFound = false
				if firstErr == nil {
					firstErr = err
				}
				s.m.replicaErrors.Inc()
				s.markNeedsRepair(j)
			}
			if at := h.CompletedAt(); at > endMax {
				endMax = at
			}
			remaining--
			last := remaining == 0
			ok, nf, ferr, end := anyOK, allNotFound, firstErr, endMax
			mu.Unlock()
			if !last {
				return
			}
			switch {
			case ok:
				resolve(nil, nil, end)
			case nf:
				resolve(nil, core.ErrNotFound, end)
			case ferr != nil:
				resolve(nil, ferr, end)
			default:
				resolve(nil, errNoReplica, end)
			}
		})
	}
	return ph
}

// getAsyncReplicated chains an async read across the key's replica set:
// try the first candidate, and on miss or crash fall through to the
// next from the completion callback — the same failover order as the
// synchronous path, without blocking any goroutine. Note the follow-up
// submission happens when the previous attempt completes, which may be
// after a Flush started earlier; callers wanting completion wait the
// returned handle, not just Flush.
func (t *Thread) getAsyncReplicated(key []byte) *core.Handle {
	s := t.s
	set := s.replicaSet(key, make([]int, 0, s.replicas))
	order := make([]int, 0, len(set)*2)
	for _, j := range set {
		if s.state[j].Load() == replicaUp {
			order = append(order, j)
		}
	}
	for _, j := range set {
		if s.state[j].Load() == replicaRepairing {
			order = append(order, j)
		}
	}
	ph, resolve := core.NewProxyHandle()
	if len(order) == 0 {
		resolve(nil, errNoReplica, 0)
		return ph
	}
	var try func(k int, sawMiss bool, lastAt int64)
	try = func(k int, sawMiss bool, lastAt int64) {
		if k >= len(order) {
			if sawMiss {
				resolve(nil, core.ErrNotFound, lastAt)
			} else {
				resolve(nil, errNoReplica, lastAt)
			}
			return
		}
		j := order[k]
		t.ths[j].GetAsync(key).OnDone(func(h *core.Handle) {
			v, err := h.Value()
			at := h.CompletedAt()
			if at < lastAt {
				at = lastAt
			}
			switch {
			case err == nil:
				if k > 0 {
					s.m.replicaFallbacks.Inc()
				}
				resolve(v, nil, at)
			case errors.Is(err, core.ErrNotFound):
				try(k+1, true, at)
			case errors.Is(err, core.ErrClosed):
				try(k+1, sawMiss, at)
			default:
				resolve(nil, err, at)
			}
		})
	}
	try(0, false, 0)
	return ph
}
