package shard

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/core"
)

// repl opens a replicated store with auto-repair off so tests drive
// (and count) repair passes deterministically.
func repl(t *testing.T, shards, replicas int, mutate func(*core.Options)) *Store {
	t.Helper()
	return small(t, shards, func(o *core.Options) {
		o.Replicas = replicas
		o.DisableAutoRepair = true
		if mutate != nil {
			mutate(o)
		}
	})
}

func TestReplicatedRoundTrip(t *testing.T) {
	s := repl(t, 3, 2, nil)
	th := s.Thread(0)
	const n = 300
	for i := 0; i < n; i++ {
		if err := th.Put(key(i), value(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		v, err := th.Get(key(i))
		if err != nil || !bytes.Equal(v, value(i)) {
			t.Fatalf("Get(%d) = %q, %v", i, v, err)
		}
	}
	// Every key lives on exactly Replicas shards.
	if got := s.Len(); got != n*2 {
		t.Fatalf("Len = %d, want %d (each key on 2 replicas)", got, n*2)
	}
	// Deletes propagate to all replicas.
	if err := th.Delete(key(0)); err != nil {
		t.Fatal(err)
	}
	if _, err := th.Get(key(0)); !errors.Is(err, core.ErrNotFound) {
		t.Fatalf("Get after Delete = %v", err)
	}
	if err := th.Delete(key(0)); !errors.Is(err, core.ErrNotFound) {
		t.Fatalf("double Delete = %v, want ErrNotFound", err)
	}
	if err := s.ConvergenceCheck(); err != nil {
		t.Fatal(err)
	}
}

func TestReplicaSetPlacement(t *testing.T) {
	s := repl(t, 4, 3, nil)
	for i := 0; i < 500; i++ {
		set := s.replicaSet(key(i), nil)
		if len(set) != 3 {
			t.Fatalf("replica set size = %d", len(set))
		}
		if set[0] != s.ShardOf(key(i)) {
			t.Fatalf("primary %d != ShardOf %d", set[0], s.ShardOf(key(i)))
		}
		seen := map[int]bool{}
		for _, j := range set {
			if seen[j] {
				t.Fatalf("duplicate shard %d in replica set %v", j, set)
			}
			seen[j] = true
		}
	}
	if _, err := Open(core.Options{Shards: 2, Replicas: 3}); err == nil {
		t.Fatal("Replicas > Shards must be rejected")
	}
	if _, err := core.Open(core.Options{Replicas: 2}); err == nil {
		t.Fatal("core.Open must reject Replicas > 1")
	}
}

// Crash one replica: reads and writes keep working off the survivors;
// recover + bounded repair passes converge the restarted replica; the
// full keyspace digest agrees afterwards.
func TestFailoverAndRepairConverges(t *testing.T) {
	s := repl(t, 3, 2, nil)
	th := s.Thread(0)
	const n = 400
	for i := 0; i < n; i++ {
		if err := th.Put(key(i), value(i)); err != nil {
			t.Fatal(err)
		}
	}
	victim := 1
	s.CrashShard(victim)
	if st := s.ReplicaState(victim); st != int(replicaDown) {
		t.Fatalf("state after crash = %d", st)
	}
	// Every key stays readable (fallback for keys whose primary died).
	for i := 0; i < n; i++ {
		v, err := th.Get(key(i))
		if err != nil || !bytes.Equal(v, value(i)) {
			t.Fatalf("Get(%d) with shard %d down = %q, %v", i, victim, v, err)
		}
	}
	// Writes land on the survivors; some delete traffic too.
	for i := n; i < n+200; i++ {
		if err := th.Put(key(i), value(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 50; i++ {
		if err := th.Delete(key(i)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.RecoverShard(victim); err != nil {
		t.Fatal(err)
	}
	if st := s.ReplicaState(victim); st != int(replicaRepairing) {
		t.Fatalf("state after recover = %d, want repairing", st)
	}
	// Anti-entropy must converge within a small bounded number of
	// passes when writes are quiesced: one pass pulls everything, the
	// next verifies emptiness.
	passes := 0
	for ; passes < 5; passes++ {
		if s.RepairShard(victim).Applied() == 0 {
			break
		}
	}
	if passes >= 5 {
		t.Fatalf("repair did not converge within %d passes", passes)
	}
	if st := s.Repair(); st.Applied() != 0 {
		t.Fatalf("full repair still applied %+v after convergence", st)
	}
	if st := s.ReplicaState(victim); st != int(replicaUp) {
		t.Fatalf("state after converged repair = %d, want up", st)
	}
	if err := s.ConvergenceCheck(); err != nil {
		t.Fatal(err)
	}
	// Deleted keys stay deleted on the repaired replica (tombstones
	// propagated), live keys all readable.
	for i := 0; i < 50; i++ {
		if _, err := th.Get(key(i)); !errors.Is(err, core.ErrNotFound) {
			t.Fatalf("deleted key %d resurrected after repair: %v", i, err)
		}
	}
	for i := 50; i < n+200; i++ {
		v, err := th.Get(key(i))
		if err != nil || !bytes.Equal(v, value(i)) {
			t.Fatalf("Get(%d) after repair = %q, %v", i, v, err)
		}
	}
}

func TestTombstoneDiscardAfterGrace(t *testing.T) {
	s := repl(t, 2, 2, func(o *core.Options) { o.TombstoneGraceWrites = 100 })
	th := s.Thread(0)
	for i := 0; i < 20; i++ {
		if err := th.Put(key(i), value(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 10; i++ {
		if err := th.Delete(key(i)); err != nil {
			t.Fatal(err)
		}
	}
	tombs := 0
	for j := 0; j < s.NumShards(); j++ {
		tombs += s.Shard(j).TombstoneCount()
	}
	if tombs == 0 {
		t.Fatal("no tombstones recorded")
	}
	// Advance the stamp past the grace window, then a full repair with
	// all replicas up discards them.
	for i := 100; i < 250; i++ {
		if err := th.Put(key(i), value(i)); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Repair()
	if st.TombstonesDiscarded == 0 {
		t.Fatalf("no tombstones discarded: %+v", st)
	}
	tombs = 0
	for j := 0; j < s.NumShards(); j++ {
		tombs += s.Shard(j).TombstoneCount()
	}
	if tombs != 0 {
		t.Fatalf("%d tombstones survive past grace", tombs)
	}
	if err := s.ConvergenceCheck(); err != nil {
		t.Fatal(err)
	}
}

func TestReplicatedBatchAndMultiGet(t *testing.T) {
	s := repl(t, 3, 2, nil)
	th := s.Thread(0)
	const n = 256
	kvs := make([]core.KV, n)
	keys := make([][]byte, n)
	for i := range kvs {
		kvs[i] = core.KV{Key: key(i), Value: value(i)}
		keys[i] = key(i)
	}
	if err := th.PutBatch(kvs); err != nil {
		t.Fatal(err)
	}
	vals, err := th.MultiGet(keys)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range vals {
		if !bytes.Equal(v, value(i)) {
			t.Fatalf("MultiGet[%d] = %q", i, v)
		}
	}
	// Batch with one replica down still acknowledges everything, and
	// MultiGet reroutes to survivors.
	s.CrashShard(2)
	if err := th.PutBatch(kvs); err != nil {
		t.Fatal(err)
	}
	vals, err = th.MultiGet(keys)
	if err != nil {
		t.Fatal(err)
	}
	miss := 0
	for i, v := range vals {
		if !bytes.Equal(v, value(i)) {
			miss++
		}
	}
	if miss != 0 {
		t.Fatalf("%d keys unreadable with one replica down", miss)
	}
	if _, err := s.RecoverShard(2); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if s.Repair().Applied() == 0 {
			break
		}
	}
	if err := s.ConvergenceCheck(); err != nil {
		t.Fatal(err)
	}
	// Duplicate keys in a batch: the later entry wins (stamps are drawn
	// in input order).
	dup := []core.KV{
		{Key: key(0), Value: []byte("first")},
		{Key: key(0), Value: []byte("second")},
	}
	if err := th.PutBatch(dup); err != nil {
		t.Fatal(err)
	}
	if v, _ := th.Get(key(0)); !bytes.Equal(v, []byte("second")) {
		t.Fatalf("duplicate-key batch: got %q, want \"second\"", v)
	}
}

// Replicated scans dedupe replica copies and survive a downed shard.
func TestReplicatedScanDedupes(t *testing.T) {
	s := repl(t, 3, 2, nil)
	th := s.Thread(0)
	const n = 120
	for i := 0; i < n; i++ {
		if err := th.Put(key(i), value(i)); err != nil {
			t.Fatal(err)
		}
	}
	collect := func() []string {
		var got []string
		if err := th.Scan([]byte("user"), 0, func(kv core.KV) bool {
			got = append(got, string(kv.Key))
			return true
		}); err != nil {
			t.Fatal(err)
		}
		return got
	}
	got := collect()
	if len(got) != n {
		t.Fatalf("scan returned %d keys, want %d (dedupe across replicas)", len(got), n)
	}
	for i := 1; i < len(got); i++ {
		if got[i-1] >= got[i] {
			t.Fatalf("scan out of order at %d: %q >= %q", i, got[i-1], got[i])
		}
	}
	s.CrashShard(0)
	got = collect()
	if len(got) != n {
		t.Fatalf("scan with shard 0 down returned %d keys, want %d", len(got), n)
	}
}

// Async replicated paths: joined put/delete handles and chained get
// failover.
func TestReplicatedAsync(t *testing.T) {
	s := repl(t, 3, 2, nil)
	th := s.Thread(0)
	const n = 200
	hs := make([]*core.Handle, 0, n)
	for i := 0; i < n; i++ {
		hs = append(hs, th.PutAsync(key(i), value(i)))
	}
	for i, h := range hs {
		if err := h.Wait(); err != nil {
			t.Fatalf("async put %d: %v", i, err)
		}
	}
	s.CrashShard(1)
	for i := 0; i < n; i++ {
		v, err := th.GetAsync(key(i)).Value()
		if err != nil || !bytes.Equal(v, value(i)) {
			t.Fatalf("GetAsync(%d) with shard down = %q, %v", i, v, err)
		}
	}
	// Async writes with a replica down still ack on the survivor.
	for i := n; i < n+50; i++ {
		if err := th.PutAsync(key(i), value(i)).Wait(); err != nil {
			t.Fatal(err)
		}
	}
	if err := th.DeleteAsync(key(0)).Wait(); err != nil {
		t.Fatal(err)
	}
	if err := th.DeleteAsync(key(0)).Wait(); !errors.Is(err, core.ErrNotFound) {
		t.Fatalf("double async delete = %v", err)
	}
	if _, err := s.RecoverShard(1); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if s.Repair().Applied() == 0 {
			break
		}
	}
	if err := s.ConvergenceCheck(); err != nil {
		t.Fatal(err)
	}
}

// Model property test with replica-crash interleavings: a single-writer
// sequence of puts/deletes/reads against a model map, with one replica
// crashed, written around, recovered, and repaired mid-sequence. Reads
// must always match the model exactly — an acknowledged write is never
// lost and a read after failover never returns a value older than the
// model's (stale-beyond-timestamp).
func TestReplicatedStoreMatchesModel(t *testing.T) {
	const shards, replicas = 3, 2
	s := repl(t, shards, replicas, nil)
	th := s.Thread(0)
	model := map[string]string{}
	rng := rand.New(rand.NewSource(7))
	down := -1 // currently crashed shard, -1 when all up
	const keyspace = 150
	for step := 0; step < 2500; step++ {
		k := key(rng.Intn(keyspace))
		switch op := rng.Intn(10); {
		case op < 5: // put
			v := []byte(fmt.Sprintf("v-%d-%d", step, rng.Intn(1000)))
			if err := th.Put(k, v); err != nil {
				t.Fatalf("step %d: Put: %v", step, err)
			}
			model[string(k)] = string(v)
		case op < 7: // delete
			err := th.Delete(k)
			_, want := model[string(k)]
			if want && err != nil {
				t.Fatalf("step %d: Delete(%q) = %v, model has it", step, k, err)
			}
			if !want && !errors.Is(err, core.ErrNotFound) {
				t.Fatalf("step %d: Delete(%q) = %v, want ErrNotFound", step, k, err)
			}
			delete(model, string(k))
		default: // get
			v, err := th.Get(k)
			want, ok := model[string(k)]
			if ok && (err != nil || string(v) != want) {
				t.Fatalf("step %d: Get(%q) = %q,%v; model %q (down=%d)", step, k, v, err, want, down)
			}
			if !ok && !errors.Is(err, core.ErrNotFound) {
				t.Fatalf("step %d: Get(%q) = %v, model missing (down=%d)", step, k, err, down)
			}
		}
		// Periodic crash/recover churn: crash only when everything is
		// up (with R=2 two concurrent downs could lose a whole set).
		if step%400 == 250 && down < 0 {
			down = rng.Intn(shards)
			s.CrashShard(down)
		}
		if step%400 == 399 && down >= 0 {
			if _, err := s.RecoverShard(down); err != nil {
				t.Fatal(err)
			}
			for i := 0; i < maxRepairPasses; i++ {
				if s.Repair().Applied() == 0 {
					break
				}
			}
			if st := s.ReplicaState(down); st != int(replicaUp) {
				t.Fatalf("step %d: shard %d state %d after repair", step, down, st)
			}
			down = -1
		}
	}
	if down >= 0 {
		if _, err := s.RecoverShard(down); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < maxRepairPasses; i++ {
			if s.Repair().Applied() == 0 {
				break
			}
		}
	}
	if err := s.ConvergenceCheck(); err != nil {
		t.Fatal(err)
	}
	// Final audit: store contents == model exactly.
	for k, want := range model {
		v, err := th.Get([]byte(k))
		if err != nil || string(v) != want {
			t.Fatalf("final: Get(%q) = %q,%v; want %q", k, v, err, want)
		}
	}
}

// The auto-repair worker (DisableAutoRepair unset) converges a
// recovered replica without manual passes.
func TestAutoRepairWorker(t *testing.T) {
	s := small(t, 3, func(o *core.Options) { o.Replicas = 2 })
	th := s.Thread(0)
	const n = 200
	for i := 0; i < n; i++ {
		if err := th.Put(key(i), value(i)); err != nil {
			t.Fatal(err)
		}
	}
	s.CrashShard(1)
	for i := n; i < n+100; i++ {
		if err := th.Put(key(i), value(i)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.RecoverShard(1); err != nil {
		t.Fatal(err)
	}
	waitUp(t, s, 1)
	if err := s.ConvergenceCheck(); err != nil {
		t.Fatal(err)
	}
}

// Regression: PutBatch must fail an entry whose entire replica set is
// down instead of silently acknowledging it. With every shard crashed
// no sub-batch is formed at all, so no sub-batch error fires — the
// per-entry coverage check has to run unconditionally.
func TestBatchAllReplicasDownNotAcked(t *testing.T) {
	s := repl(t, 3, 2, nil)
	th := s.Thread(0)
	kvs := []core.KV{
		{Key: key(0), Value: value(0)},
		{Key: key(1), Value: value(1)},
	}
	s.Crash()
	if err := th.PutBatch(kvs); !errors.Is(err, errNoReplica) {
		t.Fatalf("PutBatch after Crash = %v, want errNoReplica", err)
	}
	if _, err := s.Recover(); err != nil {
		t.Fatal(err)
	}
	// Partial outage: crash both shards of one key's replica set while
	// other sets stay live — the batch must still fail, not ack the
	// uncoverable entry on the strength of its neighbors.
	var victim []byte
	for i := 0; victim == nil; i++ {
		if s.ShardOf(key(i)) == 1 {
			victim = key(i)
		}
	}
	var covered []byte
	for i := 0; covered == nil; i++ {
		if s.ShardOf(key(i)) == 0 {
			covered = key(i)
		}
	}
	s.CrashShard(1)
	s.CrashShard(2) // victim's set is {1, 2}
	err := th.PutBatch([]core.KV{
		{Key: covered, Value: value(1)}, // set {0,1}: shard 0 live
		{Key: victim, Value: value(2)},  // set {1,2}: fully down
	})
	if !errors.Is(err, errNoReplica) {
		t.Fatalf("PutBatch with one set fully down = %v, want errNoReplica", err)
	}
}

// Regression: DisableMetrics with Replicas > 1 must not panic — the
// per-position replicaReads slice is indexed on every successful read
// and has to exist even when no registry does.
func TestReplicatedDisableMetrics(t *testing.T) {
	s := repl(t, 3, 2, func(o *core.Options) { o.DisableMetrics = true })
	th := s.Thread(0)
	for i := 0; i < 50; i++ {
		if err := th.Put(key(i), value(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 50; i++ {
		v, err := th.Get(key(i))
		if err != nil || !bytes.Equal(v, value(i)) {
			t.Fatalf("Get(%d) = %q, %v", i, v, err)
		}
	}
	s.CrashShard(0)
	for i := 0; i < 50; i++ {
		if _, err := th.Get(key(i)); err != nil {
			t.Fatalf("Get(%d) with shard 0 down: %v", i, err)
		}
	}
}

// Regression: a repairing shard whose keyspace peer is down must not be
// promoted to up by a pass that pulled nothing — the down peer may hold
// the only copy of acked writes, and once the shard is up anti-entropy
// would never pull them in. Promotion waits until every keyspace peer
// was consultable.
func TestNoPromotionWhilePeerDown(t *testing.T) {
	s := repl(t, 3, 2, nil)
	th := s.Thread(0)
	const n = 200
	for i := 0; i < n; i++ {
		if err := th.Put(key(i), value(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Crash shard 1; the write burst acks on the survivors only.
	s.CrashShard(1)
	for i := n; i < n+100; i++ {
		if err := th.Put(key(i), value(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Crash shard 2 (which holds the only copy of burst keys whose set
	// is {1, 2}), then bring shard 1 back: its repair pass cannot
	// consult peer 2 and must leave it in the repairing state however
	// many passes run.
	s.CrashShard(2)
	if _, err := s.RecoverShard(1); err != nil {
		t.Fatal(err)
	}
	for pass := 0; pass < maxRepairPasses; pass++ {
		if s.RepairShard(1).Applied() == 0 {
			break
		}
	}
	if st := s.ReplicaState(1); st != int(replicaRepairing) {
		t.Fatalf("shard 1 state after repair with peer 2 down = %d, want repairing", st)
	}
	// Peer recovers; repair now converges everything and promotes.
	if _, err := s.RecoverShard(2); err != nil {
		t.Fatal(err)
	}
	for pass := 0; pass < 2*maxRepairPasses; pass++ {
		if s.Repair().Applied() == 0 && s.ReplicaState(1) == int(replicaUp) && s.ReplicaState(2) == int(replicaUp) {
			break
		}
	}
	if st := s.ReplicaState(1); st != int(replicaUp) {
		t.Fatalf("shard 1 state after full repair = %d, want up", st)
	}
	if err := s.ConvergenceCheck(); err != nil {
		t.Fatal(err)
	}
	// Every acked write — including the burst taken while shard 1 was
	// down — reads back.
	for i := 0; i < n+100; i++ {
		v, err := th.Get(key(i))
		if err != nil || !bytes.Equal(v, value(i)) {
			t.Fatalf("Get(%d) after repair = %q, %v", i, v, err)
		}
	}
}

// Regression: Scan must consult a repairing shard for keyspace whose up
// replicas are all gone (one replica down, the other mid-repair), and
// must fail with errNoReplica — not silently omit keys — when a replica
// set has no live member at all.
func TestScanCoversRepairingSet(t *testing.T) {
	s := repl(t, 3, 2, nil)
	th := s.Thread(0)
	const n = 150
	for i := 0; i < n; i++ {
		if err := th.Put(key(i), value(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Shard 1 crashes and comes back repairing (no repair pass runs:
	// auto-repair is off); then shard 2 crashes. Set {1, 2} now has no
	// up member — only repairing shard 1 can serve it.
	s.CrashShard(1)
	if _, err := s.RecoverShard(1); err != nil {
		t.Fatal(err)
	}
	s.CrashShard(2)
	var got []string
	if err := th.Scan([]byte("user"), 0, func(kv core.KV) bool {
		got = append(got, string(kv.Key))
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != n {
		t.Fatalf("scan with set {1,2} on its repairing member returned %d keys, want %d", len(got), n)
	}
	// Lose the repairing member too: set {1, 2} has no live replica and
	// the scan must error rather than drop its keyspace.
	s.CrashShard(1)
	err := th.Scan([]byte("user"), 0, func(kv core.KV) bool { return true })
	if !errors.Is(err, errNoReplica) {
		t.Fatalf("scan with a fully-down replica set = %v, want errNoReplica", err)
	}
}
