package shard

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/core"
)

// runMultiWriter drives writers concurrent Put streams (1 KiB values,
// disjoint key ranges) through their own router thread handles and
// returns the aggregate virtual-time throughput in ops per virtual
// second: total ops over the makespan across thread clocks.
func runMultiWriter(t *testing.T, shards, writers, opsPerWriter int) float64 {
	t.Helper()
	// Rings sized so the whole stream fits below the reclaim watermark:
	// the measured contention is the NVM append channel, not reclaim.
	s := small(t, shards, func(o *core.Options) {
		o.NumThreads = writers
		o.PWBBytesPerThread = 8 << 20
	})
	val := make([]byte, 1024)
	var wg sync.WaitGroup
	errs := make(chan error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			th := s.Thread(w)
			for i := 0; i < opsPerWriter; i++ {
				if err := th.Put([]byte(fmt.Sprintf("w%d-%08d", w, i)), val); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	var makespan int64
	for w := 0; w < writers; w++ {
		if now := s.Thread(w).Clk.Now(); now > makespan {
			makespan = now
		}
	}
	if makespan <= 0 {
		t.Fatal("no virtual time elapsed")
	}
	return float64(writers*opsPerWriter) / (float64(makespan) / 1e9)
}

// TestShardScaleSpeedup is the scale-out acceptance gate: under
// multi-writer load the per-store NVM DIMM channel is the shared
// bottleneck (every Put's ring append queues on it in virtual time), so
// four shards — four device sets — must lift aggregate virtual-time
// throughput by at least 2.5x over one store.
func TestShardScaleSpeedup(t *testing.T) {
	const writers, ops = 4, 2000
	base := runMultiWriter(t, 1, writers, ops)
	scaled := runMultiWriter(t, 4, writers, ops)
	speedup := scaled / base
	t.Logf("virtual throughput: 1 shard %.0f ops/s, 4 shards %.0f ops/s (%.2fx)", base, scaled, speedup)
	if speedup < 2.5 {
		t.Fatalf("4-shard speedup %.2fx, want >= 2.5x (1 shard %.0f ops/s, 4 shards %.0f ops/s)",
			speedup, base, scaled)
	}
}
