package shard

import (
	"bytes"
	"errors"
	"sync"

	"repro/internal/core"
)

// Scan visits up to count pairs with key >= start in global key order.
// Jump placement scatters adjacent keys across shards, so a sharded
// scan is a k-way merge: every shard runs its own ordered scan in
// parallel (each with core's merged VS reads and SVC chaining on that
// shard), and the router merges the per-shard streams by key.
//
// Each shard must over-fetch up to count pairs — in the worst case the
// whole result range lives on one shard — so a sharded scan reads up to
// NumShards*count candidates to emit count; that over-read is the
// documented cost of hash placement (range partitioning is the future
// fix, see ROADMAP). count <= 0 scans to the end on every shard.
func (t *Thread) Scan(start []byte, count int, fn func(kv core.KV) bool) error {
	s := t.s
	s.m.routedScan.Inc()
	if len(s.shards) == 1 {
		err := t.ths[0].Scan(start, count, fn)
		t.sync(0)
		return err
	}
	s.m.scanMerges.Inc()
	// With replication, scan only available shards (down shards' keys
	// are covered by their replicas) and dedupe: a key materializes on
	// up to Replicas shards, so equal heads across streams collapse to
	// one emission. During a divergence window (a replica mid-repair)
	// the surviving copy is whichever stream sorts first — scans are
	// eventually consistent, like replicated reads. Coverage is checked
	// per replica set: a set with no up member contributes its repairing
	// members (matching single-key Get's last-resort fallback), and a
	// set with no live member at all fails the scan with errNoReplica
	// rather than silently omitting its keyspace. Without replication
	// every shard is scanned, so a crashed shard surfaces its error.
	n := len(s.shards)
	include := make([]bool, n)
	if s.replicas <= 1 {
		for j := range include {
			include[j] = true
		}
	} else {
		states := make([]int32, n)
		for j := range states {
			states[j] = s.state[j].Load()
			include[j] = states[j] == replicaUp
		}
		for p := 0; p < n; p++ {
			hasUp := false
			for k := 0; k < s.replicas; k++ {
				if states[(p+k)%n] == replicaUp {
					hasUp = true
					break
				}
			}
			if hasUp {
				continue
			}
			hasAny := false
			for k := 0; k < s.replicas; k++ {
				j := (p + k) % n
				if states[j] == replicaRepairing {
					include[j] = true
					hasAny = true
				}
			}
			if !hasAny {
				// Keys whose primary is p have no live replica; a scan
				// cannot serve its contract over that keyspace.
				return errNoReplica
			}
		}
	}
	lists := make([][]core.KV, len(s.shards))
	var wg sync.WaitGroup
	for j := range s.shards {
		if !include[j] {
			continue
		}
		wg.Add(1)
		go func(j int) {
			defer wg.Done()
			t.errs[j] = t.ths[j].Scan(start, count, func(kv core.KV) bool {
				lists[j] = append(lists[j], kv)
				return true
			})
		}(j)
	}
	wg.Wait()
	var err error
	for j := range s.shards {
		if !include[j] {
			continue
		}
		err = errors.Join(err, t.errs[j])
		t.errs[j] = nil
		t.sync(j)
	}
	if err != nil {
		return err
	}
	// Merge the ordered per-shard lists. Shard counts are small (<=
	// MaxShards, typically single digits), so a linear min-probe beats a
	// heap's overhead.
	pos := make([]int, len(lists))
	emitted := 0
	for count <= 0 || emitted < count {
		best := -1
		for j := range lists {
			if pos[j] >= len(lists[j]) {
				continue
			}
			if best < 0 || bytes.Compare(lists[j][pos[j]].Key, lists[best][pos[best]].Key) < 0 {
				best = j
			}
		}
		if best < 0 {
			break
		}
		kv := lists[best][pos[best]]
		pos[best]++
		if s.replicas > 1 {
			// Skip the other replicas' copies of the emitted key.
			for j := range lists {
				for pos[j] < len(lists[j]) && bytes.Equal(lists[j][pos[j]].Key, kv.Key) {
					pos[j]++
				}
			}
		}
		emitted++
		if !fn(kv) {
			break
		}
	}
	return nil
}
