package shard

import (
	"bytes"
	"errors"
	"sync"

	"repro/internal/core"
)

// Scan visits up to count pairs with key >= start in global key order.
//
// Hash placement scatters adjacent keys across shards, so a hash-mode
// scan is a k-way merge: every shard runs its own ordered scan in
// parallel (each with core's merged VS reads and SVC chaining on that
// shard), and the router merges the per-shard streams by key. Each
// shard must over-fetch up to count pairs — in the worst case the whole
// result range lives on one shard — so a merged scan reads up to
// NumShards*count candidates to emit count; that over-read is the
// documented cost of hash placement.
//
// Range placement removes the merge: the scan walks the boundary table
// in key order and reads each intersecting range from its owning shard
// only, stopping at the range's upper bound — no over-fetch, no k-way
// merge across non-owners. Hash-owned ranges (not yet claimed by a
// migration) fall back to the bounded merge for just that slice of the
// keyspace. count <= 0 scans to the end.
func (t *Thread) Scan(start []byte, count int, fn func(kv core.KV) bool) error {
	s := t.s
	s.m.routedScan.Inc()
	if s.rangeMode {
		s.migMu.RLock()
		defer s.migMu.RUnlock()
		return t.scanRange(s.pl.Load(), start, count, fn)
	}
	if len(s.shards) == 1 {
		err := t.ths[0].Scan(start, count, fn)
		t.sync(0)
		return err
	}
	s.m.scanMerges.Inc()
	_, _, err := t.scanMerged(start, nil, count, fn)
	return err
}

// scanRange walks the placement's ranges from the one containing start,
// reading each from its owner (or via a bounded merge when hash-owned)
// and emitting directly: ranges are disjoint and ordered, so per-range
// streams concatenate into global key order with no merge.
func (t *Thread) scanRange(p *placement, start []byte, count int, fn func(kv core.KV) bool) error {
	s := t.s
	s.m.rangeScans.Inc()
	tab := p.tab
	emitted := 0
	for r := tab.rangeOf(start); r < tab.ranges(); r++ {
		lo, hi := tab.rangeBounds(r)
		from := start
		if lo != nil && bytes.Compare(lo, from) > 0 {
			from = lo
		}
		remaining := 0
		if count > 0 {
			remaining = count - emitted
			if remaining <= 0 {
				return nil
			}
		}
		var n int
		var stopped bool
		var err error
		if o := tab.owner[r]; o == hashOwned {
			if len(s.shards) > 1 {
				s.m.scanMerges.Inc()
			}
			n, stopped, err = t.scanMerged(from, hi, remaining, fn)
		} else {
			n, stopped, err = t.scanOwned(o, from, hi, remaining, fn)
		}
		if err != nil {
			return err
		}
		emitted += n
		if stopped || hi == nil {
			return nil
		}
	}
	return nil
}

// scanOwned reads [from, hi) from the range's owning shard — or, with
// Replicas > 1, from the first available member of the owner's replica
// set (up first, then repairing, errNoReplica when the whole set is
// down; with Replicas == 1 a crashed owner surfaces its own error).
// The owner's ordered scan stops at hi, so nothing is over-fetched.
func (t *Thread) scanOwned(owner int, from, hi []byte, count int, fn func(kv core.KV) bool) (int, bool, error) {
	s := t.s
	j := owner
	if s.replicas > 1 {
		j = -1
		repairing := -1
		n := len(s.shards)
		for k := 0; k < s.replicas && j < 0; k++ {
			m := (owner + k) % n
			switch s.state[m].Load() {
			case replicaUp:
				j = m
			case replicaRepairing:
				if repairing < 0 {
					repairing = m
				}
			}
		}
		if j < 0 {
			j = repairing
		}
		if j < 0 {
			return 0, false, errNoReplica
		}
	}
	emitted := 0
	stopped := false
	err := t.ths[j].Scan(from, count, func(kv core.KV) bool {
		if hi != nil && bytes.Compare(kv.Key, hi) >= 0 {
			return false
		}
		emitted++
		if !fn(kv) {
			stopped = true
			return false
		}
		return count <= 0 || emitted < count
	})
	t.sync(j)
	return emitted, stopped, err
}

// scanMerged is the k-way merged scan over every available shard,
// bounded to [start, hi) (nil hi = unbounded): the hash-mode Scan body,
// reused by range mode for hash-owned ranges. Returns how many pairs it
// emitted and whether fn stopped the scan.
//
// With replication, it scans only available shards (down shards' keys
// are covered by their replicas) and dedupes: a key materializes on up
// to Replicas shards, so equal heads across streams collapse to one
// emission. During a divergence window (a replica mid-repair) the
// surviving copy is whichever stream sorts first — scans are eventually
// consistent, like replicated reads. Coverage is checked per replica
// set: a set with no up member contributes its repairing members
// (matching single-key Get's last-resort fallback), and a set with no
// live member at all fails the scan with errNoReplica rather than
// silently omitting its keyspace. Without replication every shard is
// scanned, so a crashed shard surfaces its error.
func (t *Thread) scanMerged(start, hi []byte, count int, fn func(kv core.KV) bool) (int, bool, error) {
	s := t.s
	n := len(s.shards)
	include := make([]bool, n)
	if s.replicas <= 1 {
		for j := range include {
			include[j] = true
		}
	} else {
		states := make([]int32, n)
		for j := range states {
			states[j] = s.state[j].Load()
			include[j] = states[j] == replicaUp
		}
		for p := 0; p < n; p++ {
			hasUp := false
			for k := 0; k < s.replicas; k++ {
				if states[(p+k)%n] == replicaUp {
					hasUp = true
					break
				}
			}
			if hasUp {
				continue
			}
			hasAny := false
			for k := 0; k < s.replicas; k++ {
				j := (p + k) % n
				if states[j] == replicaRepairing {
					include[j] = true
					hasAny = true
				}
			}
			if !hasAny {
				// Keys whose primary is p have no live replica; a scan
				// cannot serve its contract over that keyspace.
				return 0, false, errNoReplica
			}
		}
	}
	lists := make([][]core.KV, len(s.shards))
	var wg sync.WaitGroup
	for j := range s.shards {
		if !include[j] {
			continue
		}
		wg.Add(1)
		go func(j int) {
			defer wg.Done()
			t.errs[j] = t.ths[j].Scan(start, count, func(kv core.KV) bool {
				if hi != nil && bytes.Compare(kv.Key, hi) >= 0 {
					return false
				}
				lists[j] = append(lists[j], kv)
				return true
			})
		}(j)
	}
	wg.Wait()
	var err error
	for j := range s.shards {
		if !include[j] {
			continue
		}
		err = errors.Join(err, t.errs[j])
		t.errs[j] = nil
		t.sync(j)
	}
	if err != nil {
		return 0, false, err
	}
	// Merge the ordered per-shard lists. Shard counts are small (<=
	// MaxShards, typically single digits), so a linear min-probe beats a
	// heap's overhead.
	pos := make([]int, len(lists))
	emitted := 0
	for count <= 0 || emitted < count {
		best := -1
		for j := range lists {
			if pos[j] >= len(lists[j]) {
				continue
			}
			if best < 0 || bytes.Compare(lists[j][pos[j]].Key, lists[best][pos[best]].Key) < 0 {
				best = j
			}
		}
		if best < 0 {
			break
		}
		kv := lists[best][pos[best]]
		pos[best]++
		if s.replicas > 1 {
			// Skip the other replicas' copies of the emitted key.
			for j := range lists {
				for pos[j] < len(lists[j]) && bytes.Equal(lists[j][pos[j]].Key, kv.Key) {
					pos[j]++
				}
			}
		}
		emitted++
		if !fn(kv) {
			return emitted, true, nil
		}
	}
	return emitted, false, nil
}
