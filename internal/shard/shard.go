// Package shard scales Prism horizontally: a shard.Store owns N
// independent core.Store instances — each with its own simulated NVM
// region, SSD set, background threads, and epoch domain — behind a pure
// hash router, the same scale-out move that carries single-instance
// in-memory stores to clustered deployments.
//
// # Placement
//
// A key's shard is a pure function of its bytes: FNV-1a 64 of the key
// fed to Lamping & Veach's jump consistent hash over NumShards buckets.
// Placement never depends on insertion order, store state, or process
// lifetime — the same key lands on the same shard across restarts and
// crash/recovery cycles, which is what makes per-shard recovery sound.
//
// # Threads and clocks
//
// The router exposes the same Thread-handle surface as core: Thread(i)
// must not be used concurrently, distinct handles run in parallel.
// Router thread i exclusively owns core thread i of every shard, so a
// single-key op routes straight to the owning shard's pinned thread —
// one hash plus one method call, zero added locking (per-connection
// shard affinity falls out: a connection whose keys hash to one shard
// keeps its existing pinned fast path). A router thread's Clk is the
// makespan over the per-shard clocks it has driven: shards model
// independent devices running concurrently, so sequential ops that land
// on different shards overlap in virtual time exactly as N independent
// stores would. With Shards=1 the router degenerates to a pass-through
// whose clock mirrors the single core thread.
//
// # Batches and scans
//
// PutBatch/MultiGet partition by shard and execute the per-shard
// sub-batches in parallel goroutines, preserving core's one-epoch-enter
// / one-publish-window amortization per shard; results merge back in
// input order. Scan runs per-shard ordered scans in parallel and k-way
// merges them. Cross-shard PutBatch keeps core's prefix-durability only
// per shard: a crash can leave different shards at different prefixes
// of their sub-batches.
//
// # Replication
//
// Options.Replicas > 1 places each key on R shards — the jump-hash
// primary plus its R-1 ring successors — with every write carrying a
// store-wide logical timestamp and applied per replica under
// last-writer-wins (see core's TrackTimestamps layer). Writes fan out
// to every live replica and acknowledge when at least one accepted;
// reads go primary-first and fall back across the set on a miss or a
// crashed shard. A crashed shard is marked down (writes skip it, reads
// route around it) until RecoverShard brings it back through the
// repairing state, where background anti-entropy pull passes re-fetch
// everything it missed — including tombstones, so deletes cannot
// resurrect — before it serves reads again. See replica.go and
// repair.go.
package shard

import (
	"errors"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/sim"
)

// MaxShards bounds Options.Shards; each shard is a full simulated device
// set, so the limit only guards against absurd configurations.
const MaxShards = 256

// seedStride separates per-shard RNG seed streams (golden-ratio step).
const seedStride = 0x9e3779b97f4a7c15

// Store routes the full core.Store surface over NumShards independent
// core stores. Safe for the same concurrent use as core.Store: Thread
// handles are single-owner, store-level methods may run from any
// goroutine.
type Store struct {
	opt     core.Options
	shards  []*core.Store
	threads []*Thread

	// Range placement state (hash mode leaves all of it idle and
	// lock-free; see placement.go / migrate.go). rangeMode is fixed at
	// Open; pl is non-nil exactly when rangeMode, so ops never race a
	// nil→non-nil transition. Range-mode ops hold migMu.RLock for their
	// duration; placement transitions install a fresh immutable
	// *placement under migMu.Lock. migOne serializes placement
	// operations (splits, migrations, rebalances); migHook is the
	// test-only crash point inside MigrateRange.
	rangeMode bool
	pl        atomic.Pointer[placement]
	migMu     sync.RWMutex
	migOne    sync.Mutex
	migHook   func(stage string)

	// Replication state (replicas == 1 leaves all of it idle; see
	// replica.go / repair.go).
	replicas   int
	stamp      atomic.Uint64  // store-wide logical timestamp source
	state      []atomic.Int32 // per-shard replicaUp/Down/Repairing
	repairCh   chan int       // kicks the anti-entropy worker
	repairStop chan struct{}
	repairWG   sync.WaitGroup
	repairMu   sync.Mutex // serializes repair passes

	reg *obs.Registry
	m   routerMetrics
}

// Thread is one application thread's routed handle. It exclusively owns
// one core.Thread per shard and must not be used concurrently; distinct
// Threads run in parallel. Clk is the thread's makespan clock: the max
// over every per-shard virtual clock this handle has driven.
type Thread struct {
	s   *Store
	id  int
	Clk *sim.Clock
	ths []*core.Thread // core thread id of every shard, exclusively owned

	// Batch fan-out scratch, reused across calls (a Thread is
	// single-owner, so reuse is race-free and keeps fan-out
	// allocation-flat). Entries are truncated, never shrunk.
	subPut  [][]core.KV // per-shard sub-batch for PutBatch
	subKeys [][][]byte  // per-shard key sub-slices for MultiGet
	subVals [][][]byte  // per-shard value results for MultiGet
	subIdx  [][]int     // original input positions per shard
	subTS   [][]uint64  // per-shard stamps for replicated PutBatch
	touched []int       // shards hit by the current batch
	errs    []error     // per-shard fan-out errors
	rset    []int       // replica-set scratch for sync replicated ops
	cov     []bool      // per-entry coverage scratch for replicated PutBatch
}

// Open creates a Store of opt.Shards independent core stores (default
// 1). Every shard receives the full per-shard resources described by
// opt (threads, PWB rings, SSD set); shard i's RNG seed is derived from
// opt.Seed so runs stay deterministic.
func Open(opt core.Options) (*Store, error) {
	n := opt.Shards
	if n == 0 {
		n = 1
	}
	if n < 0 {
		return nil, errors.New("prism: Shards must be >= 1")
	}
	if n > MaxShards {
		return nil, errors.New("prism: too many shards")
	}
	r := opt.Replicas
	if r == 0 {
		r = 1
	}
	if r < 0 {
		return nil, errors.New("prism: Replicas must be >= 1")
	}
	if r > n {
		return nil, errors.New("prism: Replicas cannot exceed Shards (each replica lives on a distinct shard)")
	}
	rangeMode := false
	switch opt.Placement {
	case "", "hash":
	case "range":
		rangeMode = true
	default:
		return nil, errors.New("prism: unknown Placement (want \"hash\" or \"range\")")
	}
	s := &Store{opt: opt, replicas: r, rangeMode: rangeMode}
	for i := 0; i < n; i++ {
		sopt := opt
		sopt.Shards = 0
		sopt.Replicas = 0
		sopt.Placement = ""
		sopt.SplitKeys = nil
		// Range mode stamps every write (migration enumerates the stamp
		// records to stream a range), so it forces the timestamp layer on
		// just like replication does.
		sopt.TrackTimestamps = opt.TrackTimestamps || r > 1 || rangeMode
		if sopt.Seed == 0 {
			sopt.Seed = 1 // mirror core's default before deriving
		}
		sopt.Seed += uint64(i) * seedStride
		cs, err := core.Open(sopt)
		if err != nil {
			for _, prev := range s.shards {
				prev.Close()
			}
			return nil, err
		}
		s.shards = append(s.shards, cs)
	}
	for i := 0; i < s.shards[0].NumThreads(); i++ {
		th := &Thread{
			s:       s,
			id:      i,
			Clk:     sim.NewClock(0),
			subPut:  make([][]core.KV, n),
			subKeys: make([][][]byte, n),
			subVals: make([][][]byte, n),
			subIdx:  make([][]int, n),
			subTS:   make([][]uint64, n),
			errs:    make([]error, n),
		}
		for j := 0; j < n; j++ {
			th.ths = append(th.ths, s.shards[j].Thread(i))
		}
		s.threads = append(s.threads, th)
	}
	s.state = make([]atomic.Int32, n)
	if rangeMode {
		bt, err := newBoundaryTable(opt.SplitKeys, n)
		if err != nil {
			for _, prev := range s.shards {
				prev.Close()
			}
			return nil, err
		}
		s.pl.Store(&placement{epoch: 1, tab: bt})
	}
	if r > 1 {
		// The per-position read counters are indexed unconditionally on
		// the replicated read path, so the slice must exist even when
		// metrics are disabled (its nil *obs.Counter elements are no-op;
		// registerReplicaMetrics fills them in when metrics are on).
		s.m.replicaReads = make([]*obs.Counter, r)
		s.repairCh = make(chan int, 4*MaxShards)
		s.repairStop = make(chan struct{})
		if !opt.DisableAutoRepair {
			s.repairWG.Add(1)
			go s.repairWorker()
		}
	}
	if !opt.DisableMetrics {
		s.reg = obs.NewRegistry()
		s.registerMetrics()
	}
	return s, nil
}

// fnv64a is FNV-1a 64 over the key bytes — the stable pre-hash feeding
// jump placement.
func fnv64a(b []byte) uint64 {
	h := uint64(14695981039346656037)
	for _, c := range b {
		h ^= uint64(c)
		h *= 1099511628211
	}
	return h
}

// jump is Lamping & Veach's jump consistent hash: a uniform mapping of
// a 64-bit hash onto n buckets where growing n moves only ~1/n of keys.
func jump(key uint64, n int) int {
	var b, j int64 = -1, 0
	for j < int64(n) {
		b = j
		key = key*2862933555777941757 + 1
		j = int64(float64(b+1) * (float64(int64(1)<<31) / float64((key>>33)+1)))
	}
	return int(b)
}

// ShardOf returns the shard index owning key. In hash mode it is a
// pure, stable function of the key bytes and the shard count; in range
// mode it consults the current placement snapshot (boundary-table
// lookup, jump hash for hash-owned ranges).
func (s *Store) ShardOf(key []byte) int {
	if p := s.pl.Load(); p != nil {
		return p.shardFor(s, key)
	}
	if len(s.shards) == 1 {
		return 0
	}
	return jump(fnv64a(key), len(s.shards))
}

// NumShards returns the number of shards.
func (s *Store) NumShards() int { return len(s.shards) }

// Shard returns shard i's core store (tests, recovery drills, and
// harness plumbing; application traffic goes through Thread handles).
func (s *Store) Shard(i int) *core.Store { return s.shards[i] }

// Thread returns routed application thread handle i.
func (s *Store) Thread(i int) *Thread { return s.threads[i] }

// NumThreads returns the number of thread handles.
func (s *Store) NumThreads() int { return len(s.threads) }

// Len returns the number of live keys across all shards.
func (s *Store) Len() int {
	n := 0
	for _, cs := range s.shards {
		n += cs.Len()
	}
	return n
}

// Close stops every shard; the first error wins. The anti-entropy
// worker (if any) is joined first so no repair pass straddles shutdown.
func (s *Store) Close() error {
	s.stopRepairWorker()
	var first error
	for _, cs := range s.shards {
		if err := cs.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Crash simulates a power failure across every shard (see core.Crash).
// Crash a single shard's devices — marking it down so the replicated
// paths route around it — with CrashShard.
func (s *Store) Crash() {
	for _, cs := range s.shards {
		cs.Crash()
	}
	for i := range s.state {
		s.setState(i, replicaDown)
	}
}

// Recover rebuilds every shard in parallel — shards are independent
// stores, so recovery parallelism comes for free — and aggregates the
// per-shard reports: counters sum, VirtualNS is the makespan.
func (s *Store) Recover() (core.RecoveryReport, error) {
	reps := make([]core.RecoveryReport, len(s.shards))
	errs := make([]error, len(s.shards))
	var wg sync.WaitGroup
	for i, cs := range s.shards {
		wg.Add(1)
		go func(i int, cs *core.Store) {
			defer wg.Done()
			reps[i], errs[i] = cs.Recover()
		}(i, cs)
	}
	wg.Wait()
	var rep core.RecoveryReport
	for _, r := range reps {
		rep.LiveKeys += r.LiveKeys
		rep.LostKeys += r.LostKeys
		rep.PWBValuesDrained += r.PWBValuesDrained
		rep.VSValuesRecovered += r.VSValuesRecovered
		if r.VirtualNS > rep.VirtualNS {
			rep.VirtualNS = r.VirtualNS
		}
	}
	if err := errors.Join(errs...); err != nil {
		return rep, err
	}
	for i := range s.state {
		s.setState(i, replicaUp)
	}
	if s.replicas > 1 {
		// A whole-store crash can leave replicas divergent only on
		// writes that were in flight (never acknowledged) at the crash;
		// one synchronous anti-entropy sweep reconciles them before the
		// store reports recovered.
		s.Repair()
	}
	return rep, nil
}

// Stats sums the per-shard counters into one store-level snapshot.
func (s *Store) Stats() core.Stats {
	var t core.Stats
	for _, cs := range s.shards {
		st := cs.Stats()
		t.Puts += st.Puts
		t.Gets += st.Gets
		t.Deletes += st.Deletes
		t.Scans += st.Scans
		t.BatchPuts += st.BatchPuts
		t.BatchGets += st.BatchGets
		t.AsyncPuts += st.AsyncPuts
		t.AsyncGets += st.AsyncGets
		t.AsyncDeletes += st.AsyncDeletes
		t.SVCHits += st.SVCHits
		t.PWBHits += st.PWBHits
		t.VSReads += st.VSReads
		t.UserBytesWritten += st.UserBytesWritten
		t.Reclaims += st.Reclaims
		t.PWBLiveMigrated += st.PWBLiveMigrated
		t.ScanRewrites += st.ScanRewrites
		t.PutStalls += st.PutStalls
		t.ReclaimPublishLost += st.ReclaimPublishLost
		t.ScanTornRecords += st.ScanTornRecords
		t.IndexSpaceBytes += st.IndexSpaceBytes
		t.HSITSpaceBytes += st.HSITSpaceBytes
		t.VS.ChunksWritten += st.VS.ChunksWritten
		t.VS.BytesWritten += st.VS.BytesWritten
		t.VS.GCRuns += st.VS.GCRuns
		t.VS.GCLiveMoved += st.VS.GCLiveMoved
		t.VS.GCBytesMoved += st.VS.GCBytesMoved
		t.VS.FreeChunks += st.VS.FreeChunks
		t.VS.LiveChunks += st.VS.LiveChunks
		t.SVC.Bytes += st.SVC.Bytes
		t.SVC.Entries += st.SVC.Entries
		t.SVC.Evictions += st.SVC.Evictions
		t.SVC.Promotions += st.SVC.Promotions
		t.SVC.ChainRewrites += st.SVC.ChainRewrites
		t.SVC.TouchDrops += st.SVC.TouchDrops
	}
	return t
}

// WriteAmp reports (SSD bytes written, user bytes written) summed over
// every shard's device set.
func (s *Store) WriteAmp() (device, user int64) {
	for _, cs := range s.shards {
		for _, d := range cs.SSDs() {
			device += d.Stats().BytesWritten
		}
		user += cs.Stats().UserBytesWritten
	}
	return device, user
}

// sync folds shard j's thread clock into the router thread's makespan
// clock after an op has run there.
func (t *Thread) sync(j int) {
	t.Clk.AdvanceTo(t.ths[j].Clk.Now())
}

// Put routes a single-key write to the owning shard's pinned thread —
// or, with Replicas > 1, fans it out to every live replica under one
// logical timestamp (see replica.go). In range mode the write runs
// under the placement guard (a frozen migration window parks it until
// the flip) and always carries a stamp so migration can enumerate it.
func (t *Thread) Put(key, value []byte) error {
	s := t.s
	s.m.routedPut.Inc()
	if s.rangeMode {
		p := s.placeWrite(key)
		defer s.migMu.RUnlock()
		if s.replicas > 1 {
			return t.putReplicated(key, value)
		}
		j := p.shardFor(s, key)
		err := t.ths[j].PutTS(key, value, s.nextStamp())
		t.sync(j)
		return err
	}
	if s.replicas > 1 {
		return t.putReplicated(key, value)
	}
	j := s.ShardOf(key)
	err := t.ths[j].Put(key, value)
	t.sync(j)
	return err
}

// Get routes a single-key read to the owning shard's pinned thread —
// or, with Replicas > 1, primary-first across the replica set with
// fallback on miss or crash. Range-mode reads hold the placement guard
// and, during a migration's dual-read window, may fall back to the
// not-yet-purged source set (see dualGet).
func (t *Thread) Get(key []byte) ([]byte, error) {
	s := t.s
	s.m.routedGet.Inc()
	if s.rangeMode {
		s.migMu.RLock()
		defer s.migMu.RUnlock()
		p := s.pl.Load()
		var v []byte
		var err error
		if s.replicas > 1 {
			v, err = t.getReplicated(key)
		} else {
			j := p.shardFor(s, key)
			v, err = t.ths[j].Get(key)
			t.sync(j)
		}
		if err != nil && p.mig != nil && p.mig.dual && p.mig.contains(key) {
			if fv, ferr, ok := t.dualGet(p, key); ok {
				return fv, ferr
			}
		}
		return v, err
	}
	if s.replicas > 1 {
		return t.getReplicated(key)
	}
	j := s.ShardOf(key)
	v, err := t.ths[j].Get(key)
	t.sync(j)
	return v, err
}

// Delete routes a single-key delete to the owning shard's pinned thread
// — or, with Replicas > 1, records a timestamped tombstone on every
// live replica. Range-mode deletes run under the placement guard and
// carry a stamp (the tombstone record is what migration streams).
func (t *Thread) Delete(key []byte) error {
	s := t.s
	s.m.routedDelete.Inc()
	if s.rangeMode {
		p := s.placeWrite(key)
		defer s.migMu.RUnlock()
		if s.replicas > 1 {
			return t.deleteReplicated(key)
		}
		j := p.shardFor(s, key)
		found, err := t.ths[j].DeleteTS(key, s.nextStamp())
		t.sync(j)
		if err == nil && !found {
			return core.ErrNotFound
		}
		return err
	}
	if s.replicas > 1 {
		return t.deleteReplicated(key)
	}
	j := s.ShardOf(key)
	err := t.ths[j].Delete(key)
	t.sync(j)
	return err
}

// PutAsync routes an asynchronous write to the owning shard's admission
// loop and returns its completion Handle. Unlike the synchronous
// methods, the async methods are safe to call from any goroutine (they
// touch no router-thread scratch and the per-shard pipelines are
// concurrency-safe); submissions retain per-shard submission order,
// while cross-shard ordering is whatever the caller imposes by waiting
// handles in submit order. The router thread's Clk is NOT advanced —
// async work runs on each shard's own async timeline; Flush folds the
// makespan in.
func (t *Thread) PutAsync(key, value []byte) *core.Handle {
	s := t.s
	s.m.routedPut.Inc()
	if s.rangeMode {
		p := s.placeWrite(key)
		defer s.migMu.RUnlock()
		if s.replicas > 1 {
			return t.putAsyncReplicated(key, value)
		}
		return t.ths[p.shardFor(s, key)].PutTSAsync(key, value, s.nextStamp())
	}
	if s.replicas > 1 {
		return t.putAsyncReplicated(key, value)
	}
	return t.ths[s.ShardOf(key)].PutAsync(key, value)
}

// GetAsync routes an asynchronous read to the owning shard's admission
// loop. See PutAsync for the concurrency and ordering contract. During
// a migration's dual-read window the completion chains a source-set
// fallback exactly like the synchronous path (see dualGet).
func (t *Thread) GetAsync(key []byte) *core.Handle {
	s := t.s
	s.m.routedGet.Inc()
	if s.rangeMode {
		s.migMu.RLock()
		defer s.migMu.RUnlock()
		p := s.pl.Load()
		var inner *core.Handle
		if s.replicas > 1 {
			inner = t.getAsyncReplicated(key)
		} else {
			inner = t.ths[p.shardFor(s, key)].GetAsync(key)
		}
		m := p.mig
		if m == nil || !m.dual || !m.contains(key) {
			return inner
		}
		// The completion callback runs on an executor goroutine, so the
		// fallback must use store-level async submission, never this
		// router thread's scratch or sync handles.
		ph, resolve := core.NewProxyHandle()
		kc := append([]byte(nil), key...)
		inner.OnDone(func(h *core.Handle) {
			v, err := h.Value()
			at := h.CompletedAt()
			if err == nil || s.dualRecorded(m, kc) {
				resolve(v, err, at)
				return
			}
			si := s.dualSrcShard(m, kc)
			if si < 0 {
				resolve(v, err, at)
				return
			}
			s.m.migDualReads.Inc()
			s.shards[si].Thread(0).GetAsync(kc).OnDone(func(h2 *core.Handle) {
				v2, err2 := h2.Value()
				at2 := h2.CompletedAt()
				if at2 < at {
					at2 = at
				}
				resolve(v2, err2, at2)
			})
		})
		return ph
	}
	if s.replicas > 1 {
		return t.getAsyncReplicated(key)
	}
	return t.ths[s.ShardOf(key)].GetAsync(key)
}

// DeleteAsync routes an asynchronous delete to the owning shard's
// admission loop. See PutAsync for the concurrency contract.
func (t *Thread) DeleteAsync(key []byte) *core.Handle {
	s := t.s
	s.m.routedDelete.Inc()
	if s.rangeMode {
		p := s.placeWrite(key)
		defer s.migMu.RUnlock()
		if s.replicas > 1 {
			return t.deleteAsyncReplicated(key)
		}
		return t.ths[p.shardFor(s, key)].DeleteTSAsync(key, s.nextStamp())
	}
	if s.replicas > 1 {
		return t.deleteAsyncReplicated(key)
	}
	return t.ths[s.ShardOf(key)].DeleteAsync(key)
}

// Flush blocks until every async submission on this handle's per-shard
// threads has completed, then folds each shard's async timeline into
// the router thread's makespan clock: shards pipeline independently, so
// the elapsed virtual time is the slowest shard's.
func (t *Thread) Flush() {
	for _, th := range t.ths {
		th.Flush()
	}
	for _, th := range t.ths {
		t.Clk.AdvanceTo(th.AsyncNow())
	}
}
