package shard

import (
	"bytes"
	"errors"
	"fmt"
	"sort"
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
)

// small returns a sharded store sized so that reclamation, caching, and
// GC all trigger quickly in tests (per shard: core's test sizing).
func small(t *testing.T, shards int, mutate func(*core.Options)) *Store {
	t.Helper()
	opt := core.Options{
		Shards:            shards,
		NumThreads:        2,
		PWBBytesPerThread: 64 << 10,
		HSITCapacity:      1 << 14,
		NumSSDs:           2,
		SSDBytes:          4 << 20,
		ChunkSize:         16 << 10,
		SVCBytes:          64 << 10,
	}
	if mutate != nil {
		mutate(&opt)
	}
	s, err := Open(opt)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func key(i int) []byte   { return []byte(fmt.Sprintf("user%08d", i)) }
func value(i int) []byte { return []byte(fmt.Sprintf("value-%08d-%032d", i, i)) }

// Placement must be a pure function of the key bytes and the shard
// count: two independently opened stores agree on every key, and jump
// placement spreads a uniform keyspace roughly evenly.
func TestPlacementPureAndStable(t *testing.T) {
	a := small(t, 4, nil)
	b := small(t, 4, func(o *core.Options) { o.Seed = 99 }) // seed must not move keys
	counts := make([]int, a.NumShards())
	for i := 0; i < 4000; i++ {
		k := key(i)
		ja, jb := a.ShardOf(k), b.ShardOf(k)
		if ja != jb {
			t.Fatalf("key %q: placement %d vs %d across store instances", k, ja, jb)
		}
		counts[ja]++
	}
	for j, n := range counts {
		if n < 4000/a.NumShards()/2 || n > 4000/a.NumShards()*2 {
			t.Fatalf("shard %d holds %d of 4000 keys — jump placement badly skewed: %v", j, n, counts)
		}
	}
	one := small(t, 1, nil)
	if j := one.ShardOf(key(7)); j != 0 {
		t.Fatalf("single-shard ShardOf = %d, want 0", j)
	}
}

func TestRoutedRoundTrip(t *testing.T) {
	s := small(t, 4, nil)
	th := s.Thread(0)
	const n = 200
	for i := 0; i < n; i++ {
		if err := th.Put(key(i), value(i)); err != nil {
			t.Fatal(err)
		}
	}
	if s.Len() != n {
		t.Fatalf("Len = %d, want %d", s.Len(), n)
	}
	for i := 0; i < n; i++ {
		got, err := th.Get(key(i))
		if err != nil {
			t.Fatalf("Get %d: %v", i, err)
		}
		if !bytes.Equal(got, value(i)) {
			t.Fatalf("Get %d = %q, want %q", i, got, value(i))
		}
	}
	if _, err := th.Get([]byte("missing")); !errors.Is(err, core.ErrNotFound) {
		t.Fatalf("missing key err = %v", err)
	}
	if err := th.Delete(key(3)); err != nil {
		t.Fatal(err)
	}
	if _, err := th.Get(key(3)); !errors.Is(err, core.ErrNotFound) {
		t.Fatalf("deleted key err = %v", err)
	}
	// Every shard should own a slice of a 200-key uniform keyspace.
	for j := 0; j < s.NumShards(); j++ {
		if s.Shard(j).Len() == 0 {
			t.Fatalf("shard %d is empty after %d uniform keys", j, n)
		}
	}
}

// The fan-out MultiGet property: for random key sets — hits, misses,
// and duplicates, scattered over every shard — the merged result is
// exactly what per-key Gets produce, one entry per key in input order.
func TestMultiGetInputOrderProperty(t *testing.T) {
	s := small(t, 4, nil)
	th := s.Thread(0)
	const live = 300
	for i := 0; i < live; i++ {
		if err := th.Put(key(i), value(i)); err != nil {
			t.Fatal(err)
		}
	}
	rng := sim.NewRNG(7)
	reader := s.Thread(1)
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(40)
		keys := make([][]byte, n)
		for i := range keys {
			// ~1/4 misses; duplicates arise naturally from the small range.
			keys[i] = key(rng.Intn(live + live/3))
		}
		vals, err := reader.MultiGet(keys)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if len(vals) != n {
			t.Fatalf("trial %d: %d values for %d keys", trial, len(vals), n)
		}
		for i, k := range keys {
			want, err := reader.Get(k)
			if errors.Is(err, core.ErrNotFound) {
				want = nil
			} else if err != nil {
				t.Fatalf("trial %d key %q: %v", trial, k, err)
			}
			if !bytes.Equal(vals[i], want) {
				t.Fatalf("trial %d pos %d key %q: MultiGet %q, Get %q",
					trial, i, k, vals[i], want)
			}
		}
	}
}

// Scan over shards is a k-way merge of per-shard ordered scans: results
// must come back in global key order, respect count and the early-stop
// callback, and exactly match the live keyspace.
func TestScanKWayMerge(t *testing.T) {
	s := small(t, 4, nil)
	th := s.Thread(0)
	const n = 250
	for i := 0; i < n; i++ {
		if err := th.Put(key(i), value(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Delete a few so the expected set is not trivially dense.
	for _, i := range []int{0, 17, 99, 200} {
		if err := th.Delete(key(i)); err != nil {
			t.Fatal(err)
		}
	}
	var want []string
	for i := 0; i < n; i++ {
		switch i {
		case 0, 17, 99, 200:
		default:
			want = append(want, string(key(i)))
		}
	}
	sort.Strings(want)

	collect := func(start []byte, count int) []string {
		var got []string
		var prev []byte
		if err := th.Scan(start, count, func(kv core.KV) bool {
			if prev != nil && bytes.Compare(prev, kv.Key) >= 0 {
				t.Fatalf("scan out of order: %q then %q", prev, kv.Key)
			}
			prev = append(prev[:0], kv.Key...)
			got = append(got, string(kv.Key))
			return true
		}); err != nil {
			t.Fatal(err)
		}
		return got
	}

	full := collect(nil, 0)
	if len(full) != len(want) {
		t.Fatalf("full scan returned %d keys, want %d", len(full), len(want))
	}
	for i := range want {
		if full[i] != want[i] {
			t.Fatalf("full scan[%d] = %q, want %q", i, full[i], want[i])
		}
	}
	// Bounded scan from a midpoint.
	mid := collect(key(100), 10)
	if len(mid) != 10 || mid[0] != string(key(100)) {
		t.Fatalf("scan from %q count 10 = %v", key(100), mid)
	}
	// Early stop after 3.
	var stopped int
	if err := th.Scan(nil, 0, func(kv core.KV) bool {
		stopped++
		return stopped < 3
	}); err != nil {
		t.Fatal(err)
	}
	if stopped != 3 {
		t.Fatalf("early-stop scan visited %d, want 3", stopped)
	}
}

// A cross-shard PutBatch must keep core's epoch amortization per shard:
// one batch touching S shards costs at most S epoch enters total, not
// one per key.
func TestPutBatchEpochAmortization(t *testing.T) {
	s := small(t, 4, nil)
	th := s.Thread(0)
	enters := func() int64 {
		var n int64
		for j := 0; j < s.NumShards(); j++ {
			n += s.Shard(j).Epochs().Enters()
		}
		return n
	}
	const batch = 64
	kvs := make([]core.KV, batch)
	for i := range kvs {
		kvs[i] = core.KV{Key: key(i), Value: value(i)}
	}
	e0 := enters()
	if err := th.PutBatch(kvs); err != nil {
		t.Fatal(err)
	}
	delta := enters() - e0
	if delta < 1 || delta > int64(s.NumShards()) {
		t.Fatalf("cross-shard PutBatch of %d keys cost %d epoch enters, want 1..%d",
			batch, delta, s.NumShards())
	}
	snap := s.Metrics()
	if got := snap.Sum("shard.cross_batches"); got < 1 {
		t.Fatalf("shard.cross_batches = %v, want >= 1", got)
	}
}

// Crashing and recovering one shard must not disturb the others, and
// the router must serve the full keyspace afterwards from the same
// placement.
func TestPerShardCrashRecovery(t *testing.T) {
	s := small(t, 4, nil)
	th := s.Thread(0)
	const n = 400
	placement := make([]int, n)
	for i := 0; i < n; i++ {
		placement[i] = s.ShardOf(key(i))
		if err := th.Put(key(i), value(i)); err != nil {
			t.Fatal(err)
		}
	}
	const victim = 2
	before := s.Shard(victim).Len()
	if before == 0 {
		t.Fatal("victim shard owns no keys — placement test is vacuous")
	}
	s.Shard(victim).Crash()
	rep, err := s.Shard(victim).Recover()
	if err != nil {
		t.Fatalf("shard %d recover: %v", victim, err)
	}
	if rep.LiveKeys != before {
		t.Fatalf("shard %d recovered %d live keys, want %d", victim, rep.LiveKeys, before)
	}
	for i := 0; i < n; i++ {
		if got := s.ShardOf(key(i)); got != placement[i] {
			t.Fatalf("key %d moved from shard %d to %d across recovery", i, placement[i], got)
		}
		got, err := th.Get(key(i))
		if err != nil {
			t.Fatalf("Get %d after shard recovery: %v", i, err)
		}
		if !bytes.Equal(got, value(i)) {
			t.Fatalf("Get %d after shard recovery = %q, want %q", i, got, value(i))
		}
	}
}

// Whole-store crash/recovery: every shard recovers in parallel, the
// aggregate report sums per-shard counts, and placement is identical in
// a freshly opened store (pure function of key bytes and shard count).
func TestFullCrashRecoveryPlacementStable(t *testing.T) {
	s := small(t, 3, nil)
	th := s.Thread(0)
	const n = 300
	placement := make([]int, n)
	for i := 0; i < n; i++ {
		placement[i] = s.ShardOf(key(i))
		if err := th.Put(key(i), value(i)); err != nil {
			t.Fatal(err)
		}
	}
	s.Crash()
	rep, err := s.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if rep.LiveKeys != n {
		t.Fatalf("recovered %d live keys, want %d", rep.LiveKeys, n)
	}
	for i := 0; i < n; i++ {
		got, err := th.Get(key(i))
		if err != nil || !bytes.Equal(got, value(i)) {
			t.Fatalf("Get %d after full recovery = %q, %v", i, got, err)
		}
	}
	// A second store instance (fresh process, same shard count) places
	// every key identically.
	s2 := small(t, 3, func(o *core.Options) { o.Seed = 12345 })
	for i := 0; i < n; i++ {
		if got := s2.ShardOf(key(i)); got != placement[i] {
			t.Fatalf("key %d placed on shard %d in a new instance, was %d", i, got, placement[i])
		}
	}
}

func TestOpenRejectsBadShardCounts(t *testing.T) {
	if _, err := Open(core.Options{Shards: -1, NumThreads: 1}); err == nil {
		t.Fatal("Shards=-1 accepted")
	}
	if _, err := Open(core.Options{Shards: MaxShards + 1, NumThreads: 1}); err == nil {
		t.Fatal("Shards over MaxShards accepted")
	}
	// core.Open must refuse to silently run a sharded config unsharded.
	if _, err := core.Open(core.Options{Shards: 2, NumThreads: 1}); err == nil {
		t.Fatal("core.Open accepted Shards=2")
	}
}

// Metrics: with one shard the core series pass through unlabeled (so
// unique-name lookups keep working); with several, every core series
// carries a shard label and Sum aggregates across shards.
func TestMetricsShardLabels(t *testing.T) {
	one := small(t, 1, nil)
	if err := one.Thread(0).Put(key(1), value(1)); err != nil {
		t.Fatal(err)
	}
	if v, ok := one.Metrics().Value("epoch.enters"); !ok || v < 1 {
		t.Fatalf("single-shard epoch.enters = %v ok=%v, want unique and >= 1", v, ok)
	}

	s := small(t, 4, nil)
	th := s.Thread(0)
	for i := 0; i < 100; i++ {
		if err := th.Put(key(i), value(i)); err != nil {
			t.Fatal(err)
		}
	}
	snap := s.Metrics()
	if v, ok := snap.Value("shard.count"); !ok || v != 4 {
		t.Fatalf("shard.count = %v ok=%v, want 4", v, ok)
	}
	if got := snap.Sum("shard.routed_ops"); got != 100 {
		t.Fatalf("shard.routed_ops sum = %v, want 100", got)
	}
	if got := snap.Sum("core.ops"); got != 100 {
		t.Fatalf("core.ops summed over shards = %v, want 100", got)
	}
	for j := 0; j < 4; j++ {
		lbl := map[string]string{"shard": fmt.Sprintf("%d", j)}
		if _, ok := snap.Get("epoch.enters", lbl); !ok {
			t.Fatalf("epoch.enters{shard=%d} missing from merged snapshot", j)
		}
		if m, ok := snap.Get("shard.keys", lbl); !ok || m.Value != float64(s.Shard(j).Len()) {
			t.Fatalf("shard.keys{shard=%d} = %+v ok=%v, want %d", j, m, ok, s.Shard(j).Len())
		}
	}
	if v, ok := snap.Value("shard.imbalance"); !ok || v < 1 {
		t.Fatalf("shard.imbalance = %v ok=%v, want >= 1", v, ok)
	}

	off := small(t, 2, func(o *core.Options) { o.DisableMetrics = true })
	if n := len(off.Metrics().Metrics); n != 0 {
		t.Fatalf("DisableMetrics snapshot has %d series", n)
	}
}
