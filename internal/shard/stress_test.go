package shard

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
)

func stressVal(ti, k, seq int) []byte {
	return []byte(fmt.Sprintf("t%02d-k%04d-s%08d-%048d", ti, k, seq, seq))
}

// TestShardBatchFanoutStress is the -race gate for the cross-shard
// fan-out path: several router threads drive batches whose keys scatter
// over every shard, so each PutBatch runs parallel per-shard sub-batch
// goroutines against shards whose tiny 4 KiB PWB rings are being
// reclaimed concurrently. It guards the router-level failure modes the
// per-shard stress (core's TestPutBatchReclaimStress) cannot see:
//
//   - two fan-out goroutines of the same router thread sharing scratch
//     state (a DATA RACE in the sub-batch partitioning);
//   - results scattered to the wrong input position after the parallel
//     sub-reads return (the exact-value self-MultiGets below);
//   - a sub-batch silently dropped when another shard's sub-batch of
//     the same fan-out fails or stalls.
//
// Each router thread owns a disjoint key range written only in batches;
// after PutBatch returns, a MultiGet over the owned range must see
// exactly the last committed sequence for every key.
func TestShardBatchFanoutStress(t *testing.T) {
	const (
		shards          = 4
		threads         = 4
		rounds          = 4
		keysPerThread   = 16
		batchesPerRound = 60
	)
	s := small(t, shards, func(o *core.Options) {
		o.NumThreads = threads
		o.PWBBytesPerThread = 4096 // minimum: a batch spans a large ring fraction
		o.ReclaimWatermark = 0.2
		o.SVCBytes = 8 << 10 // tiny: constant admission/eviction churn
	})

	lastSeq := make([][]int, threads)
	for ti := range lastSeq {
		lastSeq[ti] = make([]int, keysPerThread)
		for k := range lastSeq[ti] {
			lastSeq[ti][k] = -1
		}
	}
	keyOf := func(ti, k int) []byte { return key(ti*keysPerThread + k) }

	seq := 0
	for round := 0; round < rounds; round++ {
		var wg sync.WaitGroup
		errs := make(chan error, threads)
		for ti := 0; ti < threads; ti++ {
			wg.Add(1)
			go func(ti, base int) {
				defer wg.Done()
				th := s.Thread(ti)
				rng := sim.NewRNG(uint64(1+round*threads+ti) * 0x9e3779b9)
				selfKeys := make([][]byte, keysPerThread)
				for k := range selfKeys {
					selfKeys[k] = keyOf(ti, k)
				}
				for j := 0; j < batchesPerRound; j++ {
					// 2-8 keys per batch, duplicates allowed (later wins);
					// a batch this wide almost always crosses shards.
					n := 2 + rng.Intn(7)
					kvs := make([]core.KV, n)
					picked := make([]int, n)
					for b := 0; b < n; b++ {
						k := rng.Intn(keysPerThread)
						picked[b] = k
						kvs[b] = core.KV{Key: keyOf(ti, k), Value: stressVal(ti, k, base+j*8+b)}
					}
					if err := th.PutBatch(kvs); err != nil {
						errs <- fmt.Errorf("thread %d batch: %w", ti, err)
						return
					}
					for b, k := range picked {
						lastSeq[ti][k] = base + j*8 + b
					}
					switch rng.Uint64() % 4 {
					case 0:
						// Self MultiGet over the whole owned range: every
						// key must hold exactly its last committed write,
						// in input order, regardless of fan-out.
						vals, err := th.MultiGet(selfKeys)
						if err != nil {
							errs <- fmt.Errorf("thread %d self-multiget: %w", ti, err)
							return
						}
						for k, got := range vals {
							sq := lastSeq[ti][k]
							if sq < 0 {
								continue
							}
							if want := stressVal(ti, k, sq); !bytes.Equal(got, want) {
								errs <- fmt.Errorf("thread %d key %d: lost or misplaced batched update, got %.20q want %.20q",
									ti, k, got, want)
								return
							}
						}
					case 1:
						// Foreign MultiGet: cross-shard reader pressure on
						// rings being appended and reclaimed concurrently.
						fi := rng.Intn(threads)
						fkeys := make([][]byte, 6)
						for b := range fkeys {
							fkeys[b] = keyOf(fi, rng.Intn(keysPerThread))
						}
						if _, err := th.MultiGet(fkeys); err != nil {
							errs <- fmt.Errorf("thread %d foreign-multiget: %w", ti, err)
							return
						}
					}
				}
			}(ti, seq)
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			t.Fatal(err)
		}
		seq += batchesPerRound * 8

		// Round barrier: every key must hold its owner's last batched
		// write, observed from a different router thread.
		th := s.Thread(0)
		for ti := 0; ti < threads; ti++ {
			keys := make([][]byte, keysPerThread)
			for k := range keys {
				keys[k] = keyOf(ti, k)
			}
			vals, err := th.MultiGet(keys)
			if err != nil {
				t.Fatalf("round %d thread %d: %v", round, ti, err)
			}
			for k, got := range vals {
				sq := lastSeq[ti][k]
				if sq < 0 {
					continue
				}
				if want := stressVal(ti, k, sq); !bytes.Equal(got, want) {
					t.Fatalf("round %d thread %d key %d: lost batched update, got %.20q want %.20q",
						round, ti, k, got, want)
				}
			}
		}
	}

	// Full quiescence, then every shard's offline coupling checker.
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	for j := 0; j < s.NumShards(); j++ {
		if rep := s.Shard(j).CheckInvariants(); !rep.OK() {
			t.Fatalf("shard %d invariants violated after fan-out stress: %v", j, rep.Problems)
		}
	}
}
