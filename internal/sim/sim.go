// Package sim provides the virtual-time foundation used by the simulated
// storage devices.
//
// Every simulated application thread owns a Clock measured in virtual
// nanoseconds. Device models charge access costs (latency plus transfer
// time) to the issuing thread's clock instead of sleeping, which makes
// experiments deterministic and lets a single-core host reproduce the
// throughput and latency *shapes* of a 40-core, 8-SSD testbed.
//
// Shared device capacity is modeled by Resource: a serially reusable
// service channel in virtual time with gap-aware (backfilling) placement.
// Sustained offered load beyond capacity queues, which yields the
// queueing behaviour behind the paper's observation that large IO batches
// raise tail latency; transient out-of-order arrivals backfill idle gaps
// instead of stacking up.
package sim

import (
	"sort"
	"sync"
)

// Clock is a per-thread virtual clock in nanoseconds. It is not safe for
// concurrent use; each simulated thread owns exactly one Clock.
type Clock struct {
	now int64
}

// NewClock returns a clock starting at the given virtual time.
func NewClock(start int64) *Clock { return &Clock{now: start} }

// Now returns the current virtual time in nanoseconds.
func (c *Clock) Now() int64 { return c.now }

// Advance moves the clock forward by d nanoseconds. Negative d is ignored.
func (c *Clock) Advance(d int64) {
	if d > 0 {
		c.now += d
	}
}

// AdvanceTo moves the clock forward to t if t is later than the current
// virtual time. It returns the (possibly unchanged) current time.
func (c *Clock) AdvanceTo(t int64) int64 {
	if t > c.now {
		c.now = t
	}
	return c.now
}

// Resource models a shared serially-reusable capacity (a device's
// bandwidth channel). Acquire schedules busy nanoseconds of service
// starting no earlier than at, returning the service window.
//
// The scheduler is gap-aware: a request arriving at a time when the
// resource is idle is placed into that idle gap even if later work has
// already been scheduled further in the future. (A naive next-free
// ratchet would strand early-time requests behind phantom busy windows
// whenever virtual clocks issue work out of order — which they routinely
// do when real goroutines are scheduled serially on few cores.)
type Resource struct {
	mu    sync.Mutex
	busy  []window // sorted by start, non-overlapping, merged when adjacent
	floor int64    // time before which no new work may be placed (pruned past)
}

type window struct{ start, end int64 }

// maxWindows bounds the busy list; old windows compress into the floor.
const maxWindows = 4096

// Acquire reserves busy ns of service beginning no earlier than at,
// using the earliest available gap. It returns the reserved window.
func (r *Resource) Acquire(at, busy int64) (start, end int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	start = at
	if r.floor > start {
		start = r.floor
	}
	if busy <= 0 {
		return start, start
	}
	// Find the first window that could conflict, then walk gaps.
	i := sort.Search(len(r.busy), func(i int) bool { return r.busy[i].end > start })
	for ; i < len(r.busy); i++ {
		if start+busy <= r.busy[i].start {
			break // fits in the gap before window i
		}
		if r.busy[i].end > start {
			start = r.busy[i].end
		}
	}
	end = start + busy
	// Insert [start,end) at position i, merging with touching neighbors.
	switch {
	case i > 0 && r.busy[i-1].end == start && i < len(r.busy) && r.busy[i].start == end:
		r.busy[i-1].end = r.busy[i].end
		r.busy = append(r.busy[:i], r.busy[i+1:]...)
	case i > 0 && r.busy[i-1].end == start:
		r.busy[i-1].end = end
	case i < len(r.busy) && r.busy[i].start == end:
		r.busy[i].start = start
	default:
		r.busy = append(r.busy, window{})
		copy(r.busy[i+1:], r.busy[i:])
		r.busy[i] = window{start, end}
	}
	if len(r.busy) > maxWindows {
		cut := len(r.busy) - maxWindows/2
		r.floor = r.busy[cut-1].end
		r.busy = append(r.busy[:0], r.busy[cut:]...)
	}
	return start, end
}

// Backlog reports how far the resource's last scheduled work extends
// beyond t — the worst-case queueing delay a request arriving at t sees.
func (r *Resource) Backlog(t int64) int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	last := r.floor
	if n := len(r.busy); n > 0 {
		last = r.busy[n-1].end
	}
	if d := last - t; d > 0 {
		return d
	}
	return 0
}

// TransferNS converts a byte count and a bandwidth in bytes/second into a
// duration in nanoseconds, rounding up so tiny transfers are never free.
func TransferNS(bytes int, bytesPerSec int64) int64 {
	if bytes <= 0 || bytesPerSec <= 0 {
		return 0
	}
	ns := (int64(bytes)*1e9 + bytesPerSec - 1) / bytesPerSec
	if ns < 1 {
		ns = 1
	}
	return ns
}

// RNG is a splitmix64 pseudo-random generator: tiny, fast, and
// deterministic across runs, used by workload generators and device
// placement decisions. It is not safe for concurrent use.
type RNG struct {
	state uint64
}

// NewRNG returns a deterministic generator seeded with seed.
func NewRNG(seed uint64) *RNG { return &RNG{state: seed} }

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a uniform value in [0, n). n must be > 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Int63n returns a uniform value in [0, n). n must be > 0.
func (r *RNG) Int63n(n int64) int64 {
	if n <= 0 {
		panic("sim: Int63n with non-positive n")
	}
	return int64(r.Uint64() % uint64(n))
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Split derives an independent generator, so concurrent workers can each
// own a deterministic stream.
func (r *RNG) Split() *RNG {
	return NewRNG(r.Uint64())
}
