package sim

import (
	"sync"
	"testing"
	"testing/quick"
)

func TestClockAdvance(t *testing.T) {
	c := NewClock(100)
	if c.Now() != 100 {
		t.Fatalf("Now = %d, want 100", c.Now())
	}
	c.Advance(50)
	if c.Now() != 150 {
		t.Fatalf("Now = %d, want 150", c.Now())
	}
	c.Advance(-10) // ignored
	if c.Now() != 150 {
		t.Fatalf("negative advance changed clock: %d", c.Now())
	}
}

func TestClockAdvanceTo(t *testing.T) {
	c := NewClock(0)
	if got := c.AdvanceTo(42); got != 42 {
		t.Fatalf("AdvanceTo returned %d, want 42", got)
	}
	if got := c.AdvanceTo(10); got != 42 {
		t.Fatalf("AdvanceTo went backwards: %d", got)
	}
}

func TestResourceSerializes(t *testing.T) {
	var r Resource
	s1, e1 := r.Acquire(0, 100)
	if s1 != 0 || e1 != 100 {
		t.Fatalf("first acquire = [%d,%d), want [0,100)", s1, e1)
	}
	// Arrives while busy: queued behind.
	s2, e2 := r.Acquire(50, 100)
	if s2 != 100 || e2 != 200 {
		t.Fatalf("second acquire = [%d,%d), want [100,200)", s2, e2)
	}
	// Arrives after idle gap: starts at arrival.
	s3, e3 := r.Acquire(500, 10)
	if s3 != 500 || e3 != 510 {
		t.Fatalf("third acquire = [%d,%d), want [500,510)", s3, e3)
	}
}

func TestResourceBacklog(t *testing.T) {
	var r Resource
	r.Acquire(0, 1000)
	if b := r.Backlog(400); b != 600 {
		t.Fatalf("Backlog(400) = %d, want 600", b)
	}
	if b := r.Backlog(2000); b != 0 {
		t.Fatalf("Backlog(2000) = %d, want 0", b)
	}
}

// Property: concurrent acquisitions never produce overlapping service
// windows and total reserved time equals the sum of busy times.
func TestResourceConcurrentNoOverlap(t *testing.T) {
	var r Resource
	const workers = 8
	const perWorker = 200
	type window struct{ s, e int64 }
	results := make([][]window, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := NewRNG(uint64(w) + 1)
			for i := 0; i < perWorker; i++ {
				busy := rng.Int63n(50) + 1
				s, e := r.Acquire(rng.Int63n(1000), busy)
				results[w] = append(results[w], window{s, e})
			}
		}(w)
	}
	wg.Wait()
	var all []window
	for _, ws := range results {
		all = append(all, ws...)
	}
	// Sort by start and check non-overlap.
	for i := range all {
		for j := i + 1; j < len(all); j++ {
			if all[j].s < all[i].s {
				all[i], all[j] = all[j], all[i]
			}
		}
	}
	for i := 1; i < len(all); i++ {
		if all[i].s < all[i-1].e {
			t.Fatalf("windows overlap: [%d,%d) then [%d,%d)", all[i-1].s, all[i-1].e, all[i].s, all[i].e)
		}
	}
}

// A later-time reservation must not strand an earlier-time one: the
// earlier request backfills the idle gap.
func TestResourceBackfillsIdleGaps(t *testing.T) {
	var r Resource
	r.Acquire(1_000_000, 100) // future work at 1ms
	s, e := r.Acquire(0, 100) // early request: idle gap before 1ms
	if s != 0 || e != 100 {
		t.Fatalf("early request stranded: [%d,%d)", s, e)
	}
	// A request that does not fit in the gap goes after the future work.
	s2, _ := r.Acquire(0, 2_000_000)
	if s2 < 1_000_100 {
		t.Fatalf("oversized request overlapped future work: start %d", s2)
	}
	// Exact-fit gap reuse.
	s3, e3 := r.Acquire(100, 999_900)
	if s3 != 100 || e3 != 1_000_000 {
		t.Fatalf("exact gap not used: [%d,%d)", s3, e3)
	}
}

func TestTransferNS(t *testing.T) {
	cases := []struct {
		bytes int
		bw    int64
		want  int64
	}{
		{0, 1e9, 0},
		{1, 1e9, 1},
		{1000, 1e9, 1000},
		{1024, 7_000_000_000, 147}, // ceil(1024e9/7e9)
		{512, 0, 0},
	}
	for _, c := range cases {
		if got := TransferNS(c.bytes, c.bw); got != c.want {
			t.Errorf("TransferNS(%d, %d) = %d, want %d", c.bytes, c.bw, got, c.want)
		}
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(7), NewRNG(7)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed produced different streams")
		}
	}
	if NewRNG(7).Uint64() == NewRNG(8).Uint64() {
		t.Fatal("different seeds produced same first value")
	}
}

func TestRNGRanges(t *testing.T) {
	r := NewRNG(1)
	f := func(n int64) bool {
		if n <= 0 {
			n = -n + 1
		}
		v := r.Int63n(n)
		return v >= 0 && v < n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		if f := r.Float64(); f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestRNGSplitIndependence(t *testing.T) {
	r := NewRNG(42)
	s := r.Split()
	if r.Uint64() == s.Uint64() {
		t.Fatal("split stream mirrors parent")
	}
}
