package slmdb

import "errors"

// extentAlloc is a minimal first-fit extent allocator with coalescing
// for data-file placement (single-threaded, like the store).
type extentAlloc struct {
	free []extent
}

type extent struct{ off, n int64 }

func newExtentAllocShim(size int64) *extentAlloc {
	return &extentAlloc{free: []extent{{0, size}}}
}

var errNoSpace = errors.New("slmdb: device full")

func (a *extentAlloc) alloc(n int64) (int64, error) {
	for i := range a.free {
		if a.free[i].n >= n {
			off := a.free[i].off
			a.free[i].off += n
			a.free[i].n -= n
			if a.free[i].n == 0 {
				a.free = append(a.free[:i], a.free[i+1:]...)
			}
			return off, nil
		}
	}
	return 0, errNoSpace
}

func (a *extentAlloc) release(off, n int64) {
	i := 0
	for i < len(a.free) && a.free[i].off < off {
		i++
	}
	a.free = append(a.free, extent{})
	copy(a.free[i+1:], a.free[i:])
	a.free[i] = extent{off, n}
	if i+1 < len(a.free) && a.free[i].off+a.free[i].n == a.free[i+1].off {
		a.free[i].n += a.free[i+1].n
		a.free = append(a.free[:i+1], a.free[i+2:]...)
	}
	if i > 0 && a.free[i-1].off+a.free[i-1].n == a.free[i].off {
		a.free[i-1].n += a.free[i].n
		a.free = append(a.free[:i], a.free[i+1:]...)
	}
}
