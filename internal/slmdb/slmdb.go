// Package slmdb reimplements the SLM-DB baseline (Kaiyrakhmet et al.,
// FAST'19) of §7.4: a single-level key-value store that pairs an NVM
// memtable (no WAL — NVM persistence makes redo logging unnecessary)
// with a global persistent B+tree index on NVM and a single level of
// data files on SSD.
//
// Matching the open-source artifact the paper evaluated:
//
//   - Single-threaded execution only (the paper ran Prism single-threaded
//     for the §7.4 comparison).
//   - Memtable flushes append one sorted data file per flush and update
//     the global index entry by entry; there is no multi-level
//     compaction, only *selective* compaction of files whose live ratio
//     has decayed.
//   - Reads go memtable -> index -> one file read per item; scans walk
//     the index and pay one (page-cached) file read per item — no
//     spatial locality, which is why Prism's SVC wins Workload E.
//   - SLM-DB does not support O_DIRECT, so reads go through an OS page
//     cache model (4 KB pages).
package slmdb

import (
	"bytes"
	"fmt"
	"sort"

	"repro/internal/engine"
	"repro/internal/keyindex"
	"repro/internal/nvm"
	"repro/internal/sim"
	"repro/internal/ssd"
)

// Config parameterizes an SLM-DB instance.
type Config struct {
	MemtableBytes  int64 // NVM memtable budget (paper: 64 MB; default 64 KiB)
	SSDBytes       int64 // data device capacity (default 64 MiB)
	SSD            ssd.Config
	PageCacheBytes int64   // OS page cache model (default 4 MiB)
	LiveRatioGC    float64 // selective-compaction threshold (default 0.5)
}

func (c *Config) applyDefaults() {
	if c.MemtableBytes == 0 {
		c.MemtableBytes = 64 << 10
	}
	if c.SSDBytes == 0 {
		c.SSDBytes = 64 << 20
	}
	if c.PageCacheBytes == 0 {
		c.PageCacheBytes = 4 << 20
	}
	if c.LiveRatioGC == 0 {
		c.LiveRatioGC = 0.5
	}
}

const pageSize = 4096

// loc packs a value location: [file:14][off:34][len:16].
func packLoc(file int, off int64, n int) uint64 {
	return uint64(file)<<50 | uint64(off)<<16 | uint64(n)
}

func unpackLoc(v uint64) (file int, off int64, n int) {
	return int(v >> 50), int64(v >> 16 & (1<<34 - 1)), int(v & 0xffff)
}

type dataFile struct {
	id    int
	off   int64 // device extent
	size  int64
	total int
	live  int
}

// Store is a single-threaded SLM-DB instance.
type Store struct {
	cfg Config
	clk *sim.Clock

	memKeys  map[string]int // key -> memEnts slot
	memEnts  []memEntry
	memBytes int64

	index   *keyindex.Index
	nvmCost *nvm.Device

	dev    *ssd.Device
	alloc  *extentAlloc
	files  map[int]*dataFile
	nextID int

	pcacheCap int64
	pcache    map[int64][]byte
	plru      []int64

	userBytes int64
	flushes   int64
	compacts  int64
}

type memEntry struct {
	key  []byte
	val  []byte
	tomb bool
}

// Open creates an SLM-DB store over fresh simulated devices.
func Open(cfg Config) *Store {
	cfg.applyDefaults()
	scfg := cfg.SSD
	scfg.Size = cfg.SSDBytes
	scfg.Name = "slmdb-data"
	return &Store{
		cfg:       cfg,
		clk:       sim.NewClock(0),
		memKeys:   map[string]int{},
		index:     keyindex.New(nvm.New(nvm.Config{Size: 4096})),
		nvmCost:   nvm.New(nvm.Config{Size: 4096}),
		dev:       ssd.New(scfg),
		alloc:     newExtentAllocShim(cfg.SSDBytes),
		files:     map[int]*dataFile{},
		pcacheCap: cfg.PageCacheBytes,
		pcache:    map[int64][]byte{},
	}
}

// Thread returns the single handle (SLM-DB is single-threaded).
func (s *Store) Thread(i int) engine.KV {
	if i != 0 {
		panic("slmdb: single-threaded store")
	}
	return s
}

// NumThreads returns 1.
func (s *Store) NumThreads() int { return 1 }

// Close is a no-op (no background threads).
func (s *Store) Close() error { return nil }

// Clock returns the store's virtual clock.
func (s *Store) Clock() *sim.Clock { return s.clk }

// WriteAmp returns (device bytes written, user bytes written).
func (s *Store) WriteAmp() (device, user int64) {
	return s.dev.Stats().BytesWritten, s.userBytes
}

// Stats reports flush/compaction counts and live file count.
type Stats struct {
	Flushes, Compactions int64
	Files                int
}

// Stats returns engine counters.
func (s *Store) Stats() Stats {
	return Stats{Flushes: s.flushes, Compactions: s.compacts, Files: len(s.files)}
}

// Put stores key/value in the NVM memtable (durable immediately — no
// WAL, §7.4) and flushes when the memtable budget is exceeded.
func (s *Store) Put(key, value []byte) error {
	s.userBytes += int64(len(value))
	// NVM memtable write: a persistent skiplist insert persists the new
	// node and several predecessor pointers (multiple line flushes with
	// ordering fences), unlike Prism's single sequential PWB append —
	// exactly the §4.3 contrast.
	s.nvmCost.ChargeWrite(s.clk, len(key)+len(value)+32)
	s.clk.Advance(2200) // node + pointer flushes, fences
	s.memPut(key, value, false)
	if s.memBytes >= s.cfg.MemtableBytes {
		if err := s.flush(); err != nil {
			return err
		}
	}
	return nil
}

// Delete removes key (tombstone through the same flush path).
func (s *Store) Delete(key []byte) error {
	if _, err := s.Get(key); err != nil {
		return err
	}
	s.nvmCost.ChargeWrite(s.clk, len(key)+32)
	s.memPut(key, nil, true)
	return nil
}

func (s *Store) memPut(key, val []byte, tomb bool) {
	if i, ok := s.memKeys[string(key)]; ok {
		s.memBytes += int64(len(val)) - int64(len(s.memEnts[i].val))
		s.memEnts[i].val = append([]byte(nil), val...)
		s.memEnts[i].tomb = tomb
		return
	}
	s.memKeys[string(key)] = len(s.memEnts)
	s.memEnts = append(s.memEnts, memEntry{
		key:  append([]byte(nil), key...),
		val:  append([]byte(nil), val...),
		tomb: tomb,
	})
	s.memBytes += int64(len(key) + len(val) + 48)
}

// Get resolves memtable first, then the global index and one file read.
func (s *Store) Get(key []byte) ([]byte, error) {
	s.nvmCost.ChargeRead(s.clk, 64)
	if i, ok := s.memKeys[string(key)]; ok {
		e := s.memEnts[i]
		if e.tomb {
			return nil, engine.ErrNotFound
		}
		return append([]byte(nil), e.val...), nil
	}
	loc, ok := s.index.Lookup(s.clk, key)
	if !ok {
		return nil, engine.ErrNotFound
	}
	_, off, n := unpackLoc(loc)
	return s.readExtent(off, n), nil
}

// Scan walks the index range, overlaying memtable entries, paying one
// (page-cached) data read per index hit.
func (s *Store) Scan(start []byte, count int, fn func(key, value []byte) bool) error {
	if count <= 0 {
		count = 1 << 30
	}
	// Collect index range.
	type item struct {
		key  []byte
		val  []byte
		tomb bool
		loc  uint64
	}
	var items []item
	s.index.Scan(s.clk, start, count+len(s.memEnts), func(k []byte, v uint64) bool {
		items = append(items, item{key: append([]byte(nil), k...), loc: v})
		return true
	})
	// Overlay memtable (newer) entries.
	for _, e := range s.memEnts {
		if bytes.Compare(e.key, start) < 0 {
			continue
		}
		found := false
		for i := range items {
			if bytes.Equal(items[i].key, e.key) {
				items[i].val, items[i].tomb = e.val, e.tomb
				items[i].loc = 0
				found = true
				break
			}
		}
		if !found {
			items = append(items, item{key: e.key, val: e.val, tomb: e.tomb})
		}
	}
	sort.Slice(items, func(a, b int) bool { return bytes.Compare(items[a].key, items[b].key) < 0 })
	emitted := 0
	for _, it := range items {
		if it.tomb {
			continue
		}
		if emitted >= count {
			break
		}
		val := it.val
		if val == nil && it.loc != 0 {
			_, off, n := unpackLoc(it.loc)
			val = s.readExtent(off, n)
		}
		emitted++
		if !fn(it.key, val) {
			break
		}
	}
	return nil
}

// readExtent reads [off, off+n) through the page cache.
func (s *Store) readExtent(off int64, n int) []byte {
	first := off / pageSize
	last := (off + int64(n) - 1) / pageSize
	var buf []byte
	for p := first; p <= last; p++ {
		pg, ok := s.pcache[p]
		if !ok {
			pg = make([]byte, pageSize)
			comps := s.dev.Submit(s.clk.Now(), []ssd.Request{{Op: ssd.OpRead, Offset: p * pageSize, Data: pg}})
			s.clk.AdvanceTo(comps[0].DoneTime)
			s.cachePage(p, pg)
		} else {
			s.clk.Advance(300)
		}
		buf = append(buf, pg...)
	}
	rel := off - first*pageSize
	return append([]byte(nil), buf[rel:rel+int64(n)]...)
}

// invalidatePages drops cached pages covering [off, off+n) — required
// whenever an extent is rewritten after reuse.
func (s *Store) invalidatePages(off, n int64) {
	for p := off / pageSize; p <= (off+n-1)/pageSize; p++ {
		delete(s.pcache, p)
	}
}

func (s *Store) cachePage(p int64, pg []byte) {
	s.pcache[p] = pg
	s.plru = append(s.plru, p)
	for int64(len(s.pcache))*pageSize > s.pcacheCap && len(s.plru) > 0 {
		victim := s.plru[0]
		s.plru = s.plru[1:]
		delete(s.pcache, victim)
	}
}

// flush writes the memtable as one sorted data file, updates the global
// index, and runs selective compaction on decayed files.
func (s *Store) flush() error {
	ents := append([]memEntry(nil), s.memEnts...)
	sort.Slice(ents, func(a, b int) bool { return bytes.Compare(ents[a].key, ents[b].key) < 0 })

	var data []byte
	type pending struct {
		key  []byte
		off  int64
		n    int
		tomb bool
	}
	var pend []pending
	for _, e := range ents {
		if e.tomb {
			pend = append(pend, pending{key: e.key, tomb: true})
			continue
		}
		pend = append(pend, pending{key: e.key, off: int64(len(data)), n: len(e.val)})
		data = append(data, e.val...)
	}
	if len(data) > 0 {
		for len(data)%pageSize != 0 {
			data = append(data, 0)
		}
		base, err := s.alloc.alloc(int64(len(data)))
		if err != nil {
			return fmt.Errorf("slmdb: %w", err)
		}
		comps := s.dev.Submit(s.clk.Now(), []ssd.Request{{Op: ssd.OpWrite, Offset: base, Data: data}})
		s.dev.Ack(comps[0])
		s.clk.AdvanceTo(comps[0].DoneTime)
		s.invalidatePages(base, int64(len(data)))
		s.nextID++
		f := &dataFile{id: s.nextID, off: base, size: int64(len(data))}
		s.files[f.id] = f
		for i := range pend {
			if !pend[i].tomb {
				pend[i].off += base
				f.total++
				f.live++
			}
		}
		// Install index entries (B+tree on NVM, its own crash consistency).
		for _, p := range pend {
			if p.tomb {
				if old, ok := s.index.Delete(s.clk, p.key); ok {
					s.decay(old)
				}
				continue
			}
			if old, existed := s.index.Upsert(s.clk, p.key, packLoc(f.id, p.off, p.n)); existed {
				s.decay(old)
			}
		}
	} else {
		for _, p := range pend {
			if old, ok := s.index.Delete(s.clk, p.key); ok {
				s.decay(old)
			}
		}
	}
	s.memKeys = map[string]int{}
	s.memEnts = s.memEnts[:0]
	s.memBytes = 0
	s.flushes++
	s.selectiveCompact()
	return nil
}

// decay marks the old location dead and reclaims empty files.
func (s *Store) decay(oldLoc uint64) {
	fid, _, _ := unpackLoc(oldLoc)
	f := s.files[fid]
	if f == nil {
		return
	}
	f.live--
	if f.live <= 0 {
		s.alloc.release(f.off, f.size)
		delete(s.files, fid)
	}
}

// selectiveCompact merges files whose live ratio fell below the
// threshold (SLM-DB's garbage collection; single-threaded, so it runs on
// the foreground clock — one source of its degraded throughput, §7.4).
func (s *Store) selectiveCompact() {
	var victims []*dataFile
	for _, f := range s.files {
		if f.total > 0 && float64(f.live)/float64(f.total) < s.cfg.LiveRatioGC {
			victims = append(victims, f)
			if len(victims) == 2 {
				break
			}
		}
	}
	if len(victims) == 0 {
		return
	}
	s.compacts++
	// Collect live entries by probing the index for every key pointing
	// into a victim: walk the whole index once (SLM-DB keeps per-file
	// metadata; a full B+tree walk models the same cost envelope).
	vset := map[int]*dataFile{}
	for _, f := range victims {
		vset[f.id] = f
	}
	type liveEnt struct {
		key []byte
		val []byte
	}
	var live []liveEnt
	s.index.Scan(s.clk, nil, 0, func(k []byte, v uint64) bool {
		fid, off, n := unpackLoc(v)
		if _, ok := vset[fid]; ok {
			live = append(live, liveEnt{key: append([]byte(nil), k...), val: s.readExtent(off, n)})
		}
		return true
	})
	var data []byte
	type pl struct {
		key []byte
		off int64
		n   int
	}
	var pend []pl
	for _, e := range live {
		pend = append(pend, pl{key: e.key, off: int64(len(data)), n: len(e.val)})
		data = append(data, e.val...)
	}
	if len(data) > 0 {
		for len(data)%pageSize != 0 {
			data = append(data, 0)
		}
		base, err := s.alloc.alloc(int64(len(data)))
		if err != nil {
			return // out of space: skip compaction
		}
		comps := s.dev.Submit(s.clk.Now(), []ssd.Request{{Op: ssd.OpWrite, Offset: base, Data: data}})
		s.dev.Ack(comps[0])
		s.clk.AdvanceTo(comps[0].DoneTime)
		s.invalidatePages(base, int64(len(data)))
		s.nextID++
		f := &dataFile{id: s.nextID, off: base, size: int64(len(data)), total: len(pend), live: len(pend)}
		s.files[f.id] = f
		for _, p := range pend {
			s.index.Upsert(s.clk, p.key, packLoc(f.id, base+p.off, p.n))
		}
	}
	for _, v := range victims {
		if s.files[v.id] != nil {
			s.alloc.release(v.off, v.size)
			delete(s.files, v.id)
		}
	}
}
