package slmdb

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"repro/internal/engine"
)

func open(t *testing.T, mutate func(*Config)) *Store {
	t.Helper()
	cfg := Config{MemtableBytes: 8 << 10, SSDBytes: 16 << 20, PageCacheBytes: 256 << 10}
	if mutate != nil {
		mutate(&cfg)
	}
	s := Open(cfg)
	t.Cleanup(func() { s.Close() })
	return s
}

func key(i int) []byte   { return []byte(fmt.Sprintf("user%08d", i)) }
func value(i int) []byte { return []byte(fmt.Sprintf("value-%08d-%016d", i, i)) }

func TestPutGetMemtable(t *testing.T) {
	s := open(t, nil)
	if err := s.Put(key(1), value(1)); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get(key(1))
	if err != nil || !bytes.Equal(got, value(1)) {
		t.Fatalf("Get = %q, %v", got, err)
	}
	if _, err := s.Get(key(2)); !errors.Is(err, engine.ErrNotFound) {
		t.Fatalf("missing: %v", err)
	}
}

func TestFlushAndReadFromFile(t *testing.T) {
	s := open(t, nil)
	const n = 2000
	for i := 0; i < n; i++ {
		if err := s.Put(key(i), value(i)); err != nil {
			t.Fatal(err)
		}
	}
	if s.Stats().Flushes == 0 {
		t.Fatal("no flush despite memtable overflow")
	}
	for i := 0; i < n; i += 13 {
		got, err := s.Get(key(i))
		if err != nil || !bytes.Equal(got, value(i)) {
			t.Fatalf("get %d: %q, %v", i, got, err)
		}
	}
}

func TestUpdatesAndSelectiveCompaction(t *testing.T) {
	s := open(t, nil)
	const keys = 300
	for round := 0; round < 12; round++ {
		for i := 0; i < keys; i++ {
			if err := s.Put(key(i), value(round*keys+i)); err != nil {
				t.Fatal(err)
			}
		}
	}
	st := s.Stats()
	if st.Compactions == 0 {
		t.Fatal("selective compaction never ran despite churn")
	}
	for i := 0; i < keys; i += 11 {
		want := value(11*keys + i)
		got, err := s.Get(key(i))
		if err != nil || !bytes.Equal(got, want) {
			t.Fatalf("key %d after compaction: %q, %v", i, got, err)
		}
	}
}

func TestDelete(t *testing.T) {
	s := open(t, nil)
	for i := 0; i < 500; i++ {
		s.Put(key(i), value(i))
	}
	if err := s.Delete(key(5)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get(key(5)); !errors.Is(err, engine.ErrNotFound) {
		t.Fatalf("deleted visible: %v", err)
	}
	// Push the tombstone through a flush.
	for i := 500; i < 1200; i++ {
		s.Put(key(i), value(i))
	}
	if _, err := s.Get(key(5)); !errors.Is(err, engine.ErrNotFound) {
		t.Fatalf("deleted key resurrected after flush: %v", err)
	}
	if err := s.Delete(key(99999)); !errors.Is(err, engine.ErrNotFound) {
		t.Fatalf("delete of missing key: %v", err)
	}
}

func TestScanOrderedWithMemtableOverlay(t *testing.T) {
	s := open(t, nil)
	for i := 0; i < 1500; i++ {
		s.Put(key(i), value(i))
	}
	s.Put(key(103), []byte("fresh")) // memtable overlay
	var keys []string
	err := s.Scan(key(100), 10, func(k, v []byte) bool {
		keys = append(keys, string(k))
		if string(k) == string(key(103)) && string(v) != "fresh" {
			t.Fatalf("stale scan value %q", v)
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 10 {
		t.Fatalf("scan visited %d", len(keys))
	}
	for i := 1; i < len(keys); i++ {
		if keys[i-1] >= keys[i] {
			t.Fatalf("out of order: %v", keys)
		}
	}
}

func TestVirtualTimeAndWAF(t *testing.T) {
	s := open(t, nil)
	for i := 0; i < 1000; i++ {
		s.Put(key(i), value(i))
	}
	if s.Clock().Now() == 0 {
		t.Fatal("no virtual time charged")
	}
	dev, user := s.WriteAmp()
	if user == 0 || dev == 0 {
		t.Fatalf("WAF accounting dev=%d user=%d", dev, user)
	}
}

func TestSingleThreadedContract(t *testing.T) {
	s := open(t, nil)
	if s.NumThreads() != 1 {
		t.Fatal("SLM-DB must expose one handle")
	}
	if s.Thread(0) == nil {
		t.Fatal("nil handle")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Thread(1) did not panic")
		}
	}()
	s.Thread(1)
}
