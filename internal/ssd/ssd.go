// Package ssd simulates an NVMe flash SSD with an asynchronous
// submission/completion interface (the io_uring analogue the paper's
// Value Storage is built on).
//
// The model captures the three SSD properties the evaluation depends on:
//
//   - Bandwidth vs. latency trade-off. Each direction has a shared
//     bandwidth channel in virtual time; transfer time queues behind
//     earlier IO, so large batches raise utilization *and* tail latency —
//     the queueing effect of §4.2.
//   - Durability boundary. A write is durable only once the submitter has
//     observed its completion and acknowledged it (Ack). Crash drops all
//     unacknowledged writes, modeling in-flight IO lost on power failure.
//   - Write amplification accounting. The device counts every byte it is
//     asked to write, so SSD-level WAF (Figure 12) is measured, not
//     estimated.
package ssd

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/sim"
)

// Config describes the simulated device. Zero fields default to the
// paper's Figure 1 numbers for a Samsung 980 PRO (PCIe 4 flash SSD).
type Config struct {
	Name           string
	Size           int64 // capacity in bytes
	ReadLatency    int64 // ns
	WriteLatency   int64 // ns
	ReadBandwidth  int64 // bytes/second
	WriteBandwidth int64 // bytes/second
}

func (c *Config) applyDefaults() {
	if c.ReadLatency == 0 {
		c.ReadLatency = 50_000 // 50 us
	}
	if c.WriteLatency == 0 {
		c.WriteLatency = 20_000 // 20 us
	}
	if c.ReadBandwidth == 0 {
		c.ReadBandwidth = 7_000_000_000 // 7 GB/s
	}
	if c.WriteBandwidth == 0 {
		c.WriteBandwidth = 5_000_000_000 // 5 GB/s
	}
}

// Op is the IO direction.
type Op uint8

// Request operations.
const (
	OpRead Op = iota
	OpWrite
)

// Request is one entry for the submission queue.
type Request struct {
	Op       Op
	Offset   int64
	Data     []byte // read destination or write source; length = IO size
	UserData uint64 // opaque tag echoed in the Completion
}

// Completion reports the virtual-time schedule of one request.
type Completion struct {
	UserData   uint64
	Op         Op
	Offset     int64
	Len        int
	SubmitTime int64 // when the batch was submitted
	StartTime  int64 // when the device began servicing the request
	DoneTime   int64 // when the completion was posted

	token uint64 // write-pending handle, 0 for reads
}

type pendingWrite struct {
	off  int64
	data []byte
}

// Device is one simulated SSD.
type Device struct {
	cfg Config

	mu      sync.Mutex
	durable []byte
	pending map[uint64]pendingWrite
	nextTok uint64

	readBW  sim.Resource
	writeBW sim.Resource

	bytesWritten atomic.Int64 // acked write bytes (device-level WAF numerator)
	bytesRead    atomic.Int64
	readIOs      atomic.Int64
	writeIOs     atomic.Int64
	inFlight     atomic.Int64
}

// New creates a device of cfg.Size bytes.
func New(cfg Config) *Device {
	cfg.applyDefaults()
	if cfg.Size <= 0 {
		panic("ssd: non-positive size")
	}
	return &Device{
		cfg:     cfg,
		durable: make([]byte, cfg.Size),
		pending: make(map[uint64]pendingWrite),
	}
}

// Size returns the device capacity in bytes.
func (d *Device) Size() int64 { return d.cfg.Size }

// Config returns the device's effective configuration (defaults applied).
// Tier selection reads it to rank devices by speed and capacity.
func (d *Device) Config() Config { return d.cfg }

// Name returns the configured device name.
func (d *Device) Name() string { return d.cfg.Name }

func (d *Device) check(off int64, n int) {
	if off < 0 || n < 0 || off+int64(n) > d.cfg.Size {
		panic(fmt.Sprintf("ssd %q: access [%d,%d) out of range (size %d)", d.cfg.Name, off, off+int64(n), d.cfg.Size))
	}
}

// Submit places a batch on the submission queue at virtual time at and
// returns the completion schedule for every request, in order.
//
// Reads copy durable data into Request.Data immediately; their DoneTime
// says when that data would have been available. Writes are staged: the
// caller must observe the completion (advance its clock to DoneTime) and
// call Ack before the data is durable. This mirrors asynchronous IO where
// acting on a write before its completion is a protocol bug.
func (d *Device) Submit(at int64, reqs []Request) []Completion {
	comps := make([]Completion, len(reqs))
	d.mu.Lock()
	defer d.mu.Unlock()
	for i, r := range reqs {
		d.check(r.Offset, len(r.Data))
		c := Completion{
			UserData:   r.UserData,
			Op:         r.Op,
			Offset:     r.Offset,
			Len:        len(r.Data),
			SubmitTime: at,
		}
		switch r.Op {
		case OpRead:
			start, end := d.readBW.Acquire(at, sim.TransferNS(len(r.Data), d.cfg.ReadBandwidth))
			c.StartTime, c.DoneTime = start, end+d.cfg.ReadLatency
			copy(r.Data, d.durable[r.Offset:r.Offset+int64(len(r.Data))])
			d.bytesRead.Add(int64(len(r.Data)))
			d.readIOs.Add(1)
		case OpWrite:
			start, end := d.writeBW.Acquire(at, sim.TransferNS(len(r.Data), d.cfg.WriteBandwidth))
			c.StartTime, c.DoneTime = start, end+d.cfg.WriteLatency
			d.nextTok++
			c.token = d.nextTok
			buf := make([]byte, len(r.Data))
			copy(buf, r.Data)
			d.pending[c.token] = pendingWrite{off: r.Offset, data: buf}
			d.inFlight.Add(1)
			d.writeIOs.Add(1)
		default:
			panic("ssd: unknown op")
		}
		comps[i] = c
	}
	return comps
}

// Ack acknowledges an observed write completion, making the data durable.
// Acking a read is a no-op. Acking twice panics (protocol bug).
func (d *Device) Ack(c Completion) {
	if c.Op != OpWrite {
		return
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	p, ok := d.pending[c.token]
	if !ok {
		panic("ssd: Ack of unknown or already-acked write")
	}
	delete(d.pending, c.token)
	copy(d.durable[p.off:p.off+int64(len(p.data))], p.data)
	d.bytesWritten.Add(int64(len(p.data)))
	d.inFlight.Add(-1)
}

// InFlight reports the number of staged, unacknowledged writes. The Value
// Storage uses it to prefer idle devices (§5.2).
func (d *Device) InFlight() int { return int(d.inFlight.Load()) }

// Backlog reports the queueing delay (ns) a read arriving at t would see.
func (d *Device) Backlog(t int64) int64 { return d.readBW.Backlog(t) }

// Crash drops every staged, unacknowledged write — the in-flight IO a
// power failure would lose. Durable contents are untouched.
func (d *Device) Crash() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.inFlight.Add(-int64(len(d.pending)))
	d.pending = make(map[uint64]pendingWrite)
}

// Stats is a snapshot of device counters.
type Stats struct {
	BytesRead    int64
	BytesWritten int64 // durable (acked) bytes — WAF numerator
	ReadIOs      int64
	WriteIOs     int64
}

// Stats returns the device counters.
func (d *Device) Stats() Stats {
	return Stats{
		BytesRead:    d.bytesRead.Load(),
		BytesWritten: d.bytesWritten.Load(),
		ReadIOs:      d.readIOs.Load(),
		WriteIOs:     d.writeIOs.Load(),
	}
}

// ResetStats zeroes the counters (used between benchmark phases).
func (d *Device) ResetStats() {
	d.bytesRead.Store(0)
	d.bytesWritten.Store(0)
	d.readIOs.Store(0)
	d.writeIOs.Store(0)
}
