package ssd

import (
	"bytes"
	"sync"
	"testing"
)

func newDev(size int64) *Device {
	return New(Config{Name: "test", Size: size})
}

func TestWriteAckRead(t *testing.T) {
	d := newDev(1 << 20)
	src := []byte("value-on-flash")
	comps := d.Submit(0, []Request{{Op: OpWrite, Offset: 4096, Data: src}})
	if len(comps) != 1 {
		t.Fatalf("got %d completions", len(comps))
	}
	// Before Ack the data must not be durable.
	buf := make([]byte, len(src))
	d.Submit(comps[0].DoneTime, []Request{{Op: OpRead, Offset: 4096, Data: buf}})
	if bytes.Equal(buf, src) {
		t.Fatal("read observed unacked write")
	}
	d.Ack(comps[0])
	d.Submit(comps[0].DoneTime, []Request{{Op: OpRead, Offset: 4096, Data: buf}})
	if !bytes.Equal(buf, src) {
		t.Fatalf("read after ack = %q, want %q", buf, src)
	}
}

func TestCrashDropsInFlightWrites(t *testing.T) {
	d := newDev(1 << 20)
	c1 := d.Submit(0, []Request{{Op: OpWrite, Offset: 0, Data: []byte("acked")}})
	d.Ack(c1[0])
	d.Submit(0, []Request{{Op: OpWrite, Offset: 512, Data: []byte("inflight")}})
	if d.InFlight() != 1 {
		t.Fatalf("InFlight = %d, want 1", d.InFlight())
	}
	d.Crash()
	if d.InFlight() != 0 {
		t.Fatalf("InFlight after crash = %d", d.InFlight())
	}
	buf := make([]byte, 8)
	d.Submit(0, []Request{{Op: OpRead, Offset: 512, Data: buf}})
	if string(buf) == "inflight" {
		t.Fatal("in-flight write survived crash")
	}
	buf = make([]byte, 5)
	d.Submit(0, []Request{{Op: OpRead, Offset: 0, Data: buf}})
	if string(buf) != "acked" {
		t.Fatalf("acked write lost on crash: %q", buf)
	}
}

func TestDoubleAckPanics(t *testing.T) {
	d := newDev(1 << 20)
	c := d.Submit(0, []Request{{Op: OpWrite, Offset: 0, Data: []byte("x")}})
	d.Ack(c[0])
	defer func() {
		if recover() == nil {
			t.Fatal("double Ack did not panic")
		}
	}()
	d.Ack(c[0])
}

func TestAckReadIsNoop(t *testing.T) {
	d := newDev(1 << 20)
	c := d.Submit(0, []Request{{Op: OpRead, Offset: 0, Data: make([]byte, 8)}})
	d.Ack(c[0]) // must not panic
}

func TestLatencyModel(t *testing.T) {
	d := New(Config{Size: 1 << 20, ReadLatency: 50_000, ReadBandwidth: 1_000_000_000})
	// Single 1KB read at t=0: transfer ~1024ns + 50us latency.
	c := d.Submit(0, []Request{{Op: OpRead, Offset: 0, Data: make([]byte, 1024)}})
	if c[0].DoneTime < 50_000 || c[0].DoneTime > 60_000 {
		t.Fatalf("read DoneTime = %d, want ~51us", c[0].DoneTime)
	}
}

func TestBatchQueueing(t *testing.T) {
	d := New(Config{Size: 1 << 24, ReadLatency: 50_000, ReadBandwidth: 1_000_000_000})
	// 64 x 64KB reads in one batch: later requests queue behind earlier
	// transfers, so tail DoneTime must exceed head DoneTime considerably.
	reqs := make([]Request, 64)
	for i := range reqs {
		reqs[i] = Request{Op: OpRead, Offset: int64(i) * 65536, Data: make([]byte, 65536)}
	}
	comps := d.Submit(0, reqs)
	head, tail := comps[0].DoneTime, comps[63].DoneTime
	if tail <= head {
		t.Fatalf("no queueing delay: head=%d tail=%d", head, tail)
	}
	// 64 * 64KB at 1GB/s = ~4.2ms of transfer ahead of the tail.
	if tail < 4_000_000 {
		t.Fatalf("tail too fast: %d", tail)
	}
}

func TestReadsAndWritesUseSeparateChannels(t *testing.T) {
	d := New(Config{Size: 1 << 24, ReadLatency: 1000, WriteLatency: 1000,
		ReadBandwidth: 1_000_000_000, WriteBandwidth: 1_000_000_000})
	// A huge write should not delay a read issued at the same time.
	d.Submit(0, []Request{{Op: OpWrite, Offset: 0, Data: make([]byte, 1<<20)}})
	c := d.Submit(0, []Request{{Op: OpRead, Offset: 1 << 20, Data: make([]byte, 512)}})
	if c[0].DoneTime > 10_000 {
		t.Fatalf("read delayed by concurrent write: %d", c[0].DoneTime)
	}
}

func TestStatsAndWAFAccounting(t *testing.T) {
	d := newDev(1 << 20)
	c := d.Submit(0, []Request{
		{Op: OpWrite, Offset: 0, Data: make([]byte, 4096)},
		{Op: OpWrite, Offset: 4096, Data: make([]byte, 4096)},
	})
	d.Ack(c[0])
	// Second write never acked: not counted as durable bytes.
	s := d.Stats()
	if s.BytesWritten != 4096 {
		t.Fatalf("BytesWritten = %d, want 4096", s.BytesWritten)
	}
	if s.WriteIOs != 2 {
		t.Fatalf("WriteIOs = %d, want 2", s.WriteIOs)
	}
	d.Submit(0, []Request{{Op: OpRead, Offset: 0, Data: make([]byte, 1024)}})
	s = d.Stats()
	if s.BytesRead != 1024 || s.ReadIOs != 1 {
		t.Fatalf("read stats = %+v", s)
	}
	d.ResetStats()
	if s := d.Stats(); s.BytesRead != 0 || s.BytesWritten != 0 {
		t.Fatalf("ResetStats left %+v", s)
	}
}

func TestOutOfRangePanics(t *testing.T) {
	d := newDev(4096)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range IO did not panic")
		}
	}()
	d.Submit(0, []Request{{Op: OpRead, Offset: 4000, Data: make([]byte, 200)}})
}

func TestConcurrentSubmitters(t *testing.T) {
	d := newDev(1 << 22)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			base := int64(w) * (1 << 19)
			for i := 0; i < 32; i++ {
				data := bytes.Repeat([]byte{byte(w)}, 512)
				c := d.Submit(int64(i), []Request{{Op: OpWrite, Offset: base + int64(i)*512, Data: data}})
				d.Ack(c[0])
			}
		}(w)
	}
	wg.Wait()
	for w := 0; w < 8; w++ {
		buf := make([]byte, 512)
		d.Submit(0, []Request{{Op: OpRead, Offset: int64(w) * (1 << 19), Data: buf}})
		if buf[0] != byte(w) || buf[511] != byte(w) {
			t.Fatalf("worker %d data corrupted", w)
		}
	}
}

func TestCompletionOrderWithinBatchIsSubmitOrder(t *testing.T) {
	d := newDev(1 << 20)
	reqs := []Request{
		{Op: OpRead, Offset: 0, Data: make([]byte, 4096), UserData: 1},
		{Op: OpRead, Offset: 4096, Data: make([]byte, 4096), UserData: 2},
		{Op: OpRead, Offset: 8192, Data: make([]byte, 4096), UserData: 3},
	}
	comps := d.Submit(0, reqs)
	for i, c := range comps {
		if c.UserData != uint64(i+1) {
			t.Fatalf("completion %d has UserData %d", i, c.UserData)
		}
		if i > 0 && c.DoneTime < comps[i-1].DoneTime {
			t.Fatal("completions regressed in time within a batch")
		}
	}
}
