// Package svc implements the Scan-aware Value Cache of §4.4: a DRAM
// cache of read-hot values with no index of its own — cached values are
// reached directly from HSIT entries (word 1), published lock-free by the
// reading thread.
//
// Cache management runs on a background manager goroutine, keeping it off
// the critical path: foreground threads only (a) publish a freshly
// admitted entry with one CAS and (b) enqueue touch events. The manager
// maintains a 2Q LRU — an inactive list receiving first-time admissions
// and an active list receiving promoted (re-touched) entries — and evicts
// from the inactive tail when DRAM capacity is exceeded.
//
// Scan awareness: values admitted by the same range scan are chained in
// key order. When one member of a chain is evicted, the whole resident
// chain is handed to the engine's rewrite hook, which sorts the values
// and writes them into a single Value Storage chunk, restoring spatial
// locality for future scans (§4.4 steps 5–6).
//
// Entry lifetime: handles embed a per-slot generation, so a stale handle
// read from HSIT after the slot was recycled simply fails validation.
// (The paper frees entries via epoch-based reclamation; Go's GC plus
// generation checks provide the same safety for the DRAM-resident part.)
package svc

import (
	"sync"
	"sync/atomic"
)

// Entry is one cached value. Key, Value, HSITIdx, Ver are immutable
// after creation; list and chain links are owned by the manager
// goroutine.
type Entry struct {
	HSITIdx uint64
	Key     []byte
	Value   []byte

	// Ver is the caller's opaque currency token (the HSIT entry's
	// publish version observed when the value was read). Lookup hands it
	// back so readers can check the entry is still current: a cached
	// value is valid only while no publish has happened since — a check
	// the forward pointer itself cannot provide, because recycled
	// offsets can make a stale pointer bit-identical to the current one.
	Ver uint64

	slot uint32
	gen  uint32

	// Manager-owned state.
	state      int8 // 0 = not resident, 1 = inactive, 2 = active
	prev, next *Entry
	chainPrev  *Entry
	chainNext  *Entry
}

// Handle returns the value published in HSIT word 1 for this entry.
func (e *Entry) Handle() uint64 { return uint64(e.gen)<<32 | uint64(e.slot+1) }

func (e *Entry) size() int64 { return int64(len(e.Key) + len(e.Value) + 96) }

// EvictedChain is passed to the rewrite hook: the resident members of a
// scan chain, in key order, at the moment one of them was evicted.
type EvictedChain struct {
	Entries []*Entry
}

// Config parameterizes the cache.
type Config struct {
	// CapacityBytes bounds resident Key+Value+overhead bytes.
	CapacityBytes int64
	// ActiveFraction is the share of capacity the active list may hold
	// before demotion (default 2/3, the usual 2Q split).
	ActiveFraction float64
	// OnScanEvict, if set, receives the resident chain whenever a
	// chained entry is evicted. It runs on the manager goroutine.
	OnScanEvict func(chain EvictedChain)
	// Unpublish must CAS HSIT[idx].word1 from handle to 0; it returns
	// whether this call cleared it. Wired to hsit.Table.CasSVC.
	Unpublish func(hsitIdx, handle uint64) bool
	// OnPromote, if set, is called when an entry is promoted from the
	// inactive to the active 2Q list — the cache's read-hotness signal.
	// The tiering engine feeds it into per-key heat tracking. Runs on
	// the manager goroutine; must not block or call back into the cache.
	OnPromote func(hsitIdx uint64)
	// QueueLen sizes the manager's event queue (default 4096).
	QueueLen int
}

type evKind uint8

const (
	evAdd evKind = iota
	evTouch
	evRemove
	evChain
	evSync
)

type event struct {
	kind    evKind
	entry   *Entry
	handles []uint64
	done    chan struct{}
}

// Cache is the Scan-aware Value Cache.
type Cache struct {
	cfg Config

	mu    sync.Mutex
	table []*Entry // slot -> resident entry (nil when free); guarded by mu
	gens  []uint32
	frees []uint32

	events chan event
	wg     sync.WaitGroup
	closed atomic.Bool

	bytes      atomic.Int64
	entries    atomic.Int64
	evictions  atomic.Int64
	promotions atomic.Int64
	rewrites   atomic.Int64
	touchDrop  atomic.Int64

	// Manager-owned 2Q lists.
	active, inactive lruList
}

// New creates the cache and starts its manager goroutine.
func New(cfg Config) *Cache {
	if cfg.CapacityBytes <= 0 {
		panic("svc: non-positive capacity")
	}
	if cfg.ActiveFraction <= 0 || cfg.ActiveFraction >= 1 {
		cfg.ActiveFraction = 2.0 / 3.0
	}
	if cfg.QueueLen <= 0 {
		cfg.QueueLen = 4096
	}
	if cfg.Unpublish == nil {
		panic("svc: Unpublish hook required")
	}
	c := &Cache{cfg: cfg, events: make(chan event, cfg.QueueLen)}
	c.wg.Add(1)
	go c.manager()
	return c
}

// Close drains the manager and stops it. The cache must not be used
// afterwards.
func (c *Cache) Close() {
	if c.closed.Swap(true) {
		return
	}
	close(c.events)
	c.wg.Wait()
}

// Lookup resolves a handle read from HSIT word 1. It returns the entry's
// value and admission version if the handle is still current, and
// enqueues a touch event for 2Q promotion. Callers MUST compare ver with
// the HSIT entry's current publish version before using the value: a
// handle can transiently point at a superseded value (an in-flight
// admission that lost its race, or a GC/rewrite relocation) and only the
// version check detects it. The returned slice is immutable — callers
// must copy before handing it to users.
func (c *Cache) Lookup(hsitIdx, handle uint64) (val []byte, ver uint64, ok bool) {
	e := c.resolve(hsitIdx, handle)
	if e == nil {
		return nil, 0, false
	}
	c.post(event{kind: evTouch, entry: e}, false)
	return e.Value, e.Ver, true
}

func (c *Cache) resolve(hsitIdx, handle uint64) *Entry {
	slot := uint32(handle&0xffffffff) - 1
	gen := uint32(handle >> 32)
	c.mu.Lock()
	defer c.mu.Unlock()
	if int(slot) >= len(c.table) {
		return nil
	}
	e := c.table[slot]
	if e == nil || e.gen != gen || e.HSITIdx != hsitIdx {
		return nil
	}
	return e
}

// Admit allocates an entry for a value just read from Value Storage
// under publish version ver (opaque to the cache; readers compare it on
// Lookup). The caller must then publish e.Handle() in HSIT word 1 (CAS
// from 0) and call Published on success or AbortAdmit if it lost the
// race (§4.4: values are admitted only on SSD reads, published
// atomically).
func (c *Cache) Admit(hsitIdx, ver uint64, key, value []byte) *Entry {
	c.mu.Lock()
	var slot uint32
	if n := len(c.frees); n > 0 {
		slot = c.frees[n-1]
		c.frees = c.frees[:n-1]
	} else {
		slot = uint32(len(c.table))
		c.table = append(c.table, nil)
		c.gens = append(c.gens, 0)
	}
	e := &Entry{
		HSITIdx: hsitIdx,
		Key:     append([]byte(nil), key...),
		Value:   append([]byte(nil), value...),
		Ver:     ver,
		slot:    slot,
		gen:     c.gens[slot],
	}
	c.table[slot] = e
	c.mu.Unlock()
	return e
}

// Published enqueues the admitted entry for LRU bookkeeping.
func (c *Cache) Published(e *Entry) {
	c.bytes.Add(e.size())
	c.entries.Add(1)
	c.post(event{kind: evAdd, entry: e}, true)
}

// AbortAdmit releases an entry whose HSIT publication lost a race.
func (c *Cache) AbortAdmit(e *Entry) {
	c.freeSlot(e)
}

// Invalidate removes the entry for handle (value deleted or superseded).
func (c *Cache) Invalidate(hsitIdx, handle uint64) {
	if e := c.resolve(hsitIdx, handle); e != nil {
		c.post(event{kind: evRemove, entry: e}, true)
	}
}

// LinkChain records that the entries behind handles were admitted by one
// scan, in key order, forming the chain used for eviction-time rewrite.
func (c *Cache) LinkChain(handles []uint64) {
	if len(handles) < 2 {
		return
	}
	c.post(event{kind: evChain, handles: handles}, true)
}

// Sync blocks until every event enqueued before it has been processed.
func (c *Cache) Sync() {
	done := make(chan struct{})
	if c.post(event{kind: evSync, done: done}, true) {
		<-done
	}
}

// post enqueues an event; when must is false the event may be dropped
// under pressure (touches are advisory). Returns whether enqueued.
func (c *Cache) post(ev event, must bool) bool {
	if c.closed.Load() {
		return false
	}
	defer func() { recover() }() // racing Close: dropping is acceptable
	if must {
		c.events <- ev
		return true
	}
	select {
	case c.events <- ev:
		return true
	default:
		c.touchDrop.Add(1)
		return false
	}
}

func (c *Cache) freeSlot(e *Entry) {
	c.mu.Lock()
	if int(e.slot) < len(c.table) && c.table[e.slot] == e {
		c.table[e.slot] = nil
		c.gens[e.slot]++
		c.frees = append(c.frees, e.slot)
	}
	c.mu.Unlock()
}

// Stats is a snapshot of cache counters.
type Stats struct {
	Bytes         int64
	Entries       int64
	Evictions     int64
	Promotions    int64 // 2Q inactive -> active moves
	ChainRewrites int64
	TouchDrops    int64
}

// Stats returns the cache counters.
func (c *Cache) Stats() Stats {
	return Stats{
		Bytes:         c.bytes.Load(),
		Entries:       c.entries.Load(),
		Evictions:     c.evictions.Load(),
		Promotions:    c.promotions.Load(),
		ChainRewrites: c.rewrites.Load(),
		TouchDrops:    c.touchDrop.Load(),
	}
}

// ---- manager goroutine ----

type lruList struct {
	head, tail *Entry
	bytes      int64
}

func (l *lruList) pushHead(e *Entry) {
	e.prev = nil
	e.next = l.head
	if l.head != nil {
		l.head.prev = e
	}
	l.head = e
	if l.tail == nil {
		l.tail = e
	}
	l.bytes += e.size()
}

func (l *lruList) remove(e *Entry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		l.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		l.tail = e.prev
	}
	e.prev, e.next = nil, nil
	l.bytes -= e.size()
}

func (c *Cache) manager() {
	defer c.wg.Done()
	for ev := range c.events {
		switch ev.kind {
		case evAdd:
			if ev.entry.state == 0 {
				ev.entry.state = 1
				c.inactive.pushHead(ev.entry)
				c.rebalance()
			}
		case evTouch:
			c.touch(ev.entry)
		case evRemove:
			c.drop(ev.entry, true)
		case evChain:
			c.link(ev.handles)
		case evSync:
			close(ev.done)
		}
	}
}

// touch applies 2Q promotion: a second access moves an inactive entry to
// the active list; an active entry refreshes to the head.
func (c *Cache) touch(e *Entry) {
	switch e.state {
	case 1:
		c.inactive.remove(e)
		e.state = 2
		c.promotions.Add(1)
		if c.cfg.OnPromote != nil {
			c.cfg.OnPromote(e.HSITIdx)
		}
		c.active.pushHead(e)
		c.rebalance()
	case 2:
		c.active.remove(e)
		c.active.pushHead(e)
	}
}

// rebalance demotes the active tail when the active list outgrows its
// share, then evicts from the inactive tail while over capacity.
func (c *Cache) rebalance() {
	activeCap := int64(float64(c.cfg.CapacityBytes) * c.cfg.ActiveFraction)
	for c.active.bytes > activeCap && c.active.tail != nil {
		e := c.active.tail
		c.active.remove(e)
		e.state = 1
		c.inactive.pushHead(e)
	}
	for c.active.bytes+c.inactive.bytes > c.cfg.CapacityBytes {
		victim := c.inactive.tail
		if victim == nil {
			victim = c.active.tail
		}
		if victim == nil {
			return
		}
		c.evict(victim)
	}
}

// evict removes victim from the cache. If it belongs to a scan chain the
// resident chain is handed to the rewrite hook first (§4.4 steps 5-6).
func (c *Cache) evict(victim *Entry) {
	c.evictions.Add(1)
	if (victim.chainPrev != nil || victim.chainNext != nil) && c.cfg.OnScanEvict != nil {
		chain := c.collectChain(victim)
		if len(chain) > 1 {
			c.rewrites.Add(1)
			c.cfg.OnScanEvict(EvictedChain{Entries: chain})
		}
		// The chain is consumed: one rewrite per scan chain.
		for _, e := range chain {
			c.unlinkChain(e)
		}
	}
	c.drop(victim, true)
}

// drop removes e from its list, unpublishes it from HSIT, and frees its
// slot.
func (c *Cache) drop(e *Entry, unpublish bool) {
	switch e.state {
	case 1:
		c.inactive.remove(e)
	case 2:
		c.active.remove(e)
	default:
		return // already gone (duplicate remove events are benign)
	}
	e.state = 0
	c.unlinkChain(e)
	if unpublish {
		c.cfg.Unpublish(e.HSITIdx, e.Handle())
	}
	c.bytes.Add(-e.size())
	c.entries.Add(-1)
	c.freeSlot(e)
}

func (c *Cache) unlinkChain(e *Entry) {
	if e.chainPrev != nil {
		e.chainPrev.chainNext = e.chainNext
	}
	if e.chainNext != nil {
		e.chainNext.chainPrev = e.chainPrev
	}
	e.chainPrev, e.chainNext = nil, nil
}

// link wires the chain in the order given (key order from the scan).
func (c *Cache) link(handles []uint64) {
	var prev *Entry
	for _, h := range handles {
		slot := uint32(h&0xffffffff) - 1
		gen := uint32(h >> 32)
		c.mu.Lock()
		var e *Entry
		if int(slot) < len(c.table) {
			e = c.table[slot]
		}
		c.mu.Unlock()
		if e == nil || e.gen != gen || e.state == 0 {
			continue
		}
		c.unlinkChain(e) // leave any previous chain
		if prev != nil {
			prev.chainNext = e
			e.chainPrev = prev
		}
		prev = e
	}
}

// collectChain walks to the chain head then gathers resident members in
// order. No lookup is needed to find same-range values — the chain was
// formed during the scan (§4.4).
func (c *Cache) collectChain(e *Entry) []*Entry {
	head := e
	for head.chainPrev != nil {
		head = head.chainPrev
	}
	var out []*Entry
	for cur := head; cur != nil; cur = cur.chainNext {
		if cur.state != 0 {
			out = append(out, cur)
		}
	}
	return out
}
