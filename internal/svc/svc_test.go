package svc

import (
	"fmt"
	"sync"
	"testing"
)

// fakeHSIT emulates the word-1 publication protocol.
type fakeHSIT struct {
	mu    sync.Mutex
	words map[uint64]uint64
}

func newFakeHSIT() *fakeHSIT { return &fakeHSIT{words: map[uint64]uint64{}} }

func (f *fakeHSIT) cas(idx, old, new uint64) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.words[idx] != old {
		return false
	}
	f.words[idx] = new
	return true
}

func (f *fakeHSIT) load(idx uint64) uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.words[idx]
}

func newCache(t *testing.T, capacity int64, onEvict func(EvictedChain)) (*Cache, *fakeHSIT) {
	t.Helper()
	h := newFakeHSIT()
	c := New(Config{
		CapacityBytes: capacity,
		OnScanEvict:   onEvict,
		Unpublish:     func(idx, handle uint64) bool { return f_cas(h, idx, handle) },
	})
	t.Cleanup(c.Close)
	return c, h
}

func f_cas(h *fakeHSIT, idx, handle uint64) bool { return h.cas(idx, handle, 0) }

// verOf is the admission version token the admit helper records for idx
// (opaque to the cache; it only round-trips through Lookup).
func verOf(idx uint64) uint64 { return idx + 1000 }

// admit publishes an entry the way the engine does. The admission
// location is derived from idx so tests can verify the round trip.
func admit(t *testing.T, c *Cache, h *fakeHSIT, idx uint64, key, val string) *Entry {
	t.Helper()
	e := c.Admit(idx, verOf(idx), []byte(key), []byte(val))
	if !h.cas(idx, 0, e.Handle()) {
		c.AbortAdmit(e)
		t.Fatalf("publish race for %d", idx)
	}
	c.Published(e)
	return e
}

func TestAdmitLookup(t *testing.T) {
	c, h := newCache(t, 1<<20, nil)
	e := admit(t, c, h, 1, "k1", "v1")
	got, ver, ok := c.Lookup(1, e.Handle())
	if !ok || string(got) != "v1" {
		t.Fatalf("Lookup = %q, %v", got, ok)
	}
	if ver != verOf(1) {
		t.Fatalf("Lookup ver = %d, want %d", ver, verOf(1))
	}
	c.Sync()
	st := c.Stats()
	if st.Entries != 1 || st.Bytes <= 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestLookupRejectsStaleHandle(t *testing.T) {
	c, h := newCache(t, 1<<20, nil)
	e := admit(t, c, h, 1, "k1", "v1")
	handle := e.Handle()
	// Remove and recycle the slot.
	c.Invalidate(1, handle)
	c.Sync()
	e2 := admit(t, c, h, 2, "k2", "v2")
	if e2.slot != e.slot {
		t.Skip("slot not recycled; cannot test generation check")
	}
	if _, _, ok := c.Lookup(1, handle); ok {
		t.Fatal("stale handle resolved after slot recycle")
	}
	if _, _, ok := c.Lookup(2, e2.Handle()); !ok {
		t.Fatal("fresh handle failed")
	}
}

func TestLookupRejectsWrongHSITIdx(t *testing.T) {
	c, h := newCache(t, 1<<20, nil)
	e := admit(t, c, h, 5, "k", "v")
	if _, _, ok := c.Lookup(6, e.Handle()); ok {
		t.Fatal("lookup with mismatched HSIT index succeeded")
	}
}

func TestAbortAdmitFreesSlot(t *testing.T) {
	c, _ := newCache(t, 1<<20, nil)
	e := c.Admit(1, verOf(1), []byte("k"), []byte("v"))
	c.AbortAdmit(e)
	c.Sync()
	if st := c.Stats(); st.Entries != 0 || st.Bytes != 0 {
		t.Fatalf("stats after abort = %+v", st)
	}
	if _, _, ok := c.Lookup(1, e.Handle()); ok {
		t.Fatal("aborted entry resolvable")
	}
}

func TestEvictionAtCapacityUnpublishes(t *testing.T) {
	// Each entry ~ 96 + 2 + 4 = 102 bytes; capacity fits ~5.
	c, h := newCache(t, 512, nil)
	var entries []*Entry
	for i := uint64(0); i < 20; i++ {
		entries = append(entries, admit(t, c, h, i, fmt.Sprintf("k%d", i), "vvvv"))
	}
	c.Sync()
	st := c.Stats()
	if st.Bytes > 512 {
		t.Fatalf("over capacity: %+v", st)
	}
	if st.Evictions == 0 {
		t.Fatal("no evictions at capacity")
	}
	// Early entries must be unpublished from HSIT.
	if h.load(0) != 0 {
		t.Fatal("evicted entry still published")
	}
	// The most recent entry must survive.
	last := entries[len(entries)-1]
	if _, _, ok := c.Lookup(last.HSITIdx, last.Handle()); !ok {
		t.Fatal("most recent entry evicted")
	}
}

func Test2QPromotionProtectsHotEntries(t *testing.T) {
	c, h := newCache(t, 1200, nil) // ~11 entries
	hot := admit(t, c, h, 999, "hot", "dddd")
	c.Sync()
	// Touch hot so it promotes to the active list.
	c.Lookup(999, hot.Handle())
	c.Sync()
	// Flood with one-touch-wonder entries.
	for i := uint64(0); i < 100; i++ {
		admit(t, c, h, i, fmt.Sprintf("cold%02d", i), "dddd")
	}
	c.Sync()
	if _, _, ok := c.Lookup(999, hot.Handle()); !ok {
		t.Fatal("promoted hot entry was evicted by cold scan flood")
	}
}

func TestInvalidateRemoves(t *testing.T) {
	c, h := newCache(t, 1<<20, nil)
	e := admit(t, c, h, 1, "k", "v")
	// Engine clears HSIT first, then invalidates the cache.
	h.cas(1, e.Handle(), 0)
	c.Invalidate(1, e.Handle())
	c.Sync()
	if st := c.Stats(); st.Entries != 0 {
		t.Fatalf("entries = %d after invalidate", st.Entries)
	}
}

func TestScanChainRewriteOnEviction(t *testing.T) {
	var got [][]string
	var mu sync.Mutex
	c, h := newCache(t, 700, func(chain EvictedChain) {
		var keys []string
		for _, e := range chain.Entries {
			keys = append(keys, string(e.Key))
		}
		mu.Lock()
		got = append(got, keys)
		mu.Unlock()
	})
	// Admit five values from one scan and chain them.
	var handles []uint64
	for i := 0; i < 5; i++ {
		e := admit(t, c, h, uint64(i), fmt.Sprintf("s%02d", i), "vvvv")
		handles = append(handles, e.Handle())
	}
	c.LinkChain(handles)
	c.Sync()
	// Flood until a chained entry is evicted.
	for i := uint64(100); i < 130; i++ {
		admit(t, c, h, i, fmt.Sprintf("f%02d", i), "vvvv")
	}
	c.Sync()
	mu.Lock()
	defer mu.Unlock()
	if len(got) == 0 {
		t.Fatal("chain eviction produced no rewrite")
	}
	if len(got) > 1 {
		t.Fatalf("chain rewritten %d times, want once", len(got))
	}
	keys := got[0]
	if len(keys) < 2 {
		t.Fatalf("rewrite chain too short: %v", keys)
	}
	for i := 1; i < len(keys); i++ {
		if keys[i-1] >= keys[i] {
			t.Fatalf("chain not in key order: %v", keys)
		}
	}
}

func TestChainConsumedAfterRewrite(t *testing.T) {
	rewrites := 0
	c, h := newCache(t, 400, func(chain EvictedChain) { rewrites++ })
	var handles []uint64
	for i := 0; i < 3; i++ {
		e := admit(t, c, h, uint64(i), fmt.Sprintf("c%d", i), "vv")
		handles = append(handles, e.Handle())
	}
	c.LinkChain(handles)
	c.Sync()
	for i := uint64(10); i < 40; i++ {
		admit(t, c, h, i, fmt.Sprintf("x%02d", i), "vv")
	}
	c.Sync()
	if rewrites > 1 {
		t.Fatalf("chain rewritten %d times", rewrites)
	}
	if st := c.Stats(); st.ChainRewrites != int64(rewrites) {
		t.Fatalf("rewrite counter %d != %d", st.ChainRewrites, rewrites)
	}
}

func TestConcurrentLookupsAndAdmissions(t *testing.T) {
	c, h := newCache(t, 1<<18, nil)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 300; i++ {
				idx := uint64(w*1000 + i)
				e := c.Admit(idx, verOf(idx), []byte(fmt.Sprintf("k%d", idx)), []byte("val"))
				if h.cas(idx, 0, e.Handle()) {
					c.Published(e)
					if v, loc, ok := c.Lookup(idx, e.Handle()); ok && (string(v) != "val" || loc != verOf(idx)) {
						t.Errorf("bad value %q loc %d", v, loc)
					}
				} else {
					c.AbortAdmit(e)
				}
			}
		}(w)
	}
	wg.Wait()
	c.Sync()
	if st := c.Stats(); st.Bytes > 1<<18 {
		t.Fatalf("over capacity after concurrency: %+v", st)
	}
}

func TestCloseIsIdempotentAndSafe(t *testing.T) {
	h := newFakeHSIT()
	c := New(Config{
		CapacityBytes: 1 << 16,
		Unpublish:     func(idx, handle uint64) bool { return h.cas(idx, handle, 0) },
	})
	c.Close()
	c.Close()
	// Posting after close must not panic or block.
	c.Invalidate(1, 42)
	c.Sync()
}
